// E2 — Figure 9, "Total Map Output Size for Query-Suggestion".
// Four strategies x three partitioners (Hash, Prefix-5, Prefix-1), no
// Combiner. Expected shape: Original constant across partitioners; EagerSH
// and LazySH shrink output for every partitioner (up to 27x in the paper);
// AdaptiveSH best everywhere except Prefix-1, where pure LazySH wins by the
// encoding-flag bytes. Also includes the per-partition-vs-global ablation
// called out in DESIGN.md.
#include "bench_util.h"
#include "datagen/qlog.h"
#include "workloads/query_suggestion.h"

using namespace antimr;         // NOLINT
using namespace antimr::bench;  // NOLINT

int main() {
  Header("E2: Total Map Output Size for Query-Suggestion", "paper Figure 9",
         "4 strategies x {Hash, Prefix-5, Prefix-1}, no Combiner");

  QLogConfig qc;
  qc.num_records = 60000;
  QLogGenerator gen(qc);
  const auto splits = gen.MakeSplits(8);

  using Scheme = workloads::QuerySuggestionConfig::Scheme;
  struct SchemeRow {
    const char* name;
    Scheme scheme;
  } schemes[] = {{"Hash", Scheme::kHash},
                 {"Prefix-5", Scheme::kPrefix5},
                 {"Prefix-1", Scheme::kPrefix1}};

  std::printf("%-10s %-12s %14s %12s\n", "partition", "strategy",
              "map output", "vs Original");
  for (const SchemeRow& sr : schemes) {
    workloads::QuerySuggestionConfig cfg;
    cfg.scheme = sr.scheme;
    const JobSpec spec = workloads::MakeQuerySuggestionJob(cfg);
    uint64_t original_bytes = 0;
    for (Strategy s : {Strategy::kOriginal, Strategy::kEagerSH,
                       Strategy::kLazySH, Strategy::kAdaptiveSH}) {
      const JobMetrics m = RunStrategy(spec, s, splits);
      if (s == Strategy::kOriginal) original_bytes = m.emitted_bytes;
      std::printf("%-10s %-12s %14s %12s\n", sr.name, StrategyName(s),
                  FormatBytes(m.emitted_bytes).c_str(),
                  Ratio(original_bytes, m.emitted_bytes).c_str());
    }
    std::printf("\n");
  }

  // Ablation: one encoding decision per Map call instead of per partition
  // (paper Section 6.1 argues per-partition flexibility wins).
  std::printf("ablation (Hash partitioner): per-partition vs global choice\n");
  workloads::QuerySuggestionConfig cfg;
  const JobSpec spec = workloads::MakeQuerySuggestionJob(cfg);
  anticombine::AntiCombineOptions per_partition;
  anticombine::AntiCombineOptions global;
  global.per_partition_choice = false;
  const JobMetrics mp =
      RunStrategy(spec, Strategy::kAdaptiveSH, splits, per_partition);
  const JobMetrics mg =
      RunStrategy(spec, Strategy::kAdaptiveSH, splits, global);
  std::printf("%-24s %14s\n", "AdaptiveSH/per-part",
              FormatBytes(mp.emitted_bytes).c_str());
  std::printf("%-24s %14s (%s of per-partition)\n", "AdaptiveSH/global",
              FormatBytes(mg.emitted_bytes).c_str(),
              Ratio(mg.emitted_bytes, mp.emitted_bytes).c_str());

  PaperNote("Figure 9: Original ~160 GB for all partitioners; reductions up "
            "to 27x; AdaptiveSH best everywhere except Prefix-1 where pure "
            "LazySH is slightly smaller (no per-record encoding flag)");
  return 0;
}
