// Micro-benchmarks (google-benchmark): compression and decompression
// throughput of each codec on text-like data. Not a paper experiment, but
// documents the CPU/ratio trade-off Table 1 rests on.
#include <benchmark/benchmark.h>

#include "codec/codec.h"
#include "common/random.h"

namespace antimr {
namespace {

std::string MakeTextCorpus(size_t target) {
  static const char* words[] = {"map",     "reduce",  "shuffle", "combine",
                                "network", "mapper",  "reducer", "key",
                                "value",   "cluster", "hadoop",  "sort"};
  Random rng(42);
  std::string s;
  s.reserve(target + 16);
  while (s.size() < target) {
    s += words[rng.Uniform(12)];
    s.push_back(' ');
  }
  return s;
}

void BM_Compress(benchmark::State& state) {
  const CodecType type = static_cast<CodecType>(state.range(0));
  const Codec* codec = GetCodec(type);
  const std::string input = MakeTextCorpus(256 * 1024);
  std::string out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec->Compress(input, &out));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(input.size()));
  state.SetLabel(std::string(codec->name()) + " ratio=" +
                 std::to_string(static_cast<double>(input.size()) /
                                static_cast<double>(out.size())));
}

void BM_Decompress(benchmark::State& state) {
  const CodecType type = static_cast<CodecType>(state.range(0));
  const Codec* codec = GetCodec(type);
  const std::string input = MakeTextCorpus(256 * 1024);
  std::string compressed, out;
  if (!codec->Compress(input, &compressed).ok()) {
    state.SkipWithError("compress failed");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec->Decompress(compressed, &out));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(input.size()));
  state.SetLabel(codec->name());
}

BENCHMARK(BM_Compress)
    ->Arg(static_cast<int>(CodecType::kSnappyLike))
    ->Arg(static_cast<int>(CodecType::kDeflateLike))
    ->Arg(static_cast<int>(CodecType::kGzip))
    ->Arg(static_cast<int>(CodecType::kBzip2Like))
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_Decompress)
    ->Arg(static_cast<int>(CodecType::kSnappyLike))
    ->Arg(static_cast<int>(CodecType::kDeflateLike))
    ->Arg(static_cast<int>(CodecType::kGzip))
    ->Arg(static_cast<int>(CodecType::kBzip2Like))
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace antimr
