// E5 — Table 1, "Total Cost Breakdown for Prefix-5, using different
// Compression Techniques". Columns: Original with Deflate / Gzip / Bzip2 /
// Snappy map-output compression, vs AdaptiveSH with Gzip. Rows: total disk
// read/write, total (compressed) map output, total CPU time.
// Expected shape: bzip2 best ratio but by far the highest CPU; snappy
// cheapest CPU but worst ratio; AdaptiveSH+gzip beats all four on every row.
#include "bench_util.h"
#include "datagen/qlog.h"
#include "workloads/query_suggestion.h"

using namespace antimr;         // NOLINT
using namespace antimr::bench;  // NOLINT

int main() {
  Header("E5: cost breakdown across compression techniques",
         "paper Table 1", "Query-Suggestion, Prefix-5 partitioner");

  QLogConfig qc;
  qc.num_records = 18000;
  QLogGenerator gen(qc);
  const auto splits = gen.MakeSplits(8);

  struct Column {
    const char* label;
    Strategy strategy;
    CodecType codec;
  } columns[] = {
      {"Deflate", Strategy::kOriginal, CodecType::kDeflateLike},
      {"Gzip", Strategy::kOriginal, CodecType::kGzip},
      {"Bzip2", Strategy::kOriginal, CodecType::kBzip2Like},
      {"Snappy", Strategy::kOriginal, CodecType::kSnappyLike},
      {"AdaptiveSH+Gzip", Strategy::kAdaptiveSH, CodecType::kGzip},
  };

  std::vector<JobMetrics> results;
  for (const Column& c : columns) {
    workloads::QuerySuggestionConfig cfg;
    cfg.scheme = workloads::QuerySuggestionConfig::Scheme::kPrefix5;
    cfg.codec = c.codec;
    results.push_back(RunStrategy(workloads::MakeQuerySuggestionJob(cfg),
                                  c.strategy, splits));
  }

  std::printf("%-22s", "");
  for (const Column& c : columns) std::printf(" %16s", c.label);
  std::printf("\n");
  auto row = [&](const char* name, auto getter, auto fmt) {
    std::printf("%-22s", name);
    for (const JobMetrics& m : results) {
      std::printf(" %16s", fmt(getter(m)).c_str());
    }
    std::printf("\n");
  };
  row("total disk read", [](const JobMetrics& m) { return m.disk_bytes_read; },
      FormatBytes);
  row("total disk write",
      [](const JobMetrics& m) { return m.disk_bytes_written; }, FormatBytes);
  row("total map output",
      [](const JobMetrics& m) { return m.shuffle_bytes; }, FormatBytes);
  row("total CPU time",
      [](const JobMetrics& m) { return m.total_cpu_nanos; }, FormatNanos);

  PaperNote("Table 1 (GB / 1000 sec): Deflate 65/82/18/126.9, "
            "Gzip 65/82/18/125.2, Bzip2 56/70/15/332.4, "
            "Snappy 105/133/30/77.4, AdaptiveSH+Gzip 15/21/6/27.9 — "
            "bzip2 trades the most CPU for the best ratio, snappy the "
            "reverse, and Anti-Combining beats all of them on every metric");
  return 0;
}
