// E8-service: the multi-tenant job service under a heavy mixed workload.
// Two pools share one daemonized cluster: "small" (weight 3) floods the
// queue with 24 tiny wordcounts while "big" (weight 1) submits 3 huge
// theta-joins. The whole backlog lands before the scheduler drains it, so
// the stride scheduler's fair-share split — not arrival order — decides who
// runs when. Reported per pool: p50/p99 job latency (finish - submit) and
// the fairness error (L1 distance between the pools' busy-slot-time shares
// and their weight shares, halved so 0 = perfect and 1 = total starvation).
// Every job's output multiset hash must equal its single-process run: the
// isolation gate — concurrent tenants may never bleed into each other's
// output. Results land in BENCH_e8.json, rows stamped with the transport.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "datagen/cloud.h"
#include "datagen/random_text.h"
#include "engine/coordinator.h"
#include "engine/job_registry.h"
#include "engine/job_service.h"
#include "engine/worker.h"
#include "net/transport.h"
#include "net/wire.h"
#include "workloads/registry.h"

using namespace antimr;         // NOLINT
using namespace antimr::bench;  // NOLINT

namespace {

constexpr int kWorkers = 4;
constexpr int kSmallJobs = 24;
constexpr int kBigJobs = 3;
constexpr int kMaxConcurrent = 8;

/// One tenant job: identity, pool, registered-job config, and the solo
/// reference hash every distributed run must reproduce.
struct JobDesc {
  std::string id;
  std::string pool;
  std::string job_name;
  net::JobParams params;
  std::vector<KV> records;
  int maps = 0;
  uint32_t cpu_slots = 1;
  uint64_t solo_hash = 0;
};

std::vector<std::vector<KV>> Chunk(const std::vector<KV>& records,
                                   int num_splits) {
  std::vector<std::vector<KV>> chunks;
  const size_t per =
      (records.size() + num_splits - 1) / static_cast<size_t>(num_splits);
  for (size_t start = 0; start < records.size(); start += per) {
    const size_t end = std::min(records.size(), start + per);
    chunks.emplace_back(records.begin() + static_cast<long>(start),
                        records.begin() + static_cast<long>(end));
  }
  if (chunks.empty()) chunks.emplace_back();
  return chunks;
}

uint64_t SoloHash(const JobDesc& job) {
  JobSpec spec;
  ANTIMR_CHECK_OK(engine::BuildRegisteredJob(job.job_name, job.params, &spec));
  RunOptions run;
  run.collect_output = true;
  JobResult result;
  ANTIMR_CHECK_OK(RunJob(spec, MakeSplits(job.records, job.maps), run,
                         &result));
  return engine::OutputMultisetHash(result.FlatOutput());
}

std::vector<JobDesc> BuildFleet() {
  std::vector<JobDesc> fleet;
  for (int i = 0; i < kSmallJobs; ++i) {
    JobDesc job;
    job.id = "small_" + std::to_string(i);
    job.pool = "small";
    job.job_name = "wordcount";
    job.params = {{"reduces", "2"}, {"combiner", "1"}};
    RandomTextConfig text;
    text.num_lines = 2000;
    text.seed = 100 + static_cast<uint64_t>(i);
    job.records = RandomTextGenerator(text).Generate();
    job.maps = 4;
    job.cpu_slots = 1;
    fleet.push_back(std::move(job));
  }
  for (int i = 0; i < kBigJobs; ++i) {
    JobDesc job;
    job.id = "big_" + std::to_string(i);
    job.pool = "big";
    job.job_name = "theta_join";
    job.params = {{"reduces", "4"},
                  {"grid_rows", "4"},
                  {"grid_cols", "4"},
                  {"anti_combine", "eager"}};
    CloudConfig cloud;
    cloud.num_records = 20000;
    cloud.seed = 200 + static_cast<uint64_t>(i);
    job.records = CloudGenerator(cloud).Generate();
    job.maps = 6;
    job.cpu_slots = 2;
    fleet.push_back(std::move(job));
  }
  for (JobDesc& job : fleet) job.solo_hash = SoloHash(job);
  return fleet;
}

struct FleetRun {
  std::vector<net::JobStatusWire> rows;
  std::vector<engine::JobService::PoolUsage> usage;
  int peak_running = 0;
};

/// Stand up coordinator + workers + service on `transport_kind`, submit the
/// whole fleet at once, and poll the job table until every job is terminal.
FleetRun RunFleet(const std::string& transport_kind,
                  const std::vector<JobDesc>& fleet) {
  std::unique_ptr<net::Transport> transport =
      transport_kind == "tcp" ? net::NewTcpTransport()
                              : net::NewLoopbackTransport();
  engine::Coordinator coord(transport.get());
  ANTIMR_CHECK_OK(coord.Start(""));
  std::vector<std::unique_ptr<engine::Worker>> workers;
  for (int i = 0; i < kWorkers; ++i) {
    engine::WorkerOptions options;
    options.name = "w" + std::to_string(i);
    options.slots = 2;
    workers.push_back(
        std::make_unique<engine::Worker>(transport.get(), options));
    ANTIMR_CHECK_OK(workers.back()->Start(coord.addr()));
  }
  if (!coord.WaitForWorkers(kWorkers, 10ull * 1000 * 1000 * 1000)) {
    std::fprintf(stderr, "workers never registered\n");
    std::abort();
  }

  engine::JobServiceOptions options;
  engine::PoolConfig small, big;
  small.name = "small";
  small.weight = 3.0;
  small.cpu_slots_quota = 12;
  big.name = "big";
  big.weight = 1.0;
  big.cpu_slots_quota = 8;
  options.pools = {small, big};
  options.max_concurrent_jobs = kMaxConcurrent;
  options.max_queued_jobs = kSmallJobs + kBigJobs;
  options.default_cpu_slots = 1;
  engine::JobService service(&coord, options);

  for (const JobDesc& job : fleet) {
    engine::JobSubmission sub;
    sub.pool = job.pool;
    sub.job_name = job.job_name;
    sub.params = job.params;
    sub.splits = Chunk(job.records, job.maps);
    sub.job_id = job.id;
    sub.cpu_slots = job.cpu_slots;
    std::string id;
    ANTIMR_CHECK_OK(service.Submit(std::move(sub), &id));
  }

  FleetRun run;
  for (;;) {
    const std::vector<net::JobStatusWire> rows = service.ListJobs();
    int running = 0, terminal = 0;
    for (const net::JobStatusWire& row : rows) {
      if (row.state == "running") ++running;
      if (row.state == "succeeded" || row.state == "failed" ||
          row.state == "aborted") {
        ++terminal;
      }
    }
    run.peak_running = std::max(run.peak_running, running);
    if (terminal == static_cast<int>(fleet.size())) {
      run.rows = rows;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  run.usage = service.PoolUsageSnapshot();

  service.Stop();
  coord.Stop();
  for (auto& worker : workers) worker->Stop();
  return run;
}

uint64_t Percentile(std::vector<uint64_t> sorted, double p) {
  if (sorted.empty()) return 0;
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  return sorted[static_cast<size_t>(rank + 0.5)];
}

}  // namespace

int main() {
  Header("E8-service: multi-tenant fair-share scheduling",
         "job service PR",
         "24 small wordcounts (pool small, w=3) + 3 huge theta-joins "
         "(pool big, w=1) on one daemonized cluster");
  workloads::RegisterStandardJobs();

  std::printf("building fleet + solo reference hashes...\n");
  const std::vector<JobDesc> fleet = BuildFleet();
  std::map<std::string, const JobDesc*> by_id;
  for (const JobDesc& job : fleet) by_id[job.id] = &job;

  JsonSection job_rows, pool_rows, summary_rows;
  job_rows.name = "jobs";
  pool_rows.name = "pools";
  summary_rows.name = "summary";
  bool all_ok = true;

  for (const std::string transport : {"loopback", "tcp"}) {
    const FleetRun run = RunFleet(transport, fleet);

    // Per-job rows: isolation check + latency sample.
    std::map<std::string, std::vector<uint64_t>> latencies;
    bool hashes_ok = true;
    for (const net::JobStatusWire& row : run.rows) {
      const JobDesc* job = by_id.at(row.job_id);
      const bool ok =
          row.state == "succeeded" && row.output_hash == job->solo_hash;
      hashes_ok = hashes_ok && ok;
      const uint64_t latency = row.finish_nanos - row.submit_nanos;
      const uint64_t queue_delay = row.start_nanos - row.submit_nanos;
      latencies[row.pool].push_back(latency);
      char buf[512];
      std::snprintf(
          buf, sizeof(buf),
          "{\"name\": \"%s\", \"pool\": \"%s\", \"transport\": \"%s\", "
          "\"cpu_slots\": %u, \"latency_nanos\": %llu, "
          "\"queue_nanos\": %llu, \"dispatch_seq\": %llu, "
          "\"hash_ok\": %s}",
          row.job_id.c_str(), row.pool.c_str(), transport.c_str(),
          row.cpu_slots, static_cast<unsigned long long>(latency),
          static_cast<unsigned long long>(queue_delay),
          static_cast<unsigned long long>(row.dispatch_seq),
          ok ? "true" : "false");
      job_rows.rows.push_back(buf);
    }

    // Fairness: compare each pool's share of busy slot-time against its
    // share of the weights. 0 = shares match weights exactly.
    double total_busy = 0, total_weight = 0;
    for (const auto& usage : run.usage) {
      total_busy += static_cast<double>(usage.busy_slot_nanos);
      total_weight += usage.weight;
    }
    double fairness_error = 0;
    std::printf("\n[%s] per-pool results\n", transport.c_str());
    std::printf("  %-8s %6s %6s %12s %12s %10s %10s\n", "pool", "w", "jobs",
                "p50", "p99", "busy%", "weight%");
    for (const auto& usage : run.usage) {
      const double busy_share =
          total_busy == 0
              ? 0
              : static_cast<double>(usage.busy_slot_nanos) / total_busy;
      const double weight_share =
          total_weight == 0 ? 0 : usage.weight / total_weight;
      fairness_error += 0.5 * std::abs(busy_share - weight_share);
      const std::vector<uint64_t>& lat = latencies[usage.pool];
      const uint64_t p50 = Percentile(lat, 50), p99 = Percentile(lat, 99);
      std::printf("  %-8s %6.1f %6llu %12s %12s %9.1f%% %9.1f%%\n",
                  usage.pool.c_str(), usage.weight,
                  static_cast<unsigned long long>(usage.jobs_completed),
                  FormatNanos(p50).c_str(), FormatNanos(p99).c_str(),
                  100 * busy_share, 100 * weight_share);
      char buf[512];
      std::snprintf(
          buf, sizeof(buf),
          "{\"pool\": \"%s\", \"transport\": \"%s\", \"weight\": %.2f, "
          "\"jobs_completed\": %llu, \"busy_slot_nanos\": %llu, "
          "\"busy_share\": %.4f, \"weight_share\": %.4f, "
          "\"p50_latency_nanos\": %llu, \"p99_latency_nanos\": %llu}",
          usage.pool.c_str(), transport.c_str(), usage.weight,
          static_cast<unsigned long long>(usage.jobs_completed),
          static_cast<unsigned long long>(usage.busy_slot_nanos), busy_share,
          weight_share, static_cast<unsigned long long>(p50),
          static_cast<unsigned long long>(p99));
      pool_rows.rows.push_back(buf);
    }
    std::printf("  fairness error %.3f, peak concurrent jobs %d, "
                "output hashes vs solo: %s\n",
                fairness_error, run.peak_running,
                hashes_ok ? "all match" : "MISMATCH");
    all_ok = all_ok && hashes_ok && run.peak_running >= kMaxConcurrent;

    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "{\"transport\": \"%s\", \"workers\": %d, \"jobs\": %d, "
        "\"max_concurrent_jobs\": %d, \"peak_running\": %d, "
        "\"fairness_error\": %.4f, \"hashes_ok\": %s}",
        transport.c_str(), kWorkers,
        static_cast<int>(fleet.size()), kMaxConcurrent, run.peak_running,
        fairness_error, hashes_ok ? "true" : "false");
    summary_rows.rows.push_back(buf);
  }

  std::printf("\n");
  WriteJsonSections("BENCH_e8.json", "bench_e8_job_service",
                    {std::move(job_rows), std::move(pool_rows),
                     std::move(summary_rows)});
  std::printf("acceptance (>= %d concurrent jobs, every hash identical to "
              "solo run): %s\n",
              kMaxConcurrent, all_ok ? "PASS" : "FAIL");
  return all_ok ? 0 : 1;
}
