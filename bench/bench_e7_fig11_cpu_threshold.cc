// E7 — Figure 11, "Total CPU Time using Runtime Cost-Based Optimization".
// Query-Suggestion with x units of extra Map busy-work (the first 25000*x
// Fibonacci numbers per call). Strategies: Adaptive-0 (T=0, eager only),
// Adaptive-inf (T=infinity, free choice), Adaptive-alpha (T=400us).
// Expected shape: Adaptive-inf wins at x=0 but its CPU grows fastest (the
// reducers re-execute the expensive Map); Adaptive-alpha tracks
// Adaptive-inf at low x and converges to Adaptive-0 as Map gets expensive.
#include "bench_util.h"
#include "datagen/qlog.h"
#include "workloads/query_suggestion.h"

using namespace antimr;         // NOLINT
using namespace antimr::bench;  // NOLINT

int main() {
  Header("E7: total CPU time vs Map-call cost under threshold T",
         "paper Figure 11",
         "Adaptive-0 / Adaptive-inf / Adaptive-alpha(400us)");

  QLogConfig qc;
  qc.num_records = 6000;
  QLogGenerator gen(qc);
  const auto splits = gen.MakeSplits(8);

  struct Variant {
    const char* label;
    anticombine::AntiCombineOptions options;
  } variants[] = {
      {"Adaptive-0", anticombine::AntiCombineOptions::EagerOnly()},
      {"Adaptive-inf", anticombine::AntiCombineOptions::Unrestricted()},
      {"Adaptive-alpha", anticombine::AntiCombineOptions::Alpha()},
  };

  std::printf("%-6s", "x");
  for (const Variant& v : variants) std::printf(" %16s", v.label);
  std::printf(" %16s\n", "lazy@alpha");
  for (int x : {0, 1, 2, 4, 8, 16}) {
    workloads::QuerySuggestionConfig cfg;
    cfg.scheme = workloads::QuerySuggestionConfig::Scheme::kPrefix5;
    cfg.extra_work = x;
    const JobSpec spec = workloads::MakeQuerySuggestionJob(cfg);
    std::printf("%-6d", x);
    uint64_t alpha_lazy = 0;
    for (const Variant& v : variants) {
      Strategy s = v.options.lazy_threshold_nanos == 0
                       ? Strategy::kEagerSH
                       : Strategy::kAdaptiveSH;
      const JobMetrics m = RunStrategy(spec, s, splits, v.options);
      std::printf(" %16s", FormatNanos(m.total_cpu_nanos).c_str());
      if (&v == &variants[2]) alpha_lazy = m.lazy_records;
    }
    std::printf(" %16llu\n", static_cast<unsigned long long>(alpha_lazy));
  }

  PaperNote("Figure 11: at x=0 Adaptive-inf has the lowest total CPU; as x "
            "grows its CPU rises fastest (duplicate Map execution on "
            "reducers); Adaptive-alpha(400us) follows Adaptive-inf at low x "
            "and converges to Adaptive-0 once a Map call exceeds the "
            "threshold (lazy count drops to zero)");
  return 0;
}
