// E4 — Figure 10, "Total Map Output Size for Query-Suggestion using Combiner
// and Compression". Map output compressed with gzip (the paper's pick for
// best CPU/ratio balance), Combiner present with C = 0 for Anti-Combining.
// Expected shape: compression shrinks every strategy, yet Anti-Combining
// still beats Original under every partitioner — the two compose.
#include "bench_util.h"
#include "datagen/qlog.h"
#include "workloads/query_suggestion.h"

using namespace antimr;         // NOLINT
using namespace antimr::bench;  // NOLINT

int main() {
  Header("E4: map output size with Combiner + gzip compression",
         "paper Figure 10",
         "4 strategies x {Hash, Prefix-5, Prefix-1}, compressed shuffle");

  QLogConfig qc;
  qc.num_records = 15000;
  QLogGenerator gen(qc);
  const auto splits = gen.MakeSplits(8);

  using Scheme = workloads::QuerySuggestionConfig::Scheme;
  struct SchemeRow {
    const char* name;
    Scheme scheme;
  } schemes[] = {{"Hash", Scheme::kHash},
                 {"Prefix-5", Scheme::kPrefix5},
                 {"Prefix-1", Scheme::kPrefix1}};

  anticombine::AntiCombineOptions options;
  options.map_phase_combiner = false;  // C = 0 (Section 7.3's conclusion)

  std::printf("%-10s %-12s %16s %12s\n", "partition", "strategy",
              "compressed output", "vs Original");
  for (const SchemeRow& sr : schemes) {
    workloads::QuerySuggestionConfig cfg;
    cfg.scheme = sr.scheme;
    cfg.with_combiner = true;
    cfg.codec = CodecType::kGzip;
    const JobSpec spec = workloads::MakeQuerySuggestionJob(cfg);
    uint64_t original_bytes = 0;
    for (Strategy s : {Strategy::kOriginal, Strategy::kEagerSH,
                       Strategy::kLazySH, Strategy::kAdaptiveSH}) {
      const JobMetrics m = RunStrategy(spec, s, splits, options);
      if (s == Strategy::kOriginal) original_bytes = m.shuffle_bytes;
      std::printf("%-10s %-12s %16s %12s\n", sr.name, StrategyName(s),
                  FormatBytes(m.shuffle_bytes).c_str(),
                  Ratio(original_bytes, m.shuffle_bytes).c_str());
    }
    std::printf("\n");
  }

  PaperNote("Figure 10: gzip cuts all strategies' transfer substantially, "
            "but Anti-Combining remains below Original for every "
            "partitioner — lightweight encoding and general-purpose "
            "compression stack");
  return 0;
}
