// Micro-benchmarks (google-benchmark) for the Shared structure: add/pop
// throughput in memory, under spilling, and with reduce-phase combining —
// the ablation of Section 5's design knobs.
#include <benchmark/benchmark.h>

#include "anticombine/shared.h"
#include "common/random.h"
#include "mr/metrics.h"

namespace antimr {
namespace anticombine {
namespace {

class SumCombiner : public Reducer {
 public:
  void Reduce(const Slice& key, ValueIterator* values,
              ReduceContext* ctx) override {
    uint64_t total = 0;
    Slice v;
    while (values->Next(&v)) {
      total += static_cast<uint64_t>(std::strtoull(v.ToString().c_str(),
                                                   nullptr, 10));
    }
    ctx->Emit(key, std::to_string(total));
  }
};

Shared::Options MakeOptions(Env* env, JobMetrics* metrics,
                            size_t memory_limit, Reducer* combiner) {
  Shared::Options o;
  o.key_cmp = BytewiseCompare;
  o.grouping_cmp = BytewiseCompare;
  o.env = env;
  o.file_prefix = "bm";
  o.memory_limit_bytes = memory_limit;
  o.combiner = combiner;
  o.metrics = metrics;
  return o;
}

void RunAddPop(benchmark::State& state, size_t memory_limit, bool combine) {
  auto env = NewMemEnv();
  const int num_keys = static_cast<int>(state.range(0));
  SumCombiner combiner;
  Random rng(7);
  std::vector<std::string> keys;
  for (int i = 0; i < num_keys; ++i) {
    keys.push_back("key" + std::to_string(i));
  }
  uint64_t records = 0;
  for (auto _ : state) {
    JobMetrics metrics;
    Shared shared(MakeOptions(env.get(), &metrics, memory_limit,
                              combine ? &combiner : nullptr));
    for (int i = 0; i < 20000; ++i) {
      shared.Add(keys[rng.Uniform(static_cast<uint64_t>(num_keys))], "1");
      ++records;
    }
    std::string key;
    std::vector<std::string> values;
    while (shared.PopMinKeyValues(&key, &values)) values.clear();
  }
  state.SetItemsProcessed(static_cast<int64_t>(records));
}

void BM_SharedInMemory(benchmark::State& state) {
  RunAddPop(state, /*memory_limit=*/1 << 30, /*combine=*/false);
}

void BM_SharedSpilling(benchmark::State& state) {
  RunAddPop(state, /*memory_limit=*/32 * 1024, /*combine=*/false);
}

void BM_SharedWithCombine(benchmark::State& state) {
  RunAddPop(state, /*memory_limit=*/32 * 1024, /*combine=*/true);
}

BENCHMARK(BM_SharedInMemory)->Arg(100)->Arg(10000);
BENCHMARK(BM_SharedSpilling)->Arg(100)->Arg(10000);
BENCHMARK(BM_SharedWithCombine)->Arg(100)->Arg(10000);

}  // namespace
}  // namespace anticombine
}  // namespace antimr
