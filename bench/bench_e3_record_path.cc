// E3 (infrastructure) — cost of the record path itself, not a paper figure.
// Compares the zero-copy record path (arena-interned RecordRefs in the map
// output buffer, slice views on the run-file read path, view-based
// grouping) against a faithful re-creation of the pre-refactor string
// path (owning std::string copies at emit, at decode, and per grouped
// value) on the two shuffle-heavy workload shapes: WordCount's many tiny
// records and the theta-join's wide cloud reports.
//
// Both paths push the same records through the same partitioner, the same
// sort order, and the same run-file encode/decode machinery; they differ
// only in how records are owned in between. Two costs are charged:
//   bytes_copied — payload bytes materialized into owned storage (counted
//                  at every copy site each design performs, including the
//                  shared encode step both pay)
//   heap_allocs  — real operator-new calls, measured by a replacement
//                  global allocator
// The refactor's acceptance bar is a >=25% per-record reduction in both.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/hash.h"
#include "datagen/cloud.h"
#include "datagen/random_text.h"
#include "io/run_file.h"
#include "mr/map_output_buffer.h"

// ---------------------------------------------------------------------------
// Counting allocator: every heap allocation in the process bumps the
// counter; per-path costs are deltas around the measured region.
// ---------------------------------------------------------------------------

namespace {
std::atomic<uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

using namespace antimr;         // NOLINT
using namespace antimr::bench;  // NOLINT

namespace {

constexpr int kPartitions = 8;

int PartitionOf(const Slice& key) {
  return static_cast<int>(Hash64(key) % kPartitions);
}

/// The emitted (pre-shuffle) record stream of one workload, owned once and
/// fed identically to both paths.
struct Workload {
  std::string name;
  std::vector<std::pair<std::string, std::string>> records;
};

Workload WordCountEmits() {
  RandomTextConfig rc;
  rc.num_lines = 6000;
  rc.words_per_line = 40;
  rc.vocabulary_words = 3000;
  RandomTextGenerator gen(rc);
  Workload w;
  w.name = "wordcount";
  for (const KV& line : gen.Generate()) {
    size_t pos = 0;
    const std::string& text = line.value;
    while (pos < text.size()) {
      size_t space = text.find(' ', pos);
      if (space == std::string::npos) space = text.size();
      if (space > pos) w.records.emplace_back(text.substr(pos, space - pos), "1");
      pos = space + 1;
    }
  }
  return w;
}

Workload ThetaJoinEmits() {
  CloudConfig cc;
  cc.num_records = 40000;
  CloudGenerator gen(cc);
  Workload w;
  w.name = "theta_join";
  // The 1-Bucket-Theta shuffle keys each wide report by its target region
  // row; the payload is the full 28-attribute record.
  for (const KV& kv : gen.Generate()) {
    CloudReport report;
    CloudGenerator::ParseReport(kv.value, &report);
    w.records.emplace_back("row" + std::to_string(report.date % 16), kv.value);
  }
  return w;
}

struct PathStats {
  uint64_t records = 0;
  uint64_t payload_bytes = 0;
  uint64_t bytes_copied = 0;
  uint64_t heap_allocs = 0;
  uint64_t wall_nanos = 0;
  uint64_t checksum = 0;  // consumption proof; must match across paths
};

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void WritePartitionRun(Env* env, const std::string& fname, KVStream* stream,
                       uint64_t* bytes_copied) {
  std::unique_ptr<WritableFile> file;
  ANTIMR_CHECK_OK(env->NewWritableFile(fname, &file));
  RunWriter writer(std::move(file));
  while (stream->Valid()) {
    // Encoding into the run buffer copies the payload; both paths pay it.
    *bytes_copied += stream->key().size() + stream->value().size();
    ANTIMR_CHECK_OK(writer.Add(stream->key(), stream->value()));
    ANTIMR_CHECK_OK(stream->Next());
  }
  ANTIMR_CHECK_OK(writer.Close());
}

// ---------------------------------------------------------------------------
// Zero-copy path: MapOutputBuffer (arena-interned RecordRefs) -> run files
// -> RunReader slice views -> view-based grouping (the group key is
// materialized once per group, values are consumed as views).
// ---------------------------------------------------------------------------
PathStats RunZeroCopyPath(const Workload& w) {
  PathStats stats;
  std::unique_ptr<Env> env = NewMemEnv();
  const uint64_t alloc_start = g_allocs.load(std::memory_order_relaxed);
  const uint64_t t0 = NowNanos();

  MapOutputBuffer buffer(kPartitions, BytewiseCompare);
  for (const auto& [k, v] : w.records) {
    buffer.Add(PartitionOf(k), k, v);
    stats.payload_bytes += k.size() + v.size();
    ++stats.records;
  }
  // Interning is the path's one materialization: key+value into the arena.
  stats.bytes_copied += buffer.arena_bytes_used();
  buffer.Sort();
  for (int p = 0; p < kPartitions; ++p) {
    auto stream = buffer.PartitionStream(p);
    WritePartitionRun(env.get(), "zc" + std::to_string(p), stream.get(),
                      &stats.bytes_copied);
  }
  buffer.Clear();

  // Reduce-side consumption: stream each sorted partition, detect group
  // boundaries on the key view, copy only the group key.
  std::string group_key;
  for (int p = 0; p < kPartitions; ++p) {
    std::unique_ptr<KVStream> stream;
    ANTIMR_CHECK_OK(OpenRun(env.get(), "zc" + std::to_string(p), &stream));
    bool in_group = false;
    while (stream->Valid()) {
      const Slice key = stream->key();
      const Slice value = stream->value();
      if (!in_group || Slice(group_key) != key) {
        group_key.assign(key.data(), key.size());
        stats.bytes_copied += key.size();
        in_group = true;
      }
      stats.checksum += Hash64(key) ^ Hash64(value);
      ANTIMR_CHECK_OK(stream->Next());
    }
  }

  stats.wall_nanos = NowNanos() - t0;
  stats.heap_allocs = g_allocs.load(std::memory_order_relaxed) - alloc_start;
  return stats;
}

// ---------------------------------------------------------------------------
// String baseline: the pre-refactor ownership model. Emit copies key and
// value into owning strings; the read path materializes every record into
// strings (the old RunReader kept std::string key_/value_) and grouping
// copies each value into a vector<std::string> (the old Shared/reduce
// accumulation).
// ---------------------------------------------------------------------------
PathStats RunStringBaselinePath(const Workload& w) {
  PathStats stats;
  std::unique_ptr<Env> env = NewMemEnv();
  const uint64_t alloc_start = g_allocs.load(std::memory_order_relaxed);
  const uint64_t t0 = NowNanos();

  std::vector<std::vector<std::pair<std::string, std::string>>> parts(
      kPartitions);
  for (const auto& [k, v] : w.records) {
    parts[PartitionOf(k)].emplace_back(k, v);  // owning copies at emit
    stats.bytes_copied += k.size() + v.size();
    stats.payload_bytes += k.size() + v.size();
    ++stats.records;
  }
  for (auto& part : parts) {
    std::stable_sort(part.begin(), part.end(),
                     [](const auto& a, const auto& b) {
                       return BytewiseCompare(a.first, b.first) < 0;
                     });
  }
  for (int p = 0; p < kPartitions; ++p) {
    VectorStream stream(&parts[p]);
    WritePartitionRun(env.get(), "sb" + std::to_string(p), &stream,
                      &stats.bytes_copied);
    parts[p].clear();
    parts[p].shrink_to_fit();
  }

  std::string key_buf;
  std::string value_buf;
  for (int p = 0; p < kPartitions; ++p) {
    std::unique_ptr<KVStream> stream;
    ANTIMR_CHECK_OK(OpenRun(env.get(), "sb" + std::to_string(p), &stream));
    std::string group_key;
    std::vector<std::string> group_values;
    bool in_group = false;
    auto consume_group = [&] {
      for (const std::string& v : group_values) {
        stats.checksum += Hash64(group_key) ^ Hash64(v);
      }
      group_values.clear();
    };
    while (stream->Valid()) {
      // Old reader semantics: every record decoded into owning strings.
      key_buf.assign(stream->key().data(), stream->key().size());
      value_buf.assign(stream->value().data(), stream->value().size());
      stats.bytes_copied += key_buf.size() + value_buf.size();
      if (!in_group || group_key != key_buf) {
        consume_group();
        group_key = key_buf;
        stats.bytes_copied += group_key.size();
        in_group = true;
      }
      group_values.push_back(value_buf);  // owned per-value accumulation
      stats.bytes_copied += value_buf.size();
      ANTIMR_CHECK_OK(stream->Next());
    }
    consume_group();
  }

  stats.wall_nanos = NowNanos() - t0;
  stats.heap_allocs = g_allocs.load(std::memory_order_relaxed) - alloc_start;
  return stats;
}

double PerRecord(uint64_t total, uint64_t records) {
  return records == 0 ? 0.0
                      : static_cast<double>(total) /
                            static_cast<double>(records);
}

double ReductionPct(double base, double now) {
  return base == 0 ? 0.0 : 100.0 * (base - now) / base;
}

}  // namespace

int main() {
  Header("E3 (infra): zero-copy record path vs string baseline",
         "refactor acceptance, not a paper figure",
         "arena-interned views vs owning-string shuffle path");

  const Workload workloads[] = {WordCountEmits(), ThetaJoinEmits()};

  JsonSection section;
  section.name = "rows";
  bool all_pass = true;
  for (const Workload& w : workloads) {
    const PathStats base = RunStringBaselinePath(w);
    const PathStats zc = RunZeroCopyPath(w);
    if (base.checksum != zc.checksum) {
      std::fprintf(stderr, "%s: checksum mismatch (%llu vs %llu)\n",
                   w.name.c_str(),
                   static_cast<unsigned long long>(base.checksum),
                   static_cast<unsigned long long>(zc.checksum));
      return 1;
    }

    const double base_bpr = PerRecord(base.bytes_copied, base.records);
    const double zc_bpr = PerRecord(zc.bytes_copied, zc.records);
    const double base_apr = PerRecord(base.heap_allocs, base.records);
    const double zc_apr = PerRecord(zc.heap_allocs, zc.records);
    const double bytes_cut = ReductionPct(base_bpr, zc_bpr);
    const double allocs_cut = ReductionPct(base_apr, zc_apr);
    all_pass = all_pass && bytes_cut >= 25.0 && allocs_cut >= 25.0;

    std::printf("\n%s: %llu records, %s payload\n", w.name.c_str(),
                static_cast<unsigned long long>(zc.records),
                FormatBytes(zc.payload_bytes).c_str());
    std::printf("  %-24s %14s %14s %12s\n", "metric (per record)", "string",
                "zero-copy", "reduction");
    std::printf("  %-24s %14.1f %14.1f %+11.1f%%\n", "bytes copied", base_bpr,
                zc_bpr, -bytes_cut);
    std::printf("  %-24s %14.3f %14.3f %+11.1f%%\n", "heap allocations",
                base_apr, zc_apr, -allocs_cut);
    std::printf("  %-24s %14s %14s %12s\n", "path wall time",
                FormatNanos(base.wall_nanos).c_str(),
                FormatNanos(zc.wall_nanos).c_str(),
                Ratio(base.wall_nanos, zc.wall_nanos).c_str());

    char row[1024];
    std::snprintf(
        row, sizeof(row),
        "{\"name\": \"%s\", \"records\": %llu, \"payload_bytes\": %llu, "
        "\"baseline_bytes_copied\": %llu, \"zero_copy_bytes_copied\": %llu, "
        "\"baseline_heap_allocs\": %llu, \"zero_copy_heap_allocs\": %llu, "
        "\"baseline_wall_nanos\": %llu, \"zero_copy_wall_nanos\": %llu, "
        "\"bytes_copied_reduction_pct\": %.2f, "
        "\"heap_allocs_reduction_pct\": %.2f}",
        w.name.c_str(), static_cast<unsigned long long>(zc.records),
        static_cast<unsigned long long>(zc.payload_bytes),
        static_cast<unsigned long long>(base.bytes_copied),
        static_cast<unsigned long long>(zc.bytes_copied),
        static_cast<unsigned long long>(base.heap_allocs),
        static_cast<unsigned long long>(zc.heap_allocs),
        static_cast<unsigned long long>(base.wall_nanos),
        static_cast<unsigned long long>(zc.wall_nanos), bytes_cut, allocs_cut);
    section.rows.push_back(row);
  }
  std::printf("\n");
  WriteJsonSections("BENCH_e3.json", "bench_e3_record_path",
                    {std::move(section)});

  std::printf("\nacceptance (>=25%% cut in both metrics, both workloads): "
              "%s\n", all_pass ? "PASS" : "FAIL");
  return all_pass ? 0 : 1;
}
