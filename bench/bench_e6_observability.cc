// E6-obs — what does cluster-wide observability cost? The tentpole claim is
// that trace propagation (per-task span capture, chunk serialization, wire
// shipping, coordinator merge) and metrics federation (full registry
// snapshots on every heartbeat) are cheap enough to leave on: tracing on vs
// off, on the loopback transport and on real TCP sockets, must stay within
// 5% of each other on wall time.
//
// Each measurement brings up a fresh 2-worker cluster, runs the same
// wordcount, and tears everything down; the traced runs additionally merge
// the shipped chunks into the full cluster trace (the cost an operator
// actually pays for a --cluster-trace run). Wall time is best-of-N to damp
// scheduler noise. Results land in BENCH_e6.json with the transport,
// worker-count, and tracing labels stamped into every row.
#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "datagen/random_text.h"
#include "engine/coordinator.h"
#include "engine/worker.h"
#include "net/frame.h"
#include "net/transport.h"
#include "obs/trace.h"
#include "workloads/registry.h"

using namespace antimr;         // NOLINT
using namespace antimr::bench;  // NOLINT

namespace {

struct ObsMeasurement {
  JobMetrics metrics;
  uint64_t wall_nanos = 0;          ///< best of kRepeats runs
  uint64_t wire_bytes_sent = 0;     ///< last run
  uint64_t trace_events = 0;        ///< merged events (traced runs only)
  uint64_t trace_json_bytes = 0;    ///< rendered trace size (traced runs)
};

constexpr int kRepeats = 3;

std::vector<std::vector<KV>> Chunk(const std::vector<KV>& records,
                                   int num_splits) {
  std::vector<std::vector<KV>> chunks;
  const size_t per =
      (records.size() + num_splits - 1) / static_cast<size_t>(num_splits);
  for (size_t start = 0; start < records.size(); start += per) {
    const size_t end = std::min(records.size(), start + per);
    chunks.emplace_back(records.begin() + static_cast<long>(start),
                        records.begin() + static_cast<long>(end));
  }
  return chunks;
}

/// One cluster lifetime: start coordinator + 2 workers, run wordcount,
/// stop. With `tracing`, the run is captured end to end and merged into the
/// cluster trace afterwards — the complete --cluster-trace code path.
ObsMeasurement RunOnce(const std::string& transport_kind, bool tracing,
                       const std::vector<std::vector<KV>>& splits) {
  std::unique_ptr<net::Transport> transport =
      transport_kind == "tcp" ? net::NewTcpTransport()
                              : net::NewLoopbackTransport();
  engine::Coordinator coord(transport.get());
  ANTIMR_CHECK_OK(coord.Start(""));
  std::vector<std::unique_ptr<engine::Worker>> fleet;
  for (int i = 0; i < 2; ++i) {
    engine::WorkerOptions options;
    options.name = "bench_w" + std::to_string(i);
    options.slots = 2;
    fleet.push_back(
        std::make_unique<engine::Worker>(transport.get(), options));
    ANTIMR_CHECK_OK(fleet.back()->Start(coord.addr()));
  }
  ANTIMR_CHECK_OK(coord.WaitForWorkers(2, 10ull * 1000 * 1000 * 1000)
                      ? Status::OK()
                      : Status::IOError("worker quorum timeout"));

  engine::DistJobOptions options;
  options.job_name = "wordcount";
  options.params = {{"reduces", "8"}, {"anti_combine", "adaptive"}};
  options.splits = splits;
  options.collect_outputs = false;
  options.network_mb_per_s = PaperHardware().network_mb_per_s;

  if (tracing && obs::kTraceCompiled) obs::Tracer::Global().Start();
  const net::WireCounters before = net::SnapshotWireCounters();
  const uint64_t t0 = NowNanos();
  engine::DistJobResult result;
  ANTIMR_CHECK_OK(engine::RunDistributedJob(&coord, options, &result));

  ObsMeasurement m;
  if (tracing && obs::kTraceCompiled) {
    // The merge is part of what a --cluster-trace run pays; keep it inside
    // the measured window.
    const std::string json = coord.ClusterTraceJson();
    m.trace_json_bytes = json.size();
    m.trace_events = 0;
    for (size_t pos = json.find("\"ph\""); pos != std::string::npos;
         pos = json.find("\"ph\"", pos + 4)) {
      ++m.trace_events;
    }
  }
  m.wall_nanos = NowNanos() - t0;
  const net::WireCounters after = net::SnapshotWireCounters();
  if (tracing && obs::kTraceCompiled) {
    obs::Tracer::Global().Stop();
    obs::Tracer::Global().Clear();
  }

  coord.Stop();
  for (auto& worker : fleet) worker->Stop();

  m.metrics = result.metrics;
  m.wire_bytes_sent = after.bytes_sent - before.bytes_sent;
  return m;
}

ObsMeasurement RunBest(const std::string& transport_kind, bool tracing,
                       const std::vector<std::vector<KV>>& splits) {
  ObsMeasurement best;
  for (int i = 0; i < kRepeats; ++i) {
    ObsMeasurement m = RunOnce(transport_kind, tracing, splits);
    if (i == 0 || m.wall_nanos < best.wall_nanos) best = std::move(m);
  }
  return best;
}

std::string RowExtra(const std::string& transport, bool tracing,
                     const ObsMeasurement& m) {
  char buf[224];
  std::snprintf(
      buf, sizeof(buf),
      "\"transport\": \"%s\", \"workers\": 2, \"tracing\": %s, "
      "\"wire_bytes_sent\": %llu, \"trace_events\": %llu, "
      "\"trace_json_bytes\": %llu",
      transport.c_str(), tracing ? "true" : "false",
      static_cast<unsigned long long>(m.wire_bytes_sent),
      static_cast<unsigned long long>(m.trace_events),
      static_cast<unsigned long long>(m.trace_json_bytes));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool perf_gate = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-perf-gate") == 0) perf_gate = false;
  }

  workloads::RegisterStandardJobs();
  Header("E6-obs: cluster observability overhead",
         "observability extension; acceptance: <5% wall overhead",
         "tracing on vs off, loopback vs tcp, 2-worker wordcount");

  RandomTextConfig rc;
  rc.num_lines = 20000;
  rc.seed = 42;
  const auto splits = Chunk(RandomTextGenerator(rc).Generate(), 8);

  if (!obs::kTraceCompiled) {
    std::printf("note: built with ANTIMR_TRACE=OFF — traced rows run "
                "without capture and the gate is vacuous\n\n");
  }

  std::vector<JsonRow> rows;
  bool gate_ok = true;
  std::printf("%-9s %-9s %12s %14s %12s %10s\n", "transport", "tracing",
              "wall", "wire sent", "trace evts", "overhead");
  for (const std::string transport : {"loopback", "tcp"}) {
    const ObsMeasurement off = RunBest(transport, /*tracing=*/false, splits);
    const ObsMeasurement on = RunBest(transport, /*tracing=*/true, splits);
    const double overhead =
        off.wall_nanos == 0
            ? 0.0
            : 100.0 * (static_cast<double>(on.wall_nanos) -
                       static_cast<double>(off.wall_nanos)) /
                  static_cast<double>(off.wall_nanos);
    if (overhead >= 5.0) gate_ok = false;
    std::printf("%-9s %-9s %12s %14s %12s %9s\n", transport.c_str(), "off",
                FormatNanos(off.wall_nanos).c_str(),
                FormatBytes(off.wire_bytes_sent).c_str(), "-", "-");
    std::printf("%-9s %-9s %12s %14s %12llu %+9.2f%%\n", transport.c_str(),
                "on", FormatNanos(on.wall_nanos).c_str(),
                FormatBytes(on.wire_bytes_sent).c_str(),
                static_cast<unsigned long long>(on.trace_events), overhead);

    for (const bool tracing : {false, true}) {
      const ObsMeasurement& m = tracing ? on : off;
      JsonRow row;
      row.name = std::string("wordcount/") + transport + "/w2/" +
                 (tracing ? "trace_on" : "trace_off");
      row.metrics = m.metrics;
      row.metrics.wall_nanos = m.wall_nanos;
      row.extra = RowExtra(transport, tracing, m);
      rows.push_back(std::move(row));
    }
  }

  PaperNote(
      "Span capture is one uncontended lock per event, chunks ride frames "
      "that already flow (TaskResult, heartbeats), and the merge is a "
      "per-lane sort — so turning the full cluster trace on costs low "
      "single-digit percent, cheap enough to leave on for every run.");
  WriteJsonReport("BENCH_e6.json", "bench_e6_observability", rows);

  std::printf("observability overhead gate (<5%% wall): %s%s\n",
              gate_ok ? "PASS" : "FAIL", perf_gate ? "" : " (not gating)");
  return perf_gate && !gate_ok ? 1 : 0;
}
