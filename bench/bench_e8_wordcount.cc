// E8 — Section 7.7.1, "Word Count" on RandomText.
// The sum Combiner is extremely effective here (360 GB -> 92 MB in the
// paper), so shuffle volume is a solved problem; the interesting costs are
// map-side disk I/O and CPU. Expected shape: AdaptiveSH (with the
// transformed Combiner still on, C = 1) cuts disk read/write by large
// factors, cuts pre-Combine record counts ~7x, trims CPU and runtime, and
// changes network transfer only by the encoding-flag bytes.
#include "bench_util.h"
#include "datagen/random_text.h"
#include "workloads/wordcount.h"

using namespace antimr;         // NOLINT
using namespace antimr::bench;  // NOLINT

int main() {
  Header("E8: WordCount with a highly effective Combiner",
         "paper Section 7.7.1", "Original vs AdaptiveSH, Combiner on (C=1)");

  RandomTextConfig rc;
  rc.num_lines = 20000;
  rc.words_per_line = 60;
  rc.vocabulary_words = 3000;
  RandomTextGenerator gen(rc);
  // Small map buffer so spills (and spill-time combining) actually happen.
  const auto splits = gen.MakeSplits(8);

  workloads::WordCountConfig wc;
  wc.with_combiner = true;
  wc.map_buffer_bytes = 256 * 1024;
  wc.num_reduce_tasks = 8;
  const JobSpec spec = workloads::MakeWordCountJob(wc);

  anticombine::AntiCombineOptions options;
  options.map_phase_combiner = true;  // C = 1: Combiner is worth keeping

  const JobMetrics orig =
      RunStrategy(spec, Strategy::kOriginal, splits, {}, PaperHardware());
  const JobMetrics anti = RunStrategy(spec, Strategy::kAdaptiveSH, splits,
                                      options, PaperHardware());

  std::printf("%-28s %14s %14s %10s\n", "metric", "Original", "AdaptiveSH",
              "factor");
  auto row = [](const char* name, uint64_t a, uint64_t b) {
    std::printf("%-28s %14s %14s %10s\n", name, FormatBytes(a).c_str(),
                FormatBytes(b).c_str(), Ratio(a, b).c_str());
  };
  row("disk read", orig.disk_bytes_read, anti.disk_bytes_read);
  row("disk write", orig.disk_bytes_written, anti.disk_bytes_written);
  std::printf("%-28s %14llu %14llu %10s\n", "records before Combine",
              static_cast<unsigned long long>(orig.emitted_records),
              static_cast<unsigned long long>(anti.emitted_records),
              Ratio(orig.emitted_records, anti.emitted_records).c_str());
  row("network transfer", orig.shuffle_bytes, anti.shuffle_bytes);
  std::printf("%-28s %14s %14s %10s\n", "total CPU",
              FormatNanos(orig.total_cpu_nanos).c_str(),
              FormatNanos(anti.total_cpu_nanos).c_str(),
              Ratio(orig.total_cpu_nanos, anti.total_cpu_nanos).c_str());
  std::printf("%-28s %14s %14s %10s\n", "runtime",
              FormatNanos(orig.wall_nanos).c_str(),
              FormatNanos(anti.wall_nanos).c_str(),
              Ratio(orig.wall_nanos, anti.wall_nanos).c_str());

  PaperNote("Section 7.7.1: disk reads 9.1x and writes 6.3x smaller, "
            "records before Combine 7x fewer, CPU 1.7x and runtime 1.44x "
            "lower; network transfer within 8 MB of Original (flag bytes "
            "only) because the Combiner already minimized it");
  return 0;
}
