// E5-dist — the coordinator/worker engine under real multi-worker shuffles.
// Two questions the single-process benches can't answer:
//
//  1. Scaling: wordcount and theta-join across 1/2/4 workers, on the
//     in-memory loopback transport and on real TCP sockets. Wire bytes are
//     *measured* at the frame layer (every control frame and every shuffle
//     chunk crosses it), not inferred from segment sizes.
//  2. Strategy interaction: does Anti-Combining's shuffle-volume story
//     survive the move to a networked shuffle? EagerSH/LazySH/AdaptiveSH vs
//     Original on a 2-worker cluster — the transferred-bytes ordering must
//     match the single-process reproduction of Figure 9.
//
// Results land in BENCH_e5.json, each row stamped with its transport.
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "datagen/cloud.h"
#include "datagen/random_text.h"
#include "engine/coordinator.h"
#include "engine/worker.h"
#include "net/frame.h"
#include "net/transport.h"
#include "workloads/registry.h"
#include "workloads/theta_join.h"

using namespace antimr;         // NOLINT
using namespace antimr::bench;  // NOLINT

namespace {

struct DistMeasurement {
  JobMetrics metrics;
  uint64_t wire_bytes_sent = 0;
  uint64_t wire_bytes_received = 0;
  uint64_t wall_nanos = 0;
};

/// Bring up a fresh cluster (coordinator + `workers` in-process Worker
/// objects on one transport), run the job, tear everything down.
DistMeasurement RunCluster(const std::string& transport_kind, int workers,
                           const std::string& job_name,
                           const net::JobParams& params,
                           const std::vector<std::vector<KV>>& splits) {
  std::unique_ptr<net::Transport> transport =
      transport_kind == "tcp" ? net::NewTcpTransport()
                              : net::NewLoopbackTransport();
  engine::Coordinator coord(transport.get());
  ANTIMR_CHECK_OK(coord.Start(""));
  std::vector<std::unique_ptr<engine::Worker>> fleet;
  for (int i = 0; i < workers; ++i) {
    engine::WorkerOptions options;
    options.name = "bench_w" + std::to_string(i);
    options.slots = 2;
    fleet.push_back(
        std::make_unique<engine::Worker>(transport.get(), options));
    ANTIMR_CHECK_OK(fleet.back()->Start(coord.addr()));
  }
  ANTIMR_CHECK_OK(coord.WaitForWorkers(workers, 10ull * 1000 * 1000 * 1000)
                      ? Status::OK()
                      : Status::IOError("worker quorum timeout"));

  engine::DistJobOptions options;
  options.job_name = job_name;
  options.params = params;
  options.splits = splits;
  options.collect_outputs = false;
  // The paper testbed's shared gigabit switch, as in the other benches.
  options.network_mb_per_s = PaperHardware().network_mb_per_s;

  const net::WireCounters before = net::SnapshotWireCounters();
  const uint64_t t0 = NowNanos();
  engine::DistJobResult result;
  ANTIMR_CHECK_OK(engine::RunDistributedJob(&coord, options, &result));
  const uint64_t wall = NowNanos() - t0;
  const net::WireCounters after = net::SnapshotWireCounters();

  coord.Stop();
  for (auto& worker : fleet) worker->Stop();

  DistMeasurement m;
  m.metrics = result.metrics;
  m.wire_bytes_sent = after.bytes_sent - before.bytes_sent;
  m.wire_bytes_received = after.bytes_received - before.bytes_received;
  m.wall_nanos = wall;
  return m;
}

std::string RowExtra(const std::string& transport, int workers,
                     const DistMeasurement& m) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "\"transport\": \"%s\", \"workers\": %d, "
                "\"wire_bytes_sent\": %llu, \"wire_bytes_received\": %llu",
                transport.c_str(), workers,
                static_cast<unsigned long long>(m.wire_bytes_sent),
                static_cast<unsigned long long>(m.wire_bytes_received));
  return buf;
}

/// Chunk records like MakeSplits so every cluster size maps the same ranges.
std::vector<std::vector<KV>> Chunk(const std::vector<KV>& records,
                                   int num_splits) {
  std::vector<std::vector<KV>> chunks;
  const size_t per =
      (records.size() + num_splits - 1) / static_cast<size_t>(num_splits);
  for (size_t start = 0; start < records.size(); start += per) {
    const size_t end = std::min(records.size(), start + per);
    chunks.emplace_back(records.begin() + static_cast<long>(start),
                        records.begin() + static_cast<long>(end));
  }
  return chunks;
}

}  // namespace

int main() {
  workloads::RegisterStandardJobs();
  Header("E5-dist: coordinator/worker engine over a networked shuffle",
         "engine extension; shuffle volumes per paper Section 7",
         "scaling across workers and transports; strategies on the wire");

  RandomTextConfig rc;
  rc.num_lines = 20000;
  rc.seed = 42;
  const std::vector<KV> text = RandomTextGenerator(rc).Generate();

  CloudConfig cc;
  cc.num_records = 4000;
  cc.seed = 42;
  const std::vector<KV> cloud = CloudGenerator(cc).Generate();
  int grid_rows = 0, grid_cols = 0;
  workloads::SizeGridForMemory(cc.num_records, 1000, &grid_rows, &grid_cols);

  struct Workload {
    const char* label;
    const char* job_name;
    const std::vector<KV>* input;
    net::JobParams base_params;
  };
  const std::vector<Workload> workloads = {
      {"wordcount", "wordcount", &text, {{"reduces", "8"}}},
      {"theta_join",
       "theta_join",
       &cloud,
       {{"reduces", "8"},
        {"grid_rows", std::to_string(grid_rows)},
        {"grid_cols", std::to_string(grid_cols)}}},
  };

  std::vector<JsonRow> rows;

  std::printf("--- scaling: AdaptiveSH, 8 maps, loopback vs tcp ---\n");
  std::printf("%-12s %-9s %8s %12s %14s %14s\n", "workload", "transport",
              "workers", "wall", "wire sent", "wire recv");
  for (const Workload& w : workloads) {
    const auto splits = Chunk(*w.input, 8);
    net::JobParams params = w.base_params;
    params.emplace_back("anti_combine", "adaptive");
    for (const std::string transport : {"loopback", "tcp"}) {
      for (const int workers : {1, 2, 4}) {
        const DistMeasurement m =
            RunCluster(transport, workers, w.job_name, params, splits);
        std::printf("%-12s %-9s %8d %12s %14s %14s\n", w.label,
                    transport.c_str(), workers,
                    FormatNanos(m.wall_nanos).c_str(),
                    FormatBytes(m.wire_bytes_sent).c_str(),
                    FormatBytes(m.wire_bytes_received).c_str());
        JsonRow row;
        row.name = std::string(w.label) + "/" + transport + "/w" +
                   std::to_string(workers) + "/AdaptiveSH";
        row.metrics = m.metrics;
        row.metrics.wall_nanos = m.wall_nanos;
        row.extra = RowExtra(transport, workers, m);
        rows.push_back(std::move(row));
      }
    }
  }

  std::printf("\n--- strategies on the wire: 2 workers, loopback ---\n");
  std::printf("%-12s %-11s %12s %14s %14s\n", "workload", "strategy", "wall",
              "shuffle", "wire sent");
  for (const Workload& w : workloads) {
    const auto splits = Chunk(*w.input, 8);
    for (const std::string strategy :
         {"original", "eager", "lazy", "adaptive"}) {
      net::JobParams params = w.base_params;
      if (strategy != "original") {
        params.emplace_back("anti_combine", strategy);
      }
      const DistMeasurement m =
          RunCluster("loopback", 2, w.job_name, params, splits);
      std::printf("%-12s %-11s %12s %14s %14s\n", w.label, strategy.c_str(),
                  FormatNanos(m.wall_nanos).c_str(),
                  FormatBytes(m.metrics.shuffle_bytes).c_str(),
                  FormatBytes(m.wire_bytes_sent).c_str());
      JsonRow row;
      row.name = std::string(w.label) + "/loopback/w2/" + strategy;
      row.metrics = m.metrics;
      row.metrics.wall_nanos = m.wall_nanos;
      row.extra = RowExtra("loopback", 2, m);
      rows.push_back(std::move(row));
    }
  }

  PaperNote(
      "The networked shuffle preserves the single-process story: EagerSH "
      "trades CPU for smaller transfers, LazySH resends inputs, AdaptiveSH "
      "tracks the better of the two — now visible in measured wire bytes, "
      "with control-plane framing as the only overhead.");
  WriteJsonReport("BENCH_e5.json", "bench_e5_distributed", rows);
  return 0;
}
