// E4 (infrastructure) — columnar chunk storage vs row runs, not a paper
// figure. Two questions:
//
//   1. Scan throughput: draining a stored segment through the new batched
//      columnar path (ChunkReader::NextBatch) vs the row baseline
//      (BlockRunReader record-at-a-time Next, the pre-columnar hot loop),
//      on bench_e3's two workload shapes (WordCount's tiny records, the
//      theta-join's wide cloud reports). Acceptance: >=2x records/s on the
//      record-path dataset; the wide-record dataset is byte-bound (memcpy
//      plus CRC over the same bytes in either format) and carries a
//      no-regression floor instead.
//
//   2. End-to-end shuffle volume and CPU: the e2 (query suggestion) and
//      e8 (wordcount) workloads under EagerSH anti-combining, run once per
//      storage format. The columnar writer folds the {other keys} that
//      EagerSH payloads carry into the block dictionary (kEagerDict), so
//      shuffle bytes must come out <= the row path's at equal-or-lower
//      CPU, with byte-identical job output.
//
// Exits nonzero on a correctness failure (checksum or output mismatch)
// or a missed perf acceptance bar; --no-perf-gate keeps the correctness
// checks but reports perf informationally (for sanitizer ctest runs,
// where timings are meaningless).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "anticombine/transform.h"
#include "bench_util.h"
#include "codec/codec.h"
#include "common/hash.h"
#include "common/record_batch.h"
#include "datagen/cloud.h"
#include "datagen/qlog.h"
#include "datagen/random_text.h"
#include "io/run_file.h"
#include "mr/job_runner.h"
#include "mr/metrics.h"
#include "mr/shuffle.h"
#include "workloads/query_suggestion.h"
#include "workloads/wordcount.h"

using namespace antimr;         // NOLINT
using namespace antimr::bench;  // NOLINT

namespace {

uint64_t NowNanosLocal() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// ---------------------------------------------------------------------------
// Part 1: stored-segment scan throughput on bench_e3's dataset shapes.
// ---------------------------------------------------------------------------

struct Dataset {
  std::string name;
  std::vector<std::pair<std::string, std::string>> records;  // key-sorted
  /// Gated speedup floor. The >=2x acceptance bar targets record-path
  /// datasets (many small records, where per-record dispatch dominates);
  /// wide-record datasets are byte-bound — memcpy plus CRC over the same
  /// bytes in either format — so they carry a >=1x no-regression floor and
  /// report their speedup informationally.
  double min_ratio = 2.0;
  const char* note = nullptr;  // printed under the table row when set
};

Dataset WordCountEmits() {
  RandomTextConfig rc;
  rc.num_lines = 6000;
  rc.words_per_line = 40;
  rc.vocabulary_words = 3000;
  RandomTextGenerator gen(rc);
  Dataset d;
  d.name = "wordcount";
  for (const KV& line : gen.Generate()) {
    size_t pos = 0;
    const std::string& text = line.value;
    while (pos < text.size()) {
      size_t space = text.find(' ', pos);
      if (space == std::string::npos) space = text.size();
      if (space > pos) {
        d.records.emplace_back(text.substr(pos, space - pos), "1");
      }
      pos = space + 1;
    }
  }
  return d;
}

Dataset ThetaJoinEmits() {
  CloudConfig cc;
  cc.num_records = 40000;
  CloudGenerator gen(cc);
  Dataset d;
  d.name = "theta_join";
  d.min_ratio = 1.0;
  d.note = "byte-bound (~430 B records): both formats memcpy+CRC the same "
           "bytes, so the floor is no-regression, not 2x";
  for (const KV& kv : gen.Generate()) {
    CloudReport report;
    CloudGenerator::ParseReport(kv.value, &report);
    d.records.emplace_back("row" + std::to_string(report.date % 16), kv.value);
  }
  return d;
}

struct ScanRow {
  std::string name;
  uint64_t records = 0;
  uint64_t payload_bytes = 0;
  uint64_t row_stored_bytes = 0;
  uint64_t col_stored_bytes = 0;
  uint64_t row_scan_nanos = 0;  // best-of reps
  uint64_t col_scan_nanos = 0;
  double ratio = 0;  // columnar records/s over row records/s
  double min_ratio = 2.0;
  const char* note = nullptr;
  bool checksum_ok = false;
};

// O(1)-per-record consumption fold: a rolling mix of each record's sizes
// and boundary bytes, order-sensitive. Cheap enough that the measurement
// stays on the scan path, not on the consumer; byte-level identity of the
// two formats is gated separately (the job-output comparison below, plus
// the chunk round-trip tests).
inline uint64_t FoldRecord(uint64_t sum, const Slice& key,
                           const Slice& value) {
  sum = sum * 1099511628211ULL + key.size() * 2654435761ULL + value.size();
  sum ^= static_cast<uint8_t>(key[0]) |
         (static_cast<uint64_t>(static_cast<uint8_t>(key[key.size() - 1]))
          << 8);
  if (!value.empty()) {
    sum ^= static_cast<uint64_t>(static_cast<uint8_t>(value[0])) << 16;
  }
  return sum;
}

uint64_t DrainRecordWise(Env* env, const std::string& fname,
                         uint64_t* checksum) {
  std::unique_ptr<SegmentStream> reader;
  ANTIMR_CHECK_OK(OpenSegmentReader(env, fname, GetCodec(CodecType::kNone),
                                    SegmentReadOptions{}, &reader));
  uint64_t sum = 0;
  const uint64_t t0 = NowNanosLocal();
  while (reader->Valid()) {
    sum = FoldRecord(sum, reader->key(), reader->value());
    ANTIMR_CHECK_OK(reader->Next());
  }
  const uint64_t elapsed = NowNanosLocal() - t0;
  *checksum = sum;
  return elapsed;
}

uint64_t DrainBatched(Env* env, const std::string& fname, uint64_t* checksum) {
  std::unique_ptr<SegmentStream> reader;
  ANTIMR_CHECK_OK(OpenSegmentReader(env, fname, GetCodec(CodecType::kNone),
                                    SegmentReadOptions{}, &reader));
  uint64_t sum = 0;
  RecordBatch batch;
  BatchOptions opts;
  const uint64_t t0 = NowNanosLocal();
  while (true) {
    ANTIMR_CHECK_OK(reader->NextBatch(&batch, opts));
    if (batch.empty()) break;
    for (const RecordRef& r : batch) {
      sum = FoldRecord(sum, r.key, r.value);
    }
  }
  const uint64_t elapsed = NowNanosLocal() - t0;
  *checksum = sum;
  return elapsed;
}

ScanRow RunScan(Dataset dataset) {
  ScanRow row;
  row.name = dataset.name;
  row.min_ratio = dataset.min_ratio;
  row.note = dataset.note;
  std::stable_sort(
      dataset.records.begin(), dataset.records.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [k, v] : dataset.records) {
    row.payload_bytes += k.size() + v.size();
  }
  row.records = dataset.records.size();

  std::unique_ptr<Env> env = NewMemEnv();
  uint64_t compress_nanos = 0;
  SegmentWriteResult wr;
  {
    VectorStream stream(&dataset.records);
    SegmentWriteOptions opts;
    opts.format = RecordFormat::kRow;
    ANTIMR_CHECK_OK(
        WriteSegment(env.get(), "row", &stream, opts, &compress_nanos, &wr));
    row.row_stored_bytes = wr.stored_bytes;
  }
  {
    VectorStream stream(&dataset.records);
    SegmentWriteOptions opts;
    opts.format = RecordFormat::kColumnar;
    opts.stable_input = true;  // dataset.records outlives the write
    ANTIMR_CHECK_OK(
        WriteSegment(env.get(), "col", &stream, opts, &compress_nanos, &wr));
    row.col_stored_bytes = wr.stored_bytes;
  }

  constexpr int kReps = 5;
  uint64_t row_checksum = 0;
  uint64_t col_checksum = 0;
  row.row_scan_nanos = ~uint64_t{0};
  row.col_scan_nanos = ~uint64_t{0};
  for (int rep = 0; rep < kReps; ++rep) {
    row.row_scan_nanos = std::min(
        row.row_scan_nanos, DrainRecordWise(env.get(), "row", &row_checksum));
    row.col_scan_nanos = std::min(
        row.col_scan_nanos, DrainBatched(env.get(), "col", &col_checksum));
  }
  row.checksum_ok = row_checksum == col_checksum;
  row.ratio = row.col_scan_nanos == 0
                  ? 0
                  : static_cast<double>(row.row_scan_nanos) /
                        static_cast<double>(row.col_scan_nanos);
  return row;
}

// ---------------------------------------------------------------------------
// Part 2: end-to-end shuffle bytes + CPU under EagerSH, row vs columnar.
// ---------------------------------------------------------------------------

struct JobRow {
  std::string name;
  uint64_t row_shuffle_bytes = 0;
  uint64_t col_shuffle_bytes = 0;
  uint64_t row_cpu_nanos = 0;
  uint64_t col_cpu_nanos = 0;
  bool output_ok = false;
};

JobRow RunFormatsAB(const std::string& name, const JobSpec& eager_spec,
                    const std::vector<InputSplit>& splits) {
  JobRow row;
  row.name = name;
  // Shuffle bytes are deterministic; CPU is not — take the best of five
  // runs per format, and interleave the formats within each rep (like the
  // scan loop above) so slow machine drift — frequency scaling, co-tenant
  // load — hits both formats alike instead of whichever format ran second.
  constexpr int kReps = 5;
  auto run_once = [&](RecordFormat format, JobResult* result) {
    RunOptions options;
    options.record_format = format;
    options.collect_output = true;
    ANTIMR_CHECK_OK(RunJob(eager_spec, splits, options, result));
  };
  JobMetrics row_metrics;
  JobMetrics col_metrics;
  std::vector<KV> row_output;
  std::vector<KV> col_output;
  for (int rep = 0; rep < kReps; ++rep) {
    JobResult row_result;
    JobResult col_result;
    run_once(RecordFormat::kRow, &row_result);
    run_once(RecordFormat::kColumnar, &col_result);
    if (rep == 0) {
      row_metrics = row_result.metrics;
      col_metrics = col_result.metrics;
      row_output = row_result.FlatOutput();
      col_output = col_result.FlatOutput();
    } else {
      row_metrics.total_cpu_nanos = std::min(
          row_metrics.total_cpu_nanos, row_result.metrics.total_cpu_nanos);
      col_metrics.total_cpu_nanos = std::min(
          col_metrics.total_cpu_nanos, col_result.metrics.total_cpu_nanos);
    }
    if (getenv("E4_DUMP") != nullptr) {
      fprintf(stderr, "DUMP %s fmt=0 %s\nDUMP %s fmt=1 %s\n", name.c_str(),
              row_result.metrics.ToJson().c_str(), name.c_str(),
              col_result.metrics.ToJson().c_str());
    }
  }
  row.output_ok = row_output == col_output && !row_output.empty();
  row.row_shuffle_bytes = row_metrics.shuffle_bytes;
  row.col_shuffle_bytes = col_metrics.shuffle_bytes;
  row.row_cpu_nanos = row_metrics.total_cpu_nanos;
  row.col_cpu_nanos = col_metrics.total_cpu_nanos;
  return row;
}

std::vector<JobRow> RunJobComparisons() {
  std::vector<JobRow> rows;
  {
    QLogConfig qc;
    qc.num_records = 20000;
    const std::vector<InputSplit> splits = QLogGenerator(qc).MakeSplits(8);
    workloads::QuerySuggestionConfig cfg;
    cfg.num_reduce_tasks = 8;
    const JobSpec spec = anticombine::EnableAntiCombining(
        workloads::MakeQuerySuggestionJob(cfg),
        anticombine::AntiCombineOptions::EagerOnly());
    rows.push_back(RunFormatsAB("e2_qsuggest_eager", spec, splits));
  }
  {
    RandomTextConfig rc;
    rc.num_lines = 24000;
    const std::vector<InputSplit> splits =
        RandomTextGenerator(rc).MakeSplits(8);
    workloads::WordCountConfig cfg;
    cfg.with_combiner = false;  // EagerSH replaces the combiner
    cfg.num_reduce_tasks = 8;
    const JobSpec spec = anticombine::EnableAntiCombining(
        workloads::MakeWordCountJob(cfg),
        anticombine::AntiCombineOptions::EagerOnly());
    rows.push_back(RunFormatsAB("e8_wordcount_eager", spec, splits));
  }
  return rows;
}

double Rps(uint64_t records, uint64_t nanos) {
  return nanos == 0 ? 0 : 1e9 * static_cast<double>(records) /
                              static_cast<double>(nanos);
}

}  // namespace

int main(int argc, char** argv) {
  bool perf_gate = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-perf-gate") == 0) perf_gate = false;
  }

  Header("E4 (infra): columnar chunk storage vs row runs",
         "storage-layer acceptance, not a paper figure",
         "batched columnar scan + dictionary-coded EagerSH shuffle");

  bool correctness_ok = true;
  bool perf_ok = true;

  std::printf("\nstored-segment scan (bench_e3 dataset shapes, best of 5):\n");
  std::printf("  %-12s %10s %12s %12s %12s %12s %8s\n", "dataset", "records",
              "row MB/s", "col MB/s", "row rec/s", "col rec/s", "ratio");
  std::vector<ScanRow> scans;
  std::vector<Dataset> datasets;
  datasets.push_back(WordCountEmits());
  datasets.push_back(ThetaJoinEmits());
  for (Dataset& d : datasets) {
    scans.push_back(RunScan(std::move(d)));
    const ScanRow& s = scans.back();
    correctness_ok = correctness_ok && s.checksum_ok;
    perf_ok = perf_ok && s.ratio >= s.min_ratio;
    const double mb = static_cast<double>(s.payload_bytes) / (1024 * 1024);
    std::printf("  %-12s %10llu %12.1f %12.1f %12.0f %12.0f %7.2fx%s\n",
                s.name.c_str(), static_cast<unsigned long long>(s.records),
                mb * 1e9 / static_cast<double>(s.row_scan_nanos),
                mb * 1e9 / static_cast<double>(s.col_scan_nanos),
                Rps(s.records, s.row_scan_nanos),
                Rps(s.records, s.col_scan_nanos), s.ratio,
                s.checksum_ok ? "" : "  CHECKSUM MISMATCH");
    if (s.note != nullptr) std::printf("      ^ %s\n", s.note);
  }

  std::printf("\nEagerSH jobs, row vs columnar storage (same spec, same "
              "input):\n");
  std::printf("  %-20s %14s %14s %8s %12s %12s %8s\n", "job", "row shuffle",
              "col shuffle", "bytes", "row cpu", "col cpu", "cpu");
  const std::vector<JobRow> jobs = RunJobComparisons();
  for (const JobRow& j : jobs) {
    correctness_ok = correctness_ok && j.output_ok;
    const double bytes_ratio =
        j.row_shuffle_bytes == 0
            ? 0
            : static_cast<double>(j.col_shuffle_bytes) /
                  static_cast<double>(j.row_shuffle_bytes);
    const double cpu_ratio = j.row_cpu_nanos == 0
                                 ? 0
                                 : static_cast<double>(j.col_cpu_nanos) /
                                       static_cast<double>(j.row_cpu_nanos);
    // "Equal or lower CPU" with measurement headroom: total_cpu_nanos on a
    // multi-second job wobbles a few percent run to run.
    perf_ok = perf_ok && j.col_shuffle_bytes <= j.row_shuffle_bytes &&
              cpu_ratio <= 1.10;
    std::printf("  %-20s %14s %14s %7.2fx %12s %12s %7.2fx%s\n",
                j.name.c_str(), FormatBytes(j.row_shuffle_bytes).c_str(),
                FormatBytes(j.col_shuffle_bytes).c_str(), bytes_ratio,
                FormatNanos(j.row_cpu_nanos).c_str(),
                FormatNanos(j.col_cpu_nanos).c_str(), cpu_ratio,
                j.output_ok ? "" : "  OUTPUT MISMATCH");
  }

  JsonSection scan_section, job_section;
  scan_section.name = "scan";
  job_section.name = "jobs";
  for (const ScanRow& s : scans) {
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "{\"name\": \"%s\", \"records\": %llu, \"payload_bytes\": %llu, "
        "\"row_stored_bytes\": %llu, \"col_stored_bytes\": %llu, "
        "\"row_scan_nanos\": %llu, \"col_scan_nanos\": %llu, "
        "\"throughput_ratio\": %.3f, \"min_ratio\": %.1f, "
        "\"checksum_ok\": %s}",
        s.name.c_str(), static_cast<unsigned long long>(s.records),
        static_cast<unsigned long long>(s.payload_bytes),
        static_cast<unsigned long long>(s.row_stored_bytes),
        static_cast<unsigned long long>(s.col_stored_bytes),
        static_cast<unsigned long long>(s.row_scan_nanos),
        static_cast<unsigned long long>(s.col_scan_nanos), s.ratio,
        s.min_ratio, s.checksum_ok ? "true" : "false");
    scan_section.rows.push_back(buf);
  }
  for (const JobRow& j : jobs) {
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "{\"name\": \"%s\", \"row_shuffle_bytes\": %llu, "
        "\"col_shuffle_bytes\": %llu, \"row_cpu_nanos\": %llu, "
        "\"col_cpu_nanos\": %llu, \"output_ok\": %s}",
        j.name.c_str(), static_cast<unsigned long long>(j.row_shuffle_bytes),
        static_cast<unsigned long long>(j.col_shuffle_bytes),
        static_cast<unsigned long long>(j.row_cpu_nanos),
        static_cast<unsigned long long>(j.col_cpu_nanos),
        j.output_ok ? "true" : "false");
    job_section.rows.push_back(buf);
  }
  std::printf("\n");
  WriteJsonSections("BENCH_e4.json", "bench_e4_columnar_scan",
                    {std::move(scan_section), std::move(job_section)});

  std::printf("\ncorrectness (checksums + byte-identical job output): %s\n",
              correctness_ok ? "PASS" : "FAIL");
  std::printf("acceptance (>=2x record-path scan, no wide-record regression, "
              "<= row shuffle bytes at ~equal CPU): %s%s\n",
              perf_ok ? "PASS" : "FAIL", perf_gate ? "" : " (not gating)");
  if (!correctness_ok) return 1;
  return perf_gate && !perf_ok ? 1 : 0;
}
