// E2 (engine): cross-stage pipelining vs back-to-back jobs.
//
// The same two-stage computation — wordcount (EagerSH) feeding a framework
// sort (LazySH) — is executed two ways:
//
//   seq: two RunJob calls with a driver barrier between them (collect stage
//        1's output, re-split it, submit stage 2), the pre-engine shape.
//   dag: one engine::JobPlan run by one Executor, where each sort map task
//        depends only on the wordcount reduce partition it consumes.
//
// With fewer workers than reduce partitions, stage 1's reduces run in
// waves; in the dag the sort maps over early partitions execute alongside
// stage 1's later waves, which the executor reports as stage overlap. A
// PageRank 4-iteration DAG vs the legacy per-iteration loop is measured the
// same way. Results (including the overlap) land in BENCH_e2.json.
#include <cinttypes>
#include <cstdio>

#include "bench_util.h"
#include "datagen/graph.h"
#include "datagen/random_text.h"
#include "workloads/pagerank.h"
#include "workloads/sort.h"
#include "workloads/wordcount.h"

namespace antimr {
namespace bench {
namespace {

constexpr int kNumLines = 120000;
constexpr int kMapSplits = 8;
constexpr int kReduceTasks = 8;
constexpr int kWorkers = 4;  // < kReduceTasks: reduces run in waves
constexpr int kPageRankNodes = 20000;
constexpr int kPageRankIterations = 4;

struct PipelineMeasurement {
  JobMetrics total;
  uint64_t stage_overlap_nanos = 0;
};

JobSpec EagerWordCount() {
  workloads::WordCountConfig wc;
  wc.num_reduce_tasks = kReduceTasks;
  return workloads::MakeWordCountJob(wc);
}

JobSpec LazySort() {
  workloads::SortConfig sort;
  sort.num_reduce_tasks = kReduceTasks;
  return workloads::MakeSortJob(sort);
}

/// Legacy shape: stage 2 only starts after stage 1's output is fully
/// collected by the driver.
PipelineMeasurement RunBackToBack(const std::vector<InputSplit>& lines) {
  PipelineMeasurement m;

  JobSpec count = anticombine::EnableAntiCombining(
      EagerWordCount(), anticombine::AntiCombineOptions::EagerOnly());
  RunOptions run;
  run.num_workers = kWorkers;
  JobResult counts;
  ANTIMR_CHECK_OK(RunJob(count, lines, run, &counts));
  m.total = counts.metrics;

  JobSpec sort = anticombine::EnableAntiCombining(
      LazySort(), anticombine::AntiCombineOptions::LazyOnly());
  JobResult sorted;
  ANTIMR_CHECK_OK(
      RunJob(sort, MakeSplits(counts.FlatOutput(), kReduceTasks), run,
             &sorted));
  m.total.Add(sorted.metrics);
  // Sequential by construction: wall times add, overlap is zero.
  m.total.wall_nanos = counts.metrics.wall_nanos + sorted.metrics.wall_nanos;
  return m;
}

/// Engine shape: one plan, per-partition cross-stage dependencies.
PipelineMeasurement RunDag(const std::vector<InputSplit>& lines) {
  engine::JobPlan plan;
  plan.name = "wordcount_sort";
  ANTIMR_CHECK_OK(plan.AddInput("lines", lines));

  engine::Stage count_stage;
  count_stage.name = "wordcount";
  count_stage.spec = EagerWordCount();
  count_stage.inputs = {"lines"};
  count_stage.output = "counts";
  count_stage.options.anti_combine = true;
  count_stage.options.anti_combine_options =
      anticombine::AntiCombineOptions::EagerOnly();
  plan.AddStage(std::move(count_stage));

  engine::Stage sort_stage;
  sort_stage.name = "sort";
  sort_stage.spec = LazySort();
  sort_stage.inputs = {"counts"};
  sort_stage.output = "sorted";
  sort_stage.options.anti_combine = true;
  sort_stage.options.anti_combine_options =
      anticombine::AntiCombineOptions::LazyOnly();
  plan.AddStage(std::move(sort_stage));

  engine::ExecutorOptions options;
  options.num_workers = kWorkers;
  engine::Executor executor(options);
  engine::PlanResult result;
  ANTIMR_CHECK_OK(executor.Run(plan, &result));

  PipelineMeasurement m;
  m.total = result.metrics;
  m.stage_overlap_nanos = result.stage_overlap_nanos;
  return m;
}

PipelineMeasurement RunPageRankLoop(const std::vector<KV>& graph) {
  workloads::PageRankConfig cfg;
  cfg.num_nodes = kPageRankNodes;
  cfg.num_reduce_tasks = kReduceTasks;
  RunOptions run;
  run.num_workers = kWorkers;
  workloads::PageRankRunResult result;
  ANTIMR_CHECK_OK(workloads::RunPageRank(cfg, graph, kPageRankIterations,
                                         nullptr, kMapSplits, &result, run));
  PipelineMeasurement m;
  m.total = result.total;
  return m;
}

PipelineMeasurement RunPageRankAsDag(const std::vector<KV>& graph) {
  workloads::PageRankConfig cfg;
  cfg.num_nodes = kPageRankNodes;
  cfg.num_reduce_tasks = kReduceTasks;
  engine::ExecutorOptions options;
  options.num_workers = kWorkers;
  engine::Executor executor(options);
  workloads::PageRankRunResult result;
  engine::PlanResult plan_result;
  ANTIMR_CHECK_OK(workloads::RunPageRankDag(cfg, graph, kPageRankIterations,
                                            nullptr, kMapSplits, &executor,
                                            &result, &plan_result));
  PipelineMeasurement m;
  m.total = result.total;
  m.total.wall_nanos = plan_result.metrics.wall_nanos;
  m.stage_overlap_nanos = plan_result.stage_overlap_nanos;
  return m;
}

void PrintRow(const char* name, const PipelineMeasurement& m) {
  std::printf("%-18s wall=%-10s cpu=%-10s shuffle=%-10s overlap=%s\n", name,
              FormatNanos(m.total.wall_nanos).c_str(),
              FormatNanos(m.total.total_cpu_nanos).c_str(),
              FormatBytes(m.total.shuffle_bytes).c_str(),
              FormatNanos(m.stage_overlap_nanos).c_str());
}

void WriteReport(const PipelineMeasurement& wc_seq,
                 const PipelineMeasurement& wc_dag,
                 const PipelineMeasurement& pr_loop,
                 const PipelineMeasurement& pr_dag) {
  // The per-run stage overlap rides next to each metrics object via the
  // JsonRow extra member; the shared helper stamps the envelope.
  struct Row {
    const char* name;
    const PipelineMeasurement* m;
  };
  const Row rows[] = {{"wordcount_sort_seq", &wc_seq},
                      {"wordcount_sort_dag", &wc_dag},
                      {"pagerank_loop", &pr_loop},
                      {"pagerank_dag", &pr_dag}};
  std::vector<JsonRow> report;
  for (const Row& row : rows) {
    char extra[64];
    std::snprintf(extra, sizeof(extra), "\"stage_overlap_nanos\": %" PRIu64,
                  row.m->stage_overlap_nanos);
    JsonRow out;
    out.name = row.name;
    out.metrics = row.m->total;
    out.extra = extra;
    report.push_back(std::move(out));
  }
  WriteJsonReport("BENCH_e2.json", "bench_e2_engine_dag", report);
}

void Run() {
  Header("E2-engine: multi-stage DAG vs back-to-back jobs",
         "engine layering PR",
         "same work, two drivers: sequential RunJob calls vs one JobPlan");

  RandomTextConfig text;
  text.num_lines = kNumLines;
  text.seed = 42;
  const std::vector<InputSplit> lines =
      RandomTextGenerator(text).MakeSplits(kMapSplits);

  GraphConfig gc;
  gc.num_nodes = kPageRankNodes;
  gc.seed = 7;
  const std::vector<KV> graph = GraphGenerator(gc).Generate();

  std::printf("wordcount(EagerSH) -> sort(LazySH), %d lines, %d workers, "
              "%d reduce tasks\n",
              kNumLines, kWorkers, kReduceTasks);
  const PipelineMeasurement wc_seq = RunBackToBack(lines);
  const PipelineMeasurement wc_dag = RunDag(lines);
  PrintRow("seq (2x RunJob)", wc_seq);
  PrintRow("dag (1 plan)", wc_dag);
  std::printf("dag wall vs seq: %s\n\n",
              Percent(wc_seq.total.wall_nanos, wc_dag.total.wall_nanos)
                  .c_str());

  std::printf("pagerank, %d nodes, %d iterations\n", kPageRankNodes,
              kPageRankIterations);
  const PipelineMeasurement pr_loop = RunPageRankLoop(graph);
  const PipelineMeasurement pr_dag = RunPageRankAsDag(graph);
  PrintRow("loop (driver)", pr_loop);
  PrintRow("dag (1 plan)", pr_dag);
  std::printf("dag wall vs loop: %s\n\n",
              Percent(pr_loop.total.wall_nanos, pr_dag.total.wall_nanos)
                  .c_str());

  WriteReport(wc_seq, wc_dag, pr_loop, pr_dag);
}

}  // namespace
}  // namespace bench
}  // namespace antimr

int main() {
  antimr::bench::Run();
  return 0;
}
