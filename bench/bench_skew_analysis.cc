// Skew analysis — paper Section 6.2, "Total cost versus running time":
// "a reducer dealing with many LazySH encoded records might receive a large
// share of additional CPU and local I/O cost ... by choosing a smaller
// threshold T, the user can control how aggressively she wants to optimize
// for lower cost at the cost of potentially longer job completion time."
//
// Query-Suggestion under the skewed Prefix-1 partitioner: hot reduce tasks
// (popular first letters) receive most LazySH records and re-execute Map for
// each, so Adaptive-inf shows a higher per-task CPU spread than Adaptive-0.
#include <algorithm>

#include "bench_util.h"
#include "datagen/qlog.h"
#include "workloads/query_suggestion.h"

using namespace antimr;         // NOLINT
using namespace antimr::bench;  // NOLINT

namespace {

struct TaskStats {
  uint64_t max_cpu = 0;
  double mean_cpu = 0;
  uint64_t max_remaps = 0;
  uint64_t total_remaps = 0;
};

TaskStats ReduceTaskStats(const JobResult& result) {
  TaskStats s;
  uint64_t total = 0;
  int count = 0;
  for (const TaskMetrics& t : result.task_metrics) {
    if (t.is_map) continue;
    total += t.cpu_nanos;
    s.max_cpu = std::max(s.max_cpu, t.cpu_nanos);
    s.max_remaps = std::max(s.max_remaps, t.metrics.remap_calls);
    s.total_remaps += t.metrics.remap_calls;
    ++count;
  }
  s.mean_cpu = count == 0 ? 0 : static_cast<double>(total) / count;
  return s;
}

}  // namespace

int main() {
  Header("Skew analysis: LazySH load imbalance vs threshold T",
         "paper Section 6.2",
         "per-reduce-task CPU under Adaptive-0 vs Adaptive-inf, Prefix-1");

  QLogConfig qc;
  qc.num_records = 15000;
  QLogGenerator gen(qc);
  const auto splits = gen.MakeSplits(8);

  workloads::QuerySuggestionConfig cfg;
  cfg.scheme = workloads::QuerySuggestionConfig::Scheme::kPrefix1;
  cfg.num_reduce_tasks = 8;
  // Make Map calls non-trivial (Figure 11's busy-work knob) so duplicate
  // executions on hot reducers are visible in task CPU.
  cfg.extra_work = 2;
  const JobSpec base = workloads::MakeQuerySuggestionJob(cfg);

  struct Variant {
    const char* label;
    anticombine::AntiCombineOptions options;
  } variants[] = {
      {"Adaptive-0 (T=0)", anticombine::AntiCombineOptions::EagerOnly()},
      {"Adaptive-alpha", anticombine::AntiCombineOptions::Alpha()},
      {"Adaptive-inf", anticombine::AntiCombineOptions::Unrestricted()},
  };

  std::printf("%-20s %12s %12s %10s %12s %12s\n", "variant", "max task cpu",
              "mean cpu", "max/mean", "remaps(max)", "remaps(all)");
  for (const Variant& v : variants) {
    RunOptions run;
    run.collect_output = false;
    run.collect_task_metrics = true;
    JobResult result;
    ANTIMR_CHECK_OK(RunJob(
        anticombine::EnableAntiCombining(base, v.options), splits, run,
        &result));
    const TaskStats s = ReduceTaskStats(result);
    std::printf("%-20s %12s %12s %9.2fx %12llu %12llu\n", v.label,
                FormatNanos(s.max_cpu).c_str(),
                FormatNanos(static_cast<uint64_t>(s.mean_cpu)).c_str(),
                s.mean_cpu == 0 ? 0 : static_cast<double>(s.max_cpu) /
                                          s.mean_cpu,
                static_cast<unsigned long long>(s.max_remaps),
                static_cast<unsigned long long>(s.total_remaps));
  }

  PaperNote("Section 6.2: LazySH concentrates duplicate Map executions on "
            "the reducers that receive the most encoded records; skew grows "
            "with T and vanishes at T=0, the knob the paper gives users to "
            "trade total cost against completion time");
  return 0;
}
