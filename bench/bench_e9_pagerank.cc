// E9 — Section 7.7.2, "Page Rank": 5 iterations on a power-law web graph
// (the ClueWeb09 stand-in). Each node's rank contribution is duplicated
// once per out-edge — exactly the sharing EagerSH/LazySH collapse.
// Expected shape: shuffle ~2.7x smaller, disk read/write ~3.5x/3.2x,
// CPU ~2.8x, runtime ~2.4x.
#include "bench_util.h"
#include "datagen/graph.h"
#include "workloads/pagerank.h"

using namespace antimr;         // NOLINT
using namespace antimr::bench;  // NOLINT

int main() {
  Header("E9: PageRank, 5 iterations", "paper Section 7.7.2",
         "Original vs AdaptiveSH on a power-law graph (mean degree ~28)");

  GraphConfig gc;
  gc.num_nodes = 8000;
  gc.mean_out_degree = 28;
  const auto graph = GraphGenerator(gc).Generate();

  workloads::PageRankConfig cfg;
  cfg.num_nodes = gc.num_nodes;
  cfg.num_reduce_tasks = 8;
  const int kIterations = 5;

  RunOptions run;
  run.hardware = PaperHardware();
  workloads::PageRankRunResult orig, anti;
  ANTIMR_CHECK_OK(workloads::RunPageRank(cfg, graph, kIterations, nullptr,
                                         /*num_map_tasks=*/8, &orig, run));
  anticombine::AntiCombineOptions options;
  ANTIMR_CHECK_OK(workloads::RunPageRank(cfg, graph, kIterations, &options,
                                         /*num_map_tasks=*/8, &anti, run));

  std::printf("%-24s %14s %14s %10s\n", "metric (5-iter totals)", "Original",
              "AdaptiveSH", "factor");
  auto row = [](const char* name, uint64_t a, uint64_t b) {
    std::printf("%-24s %14s %14s %10s\n", name, FormatBytes(a).c_str(),
                FormatBytes(b).c_str(), Ratio(a, b).c_str());
  };
  row("shuffled data", orig.total.shuffle_bytes, anti.total.shuffle_bytes);
  row("disk read", orig.total.disk_bytes_read, anti.total.disk_bytes_read);
  row("disk write", orig.total.disk_bytes_written,
      anti.total.disk_bytes_written);
  std::printf("%-24s %14s %14s %10s\n", "total CPU",
              FormatNanos(orig.total.total_cpu_nanos).c_str(),
              FormatNanos(anti.total.total_cpu_nanos).c_str(),
              Ratio(orig.total.total_cpu_nanos,
                    anti.total.total_cpu_nanos).c_str());
  std::printf("%-24s %14s %14s %10s\n", "runtime",
              FormatNanos(orig.total.wall_nanos).c_str(),
              FormatNanos(anti.total.wall_nanos).c_str(),
              Ratio(orig.total.wall_nanos, anti.total.wall_nanos).c_str());
  std::printf("\nencoding mix: eager=%llu lazy=%llu plain=%llu\n",
              static_cast<unsigned long long>(anti.total.eager_records),
              static_cast<unsigned long long>(anti.total.lazy_records),
              static_cast<unsigned long long>(anti.total.plain_records));

  PaperNote("Section 7.7.2: shuffle reduced 2.7x, disk reads 3.5x, disk "
            "writes 3.2x, total CPU 2.8x, runtime 2.4x");
  return 0;
}
