// Comparison of the three map-side reduction techniques the paper's
// introduction discusses: the classic Combiner, the in-mapper combining
// design pattern [16], and Anti-Combining — on WordCount, where all three
// apply. The paper's point: combining-style techniques need repeated keys
// within a task, while Anti-Combining also exploits repeated *values*, and
// the approaches compose.
#include "bench_util.h"
#include "datagen/random_text.h"
#include "mr/in_mapper_combining.h"
#include "workloads/wordcount.h"

using namespace antimr;         // NOLINT
using namespace antimr::bench;  // NOLINT

int main() {
  Header("Map-side reduction techniques on WordCount",
         "paper Section 1 (Combiner / in-mapper combining [16] / AC)",
         "shuffle volume and map-side cost of each technique");

  RandomTextConfig rc;
  rc.num_lines = 30000;
  rc.words_per_line = 40;
  rc.vocabulary_words = 4000;
  RandomTextGenerator gen(rc);
  const auto splits = gen.MakeSplits(8);

  workloads::WordCountConfig with_combiner;
  with_combiner.with_combiner = true;
  with_combiner.map_buffer_bytes = 256 * 1024;
  workloads::WordCountConfig no_combiner = with_combiner;
  no_combiner.with_combiner = false;

  struct Row {
    const char* label;
    JobSpec spec;
  };
  std::vector<Row> rows;
  rows.push_back({"no reduction", workloads::MakeWordCountJob(no_combiner)});
  rows.push_back({"Combiner", workloads::MakeWordCountJob(with_combiner)});
  rows.push_back({"in-mapper combining",
                  ApplyInMapperCombining(
                      workloads::MakeWordCountJob(with_combiner))});
  rows.push_back({"Anti-Combining",
                  anticombine::EnableAntiCombining(
                      workloads::MakeWordCountJob(no_combiner),
                      anticombine::AntiCombineOptions())});
  {
    // Composition: Anti-Combining over the Combiner-equipped program.
    anticombine::AntiCombineOptions options;  // C = 1
    rows.push_back({"Combiner + AC",
                    anticombine::EnableAntiCombining(
                        workloads::MakeWordCountJob(with_combiner),
                        options)});
  }

  std::printf("%-22s %14s %14s %14s\n", "technique", "shuffle", "disk write",
              "total CPU");
  for (const Row& row : rows) {
    RunOptions run;
    run.collect_output = false;
    JobResult result;
    ANTIMR_CHECK_OK(RunJob(row.spec, splits, run, &result));
    std::printf("%-22s %14s %14s %14s\n", row.label,
                FormatBytes(result.metrics.shuffle_bytes).c_str(),
                FormatBytes(result.metrics.disk_bytes_written).c_str(),
                FormatNanos(result.metrics.total_cpu_nanos).c_str());
  }

  PaperNote("Section 1: a Combiner (or in-mapper combining) 'will only be "
            "effective if many Map output records in the same map task have "
            "the same key' — Anti-Combining works from shared values "
            "instead, and the techniques stack");
  return 0;
}
