// E3 — Section 7.3, "Query-Suggestion With Combiner".
// The count Combiner barely helps the Original program (~12% in the paper:
// too many distinct queries per map batch). With Anti-Combining the user
// sets C = 0 (Combiner off in the map phase), leaving the encoded map
// output unchanged — but the Combiner still runs in the reduce phase inside
// Shared, collapsing its contents so spilling (nearly) disappears.
#include "bench_util.h"
#include "datagen/qlog.h"
#include "workloads/query_suggestion.h"

using namespace antimr;         // NOLINT
using namespace antimr::bench;  // NOLINT

int main() {
  Header("E3: Query-Suggestion with Combiner", "paper Section 7.3",
         "Combiner effectiveness, flag C=0, and reduce-phase combining");

  QLogConfig qc;
  qc.num_records = 60000;
  // Mirror the property that made the paper's Combiner ineffective: most
  // queries in a map batch are distinct, so there is little to combine.
  qc.num_distinct = 20000;
  qc.popularity_skew = 0.7;
  QLogGenerator gen(qc);
  const auto splits = gen.MakeSplits(24);

  workloads::QuerySuggestionConfig cfg;
  cfg.scheme = workloads::QuerySuggestionConfig::Scheme::kPrefix5;

  // 1. Combiner effectiveness in the Original program.
  cfg.with_combiner = false;
  const JobMetrics no_cb =
      RunStrategy(workloads::MakeQuerySuggestionJob(cfg),
                  Strategy::kOriginal, splits);
  cfg.with_combiner = true;
  const JobMetrics with_cb =
      RunStrategy(workloads::MakeQuerySuggestionJob(cfg),
                  Strategy::kOriginal, splits);
  std::printf("Original map output (shuffled):  no Combiner %s,"
              "  with Combiner %s  (reduction %s)\n",
              FormatBytes(no_cb.shuffle_bytes).c_str(),
              FormatBytes(with_cb.shuffle_bytes).c_str(),
              Percent(no_cb.shuffle_bytes, with_cb.shuffle_bytes).c_str());

  // 2. Anti-Combining with C = 0: map output matches the no-Combiner runs
  //    of Figure 9.
  anticombine::AntiCombineOptions c0;
  c0.map_phase_combiner = false;       // the paper's C = 0
  c0.shared_memory_bytes = 256 * 1024;  // tight so spills are observable
  const JobMetrics anti_c0 = RunStrategy(
      workloads::MakeQuerySuggestionJob(cfg), Strategy::kAdaptiveSH, splits,
      c0);

  // Same but with reduce-phase combining disabled, to expose its effect on
  // Shared (the paper reports "virtually no spilling" with it on).
  anticombine::AntiCombineOptions no_shared_cb = c0;
  no_shared_cb.combine_in_shared = false;
  const JobMetrics anti_raw = RunStrategy(
      workloads::MakeQuerySuggestionJob(cfg), Strategy::kAdaptiveSH, splits,
      no_shared_cb);

  std::printf("\nAdaptiveSH (C=0) map output: %s "
              "(unchanged vs no-Combiner AC runs)\n",
              FormatBytes(anti_c0.emitted_bytes).c_str());
  std::printf("\n%-40s %12s %14s\n", "reduce phase", "Shared spills",
              "spill bytes");
  std::printf("%-40s %12llu %14s\n", "without reduce-phase Combine",
              static_cast<unsigned long long>(anti_raw.shared_spills),
              FormatBytes(anti_raw.shared_spill_bytes).c_str());
  std::printf("%-40s %12llu %14s\n", "with reduce-phase Combine (Section 5)",
              static_cast<unsigned long long>(anti_c0.shared_spills),
              FormatBytes(anti_c0.shared_spill_bytes).c_str());

  PaperNote("Combiner shrinks Original by only ~12%, so C=0; Anti-Combining "
            "map output unchanged vs Figure 9; with the Combine function "
            "applied inside Shared, virtually no spilling of Shared occurs");
  return 0;
}
