// E10 — Figure 12, "Total Map Output Size and Runtime for Theta-Join Query".
// The 1-Bucket-Theta band self-join on the Cloud stand-in: bucket-grid
// replication inflates map output by ~(rows+cols); no Combiner applies.
// Strategies: Original, EagerSH, AdaptiveSH, then all three with gzip map
// output compression ("-CP"). LazySH is not reported separately because
// AdaptiveSH chooses LazySH for every record (as the paper observed).
// Expected shape: AdaptiveSH cuts map output ~(replication / partitions
// touched); compressed Original remains larger than *uncompressed*
// Anti-Combining; runtime tracks map output thanks to 1-Bucket-Theta's
// near-perfect load balance.
#include "bench_util.h"
#include "datagen/cloud.h"
#include "workloads/theta_join.h"

using namespace antimr;         // NOLINT
using namespace antimr::bench;  // NOLINT

int main() {
  Header("E10: theta-join map output size and runtime", "paper Figure 12",
         "1-Bucket-Theta band join on Cloud, with and without compression");

  CloudConfig cc;
  cc.num_records = 8000;
  CloudGenerator gen(cc);
  const auto splits = gen.MakeSplits(8);

  workloads::ThetaJoinConfig cfg;
  // Memory-aware sizing: regions of ~1000 records, like the paper's
  // "chunks just small enough to join in memory".
  workloads::SizeGridForMemory(cc.num_records, 1000, &cfg.grid_rows,
                               &cfg.grid_cols);
  cfg.num_reduce_tasks = 8;
  std::printf("grid %dx%d -> replication factor %d, %d reduce tasks\n\n",
              cfg.grid_rows, cfg.grid_cols, cfg.grid_rows + cfg.grid_cols,
              cfg.num_reduce_tasks);

  struct Row {
    const char* label;
    Strategy strategy;
    CodecType codec;
  } rows[] = {
      {"Original", Strategy::kOriginal, CodecType::kNone},
      {"EagerSH", Strategy::kEagerSH, CodecType::kNone},
      {"AdaptiveSH", Strategy::kAdaptiveSH, CodecType::kNone},
      {"Original-CP", Strategy::kOriginal, CodecType::kGzip},
      {"EagerSH-CP", Strategy::kEagerSH, CodecType::kGzip},
      {"AdaptiveSH-CP", Strategy::kAdaptiveSH, CodecType::kGzip},
  };

  std::printf("%-16s %14s %14s %12s %12s\n", "strategy", "map output",
              "transferred", "runtime", "lazy recs");
  uint64_t original_bytes = 0, original_wall = 0;
  for (const Row& r : rows) {
    workloads::ThetaJoinConfig run_cfg = cfg;
    run_cfg.codec = r.codec;
    const JobMetrics m = RunStrategy(workloads::MakeThetaJoinJob(run_cfg),
                                     r.strategy, splits, {}, PaperHardware());
    if (r.strategy == Strategy::kOriginal && r.codec == CodecType::kNone) {
      original_bytes = m.emitted_bytes;
      original_wall = m.wall_nanos;
    }
    std::printf("%-16s %14s %14s %12s %12llu\n", r.label,
                FormatBytes(m.emitted_bytes).c_str(),
                FormatBytes(m.shuffle_bytes).c_str(),
                FormatNanos(m.wall_nanos).c_str(),
                static_cast<unsigned long long>(m.lazy_records));
  }
  (void)original_bytes;
  (void)original_wall;

  PaperNote("Figure 12: replication ~67x made Original emit 926 GB; "
            "AdaptiveSH (all-LazySH) cut map output 9.5x and runtime 9.6x "
            "(6x with compression); compressed Original still exceeded "
            "uncompressed Anti-Combining");
  return 0;
}
