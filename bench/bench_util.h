// Shared harness for the paper-reproduction benches. Each bench binary
// regenerates one table or figure from Section 7 of "Anti-Combining for
// MapReduce" (SIGMOD 2014), printing the measured rows next to the paper's
// reference numbers. Absolute values differ (the substrate is a simulator,
// the data synthetic and scaled down); the *shape* — who wins and by
// roughly what factor — is the reproduction target.
#ifndef ANTIMR_BENCH_BENCH_UTIL_H_
#define ANTIMR_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "antimr.h"

namespace antimr {
namespace bench {

/// The four strategies compared throughout Section 7.
enum class Strategy { kOriginal, kEagerSH, kLazySH, kAdaptiveSH };

inline const char* StrategyName(Strategy s) {
  switch (s) {
    case Strategy::kOriginal:
      return "Original";
    case Strategy::kEagerSH:
      return "EagerSH";
    case Strategy::kLazySH:
      return "LazySH";
    case Strategy::kAdaptiveSH:
      return "AdaptiveSH";
  }
  return "?";
}

inline anticombine::AntiCombineOptions StrategyOptions(Strategy s) {
  switch (s) {
    case Strategy::kEagerSH:
      return anticombine::AntiCombineOptions::EagerOnly();
    case Strategy::kLazySH:
      return anticombine::AntiCombineOptions::LazyOnly();
    default:
      return anticombine::AntiCombineOptions::Unrestricted();
  }
}

/// The paper's testbed, scaled: 7.2K SATA disks and a shared gigabit
/// switch. Benches that report *runtime* enable this so wall time reflects
/// data volume, as it did on the real cluster.
inline SimulatedHardware PaperHardware() {
  SimulatedHardware hw;
  hw.disk_mb_per_s = 60;
  hw.network_mb_per_s = 15;
  return hw;
}

/// Execution knobs a bench can vary on top of the strategy choice.
struct ClusterConfig {
  ShuffleMode shuffle_mode = ShuffleMode::kPipelined;
  int num_workers = 0;    ///< 0 = hardware concurrency
  int fetch_threads = 0;  ///< 0 = num_workers (pipelined mode only)
};

/// Run `spec` under a strategy (kOriginal = untransformed).
inline JobMetrics RunStrategy(const JobSpec& spec, Strategy strategy,
                              const std::vector<InputSplit>& splits,
                              anticombine::AntiCombineOptions options =
                                  anticombine::AntiCombineOptions(),
                              SimulatedHardware hardware = {},
                              ClusterConfig cluster = {}) {
  JobSpec to_run = spec;
  if (strategy != Strategy::kOriginal) {
    anticombine::AntiCombineOptions o = StrategyOptions(strategy);
    // Carry over the Shared/combiner knobs from the caller's options.
    o.map_phase_combiner = options.map_phase_combiner;
    o.combine_in_shared = options.combine_in_shared;
    o.shared_memory_bytes = options.shared_memory_bytes;
    o.shared_spill_merge_threshold = options.shared_spill_merge_threshold;
    o.cross_call_window = options.cross_call_window;
    if (strategy == Strategy::kAdaptiveSH) {
      o.lazy_threshold_nanos = options.lazy_threshold_nanos;
      o.per_partition_choice = options.per_partition_choice;
    }
    to_run = anticombine::EnableAntiCombining(to_run, o);
  }
  RunOptions run;
  run.collect_output = false;
  run.hardware = hardware;
  run.shuffle_mode = cluster.shuffle_mode;
  run.num_workers = cluster.num_workers;
  run.fetch_threads = cluster.fetch_threads;
  JobResult result;
  ANTIMR_CHECK_OK(RunJob(to_run, splits, run, &result));
  return result.metrics;
}

/// One named measurement destined for a bench's machine-readable report.
struct JsonRow {
  std::string name;
  JobMetrics metrics;
  /// Extra raw-JSON members spliced into the row object between "name" and
  /// the metrics counters, e.g. "\"transport\": \"tcp\", \"workers\": 4".
  /// The distributed bench stamps its transport and measured wire bytes
  /// here. Empty = no extra members (existing reports are unchanged).
  std::string extra;
};

/// Report format version stamped into every BENCH_*.json. Bump when the
/// envelope shape changes (v1 was the bare {"rows": [...]} object; v2 added
/// schema_version and the bench name).
constexpr int kReportSchemaVersion = 2;

/// A named JSON array of pre-rendered row objects, for benches whose rows
/// are not JobMetrics counters (record-path stats, scan rows, job-service
/// latencies). Every element must be a complete JSON object.
struct JsonSection {
  std::string name;               ///< array key, e.g. "rows" or "scan"
  std::vector<std::string> rows;  ///< rendered JSON objects, one per row
};

/// Write `sections` to `path` under the shared report envelope
/// {"schema_version": N, "bench": "<binary>", "<section>": [...], ...}.
/// The single place the envelope is stamped: every bench that wants its
/// BENCH_*.json mergeable with the trajectory goes through here (directly,
/// or via WriteJsonReport for JobMetrics-shaped rows).
inline void WriteJsonSections(const std::string& path,
                              const std::string& bench,
                              const std::vector<JsonSection>& sections) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "WriteJsonSections: cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\"schema_version\": %d, \"bench\": \"%s\"",
               kReportSchemaVersion, bench.c_str());
  for (const JsonSection& section : sections) {
    std::fprintf(f, ", \"%s\": [\n", section.name.c_str());
    for (size_t i = 0; i < section.rows.size(); ++i) {
      std::fprintf(f, "  %s%s\n", section.rows[i].c_str(),
                   i + 1 < section.rows.size() ? "," : "");
    }
    std::fprintf(f, "]");
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

/// Write `rows` to `path` as a JSON object
/// {"schema_version": N, "bench": "<binary>", "rows": [{"name":..., ...}]},
/// flattening each JobMetrics via ToJson. Lets scripts ingest bench output
/// (wall/cpu/shuffle-phase counters) without scraping the printed tables.
inline void WriteJsonReport(const std::string& path, const std::string& bench,
                            const std::vector<JsonRow>& rows) {
  JsonSection section;
  section.name = "rows";
  for (const JsonRow& row : rows) {
    // Splice "name" (and any extra members) into the metrics object:
    // {"name": "...", <extra,> <counters>}.
    const std::string json = row.metrics.ToJson();
    const std::string extra = row.extra.empty() ? "" : row.extra + ", ";
    section.rows.push_back("{\"name\": \"" + row.name + "\", " + extra +
                           json.substr(1));
  }
  WriteJsonSections(path, bench, {std::move(section)});
}

inline std::string Ratio(uint64_t base, uint64_t other) {
  if (other == 0) return "-";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", static_cast<double>(base) /
                                               static_cast<double>(other));
  return buf;
}

inline std::string Percent(uint64_t base, uint64_t other) {
  if (base == 0) return "-";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.2f%%",
                100.0 * (static_cast<double>(other) -
                         static_cast<double>(base)) /
                    static_cast<double>(base));
  return buf;
}

inline void Header(const char* experiment, const char* paper_ref,
                   const char* description) {
  std::printf("=====================================================\n");
  std::printf("%s  (%s)\n%s\n", experiment, paper_ref, description);
  std::printf("=====================================================\n");
}

inline void PaperNote(const char* note) {
  std::printf("\npaper reference: %s\n\n", note);
}

}  // namespace bench
}  // namespace antimr

#endif  // ANTIMR_BENCH_BENCH_UTIL_H_
