// E1 — Section 7.1, "Anti-Combining Overhead Analysis".
// Sort on RandomText emits one Map output record per input record, so
// Anti-Combining cannot share anything: AdaptiveSH must degenerate to
// flagged-plain records, and every cost must stay within a few percent of
// the Original program (the paper measured +0.2% disk, +0.15% transfer,
// +7.8% CPU, +1.7% runtime).
#include "bench_util.h"
#include "datagen/random_text.h"
#include "workloads/sort.h"

using namespace antimr;         // NOLINT
using namespace antimr::bench;  // NOLINT

int main() {
  Header("E1: Anti-Combining overhead on Sort", "paper Section 7.1",
         "AdaptiveSH vs Original when no sharing opportunities exist");

  RandomTextConfig rc;
  rc.num_lines = 60000;
  RandomTextGenerator gen(rc);
  const auto splits = gen.MakeSplits(8);

  workloads::SortConfig sc;
  sc.num_reduce_tasks = 8;
  const JobSpec spec = workloads::MakeSortJob(sc);

  const JobMetrics orig = RunStrategy(spec, Strategy::kOriginal, splits, {},
                                      PaperHardware());
  const JobMetrics anti = RunStrategy(spec, Strategy::kAdaptiveSH, splits, {},
                                      PaperHardware());

  std::printf("%-24s %14s %14s %10s\n", "metric", "Original", "AdaptiveSH",
              "delta");
  auto row = [](const char* name, uint64_t a, uint64_t b) {
    std::printf("%-24s %14llu %14llu %10s\n", name,
                static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(b), Percent(a, b).c_str());
  };
  row("disk read (B)", orig.disk_bytes_read, anti.disk_bytes_read);
  row("disk write (B)", orig.disk_bytes_written, anti.disk_bytes_written);
  row("data transfer (B)", orig.shuffle_bytes, anti.shuffle_bytes);
  row("map output (B)", orig.emitted_bytes, anti.emitted_bytes);
  row("total CPU (ns)", orig.total_cpu_nanos, anti.total_cpu_nanos);
  row("runtime (ns)", orig.wall_nanos, anti.wall_nanos);

  std::printf("\nencoding mix under AdaptiveSH: plain=%llu eager=%llu "
              "lazy=%llu (all records must be flagged-plain)\n",
              static_cast<unsigned long long>(anti.plain_records),
              static_cast<unsigned long long>(anti.eager_records),
              static_cast<unsigned long long>(anti.lazy_records));
  PaperNote("AdaptiveSH cost deltas on Sort/RandomText: +0.2% disk R/W, "
            "+0.15% transfer, +7.8% CPU, +1.7% runtime — i.e., only the "
            "per-record flag bytes and the search for sharing opportunities");

  // ---- Shuffle pipeline A/B ----------------------------------------------
  // Four map waves (32 splits on 8 workers) under simulated hardware: the
  // pipelined scheduler fetches each wave's segments while later waves are
  // still mapping, so only the last wave's shuffle is exposed and runtime
  // drops well below the barrier model's. The 16 fetch threads are Hadoop's
  // "parallel copies": each reducer's segments transfer over many streams at
  // once, where the barrier model pulls them serially through its merge.
  std::printf("\n--- shuffle pipeline: pipelined vs barrier (32 splits, "
              "8 workers, 8 reducers, simulated hardware) ---\n");
  const auto pipeline_splits = gen.MakeSplits(32);
  ClusterConfig barrier_cluster;
  barrier_cluster.shuffle_mode = ShuffleMode::kBarrier;
  barrier_cluster.num_workers = 8;
  ClusterConfig pipelined_cluster;
  pipelined_cluster.shuffle_mode = ShuffleMode::kPipelined;
  pipelined_cluster.num_workers = 8;
  pipelined_cluster.fetch_threads = 16;

  const JobMetrics barrier =
      RunStrategy(spec, Strategy::kOriginal, pipeline_splits, {},
                  PaperHardware(), barrier_cluster);
  const JobMetrics pipelined =
      RunStrategy(spec, Strategy::kOriginal, pipeline_splits, {},
                  PaperHardware(), pipelined_cluster);

  std::printf("%-24s %14s %14s %10s\n", "metric", "Barrier", "Pipelined",
              "delta");
  row("runtime (ns)", barrier.wall_nanos, pipelined.wall_nanos);
  row("total CPU (ns)", barrier.total_cpu_nanos, pipelined.total_cpu_nanos);
  row("data transfer (B)", barrier.shuffle_bytes, pipelined.shuffle_bytes);
  row("fetch wait (ns)", barrier.shuffle_fetch_wait_nanos,
      pipelined.shuffle_fetch_wait_nanos);
  row("decode (ns)", barrier.shuffle_decode_nanos,
      pipelined.shuffle_decode_nanos);
  row("merge (ns)", barrier.shuffle_merge_nanos,
      pipelined.shuffle_merge_nanos);
  row("peak buffered (B)", barrier.shuffle_peak_buffered_bytes,
      pipelined.shuffle_peak_buffered_bytes);
  std::printf("overlapped fetches: %llu of %llu segment copies\n",
              static_cast<unsigned long long>(
                  pipelined.shuffle_overlapped_fetches),
              static_cast<unsigned long long>(32 * 8));
  const double improvement =
      barrier.wall_nanos > 0
          ? 100.0 *
                (static_cast<double>(barrier.wall_nanos) -
                 static_cast<double>(pipelined.wall_nanos)) /
                static_cast<double>(barrier.wall_nanos)
          : 0.0;
  std::printf("pipelined runtime improvement over barrier: %.1f%%\n",
              improvement);

  WriteJsonReport("BENCH_e1.json", "bench_e1_overhead",
                  {{"original", orig},
                   {"adaptive_sh", anti},
                   {"barrier", barrier},
                   {"pipelined", pipelined}});
  return 0;
}
