// E1 — Section 7.1, "Anti-Combining Overhead Analysis".
// Sort on RandomText emits one Map output record per input record, so
// Anti-Combining cannot share anything: AdaptiveSH must degenerate to
// flagged-plain records, and every cost must stay within a few percent of
// the Original program (the paper measured +0.2% disk, +0.15% transfer,
// +7.8% CPU, +1.7% runtime).
#include "bench_util.h"
#include "datagen/random_text.h"
#include "workloads/sort.h"

using namespace antimr;         // NOLINT
using namespace antimr::bench;  // NOLINT

int main() {
  Header("E1: Anti-Combining overhead on Sort", "paper Section 7.1",
         "AdaptiveSH vs Original when no sharing opportunities exist");

  RandomTextConfig rc;
  rc.num_lines = 60000;
  RandomTextGenerator gen(rc);
  const auto splits = gen.MakeSplits(8);

  workloads::SortConfig sc;
  sc.num_reduce_tasks = 8;
  const JobSpec spec = workloads::MakeSortJob(sc);

  const JobMetrics orig = RunStrategy(spec, Strategy::kOriginal, splits, {},
                                      PaperHardware());
  const JobMetrics anti = RunStrategy(spec, Strategy::kAdaptiveSH, splits, {},
                                      PaperHardware());

  std::printf("%-24s %14s %14s %10s\n", "metric", "Original", "AdaptiveSH",
              "delta");
  auto row = [](const char* name, uint64_t a, uint64_t b) {
    std::printf("%-24s %14llu %14llu %10s\n", name,
                static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(b), Percent(a, b).c_str());
  };
  row("disk read (B)", orig.disk_bytes_read, anti.disk_bytes_read);
  row("disk write (B)", orig.disk_bytes_written, anti.disk_bytes_written);
  row("data transfer (B)", orig.shuffle_bytes, anti.shuffle_bytes);
  row("map output (B)", orig.emitted_bytes, anti.emitted_bytes);
  row("total CPU (ns)", orig.total_cpu_nanos, anti.total_cpu_nanos);
  row("runtime (ns)", orig.wall_nanos, anti.wall_nanos);

  std::printf("\nencoding mix under AdaptiveSH: plain=%llu eager=%llu "
              "lazy=%llu (all records must be flagged-plain)\n",
              static_cast<unsigned long long>(anti.plain_records),
              static_cast<unsigned long long>(anti.eager_records),
              static_cast<unsigned long long>(anti.lazy_records));
  PaperNote("AdaptiveSH cost deltas on Sort/RandomText: +0.2% disk R/W, "
            "+0.15% transfer, +7.8% CPU, +1.7% runtime — i.e., only the "
            "per-record flag bytes and the search for sharing opportunities");
  return 0;
}
