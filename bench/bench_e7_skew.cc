// E7-skew — per-reducer load balance under a Zipf-skewed shuffle.
//
// A wordcount over Zipf(s=1.5) text concentrates ~40% of all intermediate
// records on the single most popular word. Three partitioning modes on the
// distributed engine:
//
//   hash   HashPartitioner — the hot key pins one reducer (the baseline
//          skew problem: max/mean per-reducer load >= 3x).
//   range  sampled quantile pivots (RangePartitioner) — balances the cold
//          keys but the hot key still lands in one range.
//   split  range + hot-key splitting: sampled superfrequent keys are salted
//          across ranges and a deterministic merge fix-up stage restores
//          the exact unsplit output (max/mean <= 1.5x).
//
// Crossed with the Anti-Combining strategies (salted keys must survive
// EagerSH/LazySH re-execution) and with speculative execution on/off (a
// backup attempt must never change the output). Load spread is gated on
// reduce input *records* — invariant under the strategies' different wire
// encodings — and reported in bytes alongside. Every run's order-insensitive
// output hash must be identical; results land in BENCH_e7.json.
#include <algorithm>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/hash.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "engine/coordinator.h"
#include "engine/job_registry.h"
#include "engine/skew_runner.h"
#include "engine/worker.h"
#include "net/transport.h"
#include "workloads/registry.h"

using namespace antimr;         // NOLINT
using namespace antimr::bench;  // NOLINT

namespace {

constexpr int kReduces = 8;
constexpr int kMaps = 8;
constexpr int kWorkers = 4;

/// Zipf(s) wordcount input: `lines` lines of `words_per_line` words drawn
/// from a `vocab`-word dictionary; rank 0 dominates.
std::vector<KV> ZipfLines(int lines, size_t vocab, double s,
                          int words_per_line, uint64_t seed) {
  Random rng(seed);
  ZipfSampler zipf(vocab, s);
  std::vector<KV> records;
  records.reserve(static_cast<size_t>(lines));
  for (int i = 0; i < lines; ++i) {
    std::string line;
    for (int j = 0; j < words_per_line; ++j) {
      if (j > 0) line += ' ';
      char word[16];
      std::snprintf(word, sizeof(word), "w%04zu", zipf.Sample(&rng));
      line += word;
    }
    records.push_back({"", std::move(line)});
  }
  return records;
}

std::vector<std::vector<KV>> Chunk(const std::vector<KV>& records,
                                   int num_splits) {
  std::vector<std::vector<KV>> chunks;
  const size_t per =
      (records.size() + num_splits - 1) / static_cast<size_t>(num_splits);
  for (size_t start = 0; start < records.size(); start += per) {
    const size_t end = std::min(records.size(), start + per);
    chunks.emplace_back(records.begin() + static_cast<long>(start),
                        records.begin() + static_cast<long>(end));
  }
  return chunks;
}

/// Order-insensitive output fingerprint (same construction as the CLI's
/// --output-hash): equal across partitioner modes and process layouts.
uint64_t OutputHash(const std::vector<KV>& records) {
  uint64_t h = 0;
  for (const KV& kv : records) {
    h += Hash64(Slice(kv.value), Hash64(Slice(kv.key)));
  }
  return h;
}

struct Spread {
  uint64_t max = 0;
  double mean = 0;
  double ratio = 0;  ///< max / mean; 0 when nothing was shuffled
};

Spread LoadSpread(const std::vector<uint64_t>& per_reducer) {
  Spread s;
  if (per_reducer.empty()) return s;
  uint64_t total = 0;
  for (uint64_t v : per_reducer) {
    s.max = std::max(s.max, v);
    total += v;
  }
  s.mean = static_cast<double>(total) /
           static_cast<double>(per_reducer.size());
  if (s.mean > 0) s.ratio = static_cast<double>(s.max) / s.mean;
  return s;
}

struct SkewRun {
  engine::DistJobResult result;
  uint64_t wall_nanos = 0;
  bool split = false;       ///< the split1 -> merge chain actually ran
  size_t hot_keys = 0;      ///< superfrequent keys the sample found
  uint64_t output_hash = 0;
};

/// Fresh cluster per measurement, as in bench_e5: coordinator + in-process
/// workers on one transport, one job, teardown.
SkewRun RunOne(const std::string& transport_kind, const std::string& mode,
               const std::string& strategy, bool speculation,
               const std::vector<std::vector<KV>>& splits) {
  std::unique_ptr<net::Transport> transport =
      transport_kind == "tcp" ? net::NewTcpTransport()
                              : net::NewLoopbackTransport();
  engine::Coordinator coord(transport.get());
  ANTIMR_CHECK_OK(coord.Start(""));
  std::vector<std::unique_ptr<engine::Worker>> fleet;
  for (int i = 0; i < kWorkers; ++i) {
    engine::WorkerOptions options;
    options.name = "skew_w" + std::to_string(i);
    options.slots = 2;
    fleet.push_back(
        std::make_unique<engine::Worker>(transport.get(), options));
    ANTIMR_CHECK_OK(fleet.back()->Start(coord.addr()));
  }
  ANTIMR_CHECK_OK(coord.WaitForWorkers(kWorkers, 10ull * 1000 * 1000 * 1000)
                      ? Status::OK()
                      : Status::IOError("worker quorum timeout"));

  // The combiner stays off so the skewed shuffle is actually skewed.
  net::JobParams params = {{"reduces", std::to_string(kReduces)},
                           {"combiner", "false"}};
  if (strategy != "original") params.emplace_back("anti_combine", strategy);

  engine::DistJobOptions options;
  options.job_name = "wordcount";
  options.params = params;
  options.splits = splits;
  options.collect_outputs = true;
  options.speculative_execution = speculation;

  SkewRun run;
  const uint64_t t0 = NowNanos();
  if (mode == "hash") {
    ANTIMR_CHECK_OK(engine::RunDistributedJob(&coord, options, &run.result));
  } else {
    // The sampling pass models the *base* mapper: no anti-combine params.
    net::JobParams base = {{"reduces", std::to_string(kReduces)},
                           {"combiner", "false"}};
    JobSpec sample_spec;
    ANTIMR_CHECK_OK(
        engine::BuildRegisteredJob(options.job_name, base, &sample_spec));
    engine::DistSkewResult skew;
    ANTIMR_CHECK_OK(engine::RunDistributedSkewJob(
        &coord, options, sample_spec, SkewSampleOptions(), mode == "split",
        &skew));
    run.result = std::move(skew.job);
    run.split = skew.split;
    run.hot_keys = skew.model.hot_keys.size();
  }
  run.wall_nanos = NowNanos() - t0;
  run.output_hash = OutputHash(run.result.FlatOutput());

  coord.Stop();
  for (auto& worker : fleet) worker->Stop();
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool perf_gate = true;
  std::string transport_arg = "both";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--no-perf-gate") == 0) perf_gate = false;
    if (std::strncmp(argv[i], "--transport=", 12) == 0) {
      transport_arg = argv[i] + 12;
    }
  }

  workloads::RegisterStandardJobs();
  Header("E7-skew: range partitioning + hot-key splitting vs hash",
         "skew extension; paper Section 7 workloads under Zipf input",
         "per-reducer load spread and wall time, crossed with "
         "EagerSH/LazySH/Adaptive and speculation");

  const std::vector<KV> text =
      quick ? ZipfLines(1200, 500, 1.5, 6, 0x5eed)
            : ZipfLines(6000, 2000, 1.5, 6, 0x5eed);
  const auto splits = Chunk(text, kMaps);

  std::vector<std::string> transports;
  if (transport_arg == "both") {
    transports = {"loopback", "tcp"};
  } else {
    transports = {transport_arg};
  }
  const std::vector<std::string> strategies =
      quick ? std::vector<std::string>{"original", "adaptive"}
            : std::vector<std::string>{"original", "eager", "lazy",
                                       "adaptive"};

  std::vector<JsonRow> rows;
  std::map<std::string, double> gate_ratio;  // "<transport>/<mode>" -> ratio
  std::vector<uint64_t> hashes;
  bool split_ran = false;
  uint64_t total_backups = 0;

  std::printf("%-9s %-6s %-9s %-5s %10s %9s %9s %7s %7s\n", "transport",
              "mode", "strategy", "spec", "wall", "rec-max", "rec-mean",
              "spread", "backups");
  for (const std::string& transport : transports) {
    for (const std::string mode : {"hash", "range", "split"}) {
      for (const std::string& strategy : strategies) {
        for (const bool speculation : {false, true}) {
          const SkewRun run =
              RunOne(transport, mode, strategy, speculation, splits);
          const Spread records = LoadSpread(run.result.reduce_input_records);
          const Spread bytes = LoadSpread(run.result.reduce_shuffle_bytes);
          hashes.push_back(run.output_hash);
          split_ran = split_ran || run.split;
          total_backups += run.result.spec_backups;
          std::printf("%-9s %-6s %-9s %-5s %10s %9llu %9.0f %6.2fx %7llu\n",
                      transport.c_str(), mode.c_str(), strategy.c_str(),
                      speculation ? "on" : "off",
                      FormatNanos(run.wall_nanos).c_str(),
                      static_cast<unsigned long long>(records.max),
                      records.mean, records.ratio,
                      static_cast<unsigned long long>(
                          run.result.spec_backups));

          // The gates read the untransformed, speculation-off rows: record
          // counts there are pure partitioning signal.
          if (strategy == "original" && !speculation) {
            gate_ratio[transport + "/" + mode] = records.ratio;
          }

          JsonRow row;
          row.name = transport + "/" + mode + "/" + strategy +
                     (speculation ? "/spec" : "/nospec");
          row.metrics = run.result.metrics;
          row.metrics.wall_nanos = run.wall_nanos;
          char extra[512];
          std::snprintf(
              extra, sizeof(extra),
              "\"transport\": \"%s\", \"mode\": \"%s\", "
              "\"strategy\": \"%s\", \"speculation\": %s, "
              "\"split\": %s, \"hot_keys\": %zu, "
              "\"reduce_records_max\": %llu, \"reduce_records_mean\": %.1f, "
              "\"reduce_records_spread\": %.3f, "
              "\"reduce_bytes_max\": %llu, \"reduce_bytes_spread\": %.3f, "
              "\"spec_backups\": %llu, \"spec_backup_wins\": %llu, "
              "\"spec_cancels\": %llu, \"output_hash\": \"%016llx\"",
              transport.c_str(), mode.c_str(), strategy.c_str(),
              speculation ? "true" : "false", run.split ? "true" : "false",
              run.hot_keys,
              static_cast<unsigned long long>(records.max), records.mean,
              records.ratio, static_cast<unsigned long long>(bytes.max),
              bytes.ratio,
              static_cast<unsigned long long>(run.result.spec_backups),
              static_cast<unsigned long long>(run.result.spec_backup_wins),
              static_cast<unsigned long long>(run.result.spec_cancels),
              static_cast<unsigned long long>(run.output_hash));
          row.extra = extra;
          rows.push_back(std::move(row));
        }
      }
    }
  }

  PaperNote(
      "Hash partitioning pins the Zipf head on one reducer (spread >= 3x); "
      "sampled range pivots balance the cold keys; salting the sampled hot "
      "keys plus the merge fix-up stage levels the heavy stage-1 shuffle to "
      "<= 1.5x while the output multiset — and hash — stay identical, under "
      "every Anti-Combining strategy and with speculation racing backups.");
  WriteJsonReport("BENCH_e7.json", "bench_e7_skew", rows);

  bool ok = true;
  // Correctness gates (always on): identical output everywhere, and the
  // split chain must actually have run.
  for (uint64_t h : hashes) {
    if (h != hashes[0]) {
      std::fprintf(stderr, "FAIL: output hash diverged across runs\n");
      ok = false;
      break;
    }
  }
  if (!split_ran) {
    std::fprintf(stderr,
                 "FAIL: sampling never found a hot key; split path unused\n");
    ok = false;
  }
  // Load-spread gates on the measured record counts.
  for (const auto& [name, ratio] : gate_ratio) {
    const bool is_hash = name.find("/hash") != std::string::npos;
    const bool is_split = name.find("/split") != std::string::npos;
    if (is_hash && ratio < 3.0) {
      std::fprintf(stderr,
                   "%s: %s spread %.2fx < 3x — input not skewed enough to "
                   "demonstrate the problem\n",
                   perf_gate ? "FAIL" : "note", name.c_str(), ratio);
      if (perf_gate) ok = false;
    }
    if (is_split && ratio > 1.5) {
      std::fprintf(stderr,
                   "%s: %s spread %.2fx > 1.5x — hot-key split failed to "
                   "level the shuffle\n",
                   perf_gate ? "FAIL" : "note", name.c_str(), ratio);
      if (perf_gate) ok = false;
    }
  }
  if (ok) {
    std::printf("\nall gates passed: identical output hash %016llx across "
                "%zu runs; spec backups launched: %llu\n",
                static_cast<unsigned long long>(hashes.empty() ? 0
                                                               : hashes[0]),
                hashes.size(),
                static_cast<unsigned long long>(total_backups));
  }
  return ok ? 0 : 1;
}
