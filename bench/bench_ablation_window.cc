// Ablation — the paper's Section 9 future-work extension, implemented here:
// EagerSH value-sharing across all Map calls in a window, instead of only
// within one call. Sweeps the window size on two workloads:
//  * WordCount (all values identical): cross-call grouping collapses the
//    per-word duplication the single-call algorithm cannot see.
//  * Query-Suggestion: values are (1, query), distinct across calls, so a
//    larger window helps only via repeated queries — a much weaker effect.
#include "bench_util.h"
#include "datagen/qlog.h"
#include "datagen/random_text.h"
#include "workloads/query_suggestion.h"
#include "workloads/wordcount.h"

using namespace antimr;         // NOLINT
using namespace antimr::bench;  // NOLINT

namespace {

void Sweep(const char* label, const JobSpec& spec,
           const std::vector<InputSplit>& splits) {
  std::printf("%s\n%-8s %14s %14s %12s\n", label, "window", "emitted recs",
              "emitted bytes", "vs window=1");
  uint64_t base = 0;
  for (int window : {1, 4, 16, 64, 256}) {
    anticombine::AntiCombineOptions options;
    options.cross_call_window = window;
    const JobMetrics m =
        RunStrategy(spec, Strategy::kAdaptiveSH, splits, options);
    if (window == 1) base = m.emitted_bytes;
    std::printf("%-8d %14llu %14s %12s\n", window,
                static_cast<unsigned long long>(m.emitted_records),
                FormatBytes(m.emitted_bytes).c_str(),
                Ratio(base, m.emitted_bytes).c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  Header("Ablation: cross-call sharing window",
         "paper Section 9 (future work)",
         "EagerSH grouping across Map calls in the same task");

  RandomTextConfig rc;
  rc.num_lines = 20000;
  rc.vocabulary_words = 2000;
  RandomTextGenerator text(rc);
  workloads::WordCountConfig wc;
  wc.with_combiner = false;  // isolate the encoding effect
  Sweep("WordCount (identical values):", workloads::MakeWordCountJob(wc),
        text.MakeSplits(8));

  QLogConfig qc;
  qc.num_records = 20000;
  QLogGenerator qlog(qc);
  workloads::QuerySuggestionConfig qs;
  qs.scheme = workloads::QuerySuggestionConfig::Scheme::kPrefix5;
  Sweep("Query-Suggestion (distinct values):",
        workloads::MakeQuerySuggestionJob(qs), qlog.MakeSplits(8));

  PaperNote("not a paper experiment — this implements and quantifies the "
            "extension the authors name as future work in Section 9. "
            "Windowed sharing collapses WordCount's records by orders of "
            "magnitude; on value-distinct workloads it can mildly *hurt*, "
            "because one Eager/Lazy choice per partition now covers the "
            "whole window instead of each call choosing independently — a "
            "trade-off the paper's future-work section did not anticipate");
  return 0;
}
