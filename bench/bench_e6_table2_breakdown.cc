// E6 — Table 2, "Total Cost Breakdown of Query-Suggestion" (Prefix-5).
// Rows: Original and AdaptiveSH, each plain / -CB (with Combiner) /
// -CP (with gzip compression). Columns: total CPU, disk read, disk write.
// Expected shape: AdaptiveSH cuts CPU and disk by integer factors;
// AdaptiveSH-CB eliminates Shared spilling; AdaptiveSH-CP has the smallest
// disk footprint of all.
#include "bench_util.h"
#include "datagen/qlog.h"
#include "workloads/query_suggestion.h"

using namespace antimr;         // NOLINT
using namespace antimr::bench;  // NOLINT

int main() {
  Header("E6: total cost breakdown of Query-Suggestion", "paper Table 2",
         "Original vs AdaptiveSH x {plain, -CB, -CP}, Prefix-5");

  QLogConfig qc;
  qc.num_records = 40000;
  QLogGenerator gen(qc);
  const auto splits = gen.MakeSplits(8);

  struct Row {
    const char* label;
    Strategy strategy;
    bool combiner;
    CodecType codec;
  } rows[] = {
      {"Original", Strategy::kOriginal, false, CodecType::kNone},
      {"Original-CB", Strategy::kOriginal, true, CodecType::kNone},
      {"Original-CP", Strategy::kOriginal, false, CodecType::kGzip},
      {"AdaptiveSH", Strategy::kAdaptiveSH, false, CodecType::kNone},
      {"AdaptiveSH-CB", Strategy::kAdaptiveSH, true, CodecType::kNone},
      {"AdaptiveSH-CP", Strategy::kAdaptiveSH, false, CodecType::kGzip},
  };

  std::printf("%-16s %14s %14s %14s %14s\n", "algorithm", "total CPU",
              "disk read", "disk write", "Shared spills");
  for (const Row& r : rows) {
    workloads::QuerySuggestionConfig cfg;
    cfg.scheme = workloads::QuerySuggestionConfig::Scheme::kPrefix5;
    cfg.with_combiner = r.combiner;
    cfg.codec = r.codec;
    anticombine::AntiCombineOptions options;
    options.map_phase_combiner = false;  // C = 0 per Section 7.3
    options.shared_memory_bytes = 512 * 1024;  // tight enough to show spills
    const JobMetrics m = RunStrategy(workloads::MakeQuerySuggestionJob(cfg),
                                     r.strategy, splits, options);
    std::printf("%-16s %14s %14s %14s %14llu\n", r.label,
                FormatNanos(m.total_cpu_nanos).c_str(),
                FormatBytes(m.disk_bytes_read).c_str(),
                FormatBytes(m.disk_bytes_written).c_str(),
                static_cast<unsigned long long>(m.shared_spills));
  }

  PaperNote("Table 2 (1000 sec / GB / GB): Original 168.8/566.1/741.5, "
            "Original-CB 172.9/510.4/664.6, Original-CP 125.2/64.5/82.3, "
            "AdaptiveSH 30.8/150.8/179.9 (Shared spilled 1575 times), "
            "AdaptiveSH-CB 20.8/61.9/84.9 (no spills), "
            "AdaptiveSH-CP 27.9/15/20.6");
  return 0;
}
