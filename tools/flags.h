// Minimal --key=value flag parsing for the CLI tools.
#ifndef ANTIMR_TOOLS_FLAGS_H_
#define ANTIMR_TOOLS_FLAGS_H_

#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace antimr {
namespace tools {

/// Parses "--key=value" and bare "--key" (value "1") arguments; positional
/// arguments are collected in order.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        const size_t eq = arg.find('=');
        if (eq == std::string::npos) {
          values_[arg.substr(2)] = "1";
        } else {
          values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
        }
      } else {
        positional_.push_back(std::move(arg));
      }
    }
  }

  std::string GetString(const std::string& key,
                        const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  uint64_t GetUint(const std::string& key, uint64_t fallback) const {
    auto it = values_.find(key);
    return it == values_.end()
               ? fallback
               : std::strtoull(it->second.c_str(), nullptr, 10);
  }

  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback
                               : std::strtod(it->second.c_str(), nullptr);
  }

  bool GetBool(const std::string& key, bool fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    return it->second != "0" && it->second != "false";
  }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace tools
}  // namespace antimr

#endif  // ANTIMR_TOOLS_FLAGS_H_
