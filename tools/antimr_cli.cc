// antimr_cli — command-line driver for the library: run any built-in
// workload under any strategy and print the full metrics breakdown, or
// compare the compression codecs.
//
// Usage:
//   antimr_cli run --workload=qsuggest --strategy=adaptive --records=50000
//       [--strategy=original|eager|lazy|adaptive]
//       [--threshold-us=N] [--window=N] [--c-flag=0|1]
//       [--codec=none|snappy|deflate|gzip|bzip2]
//       [--maps=N] [--reduces=N] [--seed=N]
//       [--disk-mbps=N --net-mbps=N]   (simulated hardware)
//       [--partitioner=hash|prefix1|prefix5]   (qsuggest only)
//   antimr_cli pipeline --records=50000 [--stage1-strategy=eager]
//       [--stage2-strategy=lazy] [--stage1-shuffle=pipelined|barrier]
//       [--stage2-shuffle=pipelined|barrier]   (wordcount -> sort DAG)
//   antimr_cli codecs [--size=BYTES]
//   antimr_cli help
#include <sys/stat.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "antimr.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "engine/coordinator.h"
#include "engine/job_registry.h"
#include "engine/job_service.h"
#include "engine/skew_runner.h"
#include "engine/worker.h"
#include "net/frame.h"
#include "net/transport.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "datagen/cloud.h"
#include "datagen/graph.h"
#include "datagen/qlog.h"
#include "datagen/random_text.h"
#include "tools/flags.h"
#include "workloads/pagerank.h"
#include "workloads/query_suggestion.h"
#include "workloads/registry.h"
#include "workloads/sort.h"
#include "workloads/theta_join.h"
#include "workloads/wordcount.h"

namespace antimr {
namespace tools {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  antimr_cli run --workload=qsuggest|wordcount|pagerank|thetajoin|"
      "sort [options]\n"
      "  antimr_cli pipeline [options]      wordcount -> sort two-stage DAG\n"
      "  antimr_cli codecs [--size=BYTES]\n"
      "  antimr_cli worker --connect=HOST:PORT [--slots=N] [--name=S]\n"
      "                                     join a distributed cluster\n"
      "  antimr_cli status --connect=HOST:PORT [--endpoint=status|metrics]\n"
      "                                     scrape a live coordinator\n"
      "  antimr_cli serve [serve options]   persistent multi-tenant job\n"
      "                                     daemon (see 'serve options')\n"
      "  antimr_cli submit --connect=HOST:PORT --workload=W [--pool=P]\n"
      "                    [--wait] [run options]   submit a job to a daemon\n"
      "  antimr_cli jobs --connect=HOST:PORT        list a daemon's job table\n"
      "  antimr_cli abort --connect=HOST:PORT --job=ID\n"
      "options:\n"
      "  --strategy=original|eager|lazy|adaptive   (default adaptive)\n"
      "  --engine=dag|loop     pagerank driver: one multi-stage plan (dag)\n"
      "                        or one job per iteration (loop, default dag)\n"
      "pipeline options:\n"
      "  --stage1-strategy=original|eager|lazy|adaptive  (default eager)\n"
      "  --stage2-strategy=original|eager|lazy|adaptive  (default lazy)\n"
      "  --stage1-shuffle=pipelined|barrier              (default pipelined)\n"
      "  --stage2-shuffle=pipelined|barrier              (default pipelined)\n"
      "  --threshold-us=N      lazy cost threshold T in microseconds\n"
      "  --window=N            cross-call sharing window (default 1)\n"
      "  --c-flag=0|1          map-phase combiner flag C (default 1)\n"
      "  --codec=none|snappy|deflate|gzip|bzip2    (default none)\n"
      "  --records=N --maps=N --reduces=N --seed=N\n"
      "  --disk-mbps=N --net-mbps=N   simulated hardware (default off)\n"
      "  --row-format=row|columnar    storage layout of spills and shuffle\n"
      "                        segments (default: the spec's, normally row)\n"
      "  --chunk-block-size=BYTES  columnar block target size (default:\n"
      "                        the shuffle block size)\n"
      "  --chunk-codec=none|snappy|deflate|gzip|bzip2  per-column codec\n"
      "                        cap for columnar chunks (default: --codec)\n"
      "  --max-task-attempts=N total executions allowed per task; N>1\n"
      "                        retries transient (I/O) task failures with\n"
      "                        capped exponential backoff (default 1)\n"
      "  --json                dump metrics as a JSON object\n"
      "  --output-hash         collect the output and print a stable,\n"
      "                        order-insensitive hash (identical across\n"
      "                        partitioner choices and process layouts)\n"
      "  --partitioner=hash|prefix1|prefix5        (qsuggest)\n"
      "  --partitioner=hash|range  sampled range partitioning for the other\n"
      "                        workloads (local and --dist runs)\n"
      "  --hot-key-split       with range: salt sampled superfrequent keys\n"
      "                        across reducers + a deterministic merge\n"
      "                        fix-up stage (output multiset unchanged)\n"
      "  --sample-per-split=N --hot-key-fraction=F --hot-fanout=N\n"
      "  --sample-seed=N       sampling-pass knobs (defaults 256/0.10/\n"
      "                        reduces/fixed)\n"
      "distributed run (wordcount, sort, thetajoin):\n"
      "  --dist=off|loopback|tcp   off (default) runs single-process;\n"
      "                        loopback runs coordinator + in-process\n"
      "                        workers over the in-memory transport; tcp\n"
      "                        listens for external `antimr_cli worker`\n"
      "                        processes on real sockets\n"
      "  --workers=N           worker quorum to wait for / spawn (default 2)\n"
      "  --listen=HOST:PORT    coordinator bind address (tcp; default\n"
      "                        127.0.0.1:0 = ephemeral, printed on stdout)\n"
      "  --wait-workers-ms=N   registration quorum timeout (default 30000)\n"
      "  --heartbeat-timeout-ms=N  declare a silent worker lost (default "
      "2000)\n"
      "  --status-listen=HOST:PORT  serve GET /status (JSON) and /metrics\n"
      "                        (cluster-federated Prometheus text) over HTTP\n"
      "                        (default off; =127.0.0.1:0 for ephemeral)\n"
      "  --cluster-trace=FILE  capture spans on every node and write one\n"
      "                        merged Chrome/Perfetto trace (a pid lane per\n"
      "                        process, flow arrows for dispatch + shuffle)\n"
      "  --gate-file=PATH      after the worker quorum, wait for PATH to\n"
      "                        exist before submitting the job (lets scripts\n"
      "                        probe /status first)\n"
      "  --speculation         launch backup attempts for straggler tasks;\n"
      "                        first finisher wins, the loser is cancelled\n"
      "                        and its partial output scrubbed\n"
      "  --speculation-slowness=F   straggler threshold: F x the median\n"
      "                        completed duration of the kind (default 2.0)\n"
      "  --speculation-force-after-ms=N  test override: speculate after\n"
      "                        exactly N ms, ignoring the adaptive baseline\n"
      "serve options:\n"
      "  --dist=tcp|loopback   transport (default tcp; loopback is\n"
      "                        in-process only, for tests)\n"
      "  --listen=HOST:PORT    coordinator bind address for workers\n"
      "                        (default 127.0.0.1:0)\n"
      "  --job-listen=HOST:PORT  job-submission RPC bind address\n"
      "                        (default 127.0.0.1:0, printed on stdout)\n"
      "  --status-listen=HOST:PORT  /status, /metrics and /jobs over HTTP\n"
      "  --workers=N           worker quorum before dispatch (default 2)\n"
      "  --local-workers=0|1   spawn the quorum in-process (default 1;\n"
      "                        0 = wait for external `antimr_cli worker`)\n"
      "  --pools=SPEC          comma-separated pools, each\n"
      "                        name:weight[:cpu-slots[:max-jobs[:mem-mb]]]\n"
      "                        (0 = unlimited; default one unlimited pool)\n"
      "  --max-concurrent-jobs=N  running jobs across pools (default 8)\n"
      "  --max-queued-jobs=N   queue cap; over it submits are rejected\n"
      "                        with ResourceExhausted (default 64)\n"
      "  --default-cpu-slots=N dispatch slots granted when a submission\n"
      "                        doesn't ask (default 2)\n"
      "  --heartbeat-timeout-ms=N  declare a silent worker lost "
      "(default 2000)\n"
      "  --speculation         default speculative execution for jobs\n"
      "                        (default off)\n"
      "  --ready-file=PATH     write the resolved addresses (coord=, jobs=,\n"
      "                        status=) once serving, for scripts\n"
      "submit options (plus the run input flags --records/--maps/...):\n"
      "  --connect=HOST:PORT   daemon job-RPC address (required)\n"
      "  --pool=NAME           target pool (default: the daemon's first)\n"
      "  --cpu-slots=N         dispatch-slot ask (default: daemon default)\n"
      "  --memory-mb=N         admission memory estimate\n"
      "  --wait                block until terminal; prints state +\n"
      "                        output_hash, exit 0 only on success\n"
      "worker options:\n"
      "  --connect=HOST:PORT   coordinator address (required)\n"
      "  --slots=N             concurrent task slots (default 2)\n"
      "  --name=S              worker name for logs (default worker)\n"
      "  --heartbeat-ms=N      heartbeat period (default 100)\n"
      "observability (any command):\n"
      "  --trace=FILE          write a Chrome/Perfetto trace (chrome://tracing"
      ",\n"
      "                        ui.perfetto.dev) of the run to FILE\n"
      "  --metrics=FILE        dump the process metrics registry; *.json gets"
      "\n"
      "                        JSON, anything else Prometheus text format\n"
      "  --top-tasks=N         print the N most expensive tasks (default 5)\n");
  return 2;
}

/// Storage-format knobs shared by the run and pipeline commands. Parsed into
/// the per-run override optionals (RunOptions / ExecutorOptions), so an
/// unset flag leaves the stage spec's own choice in force.
Status ParseFormatFlags(const Flags& flags,
                        std::optional<RecordFormat>* record_format,
                        std::optional<size_t>* chunk_block_bytes,
                        std::optional<CodecType>* chunk_codec) {
  if (flags.Has("row-format")) {
    RecordFormat format = RecordFormat::kRow;
    ANTIMR_RETURN_NOT_OK(
        RecordFormatFromName(flags.GetString("row-format", "row"), &format));
    *record_format = format;
  }
  if (flags.Has("chunk-block-size")) {
    *chunk_block_bytes = flags.GetUint("chunk-block-size", 0);
  }
  if (flags.Has("chunk-codec")) {
    const auto codec = CodecTypeFromName(flags.GetString("chunk-codec", ""));
    if (!codec.ok()) return codec.status();
    *chunk_codec = codec.value();
  }
  return Status::OK();
}

Status BuildJob(const Flags& flags, JobSpec* spec,
                std::vector<InputSplit>* splits, uint64_t records,
                int maps) {
  const std::string workload = flags.GetString("workload", "qsuggest");
  const uint64_t seed = flags.GetUint("seed", 42);
  const auto codec = CodecTypeFromName(flags.GetString("codec", "none"));
  if (!codec.ok()) return codec.status();
  const int reduces = static_cast<int>(flags.GetUint("reduces", 8));

  if (workload == "qsuggest") {
    QLogConfig qc;
    qc.num_records = records;
    qc.seed = seed;
    *splits = QLogGenerator(qc).MakeSplits(maps);
    workloads::QuerySuggestionConfig cfg;
    const std::string scheme = flags.GetString("partitioner", "hash");
    using Scheme = workloads::QuerySuggestionConfig::Scheme;
    cfg.scheme = scheme == "prefix1"   ? Scheme::kPrefix1
                 : scheme == "prefix5" ? Scheme::kPrefix5
                                       : Scheme::kHash;
    cfg.with_combiner = flags.GetBool("combiner", false);
    cfg.codec = codec.value();
    cfg.num_reduce_tasks = reduces;
    *spec = workloads::MakeQuerySuggestionJob(cfg);
    return Status::OK();
  }
  if (workload == "wordcount") {
    RandomTextConfig rc;
    rc.num_lines = records;
    rc.seed = seed;
    *splits = RandomTextGenerator(rc).MakeSplits(maps);
    workloads::WordCountConfig cfg;
    cfg.with_combiner = flags.GetBool("combiner", true);
    cfg.codec = codec.value();
    cfg.num_reduce_tasks = reduces;
    *spec = workloads::MakeWordCountJob(cfg);
    return Status::OK();
  }
  if (workload == "sort") {
    RandomTextConfig rc;
    rc.num_lines = records;
    rc.seed = seed;
    *splits = RandomTextGenerator(rc).MakeSplits(maps);
    workloads::SortConfig cfg;
    cfg.codec = codec.value();
    cfg.num_reduce_tasks = reduces;
    *spec = workloads::MakeSortJob(cfg);
    return Status::OK();
  }
  if (workload == "thetajoin") {
    CloudConfig cc;
    cc.num_records = records;
    cc.seed = seed;
    *splits = CloudGenerator(cc).MakeSplits(maps);
    workloads::ThetaJoinConfig cfg;
    workloads::SizeGridForMemory(records,
                                 flags.GetUint("region-records", 1000),
                                 &cfg.grid_rows, &cfg.grid_cols);
    cfg.codec = codec.value();
    cfg.num_reduce_tasks = reduces;
    *spec = workloads::MakeThetaJoinJob(cfg);
    return Status::OK();
  }
  return Status::InvalidArgument("unknown workload: " + workload);
}

uint64_t HashOutput(const std::vector<KV>& kvs);
int DistRunCommand(const Flags& flags, const std::string& mode);
Status WriteTextFile(const std::string& path, const std::string& body);

SkewSampleOptions ParseSampleFlags(const Flags& flags) {
  SkewSampleOptions sample;
  sample.sample_per_split =
      flags.GetUint("sample-per-split", sample.sample_per_split);
  sample.hot_key_min_fraction =
      flags.GetDouble("hot-key-fraction", sample.hot_key_min_fraction);
  sample.hot_fanout =
      static_cast<int>(flags.GetUint("hot-fanout", sample.hot_fanout));
  sample.seed = flags.GetUint("sample-seed", sample.seed);
  return sample;
}

/// `run --partitioner=range [--hot-key-split]` for the standard workloads:
/// sample the input, build the skew plan (one range-partitioned stage, or
/// the split1 -> merge fix-up chain when hot keys were found and splitting
/// is on), and run it on the Executor.
int SkewRunCommand(const Flags& flags, const JobSpec& spec,
                   std::vector<InputSplit> splits,
                   const anticombine::AntiCombineOptions& ac_options,
                   const std::string& strategy, const RunOptions& run) {
  engine::SkewPlanOptions skew;
  skew.sample = ParseSampleFlags(flags);
  skew.hot_key_split = flags.GetBool("hot-key-split", false);
  skew.stage_options.anti_combine_options = ac_options;
  if (strategy == "eager") {
    skew.stage_options.anti_combine = true;
    skew.stage_options.anti_combine_options.lazy_threshold_nanos = 0;
  } else if (strategy == "lazy") {
    skew.stage_options.anti_combine = true;
    skew.stage_options.anti_combine_options.force_lazy = true;
  } else if (strategy == "adaptive") {
    skew.stage_options.anti_combine = true;
  } else if (strategy != "original") {
    std::fprintf(stderr, "error: unknown strategy %s\n", strategy.c_str());
    return Usage();
  }

  engine::JobPlan plan;
  std::string output;
  SkewModel model;
  Status st = engine::MakeSkewPlan(spec, std::move(splits), skew, &plan,
                                   &output, &model);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  engine::ExecutorOptions exec_options;
  exec_options.num_workers = run.num_workers;
  exec_options.hardware = run.hardware;
  exec_options.max_task_attempts = run.max_task_attempts;
  exec_options.record_format = run.record_format;
  exec_options.chunk_block_bytes = run.chunk_block_bytes;
  exec_options.chunk_codec = run.chunk_codec;
  exec_options.collect_outputs = flags.Has("output-hash");
  engine::Executor executor(exec_options);
  engine::PlanResult result;
  st = executor.Run(plan, &result);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("partitioner=range strategy=%s hot_keys=%zu split=%d "
              "stages=%zu\n",
              strategy.c_str(), model.hot_keys.size(),
              model.HasHotKeys() && skew.hot_key_split ? 1 : 0,
              result.stages.size());
  if (flags.Has("output-hash")) {
    const std::vector<KV> flat = result.FlatOutput(output);
    std::printf("output_hash=%016llx output_records=%zu\n",
                static_cast<unsigned long long>(HashOutput(flat)),
                flat.size());
  }
  if (flags.GetBool("json", false)) {
    std::printf("%s\n", result.metrics.ToJson().c_str());
    return 0;
  }
  std::printf("\n%s", result.metrics.ToString().c_str());
  return 0;
}

int RunCommand(const Flags& flags) {
  const uint64_t records = flags.GetUint("records", 20000);
  const int maps = static_cast<int>(flags.GetUint("maps", 8));
  const std::string workload = flags.GetString("workload", "qsuggest");

  const std::string dist = flags.GetString("dist", "off");
  if (dist == "loopback" || dist == "tcp") return DistRunCommand(flags, dist);
  if (dist != "off") {
    std::fprintf(stderr, "error: unknown dist mode %s\n", dist.c_str());
    return Usage();
  }

  anticombine::AntiCombineOptions options;
  if (flags.Has("threshold-us")) {
    options.lazy_threshold_nanos = flags.GetUint("threshold-us", 0) * 1000;
  }
  options.cross_call_window =
      static_cast<int>(flags.GetUint("window", 1));
  options.map_phase_combiner = flags.GetBool("c-flag", true);

  const std::string strategy = flags.GetString("strategy", "adaptive");

  RunOptions run;
  run.collect_output = flags.Has("output-hash");
  run.hardware.disk_mb_per_s = flags.GetDouble("disk-mbps", 0);
  run.hardware.network_mb_per_s = flags.GetDouble("net-mbps", 0);
  run.collect_task_metrics = flags.Has("top-tasks");
  run.max_task_attempts =
      static_cast<int>(flags.GetUint("max-task-attempts", 1));
  {
    const Status st = ParseFormatFlags(flags, &run.record_format,
                                       &run.chunk_block_bytes,
                                       &run.chunk_codec);
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return Usage();
    }
  }

  // PageRank is iterative: either one multi-stage plan (dag, the default)
  // or the legacy one-job-per-iteration driver loop.
  if (workload == "pagerank") {
    GraphConfig gc;
    gc.num_nodes = records;
    gc.seed = flags.GetUint("seed", 42);
    workloads::PageRankConfig cfg;
    cfg.num_nodes = gc.num_nodes;
    cfg.num_reduce_tasks = static_cast<int>(flags.GetUint("reduces", 8));
    const int iterations = static_cast<int>(flags.GetUint("iterations", 5));
    const anticombine::AntiCombineOptions* anti =
        strategy == "original" ? nullptr : &options;
    const std::string engine_kind = flags.GetString("engine", "dag");
    workloads::PageRankRunResult result;
    Status st;
    if (engine_kind == "loop") {
      run.collect_output = true;  // iterations chain through outputs
      st = workloads::RunPageRank(cfg, GraphGenerator(gc).Generate(),
                                  iterations, anti, maps, &result, run);
    } else if (engine_kind == "dag") {
      engine::ExecutorOptions exec_options;
      exec_options.num_workers = run.num_workers;
      exec_options.hardware = run.hardware;
      exec_options.max_task_attempts = run.max_task_attempts;
      exec_options.record_format = run.record_format;
      exec_options.chunk_block_bytes = run.chunk_block_bytes;
      exec_options.chunk_codec = run.chunk_codec;
      engine::Executor executor(exec_options);
      engine::PlanResult plan_result;
      st = workloads::RunPageRankDag(cfg, GraphGenerator(gc).Generate(),
                                     iterations, anti, maps, &executor,
                                     &result, &plan_result);
      if (st.ok()) {
        std::printf("engine=dag stages=%zu stage_overlap=%s\n",
                    plan_result.stages.size(),
                    FormatNanos(plan_result.stage_overlap_nanos).c_str());
      }
    } else {
      std::fprintf(stderr, "error: unknown engine %s\n", engine_kind.c_str());
      return Usage();
    }
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("%s", result.total.ToString().c_str());
    return 0;
  }

  JobSpec spec;
  std::vector<InputSplit> splits;
  Status st = BuildJob(flags, &spec, &splits, records, maps);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return Usage();
  }

  // --partitioner=range routes through the skew plan driver. qsuggest keeps
  // its own meaning for the flag (hash|prefix1|prefix5 key schemes).
  if (workload != "qsuggest" &&
      flags.GetString("partitioner", "hash") == "range") {
    return SkewRunCommand(flags, spec, std::move(splits), options, strategy,
                          run);
  }

  if (strategy == "eager") {
    options.lazy_threshold_nanos = 0;
    spec = anticombine::EnableAntiCombining(spec, options);
  } else if (strategy == "lazy") {
    options.force_lazy = true;
    spec = anticombine::EnableAntiCombining(spec, options);
  } else if (strategy == "adaptive") {
    spec = anticombine::EnableAntiCombining(spec, options);
  } else if (strategy != "original") {
    std::fprintf(stderr, "error: unknown strategy %s\n", strategy.c_str());
    return Usage();
  }

  JobResult result;
  st = RunJob(spec, splits, run, &result);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  if (flags.Has("output-hash")) {
    const std::vector<KV> flat = result.FlatOutput();
    std::printf("output_hash=%016llx output_records=%zu\n",
                static_cast<unsigned long long>(HashOutput(flat)),
                flat.size());
  }
  if (flags.GetBool("json", false)) {
    std::printf("%s\n", result.metrics.ToJson().c_str());
    return 0;
  }
  std::printf("workload=%s strategy=%s records=%llu maps=%d\n\n",
              workload.c_str(), strategy.c_str(),
              static_cast<unsigned long long>(records), maps);
  std::printf("%s", result.metrics.ToString().c_str());
  if (flags.Has("top-tasks")) {
    std::printf("\n%s",
                TopTasksReport(result.task_metrics,
                               flags.GetUint("top-tasks", 5))
                    .c_str());
  }
  return 0;
}

/// Per-stage knobs for the pipeline command: "--stageN-strategy" picks the
/// Anti-Combining mode, "--stageN-shuffle" the shuffle scheduling model.
Status ParseStageOptions(const Flags& flags, const std::string& prefix,
                         const std::string& default_strategy,
                         engine::StageOptions* out) {
  const std::string strategy =
      flags.GetString(prefix + "-strategy", default_strategy);
  if (strategy == "eager") {
    out->anti_combine = true;
    out->anti_combine_options.lazy_threshold_nanos = 0;
  } else if (strategy == "lazy") {
    out->anti_combine = true;
    out->anti_combine_options.force_lazy = true;
  } else if (strategy == "adaptive") {
    out->anti_combine = true;
  } else if (strategy != "original") {
    return Status::InvalidArgument("unknown strategy " + strategy);
  }
  const std::string shuffle =
      flags.GetString(prefix + "-shuffle", "pipelined");
  if (shuffle == "barrier") {
    out->shuffle_mode = ShuffleMode::kBarrier;
  } else if (shuffle == "pipelined") {
    out->shuffle_mode = ShuffleMode::kPipelined;
  } else {
    return Status::InvalidArgument("unknown shuffle mode " + shuffle);
  }
  return Status::OK();
}

/// wordcount -> sort as one two-stage plan: stage 1 counts words, stage 2
/// re-sorts the counts through the framework shuffle. The default knobs are
/// the paper-flavored mix: EagerSH on the aggregation stage, LazySH on the
/// re-sort stage.
int PipelineCommand(const Flags& flags) {
  const uint64_t records = flags.GetUint("records", 20000);
  const int maps = static_cast<int>(flags.GetUint("maps", 8));
  const int reduces = static_cast<int>(flags.GetUint("reduces", 8));
  const auto codec = CodecTypeFromName(flags.GetString("codec", "none"));
  if (!codec.ok()) {
    std::fprintf(stderr, "error: %s\n", codec.status().ToString().c_str());
    return Usage();
  }

  RandomTextConfig rc;
  rc.num_lines = records;
  rc.seed = flags.GetUint("seed", 42);

  engine::JobPlan plan;
  plan.name = "wordcount_sort";
  Status st = plan.AddInput("lines", RandomTextGenerator(rc).MakeSplits(maps));

  workloads::WordCountConfig wc_cfg;
  wc_cfg.with_combiner = flags.GetBool("combiner", true);
  wc_cfg.codec = codec.value();
  wc_cfg.num_reduce_tasks = reduces;
  engine::Stage count_stage;
  count_stage.name = "wordcount";
  count_stage.spec = workloads::MakeWordCountJob(wc_cfg);
  count_stage.inputs = {"lines"};
  count_stage.output = "counts";
  if (st.ok()) st = ParseStageOptions(flags, "stage1", "eager",
                                      &count_stage.options);
  plan.AddStage(std::move(count_stage));

  workloads::SortConfig sort_cfg;
  sort_cfg.codec = codec.value();
  sort_cfg.num_reduce_tasks = reduces;
  engine::Stage sort_stage;
  sort_stage.name = "sort";
  sort_stage.spec = workloads::MakeSortJob(sort_cfg);
  sort_stage.inputs = {"counts"};
  sort_stage.output = "sorted";
  if (st.ok()) st = ParseStageOptions(flags, "stage2", "lazy",
                                      &sort_stage.options);
  plan.AddStage(std::move(sort_stage));
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return Usage();
  }

  engine::ExecutorOptions exec_options;
  exec_options.num_workers = static_cast<int>(flags.GetUint("workers", 0));
  exec_options.hardware.disk_mb_per_s = flags.GetDouble("disk-mbps", 0);
  exec_options.hardware.network_mb_per_s = flags.GetDouble("net-mbps", 0);
  exec_options.collect_task_metrics = flags.Has("top-tasks");
  exec_options.max_task_attempts =
      static_cast<int>(flags.GetUint("max-task-attempts", 1));
  st = ParseFormatFlags(flags, &exec_options.record_format,
                        &exec_options.chunk_block_bytes,
                        &exec_options.chunk_codec);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return Usage();
  }
  engine::Executor executor(exec_options);
  engine::PlanResult result;
  st = executor.Run(plan, &result);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }

  if (flags.GetBool("json", false)) {
    std::printf("{\"stage_overlap_nanos\": %llu, \"stages\": [",
                static_cast<unsigned long long>(result.stage_overlap_nanos));
    for (size_t i = 0; i < result.stages.size(); ++i) {
      std::printf("%s{\"name\": \"%s\", \"metrics\": %s}", i > 0 ? ", " : "",
                  result.stages[i].name.c_str(),
                  result.stages[i].metrics.ToJson().c_str());
    }
    std::printf("], \"total\": %s}\n", result.metrics.ToJson().c_str());
    return 0;
  }

  std::printf("pipeline=wordcount->sort records=%llu maps=%d reduces=%d\n",
              static_cast<unsigned long long>(records), maps, reduces);
  for (const engine::StageResult& stage : result.stages) {
    std::printf(
        "stage %-10s wall=%-10s cpu=%-10s shuffle=%-10s out_records=%llu\n",
        stage.name.c_str(), FormatNanos(stage.metrics.wall_nanos).c_str(),
        FormatNanos(stage.metrics.total_cpu_nanos).c_str(),
        FormatBytes(stage.metrics.shuffle_bytes).c_str(),
        static_cast<unsigned long long>(stage.metrics.output_records));
  }
  std::printf("stage_overlap=%s\n\n",
              FormatNanos(result.stage_overlap_nanos).c_str());
  std::printf("%s", result.metrics.ToString().c_str());
  if (flags.Has("top-tasks")) {
    const size_t top_n = flags.GetUint("top-tasks", 5);
    for (const engine::StageResult& stage : result.stages) {
      std::printf("\nstage %s:\n%s", stage.name.c_str(),
                  TopTasksReport(stage.tasks, top_n).c_str());
    }
  }
  return 0;
}

int CodecsCommand(const Flags& flags) {
  const size_t size = flags.GetUint("size", 4 * 1024 * 1024);
  Random rng(7);
  static const char* words[] = {"data", "record", "shuffle", "network",
                                "reduce", "value", "cluster", "key"};
  std::string corpus;
  corpus.reserve(size);
  while (corpus.size() < size) {
    corpus += words[rng.Uniform(8)];
    corpus.push_back(' ');
  }
  std::printf("%-14s %12s %10s %14s %14s\n", "codec", "compressed", "ratio",
              "compress", "decompress");
  for (CodecType type :
       {CodecType::kSnappyLike, CodecType::kDeflateLike, CodecType::kGzip,
        CodecType::kBzip2Like}) {
    const Codec* codec = GetCodec(type);
    std::string compressed, restored;
    uint64_t t0 = NowNanos();
    ANTIMR_CHECK_OK(codec->Compress(corpus, &compressed));
    const uint64_t compress_nanos = NowNanos() - t0;
    t0 = NowNanos();
    ANTIMR_CHECK_OK(codec->Decompress(compressed, &restored));
    const uint64_t decompress_nanos = NowNanos() - t0;
    ANTIMR_CHECK_OK(restored == corpus
                        ? Status::OK()
                        : Status::Corruption("round-trip mismatch"));
    std::printf("%-14s %12s %9.2fx %14s %14s\n", codec->name(),
                FormatBytes(compressed.size()).c_str(),
                static_cast<double>(corpus.size()) /
                    static_cast<double>(compressed.size()),
                FormatNanos(compress_nanos).c_str(),
                FormatNanos(decompress_nanos).c_str());
  }
  return 0;
}

/// Order-insensitive digest over the flattened output: the wrapping sum of
/// per-record FNV hashes (value hashed with the key's hash as seed). Two
/// runs that produced the same key/value multiset hash equal even when
/// partition placement differs — so hash-, range-, and split-partitioned
/// runs of the same job are directly comparable, as are cross-process runs
/// (the identity check run_local_cluster.sh relies on).
uint64_t HashOutput(const std::vector<KV>& kvs) {
  uint64_t h = 0;
  for (const KV& kv : kvs) {
    h += Hash64(kv.value.data(), kv.value.size(),
                Hash64(kv.key.data(), kv.key.size()));
  }
  return h;
}

/// Chunk `records` exactly like MakeSplits (mr/types.cc) so distributed map
/// inputs match the single-process splits record-for-record.
std::vector<std::vector<KV>> ChunkRecords(std::vector<KV> records,
                                          int num_splits) {
  std::vector<std::vector<KV>> chunks;
  if (num_splits <= 0) num_splits = 1;
  const size_t n = records.size();
  const size_t per = (n + num_splits - 1) / static_cast<size_t>(num_splits);
  size_t start = 0;
  while (start < n) {
    const size_t end = std::min(n, start + per);
    chunks.emplace_back(
        std::make_move_iterator(records.begin() + static_cast<long>(start)),
        std::make_move_iterator(records.begin() + static_cast<long>(end)));
    start = end;
  }
  if (chunks.empty()) chunks.emplace_back();
  return chunks;
}

/// Translate the run command's flags into a registered-job name, its
/// JobParams, and the input splits for the distributed driver. The params
/// mirror what BuildJob configures locally, so `--dist=loopback` and
/// `--dist=off` execute the same job over the same input.
Status BuildDistJob(const Flags& flags, uint64_t records, int maps,
                    engine::DistJobOptions* dist) {
  const std::string workload = flags.GetString("workload", "qsuggest");
  const uint64_t seed = flags.GetUint("seed", 42);
  const std::string codec = flags.GetString("codec", "none");
  const std::string reduces = std::to_string(flags.GetUint("reduces", 8));

  if (workload == "wordcount") {
    RandomTextConfig rc;
    rc.num_lines = records;
    rc.seed = seed;
    dist->job_name = "wordcount";
    dist->splits = ChunkRecords(RandomTextGenerator(rc).Generate(), maps);
    dist->params = {{"reduces", reduces},
                    {"codec", codec},
                    {"combiner", flags.GetBool("combiner", true) ? "1" : "0"}};
  } else if (workload == "sort") {
    RandomTextConfig rc;
    rc.num_lines = records;
    rc.seed = seed;
    dist->job_name = "sort";
    dist->splits = ChunkRecords(RandomTextGenerator(rc).Generate(), maps);
    dist->params = {{"reduces", reduces}, {"codec", codec}};
  } else if (workload == "thetajoin") {
    CloudConfig cc;
    cc.num_records = records;
    cc.seed = seed;
    dist->job_name = "theta_join";
    dist->splits = ChunkRecords(CloudGenerator(cc).Generate(), maps);
    int grid_rows = 0, grid_cols = 0;
    workloads::SizeGridForMemory(records,
                                 flags.GetUint("region-records", 1000),
                                 &grid_rows, &grid_cols);
    dist->params = {{"reduces", reduces},
                    {"codec", codec},
                    {"grid_rows", std::to_string(grid_rows)},
                    {"grid_cols", std::to_string(grid_cols)}};
  } else {
    return Status::InvalidArgument("workload " + workload +
                                   " is not registered for --dist mode");
  }

  const std::string strategy = flags.GetString("strategy", "adaptive");
  if (strategy != "original") {
    if (strategy != "eager" && strategy != "lazy" && strategy != "adaptive") {
      return Status::InvalidArgument("unknown strategy " + strategy);
    }
    dist->params.emplace_back("anti_combine", strategy);
    if (flags.Has("threshold-us")) {
      dist->params.emplace_back(
          "lazy_threshold_nanos",
          std::to_string(flags.GetUint("threshold-us", 0) * 1000));
    }
  }
  return Status::OK();
}

/// `run --dist=loopback|tcp`: bring up a Coordinator (plus in-process
/// workers in loopback mode), wait for the worker quorum, and drive the job
/// through RunDistributedJob.
int DistRunCommand(const Flags& flags, const std::string& mode) {
  workloads::RegisterStandardJobs();
  SetLogNodeLabel("coord");
  const uint64_t records = flags.GetUint("records", 20000);
  const int maps = static_cast<int>(flags.GetUint("maps", 8));
  const int workers = static_cast<int>(flags.GetUint("workers", 2));

  const std::string cluster_trace_file = flags.GetString("cluster-trace", "");
  if (!cluster_trace_file.empty()) {
    if (!obs::kTraceCompiled) {
      std::fprintf(stderr,
                   "warning: built with ANTIMR_TRACE=OFF; "
                   "the cluster trace will contain no events\n");
    }
    obs::Tracer::Global().Start();
  }

  engine::DistJobOptions dist;
  Status st = BuildDistJob(flags, records, maps, &dist);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return Usage();
  }
  dist.network_mb_per_s = flags.GetDouble("net-mbps", 0);
  dist.max_task_attempts =
      static_cast<int>(flags.GetUint("max-task-attempts", 3));
  dist.collect_outputs = true;
  dist.speculative_execution = flags.GetBool("speculation", false);
  dist.speculation_slowness_factor = flags.GetDouble(
      "speculation-slowness", dist.speculation_slowness_factor);
  if (flags.Has("speculation-force-after-ms")) {
    dist.speculation_force_after_nanos =
        flags.GetUint("speculation-force-after-ms", 0) * 1000000ull;
  }

  std::unique_ptr<net::Transport> transport =
      mode == "tcp" ? net::NewTcpTransport() : net::NewLoopbackTransport();
  engine::CoordinatorOptions coord_options;
  coord_options.heartbeat_timeout_nanos =
      flags.GetUint("heartbeat-timeout-ms", 2000) * 1000000ull;
  engine::Coordinator coord(transport.get(), coord_options);
  st = coord.Start(flags.GetString("listen", ""));
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("coordinator listening at %s\n", coord.addr().c_str());
  std::fflush(stdout);
  if (flags.Has("status-listen")) {
    st = coord.StartStatusServer(flags.GetString("status-listen", ""));
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("status listening at %s\n", coord.status_addr().c_str());
    std::fflush(stdout);
  }

  std::vector<std::unique_ptr<engine::Worker>> local_workers;
  if (mode == "loopback") {
    for (int i = 0; i < workers; ++i) {
      engine::WorkerOptions worker_options;
      worker_options.name = "worker" + std::to_string(i);
      worker_options.slots = static_cast<int>(flags.GetUint("slots", 2));
      local_workers.push_back(
          std::make_unique<engine::Worker>(transport.get(), worker_options));
      st = local_workers.back()->Start(coord.addr());
      if (!st.ok()) {
        std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
        return 1;
      }
    }
  }
  const uint64_t wait_ms = flags.GetUint("wait-workers-ms", 30000);
  if (!coord.WaitForWorkers(workers, wait_ms * 1000000ull)) {
    std::fprintf(stderr, "error: timed out waiting for %d workers\n",
                 workers);
    return 1;
  }
  const std::string gate_file = flags.GetString("gate-file", "");
  if (!gate_file.empty()) {
    struct ::stat gate_stat;
    const uint64_t gate_deadline = NowNanos() + wait_ms * 1000000ull;
    while (::stat(gate_file.c_str(), &gate_stat) != 0) {
      if (NowNanos() >= gate_deadline) {
        std::fprintf(stderr, "error: timed out waiting for gate file %s\n",
                     gate_file.c_str());
        return 1;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }

  const bool range = flags.GetString("partitioner", "hash") == "range";
  const net::WireCounters wire_before = net::SnapshotWireCounters();
  engine::DistJobResult result;
  engine::DistSkewResult skew_result;
  if (range) {
    // Sampling runs the *base* job's mapper on the driver; the anti-combine
    // params are reapplied per stage on the workers.
    net::JobParams base_params;
    for (const auto& kv : dist.params) {
      if (kv.first != "anti_combine" && kv.first != "lazy_threshold_nanos") {
        base_params.push_back(kv);
      }
    }
    JobSpec sample_spec;
    st = engine::BuildRegisteredJob(dist.job_name, base_params, &sample_spec);
    if (st.ok()) {
      st = engine::RunDistributedSkewJob(&coord, dist, sample_spec,
                                         ParseSampleFlags(flags),
                                         flags.GetBool("hot-key-split", false),
                                         &skew_result);
    }
    if (st.ok()) result = std::move(skew_result.job);
  } else {
    st = RunDistributedJob(&coord, dist, &result);
  }
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  const net::WireCounters wire_after = net::SnapshotWireCounters();

  std::printf("workload=%s dist=%s workers=%d maps=%zu records=%llu\n",
              flags.GetString("workload", "qsuggest").c_str(), mode.c_str(),
              workers, dist.splits.size(),
              static_cast<unsigned long long>(records));
  std::printf("wire_bytes_sent=%llu wire_bytes_received=%llu "
              "map_reruns=%llu\n",
              static_cast<unsigned long long>(wire_after.bytes_sent -
                                              wire_before.bytes_sent),
              static_cast<unsigned long long>(wire_after.bytes_received -
                                              wire_before.bytes_received),
              static_cast<unsigned long long>(result.map_reruns));
  if (range) {
    std::printf("partitioner=range hot_keys=%zu split=%d\n",
                skew_result.model.hot_keys.size(), skew_result.split ? 1 : 0);
  }
  if (dist.speculative_execution) {
    std::printf("spec_backups=%llu spec_backup_wins=%llu spec_cancels=%llu\n",
                static_cast<unsigned long long>(result.spec_backups),
                static_cast<unsigned long long>(result.spec_backup_wins),
                static_cast<unsigned long long>(result.spec_cancels));
  }
  if (flags.Has("output-hash")) {
    const std::vector<KV> flat = result.FlatOutput();
    std::printf("output_hash=%016llx output_records=%zu\n",
                static_cast<unsigned long long>(HashOutput(flat)),
                flat.size());
  }
  if (flags.GetBool("json", false)) {
    std::printf("%s\n", result.metrics.ToJson().c_str());
  } else {
    std::printf("\n%s", result.metrics.ToString().c_str());
  }
  // Coordinator first: its Stop sends Shutdown, so in-process workers wind
  // down cleanly instead of being declared lost when their conns close.
  coord.Stop();
  for (auto& worker : local_workers) worker->Stop();
  if (!cluster_trace_file.empty()) {
    obs::Tracer::Global().Stop();
    const Status wt = coord.WriteClusterTrace(cluster_trace_file);
    if (!wt.ok()) {
      std::fprintf(stderr, "error writing cluster trace: %s\n",
                   wt.ToString().c_str());
      return 1;
    }
    std::printf("cluster trace written to %s\n", cluster_trace_file.c_str());
  }
  return 0;
}

/// `antimr_cli worker`: the body of one worker process. Dials the
/// coordinator, serves tasks until the coordinator sends Shutdown or the
/// connection drops, then exits.
int WorkerCommand(const Flags& flags) {
  const std::string connect = flags.GetString("connect", "");
  if (connect.empty()) {
    std::fprintf(stderr, "error: worker requires --connect=HOST:PORT\n");
    return Usage();
  }
  workloads::RegisterStandardJobs();
  SetLogNodeLabel("worker");
  std::unique_ptr<net::Transport> transport = net::NewTcpTransport();
  engine::WorkerOptions options;
  options.name = flags.GetString("name", "worker");
  options.slots = static_cast<int>(flags.GetUint("slots", 2));
  options.heartbeat_period_nanos =
      flags.GetUint("heartbeat-ms", 100) * 1000000ull;
  options.exclusive_process = true;
  engine::Worker worker(transport.get(), options);
  const Status st =
      worker.Start(connect, flags.GetString("shuffle-listen", ""));
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  SetLogNodeLabel("w" + std::to_string(worker.id()));
  std::printf("worker %s registered as %u, shuffle at %s\n",
              options.name.c_str(), worker.id(), worker.shuffle_addr().c_str());
  std::fflush(stdout);
  worker.WaitDone();
  worker.Stop();
  return 0;
}

/// `antimr_cli status --connect=HOST:PORT`: scrape a live coordinator's
/// status surface and print the body verbatim (machine-consumable).
int StatusCommand(const Flags& flags) {
  const std::string connect = flags.GetString("connect", "");
  if (connect.empty()) {
    std::fprintf(stderr, "error: status requires --connect=HOST:PORT\n");
    return Usage();
  }
  const std::string endpoint = flags.GetString("endpoint", "status");
  if (endpoint != "status" && endpoint != "metrics") {
    std::fprintf(stderr, "error: unknown endpoint %s\n", endpoint.c_str());
    return Usage();
  }
  std::unique_ptr<net::Transport> transport = net::NewTcpTransport();
  std::string body;
  const Status st =
      net::HttpGet(transport.get(), connect, "/" + endpoint, &body);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::fwrite(body.data(), 1, body.size(), stdout);
  return 0;
}

// --- multi-tenant job service commands -----------------------------------

std::atomic<bool> g_serve_stop{false};
void HandleServeSignal(int) { g_serve_stop.store(true); }

/// Parse --pools=name:weight[:cpu-slots[:max-jobs[:mem-mb]]],... into the
/// service options. Zero fields mean unlimited, matching PoolConfig.
Status ParsePoolsFlag(const std::string& spec,
                      std::vector<engine::PoolConfig>* pools) {
  size_t start = 0;
  while (start <= spec.size()) {
    size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) continue;
    engine::PoolConfig cfg;
    char name[64] = {0};
    double weight = 1.0;
    int slots = 0, jobs = 0;
    unsigned long long mem_mb = 0;
    const int n = std::sscanf(entry.c_str(), "%63[^:]:%lf:%d:%d:%llu", name,
                              &weight, &slots, &jobs, &mem_mb);
    if (n < 1 || weight <= 0 || slots < 0 || jobs < 0) {
      return Status::InvalidArgument("bad pool spec: " + entry);
    }
    cfg.name = name;
    cfg.weight = weight;
    cfg.cpu_slots_quota = slots;
    cfg.max_running_jobs = jobs;
    cfg.memory_quota_bytes = mem_mb << 20;
    pools->push_back(std::move(cfg));
  }
  if (pools->empty()) return Status::InvalidArgument("empty --pools spec");
  return Status::OK();
}

/// `antimr_cli serve`: the persistent daemon. Coordinator + JobService on
/// one transport, optional in-process worker quorum, runs until SIGINT or
/// SIGTERM.
int ServeCommand(const Flags& flags) {
  workloads::RegisterStandardJobs();
  SetLogNodeLabel("serve");
  const std::string mode = flags.GetString("dist", "tcp");
  if (mode != "tcp" && mode != "loopback") {
    std::fprintf(stderr, "error: unknown dist mode %s\n", mode.c_str());
    return Usage();
  }
  const bool tcp = mode == "tcp";
  std::unique_ptr<net::Transport> transport =
      tcp ? net::NewTcpTransport() : net::NewLoopbackTransport();

  engine::CoordinatorOptions coord_options;
  coord_options.heartbeat_timeout_nanos =
      flags.GetUint("heartbeat-timeout-ms", 2000) * 1000000ull;
  engine::Coordinator coord(transport.get(), coord_options);
  Status st =
      coord.Start(flags.GetString("listen", tcp ? "127.0.0.1:0" : ""));
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("coordinator listening at %s\n", coord.addr().c_str());
  std::fflush(stdout);

  engine::JobServiceOptions sopts;
  if (flags.Has("pools")) {
    st = ParsePoolsFlag(flags.GetString("pools", ""), &sopts.pools);
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return Usage();
    }
  }
  const int workers = static_cast<int>(flags.GetUint("workers", 2));
  sopts.max_concurrent_jobs =
      static_cast<int>(flags.GetUint("max-concurrent-jobs", 8));
  sopts.max_queued_jobs =
      static_cast<int>(flags.GetUint("max-queued-jobs", 64));
  sopts.default_cpu_slots =
      static_cast<int>(flags.GetUint("default-cpu-slots", 2));
  sopts.min_workers = static_cast<int>(flags.GetUint("min-workers", 1));
  sopts.speculative_execution = flags.GetBool("speculation", false);
  engine::JobService service(&coord, sopts);
  service.AttachStatusEndpoint();
  st = service.Serve(flags.GetString("job-listen", tcp ? "127.0.0.1:0" : ""));
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("job service listening at %s\n", service.serve_addr().c_str());
  std::fflush(stdout);
  if (flags.Has("status-listen")) {
    st = coord.StartStatusServer(flags.GetString("status-listen", ""));
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("status listening at %s\n", coord.status_addr().c_str());
    std::fflush(stdout);
  }

  std::vector<std::unique_ptr<engine::Worker>> local_workers;
  if (flags.GetBool("local-workers", true)) {
    for (int i = 0; i < workers; ++i) {
      engine::WorkerOptions worker_options;
      worker_options.name = "worker" + std::to_string(i);
      worker_options.slots = static_cast<int>(flags.GetUint("slots", 2));
      local_workers.push_back(
          std::make_unique<engine::Worker>(transport.get(), worker_options));
      st = local_workers.back()->Start(coord.addr());
      if (!st.ok()) {
        std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
        return 1;
      }
    }
  }
  const uint64_t wait_ms = flags.GetUint("wait-workers-ms", 30000);
  if (workers > 0 && !coord.WaitForWorkers(workers, wait_ms * 1000000ull)) {
    std::fprintf(stderr, "error: timed out waiting for %d workers\n",
                 workers);
    return 1;
  }
  std::printf("serving %d workers\n", workers);
  std::fflush(stdout);

  const std::string ready_file = flags.GetString("ready-file", "");
  if (!ready_file.empty()) {
    const Status wt = WriteTextFile(
        ready_file, "coord=" + coord.addr() + "\njobs=" +
                        service.serve_addr() + "\nstatus=" +
                        coord.status_addr() + "\n");
    if (!wt.ok()) {
      std::fprintf(stderr, "error: %s\n", wt.ToString().c_str());
      return 1;
    }
  }

  std::signal(SIGINT, HandleServeSignal);
  std::signal(SIGTERM, HandleServeSignal);
  while (!g_serve_stop.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("shutting down\n");
  service.Stop();
  coord.Stop();
  for (auto& worker : local_workers) worker->Stop();
  return 0;
}

/// Render one job-table row the same way everywhere (jobs, submit --wait).
void PrintJobRow(const net::JobStatusWire& row) {
  std::printf("job=%s pool=%s name=%s state=%s maps=%llu/%llu "
              "reduces=%llu/%llu",
              row.job_id.c_str(), row.pool.c_str(), row.job_name.c_str(),
              row.state.c_str(),
              static_cast<unsigned long long>(row.maps_done),
              static_cast<unsigned long long>(row.maps_total),
              static_cast<unsigned long long>(row.reduces_done),
              static_cast<unsigned long long>(row.reduces_total));
  if (row.state == "queued") {
    std::printf(" queue_position=%u", row.queue_position);
  }
  if (row.state == "succeeded") {
    std::printf(" output_hash=%016llx output_records=%llu wall_ms=%llu",
                static_cast<unsigned long long>(row.output_hash),
                static_cast<unsigned long long>(row.output_records),
                static_cast<unsigned long long>(
                    (row.finish_nanos - row.submit_nanos) / 1000000ull));
  } else if (!row.status_msg.empty()) {
    std::printf(" error=%s", row.status_msg.c_str());
  }
  std::printf("\n");
}

/// `antimr_cli submit`: build a workload's splits locally, ship them to a
/// serve daemon, optionally wait for the terminal state.
int SubmitCommand(const Flags& flags) {
  const std::string connect = flags.GetString("connect", "");
  if (connect.empty()) {
    std::fprintf(stderr, "error: submit requires --connect=HOST:PORT\n");
    return Usage();
  }
  const uint64_t records = flags.GetUint("records", 20000);
  const int maps = static_cast<int>(flags.GetUint("maps", 8));
  engine::DistJobOptions dist;
  Status st = BuildDistJob(flags, records, maps, &dist);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return Usage();
  }

  net::SubmitJobMsg msg;
  msg.pool = flags.GetString("pool", "");
  msg.job_name = dist.job_name;
  msg.params = std::move(dist.params);
  msg.job_id = flags.GetString("job-id", "");
  msg.cpu_slots = static_cast<uint32_t>(flags.GetUint("cpu-slots", 0));
  msg.memory_bytes = flags.GetUint("memory-mb", 0) << 20;
  msg.max_task_attempts =
      static_cast<uint32_t>(flags.GetUint("max-task-attempts", 0));
  msg.network_mb_per_s = flags.GetDouble("net-mbps", 0);
  msg.collect_output = true;
  msg.splits.resize(dist.splits.size());
  for (size_t m = 0; m < dist.splits.size(); ++m) {
    net::EncodeKVList(dist.splits[m], &msg.splits[m]);
  }

  std::unique_ptr<net::Transport> transport = net::NewTcpTransport();
  engine::JobServiceClient client(transport.get(), connect);
  std::string job_id;
  st = client.Submit(msg, &job_id);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("job=%s submitted\n", job_id.c_str());
  std::fflush(stdout);
  if (!flags.GetBool("wait", false)) return 0;

  for (;;) {
    net::JobStatusWire row;
    st = client.GetStatus(job_id, &row);
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
    if (row.state == "succeeded" || row.state == "failed" ||
        row.state == "aborted") {
      PrintJobRow(row);
      return row.state == "succeeded" ? 0 : 1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

/// `antimr_cli jobs`: print a daemon's whole job table, submit order.
int JobsCommand(const Flags& flags) {
  const std::string connect = flags.GetString("connect", "");
  if (connect.empty()) {
    std::fprintf(stderr, "error: jobs requires --connect=HOST:PORT\n");
    return Usage();
  }
  std::unique_ptr<net::Transport> transport = net::NewTcpTransport();
  engine::JobServiceClient client(transport.get(), connect);
  std::vector<net::JobStatusWire> rows;
  const Status st = client.List(&rows);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  for (const net::JobStatusWire& row : rows) PrintJobRow(row);
  std::printf("total=%zu\n", rows.size());
  return 0;
}

/// `antimr_cli abort`: abort one job on a serve daemon.
int AbortCommand(const Flags& flags) {
  const std::string connect = flags.GetString("connect", "");
  const std::string job_id = flags.GetString("job", "");
  if (connect.empty() || job_id.empty()) {
    std::fprintf(stderr,
                 "error: abort requires --connect=HOST:PORT and --job=ID\n");
    return Usage();
  }
  std::unique_ptr<net::Transport> transport = net::NewTcpTransport();
  engine::JobServiceClient client(transport.get(), connect);
  const Status st = client.Abort(job_id);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("job=%s abort requested\n", job_id.c_str());
  return 0;
}

/// Write `body` to `path`, mirroring Tracer::WriteJson's error convention.
Status WriteTextFile(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  const int close_rc = std::fclose(f);
  if (written != body.size() || close_rc != 0) {
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

int Dispatch(const Flags& flags, const std::string& command) {
  if (command == "run") return RunCommand(flags);
  if (command == "pipeline") return PipelineCommand(flags);
  if (command == "codecs") return CodecsCommand(flags);
  if (command == "worker") return WorkerCommand(flags);
  if (command == "status") return StatusCommand(flags);
  if (command == "serve") return ServeCommand(flags);
  if (command == "submit") return SubmitCommand(flags);
  if (command == "jobs") return JobsCommand(flags);
  if (command == "abort") return AbortCommand(flags);
  return Usage();
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  if (flags.positional().empty()) return Usage();

  const std::string trace_file = flags.GetString("trace", "");
  if (!trace_file.empty()) {
    if (!obs::kTraceCompiled) {
      std::fprintf(stderr,
                   "warning: built with ANTIMR_TRACE=OFF; "
                   "the trace will contain no events\n");
    }
    obs::Tracer::Global().Start();
  }

  int rc = Dispatch(flags, flags.positional()[0]);

  // Sinks are written even after a failed command: a partial trace is
  // exactly what you want when diagnosing the failure.
  if (!trace_file.empty()) {
    obs::Tracer::Global().Stop();
    const Status st = obs::Tracer::Global().WriteJson(trace_file);
    if (!st.ok()) {
      std::fprintf(stderr, "error writing trace: %s\n", st.ToString().c_str());
      if (rc == 0) rc = 1;
    }
  }
  const std::string metrics_file = flags.GetString("metrics", "");
  if (!metrics_file.empty()) {
    const bool json = metrics_file.size() >= 5 &&
                      metrics_file.compare(metrics_file.size() - 5, 5,
                                           ".json") == 0;
    const Status st = WriteTextFile(
        metrics_file, json ? obs::MetricsRegistry::Global().ToJson()
                           : obs::MetricsRegistry::Global().ToPrometheusText());
    if (!st.ok()) {
      std::fprintf(stderr, "error writing metrics: %s\n",
                   st.ToString().c_str());
      if (rc == 0) rc = 1;
    }
  }
  return rc;
}

}  // namespace
}  // namespace tools
}  // namespace antimr

int main(int argc, char** argv) { return antimr::tools::Main(argc, argv); }
