#!/usr/bin/env sh
# Multi-process smoke test: 1 coordinator + N worker processes on localhost
# TCP must produce byte-identical output to the single-process engine. The
# coordinator's /status endpoint must also report every worker live before
# the job is released (via --gate-file), exercising the live status surface
# the way an operator would.
#
# usage: run_local_cluster.sh [CLI_BINARY] [WORKERS] [WORKLOAD]
#   CLI_BINARY  path to antimr_cli      (default: ./build/tools/antimr_cli)
#   WORKERS     worker process count    (default: 2)
#   WORKLOAD    wordcount|sort|thetajoin|serve (default: wordcount)
#
# WORKLOAD=serve exercises the multi-tenant daemon instead of a one-shot
# run: `antimr_cli serve` + external worker processes, 8 concurrent jobs
# submitted across two weighted pools, every job's output hash compared to
# its single-process run, CLI error paths checked, clean SIGTERM shutdown.
#
# Exit 0 when the output hashes match, non-zero otherwise.
set -eu

CLI=${1:-./build/tools/antimr_cli}
WORKERS=${2:-2}
WORKLOAD=${3:-wordcount}
RECORDS=${RECORDS:-5000}
MAPS=${MAPS:-6}
REDUCES=${REDUCES:-4}
STRATEGY=${STRATEGY:-adaptive}

if [ ! -x "$CLI" ]; then
  echo "run_local_cluster: no antimr_cli at $CLI" >&2
  exit 2
fi

WORK_DIR=$(mktemp -d "${TMPDIR:-/tmp}/antimr_cluster.XXXXXX")
WORKER_PIDS=""
COORD_PID=""
# Every child dies with the script: a failing step between the coordinator
# launch and the final wait used to orphan the coordinator (and thereby its
# listen port) and leak WORK_DIR.
cleanup() {
  for pid in $WORKER_PIDS; do kill "$pid" 2>/dev/null || true; done
  if [ -n "$COORD_PID" ]; then kill "$COORD_PID" 2>/dev/null || true; fi
  rm -rf "$WORK_DIR"
}
trap cleanup EXIT INT TERM

if [ "$WORKLOAD" = "serve" ]; then
  # --- Daemon mode: persistent job service, multi-tenant submissions. ---
  READY="$WORK_DIR/ready"
  "$CLI" serve --dist=tcp --listen=127.0.0.1:0 --job-listen=127.0.0.1:0 \
      --status-listen=127.0.0.1:0 --local-workers=0 --workers="$WORKERS" \
      --pools=small:3:8,big:1:8 --max-concurrent-jobs=8 \
      --default-cpu-slots=1 --heartbeat-timeout-ms=4000 \
      --ready-file="$READY" > "$WORK_DIR/coord.out" 2>&1 &
  COORD_PID=$!

  # The coordinator binds an ephemeral port; external workers need it off
  # stdout (the ready file only lands once the worker quorum is up).
  COORD_ADDR=""
  i=0
  while [ "$i" -lt 100 ]; do
    COORD_ADDR=$(sed -n 's/^coordinator listening at //p' \
                 "$WORK_DIR/coord.out")
    [ -n "$COORD_ADDR" ] && break
    kill -0 "$COORD_PID" 2>/dev/null || break
    sleep 0.1
    i=$((i + 1))
  done
  if [ -z "$COORD_ADDR" ]; then
    echo "run_local_cluster: serve daemon never announced coordinator:" >&2
    cat "$WORK_DIR/coord.out" >&2
    exit 1
  fi

  i=0
  while [ "$i" -lt "$WORKERS" ]; do
    "$CLI" worker --connect="$COORD_ADDR" --name="worker$i" \
        > "$WORK_DIR/worker$i.out" 2>&1 &
    WORKER_PIDS="$WORKER_PIDS $!"
    i=$((i + 1))
  done

  # The ready file is the daemon's "worker quorum live, RPC planes bound"
  # signal; it carries the job-service and status addresses.
  i=0
  while [ "$i" -lt 300 ]; do
    [ -f "$READY" ] && break
    kill -0 "$COORD_PID" 2>/dev/null || break
    sleep 0.1
    i=$((i + 1))
  done
  if [ ! -f "$READY" ]; then
    echo "run_local_cluster: serve daemon never became ready:" >&2
    cat "$WORK_DIR/coord.out" >&2
    exit 1
  fi
  JOBS_ADDR=$(sed -n 's/^jobs=//p' "$READY")

  # CLI error paths: an unreachable endpoint and an unknown job must print
  # an error on stderr and exit non-zero — never hang or die silently.
  if "$CLI" jobs --connect=127.0.0.1:1 > "$WORK_DIR/neg1.out" 2>&1; then
    echo "run_local_cluster: jobs against a dead endpoint exited 0" >&2
    exit 1
  fi
  grep -q "error:" "$WORK_DIR/neg1.out" || {
    echo "run_local_cluster: no error message for dead endpoint" >&2
    cat "$WORK_DIR/neg1.out" >&2
    exit 1
  }
  if "$CLI" abort --connect="$JOBS_ADDR" --job=doesnotexist \
      > "$WORK_DIR/neg2.out" 2>&1; then
    echo "run_local_cluster: abort of an unknown job exited 0" >&2
    exit 1
  fi
  grep -q "error:" "$WORK_DIR/neg2.out" || {
    echo "run_local_cluster: no error message for unknown job" >&2
    cat "$WORK_DIR/neg2.out" >&2
    exit 1
  }

  # Two tenants, one cluster: pool "small" (weight 3) gets 6 wordcounts,
  # pool "big" (weight 1) gets 2 theta-joins, all in flight at once.
  SUB_PIDS=""
  i=0
  while [ "$i" -lt 6 ]; do
    "$CLI" submit --connect="$JOBS_ADDR" --pool=small --wait \
        --workload=wordcount --strategy="$STRATEGY" --records=3000 \
        --maps=4 --reduces=2 > "$WORK_DIR/sub_small$i.out" 2>&1 &
    SUB_PIDS="$SUB_PIDS $!"
    i=$((i + 1))
  done
  i=0
  while [ "$i" -lt 2 ]; do
    "$CLI" submit --connect="$JOBS_ADDR" --pool=big --wait \
        --workload=thetajoin --strategy="$STRATEGY" --records=4000 \
        --maps=4 --reduces=4 > "$WORK_DIR/sub_big$i.out" 2>&1 &
    SUB_PIDS="$SUB_PIDS $!"
    i=$((i + 1))
  done

  # All 8 must be admitted concurrently (max-concurrent-jobs=8, quotas
  # 6x1 + 2x1 slots within the 8-slot pool quotas).
  PEAK=0
  i=0
  while [ "$i" -lt 100 ]; do
    RUNNING=$("$CLI" jobs --connect="$JOBS_ADDR" 2>/dev/null \
              | grep -c "state=running" || true)
    [ "$RUNNING" -gt "$PEAK" ] && PEAK=$RUNNING
    [ "$PEAK" -ge 8 ] && break
    sleep 0.05
    i=$((i + 1))
  done

  SUB_FAIL=0
  for pid in $SUB_PIDS; do wait "$pid" || SUB_FAIL=1; done
  if [ "$SUB_FAIL" -ne 0 ]; then
    echo "run_local_cluster: a submitted job failed:" >&2
    cat "$WORK_DIR"/sub_*.out >&2
    exit 1
  fi
  if [ "$PEAK" -lt 8 ]; then
    echo "run_local_cluster: never saw 8 concurrent jobs (peak $PEAK)" >&2
    "$CLI" jobs --connect="$JOBS_ADDR" >&2 || true
    exit 1
  fi

  # Isolation gate: every tenant's hash must equal its single-process run.
  "$CLI" run --workload=wordcount --strategy="$STRATEGY" --records=3000 \
      --maps=4 --reduces=2 --output-hash > "$WORK_DIR/solo_small.out" 2>&1
  SMALL_HASH=$(sed -n 's/.*output_hash=\([0-9a-f]*\).*/\1/p' \
               "$WORK_DIR/solo_small.out")
  "$CLI" run --workload=thetajoin --strategy="$STRATEGY" --records=4000 \
      --maps=4 --reduces=4 --output-hash > "$WORK_DIR/solo_big.out" 2>&1
  BIG_HASH=$(sed -n 's/.*output_hash=\([0-9a-f]*\).*/\1/p' \
             "$WORK_DIR/solo_big.out")
  i=0
  while [ "$i" -lt 6 ]; do
    H=$(sed -n 's/.*output_hash=\([0-9a-f]*\).*/\1/p' \
        "$WORK_DIR/sub_small$i.out")
    if [ "$H" != "$SMALL_HASH" ]; then
      echo "run_local_cluster: small job $i hash $H != solo $SMALL_HASH" >&2
      exit 1
    fi
    i=$((i + 1))
  done
  i=0
  while [ "$i" -lt 2 ]; do
    H=$(sed -n 's/.*output_hash=\([0-9a-f]*\).*/\1/p' \
        "$WORK_DIR/sub_big$i.out")
    if [ "$H" != "$BIG_HASH" ]; then
      echo "run_local_cluster: big job $i hash $H != solo $BIG_HASH" >&2
      exit 1
    fi
    i=$((i + 1))
  done

  DONE=$("$CLI" jobs --connect="$JOBS_ADDR" | grep -c "state=succeeded" \
         || true)
  if [ "$DONE" -ne 8 ]; then
    echo "run_local_cluster: expected 8 succeeded jobs, table shows $DONE" >&2
    "$CLI" jobs --connect="$JOBS_ADDR" >&2 || true
    exit 1
  fi

  # Clean shutdown on SIGTERM: exit 0, workers reaped by the broadcast.
  kill -TERM "$COORD_PID"
  COORD_WAIT=0
  wait "$COORD_PID" || COORD_WAIT=$?
  COORD_PID=""
  if [ "$COORD_WAIT" -ne 0 ]; then
    echo "run_local_cluster: serve daemon exited $COORD_WAIT on SIGTERM:" >&2
    cat "$WORK_DIR/coord.out" >&2
    exit 1
  fi
  for pid in $WORKER_PIDS; do wait "$pid" || true; done
  WORKER_PIDS=""
  echo "run_local_cluster: serve mode with $WORKERS workers ran 8" \
       "concurrent jobs across 2 pools; all hashes match single-process"
  exit 0
fi

# Derive a port from the PID to dodge parallel ctest instances; the bind is
# retried on the next port if something else got there first.
PORT=$((20000 + $$ % 20000))
ATTEMPTS=0
while :; do
  "$CLI" run --workload="$WORKLOAD" --strategy="$STRATEGY" \
      --records="$RECORDS" --maps="$MAPS" --reduces="$REDUCES" \
      --dist=tcp --listen=127.0.0.1:$PORT --workers="$WORKERS" \
      --status-listen=127.0.0.1:0 --gate-file="$WORK_DIR/gate" \
      --output-hash > "$WORK_DIR/coord.out" 2>&1 &
  COORD_PID=$!
  sleep 0.2
  if kill -0 "$COORD_PID" 2>/dev/null; then
    break
  fi
  wait "$COORD_PID" || true
  ATTEMPTS=$((ATTEMPTS + 1))
  if [ "$ATTEMPTS" -ge 5 ]; then
    echo "run_local_cluster: coordinator failed to start:" >&2
    cat "$WORK_DIR/coord.out" >&2
    exit 1
  fi
  PORT=$((PORT + 1))
done

# The status server binds an ephemeral port; read it off stdout.
STATUS_ADDR=""
i=0
while [ "$i" -lt 50 ]; do
  STATUS_ADDR=$(sed -n 's/^status listening at //p' "$WORK_DIR/coord.out")
  [ -n "$STATUS_ADDR" ] && break
  sleep 0.1
  i=$((i + 1))
done
if [ -z "$STATUS_ADDR" ]; then
  echo "run_local_cluster: coordinator never announced its status server:" >&2
  cat "$WORK_DIR/coord.out" >&2
  exit 1
fi

i=0
while [ "$i" -lt "$WORKERS" ]; do
  "$CLI" worker --connect=127.0.0.1:$PORT --name="worker$i" \
      > "$WORK_DIR/worker$i.out" 2>&1 &
  WORKER_PIDS="$WORKER_PIDS $!"
  i=$((i + 1))
done

# The job stays gated until /status reports the full quorum live — the
# observability check this script exists to make.
LIVE=""
i=0
while [ "$i" -lt 100 ]; do
  LIVE=$("$CLI" status --connect="$STATUS_ADDR" 2>/dev/null \
         | sed -n 's/^ *"live_workers": \([0-9]*\).*/\1/p')
  [ "$LIVE" = "$WORKERS" ] && break
  sleep 0.1
  i=$((i + 1))
done
if [ "$LIVE" != "$WORKERS" ]; then
  echo "run_local_cluster: /status never reported $WORKERS live workers" \
       "(last: '$LIVE')" >&2
  cat "$WORK_DIR/coord.out" >&2
  exit 1
fi
touch "$WORK_DIR/gate"

COORD_WAIT=0
wait "$COORD_PID" || COORD_WAIT=$?
COORD_PID=""
if [ "$COORD_WAIT" -ne 0 ]; then
  echo "run_local_cluster: distributed run failed:" >&2
  cat "$WORK_DIR/coord.out" >&2
  exit 1
fi
# Workers exit on the coordinator's Shutdown; reap them before comparing.
for pid in $WORKER_PIDS; do wait "$pid" || true; done
WORKER_PIDS=""

DIST_HASH=$(sed -n 's/^output_hash=\([0-9a-f]*\).*/\1/p' "$WORK_DIR/coord.out")
if [ -z "$DIST_HASH" ]; then
  echo "run_local_cluster: no output_hash in coordinator output:" >&2
  cat "$WORK_DIR/coord.out" >&2
  exit 1
fi

"$CLI" run --workload="$WORKLOAD" --strategy="$STRATEGY" \
    --records="$RECORDS" --maps="$MAPS" --reduces="$REDUCES" \
    --output-hash > "$WORK_DIR/local.out" 2>&1
LOCAL_HASH=$(sed -n 's/^output_hash=\([0-9a-f]*\).*/\1/p' "$WORK_DIR/local.out")

if [ "$DIST_HASH" != "$LOCAL_HASH" ]; then
  echo "run_local_cluster: OUTPUT MISMATCH ($WORKLOAD, $WORKERS workers):" >&2
  echo "  distributed: $DIST_HASH" >&2
  echo "  local:       $LOCAL_HASH" >&2
  exit 1
fi
echo "run_local_cluster: $WORKLOAD with $WORKERS workers over tcp matches" \
     "single-process (hash $DIST_HASH)"
