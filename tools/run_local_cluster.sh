#!/usr/bin/env sh
# Multi-process smoke test: 1 coordinator + N worker processes on localhost
# TCP must produce byte-identical output to the single-process engine. The
# coordinator's /status endpoint must also report every worker live before
# the job is released (via --gate-file), exercising the live status surface
# the way an operator would.
#
# usage: run_local_cluster.sh [CLI_BINARY] [WORKERS] [WORKLOAD]
#   CLI_BINARY  path to antimr_cli      (default: ./build/tools/antimr_cli)
#   WORKERS     worker process count    (default: 2)
#   WORKLOAD    wordcount|sort|thetajoin (default: wordcount)
#
# Exit 0 when the output hashes match, non-zero otherwise.
set -eu

CLI=${1:-./build/tools/antimr_cli}
WORKERS=${2:-2}
WORKLOAD=${3:-wordcount}
RECORDS=${RECORDS:-5000}
MAPS=${MAPS:-6}
REDUCES=${REDUCES:-4}
STRATEGY=${STRATEGY:-adaptive}

if [ ! -x "$CLI" ]; then
  echo "run_local_cluster: no antimr_cli at $CLI" >&2
  exit 2
fi

WORK_DIR=$(mktemp -d "${TMPDIR:-/tmp}/antimr_cluster.XXXXXX")
WORKER_PIDS=""
COORD_PID=""
# Every child dies with the script: a failing step between the coordinator
# launch and the final wait used to orphan the coordinator (and thereby its
# listen port) and leak WORK_DIR.
cleanup() {
  for pid in $WORKER_PIDS; do kill "$pid" 2>/dev/null || true; done
  if [ -n "$COORD_PID" ]; then kill "$COORD_PID" 2>/dev/null || true; fi
  rm -rf "$WORK_DIR"
}
trap cleanup EXIT INT TERM

# Derive a port from the PID to dodge parallel ctest instances; the bind is
# retried on the next port if something else got there first.
PORT=$((20000 + $$ % 20000))
ATTEMPTS=0
while :; do
  "$CLI" run --workload="$WORKLOAD" --strategy="$STRATEGY" \
      --records="$RECORDS" --maps="$MAPS" --reduces="$REDUCES" \
      --dist=tcp --listen=127.0.0.1:$PORT --workers="$WORKERS" \
      --status-listen=127.0.0.1:0 --gate-file="$WORK_DIR/gate" \
      --output-hash > "$WORK_DIR/coord.out" 2>&1 &
  COORD_PID=$!
  sleep 0.2
  if kill -0 "$COORD_PID" 2>/dev/null; then
    break
  fi
  wait "$COORD_PID" || true
  ATTEMPTS=$((ATTEMPTS + 1))
  if [ "$ATTEMPTS" -ge 5 ]; then
    echo "run_local_cluster: coordinator failed to start:" >&2
    cat "$WORK_DIR/coord.out" >&2
    exit 1
  fi
  PORT=$((PORT + 1))
done

# The status server binds an ephemeral port; read it off stdout.
STATUS_ADDR=""
i=0
while [ "$i" -lt 50 ]; do
  STATUS_ADDR=$(sed -n 's/^status listening at //p' "$WORK_DIR/coord.out")
  [ -n "$STATUS_ADDR" ] && break
  sleep 0.1
  i=$((i + 1))
done
if [ -z "$STATUS_ADDR" ]; then
  echo "run_local_cluster: coordinator never announced its status server:" >&2
  cat "$WORK_DIR/coord.out" >&2
  exit 1
fi

i=0
while [ "$i" -lt "$WORKERS" ]; do
  "$CLI" worker --connect=127.0.0.1:$PORT --name="worker$i" \
      > "$WORK_DIR/worker$i.out" 2>&1 &
  WORKER_PIDS="$WORKER_PIDS $!"
  i=$((i + 1))
done

# The job stays gated until /status reports the full quorum live — the
# observability check this script exists to make.
LIVE=""
i=0
while [ "$i" -lt 100 ]; do
  LIVE=$("$CLI" status --connect="$STATUS_ADDR" 2>/dev/null \
         | sed -n 's/^ *"live_workers": \([0-9]*\).*/\1/p')
  [ "$LIVE" = "$WORKERS" ] && break
  sleep 0.1
  i=$((i + 1))
done
if [ "$LIVE" != "$WORKERS" ]; then
  echo "run_local_cluster: /status never reported $WORKERS live workers" \
       "(last: '$LIVE')" >&2
  cat "$WORK_DIR/coord.out" >&2
  exit 1
fi
touch "$WORK_DIR/gate"

COORD_WAIT=0
wait "$COORD_PID" || COORD_WAIT=$?
COORD_PID=""
if [ "$COORD_WAIT" -ne 0 ]; then
  echo "run_local_cluster: distributed run failed:" >&2
  cat "$WORK_DIR/coord.out" >&2
  exit 1
fi
# Workers exit on the coordinator's Shutdown; reap them before comparing.
for pid in $WORKER_PIDS; do wait "$pid" || true; done
WORKER_PIDS=""

DIST_HASH=$(sed -n 's/^output_hash=\([0-9a-f]*\).*/\1/p' "$WORK_DIR/coord.out")
if [ -z "$DIST_HASH" ]; then
  echo "run_local_cluster: no output_hash in coordinator output:" >&2
  cat "$WORK_DIR/coord.out" >&2
  exit 1
fi

"$CLI" run --workload="$WORKLOAD" --strategy="$STRATEGY" \
    --records="$RECORDS" --maps="$MAPS" --reduces="$REDUCES" \
    --output-hash > "$WORK_DIR/local.out" 2>&1
LOCAL_HASH=$(sed -n 's/^output_hash=\([0-9a-f]*\).*/\1/p' "$WORK_DIR/local.out")

if [ "$DIST_HASH" != "$LOCAL_HASH" ]; then
  echo "run_local_cluster: OUTPUT MISMATCH ($WORKLOAD, $WORKERS workers):" >&2
  echo "  distributed: $DIST_HASH" >&2
  echo "  local:       $LOCAL_HASH" >&2
  exit 1
fi
echo "run_local_cluster: $WORKLOAD with $WORKERS workers over tcp matches" \
     "single-process (hash $DIST_HASH)"
