#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file produced by --trace.

Structural checks (always on):
  * the file parses as JSON with a "traceEvents" list
  * every event carries the required keys for its phase type
  * within each (pid, tid) lane, timestamps are non-decreasing
  * every lane's B/E spans are balanced and properly nested

Acceptance checks (opt-in flags, used by the tier-1 ctest):
  * --expect-stages N        at least N distinct async "stage:*" tracks
  * --expect-anticombine     at least one shared_spill or adaptive_decision
                             instant event

Exits 0 when every requested check passes, 1 otherwise. Stdlib only.
"""
import argparse
import json
import sys

# Keys every event must carry, plus per-phase extras.
BASE_KEYS = {"ph", "pid", "tid"}
PHASE_KEYS = {
    "B": {"name", "cat", "ts"},
    "E": {"ts"},
    "X": {"name", "cat", "ts", "dur"},
    "i": {"name", "cat", "ts", "s"},
    "C": {"name", "ts", "args"},
    "b": {"name", "cat", "ts", "id"},
    "e": {"name", "cat", "ts", "id"},
    "M": {"name", "args"},
}


def fail(msg):
    print("validate_trace: FAIL: %s" % msg, file=sys.stderr)
    return 1


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="trace JSON file to validate")
    parser.add_argument("--expect-stages", type=int, default=0, metavar="N",
                        help="require at least N async stage tracks")
    parser.add_argument("--expect-anticombine", action="store_true",
                        help="require a shared_spill or adaptive_decision "
                             "instant")
    args = parser.parse_args()

    try:
        with open(args.trace, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return fail("cannot parse %s: %s" % (args.trace, e))

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return fail("missing or non-list traceEvents")

    last_ts = {}      # (pid, tid) -> last seen ts
    open_spans = {}   # (pid, tid) -> stack of open B names
    stage_tracks = set()
    anticombine_instants = 0

    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            return fail("event %d is not an object" % i)
        ph = ev.get("ph")
        if ph not in PHASE_KEYS:
            return fail("event %d has unknown ph %r" % (i, ph))
        missing = (BASE_KEYS | PHASE_KEYS[ph]) - ev.keys()
        if missing:
            return fail("event %d (ph=%s) missing keys %s"
                        % (i, ph, sorted(missing)))
        if ph == "M":
            continue
        lane = (ev["pid"], ev["tid"])
        ts = ev["ts"]
        if ts < last_ts.get(lane, 0):
            return fail("event %d: ts %s goes backwards in lane %s"
                        % (i, ts, lane))
        last_ts[lane] = ts
        if ph == "B":
            open_spans.setdefault(lane, []).append(ev["name"])
        elif ph == "E":
            if not open_spans.get(lane):
                return fail("event %d: E with no open span in lane %s"
                            % (i, lane))
            open_spans[lane].pop()
        elif ph == "b" and ev["name"].startswith("stage:"):
            stage_tracks.add(ev["name"])
        elif ph == "i" and ev["name"] in ("shared_spill", "adaptive_decision"):
            anticombine_instants += 1

    unbalanced = {lane: stack for lane, stack in open_spans.items() if stack}
    if unbalanced:
        return fail("unclosed spans at end of trace: %s" % unbalanced)

    if args.expect_stages and len(stage_tracks) < args.expect_stages:
        return fail("expected >= %d stage tracks, found %d: %s"
                    % (args.expect_stages, len(stage_tracks),
                       sorted(stage_tracks)))
    if args.expect_anticombine and anticombine_instants == 0:
        return fail("expected a shared_spill or adaptive_decision instant, "
                    "found none")

    print("validate_trace: OK: %d events, %d lanes, %d stage tracks, "
          "%d anti-combining instants"
          % (len(events), len(last_ts), len(stage_tracks),
             anticombine_instants))
    return 0


if __name__ == "__main__":
    sys.exit(main())
