#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file produced by --trace or a merged
cluster trace produced by --cluster-trace.

Structural checks (always on):
  * the file parses as JSON with a "traceEvents" list
  * every event carries the required keys for its phase type
  * within each (pid, tid) lane, timestamps are non-decreasing
  * every lane's B/E spans are balanced and properly nested
  * flow arrows are causally ordered: for every flow id with both ends,
    the earliest start ('s') does not postdate the latest finish ('f')

Acceptance checks (opt-in flags, used by the ctest suites):
  * --expect-stages N        at least N distinct async "stage:*" tracks
  * --expect-anticombine     at least one shared_spill or adaptive_decision
                             instant event
  * --expect-pids N          at least N distinct pid lanes, each labeled by
                             a process_name metadata event (cluster merges)
  * --expect-flows N         at least N flow ids with a matched s/f pair;
                             orphan ends are tolerated (a crashed worker
                             legitimately strands its arrows) but counted
  * --expect-span SUBSTR     some B or X event name contains SUBSTR
                             (repeatable; all must match)

Exits 0 when every requested check passes, 1 otherwise. Stdlib only.
"""
import argparse
import json
import sys

# Keys every event must carry, plus per-phase extras.
BASE_KEYS = {"ph", "pid", "tid"}
PHASE_KEYS = {
    "B": {"name", "cat", "ts"},
    "E": {"ts"},
    "X": {"name", "cat", "ts", "dur"},
    "i": {"name", "cat", "ts", "s"},
    "C": {"name", "ts", "args"},
    "b": {"name", "cat", "ts", "id"},
    "e": {"name", "cat", "ts", "id"},
    "s": {"name", "cat", "ts", "id"},
    "f": {"name", "cat", "ts", "id"},
    "M": {"name", "args"},
}


def fail(msg):
    print("validate_trace: FAIL: %s" % msg, file=sys.stderr)
    return 1


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="trace JSON file to validate")
    parser.add_argument("--expect-stages", type=int, default=0, metavar="N",
                        help="require at least N async stage tracks")
    parser.add_argument("--expect-anticombine", action="store_true",
                        help="require a shared_spill or adaptive_decision "
                             "instant")
    parser.add_argument("--expect-pids", type=int, default=0, metavar="N",
                        help="require at least N named pid lanes")
    parser.add_argument("--expect-flows", type=int, default=0, metavar="N",
                        help="require at least N matched s/f flow pairs")
    parser.add_argument("--expect-span", action="append", default=[],
                        metavar="SUBSTR",
                        help="require a B/X span name containing SUBSTR "
                             "(repeatable)")
    args = parser.parse_args()

    try:
        with open(args.trace, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return fail("cannot parse %s: %s" % (args.trace, e))

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return fail("missing or non-list traceEvents")

    last_ts = {}      # (pid, tid) -> last seen ts
    open_spans = {}   # (pid, tid) -> stack of open B names
    stage_tracks = set()
    anticombine_instants = 0
    named_pids = set()       # pids with a process_name metadata event
    flow_starts = {}         # flow id -> earliest 's' ts
    flow_finishes = {}       # flow id -> latest 'f' ts
    span_names = set()       # B/X names (for --expect-span)

    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            return fail("event %d is not an object" % i)
        ph = ev.get("ph")
        if ph not in PHASE_KEYS:
            return fail("event %d has unknown ph %r" % (i, ph))
        missing = (BASE_KEYS | PHASE_KEYS[ph]) - ev.keys()
        if missing:
            return fail("event %d (ph=%s) missing keys %s"
                        % (i, ph, sorted(missing)))
        if ph == "M":
            if ev["name"] == "process_name":
                named_pids.add(ev["pid"])
            continue
        lane = (ev["pid"], ev["tid"])
        ts = ev["ts"]
        if ts < last_ts.get(lane, 0):
            return fail("event %d: ts %s goes backwards in lane %s"
                        % (i, ts, lane))
        last_ts[lane] = ts
        if ph == "B":
            open_spans.setdefault(lane, []).append(ev["name"])
            span_names.add(ev["name"])
        elif ph == "E":
            if not open_spans.get(lane):
                return fail("event %d: E with no open span in lane %s"
                            % (i, lane))
            open_spans[lane].pop()
        elif ph == "X":
            span_names.add(ev["name"])
        elif ph == "b" and ev["name"].startswith("stage:"):
            stage_tracks.add(ev["name"])
        elif ph == "i" and ev["name"] in ("shared_spill", "adaptive_decision"):
            anticombine_instants += 1
        elif ph == "s":
            fid = ev["id"]
            flow_starts[fid] = min(flow_starts.get(fid, ts), ts)
        elif ph == "f":
            fid = ev["id"]
            flow_finishes[fid] = max(flow_finishes.get(fid, ts), ts)

    unbalanced = {lane: stack for lane, stack in open_spans.items() if stack}
    if unbalanced:
        return fail("unclosed spans at end of trace: %s" % unbalanced)

    matched_flows = 0
    for fid, start_ts in flow_starts.items():
        if fid in flow_finishes:
            if start_ts > flow_finishes[fid]:
                return fail("flow %s finishes (ts %s) before it starts "
                            "(ts %s)" % (fid, flow_finishes[fid], start_ts))
            matched_flows += 1
    orphan_flows = (len(flow_starts) - matched_flows
                    + sum(1 for fid in flow_finishes if fid not in flow_starts))

    if args.expect_stages and len(stage_tracks) < args.expect_stages:
        return fail("expected >= %d stage tracks, found %d: %s"
                    % (args.expect_stages, len(stage_tracks),
                       sorted(stage_tracks)))
    if args.expect_anticombine and anticombine_instants == 0:
        return fail("expected a shared_spill or adaptive_decision instant, "
                    "found none")
    if args.expect_pids and len(named_pids) < args.expect_pids:
        return fail("expected >= %d named pid lanes, found %d: %s"
                    % (args.expect_pids, len(named_pids), sorted(named_pids)))
    if args.expect_flows and matched_flows < args.expect_flows:
        return fail("expected >= %d matched flow pairs, found %d "
                    "(%d orphan ends)"
                    % (args.expect_flows, matched_flows, orphan_flows))
    for substr in args.expect_span:
        if not any(substr in name for name in span_names):
            return fail("no B/X span name contains %r" % substr)

    print("validate_trace: OK: %d events, %d lanes, %d named pids, "
          "%d stage tracks, %d matched flows (%d orphans), "
          "%d anti-combining instants"
          % (len(events), len(last_ts), len(named_pids), len(stage_tracks),
             matched_flows, orphan_flows, anticombine_instants))
    return 0


if __name__ == "__main__":
    sys.exit(main())
