file(REMOVE_RECURSE
  "CMakeFiles/antimr_cli.dir/antimr_cli.cc.o"
  "CMakeFiles/antimr_cli.dir/antimr_cli.cc.o.d"
  "antimr_cli"
  "antimr_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/antimr_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
