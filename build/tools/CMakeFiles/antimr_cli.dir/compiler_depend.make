# Empty compiler generated dependencies file for antimr_cli.
# This may be replaced when dependencies are built.
