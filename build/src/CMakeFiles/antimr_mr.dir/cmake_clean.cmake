file(REMOVE_RECURSE
  "CMakeFiles/antimr_mr.dir/mr/in_mapper_combining.cc.o"
  "CMakeFiles/antimr_mr.dir/mr/in_mapper_combining.cc.o.d"
  "CMakeFiles/antimr_mr.dir/mr/job_runner.cc.o"
  "CMakeFiles/antimr_mr.dir/mr/job_runner.cc.o.d"
  "CMakeFiles/antimr_mr.dir/mr/job_spec.cc.o"
  "CMakeFiles/antimr_mr.dir/mr/job_spec.cc.o.d"
  "CMakeFiles/antimr_mr.dir/mr/local_cluster.cc.o"
  "CMakeFiles/antimr_mr.dir/mr/local_cluster.cc.o.d"
  "CMakeFiles/antimr_mr.dir/mr/map_output_buffer.cc.o"
  "CMakeFiles/antimr_mr.dir/mr/map_output_buffer.cc.o.d"
  "CMakeFiles/antimr_mr.dir/mr/map_task.cc.o"
  "CMakeFiles/antimr_mr.dir/mr/map_task.cc.o.d"
  "CMakeFiles/antimr_mr.dir/mr/metrics.cc.o"
  "CMakeFiles/antimr_mr.dir/mr/metrics.cc.o.d"
  "CMakeFiles/antimr_mr.dir/mr/reduce_task.cc.o"
  "CMakeFiles/antimr_mr.dir/mr/reduce_task.cc.o.d"
  "CMakeFiles/antimr_mr.dir/mr/shuffle.cc.o"
  "CMakeFiles/antimr_mr.dir/mr/shuffle.cc.o.d"
  "CMakeFiles/antimr_mr.dir/mr/types.cc.o"
  "CMakeFiles/antimr_mr.dir/mr/types.cc.o.d"
  "libantimr_mr.a"
  "libantimr_mr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/antimr_mr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
