
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mr/in_mapper_combining.cc" "src/CMakeFiles/antimr_mr.dir/mr/in_mapper_combining.cc.o" "gcc" "src/CMakeFiles/antimr_mr.dir/mr/in_mapper_combining.cc.o.d"
  "/root/repo/src/mr/job_runner.cc" "src/CMakeFiles/antimr_mr.dir/mr/job_runner.cc.o" "gcc" "src/CMakeFiles/antimr_mr.dir/mr/job_runner.cc.o.d"
  "/root/repo/src/mr/job_spec.cc" "src/CMakeFiles/antimr_mr.dir/mr/job_spec.cc.o" "gcc" "src/CMakeFiles/antimr_mr.dir/mr/job_spec.cc.o.d"
  "/root/repo/src/mr/local_cluster.cc" "src/CMakeFiles/antimr_mr.dir/mr/local_cluster.cc.o" "gcc" "src/CMakeFiles/antimr_mr.dir/mr/local_cluster.cc.o.d"
  "/root/repo/src/mr/map_output_buffer.cc" "src/CMakeFiles/antimr_mr.dir/mr/map_output_buffer.cc.o" "gcc" "src/CMakeFiles/antimr_mr.dir/mr/map_output_buffer.cc.o.d"
  "/root/repo/src/mr/map_task.cc" "src/CMakeFiles/antimr_mr.dir/mr/map_task.cc.o" "gcc" "src/CMakeFiles/antimr_mr.dir/mr/map_task.cc.o.d"
  "/root/repo/src/mr/metrics.cc" "src/CMakeFiles/antimr_mr.dir/mr/metrics.cc.o" "gcc" "src/CMakeFiles/antimr_mr.dir/mr/metrics.cc.o.d"
  "/root/repo/src/mr/reduce_task.cc" "src/CMakeFiles/antimr_mr.dir/mr/reduce_task.cc.o" "gcc" "src/CMakeFiles/antimr_mr.dir/mr/reduce_task.cc.o.d"
  "/root/repo/src/mr/shuffle.cc" "src/CMakeFiles/antimr_mr.dir/mr/shuffle.cc.o" "gcc" "src/CMakeFiles/antimr_mr.dir/mr/shuffle.cc.o.d"
  "/root/repo/src/mr/types.cc" "src/CMakeFiles/antimr_mr.dir/mr/types.cc.o" "gcc" "src/CMakeFiles/antimr_mr.dir/mr/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/antimr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/antimr_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/antimr_codec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
