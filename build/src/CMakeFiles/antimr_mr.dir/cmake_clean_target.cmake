file(REMOVE_RECURSE
  "libantimr_mr.a"
)
