# Empty compiler generated dependencies file for antimr_mr.
# This may be replaced when dependencies are built.
