file(REMOVE_RECURSE
  "libantimr_anticombine.a"
)
