file(REMOVE_RECURSE
  "CMakeFiles/antimr_anticombine.dir/anticombine/advisor.cc.o"
  "CMakeFiles/antimr_anticombine.dir/anticombine/advisor.cc.o.d"
  "CMakeFiles/antimr_anticombine.dir/anticombine/anti_mapper.cc.o"
  "CMakeFiles/antimr_anticombine.dir/anticombine/anti_mapper.cc.o.d"
  "CMakeFiles/antimr_anticombine.dir/anticombine/anti_reducer.cc.o"
  "CMakeFiles/antimr_anticombine.dir/anticombine/anti_reducer.cc.o.d"
  "CMakeFiles/antimr_anticombine.dir/anticombine/encoding.cc.o"
  "CMakeFiles/antimr_anticombine.dir/anticombine/encoding.cc.o.d"
  "CMakeFiles/antimr_anticombine.dir/anticombine/shared.cc.o"
  "CMakeFiles/antimr_anticombine.dir/anticombine/shared.cc.o.d"
  "CMakeFiles/antimr_anticombine.dir/anticombine/transform.cc.o"
  "CMakeFiles/antimr_anticombine.dir/anticombine/transform.cc.o.d"
  "libantimr_anticombine.a"
  "libantimr_anticombine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/antimr_anticombine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
