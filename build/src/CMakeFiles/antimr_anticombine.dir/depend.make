# Empty dependencies file for antimr_anticombine.
# This may be replaced when dependencies are built.
