
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/anticombine/advisor.cc" "src/CMakeFiles/antimr_anticombine.dir/anticombine/advisor.cc.o" "gcc" "src/CMakeFiles/antimr_anticombine.dir/anticombine/advisor.cc.o.d"
  "/root/repo/src/anticombine/anti_mapper.cc" "src/CMakeFiles/antimr_anticombine.dir/anticombine/anti_mapper.cc.o" "gcc" "src/CMakeFiles/antimr_anticombine.dir/anticombine/anti_mapper.cc.o.d"
  "/root/repo/src/anticombine/anti_reducer.cc" "src/CMakeFiles/antimr_anticombine.dir/anticombine/anti_reducer.cc.o" "gcc" "src/CMakeFiles/antimr_anticombine.dir/anticombine/anti_reducer.cc.o.d"
  "/root/repo/src/anticombine/encoding.cc" "src/CMakeFiles/antimr_anticombine.dir/anticombine/encoding.cc.o" "gcc" "src/CMakeFiles/antimr_anticombine.dir/anticombine/encoding.cc.o.d"
  "/root/repo/src/anticombine/shared.cc" "src/CMakeFiles/antimr_anticombine.dir/anticombine/shared.cc.o" "gcc" "src/CMakeFiles/antimr_anticombine.dir/anticombine/shared.cc.o.d"
  "/root/repo/src/anticombine/transform.cc" "src/CMakeFiles/antimr_anticombine.dir/anticombine/transform.cc.o" "gcc" "src/CMakeFiles/antimr_anticombine.dir/anticombine/transform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/antimr_mr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/antimr_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/antimr_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/antimr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
