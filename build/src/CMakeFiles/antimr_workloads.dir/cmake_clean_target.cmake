file(REMOVE_RECURSE
  "libantimr_workloads.a"
)
