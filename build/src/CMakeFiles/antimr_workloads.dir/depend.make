# Empty dependencies file for antimr_workloads.
# This may be replaced when dependencies are built.
