file(REMOVE_RECURSE
  "CMakeFiles/antimr_workloads.dir/workloads/pagerank.cc.o"
  "CMakeFiles/antimr_workloads.dir/workloads/pagerank.cc.o.d"
  "CMakeFiles/antimr_workloads.dir/workloads/query_suggestion.cc.o"
  "CMakeFiles/antimr_workloads.dir/workloads/query_suggestion.cc.o.d"
  "CMakeFiles/antimr_workloads.dir/workloads/sort.cc.o"
  "CMakeFiles/antimr_workloads.dir/workloads/sort.cc.o.d"
  "CMakeFiles/antimr_workloads.dir/workloads/theta_join.cc.o"
  "CMakeFiles/antimr_workloads.dir/workloads/theta_join.cc.o.d"
  "CMakeFiles/antimr_workloads.dir/workloads/wordcount.cc.o"
  "CMakeFiles/antimr_workloads.dir/workloads/wordcount.cc.o.d"
  "libantimr_workloads.a"
  "libantimr_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/antimr_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
