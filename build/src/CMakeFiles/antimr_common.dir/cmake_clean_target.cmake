file(REMOVE_RECURSE
  "libantimr_common.a"
)
