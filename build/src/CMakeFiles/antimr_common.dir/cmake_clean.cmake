file(REMOVE_RECURSE
  "CMakeFiles/antimr_common.dir/common/coding.cc.o"
  "CMakeFiles/antimr_common.dir/common/coding.cc.o.d"
  "CMakeFiles/antimr_common.dir/common/hash.cc.o"
  "CMakeFiles/antimr_common.dir/common/hash.cc.o.d"
  "CMakeFiles/antimr_common.dir/common/logging.cc.o"
  "CMakeFiles/antimr_common.dir/common/logging.cc.o.d"
  "CMakeFiles/antimr_common.dir/common/random.cc.o"
  "CMakeFiles/antimr_common.dir/common/random.cc.o.d"
  "CMakeFiles/antimr_common.dir/common/status.cc.o"
  "CMakeFiles/antimr_common.dir/common/status.cc.o.d"
  "CMakeFiles/antimr_common.dir/common/stopwatch.cc.o"
  "CMakeFiles/antimr_common.dir/common/stopwatch.cc.o.d"
  "libantimr_common.a"
  "libantimr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/antimr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
