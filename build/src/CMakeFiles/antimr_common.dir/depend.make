# Empty dependencies file for antimr_common.
# This may be replaced when dependencies are built.
