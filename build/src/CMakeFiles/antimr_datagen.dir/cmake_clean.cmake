file(REMOVE_RECURSE
  "CMakeFiles/antimr_datagen.dir/datagen/cloud.cc.o"
  "CMakeFiles/antimr_datagen.dir/datagen/cloud.cc.o.d"
  "CMakeFiles/antimr_datagen.dir/datagen/graph.cc.o"
  "CMakeFiles/antimr_datagen.dir/datagen/graph.cc.o.d"
  "CMakeFiles/antimr_datagen.dir/datagen/qlog.cc.o"
  "CMakeFiles/antimr_datagen.dir/datagen/qlog.cc.o.d"
  "CMakeFiles/antimr_datagen.dir/datagen/random_text.cc.o"
  "CMakeFiles/antimr_datagen.dir/datagen/random_text.cc.o.d"
  "libantimr_datagen.a"
  "libantimr_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/antimr_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
