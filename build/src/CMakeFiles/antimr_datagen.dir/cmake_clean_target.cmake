file(REMOVE_RECURSE
  "libantimr_datagen.a"
)
