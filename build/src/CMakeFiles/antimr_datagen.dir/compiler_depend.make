# Empty compiler generated dependencies file for antimr_datagen.
# This may be replaced when dependencies are built.
