
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/cloud.cc" "src/CMakeFiles/antimr_datagen.dir/datagen/cloud.cc.o" "gcc" "src/CMakeFiles/antimr_datagen.dir/datagen/cloud.cc.o.d"
  "/root/repo/src/datagen/graph.cc" "src/CMakeFiles/antimr_datagen.dir/datagen/graph.cc.o" "gcc" "src/CMakeFiles/antimr_datagen.dir/datagen/graph.cc.o.d"
  "/root/repo/src/datagen/qlog.cc" "src/CMakeFiles/antimr_datagen.dir/datagen/qlog.cc.o" "gcc" "src/CMakeFiles/antimr_datagen.dir/datagen/qlog.cc.o.d"
  "/root/repo/src/datagen/random_text.cc" "src/CMakeFiles/antimr_datagen.dir/datagen/random_text.cc.o" "gcc" "src/CMakeFiles/antimr_datagen.dir/datagen/random_text.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/antimr_mr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/antimr_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/antimr_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/antimr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
