file(REMOVE_RECURSE
  "libantimr_io.a"
)
