# Empty compiler generated dependencies file for antimr_io.
# This may be replaced when dependencies are built.
