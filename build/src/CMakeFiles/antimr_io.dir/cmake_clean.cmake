file(REMOVE_RECURSE
  "CMakeFiles/antimr_io.dir/io/buffered_io.cc.o"
  "CMakeFiles/antimr_io.dir/io/buffered_io.cc.o.d"
  "CMakeFiles/antimr_io.dir/io/env.cc.o"
  "CMakeFiles/antimr_io.dir/io/env.cc.o.d"
  "CMakeFiles/antimr_io.dir/io/mem_env.cc.o"
  "CMakeFiles/antimr_io.dir/io/mem_env.cc.o.d"
  "CMakeFiles/antimr_io.dir/io/merger.cc.o"
  "CMakeFiles/antimr_io.dir/io/merger.cc.o.d"
  "CMakeFiles/antimr_io.dir/io/posix_env.cc.o"
  "CMakeFiles/antimr_io.dir/io/posix_env.cc.o.d"
  "CMakeFiles/antimr_io.dir/io/run_file.cc.o"
  "CMakeFiles/antimr_io.dir/io/run_file.cc.o.d"
  "CMakeFiles/antimr_io.dir/io/throttled_env.cc.o"
  "CMakeFiles/antimr_io.dir/io/throttled_env.cc.o.d"
  "libantimr_io.a"
  "libantimr_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/antimr_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
