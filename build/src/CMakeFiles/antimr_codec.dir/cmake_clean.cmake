file(REMOVE_RECURSE
  "CMakeFiles/antimr_codec.dir/codec/bzip2_like.cc.o"
  "CMakeFiles/antimr_codec.dir/codec/bzip2_like.cc.o.d"
  "CMakeFiles/antimr_codec.dir/codec/codec.cc.o"
  "CMakeFiles/antimr_codec.dir/codec/codec.cc.o.d"
  "CMakeFiles/antimr_codec.dir/codec/crc32.cc.o"
  "CMakeFiles/antimr_codec.dir/codec/crc32.cc.o.d"
  "CMakeFiles/antimr_codec.dir/codec/deflate_like.cc.o"
  "CMakeFiles/antimr_codec.dir/codec/deflate_like.cc.o.d"
  "CMakeFiles/antimr_codec.dir/codec/gzip.cc.o"
  "CMakeFiles/antimr_codec.dir/codec/gzip.cc.o.d"
  "CMakeFiles/antimr_codec.dir/codec/snappy_like.cc.o"
  "CMakeFiles/antimr_codec.dir/codec/snappy_like.cc.o.d"
  "libantimr_codec.a"
  "libantimr_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/antimr_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
