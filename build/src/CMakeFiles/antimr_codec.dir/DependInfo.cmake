
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codec/bzip2_like.cc" "src/CMakeFiles/antimr_codec.dir/codec/bzip2_like.cc.o" "gcc" "src/CMakeFiles/antimr_codec.dir/codec/bzip2_like.cc.o.d"
  "/root/repo/src/codec/codec.cc" "src/CMakeFiles/antimr_codec.dir/codec/codec.cc.o" "gcc" "src/CMakeFiles/antimr_codec.dir/codec/codec.cc.o.d"
  "/root/repo/src/codec/crc32.cc" "src/CMakeFiles/antimr_codec.dir/codec/crc32.cc.o" "gcc" "src/CMakeFiles/antimr_codec.dir/codec/crc32.cc.o.d"
  "/root/repo/src/codec/deflate_like.cc" "src/CMakeFiles/antimr_codec.dir/codec/deflate_like.cc.o" "gcc" "src/CMakeFiles/antimr_codec.dir/codec/deflate_like.cc.o.d"
  "/root/repo/src/codec/gzip.cc" "src/CMakeFiles/antimr_codec.dir/codec/gzip.cc.o" "gcc" "src/CMakeFiles/antimr_codec.dir/codec/gzip.cc.o.d"
  "/root/repo/src/codec/snappy_like.cc" "src/CMakeFiles/antimr_codec.dir/codec/snappy_like.cc.o" "gcc" "src/CMakeFiles/antimr_codec.dir/codec/snappy_like.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/antimr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
