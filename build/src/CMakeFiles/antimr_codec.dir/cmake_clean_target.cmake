file(REMOVE_RECURSE
  "libantimr_codec.a"
)
