# Empty compiler generated dependencies file for antimr_codec.
# This may be replaced when dependencies are built.
