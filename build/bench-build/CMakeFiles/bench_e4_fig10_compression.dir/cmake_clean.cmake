file(REMOVE_RECURSE
  "../bench/bench_e4_fig10_compression"
  "../bench/bench_e4_fig10_compression.pdb"
  "CMakeFiles/bench_e4_fig10_compression.dir/bench_e4_fig10_compression.cc.o"
  "CMakeFiles/bench_e4_fig10_compression.dir/bench_e4_fig10_compression.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_fig10_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
