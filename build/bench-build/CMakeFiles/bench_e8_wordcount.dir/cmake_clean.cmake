file(REMOVE_RECURSE
  "../bench/bench_e8_wordcount"
  "../bench/bench_e8_wordcount.pdb"
  "CMakeFiles/bench_e8_wordcount.dir/bench_e8_wordcount.cc.o"
  "CMakeFiles/bench_e8_wordcount.dir/bench_e8_wordcount.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_wordcount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
