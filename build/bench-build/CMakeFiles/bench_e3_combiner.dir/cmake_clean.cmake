file(REMOVE_RECURSE
  "../bench/bench_e3_combiner"
  "../bench/bench_e3_combiner.pdb"
  "CMakeFiles/bench_e3_combiner.dir/bench_e3_combiner.cc.o"
  "CMakeFiles/bench_e3_combiner.dir/bench_e3_combiner.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_combiner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
