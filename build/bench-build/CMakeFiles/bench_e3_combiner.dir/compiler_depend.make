# Empty compiler generated dependencies file for bench_e3_combiner.
# This may be replaced when dependencies are built.
