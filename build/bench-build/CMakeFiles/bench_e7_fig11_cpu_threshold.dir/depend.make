# Empty dependencies file for bench_e7_fig11_cpu_threshold.
# This may be replaced when dependencies are built.
