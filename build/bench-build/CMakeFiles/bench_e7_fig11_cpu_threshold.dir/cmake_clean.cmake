file(REMOVE_RECURSE
  "../bench/bench_e7_fig11_cpu_threshold"
  "../bench/bench_e7_fig11_cpu_threshold.pdb"
  "CMakeFiles/bench_e7_fig11_cpu_threshold.dir/bench_e7_fig11_cpu_threshold.cc.o"
  "CMakeFiles/bench_e7_fig11_cpu_threshold.dir/bench_e7_fig11_cpu_threshold.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_fig11_cpu_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
