# Empty compiler generated dependencies file for bench_e6_table2_breakdown.
# This may be replaced when dependencies are built.
