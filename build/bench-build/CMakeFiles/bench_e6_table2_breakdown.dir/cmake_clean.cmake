file(REMOVE_RECURSE
  "../bench/bench_e6_table2_breakdown"
  "../bench/bench_e6_table2_breakdown.pdb"
  "CMakeFiles/bench_e6_table2_breakdown.dir/bench_e6_table2_breakdown.cc.o"
  "CMakeFiles/bench_e6_table2_breakdown.dir/bench_e6_table2_breakdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_table2_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
