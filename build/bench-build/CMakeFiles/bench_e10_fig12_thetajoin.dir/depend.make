# Empty dependencies file for bench_e10_fig12_thetajoin.
# This may be replaced when dependencies are built.
