file(REMOVE_RECURSE
  "../bench/bench_e10_fig12_thetajoin"
  "../bench/bench_e10_fig12_thetajoin.pdb"
  "CMakeFiles/bench_e10_fig12_thetajoin.dir/bench_e10_fig12_thetajoin.cc.o"
  "CMakeFiles/bench_e10_fig12_thetajoin.dir/bench_e10_fig12_thetajoin.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_fig12_thetajoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
