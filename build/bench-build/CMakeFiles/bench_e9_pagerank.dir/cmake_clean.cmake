file(REMOVE_RECURSE
  "../bench/bench_e9_pagerank"
  "../bench/bench_e9_pagerank.pdb"
  "CMakeFiles/bench_e9_pagerank.dir/bench_e9_pagerank.cc.o"
  "CMakeFiles/bench_e9_pagerank.dir/bench_e9_pagerank.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_pagerank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
