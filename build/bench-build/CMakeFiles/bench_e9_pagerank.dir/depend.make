# Empty dependencies file for bench_e9_pagerank.
# This may be replaced when dependencies are built.
