file(REMOVE_RECURSE
  "../bench/bench_micro_shared"
  "../bench/bench_micro_shared.pdb"
  "CMakeFiles/bench_micro_shared.dir/bench_micro_shared.cc.o"
  "CMakeFiles/bench_micro_shared.dir/bench_micro_shared.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_shared.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
