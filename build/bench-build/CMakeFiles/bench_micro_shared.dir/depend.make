# Empty dependencies file for bench_micro_shared.
# This may be replaced when dependencies are built.
