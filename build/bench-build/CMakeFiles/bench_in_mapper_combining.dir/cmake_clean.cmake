file(REMOVE_RECURSE
  "../bench/bench_in_mapper_combining"
  "../bench/bench_in_mapper_combining.pdb"
  "CMakeFiles/bench_in_mapper_combining.dir/bench_in_mapper_combining.cc.o"
  "CMakeFiles/bench_in_mapper_combining.dir/bench_in_mapper_combining.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_in_mapper_combining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
