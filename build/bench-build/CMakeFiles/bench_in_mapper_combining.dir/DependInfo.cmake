
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_in_mapper_combining.cc" "bench-build/CMakeFiles/bench_in_mapper_combining.dir/bench_in_mapper_combining.cc.o" "gcc" "bench-build/CMakeFiles/bench_in_mapper_combining.dir/bench_in_mapper_combining.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/antimr_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/antimr_anticombine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/antimr_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/antimr_mr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/antimr_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/antimr_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/antimr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
