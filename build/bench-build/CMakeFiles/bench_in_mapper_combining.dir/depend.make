# Empty dependencies file for bench_in_mapper_combining.
# This may be replaced when dependencies are built.
