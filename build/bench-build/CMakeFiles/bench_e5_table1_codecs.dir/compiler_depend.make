# Empty compiler generated dependencies file for bench_e5_table1_codecs.
# This may be replaced when dependencies are built.
