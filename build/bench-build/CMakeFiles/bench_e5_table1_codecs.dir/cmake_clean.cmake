file(REMOVE_RECURSE
  "../bench/bench_e5_table1_codecs"
  "../bench/bench_e5_table1_codecs.pdb"
  "CMakeFiles/bench_e5_table1_codecs.dir/bench_e5_table1_codecs.cc.o"
  "CMakeFiles/bench_e5_table1_codecs.dir/bench_e5_table1_codecs.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_table1_codecs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
