# Empty compiler generated dependencies file for bench_e1_overhead.
# This may be replaced when dependencies are built.
