file(REMOVE_RECURSE
  "../bench/bench_e1_overhead"
  "../bench/bench_e1_overhead.pdb"
  "CMakeFiles/bench_e1_overhead.dir/bench_e1_overhead.cc.o"
  "CMakeFiles/bench_e1_overhead.dir/bench_e1_overhead.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
