file(REMOVE_RECURSE
  "../bench/bench_skew_analysis"
  "../bench/bench_skew_analysis.pdb"
  "CMakeFiles/bench_skew_analysis.dir/bench_skew_analysis.cc.o"
  "CMakeFiles/bench_skew_analysis.dir/bench_skew_analysis.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_skew_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
