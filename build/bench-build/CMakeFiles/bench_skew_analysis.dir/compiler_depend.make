# Empty compiler generated dependencies file for bench_skew_analysis.
# This may be replaced when dependencies are built.
