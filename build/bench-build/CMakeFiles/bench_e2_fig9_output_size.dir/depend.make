# Empty dependencies file for bench_e2_fig9_output_size.
# This may be replaced when dependencies are built.
