file(REMOVE_RECURSE
  "../bench/bench_e2_fig9_output_size"
  "../bench/bench_e2_fig9_output_size.pdb"
  "CMakeFiles/bench_e2_fig9_output_size.dir/bench_e2_fig9_output_size.cc.o"
  "CMakeFiles/bench_e2_fig9_output_size.dir/bench_e2_fig9_output_size.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_fig9_output_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
