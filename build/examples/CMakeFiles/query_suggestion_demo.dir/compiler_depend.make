# Empty compiler generated dependencies file for query_suggestion_demo.
# This may be replaced when dependencies are built.
