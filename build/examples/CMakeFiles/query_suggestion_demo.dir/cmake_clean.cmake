file(REMOVE_RECURSE
  "CMakeFiles/query_suggestion_demo.dir/query_suggestion_demo.cpp.o"
  "CMakeFiles/query_suggestion_demo.dir/query_suggestion_demo.cpp.o.d"
  "query_suggestion_demo"
  "query_suggestion_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_suggestion_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
