# Empty dependencies file for theta_join_demo.
# This may be replaced when dependencies are built.
