file(REMOVE_RECURSE
  "CMakeFiles/theta_join_demo.dir/theta_join_demo.cpp.o"
  "CMakeFiles/theta_join_demo.dir/theta_join_demo.cpp.o.d"
  "theta_join_demo"
  "theta_join_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theta_join_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
