# Empty dependencies file for scan_sharing_demo.
# This may be replaced when dependencies are built.
