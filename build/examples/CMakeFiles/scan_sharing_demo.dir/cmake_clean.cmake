file(REMOVE_RECURSE
  "CMakeFiles/scan_sharing_demo.dir/scan_sharing_demo.cpp.o"
  "CMakeFiles/scan_sharing_demo.dir/scan_sharing_demo.cpp.o.d"
  "scan_sharing_demo"
  "scan_sharing_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scan_sharing_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
