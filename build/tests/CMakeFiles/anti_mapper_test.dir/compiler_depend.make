# Empty compiler generated dependencies file for anti_mapper_test.
# This may be replaced when dependencies are built.
