file(REMOVE_RECURSE
  "CMakeFiles/anti_mapper_test.dir/anti_mapper_test.cc.o"
  "CMakeFiles/anti_mapper_test.dir/anti_mapper_test.cc.o.d"
  "anti_mapper_test"
  "anti_mapper_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anti_mapper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
