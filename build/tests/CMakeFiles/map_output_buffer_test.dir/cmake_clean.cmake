file(REMOVE_RECURSE
  "CMakeFiles/map_output_buffer_test.dir/map_output_buffer_test.cc.o"
  "CMakeFiles/map_output_buffer_test.dir/map_output_buffer_test.cc.o.d"
  "map_output_buffer_test"
  "map_output_buffer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/map_output_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
