# Empty dependencies file for map_output_buffer_test.
# This may be replaced when dependencies are built.
