# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for map_output_buffer_test.
