file(REMOVE_RECURSE
  "CMakeFiles/shared_test.dir/shared_test.cc.o"
  "CMakeFiles/shared_test.dir/shared_test.cc.o.d"
  "shared_test"
  "shared_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
