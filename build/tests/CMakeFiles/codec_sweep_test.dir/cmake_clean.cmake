file(REMOVE_RECURSE
  "CMakeFiles/codec_sweep_test.dir/codec_sweep_test.cc.o"
  "CMakeFiles/codec_sweep_test.dir/codec_sweep_test.cc.o.d"
  "codec_sweep_test"
  "codec_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codec_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
