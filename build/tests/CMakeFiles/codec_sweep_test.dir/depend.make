# Empty dependencies file for codec_sweep_test.
# This may be replaced when dependencies are built.
