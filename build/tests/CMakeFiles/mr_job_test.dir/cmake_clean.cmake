file(REMOVE_RECURSE
  "CMakeFiles/mr_job_test.dir/mr_job_test.cc.o"
  "CMakeFiles/mr_job_test.dir/mr_job_test.cc.o.d"
  "mr_job_test"
  "mr_job_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mr_job_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
