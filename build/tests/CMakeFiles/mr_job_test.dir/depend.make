# Empty dependencies file for mr_job_test.
# This may be replaced when dependencies are built.
