file(REMOVE_RECURSE
  "CMakeFiles/buffered_io_test.dir/buffered_io_test.cc.o"
  "CMakeFiles/buffered_io_test.dir/buffered_io_test.cc.o.d"
  "buffered_io_test"
  "buffered_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffered_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
