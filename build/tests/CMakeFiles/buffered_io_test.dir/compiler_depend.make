# Empty compiler generated dependencies file for buffered_io_test.
# This may be replaced when dependencies are built.
