# Empty dependencies file for job_spec_test.
# This may be replaced when dependencies are built.
