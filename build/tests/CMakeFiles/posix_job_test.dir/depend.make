# Empty dependencies file for posix_job_test.
# This may be replaced when dependencies are built.
