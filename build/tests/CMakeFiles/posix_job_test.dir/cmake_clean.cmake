file(REMOVE_RECURSE
  "CMakeFiles/posix_job_test.dir/posix_job_test.cc.o"
  "CMakeFiles/posix_job_test.dir/posix_job_test.cc.o.d"
  "posix_job_test"
  "posix_job_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/posix_job_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
