# Empty compiler generated dependencies file for query_suggestion_test.
# This may be replaced when dependencies are built.
