file(REMOVE_RECURSE
  "CMakeFiles/query_suggestion_test.dir/query_suggestion_test.cc.o"
  "CMakeFiles/query_suggestion_test.dir/query_suggestion_test.cc.o.d"
  "query_suggestion_test"
  "query_suggestion_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_suggestion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
