# Empty compiler generated dependencies file for anti_combining_test.
# This may be replaced when dependencies are built.
