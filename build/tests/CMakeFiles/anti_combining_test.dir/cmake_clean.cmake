file(REMOVE_RECURSE
  "CMakeFiles/anti_combining_test.dir/anti_combining_test.cc.o"
  "CMakeFiles/anti_combining_test.dir/anti_combining_test.cc.o.d"
  "anti_combining_test"
  "anti_combining_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anti_combining_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
