# Empty dependencies file for anti_reducer_test.
# This may be replaced when dependencies are built.
