file(REMOVE_RECURSE
  "CMakeFiles/anti_reducer_test.dir/anti_reducer_test.cc.o"
  "CMakeFiles/anti_reducer_test.dir/anti_reducer_test.cc.o.d"
  "anti_reducer_test"
  "anti_reducer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anti_reducer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
