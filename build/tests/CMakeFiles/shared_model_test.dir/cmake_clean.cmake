file(REMOVE_RECURSE
  "CMakeFiles/shared_model_test.dir/shared_model_test.cc.o"
  "CMakeFiles/shared_model_test.dir/shared_model_test.cc.o.d"
  "shared_model_test"
  "shared_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
