# Empty dependencies file for shared_model_test.
# This may be replaced when dependencies are built.
