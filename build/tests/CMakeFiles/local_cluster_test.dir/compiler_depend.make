# Empty compiler generated dependencies file for local_cluster_test.
# This may be replaced when dependencies are built.
