# Empty dependencies file for anti_combiner_test.
# This may be replaced when dependencies are built.
