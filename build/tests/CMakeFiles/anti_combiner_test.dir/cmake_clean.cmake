file(REMOVE_RECURSE
  "CMakeFiles/anti_combiner_test.dir/anti_combiner_test.cc.o"
  "CMakeFiles/anti_combiner_test.dir/anti_combiner_test.cc.o.d"
  "anti_combiner_test"
  "anti_combiner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anti_combiner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
