file(REMOVE_RECURSE
  "CMakeFiles/wordcount_test.dir/wordcount_test.cc.o"
  "CMakeFiles/wordcount_test.dir/wordcount_test.cc.o.d"
  "wordcount_test"
  "wordcount_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wordcount_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
