# Empty compiler generated dependencies file for theta_join_test.
# This may be replaced when dependencies are built.
