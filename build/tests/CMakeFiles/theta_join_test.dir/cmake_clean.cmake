file(REMOVE_RECURSE
  "CMakeFiles/theta_join_test.dir/theta_join_test.cc.o"
  "CMakeFiles/theta_join_test.dir/theta_join_test.cc.o.d"
  "theta_join_test"
  "theta_join_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theta_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
