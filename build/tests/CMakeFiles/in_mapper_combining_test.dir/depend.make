# Empty dependencies file for in_mapper_combining_test.
# This may be replaced when dependencies are built.
