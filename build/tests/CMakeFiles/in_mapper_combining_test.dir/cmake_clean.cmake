file(REMOVE_RECURSE
  "CMakeFiles/in_mapper_combining_test.dir/in_mapper_combining_test.cc.o"
  "CMakeFiles/in_mapper_combining_test.dir/in_mapper_combining_test.cc.o.d"
  "in_mapper_combining_test"
  "in_mapper_combining_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/in_mapper_combining_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
