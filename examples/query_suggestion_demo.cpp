// Query-Suggestion on a synthetic query log (the paper's Section 2 example):
// runs the Original program and the three Anti-Combining variants (EagerSH
// via T=0, LazySH-leaning via T=inf, and the 400us Adaptive-alpha), printing
// per-strategy data-transfer and CPU numbers.
//
//   $ ./build/examples/query_suggestion_demo [num_records]
#include <cstdio>
#include <cstdlib>

#include "antimr.h"
#include "datagen/qlog.h"
#include "workloads/query_suggestion.h"

using namespace antimr;  // NOLINT: example brevity

namespace {

void Report(const char* label, const JobMetrics& m) {
  std::printf("%-14s map-out %9s  shuffle %9s  disk R/W %9s/%9s  cpu %9s\n",
              label, FormatBytes(m.emitted_bytes).c_str(),
              FormatBytes(m.shuffle_bytes).c_str(),
              FormatBytes(m.disk_bytes_read).c_str(),
              FormatBytes(m.disk_bytes_written).c_str(),
              FormatNanos(m.total_cpu_nanos).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  QLogConfig qc;
  qc.num_records = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50000;
  QLogGenerator gen(qc);
  const auto splits = gen.MakeSplits(4);
  std::printf("query log: %llu records, mean query length %.1f chars\n\n",
              static_cast<unsigned long long>(qc.num_records),
              gen.MeanQueryLength());

  workloads::QuerySuggestionConfig cfg;
  cfg.scheme = workloads::QuerySuggestionConfig::Scheme::kPrefix5;
  const JobSpec original = workloads::MakeQuerySuggestionJob(cfg);

  JobResult r;
  ANTIMR_CHECK_OK(RunJob(original, splits, &r));
  Report("Original", r.metrics);

  struct Variant {
    const char* label;
    anticombine::AntiCombineOptions options;
  } variants[] = {
      {"EagerSH", anticombine::AntiCombineOptions::EagerOnly()},
      {"LazySH-max", anticombine::AntiCombineOptions::Unrestricted()},
      {"Adaptive-a", anticombine::AntiCombineOptions::Alpha()},
  };
  for (const Variant& v : variants) {
    JobResult ar;
    ANTIMR_CHECK_OK(
        RunJob(anticombine::EnableAntiCombining(original, v.options), splits,
               &ar));
    Report(v.label, ar.metrics);
  }

  std::printf("\nsample suggestions (Adaptive run):\n");
  JobResult sample;
  ANTIMR_CHECK_OK(RunJob(
      anticombine::EnableAntiCombining(
          original, anticombine::AntiCombineOptions()),
      splits, &sample));
  int shown = 0;
  for (const KV& kv : sample.FlatOutput()) {
    if (kv.key.size() == 3 && shown < 8) {
      std::printf("  '%s' -> %s\n", kv.key.c_str(), kv.value.c_str());
      ++shown;
    }
  }
  return 0;
}
