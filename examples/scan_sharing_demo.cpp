// Scan sharing / multi-query optimization (the paper's introduction names
// this as a prime Anti-Combining target): several queries share one scan of
// a data set, so the shared map operator forwards each record to every
// interested query's reducers — "a single record produced by the shared
// operator might have to be duplicated many times".
//
// Here eight queries over a synthetic cloud-report scan each aggregate a
// different attribute. The shared mapper emits the same record payload once
// per query; Anti-Combining collapses the duplication.
//
//   $ ./build/examples/scan_sharing_demo [num_records]
#include <cstdio>
#include <cstdlib>

#include "antimr.h"
#include "datagen/cloud.h"

using namespace antimr;  // NOLINT: example brevity

namespace {

// Eight logical queries share the scan; each keys the record by a
// different grouping attribute but needs the same payload — identical
// values under different keys, Anti-Combining's best case.
constexpr int kNumQueries = 8;

class SharedScanMapper : public Mapper {
 public:
  void Map(const Slice& key, const Slice& value, MapContext* ctx) override {
    (void)key;
    CloudReport report;
    if (!CloudGenerator::ParseReport(value, &report)) return;
    const int groups[] = {report.date, report.longitude,
                          report.latitude / 10, 0};
    for (int q = 0; q < kNumQueries; ++q) {
      ctx->Emit("q" + std::to_string(q) + "#" +
                    std::to_string(groups[q % 4]),
                value);
    }
  }
};

// Counts records per (query, group) cell.
class CountReducer : public Reducer {
 public:
  void Reduce(const Slice& key, ValueIterator* values,
              ReduceContext* ctx) override {
    uint64_t n = 0;
    Slice v;
    while (values->Next(&v)) ++n;
    ctx->Emit(key, std::to_string(n));
  }
};

}  // namespace

int main(int argc, char** argv) {
  CloudConfig cc;
  cc.num_records = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  CloudGenerator gen(cc);

  JobSpec spec;
  spec.name = "shared_scan";
  spec.mapper_factory = [] { return std::make_unique<SharedScanMapper>(); };
  spec.reducer_factory = [] { return std::make_unique<CountReducer>(); };
  spec.num_reduce_tasks = 4;

  JobResult original;
  ANTIMR_CHECK_OK(RunJob(spec, gen.MakeSplits(4), &original));
  JobResult anti;
  ANTIMR_CHECK_OK(RunJob(anticombine::EnableAntiCombining(
                             spec, anticombine::AntiCombineOptions()),
                         gen.MakeSplits(4), &anti));

  std::printf("%d queries sharing one scan of %llu records\n\n", kNumQueries,
              static_cast<unsigned long long>(cc.num_records));
  std::printf("%-16s %14s %14s\n", "", "Original", "Anti-Combining");
  std::printf("%-16s %14llu %14llu\n", "map records",
              static_cast<unsigned long long>(original.metrics.emitted_records),
              static_cast<unsigned long long>(anti.metrics.emitted_records));
  std::printf("%-16s %14s %14s\n", "map bytes",
              FormatBytes(original.metrics.emitted_bytes).c_str(),
              FormatBytes(anti.metrics.emitted_bytes).c_str());
  std::printf("%-16s %14s %14s  (%.1fx less data moved)\n", "shuffle",
              FormatBytes(original.metrics.shuffle_bytes).c_str(),
              FormatBytes(anti.metrics.shuffle_bytes).c_str(),
              static_cast<double>(original.metrics.shuffle_bytes) /
                  static_cast<double>(anti.metrics.shuffle_bytes));

  // Spot-check one aggregate from each run to show outputs agree.
  auto find = [](const JobResult& r, const std::string& key) -> std::string {
    for (const auto& task : r.outputs) {
      for (const KV& kv : task) {
        if (kv.key == key) return kv.value;
      }
    }
    return "?";
  };
  std::printf("\nq3#0 count: original=%s anti=%s\n",
              find(original, "q3#0").c_str(), find(anti, "q3#0").c_str());
  return 0;
}
