// Quickstart: write a MapReduce program against the antimr API, run it, then
// enable Anti-Combining with one call and compare the data-transfer metrics.
//
//   $ ./build/examples/quickstart
//
// The program is the paper's running example in miniature: count occurrences
// of every prefix of every input word.
#include <cstdio>
#include <memory>

#include "antimr.h"

namespace {

using namespace antimr;  // NOLINT: example brevity

// Map: word -> (prefix, word) for every prefix.
class PrefixMapper : public Mapper {
 public:
  void Map(const Slice& key, const Slice& value, MapContext* ctx) override {
    (void)key;
    for (size_t len = 1; len <= value.size(); ++len) {
      ctx->Emit(Slice(value.data(), len), value);
    }
  }
};

// Reduce: prefix -> number of words carrying it.
class CountReducer : public Reducer {
 public:
  void Reduce(const Slice& key, ValueIterator* values,
              ReduceContext* ctx) override {
    uint64_t n = 0;
    Slice v;
    while (values->Next(&v)) ++n;
    ctx->Emit(key, std::to_string(n));
  }
};

}  // namespace

int main() {
  // 1. Describe the job.
  JobSpec spec;
  spec.name = "prefix_count";
  spec.mapper_factory = [] { return std::make_unique<PrefixMapper>(); };
  spec.reducer_factory = [] { return std::make_unique<CountReducer>(); };
  spec.num_reduce_tasks = 4;

  // 2. Provide input splits (one map task each).
  std::vector<KV> words = {{"1", "mango"},  {"2", "manga"}, {"3", "map"},
                           {"4", "mantle"}, {"5", "maple"}, {"6", "mango"}};
  const auto splits = MakeSplits(words, 2);

  // 3. Run the original program.
  JobResult original;
  ANTIMR_CHECK_OK(RunJob(spec, splits, &original));

  // 4. Enable Anti-Combining: a purely syntactic transformation, no changes
  //    to PrefixMapper or CountReducer.
  const JobSpec transformed =
      anticombine::EnableAntiCombining(spec, anticombine::AntiCombineOptions());
  JobResult anti;
  ANTIMR_CHECK_OK(RunJob(transformed, splits, &anti));

  // 5. Same answers, less data moved.
  std::printf("prefix counts (from the Anti-Combining run):\n");
  for (const KV& kv : anti.FlatOutput()) {
    std::printf("  %-8s %s\n", kv.key.c_str(), kv.value.c_str());
  }
  std::printf("\noriginal:       %llu records, %llu bytes shuffled\n",
              static_cast<unsigned long long>(original.metrics.emitted_records),
              static_cast<unsigned long long>(original.metrics.emitted_bytes));
  std::printf("anti-combining: %llu records, %llu bytes shuffled "
              "(eager=%llu lazy=%llu)\n",
              static_cast<unsigned long long>(anti.metrics.emitted_records),
              static_cast<unsigned long long>(anti.metrics.emitted_bytes),
              static_cast<unsigned long long>(anti.metrics.eager_records),
              static_cast<unsigned long long>(anti.metrics.lazy_records));
  return 0;
}
