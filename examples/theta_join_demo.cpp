// Theta-join with 1-Bucket-Theta on synthetic cloud reports (the paper's
// Section 7.7.3): shows the algorithm's input replication and how
// Anti-Combining (which picks LazySH here) collapses it.
//
//   $ ./build/examples/theta_join_demo [num_records]
#include <cstdio>
#include <cstdlib>

#include "antimr.h"
#include "datagen/cloud.h"
#include "workloads/theta_join.h"

using namespace antimr;  // NOLINT: example brevity

int main(int argc, char** argv) {
  CloudConfig cc;
  cc.num_records = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5000;
  CloudGenerator gen(cc);
  const auto splits = gen.MakeSplits(4);

  workloads::ThetaJoinConfig cfg;
  // Memory-aware grid sizing, as in the paper's 1-Bucket-Theta setup.
  workloads::SizeGridForMemory(cc.num_records,
                               /*region_memory_records=*/cc.num_records / 4,
                               &cfg.grid_rows, &cfg.grid_cols);
  std::printf("band join over %llu cloud reports; grid %dx%d "
              "(replication ~%dx)\n\n",
              static_cast<unsigned long long>(cc.num_records), cfg.grid_rows,
              cfg.grid_cols, cfg.grid_rows + cfg.grid_cols);

  const JobSpec original = workloads::MakeThetaJoinJob(cfg);
  JobResult orig;
  ANTIMR_CHECK_OK(RunJob(original, splits, &orig));
  std::printf("Original:       map output %s (%llu records), %llu join rows\n",
              FormatBytes(orig.metrics.emitted_bytes).c_str(),
              static_cast<unsigned long long>(orig.metrics.emitted_records),
              static_cast<unsigned long long>(orig.metrics.output_records));

  JobResult anti;
  ANTIMR_CHECK_OK(RunJob(
      anticombine::EnableAntiCombining(original,
                                       anticombine::AntiCombineOptions()),
      splits, &anti));
  std::printf("Anti-Combining: map output %s (%llu records, %llu lazy), "
              "%llu join rows\n",
              FormatBytes(anti.metrics.emitted_bytes).c_str(),
              static_cast<unsigned long long>(anti.metrics.emitted_records),
              static_cast<unsigned long long>(anti.metrics.lazy_records),
              static_cast<unsigned long long>(anti.metrics.output_records));
  std::printf("reduction: %.1fx in bytes, %.1fx in records\n",
              static_cast<double>(orig.metrics.emitted_bytes) /
                  static_cast<double>(anti.metrics.emitted_bytes),
              static_cast<double>(orig.metrics.emitted_records) /
                  static_cast<double>(anti.metrics.emitted_records));
  return 0;
}
