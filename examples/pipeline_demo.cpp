// Pipeline demo: chain two MapReduce jobs — wordcount, then a framework
// sort of the counts — as ONE engine::JobPlan and run it with a single
// Executor::Run call.
//
//   $ ./build/examples/pipeline_demo
//
// Each stage carries its own knobs: the aggregation stage uses EagerSH
// (heavy value sharing across a word's occurrences) while the re-sort stage
// uses LazySH, and both stages shuffle pipelined. Because the sort stage's
// map tasks consume the wordcount stage's reduce *partitions*, sorting of
// partition p starts the instant counting of partition p finishes — the
// executor reports that cross-stage overlap.
#include <cstdio>
#include <memory>

#include "antimr.h"
#include "datagen/random_text.h"
#include "workloads/sort.h"
#include "workloads/wordcount.h"

using namespace antimr;  // NOLINT: example brevity

int main() {
  // 1. Input: generated text lines, 4 map splits.
  RandomTextConfig text;
  text.num_lines = 20000;
  text.seed = 42;

  engine::JobPlan plan;
  plan.name = "wordcount_sort";
  ANTIMR_CHECK_OK(
      plan.AddInput("lines", RandomTextGenerator(text).MakeSplits(4)));

  // 2. Stage 1: count words, EagerSH.
  workloads::WordCountConfig wc;
  wc.num_reduce_tasks = 4;
  engine::Stage count_stage;
  count_stage.name = "wordcount";
  count_stage.spec = workloads::MakeWordCountJob(wc);
  count_stage.inputs = {"lines"};
  count_stage.output = "counts";
  count_stage.options.shuffle_mode = ShuffleMode::kPipelined;
  count_stage.options.anti_combine = true;
  count_stage.options.anti_combine_options.lazy_threshold_nanos = 0;  // eager
  plan.AddStage(std::move(count_stage));

  // 3. Stage 2: re-sort the counts through the shuffle, LazySH.
  workloads::SortConfig sort;
  sort.num_reduce_tasks = 4;
  engine::Stage sort_stage;
  sort_stage.name = "sort";
  sort_stage.spec = workloads::MakeSortJob(sort);
  sort_stage.inputs = {"counts"};
  sort_stage.output = "sorted";
  sort_stage.options.shuffle_mode = ShuffleMode::kPipelined;
  sort_stage.options.anti_combine = true;
  sort_stage.options.anti_combine_options.force_lazy = true;  // lazy
  plan.AddStage(std::move(sort_stage));

  // 4. One run for the whole DAG.
  engine::Executor executor;
  engine::PlanResult result;
  ANTIMR_CHECK_OK(executor.Run(plan, &result));

  const std::vector<KV> sorted = result.FlatOutput("sorted");
  std::printf("distinct words: %zu (first: %s, last: %s)\n\n", sorted.size(),
              sorted.empty() ? "-" : sorted.front().key.c_str(),
              sorted.empty() ? "-" : sorted.back().key.c_str());

  for (const engine::StageResult& stage : result.stages) {
    std::printf("stage %-10s wall=%-10s eager=%llu lazy=%llu out=%llu\n",
                stage.name.c_str(),
                FormatNanos(stage.metrics.wall_nanos).c_str(),
                static_cast<unsigned long long>(stage.metrics.eager_records),
                static_cast<unsigned long long>(stage.metrics.lazy_records),
                static_cast<unsigned long long>(stage.metrics.output_records));
  }
  std::printf("cross-stage overlap: %s\n",
              FormatNanos(result.stage_overlap_nanos).c_str());

  // 5. The intermediate "counts" dataset was reclaimed the moment the sort
  //    stage's last map task read it.
  for (const engine::DatasetInfo& ds : result.datasets) {
    std::printf("dataset %-8s %s\n", ds.name.c_str(),
                ds.external   ? "external"
                : ds.retained ? "retained (plan output)"
                : ds.released ? "released after last consumer"
                              : "live");
  }
  return 0;
}
