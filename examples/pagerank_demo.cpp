// Five PageRank iterations on a synthetic power-law web graph (the paper's
// Section 7.7.2): compares Original vs Anti-Combining across all iterations
// and prints the top-ranked pages.
//
//   $ ./build/examples/pagerank_demo [num_nodes]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "antimr.h"
#include "datagen/graph.h"
#include "workloads/pagerank.h"

using namespace antimr;  // NOLINT: example brevity

int main(int argc, char** argv) {
  GraphConfig gc;
  gc.num_nodes = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3000;
  const auto graph = GraphGenerator(gc).Generate();
  std::printf("graph: %llu nodes, power-law out-degree (mean %.0f)\n\n",
              static_cast<unsigned long long>(gc.num_nodes),
              gc.mean_out_degree);

  workloads::PageRankConfig cfg;
  cfg.num_nodes = gc.num_nodes;
  const int kIterations = 5;

  workloads::PageRankRunResult original;
  ANTIMR_CHECK_OK(workloads::RunPageRank(cfg, graph, kIterations, nullptr,
                                         /*num_map_tasks=*/4, &original));
  anticombine::AntiCombineOptions options;
  workloads::PageRankRunResult anti;
  ANTIMR_CHECK_OK(workloads::RunPageRank(cfg, graph, kIterations, &options,
                                         /*num_map_tasks=*/4, &anti));

  std::printf("%d iterations, totals:\n", kIterations);
  std::printf("  Original:       shuffle %9s  disk R/W %9s/%9s  cpu %9s\n",
              FormatBytes(original.total.shuffle_bytes).c_str(),
              FormatBytes(original.total.disk_bytes_read).c_str(),
              FormatBytes(original.total.disk_bytes_written).c_str(),
              FormatNanos(original.total.total_cpu_nanos).c_str());
  std::printf("  Anti-Combining: shuffle %9s  disk R/W %9s/%9s  cpu %9s\n\n",
              FormatBytes(anti.total.shuffle_bytes).c_str(),
              FormatBytes(anti.total.disk_bytes_read).c_str(),
              FormatBytes(anti.total.disk_bytes_written).c_str(),
              FormatNanos(anti.total.total_cpu_nanos).c_str());

  auto ranks = anti.final_ranks;
  std::sort(ranks.begin(), ranks.end(), [](const KV& a, const KV& b) {
    return std::strtod(a.value.c_str(), nullptr) >
           std::strtod(b.value.c_str(), nullptr);
  });
  std::printf("top pages by rank:\n");
  for (size_t i = 0; i < 5 && i < ranks.size(); ++i) {
    std::printf("  %s  rank=%.3e\n", ranks[i].key.c_str(),
                std::strtod(ranks[i].value.c_str(), nullptr));
  }
  return 0;
}
