// Drivers that wire the skew defenses (mr/skew.h) into both execution
// engines. The sampling pass runs on the driver; what it learns ships to
// the tasks two ways:
//
//  - Local plans: MakeSkewPlan builds a JobPlan — one range-partitioned
//    stage, or the split1 -> merge fix-up chain when hot keys were found —
//    and the Executor/planner run it like any other DAG.
//  - Distributed jobs: RunDistributedSkewJob encodes the model into
//    net::JobParams (range_pivots / skew_stage / hot_keys / hot_fanout);
//    workers reconstruct the per-stage JobSpec through the job registry
//    (workloads::ApplySkewParams), so LazySH re-execution on reducers sees
//    the identical salted pipeline.
//
// Either way the final output is byte-identical (as a key/value multiset per
// partition contract) to the unsplit run of the same job.
#ifndef ANTIMR_ENGINE_SKEW_RUNNER_H_
#define ANTIMR_ENGINE_SKEW_RUNNER_H_

#include <string>
#include <vector>

#include "engine/coordinator.h"
#include "engine/job_plan.h"
#include "mr/skew.h"

namespace antimr {
namespace engine {

struct SkewPlanOptions {
  SkewSampleOptions sample;
  /// Salt superfrequent keys and add the merge fix-up stage when the sample
  /// finds any. Off = plain range partitioning from the sampled pivots.
  bool hot_key_split = true;
  /// Applied to every generated stage (shuffle mode, anti-combining).
  StageOptions stage_options;
};

/// Sample `splits` with `spec`'s own mapper and build the plan. On return
/// *output_dataset names the sink dataset and, when `model_out` is set, it
/// holds what the sampling pass learned (pivots, hot keys).
Status MakeSkewPlan(const JobSpec& spec, std::vector<InputSplit> splits,
                    const SkewPlanOptions& options, JobPlan* plan,
                    std::string* output_dataset,
                    SkewModel* model_out = nullptr);

/// Distributed skew run: sampling + one or two RunDistributedJob rounds.
struct DistSkewResult {
  /// Final outputs + rolled-up metrics. When the fix-up chain ran,
  /// reduce_shuffle_bytes / reduce_input_records are stage 1's — the heavy
  /// shuffle whose balance the range pivots and hot-key salting control
  /// (stage 2 only re-shuffles one partial record per key per partition).
  DistJobResult job;
  SkewModel model;
  bool split = false;  ///< the split1 -> merge chain ran
};

/// `options.job_name`/`params`/`splits` describe the base job exactly as for
/// RunDistributedJob; `spec` must be the same job built locally (it drives
/// the sampling pass). Blocks until the final stage completes.
Status RunDistributedSkewJob(Coordinator* coord, const DistJobOptions& options,
                             const JobSpec& spec,
                             const SkewSampleOptions& sample,
                             bool hot_key_split, DistSkewResult* out);

}  // namespace engine
}  // namespace antimr

#endif  // ANTIMR_ENGINE_SKEW_RUNNER_H_
