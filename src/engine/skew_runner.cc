#include "engine/skew_runner.h"

#include <memory>
#include <utility>

namespace antimr {
namespace engine {

namespace {

// Set (replacing, not duplicating) one builder param.
void SetParam(net::JobParams* params, const std::string& key,
              std::string value) {
  for (auto& kv : *params) {
    if (kv.first == key) {
      kv.second = std::move(value);
      return;
    }
  }
  params->emplace_back(key, std::move(value));
}

}  // namespace

Status MakeSkewPlan(const JobSpec& spec, std::vector<InputSplit> splits,
                    const SkewPlanOptions& options, JobPlan* plan,
                    std::string* output_dataset, SkewModel* model_out) {
  auto model = std::make_shared<SkewModel>();
  ANTIMR_RETURN_NOT_OK(
      BuildSkewModel(spec, splits, options.sample, model.get()));
  if (model_out != nullptr) *model_out = *model;

  plan->name = spec.name + "_skew";
  const std::string input = spec.name + "_in";
  const std::string output = spec.name + "_out";
  ANTIMR_RETURN_NOT_OK(plan->AddInput(input, std::move(splits)));

  if (!options.hot_key_split || !model->HasHotKeys()) {
    Stage stage;
    stage.name = spec.name + "_range";
    stage.spec = spec;
    stage.spec.partitioner = std::make_shared<RangePartitioner>(model->pivots);
    stage.inputs = {input};
    stage.output = output;
    stage.options = options.stage_options;
    plan->AddStage(std::move(stage));
    *output_dataset = output;
    return Status::OK();
  }

  const std::string partials = spec.name + "_partials";
  Stage split1;
  split1.name = spec.name + "_split1";
  ANTIMR_RETURN_NOT_OK(MakeSplitStage1Spec(spec, model, &split1.spec));
  split1.inputs = {input};
  split1.output = partials;
  split1.options = options.stage_options;
  plan->AddStage(std::move(split1));

  Stage merge;
  merge.name = spec.name + "_merge";
  ANTIMR_RETURN_NOT_OK(MakeSplitStage2Spec(spec, model, &merge.spec));
  merge.inputs = {partials};
  merge.output = output;
  merge.options = options.stage_options;
  plan->AddStage(std::move(merge));
  *output_dataset = output;
  return Status::OK();
}

Status RunDistributedSkewJob(Coordinator* coord, const DistJobOptions& options,
                             const JobSpec& spec,
                             const SkewSampleOptions& sample,
                             bool hot_key_split, DistSkewResult* out) {
  // Sample on the driver, over the same records the maps will see.
  std::vector<InputSplit> sample_splits;
  sample_splits.reserve(options.splits.size());
  for (const auto& records : options.splits) {
    sample_splits.push_back(MakeSplit(records));
  }
  ANTIMR_RETURN_NOT_OK(
      BuildSkewModel(spec, sample_splits, sample, &out->model));
  const SkewModel& model = out->model;
  const std::string scope =
      options.job_id.empty() ? options.job_name : options.job_id;

  if (!hot_key_split || !model.HasHotKeys()) {
    DistJobOptions ranged = options;
    SetParam(&ranged.params, "range_pivots", EncodeKeyList(model.pivots));
    return RunDistributedJob(coord, ranged, &out->job);
  }

  out->split = true;
  DistJobOptions stage1 = options;
  stage1.job_id = scope + "_s1";
  // Stage-1 reduce outputs are stage 2's map input; they must round-trip
  // through the driver regardless of what the caller wants of the final
  // output.
  stage1.collect_outputs = true;
  SetParam(&stage1.params, "skew_stage", "split1");
  SetParam(&stage1.params, "range_pivots", EncodeKeyList(model.salted_pivots));
  SetParam(&stage1.params, "hot_keys", EncodeKeyList(model.hot_keys));
  SetParam(&stage1.params, "hot_fanout", std::to_string(model.hot_fanout));
  DistJobResult partials;
  ANTIMR_RETURN_NOT_OK(RunDistributedJob(coord, stage1, &partials));

  DistJobOptions stage2 = options;
  stage2.job_id = scope + "_s2";
  stage2.splits = std::move(partials.outputs);
  SetParam(&stage2.params, "skew_stage", "merge");
  SetParam(&stage2.params, "range_pivots", EncodeKeyList(model.pivots));
  ANTIMR_RETURN_NOT_OK(RunDistributedJob(coord, stage2, &out->job));

  out->job.metrics.Add(partials.metrics);
  out->job.map_reruns += partials.map_reruns;
  out->job.spec_backups += partials.spec_backups;
  out->job.spec_backup_wins += partials.spec_backup_wins;
  out->job.spec_cancels += partials.spec_cancels;
  // The load-spread signal is stage 1's shuffle — the one the salting
  // balances; stage 2 moves a record per key per stage-1 partition.
  out->job.reduce_shuffle_bytes = std::move(partials.reduce_shuffle_bytes);
  out->job.reduce_input_records = std::move(partials.reduce_input_records);
  return Status::OK();
}

}  // namespace engine
}  // namespace antimr
