// The planner lowers a logical JobPlan into one dependency-aware TaskGraph.
// Every stage contributes map tasks, (pipelined-mode) fetch tasks, reduce
// tasks, and a segment-cleanup task; cross-stage edges connect a producer
// stage's reduce task for partition p to the consumer stage's map task over
// that partition. There is no barrier between stages: a downstream map runs
// the instant the single partition it reads is published, so stage N+1
// overlaps the tail of stage N (cross-stage pipelining), exactly as fetch
// tasks overlap the map wave inside one stage.
#ifndef ANTIMR_ENGINE_PLANNER_H_
#define ANTIMR_ENGINE_PLANNER_H_

#include <atomic>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "engine/dataset_catalog.h"
#include "engine/job_plan.h"
#include "mr/local_cluster.h"
#include "mr/map_task.h"
#include "mr/reduce_task.h"
#include "net/shuffle_service.h"

namespace antimr {
namespace engine {

/// Resources and knobs the lowered tasks run against. Owned by the
/// Executor; the planner only borrows them.
struct PlannerContext {
  const JobPlan* plan = nullptr;
  DatasetCatalog* catalog = nullptr;
  Env* task_env = nullptr;     ///< storage as tasks see it (maybe throttled)
  Env* cleanup_env = nullptr;  ///< unthrottled storage for file deletion
  TaskPool* fetch_pool = nullptr;  ///< dedicated pool for pipelined fetches
  /// Shuffle data plane: segments are pulled from `shuffle_addr` (the
  /// Executor's SegmentServer over task_env) through this client, so every
  /// shuffled byte crosses the transport framing layer — loopback in
  /// single-process runs, TCP in distributed ones. Null falls back to the
  /// pre-transport direct-Env path (unit tests lowering plans by hand).
  net::ShuffleClient* shuffle = nullptr;
  std::string shuffle_addr;
  size_t readahead_blocks = 0;
  double network_mb_per_s = 0;
  bool collect_outputs = true;        ///< retain sink datasets in the catalog
  bool cleanup_intermediates = true;  ///< delete segment files per stage
  std::string run_id;
  /// Per-run overrides of each stage spec's storage-format knobs (from
  /// ExecutorOptions); applied to run_spec after the Anti-Combining
  /// transform, so they never change what the transform saw.
  std::optional<RecordFormat> record_format;
  std::optional<size_t> chunk_block_bytes;
  std::optional<CodecType> chunk_codec;
};

/// \brief Physical execution state of one stage, populated by its tasks.
///
/// Held in a deque by the Executor (atomics make it immovable); task
/// lambdas capture pointers into it, so it must not move while the graph
/// runs.
struct StageExec {
  int stage_index = 0;
  JobSpec run_spec;  ///< stage spec after the Anti-Combining transform
  std::string job_id;
  std::string trace_label;  ///< stage name used in span names
  std::string output_dataset;
  bool publish_output = false;  ///< reduce tasks publish to the catalog
  bool collect_output = false;  ///< reduce tasks materialize their output

  size_t num_maps = 0;
  std::vector<MapTaskResult> map_results;
  std::vector<uint64_t> map_cpu;
  std::vector<ReduceTaskResult> reduce_results;
  std::vector<uint64_t> reduce_cpu;
  /// fetched[p][i]: map i's segment for partition p (pipelined mode).
  std::vector<std::vector<FetchedSegment>> fetched;
  std::vector<std::atomic<uint64_t>> fetch_cpu;  ///< per reduce partition

  std::atomic<size_t> maps_remaining{0};
  std::atomic<uint64_t> overlapped_fetches{0};
  /// Stage activity span (NowNanos timestamps), for the per-stage wall
  /// clock and the cross-stage overlap metric.
  std::atomic<uint64_t> first_start{~uint64_t{0}};
  std::atomic<uint64_t> last_end{0};

  /// Graph ids of this stage's reduce tasks, one per partition —
  /// the cross-stage dependency anchors for consumer stages.
  std::vector<int> reduce_task_ids;
};

/// Lower `ctx.plan` into `graph`, appending one StageExec per stage to
/// `stages` (indexed by stage, not topological position). Tasks may start
/// running while later stages are still being lowered; dataset consumer
/// counts are registered up front so that cannot release a dataset early.
/// Task lambdas keep references to `ctx`, `graph`, and `stages` — all three
/// must outlive the graph run (the Executor waits before tearing them down).
Status LowerPlan(const PlannerContext& ctx, TaskGraph* graph,
                 std::deque<StageExec>* stages);

}  // namespace engine
}  // namespace antimr

#endif  // ANTIMR_ENGINE_PLANNER_H_
