#include "engine/job_registry.h"

#include <cstdlib>
#include <mutex>

namespace antimr {
namespace engine {

namespace {

struct Registry {
  std::mutex mu;
  std::map<std::string, JobBuilder> builders;
};

Registry& GlobalRegistry() {
  static Registry* r = new Registry();
  return *r;
}

}  // namespace

void RegisterJobBuilder(const std::string& name, JobBuilder builder) {
  Registry& r = GlobalRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.builders[name] = std::move(builder);
}

Status BuildRegisteredJob(const std::string& name, const net::JobParams& params,
                          JobSpec* spec) {
  JobBuilder builder;
  {
    Registry& r = GlobalRegistry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.builders.find(name);
    if (it == r.builders.end()) {
      return Status::NotFound("no registered job builder: " + name);
    }
    builder = it->second;
  }
  std::map<std::string, std::string> map;
  for (const auto& [key, value] : params) map[key] = value;
  *spec = JobSpec();
  ANTIMR_RETURN_NOT_OK(builder(map, spec));
  return spec->Validate();
}

std::vector<std::string> RegisteredJobNames() {
  Registry& r = GlobalRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<std::string> names;
  names.reserve(r.builders.size());
  for (const auto& [name, builder] : r.builders) names.push_back(name);
  return names;
}

Status ParamInt(const std::map<std::string, std::string>& params,
                const std::string& key, int def, int* out) {
  auto it = params.find(key);
  if (it == params.end()) {
    *out = def;
    return Status::OK();
  }
  char* end = nullptr;
  const long v = std::strtol(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("bad int param " + key + "=" + it->second);
  }
  *out = static_cast<int>(v);
  return Status::OK();
}

Status ParamUint64(const std::map<std::string, std::string>& params,
                   const std::string& key, uint64_t def, uint64_t* out) {
  auto it = params.find(key);
  if (it == params.end()) {
    *out = def;
    return Status::OK();
  }
  char* end = nullptr;
  const unsigned long long v = std::strtoull(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("bad uint param " + key + "=" + it->second);
  }
  *out = static_cast<uint64_t>(v);
  return Status::OK();
}

Status ParamBool(const std::map<std::string, std::string>& params,
                 const std::string& key, bool def, bool* out) {
  auto it = params.find(key);
  if (it == params.end()) {
    *out = def;
    return Status::OK();
  }
  const std::string& v = it->second;
  if (v == "1" || v == "true") {
    *out = true;
  } else if (v == "0" || v == "false") {
    *out = false;
  } else {
    return Status::InvalidArgument("bad bool param " + key + "=" + v);
  }
  return Status::OK();
}

Status ParamCodec(const std::map<std::string, std::string>& params,
                  const std::string& key, CodecType def, CodecType* out) {
  auto it = params.find(key);
  if (it == params.end()) {
    *out = def;
    return Status::OK();
  }
  const std::string& v = it->second;
  if (v == "none") {
    *out = CodecType::kNone;
  } else if (v == "snappy") {
    *out = CodecType::kSnappyLike;
  } else if (v == "deflate") {
    *out = CodecType::kDeflateLike;
  } else if (v == "gzip") {
    *out = CodecType::kGzip;
  } else if (v == "bzip2") {
    *out = CodecType::kBzip2Like;
  } else {
    return Status::InvalidArgument("bad codec param " + key + "=" + v);
  }
  return Status::OK();
}

}  // namespace engine
}  // namespace antimr
