#include "engine/dataset_catalog.h"

#include <cstdlib>
#include <utility>

#include "common/logging.h"
#include "obs/trace.h"

namespace antimr {
namespace engine {

DatasetCatalog::Dataset* DatasetCatalog::Find(const std::string& name) {
  auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    // Always-on check (not assert): a planner bug reaching here in an
    // NDEBUG build would otherwise dereference end() — silent UB.
    ANTIMR_LOG(kError) << "dataset '" << name
                       << "' is not registered in the catalog";
    std::abort();
  }
  return &it->second;
}

void DatasetCatalog::RegisterExternal(const std::string& name,
                                      const std::vector<InputSplit>* splits) {
  std::lock_guard<std::mutex> lock(mu_);
  Dataset& ds = datasets_[name];
  ds.info.name = name;
  ds.info.external = true;
  ds.external_splits = splits;
}

void DatasetCatalog::RegisterIntermediate(const std::string& name,
                                          int producer_stage,
                                          int num_partitions, bool retained) {
  std::lock_guard<std::mutex> lock(mu_);
  Dataset& ds = datasets_[name];
  ds.info.name = name;
  ds.info.external = false;
  ds.info.producer_stage = producer_stage;
  ds.info.num_partitions = num_partitions;
  ds.info.retained = retained;
  ds.partitions.resize(static_cast<size_t>(num_partitions));
}

void DatasetCatalog::SetPendingConsumers(const std::string& name, int count) {
  std::lock_guard<std::mutex> lock(mu_);
  Find(name)->pending_consumers = count;
}

void DatasetCatalog::Publish(const std::string& name, int partition,
                             std::vector<KV> records) {
  std::lock_guard<std::mutex> lock(mu_);
  Dataset* ds = Find(name);
  // Re-publish from a retried reduce replaces the slot; back out the old
  // slot's contribution first so bytes/records never double-count.
  auto& slot = ds->partitions[static_cast<size_t>(partition)];
  if (slot != nullptr) {
    for (const KV& kv : *slot) {
      ds->info.bytes -= kv.key.size() + kv.value.size();
    }
    ds->info.records -= slot->size();
  }
  for (const KV& kv : records) {
    ds->info.bytes += kv.key.size() + kv.value.size();
  }
  ds->info.records += records.size();
  slot = std::make_shared<std::vector<KV>>(std::move(records));
}

InputSplit DatasetCatalog::PartitionSplit(const std::string& name,
                                          int partition) {
  InputSplit split;
  split.open = [this, name, partition]() -> std::unique_ptr<RecordSource> {
    std::shared_ptr<std::vector<KV>> part;
    {
      std::lock_guard<std::mutex> lock(mu_);
      part = Find(name)->partitions[static_cast<size_t>(partition)];
    }
    // A reduce task that produced no records still publishes; a null slot
    // means the producer was skipped after a failure — read as empty.
    if (part == nullptr) part = std::make_shared<std::vector<KV>>();
    return std::make_unique<VectorSource>(std::move(part));
  };
  return split;
}

void DatasetCatalog::ConsumerDone(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Dataset* ds = Find(name);
  if (--ds->pending_consumers > 0 || ds->info.external) return;
  if (!ds->info.retained) {
    // Last consumer finished: reclaim the materialized partitions now.
    for (auto& part : ds->partitions) part.reset();
    ds->info.released = true;
    ANTIMR_TRACE_INSTANT("engine", "dataset_gc",
                         obs::TraceArgs()
                             .Add("dataset", name)
                             .Add("bytes", ds->info.bytes));
  }
}

void DatasetCatalog::ReleaseAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, ds] : datasets_) {
    if (ds.info.external || ds.info.retained || ds.info.released) continue;
    for (auto& part : ds.partitions) part.reset();
    ds.pending_consumers = 0;
    ds.info.released = true;
    ANTIMR_TRACE_INSTANT("engine", "dataset_gc",
                         obs::TraceArgs()
                             .Add("dataset", name)
                             .Add("bytes", ds.info.bytes)
                             .Add("forced", 1));
  }
}

std::vector<std::vector<KV>> DatasetCatalog::TakePartitions(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Dataset* ds = Find(name);
  std::vector<std::vector<KV>> out;
  out.reserve(ds->partitions.size());
  for (auto& part : ds->partitions) {
    if (part == nullptr) {
      out.emplace_back();
    } else if (part.use_count() == 1) {
      out.push_back(std::move(*part));
    } else {
      out.push_back(*part);  // a reader still holds it: copy
    }
    part.reset();
  }
  return out;
}

std::vector<DatasetInfo> DatasetCatalog::Describe() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<DatasetInfo> out;
  out.reserve(datasets_.size());
  for (const auto& [name, ds] : datasets_) out.push_back(ds.info);
  return out;
}

}  // namespace engine
}  // namespace antimr
