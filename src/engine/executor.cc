#include "engine/executor.h"

#include <atomic>
#include <set>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "engine/planner.h"
#include "io/throttled_env.h"
#include "mr/reduce_task.h"
#include "net/shuffle_service.h"
#include "obs/trace.h"

namespace antimr {
namespace engine {

const std::vector<std::vector<KV>>* PlanResult::Output(
    const std::string& name) const {
  auto it = outputs.find(name);
  return it == outputs.end() ? nullptr : &it->second;
}

std::vector<KV> PlanResult::FlatOutput(const std::string& name) const {
  std::vector<KV> flat;
  const auto* partitions = Output(name);
  if (partitions == nullptr) return flat;
  for (const auto& part : *partitions) {
    flat.insert(flat.end(), part.begin(), part.end());
  }
  return flat;
}

namespace {
std::string UniquePlanId(const std::string& name) {
  static std::atomic<uint64_t> counter{0};
  return "plan_" + name + "_" +
         std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
}
}  // namespace

Executor::Executor(const ExecutorOptions& options)
    : options_(options), pool_(options.num_workers) {}

Status Executor::Run(const JobPlan& plan, PlanResult* result) {
  *result = PlanResult();
  ANTIMR_RETURN_NOT_OK(plan.Validate());
  ANTIMR_TRACE_SPAN_DYN("engine", "plan:" + plan.name);
  ANTIMR_LOG(kInfo) << "plan " << plan.name << ": " << plan.stages().size()
                    << " stage(s), " << pool_.num_workers() << " workers";
  const uint64_t wall_start = NowNanos();

  std::unique_ptr<Env> owned_env;
  Env* env = options_.env;
  IoStats io_before;
  if (env == nullptr) {
    owned_env = NewMemEnv();
    env = owned_env.get();
  } else {
    io_before = env->stats();
  }
  // Simulated local-disk bandwidth: tasks see the throttled wrapper; the
  // underlying env still owns the bytes and the counters. Cleanup bypasses
  // the throttle (deletions are metadata ops).
  std::unique_ptr<Env> throttled_env;
  Env* task_env = env;
  if (options_.hardware.disk_mb_per_s > 0) {
    throttled_env = NewThrottledEnv(env, options_.hardware.disk_mb_per_s);
    task_env = throttled_env.get();
  }

  // Shuffle data plane: a per-run SegmentServer exports the segments tasks
  // write to task_env (so the disk throttle still applies on the serving
  // side) and every reduce-side fetch pulls them through a ShuffleClient
  // over the transport — loopback by default, or whatever the caller
  // injected (e.g. TCP for single-process wire benchmarks). The network
  // throttle is paid per fetched chunk in the client, replacing the old
  // reader-side ThrottledEnv simulation. Declared before the TaskGraph so
  // they outlive every task.
  std::unique_ptr<net::Transport> owned_transport;
  net::Transport* transport = options_.transport;
  if (transport == nullptr) {
    owned_transport = net::NewLoopbackTransport();
    transport = owned_transport.get();
  }
  net::SegmentServer shuffle_server(transport, task_env);
  ANTIMR_RETURN_NOT_OK(shuffle_server.Start(""));
  net::ShuffleClient shuffle_client(transport,
                                    options_.hardware.network_mb_per_s);

  bool any_pipelined = false;
  for (const Stage& stage : plan.stages()) {
    if (stage.options.shuffle_mode == ShuffleMode::kPipelined) {
      any_pipelined = true;
      break;
    }
  }
  if (any_pipelined && fetch_pool_ == nullptr) {
    fetch_pool_ = std::make_unique<TaskPool>(options_.fetch_threads > 0
                                                 ? options_.fetch_threads
                                                 : pool_.num_workers(),
                                             "fetch");
  }

  DatasetCatalog catalog;
  std::deque<StageExec> stages;
  RetryPolicy retry;
  retry.max_attempts = std::max(1, options_.max_task_attempts);
  retry.backoff_nanos = options_.retry_backoff_nanos;
  TaskGraph graph(&pool_, retry);

  PlannerContext ctx;
  ctx.plan = &plan;
  ctx.catalog = &catalog;
  ctx.task_env = task_env;
  ctx.cleanup_env = env;
  ctx.fetch_pool = fetch_pool_.get();
  ctx.shuffle = &shuffle_client;
  ctx.shuffle_addr = shuffle_server.addr();
  ctx.readahead_blocks = options_.readahead_blocks > 0
                             ? options_.readahead_blocks
                             : kShuffleReadaheadBlocks;
  ctx.network_mb_per_s = options_.hardware.network_mb_per_s;
  ctx.collect_outputs = options_.collect_outputs;
  ctx.cleanup_intermediates = options_.cleanup_intermediates;
  ctx.run_id = options_.run_id.empty() ? UniquePlanId(plan.name)
                                       : options_.run_id;
  ctx.record_format = options_.record_format;
  ctx.chunk_block_bytes = options_.chunk_block_bytes;
  ctx.chunk_codec = options_.chunk_codec;

  const Status lowered = LowerPlan(ctx, &graph, &stages);
  // Tasks added before a lowering error may already be running; always
  // drain the graph before touching (or destroying) the state they use.
  const Status run_status = graph.Wait();
  // On a failure path, consumer tasks that were skipped never reached their
  // ConsumerDone calls, so intermediates would sit unreleased. Every task is
  // terminal once Wait returns; reclaim whatever is still held so a failed
  // plan cannot leak dataset memory (sinks stay retained for TakePartitions).
  catalog.ReleaseAll();
  if (!lowered.ok()) return lowered;

  // ---- Aggregate: per-stage roll-ups, then the plan total ------------------
  result->stages.resize(plan.stages().size());
  for (size_t i = 0; i < plan.stages().size(); ++i) {
    const Stage& stage = plan.stages()[i];
    const StageExec& st = stages[i];
    StageResult& sr = result->stages[i];
    sr.name = stage.name.empty() ? stage.spec.name : stage.name;
    sr.output = stage.output;
    for (size_t m = 0; m < st.num_maps; ++m) {
      sr.metrics.Add(st.map_results[m].metrics);
      sr.metrics.total_cpu_nanos += st.map_cpu[m];
      if (options_.collect_task_metrics) {
        sr.tasks.push_back({/*is_map=*/true, static_cast<int>(m),
                            st.map_cpu[m], st.map_results[m].metrics});
      }
    }
    for (size_t p = 0; p < st.reduce_results.size(); ++p) {
      sr.metrics.Add(st.reduce_results[p].metrics);
      sr.metrics.total_cpu_nanos += st.reduce_cpu[p];
      if (options_.collect_task_metrics) {
        sr.tasks.push_back({/*is_map=*/false, static_cast<int>(p),
                            st.reduce_cpu[p], st.reduce_results[p].metrics});
      }
    }
    sr.metrics.shuffle_overlapped_fetches =
        st.overlapped_fetches.load(std::memory_order_relaxed);
    const uint64_t first = st.first_start.load(std::memory_order_relaxed);
    const uint64_t last = st.last_end.load(std::memory_order_relaxed);
    if (last > 0 && first != ~uint64_t{0}) {
      sr.first_start_nanos = first;
      sr.last_end_nanos = last;
      sr.metrics.wall_nanos = last - first;
      // One async track per stage: the stage's activity span, emitted
      // post-run with the timestamps the tasks stamped. Renders as a lane
      // above the worker threads showing how stages overlap.
      if (obs::kTraceCompiled && obs::TraceEnabled()) {
        static std::atomic<uint64_t> track_counter{0};
        const uint64_t track_id =
            track_counter.fetch_add(1, std::memory_order_relaxed) + 1;
        const std::string track_name =
            "stage:" + std::to_string(st.stage_index) + ":" + sr.name;
        obs::Tracer::Global().AsyncBegin("stage", track_name, track_id, first);
        obs::Tracer::Global().AsyncEnd("stage", track_name, track_id, last);
      }
    }
    result->metrics.Add(sr.metrics);
  }

  // Cross-stage pipelining metric: overlap of producer/consumer activity
  // spans, summed over distinct dataset edges.
  std::set<std::pair<int, int>> edges;
  for (size_t i = 0; i < plan.stages().size(); ++i) {
    for (const std::string& input : plan.stages()[i].inputs) {
      const int producer = plan.ProducerOf(input);
      if (producer >= 0) edges.insert({producer, static_cast<int>(i)});
    }
  }
  for (const auto& [producer, consumer] : edges) {
    const StageResult& a = result->stages[static_cast<size_t>(producer)];
    const StageResult& b = result->stages[static_cast<size_t>(consumer)];
    if (a.last_end_nanos == 0 || b.last_end_nanos == 0) continue;
    const uint64_t lo = std::max(a.first_start_nanos, b.first_start_nanos);
    const uint64_t hi = std::min(a.last_end_nanos, b.last_end_nanos);
    if (hi > lo) result->stage_overlap_nanos += hi - lo;
  }

  if (options_.collect_outputs) {
    for (size_t i = 0; i < plan.stages().size(); ++i) {
      if (!plan.IsSink(static_cast<int>(i))) continue;
      const std::string& name = plan.stages()[i].output;
      result->outputs[name] = catalog.TakePartitions(name);
    }
  }
  result->datasets = catalog.Describe();

  const IoStats io_after = env->stats();
  result->metrics.disk_bytes_read = io_after.bytes_read - io_before.bytes_read;
  result->metrics.disk_bytes_written =
      io_after.bytes_written - io_before.bytes_written;
  result->metrics.wall_nanos = NowNanos() - wall_start;
  ANTIMR_LOG(kInfo) << "plan " << plan.name << ": "
                    << (run_status.ok() ? "ok" : run_status.ToString())
                    << " in " << FormatNanos(result->metrics.wall_nanos);
  return run_status;
}

}  // namespace engine
}  // namespace antimr
