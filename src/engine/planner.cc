#include "engine/planner.h"

#include <utility>

#include "anticombine/transform.h"
#include "common/stopwatch.h"
#include "obs/trace.h"

namespace antimr {
namespace engine {

namespace {

void StampMin(std::atomic<uint64_t>* slot, uint64_t value) {
  uint64_t seen = slot->load(std::memory_order_relaxed);
  while (value < seen &&
         !slot->compare_exchange_weak(seen, value,
                                      std::memory_order_relaxed)) {
  }
}

void StampMax(std::atomic<uint64_t>* slot, uint64_t value) {
  uint64_t seen = slot->load(std::memory_order_relaxed);
  while (value > seen &&
         !slot->compare_exchange_weak(seen, value,
                                      std::memory_order_relaxed)) {
  }
}

/// One map task's input: its split, the graph task it must wait for
/// (the producing reduce task; -1 for external splits), and the dataset it
/// consumes (for the catalog's refcount).
struct MapInput {
  InputSplit split;
  int dep = -1;
  const std::string* dataset = nullptr;
};

/// Shared tail of both shuffle models' reduce tasks: run the reduce, bill
/// CPU (plus any fetch CPU in pipelined mode), publish the partition to the
/// catalog, and stamp the stage's activity span.
Status RunStageReduce(const PlannerContext& ctx, StageExec* st, int p,
                      ReduceTaskInputs& inputs) {
  StampMin(&st->first_start, NowNanos());
  const uint64_t cpu_start = ThreadCpuNanos();
  Status status =
      RunReduceTask(st->run_spec, p, inputs, ctx.task_env, st->collect_output,
                    &st->reduce_results[static_cast<size_t>(p)]);
  uint64_t cpu = ThreadCpuNanos() - cpu_start;
  if (!st->fetch_cpu.empty()) {
    cpu += st->fetch_cpu[static_cast<size_t>(p)].load(
        std::memory_order_relaxed);
  }
  st->reduce_cpu[static_cast<size_t>(p)] = cpu;
  if (status.ok() && st->publish_output) {
    ctx.catalog->Publish(
        st->output_dataset, p,
        std::move(st->reduce_results[static_cast<size_t>(p)].output));
  }
  StampMax(&st->last_end, NowNanos());
  return status;
}

}  // namespace

Status LowerPlan(const PlannerContext& ctx, TaskGraph* graph,
                 std::deque<StageExec>* stages) {
  const JobPlan& plan = *ctx.plan;
  std::vector<int> topo;
  ANTIMR_RETURN_NOT_OK(plan.TopologicalOrder(&topo));

  // ---- Register every dataset and its full consumer count up front -------
  // Tasks start running the moment they are added below; a consumer count
  // registered late could hit zero (and trigger release) while a
  // not-yet-lowered stage still needs the data.
  for (const auto& [name, splits] : plan.external_inputs()) {
    ctx.catalog->RegisterExternal(name, &splits);
  }
  for (size_t i = 0; i < plan.stages().size(); ++i) {
    const Stage& stage = plan.stages()[i];
    const bool is_sink = plan.IsSink(static_cast<int>(i));
    ctx.catalog->RegisterIntermediate(
        stage.output, static_cast<int>(i), stage.spec.num_reduce_tasks,
        /*retained=*/is_sink && ctx.collect_outputs);
  }
  auto consumer_map_tasks = [&](const std::string& dataset) {
    int count = 0;
    for (const Stage& stage : plan.stages()) {
      for (const std::string& input : stage.inputs) {
        if (input != dataset) continue;
        const int producer = plan.ProducerOf(input);
        count += producer >= 0
                     ? plan.stages()[static_cast<size_t>(producer)]
                           .spec.num_reduce_tasks
                     : static_cast<int>(
                           plan.external_inputs().at(input).size());
      }
    }
    return count;
  };
  for (const auto& [name, splits] : plan.external_inputs()) {
    ctx.catalog->SetPendingConsumers(name, consumer_map_tasks(name));
  }
  for (const Stage& stage : plan.stages()) {
    ctx.catalog->SetPendingConsumers(stage.output,
                                     consumer_map_tasks(stage.output));
  }

  for (size_t i = 0; i < plan.stages().size(); ++i) stages->emplace_back();

  // ---- Lower stages in dependency order -----------------------------------
  for (int stage_index : topo) {
    const Stage& stage = plan.stages()[static_cast<size_t>(stage_index)];
    StageExec* st = &(*stages)[static_cast<size_t>(stage_index)];
    st->stage_index = stage_index;
    st->run_spec = stage.options.anti_combine
                       ? anticombine::EnableAntiCombining(
                             stage.spec, stage.options.anti_combine_options)
                       : stage.spec;
    if (ctx.record_format) st->run_spec.record_format = *ctx.record_format;
    if (ctx.chunk_block_bytes) {
      st->run_spec.chunk_block_bytes = *ctx.chunk_block_bytes;
    }
    if (ctx.chunk_codec) st->run_spec.chunk_codec = *ctx.chunk_codec;
    st->job_id = ctx.run_id + "_s" + std::to_string(stage_index) + "_" +
                 stage.spec.name;
    st->trace_label = stage.name.empty() ? stage.spec.name : stage.name;
    st->output_dataset = stage.output;
    const bool is_sink = plan.IsSink(stage_index);
    st->publish_output = !is_sink || ctx.collect_outputs;
    st->collect_output = st->publish_output;

    // Map inputs: one task per external split, one task per partition of
    // each intermediate input (the cross-stage pipelining edge).
    std::vector<MapInput> map_inputs;
    for (const std::string& input : stage.inputs) {
      const int producer = plan.ProducerOf(input);
      if (producer < 0) {
        const auto& splits = plan.external_inputs().at(input);
        for (const InputSplit& split : splits) {
          map_inputs.push_back({split, -1, &input});
        }
      } else {
        const StageExec& prod =
            (*stages)[static_cast<size_t>(producer)];
        const int partitions =
            plan.stages()[static_cast<size_t>(producer)]
                .spec.num_reduce_tasks;
        for (int p = 0; p < partitions; ++p) {
          map_inputs.push_back({ctx.catalog->PartitionSplit(input, p),
                                prod.reduce_task_ids[static_cast<size_t>(p)],
                                &input});
        }
      }
    }

    const size_t num_maps = map_inputs.size();
    const size_t num_reduce =
        static_cast<size_t>(st->run_spec.num_reduce_tasks);
    st->num_maps = num_maps;
    st->map_results.resize(num_maps);
    st->map_cpu.assign(num_maps, 0);
    st->reduce_results.resize(num_reduce);
    st->reduce_cpu.assign(num_reduce, 0);
    st->maps_remaining.store(num_maps, std::memory_order_relaxed);

    // Move the splits into shared storage the task lambdas can capture.
    auto inputs = std::make_shared<std::vector<MapInput>>(
        std::move(map_inputs));

    std::vector<int> map_ids(num_maps, -1);
    for (size_t m = 0; m < num_maps; ++m) {
      const MapInput& in = (*inputs)[m];
      const std::vector<int> deps =
          in.dep >= 0 ? std::vector<int>{in.dep} : std::vector<int>{};
      map_ids[m] = graph->AddTask(
          [&ctx, st, inputs, m](int attempt) {
            StampMin(&st->first_start, NowNanos());
            // Idempotent retry: discard the prior attempt's partial result
            // and write under an attempt-scoped job id so a half-written
            // file from the failed attempt can never be read as output.
            if (attempt > 0) st->map_results[m] = MapTaskResult();
            const std::string job_id =
                attempt == 0 ? st->job_id
                             : st->job_id + "_r" + std::to_string(attempt);
            const uint64_t cpu_start = ThreadCpuNanos();
            Status status = RunMapTask(st->run_spec, job_id,
                                       static_cast<int>(m),
                                       (*inputs)[m].split, ctx.task_env,
                                       &st->map_results[m]);
            st->map_cpu[m] = ThreadCpuNanos() - cpu_start;
            if (status.ok()) {
              // Only a terminal outcome may drop the consumer refcount or
              // the in-flight map count; a retried attempt is still "the
              // same task" to the shuffle and the catalog. Failed tasks are
              // covered by the executor's ReleaseAll epilogue.
              st->maps_remaining.fetch_sub(1, std::memory_order_relaxed);
              ctx.catalog->ConsumerDone(*(*inputs)[m].dataset);
            }
            StampMax(&st->last_end, NowNanos());
            return status;
          },
          deps, TaskGraph::TaskOptions{});
    }

    st->reduce_task_ids.assign(num_reduce, -1);
    if (stage.options.shuffle_mode == ShuffleMode::kBarrier) {
      // Classic two-wave model inside the stage: every reduce waits for
      // the whole map wave and streams its segments inline.
      for (size_t p = 0; p < num_reduce; ++p) {
        st->reduce_task_ids[p] = graph->AddTask(
            [&ctx, st, p](int attempt) {
              if (attempt > 0) st->reduce_results[p] = ReduceTaskResult();
              ReduceTaskInputs inputs;
              inputs.readahead_blocks = ctx.readahead_blocks;
              // Segments travel through the shuffle service even in the
              // two-wave model, so barrier and pipelined runs count the
              // same transport-boundary bytes. The direct-Env path stays
              // for contexts lowered without a shuffle client.
              if (ctx.shuffle != nullptr) {
                inputs.shuffle = ctx.shuffle;
                for (const MapTaskResult& mr : st->map_results) {
                  const std::string& fname = mr.segment_files[p];
                  if (!fname.empty()) {
                    inputs.remote.push_back({ctx.shuffle_addr, fname});
                  }
                }
              } else {
                inputs.network_mb_per_s = ctx.network_mb_per_s;
                for (const MapTaskResult& mr : st->map_results) {
                  const std::string& fname = mr.segment_files[p];
                  if (!fname.empty()) inputs.segment_files.push_back(fname);
                }
              }
              return RunStageReduce(ctx, st, static_cast<int>(p), inputs);
            },
            map_ids, TaskGraph::TaskOptions{});
      }
    } else {
      // Pipelined model: concurrent fetches overlap the map wave.
      st->fetched.resize(num_reduce);
      for (auto& per_map : st->fetched) per_map.resize(num_maps);
      st->fetch_cpu = std::vector<std::atomic<uint64_t>>(num_reduce);

      for (size_t p = 0; p < num_reduce; ++p) {
        std::vector<int> fetch_ids;
        fetch_ids.reserve(num_maps);
        for (size_t m = 0; m < num_maps; ++m) {
          TaskGraph::TaskOptions fetch_options;
          fetch_options.pool = ctx.fetch_pool;
          fetch_ids.push_back(graph->AddTask(
              [&ctx, st, p, m](int attempt) {
                const std::string& fname =
                    st->map_results[m].segment_files[p];
                if (fname.empty()) return Status::OK();
                ANTIMR_TRACE_SPAN_DYN(
                    "task", "fetch:" + st->trace_label + " p" +
                                std::to_string(p) + " m" + std::to_string(m));
                // A retried fetch starts over from an empty segment so a
                // partially-filled buffer from the failed attempt cannot
                // leak into the merge.
                if (attempt > 0) st->fetched[p][m] = FetchedSegment();
                if (st->maps_remaining.load(std::memory_order_relaxed) > 0) {
                  st->overlapped_fetches.fetch_add(
                      1, std::memory_order_relaxed);
                }
                const uint64_t cpu_start = ThreadCpuNanos();
                // Over the shuffle service when the executor provides one
                // (so the copy crosses the counted transport boundary),
                // otherwise straight from the Env as before.
                Status status =
                    ctx.shuffle != nullptr
                        ? ctx.shuffle->Fetch(ctx.shuffle_addr, fname,
                                             &st->fetched[p][m])
                        : FetchSegmentFrames(ctx.task_env, fname,
                                             ctx.network_mb_per_s,
                                             &st->fetched[p][m]);
                st->fetch_cpu[p].fetch_add(ThreadCpuNanos() - cpu_start,
                                           std::memory_order_relaxed);
                return status;
              },
              {map_ids[m]}, fetch_options));
        }
        st->reduce_task_ids[p] = graph->AddTask(
            [&ctx, st, p](int attempt) {
              if (attempt > 0) st->reduce_results[p] = ReduceTaskResult();
              ReduceTaskInputs inputs;
              inputs.readahead_blocks = ctx.readahead_blocks;
              // Borrow the fetched segments — the StageExec keeps owning
              // them so a transiently-failed reduce retries against the
              // same bytes instead of finding moved-out empties.
              for (const FetchedSegment& fs : st->fetched[p]) {
                if (!fs.file.empty()) inputs.fetched.push_back(&fs);
              }
              Status status =
                  RunStageReduce(ctx, st, static_cast<int>(p), inputs);
              if (status.ok()) {
                // Success is terminal: drop the fetched frames now (not at
                // stage teardown) to keep shuffle memory bounded per live
                // reduce, as before retries existed.
                for (FetchedSegment& fs : st->fetched[p]) {
                  std::string().swap(fs.frames);
                }
              }
              return status;
            },
            fetch_ids, TaskGraph::TaskOptions{});
      }
    }

    if (ctx.cleanup_intermediates) {
      // Segment files die as soon as the stage's reduces are done — not at
      // the end of the plan — bounding intermediate storage per stage.
      // always_run: a failed reduce must not strand the stage's segment
      // files on disk; by the time this runs every map/reduce is terminal,
      // so reading map_results is safe even on the failure path.
      TaskGraph::TaskOptions cleanup_options;
      cleanup_options.always_run = true;
      graph->AddTask(
          [&ctx, st](int) {
            ANTIMR_TRACE_SPAN_DYN("task", "cleanup:" + st->trace_label);
            for (const MapTaskResult& mr : st->map_results) {
              for (const std::string& fname : mr.segment_files) {
                if (!fname.empty()) ctx.cleanup_env->DeleteFile(fname);
              }
            }
            return Status::OK();
          },
          st->reduce_task_ids, cleanup_options);
    }
  }
  return Status::OK();
}

}  // namespace engine
}  // namespace antimr
