// JobService implementation plus the distributed job driver it dispatches.
// The driver (ExecuteDistJob) is the former RunDistributedJob body, moved
// here and parameterized for multi-tenancy: per-job placement accounting
// (PickWorker's job_inflight map), a per-job speculation baseline (a slow
// tenant must not poison another tenant's straggler threshold), and an
// abort flag checked at every task-body entry so AbortJob unwinds the
// TaskGraph with a permanent status instead of burning the retry budget.
// RunDistributedJob itself survives as a submit-and-wait shim over an
// ephemeral single-pool service, so every job — legacy or daemon-submitted
// — takes the same admission/queue/dispatch path.
#include "engine/job_service.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <utility>

#include "common/hash.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "engine/job_registry.h"
#include "mr/local_cluster.h"
#include "net/frame.h"
#include "obs/trace.h"

namespace antimr {
namespace engine {

uint64_t OutputMultisetHash(const std::vector<KV>& records) {
  uint64_t h = 0;
  for (const KV& kv : records) {
    h += Hash64(kv.value.data(), kv.value.size(),
                Hash64(kv.key.data(), kv.key.size()));
  }
  return h;
}

std::vector<KV> DistJobResult::FlatOutput() const {
  std::vector<KV> flat;
  for (const auto& part : outputs) {
    flat.insert(flat.end(), part.begin(), part.end());
  }
  return flat;
}

// --- distributed job driver ----------------------------------------------

namespace {

bool IsTerminalState(const std::string& state) {
  return state == "succeeded" || state == "failed" || state == "aborted";
}

/// Placement of one map task's current (latest successful) execution.
struct MapPlacement {
  std::mutex mu;  ///< serializes heal re-runs of this map
  uint32_t worker = 0;
  std::vector<std::string> segment_files;  ///< per reduce partition
  JobMetrics metrics;                      ///< latest attempt only
  uint64_t cpu_nanos = 0;
  std::atomic<uint32_t> attempts{0};  ///< executions started (job_id scope)
};

std::string UniqueJobId(const std::string& name) {
  static std::atomic<uint64_t> counter{0};
  return "dist_" + name + "_" +
         std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
}

// --- speculative execution ------------------------------------------------

/// Launch one attempt of a task: pick a worker (excluding `exclude_worker`;
/// 0 = none), publish the chosen worker and the rpc_id through the atomics
/// *before* blocking, then block in Coordinator::Call. Returning means the
/// attempt finished (either way); the atomics let the race monitor cancel a
/// still-running attempt from outside.
using AttemptFn =
    std::function<Status(uint32_t exclude_worker, std::atomic<uint64_t>* rpc_id,
                         std::atomic<uint32_t>* worker,
                         net::TaskResultMsg* res)>;

struct SpecConfig {
  bool enabled = false;
  double slowness_factor = 2.0;
  uint64_t min_elapsed_nanos = 0;
  uint64_t force_after_nanos = 0;
  net::TaskKind kind = net::TaskKind::kMap;
};

struct SpecStats {
  std::atomic<uint64_t> backups{0};
  std::atomic<uint64_t> backup_wins{0};
  std::atomic<uint64_t> cancels{0};
};

/// Per-job straggler baseline: recent completed-task durations by kind.
/// Job-scoped on purpose — under multi-tenancy a pool of long tasks must
/// not set the slowness threshold for a pool of short ones (and vice
/// versa), which the old coordinator-global baseline would.
struct SpecBaseline {
  std::mutex mu;
  std::vector<uint64_t> recent[2];  ///< [map, reduce]

  void Record(net::TaskKind kind, uint64_t nanos) {
    std::lock_guard<std::mutex> lock(mu);
    auto& r = recent[kind == net::TaskKind::kMap ? 0 : 1];
    if (r.size() >= 64) r.erase(r.begin());
    r.push_back(nanos);
  }

  /// Median recent duration; 0 until a completion of that kind landed.
  uint64_t Typical(net::TaskKind kind) {
    std::lock_guard<std::mutex> lock(mu);
    std::vector<uint64_t> r = recent[kind == net::TaskKind::kMap ? 0 : 1];
    if (r.empty()) return 0;
    const size_t mid = r.size() / 2;
    std::nth_element(r.begin(), r.begin() + static_cast<long>(mid), r.end());
    return r[mid];
  }
};

/// First-finisher-wins execution of `attempt`, optionally racing a backup
/// against a straggling primary. The winner's result lands in *result /
/// *winner_worker; the loser is cancelled (kCancelTask) and awaited, so no
/// attempt outlives this call. With cfg.enabled false this is a plain
/// single-attempt run.
Status RunWithSpeculation(Coordinator* coord, const SpecConfig& cfg,
                          SpecBaseline* baseline, const AttemptFn& attempt,
                          net::TaskResultMsg* result, uint32_t* winner_worker,
                          SpecStats* stats) {
  struct Side {
    std::atomic<uint64_t> rpc_id{0};
    std::atomic<uint32_t> worker{0};
    net::TaskResultMsg res;
    Status status;
    bool done = false;  // guarded by mu below
  };
  if (!cfg.enabled) {
    Side solo;
    const Status st = attempt(0, &solo.rpc_id, &solo.worker, &solo.res);
    *result = std::move(solo.res);
    *winner_worker = solo.worker.load(std::memory_order_relaxed);
    return st;
  }

  static obs::Counter* const backups_counter =
      obs::MetricsRegistry::Global().GetCounter(
          "antimr_spec_backups_total",
          "speculative backup attempts launched for stragglers");
  static obs::Counter* const wins_counter =
      obs::MetricsRegistry::Global().GetCounter(
          "antimr_spec_wins_total",
          "speculative races won by the backup attempt");
  static obs::Counter* const cancelled_counter =
      obs::MetricsRegistry::Global().GetCounter(
          "antimr_spec_cancelled_total",
          "attempts cancelled after losing a speculative race");

  Side primary, backup;
  std::mutex mu;
  std::condition_variable cv;
  auto run_side = [&](Side* side, uint32_t exclude) {
    const Status st = attempt(exclude, &side->rpc_id, &side->worker, &side->res);
    std::lock_guard<std::mutex> lock(mu);
    side->status = st;
    side->done = true;
    cv.notify_all();
  };
  std::thread primary_thread(run_side, &primary, 0u);
  std::thread backup_thread;
  bool backup_started = false;
  const uint64_t start = NowNanos();

  // Adaptive threshold: explicit override wins; otherwise slowness_factor x
  // the job's median completed duration of this task kind, floored. No
  // baseline yet (cold start) = no speculation.
  auto slowness_threshold = [&]() -> uint64_t {
    if (cfg.force_after_nanos > 0) return cfg.force_after_nanos;
    const uint64_t typical = baseline->Typical(cfg.kind);
    if (typical == 0) return 0;
    const auto scaled =
        static_cast<uint64_t>(static_cast<double>(typical) * cfg.slowness_factor);
    return std::max(cfg.min_elapsed_nanos, scaled);
  };

  {
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
      const bool all_done = primary.done && (!backup_started || backup.done);
      const bool have_winner = (primary.done && primary.status.ok()) ||
                               (backup_started && backup.done &&
                                backup.status.ok());
      if (all_done || have_winner) break;
      cv.wait_for(lock, std::chrono::milliseconds(5));
      if (backup_started || primary.done) continue;
      const uint64_t threshold = slowness_threshold();
      if (threshold == 0 || NowNanos() - start < threshold) continue;
      // Nearly-finished primaries are not worth racing (adaptive mode only;
      // a forced threshold is a test asking for a deterministic race).
      if (cfg.force_after_nanos == 0 &&
          coord->RpcProgressPermille(
              primary.rpc_id.load(std::memory_order_acquire)) >= 900) {
        continue;
      }
      if (coord->live_workers() < 2) continue;  // nowhere to place a backup
      backup_started = true;
      stats->backups.fetch_add(1, std::memory_order_relaxed);
      backups_counter->Inc();
      ANTIMR_TRACE_INSTANT(
          "engine", "speculative_backup",
          obs::TraceArgs()
              .Add("rpc", static_cast<int64_t>(
                              primary.rpc_id.load(std::memory_order_acquire)))
              .Add("kind", cfg.kind == net::TaskKind::kMap ? "map" : "reduce"));
      lock.unlock();
      backup_thread = std::thread(run_side, &backup,
                                  primary.worker.load(std::memory_order_relaxed));
      lock.lock();
    }
  }

  // Decide the race and cancel the still-running loser, if any.
  Side* winner = nullptr;
  Side* loser = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu);
    if (primary.done && primary.status.ok()) {
      winner = &primary;
      loser = backup_started ? &backup : nullptr;
    } else if (backup_started && backup.done && backup.status.ok()) {
      winner = &backup;
      loser = &primary;
    }
  }
  if (winner != nullptr && loser != nullptr) {
    bool loser_running;
    {
      std::lock_guard<std::mutex> lock(mu);
      loser_running = !loser->done;
    }
    if (loser_running) {
      coord->CancelTask(loser->worker.load(std::memory_order_relaxed),
                        loser->rpc_id.load(std::memory_order_acquire));
      stats->cancels.fetch_add(1, std::memory_order_relaxed);
      cancelled_counter->Inc();
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return loser->done; });
    }
  }
  primary_thread.join();
  if (backup_thread.joinable()) backup_thread.join();

  if (winner == nullptr) {
    // Both attempts failed (or the lone primary did): surface the primary's
    // error — the TaskGraph retry layer treats it like any failed attempt.
    return !primary.status.ok() ? primary.status : backup.status;
  }
  if (winner == &backup) {
    stats->backup_wins.fetch_add(1, std::memory_order_relaxed);
    wins_counter->Inc();
    ANTIMR_TRACE_INSTANT(
        "engine", "speculation_win",
        obs::TraceArgs()
            .Add("rpc", static_cast<int64_t>(
                            backup.rpc_id.load(std::memory_order_acquire)))
            .Add("kind", cfg.kind == net::TaskKind::kMap ? "map" : "reduce"));
  }
  *result = std::move(winner->res);
  *winner_worker = winner->worker.load(std::memory_order_relaxed);
  return Status::OK();
}

/// Service-side hooks threaded through one driver run.
struct ExecHooks {
  /// Pre-encoded splits (wire path); empty = encode options.splits here.
  const std::vector<std::string>* encoded_splits = nullptr;
  /// Abort flag: checked at every task-body entry; a set flag turns the
  /// body into a *permanent* failure (Status::Internal), which stops the
  /// TaskGraph retry loop cold. The kCancelJob broadcast fails in-flight
  /// worker attempts transiently; this check is what keeps the retry from
  /// relaunching them.
  const std::atomic<bool>* abort = nullptr;
  /// Progress mirror for the service's job table (called alongside the
  /// coordinator's own PublishJobStatus).
  std::function<void(const JobStatusSnapshot&)> on_status;
};

/// The distributed job driver: the body RunDistributedJob had before the
/// JobService refactor, now shared by every admitted job.
Status ExecuteDistJob(Coordinator* coord, const DistJobOptions& options,
                      const ExecHooks& hooks, DistJobResult* result) {
  *result = DistJobResult();
  const uint64_t wall_start = NowNanos();

  auto aborted = [&hooks] {
    return hooks.abort != nullptr &&
           hooks.abort->load(std::memory_order_acquire);
  };

  // Build the spec locally only to learn the job's shape (and fail fast on
  // bad params) — workers rebuild their own from the same registry.
  JobSpec spec;
  ANTIMR_RETURN_NOT_OK(
      BuildRegisteredJob(options.job_name, options.params, &spec));
  const int num_reduces = spec.num_reduce_tasks;

  // Encode each split once; retries and heals reuse the bytes. The wire
  // path hands pre-encoded splits through hooks.
  std::vector<std::string> encoded_storage;
  const std::vector<std::string>* encoded = hooks.encoded_splits;
  if (encoded == nullptr || encoded->empty()) {
    encoded_storage.resize(options.splits.size());
    for (size_t m = 0; m < options.splits.size(); ++m) {
      net::EncodeKVList(options.splits[m], &encoded_storage[m]);
    }
    encoded = &encoded_storage;
  }
  const int num_maps = static_cast<int>(encoded->size());
  if (num_maps == 0) return Status::InvalidArgument("no input splits");
  const std::string job_id =
      options.job_id.empty() ? UniqueJobId(options.job_name) : options.job_id;
  ANTIMR_TRACE_SPAN_DYN("engine", "dist:" + job_id);

  std::deque<MapPlacement> placements(num_maps);
  std::vector<std::vector<KV>> outputs(num_reduces);
  std::vector<JobMetrics> reduce_metrics(num_reduces);
  std::vector<uint64_t> reduce_cpu(num_reduces, 0);
  std::atomic<uint64_t> map_runs{0};
  std::atomic<uint64_t> maps_done{0};
  std::atomic<uint64_t> reduces_done{0};

  // This job's in-flight dispatches per worker: placement balances the
  // job's own spread first (Coordinator::PickWorker) so one tenant's flood
  // cannot pile another tenant's tasks onto the one idle worker.
  std::mutex job_load_mu;
  std::map<uint32_t, int> job_load;
  SpecBaseline baseline;

  // Workers capture and ship trace spans only when this run is tracing.
  const bool trace_enabled = obs::kTraceCompiled && obs::TraceEnabled();

  auto publish_status = [&](const char* state) {
    JobStatusSnapshot s;
    s.job_id = job_id;
    s.job_name = options.job_name;
    s.state = state;
    s.maps_total = static_cast<uint64_t>(num_maps);
    s.maps_done = std::min(maps_done.load(std::memory_order_relaxed),
                           static_cast<uint64_t>(num_maps));
    s.reduces_total = static_cast<uint64_t>(num_reduces);
    s.reduces_done = reduces_done.load(std::memory_order_relaxed);
    const uint64_t runs = map_runs.load(std::memory_order_relaxed);
    s.map_reruns = runs > static_cast<uint64_t>(num_maps)
                       ? runs - static_cast<uint64_t>(num_maps)
                       : 0;
    coord->PublishJobStatus(s);
    if (hooks.on_status) hooks.on_status(s);
  };
  publish_status("running");

  SpecStats spec_stats;
  SpecConfig map_spec, reduce_spec;
  map_spec.enabled = reduce_spec.enabled = options.speculative_execution;
  map_spec.slowness_factor = reduce_spec.slowness_factor =
      options.speculation_slowness_factor;
  map_spec.min_elapsed_nanos = reduce_spec.min_elapsed_nanos =
      options.speculation_min_elapsed_nanos;
  map_spec.force_after_nanos = reduce_spec.force_after_nanos =
      options.speculation_force_after_nanos;
  map_spec.kind = net::TaskKind::kMap;
  reduce_spec.kind = net::TaskKind::kReduce;

  // Pick a worker (job-aware), run the Call, and maintain the job's
  // in-flight map plus its speculation baseline around it.
  auto place_and_call = [&](uint32_t exclude, net::TaskAssignMsg assign,
                            std::atomic<uint64_t>* rpc_id,
                            std::atomic<uint32_t>* worker,
                            net::TaskResultMsg* res,
                            net::TaskKind kind) -> Status {
    uint32_t worker_id = 0;
    {
      std::lock_guard<std::mutex> lock(job_load_mu);
      ANTIMR_RETURN_NOT_OK(coord->PickWorker(&worker_id, exclude, &job_load));
      ++job_load[worker_id];
    }
    worker->store(worker_id, std::memory_order_relaxed);
    const uint64_t t0 = NowNanos();
    const Status st = coord->Call(worker_id, std::move(assign), res, rpc_id);
    {
      std::lock_guard<std::mutex> lock(job_load_mu);
      if (--job_load[worker_id] <= 0) job_load.erase(worker_id);
    }
    if (st.ok() && res->status_code == 0) {
      baseline.Record(kind, NowNanos() - t0);
    }
    return st;
  };

  // Runs (or re-runs) map `m` on a live worker and records its placement —
  // under speculation, the first of up to two racing attempts to finish.
  // Callers hold placements[m].mu, so each attempt draws a fresh
  // attempt-scoped job_id: a re-execution (retry, heal, or speculative
  // backup) can land on a worker that already holds a previous attempt's
  // files, and unique names keep stale segments from masking fresh ones.
  auto run_map_once = [&](int m) -> Status {
    MapPlacement& loc = placements[m];
    auto start_attempt = [&](uint32_t exclude, std::atomic<uint64_t>* rpc_id,
                             std::atomic<uint32_t>* worker,
                             net::TaskResultMsg* res) -> Status {
      net::TaskAssignMsg assign;
      assign.kind = net::TaskKind::kMap;
      assign.job_name = options.job_name;
      assign.params = options.params;
      const uint32_t attempt =
          loc.attempts.fetch_add(1, std::memory_order_relaxed);
      assign.job_id = job_id + "_a" + std::to_string(attempt);
      assign.task_index = static_cast<uint32_t>(m);
      assign.attempt = attempt;
      assign.trace_enabled = trace_enabled;
      assign.split_records = (*encoded)[m];
      return place_and_call(exclude, std::move(assign), rpc_id, worker, res,
                            net::TaskKind::kMap);
    };
    net::TaskResultMsg res;
    uint32_t winner_worker = 0;
    ANTIMR_RETURN_NOT_OK(RunWithSpeculation(coord, map_spec, &baseline,
                                            start_attempt, &res,
                                            &winner_worker, &spec_stats));
    JobMetrics metrics;
    ANTIMR_RETURN_NOT_OK(net::DecodeJobMetrics(res.metrics, &metrics));
    loc.worker = winner_worker;
    loc.segment_files = std::move(res.segment_files);
    loc.metrics = metrics;
    loc.cpu_nanos = res.cpu_nanos;
    map_runs.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  };

  // Dispatcher threads only block on worker RPCs, so size the pool to run
  // every task's dispatch concurrently by default; a job admitted with a
  // cpu-slot grant runs at exactly that dispatch width.
  const int total_tasks = num_maps + num_reduces;
  TaskPool dispatch(options.dispatch_threads > 0 ? options.dispatch_threads
                                                 : std::min(total_tasks, 64),
                    "dispatch");
  RetryPolicy retry;
  retry.max_attempts = std::max(1, options.max_task_attempts);
  retry.backoff_nanos = options.retry_backoff_nanos;
  TaskGraph graph(&dispatch, retry);

  std::vector<int> map_ids(num_maps);
  for (int m = 0; m < num_maps; ++m) {
    map_ids[m] = graph.AddTask(
        [&, m](int) -> Status {
          if (aborted()) return Status::Internal("job aborted");
          {
            std::lock_guard<std::mutex> lock(placements[m].mu);
            ANTIMR_RETURN_NOT_OK(run_map_once(m));
          }
          maps_done.fetch_add(1, std::memory_order_relaxed);
          publish_status("running");
          return Status::OK();
        },
        {}, TaskGraph::TaskOptions());
  }

  for (int p = 0; p < num_reduces; ++p) {
    graph.AddTask(
        [&, p](int attempt) -> Status {
          if (aborted()) return Status::Internal("job aborted");
          // Heal before placing: any map whose owning worker died lost its
          // segments, so re-run it first. The per-map mutex lets concurrent
          // reduce attempts heal disjoint maps in parallel while never
          // double-running one.
          for (int m = 0; m < num_maps; ++m) {
            if (aborted()) return Status::Internal("job aborted");
            MapPlacement& loc = placements[m];
            std::lock_guard<std::mutex> lock(loc.mu);
            if (!coord->WorkerAlive(loc.worker)) {
              ANTIMR_RETURN_NOT_OK(run_map_once(m));
            }
          }
          net::TaskAssignMsg base;
          base.kind = net::TaskKind::kReduce;
          base.job_name = options.job_name;
          base.params = options.params;
          base.job_id = job_id;
          base.task_index = static_cast<uint32_t>(p);
          base.attempt = static_cast<uint32_t>(attempt);
          base.trace_enabled = trace_enabled;
          base.collect_output = options.collect_outputs;
          base.network_mb_per_s = options.network_mb_per_s;
          base.readahead_blocks = options.readahead_blocks;
          // Segment list in map-index order: merge order is part of the
          // output contract, identical to the single-process planner.
          for (int m = 0; m < num_maps; ++m) {
            MapPlacement& loc = placements[m];
            std::lock_guard<std::mutex> lock(loc.mu);
            const std::string& file = loc.segment_files[p];
            if (file.empty()) continue;
            base.segments.push_back(
                {coord->WorkerShuffleAddr(loc.worker), file});
          }
          auto start_attempt =
              [&, base](uint32_t exclude, std::atomic<uint64_t>* rpc_id,
                        std::atomic<uint32_t>* worker,
                        net::TaskResultMsg* res) -> Status {
            return place_and_call(exclude, net::TaskAssignMsg(base), rpc_id,
                                  worker, res, net::TaskKind::kReduce);
          };
          net::TaskResultMsg res;
          uint32_t winner_worker = 0;
          ANTIMR_RETURN_NOT_OK(RunWithSpeculation(coord, reduce_spec,
                                                  &baseline, start_attempt,
                                                  &res, &winner_worker,
                                                  &spec_stats));
          ANTIMR_RETURN_NOT_OK(
              net::DecodeKVList(res.output_records, &outputs[p]));
          ANTIMR_RETURN_NOT_OK(
              net::DecodeJobMetrics(res.metrics, &reduce_metrics[p]));
          reduce_cpu[p] = res.cpu_nanos;
          reduces_done.fetch_add(1, std::memory_order_relaxed);
          publish_status("running");
          return Status::OK();
        },
        map_ids, TaskGraph::TaskOptions());
  }

  const Status run_status = graph.Wait();
  publish_status(run_status.ok() ? "done" : "failed");
  if (!run_status.ok()) return run_status;

  for (int m = 0; m < num_maps; ++m) {
    result->metrics.Add(placements[m].metrics);
    result->metrics.total_cpu_nanos += placements[m].cpu_nanos;
  }
  result->reduce_shuffle_bytes.resize(num_reduces, 0);
  result->reduce_input_records.resize(num_reduces, 0);
  for (int p = 0; p < num_reduces; ++p) {
    result->metrics.Add(reduce_metrics[p]);
    result->metrics.total_cpu_nanos += reduce_cpu[p];
    result->reduce_shuffle_bytes[p] = reduce_metrics[p].shuffle_bytes;
    result->reduce_input_records[p] = reduce_metrics[p].reduce_input_records;
  }
  result->spec_backups = spec_stats.backups.load(std::memory_order_relaxed);
  result->spec_backup_wins =
      spec_stats.backup_wins.load(std::memory_order_relaxed);
  result->spec_cancels = spec_stats.cancels.load(std::memory_order_relaxed);
  result->outputs = std::move(outputs);
  const uint64_t total_runs = map_runs.load(std::memory_order_relaxed);
  result->map_reruns =
      total_runs > static_cast<uint64_t>(num_maps)
          ? total_runs - static_cast<uint64_t>(num_maps)
          : 0;
  result->metrics.wall_nanos = NowNanos() - wall_start;
  return Status::OK();
}

void AppendJsonEscaped(const std::string& s, std::string* out) {
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

// --- JobService ----------------------------------------------------------

struct JobService::Job {
  std::string id;
  std::string pool_name;
  JobSubmission sub;
  std::string state = "queued";
  /// Stride charge: the granted dispatch slots, floored at 1 so auto-sized
  /// jobs still advance their pool's pass.
  int cost = 1;
  /// Quota charge and dispatch width; 0 = "auto" (legacy sizing, no quota).
  int granted_slots = 0;
  uint64_t charged_memory = 0;
  uint64_t submit_nanos = 0;
  uint64_t start_nanos = 0;
  uint64_t finish_nanos = 0;
  uint64_t dispatch_seq = 0;
  std::atomic<bool> abort_requested{false};
  // Driver progress mirror; atomics so status readers never touch the
  // driver's own synchronization.
  std::atomic<uint64_t> maps_total{0};
  std::atomic<uint64_t> maps_done{0};
  std::atomic<uint64_t> reduces_total{0};
  std::atomic<uint64_t> reduces_done{0};
  std::atomic<uint64_t> map_reruns{0};
  Status final_status;
  uint64_t output_hash = 0;
  uint64_t output_records = 0;
  DistJobResult result;
  bool have_result = false;
  std::thread runner;
  bool reaped = false;  ///< runner joined (scheduler GC or Stop)
};

struct JobService::Pool {
  PoolConfig cfg;
  std::deque<Job*> queue;  ///< FIFO; only the head is dispatchable
  double pass = 0;         ///< stride accumulator: min pass dispatches next
  int running = 0;
  int used_slots = 0;
  uint64_t used_memory = 0;
  uint64_t busy_slot_nanos = 0;  ///< integral of cost over job runtimes
  uint64_t jobs_completed = 0;
  obs::Gauge* queued_gauge = nullptr;
  obs::Gauge* running_gauge = nullptr;
  obs::Gauge* share_gauge = nullptr;
  obs::Counter* submitted = nullptr;
  obs::Counter* completed = nullptr;
  obs::Counter* rejected = nullptr;
  obs::Counter* aborted = nullptr;
};

JobService::JobService(Coordinator* coord, const JobServiceOptions& options)
    : coord_(coord), options_(options) {
  if (options_.pools.empty()) options_.pools.push_back(PoolConfig());
  first_pool_ = options_.pools.front().name;
  auto& reg = obs::MetricsRegistry::Global();
  for (const PoolConfig& cfg : options_.pools) {
    if (pools_.count(cfg.name) != 0) continue;  // first definition wins
    auto pool = std::make_unique<Pool>();
    pool->cfg = cfg;
    if (pool->cfg.weight <= 0) pool->cfg.weight = 1.0;
    // Labels are baked into the names, matching the federation convention.
    const std::string label = "{pool=\"" + cfg.name + "\"}";
    pool->queued_gauge =
        reg.GetGauge("antimr_jobs_queued" + label, "jobs waiting in the pool");
    pool->running_gauge =
        reg.GetGauge("antimr_jobs_running" + label, "jobs running in the pool");
    pool->share_gauge = reg.GetGauge("antimr_pool_fair_share_slots" + label,
                                     "cpu slots in use by the pool's jobs");
    pool->submitted = reg.GetCounter("antimr_jobs_submitted_total" + label,
                                     "jobs admitted to the pool's queue");
    pool->completed = reg.GetCounter("antimr_jobs_completed_total" + label,
                                     "pool jobs that reached a terminal state");
    pool->rejected = reg.GetCounter("antimr_jobs_rejected_total" + label,
                                    "submissions refused by admission control");
    pool->aborted = reg.GetCounter("antimr_jobs_aborted_total" + label,
                                   "pool jobs aborted before success");
    pools_.emplace(cfg.name, std::move(pool));
  }
  scheduler_ = std::thread(&JobService::SchedulerLoop, this);
}

JobService::~JobService() { Stop(); }

void JobService::AttachStatusEndpoint() {
  coord_->AddStatusHandler("/jobs", [this](std::string* content_type) {
    *content_type = "application/json";
    return JobsJson();
  });
}

Status JobService::Submit(JobSubmission submission, std::string* job_id) {
  std::unique_lock<std::mutex> lock(mu_);
  return SubmitLocked(std::move(submission), job_id, lock);
}

Status JobService::SubmitLocked(JobSubmission&& sub, std::string* job_id,
                                std::unique_lock<std::mutex>& lock) {
  (void)lock;
  if (stopping_) return Status::Internal("job service is stopping");
  const std::string pool_name = sub.pool.empty() ? first_pool_ : sub.pool;
  auto pit = pools_.find(pool_name);
  if (pit == pools_.end()) {
    return Status::NotFound("unknown pool: " + pool_name);
  }
  Pool& pool = *pit->second;
  if (sub.job_name.empty()) {
    pool.rejected->Inc();
    return Status::InvalidArgument("job_name is required");
  }
  if (sub.splits.empty() && sub.encoded_splits.empty()) {
    pool.rejected->Inc();
    return Status::InvalidArgument("no input splits");
  }
  const int granted =
      sub.cpu_slots > 0 ? sub.cpu_slots : options_.default_cpu_slots;
  const uint64_t memory =
      sub.memory_bytes > 0 ? sub.memory_bytes : options_.default_memory_bytes;
  // A job whose declared resources exceed the pool quota outright could
  // never be admitted — reject now instead of wedging the FIFO forever.
  if (pool.cfg.cpu_slots_quota > 0 && granted > pool.cfg.cpu_slots_quota) {
    pool.rejected->Inc();
    return Status::ResourceExhausted(
        "cpu slots " + std::to_string(granted) + " exceed pool \"" +
        pool_name + "\" quota " + std::to_string(pool.cfg.cpu_slots_quota));
  }
  if (pool.cfg.memory_quota_bytes > 0 &&
      memory > pool.cfg.memory_quota_bytes) {
    pool.rejected->Inc();
    return Status::ResourceExhausted(
        "memory " + std::to_string(memory) + " bytes exceeds pool \"" +
        pool_name + "\" quota " +
        std::to_string(pool.cfg.memory_quota_bytes));
  }
  if (options_.max_queued_jobs > 0 &&
      queued_jobs_ >= options_.max_queued_jobs) {
    pool.rejected->Inc();
    return Status::ResourceExhausted(
        "job queue full (" + std::to_string(queued_jobs_) + " queued)");
  }
  std::string id = sub.job_id.empty() ? UniqueJobId(sub.job_name) : sub.job_id;
  if (jobs_.count(id) != 0) {
    pool.rejected->Inc();
    return Status::InvalidArgument("duplicate job id: " + id);
  }
  if (sub.encoded_splits.empty()) {
    sub.encoded_splits.resize(sub.splits.size());
    for (size_t m = 0; m < sub.splits.size(); ++m) {
      net::EncodeKVList(sub.splits[m], &sub.encoded_splits[m]);
    }
    sub.splits.clear();
    sub.splits.shrink_to_fit();
  }
  auto job = std::make_unique<Job>();
  job->id = id;
  job->pool_name = pool_name;
  job->sub = std::move(sub);
  job->granted_slots = granted;
  job->cost = std::max(1, granted);
  job->charged_memory = memory;
  job->submit_nanos = NowNanos();
  pool.queue.push_back(job.get());
  ++queued_jobs_;
  pool.queued_gauge->Add(1);
  pool.submitted->Inc();
  submit_order_.push_back(id);
  jobs_.emplace(id, std::move(job));
  if (job_id != nullptr) *job_id = id;
  cv_.notify_all();
  return Status::OK();
}

void JobService::SchedulerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    // GC terminal runners so a long-lived daemon never accumulates
    // joinable threads. One join per pass keeps the lock gaps short.
    for (auto& entry : jobs_) {
      Job* job = entry.second.get();
      if (!job->reaped && IsTerminalState(job->state) &&
          job->runner.joinable()) {
        job->reaped = true;
        std::thread runner = std::move(job->runner);
        lock.unlock();
        runner.join();
        lock.lock();
        break;  // the map may have grown while unlocked; rescan next pass
      }
    }
    const bool workers_ready =
        options_.min_workers <= 0 ||
        coord_->live_workers() >= options_.min_workers;
    while (workers_ready && !stopping_) {
      // Stride pick: the eligible pool with the smallest pass. Strict <
      // plus name-ordered iteration makes ties deterministic; only queue
      // heads are considered (strict FIFO within a pool).
      Pool* best = nullptr;
      for (auto& entry : pools_) {
        Pool* pool = entry.second.get();
        if (pool->queue.empty()) continue;
        Job* head = pool->queue.front();
        if (options_.max_concurrent_jobs > 0 &&
            running_jobs_ >= options_.max_concurrent_jobs) {
          continue;
        }
        if (pool->cfg.max_running_jobs > 0 &&
            pool->running >= pool->cfg.max_running_jobs) {
          continue;
        }
        if (pool->cfg.cpu_slots_quota > 0 &&
            pool->used_slots + head->granted_slots >
                pool->cfg.cpu_slots_quota) {
          continue;
        }
        if (pool->cfg.memory_quota_bytes > 0 &&
            pool->used_memory + head->charged_memory >
                pool->cfg.memory_quota_bytes) {
          continue;
        }
        if (best == nullptr || pool->pass < best->pass) best = pool;
      }
      if (best == nullptr) break;
      Job* job = best->queue.front();
      best->queue.pop_front();
      --queued_jobs_;
      best->queued_gauge->Sub(1);
      job->state = "admitted";
      job->dispatch_seq = next_dispatch_seq_++;
      best->pass += static_cast<double>(job->cost) / best->cfg.weight;
      ++best->running;
      ++running_jobs_;
      best->used_slots += job->granted_slots;
      best->used_memory += job->charged_memory;
      best->running_gauge->Add(1);
      best->share_gauge->Set(best->used_slots);
      job->runner = std::thread(&JobService::RunJob, this, best, job);
    }
    cv_.wait_for(lock, std::chrono::milliseconds(20));
  }
}

void JobService::RunJob(Pool* pool, Job* job) {
  DistJobOptions opts;
  opts.job_name = job->sub.job_name;
  opts.params = job->sub.params;
  opts.collect_outputs = job->sub.collect_outputs;
  opts.max_task_attempts = job->sub.max_task_attempts > 0
                               ? job->sub.max_task_attempts
                               : options_.default_max_task_attempts;
  opts.retry_backoff_nanos = job->sub.retry_backoff_nanos > 0
                                 ? job->sub.retry_backoff_nanos
                                 : options_.default_retry_backoff_nanos;
  opts.network_mb_per_s = job->sub.network_mb_per_s;
  opts.readahead_blocks = job->sub.readahead_blocks;
  opts.job_id = job->id;
  opts.dispatch_threads = job->granted_slots;  // 0 = legacy auto sizing
  opts.speculative_execution = job->sub.speculation < 0
                                   ? options_.speculative_execution
                                   : job->sub.speculation != 0;
  opts.speculation_slowness_factor = options_.speculation_slowness_factor;
  opts.speculation_min_elapsed_nanos = options_.speculation_min_elapsed_nanos;
  opts.speculation_force_after_nanos = job->sub.speculation_force_after_nanos;

  {
    std::lock_guard<std::mutex> lock(mu_);
    job->state = "running";
    job->start_nanos = NowNanos();
  }

  ExecHooks hooks;
  hooks.encoded_splits = &job->sub.encoded_splits;
  hooks.abort = &job->abort_requested;
  hooks.on_status = [job](const JobStatusSnapshot& s) {
    job->maps_total.store(s.maps_total, std::memory_order_relaxed);
    job->maps_done.store(s.maps_done, std::memory_order_relaxed);
    job->reduces_total.store(s.reduces_total, std::memory_order_relaxed);
    job->reduces_done.store(s.reduces_done, std::memory_order_relaxed);
    job->map_reruns.store(s.map_reruns, std::memory_order_relaxed);
  };
  DistJobResult result;
  const Status st = ExecuteDistJob(coord_, opts, hooks, &result);
  const uint64_t finish = NowNanos();

  {
    std::lock_guard<std::mutex> lock(mu_);
    job->finish_nanos = finish;
    job->final_status = st;
    if (st.ok()) {
      job->state = "succeeded";
    } else if (job->abort_requested.load(std::memory_order_acquire)) {
      job->state = "aborted";
      pool->aborted->Inc();
    } else {
      job->state = "failed";
    }
    if (st.ok() && job->sub.collect_outputs) {
      // The multiset hash is additive, so summing per-partition hashes
      // equals hashing the flattened output — no copy needed.
      for (const auto& part : result.outputs) {
        job->output_hash += OutputMultisetHash(part);
        job->output_records += part.size();
      }
    }
    job->result = std::move(result);
    job->have_result = true;
    --pool->running;
    --running_jobs_;
    pool->used_slots -= job->granted_slots;
    pool->used_memory -= job->charged_memory;
    pool->running_gauge->Sub(1);
    pool->share_gauge->Set(pool->used_slots);
    pool->completed->Inc();
    pool->busy_slot_nanos +=
        static_cast<uint64_t>(job->cost) * (finish - job->start_nanos);
    ++pool->jobs_completed;
  }
  if (options_.scrub_on_terminal) {
    coord_->BroadcastJobFrame(net::kScrubJob, job->id);
  }
  cv_.notify_all();
}

Status JobService::Wait(const std::string& job_id, DistJobResult* result) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    return Status::NotFound("unknown job: " + job_id);
  }
  Job* job = it->second.get();
  cv_.wait(lock, [&] { return IsTerminalState(job->state); });
  if (result != nullptr) {
    *result = std::move(job->result);
    job->result = DistJobResult();
    job->have_result = false;
  }
  return job->final_status;
}

Status JobService::Abort(const std::string& job_id) {
  std::string cancel_id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(job_id);
    if (it == jobs_.end()) {
      return Status::NotFound("unknown job: " + job_id);
    }
    Job* job = it->second.get();
    if (IsTerminalState(job->state)) {
      return Status::InvalidArgument("job " + job_id +
                                     " is already terminal (" + job->state +
                                     ")");
    }
    if (job->state == "queued") {
      Pool& pool = *pools_[job->pool_name];
      for (auto qit = pool.queue.begin(); qit != pool.queue.end(); ++qit) {
        if (*qit == job) {
          pool.queue.erase(qit);
          break;
        }
      }
      --queued_jobs_;
      pool.queued_gauge->Sub(1);
      pool.completed->Inc();
      pool.aborted->Inc();
      ++pool.jobs_completed;
      job->state = "aborted";
      job->finish_nanos = NowNanos();
      job->final_status = Status::Internal("aborted while queued");
      cv_.notify_all();
      return Status::OK();
    }
    // Admitted or running: flip the flag the driver checks at every task
    // boundary, then cancel the in-flight worker attempts cluster-wide.
    job->abort_requested.store(true, std::memory_order_release);
    cancel_id = job->id;
  }
  coord_->BroadcastJobFrame(net::kCancelJob, cancel_id);
  return Status::OK();
}

net::JobStatusWire JobService::RowOfLocked(const Job& job) const {
  net::JobStatusWire row;
  row.job_id = job.id;
  row.pool = job.pool_name;
  row.job_name = job.sub.job_name;
  row.state = job.state;
  if (job.state == "queued") {
    auto it = pools_.find(job.pool_name);
    if (it != pools_.end()) {
      const auto& queue = it->second->queue;
      for (size_t i = 0; i < queue.size(); ++i) {
        if (queue[i] == &job) {
          row.queue_position = static_cast<uint32_t>(i + 1);
          break;
        }
      }
    }
  }
  row.cpu_slots = static_cast<uint32_t>(job.granted_slots);
  row.maps_total = job.maps_total.load(std::memory_order_relaxed);
  row.maps_done = job.maps_done.load(std::memory_order_relaxed);
  row.reduces_total = job.reduces_total.load(std::memory_order_relaxed);
  row.reduces_done = job.reduces_done.load(std::memory_order_relaxed);
  row.map_reruns = job.map_reruns.load(std::memory_order_relaxed);
  if (IsTerminalState(job.state)) {
    row.status_code = static_cast<int32_t>(job.final_status.code());
    row.status_msg = job.final_status.message();
  }
  row.output_hash = job.output_hash;
  row.output_records = job.output_records;
  row.submit_nanos = job.submit_nanos;
  row.start_nanos = job.start_nanos;
  row.finish_nanos = job.finish_nanos;
  row.dispatch_seq = job.dispatch_seq;
  return row;
}

Status JobService::GetJob(const std::string& job_id,
                          net::JobStatusWire* row) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    return Status::NotFound("unknown job: " + job_id);
  }
  *row = RowOfLocked(*it->second);
  return Status::OK();
}

std::vector<net::JobStatusWire> JobService::ListJobs() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<net::JobStatusWire> rows;
  rows.reserve(submit_order_.size());
  for (const std::string& id : submit_order_) {
    auto it = jobs_.find(id);
    if (it != jobs_.end()) rows.push_back(RowOfLocked(*it->second));
  }
  return rows;
}

std::string JobService::JobsJson() const {
  const std::vector<net::JobStatusWire> rows = ListJobs();
  std::string out = "{\"jobs\":[";
  bool first = true;
  for (const net::JobStatusWire& row : rows) {
    if (!first) out += ",";
    first = false;
    out += "{\"job_id\":\"";
    AppendJsonEscaped(row.job_id, &out);
    out += "\",\"pool\":\"";
    AppendJsonEscaped(row.pool, &out);
    out += "\",\"job_name\":\"";
    AppendJsonEscaped(row.job_name, &out);
    out += "\",\"state\":\"";
    AppendJsonEscaped(row.state, &out);
    out += "\",\"queue_position\":" + std::to_string(row.queue_position);
    out += ",\"cpu_slots\":" + std::to_string(row.cpu_slots);
    out += ",\"maps_total\":" + std::to_string(row.maps_total);
    out += ",\"maps_done\":" + std::to_string(row.maps_done);
    out += ",\"reduces_total\":" + std::to_string(row.reduces_total);
    out += ",\"reduces_done\":" + std::to_string(row.reduces_done);
    out += ",\"map_reruns\":" + std::to_string(row.map_reruns);
    out += ",\"status_code\":" + std::to_string(row.status_code);
    out += ",\"status_msg\":\"";
    AppendJsonEscaped(row.status_msg, &out);
    out += "\",\"output_hash\":\"" + std::to_string(row.output_hash);
    out += "\",\"output_records\":" + std::to_string(row.output_records);
    out += ",\"submit_nanos\":" + std::to_string(row.submit_nanos);
    out += ",\"start_nanos\":" + std::to_string(row.start_nanos);
    out += ",\"finish_nanos\":" + std::to_string(row.finish_nanos);
    out += ",\"dispatch_seq\":" + std::to_string(row.dispatch_seq);
    out += "}";
  }
  out += "]}";
  return out;
}

std::vector<JobService::PoolUsage> JobService::PoolUsageSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PoolUsage> usage;
  usage.reserve(pools_.size());
  for (const auto& entry : pools_) {
    PoolUsage u;
    u.pool = entry.first;
    u.weight = entry.second->cfg.weight;
    u.busy_slot_nanos = entry.second->busy_slot_nanos;
    u.jobs_completed = entry.second->jobs_completed;
    usage.push_back(std::move(u));
  }
  return usage;
}

// --- RPC plane -----------------------------------------------------------

Status JobService::Serve(const std::string& addr) {
  if (listener_ != nullptr) return Status::Internal("already serving");
  ANTIMR_RETURN_NOT_OK(coord_->transport()->Listen(addr, &listener_));
  serve_addr_ = listener_->addr();
  accept_thread_ = std::thread(&JobService::AcceptLoop, this);
  ANTIMR_LOG(kInfo) << "job service listening on " << serve_addr_;
  return Status::OK();
}

void JobService::AcceptLoop() {
  for (;;) {
    std::unique_ptr<net::Conn> conn;
    if (!listener_->Accept(&conn).ok()) return;  // listener closed
    net::Conn* raw = conn.get();
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.push_back(std::move(conn));
    conn_threads_.emplace_back([this, raw] { ServeConn(raw); });
  }
}

void JobService::ServeConn(net::Conn* conn) {
  for (;;) {
    uint8_t type = 0;
    std::string payload;
    if (!net::ReadFrame(conn, &type, &payload).ok()) return;
    std::string resp;
    uint8_t resp_type = 0;
    switch (type) {
      case net::kSubmitJob: {
        net::SubmitJobMsg msg;
        Status st = net::DecodeSubmitJob(payload, &msg);
        net::SubmitJobAckMsg ack;
        if (st.ok()) {
          JobSubmission sub;
          sub.pool = msg.pool;
          sub.job_name = msg.job_name;
          sub.params = std::move(msg.params);
          sub.encoded_splits = std::move(msg.splits);
          sub.job_id = msg.job_id;
          sub.cpu_slots = static_cast<int>(msg.cpu_slots);
          sub.memory_bytes = msg.memory_bytes;
          sub.collect_outputs = msg.collect_output;
          sub.max_task_attempts = static_cast<int>(msg.max_task_attempts);
          sub.network_mb_per_s = msg.network_mb_per_s;
          sub.readahead_blocks = msg.readahead_blocks;
          std::string id;
          st = Submit(std::move(sub), &id);
          ack.job_id = id;
        }
        ack.status_code = static_cast<int32_t>(st.code());
        ack.status_msg = st.message();
        net::EncodeSubmitJobAck(ack, &resp);
        resp_type = net::kSubmitJobAck;
        break;
      }
      case net::kJobStatusReq: {
        net::JobIdMsg msg;
        Status st = net::DecodeJobId(payload, &msg);
        net::JobStatusRespMsg out;
        if (st.ok()) st = GetJob(msg.job_id, &out.job);
        out.status_code = static_cast<int32_t>(st.code());
        out.status_msg = st.message();
        net::EncodeJobStatusResp(out, &resp);
        resp_type = net::kJobStatusResp;
        break;
      }
      case net::kAbortJob: {
        net::JobIdMsg msg;
        Status st = net::DecodeJobId(payload, &msg);
        if (st.ok()) st = Abort(msg.job_id);
        net::JobOpAckMsg ack;
        ack.status_code = static_cast<int32_t>(st.code());
        ack.status_msg = st.message();
        net::EncodeJobOpAck(ack, &resp);
        resp_type = net::kJobOpAck;
        break;
      }
      case net::kListJobsReq: {
        net::ListJobsRespMsg out;
        out.jobs = ListJobs();
        net::EncodeListJobsResp(out, &resp);
        resp_type = net::kListJobsResp;
        break;
      }
      default:
        return;  // unknown frame: drop the connection
    }
    if (!net::WriteFrame(conn, resp_type, resp).ok()) return;
  }
}

void JobService::Stop() {
  std::vector<std::string> cancel_ids;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    for (auto& entry : pools_) {
      Pool* pool = entry.second.get();
      for (Job* job : pool->queue) {
        job->state = "aborted";
        job->finish_nanos = NowNanos();
        job->final_status = Status::Internal("job service stopping");
        --queued_jobs_;
        pool->queued_gauge->Sub(1);
        pool->completed->Inc();
        pool->aborted->Inc();
        ++pool->jobs_completed;
      }
      pool->queue.clear();
    }
    for (auto& entry : jobs_) {
      Job* job = entry.second.get();
      if (job->state == "admitted" || job->state == "running") {
        job->abort_requested.store(true, std::memory_order_release);
        cancel_ids.push_back(job->id);
      }
    }
  }
  cv_.notify_all();
  if (scheduler_.joinable()) scheduler_.join();
  for (const std::string& id : cancel_ids) {
    coord_->BroadcastJobFrame(net::kCancelJob, id);
  }
  // Join every runner the scheduler had not reaped yet. Runners always
  // terminate: their abort flags are set and a dead cluster surfaces as
  // task failures.
  std::vector<std::thread> runners;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& entry : jobs_) {
      Job* job = entry.second.get();
      if (!job->reaped && job->runner.joinable()) {
        job->reaped = true;
        runners.push_back(std::move(job->runner));
      }
    }
  }
  for (std::thread& runner : runners) runner.join();
  // RPC plane: closing the listener unblocks Accept, closing the conns
  // unblocks their ReadFrames. Accept is joined before the conns close so
  // no new conn can slip past the sweep.
  if (listener_ != nullptr) listener_->Close();
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& conn : conns_) conn->Close();
  }
  for (std::thread& t : conn_threads_) t.join();
}

// --- JobServiceClient ----------------------------------------------------

JobServiceClient::JobServiceClient(net::Transport* transport, std::string addr)
    : transport_(transport), addr_(std::move(addr)) {}

Status JobServiceClient::RoundTrip(uint8_t req_type,
                                   const std::string& req_payload,
                                   uint8_t want_resp_type,
                                   std::string* resp_payload) {
  std::unique_ptr<net::Conn> conn;
  ANTIMR_RETURN_NOT_OK(transport_->Dial(addr_, &conn));
  ANTIMR_RETURN_NOT_OK(net::WriteFrame(conn.get(), req_type, req_payload));
  uint8_t type = 0;
  ANTIMR_RETURN_NOT_OK(net::ReadFrame(conn.get(), &type, resp_payload));
  if (type != want_resp_type) {
    return Status::IOError("unexpected frame type " + std::to_string(type) +
                           " from job service (want " +
                           std::to_string(want_resp_type) + ")");
  }
  return Status::OK();
}

Status JobServiceClient::Submit(const net::SubmitJobMsg& msg,
                                std::string* job_id) {
  std::string req, resp;
  net::EncodeSubmitJob(msg, &req);
  ANTIMR_RETURN_NOT_OK(RoundTrip(net::kSubmitJob, req, net::kSubmitJobAck,
                                 &resp));
  net::SubmitJobAckMsg ack;
  ANTIMR_RETURN_NOT_OK(net::DecodeSubmitJobAck(resp, &ack));
  if (job_id != nullptr) *job_id = ack.job_id;
  return net::StatusFromWire(ack.status_code, ack.status_msg);
}

Status JobServiceClient::GetStatus(const std::string& job_id,
                                   net::JobStatusWire* row) {
  net::JobIdMsg msg;
  msg.job_id = job_id;
  std::string req, resp;
  net::EncodeJobId(msg, &req);
  ANTIMR_RETURN_NOT_OK(RoundTrip(net::kJobStatusReq, req, net::kJobStatusResp,
                                 &resp));
  net::JobStatusRespMsg out;
  ANTIMR_RETURN_NOT_OK(net::DecodeJobStatusResp(resp, &out));
  *row = std::move(out.job);
  return net::StatusFromWire(out.status_code, out.status_msg);
}

Status JobServiceClient::Abort(const std::string& job_id) {
  net::JobIdMsg msg;
  msg.job_id = job_id;
  std::string req, resp;
  net::EncodeJobId(msg, &req);
  ANTIMR_RETURN_NOT_OK(RoundTrip(net::kAbortJob, req, net::kJobOpAck, &resp));
  net::JobOpAckMsg ack;
  ANTIMR_RETURN_NOT_OK(net::DecodeJobOpAck(resp, &ack));
  return net::StatusFromWire(ack.status_code, ack.status_msg);
}

Status JobServiceClient::List(std::vector<net::JobStatusWire>* jobs) {
  std::string req, resp;
  ANTIMR_RETURN_NOT_OK(RoundTrip(net::kListJobsReq, req, net::kListJobsResp,
                                 &resp));
  net::ListJobsRespMsg out;
  ANTIMR_RETURN_NOT_OK(net::DecodeListJobsResp(resp, &out));
  *jobs = std::move(out.jobs);
  return net::StatusFromWire(out.status_code, out.status_msg);
}

// --- legacy one-shot entry point -----------------------------------------

Status RunDistributedJob(Coordinator* coord, const DistJobOptions& options,
                         DistJobResult* result) {
  JobServiceOptions sopts;
  sopts.pools.push_back(PoolConfig());  // one unlimited "default" pool
  sopts.max_concurrent_jobs = 1;
  sopts.max_queued_jobs = 1;
  sopts.min_workers = 0;  // legacy semantics: dispatch blind, retries cope
  sopts.default_cpu_slots = 0;  // legacy auto dispatch sizing
  sopts.default_max_task_attempts = options.max_task_attempts;
  sopts.default_retry_backoff_nanos = options.retry_backoff_nanos;
  sopts.speculation_slowness_factor = options.speculation_slowness_factor;
  sopts.speculation_min_elapsed_nanos = options.speculation_min_elapsed_nanos;
  JobService service(coord, sopts);

  JobSubmission sub;
  sub.job_name = options.job_name;
  sub.params = options.params;
  sub.job_id = options.job_id;
  sub.cpu_slots = options.dispatch_threads;  // 0 = auto
  sub.collect_outputs = options.collect_outputs;
  sub.max_task_attempts = options.max_task_attempts;
  sub.retry_backoff_nanos = options.retry_backoff_nanos;
  sub.network_mb_per_s = options.network_mb_per_s;
  sub.readahead_blocks = options.readahead_blocks;
  sub.speculation = options.speculative_execution ? 1 : 0;
  sub.speculation_force_after_nanos = options.speculation_force_after_nanos;
  sub.encoded_splits.resize(options.splits.size());
  for (size_t m = 0; m < options.splits.size(); ++m) {
    net::EncodeKVList(options.splits[m], &sub.encoded_splits[m]);
  }

  std::string job_id;
  ANTIMR_RETURN_NOT_OK(service.Submit(std::move(sub), &job_id));
  return service.Wait(job_id, result);
}

}  // namespace engine
}  // namespace antimr
