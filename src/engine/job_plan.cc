#include "engine/job_plan.h"

#include <utility>

namespace antimr {
namespace engine {

Status JobPlan::AddInput(const std::string& dataset,
                         std::vector<InputSplit> splits) {
  if (dataset.empty()) {
    return Status::InvalidArgument("JobPlan: input dataset name is empty");
  }
  if (external_inputs_.count(dataset) > 0) {
    return Status::InvalidArgument("JobPlan: duplicate input dataset " +
                                   dataset);
  }
  external_inputs_.emplace(dataset, std::move(splits));
  return Status::OK();
}

int JobPlan::AddStage(Stage stage) {
  stages_.push_back(std::move(stage));
  return static_cast<int>(stages_.size()) - 1;
}

int JobPlan::ProducerOf(const std::string& dataset) const {
  for (size_t i = 0; i < stages_.size(); ++i) {
    if (stages_[i].output == dataset) return static_cast<int>(i);
  }
  return -1;
}

int JobPlan::ConsumerCount(const std::string& dataset) const {
  int count = 0;
  for (const Stage& stage : stages_) {
    for (const std::string& input : stage.inputs) {
      if (input == dataset) ++count;
    }
  }
  return count;
}

bool JobPlan::IsSink(int stage) const {
  return ConsumerCount(stages_[static_cast<size_t>(stage)].output) == 0;
}

Status JobPlan::Validate() const {
  if (stages_.empty()) {
    return Status::InvalidArgument("JobPlan: no stages");
  }
  for (size_t i = 0; i < stages_.size(); ++i) {
    const Stage& stage = stages_[i];
    ANTIMR_RETURN_NOT_OK(stage.spec.Validate());
    // Plan-time partitioner check: a bad partition count must surface here
    // as a permanent InvalidArgument, not as modulo-by-zero UB mid-task.
    ANTIMR_RETURN_NOT_OK(stage.spec.partitioner->ValidatePartitions(
        stage.spec.num_reduce_tasks));
    if (stage.output.empty()) {
      return Status::InvalidArgument("JobPlan: stage " + stage.name +
                                     " has no output dataset");
    }
    if (stage.inputs.empty()) {
      return Status::InvalidArgument("JobPlan: stage " + stage.name +
                                     " has no input datasets");
    }
    if (external_inputs_.count(stage.output) > 0) {
      return Status::InvalidArgument("JobPlan: dataset " + stage.output +
                                     " is both an external input and the "
                                     "output of stage " +
                                     stage.name);
    }
    for (size_t j = i + 1; j < stages_.size(); ++j) {
      if (stages_[j].output == stage.output) {
        return Status::InvalidArgument("JobPlan: dataset " + stage.output +
                                       " has two producing stages");
      }
    }
    for (const std::string& input : stage.inputs) {
      if (external_inputs_.count(input) == 0 && ProducerOf(input) < 0) {
        return Status::InvalidArgument("JobPlan: stage " + stage.name +
                                       " reads unknown dataset " + input);
      }
    }
  }
  std::vector<int> order;
  return TopologicalOrder(&order);
}

Status JobPlan::TopologicalOrder(std::vector<int>* order) const {
  // Kahn's algorithm over stage->stage edges induced by dataset wiring.
  const size_t n = stages_.size();
  std::vector<int> in_degree(n, 0);
  std::vector<std::vector<int>> out_edges(n);
  for (size_t i = 0; i < n; ++i) {
    for (const std::string& input : stages_[i].inputs) {
      const int producer = ProducerOf(input);
      if (producer >= 0) {
        if (producer == static_cast<int>(i)) {
          return Status::InvalidArgument("JobPlan: stage " + stages_[i].name +
                                         " consumes its own output");
        }
        out_edges[static_cast<size_t>(producer)].push_back(
            static_cast<int>(i));
        ++in_degree[i];
      }
    }
  }
  order->clear();
  order->reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (in_degree[i] == 0) order->push_back(static_cast<int>(i));
  }
  for (size_t head = 0; head < order->size(); ++head) {
    for (int next : out_edges[static_cast<size_t>((*order)[head])]) {
      if (--in_degree[static_cast<size_t>(next)] == 0) order->push_back(next);
    }
  }
  if (order->size() != n) {
    return Status::InvalidArgument("JobPlan: stage graph has a cycle");
  }
  return Status::OK();
}

}  // namespace engine
}  // namespace antimr
