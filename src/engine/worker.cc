#include "engine/worker.h"

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "engine/job_registry.h"
#include "mr/map_task.h"
#include "mr/reduce_task.h"
#include "net/frame.h"
#include "obs/federation.h"
#include "obs/trace.h"

namespace antimr {
namespace engine {

bool JobIdInScope(const std::string& id, const std::string& scope) {
  if (scope.empty()) return false;
  if (id.size() < scope.size() || id.compare(0, scope.size(), scope) != 0) {
    return false;
  }
  if (id.size() == scope.size()) return true;
  // Only the two delimiters the engine itself appends extend a scope:
  // "<scope>/" (stored files) and "<scope>_a" (attempt-scoped map ids).
  return id[scope.size()] == '/' ||
         id.compare(scope.size(), 2, "_a") == 0;
}

Worker::Worker(net::Transport* transport, const WorkerOptions& options)
    : transport_(transport),
      options_(options),
      owned_env_(options.env == nullptr ? NewMemEnv() : nullptr),
      env_(options.env != nullptr ? options.env : owned_env_.get()),
      shuffle_server_(transport, env_),
      pool_(std::max(1, options.slots), options.name) {
  shuffle_server_.set_trace_sink([this](std::string&& chunk) {
    std::lock_guard<std::mutex> lock(trace_mu_);
    pending_trace_.append(chunk);
  });
}

Worker::~Worker() { Stop(); }

Status Worker::Start(const std::string& coordinator_addr,
                     const std::string& shuffle_addr) {
  ANTIMR_RETURN_NOT_OK(shuffle_server_.Start(shuffle_addr));
  ANTIMR_RETURN_NOT_OK(transport_->Dial(coordinator_addr, &conn_));

  net::RegisterMsg reg;
  reg.worker_name = options_.name;
  reg.shuffle_addr = shuffle_server_.addr();
  reg.slots = static_cast<uint32_t>(std::max(1, options_.slots));
  std::string payload;
  net::EncodeRegister(reg, &payload);
  ANTIMR_RETURN_NOT_OK(net::WriteFrame(conn_.get(), net::kRegister, payload));

  uint8_t type = 0;
  ANTIMR_RETURN_NOT_OK(net::ReadFrame(conn_.get(), &type, &payload));
  if (type != net::kRegisterAck) {
    return Status::IOError("expected RegisterAck, got frame type " +
                           std::to_string(type));
  }
  net::RegisterAckMsg ack;
  ANTIMR_RETURN_NOT_OK(net::DecodeRegisterAck(payload, &ack));
  id_ = ack.worker_id;
  ANTIMR_LOG(kInfo) << "worker " << options_.name << " registered as " << id_
                    << ", shuffle at " << shuffle_server_.addr();

  receiver_ = std::thread([this] { ReceiveLoop(); });
  heartbeat_ = std::thread([this] { HeartbeatLoop(); });
  return Status::OK();
}

void Worker::ReceiveLoop() {
  for (;;) {
    uint8_t type = 0;
    std::string payload;
    if (!net::ReadFrame(conn_.get(), &type, &payload).ok()) break;
    if (type == net::kTaskAssign) {
      auto assign = std::make_shared<net::TaskAssignMsg>();
      if (!net::DecodeTaskAssign(payload, assign.get()).ok()) break;
      inflight_tasks_.fetch_add(1, std::memory_order_relaxed);
      pool_.Submit([this, assign] {
        Execute(*assign);
        // Notify while holding mu_: Stop's drain-wait may be the last thing
        // keeping this Worker alive, and it can only re-check its predicate
        // once we release the lock — i.e. after notify_all has returned, so
        // cv_ is never destroyed under a thread still inside it.
        std::lock_guard<std::mutex> lock(mu_);
        inflight_tasks_.fetch_sub(1, std::memory_order_relaxed);
        cv_.notify_all();
      });
    } else if (type == net::kCancelTask) {
      net::CancelTaskMsg cancel;
      if (!net::DecodeCancelTask(payload, &cancel).ok()) break;
      std::lock_guard<std::mutex> lock(tasks_mu_);
      auto it = running_tasks_.find(cancel.rpc_id);
      // Unknown rpc_id: the task already finished (its result is in flight)
      // or never started here — either way there is nothing to cancel.
      if (it != running_tasks_.end()) it->second.control->RequestCancel();
    } else if (type == net::kCancelJob) {
      net::JobIdMsg msg;
      if (!net::DecodeJobId(payload, &msg).ok()) break;
      CancelJobTasks(msg.job_id);
    } else if (type == net::kScrubJob) {
      net::JobIdMsg msg;
      if (!net::DecodeJobId(payload, &msg).ok()) break;
      ScrubJobFiles(msg.job_id);
    } else if (type == net::kShutdown) {
      if (options_.exclusive_process && obs::kTraceCompiled &&
          obs::TraceEnabled()) {
        // Last chance to ship spans not drained at a task boundary
        // (handler-thread leftovers, heartbeat-side instants). DrainAll is
        // safe here only because an exclusive worker has no co-resident
        // tracer users mid-span.
        net::TraceChunkMsg msg;
        msg.worker_id = id_;
        obs::Tracer::Global().DrainAll(&msg.chunk);
        {
          std::lock_guard<std::mutex> lock(trace_mu_);
          msg.chunk.append(pending_trace_);
          pending_trace_.clear();
        }
        if (!msg.chunk.empty()) {
          std::string out;
          net::EncodeTraceChunk(msg, &out);
          std::lock_guard<std::mutex> lock(write_mu_);
          net::WriteFrame(conn_.get(), net::kTraceChunk, out);  // best effort
        }
      }
      break;
    }
    // Other frame types are ignored (forward compatibility).
  }
  // Close our end so the coordinator's receiver sees a prompt, clean EOF
  // (its Stop waits briefly for exactly that before cutting conns itself).
  if (conn_ != nullptr) conn_->Close();
  {
    std::lock_guard<std::mutex> lock(mu_);
    done_ = true;
  }
  cv_.notify_all();
}

void Worker::CancelJobTasks(const std::string& scope) {
  std::lock_guard<std::mutex> lock(tasks_mu_);
  for (auto& [rpc_id, task] : running_tasks_) {
    if (JobIdInScope(task.job_id, scope)) task.control->RequestCancel();
  }
}

void Worker::ScrubJobFiles(const std::string& scope) {
  std::vector<std::string> names;
  if (!env_->ListFiles(&names).ok()) return;
  int deleted = 0;
  for (const std::string& name : names) {
    if (JobIdInScope(name, scope)) {
      if (env_->DeleteFile(name).ok()) ++deleted;
    }
  }
  if (deleted > 0) {
    ANTIMR_LOG(kInfo) << "worker " << options_.name << " scrubbed " << deleted
                      << " files of job " << scope;
  }
}

void Worker::HeartbeatLoop() {
  uint64_t seq = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (cv_.wait_for(
              lock, std::chrono::nanoseconds(options_.heartbeat_period_nanos),
              [this] { return done_ || stopped_ || crashed(); })) {
        return;
      }
    }
    net::HeartbeatMsg hb;
    hb.worker_id = id_;
    hb.seq = ++seq;
    {
      // Per-task progress rides on every beat; the coordinator's speculation
      // pass uses it to spare nearly-done stragglers a backup attempt.
      std::lock_guard<std::mutex> lock(tasks_mu_);
      for (const auto& entry : running_tasks_) {
        net::TaskProgress p;
        p.rpc_id = entry.first;
        p.permille = entry.second.control->progress_permille.load(
            std::memory_order_relaxed);
        hb.task_progress.push_back(p);
      }
    }
    // Every beat carries the registry's full absolute state — the
    // federation protocol's idempotency comes from exactly this.
    obs::MetricsSnapshot snap;
    obs::SnapshotRegistry(obs::MetricsRegistry::Global(), obs::ProcessUid(),
                          &snap);
    obs::EncodeMetricsSnapshot(snap, &hb.metrics_snapshot);
    std::string payload;
    net::EncodeHeartbeat(hb, &payload);
    std::lock_guard<std::mutex> lock(write_mu_);
    // Errors are ignored: a dead conn also wakes the receiver, which owns
    // the shutdown transition.
    net::WriteFrame(conn_.get(), net::kHeartbeat, payload);
  }
}

void Worker::Execute(const net::TaskAssignMsg& assign) {
  net::TaskResultMsg result;
  result.rpc_id = assign.rpc_id;
  // The coordinator's trace session extends to us through the assignment:
  // start capturing on first sight (idempotent), so exclusive worker
  // processes need no out-of-band tracing switch.
  if (obs::kTraceCompiled && assign.trace_enabled && !obs::TraceEnabled()) {
    obs::Tracer::Global().Start();
  }
  auto control = std::make_shared<TaskControl>();
  if (assign.rpc_id != 0) {
    std::lock_guard<std::mutex> lock(tasks_mu_);
    running_tasks_[assign.rpc_id] = RunningTask{control, assign.job_id};
  }
  const Status st = ExecuteTask(assign, control.get(), &result);
  if (assign.rpc_id != 0) {
    std::lock_guard<std::mutex> lock(tasks_mu_);
    running_tasks_.erase(assign.rpc_id);
  }
  if (!st.ok()) {
    result.status_code = static_cast<int32_t>(st.code());
    result.status_msg = st.message();
  }
  if (obs::kTraceCompiled && assign.trace_enabled && obs::TraceEnabled()) {
    // Task boundary: no span is open on this pool thread, so the chunk is
    // balanced. Handler-thread chunks parked by the shuffle sink ride along.
    obs::Tracer::Global().DrainThisThread(&result.trace_chunk);
    std::lock_guard<std::mutex> lock(trace_mu_);
    if (!pending_trace_.empty()) {
      result.trace_chunk.append(pending_trace_);
      pending_trace_.clear();
    }
  }
  // A crashed worker is a dead process: it reports nothing, and the
  // coordinator learns of the loss from the closed conn / silent heartbeats.
  if (crashed()) return;
  std::string payload;
  net::EncodeTaskResult(result, &payload);
  std::lock_guard<std::mutex> lock(write_mu_);
  net::WriteFrame(conn_.get(), net::kTaskResult, payload);  // best effort
}

Status Worker::ExecuteTask(const net::TaskAssignMsg& assign,
                           TaskControl* control, net::TaskResultMsg* result) {
  JobSpec spec;
  ANTIMR_RETURN_NOT_OK(
      BuildRegisteredJob(assign.job_name, assign.params, &spec));
  const int index = static_cast<int>(assign.task_index);
  const uint64_t cpu_start = ThreadCpuNanos();

  if (assign.kind == net::TaskKind::kMap) {
    ANTIMR_TRACE_SPAN_DYN("task", "dist_map:" + assign.job_id + ":" +
                                      std::to_string(index) + "#a" +
                                      std::to_string(assign.attempt));
    if (obs::kTraceCompiled && obs::TraceEnabled() && assign.rpc_id != 0) {
      // Arrow head of the coordinator's dispatch FlowStart (id = rpc_id),
      // recorded inside the task span so viewers can anchor it.
      obs::Tracer::Global().FlowEnd("dispatch", "task_dispatch",
                                    assign.rpc_id);
    }
    if (on_map_start) on_map_start(index, assign.attempt);
    if (crashed()) return Status::IOError("worker crashed");
    std::vector<KV> records;
    ANTIMR_RETURN_NOT_OK(net::DecodeKVList(assign.split_records, &records));
    const uint64_t total_records = records.size();
    MapTaskResult map_result;
    ANTIMR_RETURN_NOT_OK(RunMapTask(spec, assign.job_id, index,
                                    MakeSplit(std::move(records)), env_,
                                    &map_result, control, total_records));
    result->segment_files = std::move(map_result.segment_files);
    net::EncodeJobMetrics(map_result.metrics, &result->metrics);
  } else {
    ANTIMR_TRACE_SPAN_DYN("task", "dist_reduce:" + assign.job_id + ":" +
                                       std::to_string(index) + "#a" +
                                       std::to_string(assign.attempt));
    if (obs::kTraceCompiled && obs::TraceEnabled() && assign.rpc_id != 0) {
      obs::Tracer::Global().FlowEnd("dispatch", "task_dispatch",
                                    assign.rpc_id);
    }
    if (on_reduce_start) on_reduce_start(index, assign.attempt);
    if (crashed()) return Status::IOError("worker crashed");
    // A per-task client still pools conns across this task's segments; the
    // simulated bandwidth rides in on the assignment so all workers throttle
    // identically without per-worker configuration.
    net::ShuffleClient shuffle(transport_, assign.network_mb_per_s);
    shuffle.set_trace_origin("reduce:" + assign.job_id + ":" +
                             std::to_string(index));
    ReduceTaskInputs inputs;
    inputs.remote.assign(assign.segments.begin(), assign.segments.end());
    inputs.shuffle = &shuffle;
    inputs.control = control;
    if (assign.readahead_blocks > 0) {
      inputs.readahead_blocks = assign.readahead_blocks;
    }
    ReduceTaskResult reduce_result;
    ANTIMR_RETURN_NOT_OK(RunReduceTask(spec, index, inputs, env_,
                                       assign.collect_output,
                                       &reduce_result));
    net::EncodeKVList(reduce_result.output, &result->output_records);
    net::EncodeJobMetrics(reduce_result.metrics, &result->metrics);
  }
  result->cpu_nanos = ThreadCpuNanos() - cpu_start;
  return Status::OK();
}

void Worker::WaitDone() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return done_ || stopped_; });
}

void Worker::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  cv_.notify_all();
  if (conn_ != nullptr) conn_->Close();
  shuffle_server_.Stop();
  if (receiver_.joinable()) receiver_.join();
  if (heartbeat_.joinable()) heartbeat_.join();
  // Drain in-flight tasks before members they use (conn_, env_) can be
  // destroyed; the closed conn and shuffle server guarantee they terminate.
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] {
      return inflight_tasks_.load(std::memory_order_relaxed) == 0;
    });
  }
}

void Worker::Crash() {
  crashed_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(mu_);
    done_ = true;
    cv_.notify_all();  // under mu_, as in the task lambda (see ReceiveLoop)
  }
  if (conn_ != nullptr) conn_->Close();
  shuffle_server_.Stop();
  ANTIMR_LOG(kWarn) << "worker " << options_.name << " (" << id_
                    << ") simulated crash";
}

}  // namespace engine
}  // namespace antimr
