// The physical layer of the engine: an Executor owns the persistent worker
// pool, runs a whole JobPlan as one dependency-aware TaskGraph (via the
// planner), tracks intermediate datasets in a DatasetCatalog, and rolls the
// task metrics up per stage and per plan. One Executor can run many plans;
// its threads are spawned once.
#ifndef ANTIMR_ENGINE_EXECUTOR_H_
#define ANTIMR_ENGINE_EXECUTOR_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "engine/dataset_catalog.h"
#include "engine/job_plan.h"
#include "mr/local_cluster.h"
#include "mr/metrics.h"
#include "mr/shuffle.h"
#include "net/transport.h"
#include "table/format.h"

namespace antimr {
namespace engine {

struct ExecutorOptions {
  /// Worker threads for map/reduce tasks; 0 = hardware concurrency.
  int num_workers = 0;
  /// Dedicated threads for pipelined shuffle fetches; 0 = num_workers.
  int fetch_threads = 0;
  /// Per-segment streaming readahead window in blocks; 0 = default.
  size_t readahead_blocks = 0;
  /// Storage for intermediate data. When null each Run creates a private
  /// in-memory Env whose I/O counters become the plan's disk metrics.
  Env* env = nullptr;
  /// Materialize sink datasets in PlanResult::outputs.
  bool collect_outputs = true;
  /// Delete intermediate segment files as each stage's reduces finish.
  bool cleanup_intermediates = true;
  /// Simulated disk/network bandwidth; default unthrottled.
  SimulatedHardware hardware;
  /// Fill each StageResult::tasks with the per-task breakdown.
  bool collect_task_metrics = false;
  /// Name prefix for intermediate files (unique per run when empty).
  std::string run_id;
  /// Total executions allowed per task (map/fetch/reduce). 1 = fail the
  /// plan on the first task error, as before retries existed; >1 retries
  /// transient failures (Status::IsTransient) with capped exponential
  /// backoff and re-publish-safe, attempt-scoped task outputs.
  int max_task_attempts = 1;
  /// Backoff before a task's first retry; doubles per attempt (capped).
  uint64_t retry_backoff_nanos = 1000 * 1000;
  /// When set, override every stage spec's record_format (storage layout of
  /// spills and shuffle segments — JobSpec::record_format).
  std::optional<RecordFormat> record_format;
  /// When set, override every stage spec's chunk_block_bytes.
  std::optional<size_t> chunk_block_bytes;
  /// When set, override every stage spec's chunk_codec.
  std::optional<CodecType> chunk_codec;
  /// Transport for the shuffle data plane. Every shuffled byte crosses this
  /// boundary (a per-run SegmentServer serves map segments; reduce-side
  /// fetchers pull them through a ShuffleClient), so loopback and TCP runs
  /// account bytes at the same framing site. Null = per-run loopback.
  net::Transport* transport = nullptr;
};

/// \brief Metrics roll-up for one stage of a plan.
struct StageResult {
  std::string name;          ///< Stage::name (falls back to the spec name)
  std::string output;        ///< dataset the stage produced
  JobMetrics metrics;        ///< summed over the stage's tasks
  uint64_t first_start_nanos = 0;  ///< NowNanos of first task start (0 if idle)
  uint64_t last_end_nanos = 0;     ///< NowNanos of last task end
  /// Per-task breakdown (filled when ExecutorOptions::collect_task_metrics).
  std::vector<TaskMetrics> tasks;
};

/// \brief Completed-plan artifacts.
struct PlanResult {
  /// Whole-plan roll-up. wall_nanos is the run span; disk_bytes_* are the
  /// Env counter deltas for the run (per-stage metrics carry 0 there — the
  /// Env does not attribute I/O to stages).
  JobMetrics metrics;
  std::vector<StageResult> stages;  ///< indexed like JobPlan::stages()
  /// Nanoseconds during which two stages connected by a dataset edge were
  /// active at the same time, summed over edges: the cross-stage pipelining
  /// the planner's partition-level dependencies buy. 0 under a full barrier.
  uint64_t stage_overlap_nanos = 0;
  /// Post-run state of every dataset (for GC assertions and debugging).
  std::vector<DatasetInfo> datasets;
  /// Sink dataset -> reduce output per partition (when collect_outputs).
  std::map<std::string, std::vector<std::vector<KV>>> outputs;

  /// Partitions of a sink dataset, or null if not collected.
  const std::vector<std::vector<KV>>* Output(const std::string& name) const;
  /// Flatten a sink dataset across partitions (partition order, then
  /// emission order). Empty if not collected.
  std::vector<KV> FlatOutput(const std::string& name) const;
};

/// \brief Runs JobPlans on a persistent TaskPool.
class Executor {
 public:
  explicit Executor(const ExecutorOptions& options = ExecutorOptions());

  /// Validate and run `plan`. Blocks until every task has finished or been
  /// skipped; returns the first task failure (by graph add order) or the
  /// first validation error. `result` is filled even on failure where
  /// possible (metrics of completed tasks, dataset states).
  Status Run(const JobPlan& plan, PlanResult* result);

  TaskPool* pool() { return &pool_; }

 private:
  ExecutorOptions options_;
  TaskPool pool_;
  std::unique_ptr<TaskPool> fetch_pool_;  ///< created on first pipelined use
};

}  // namespace engine
}  // namespace antimr

#endif  // ANTIMR_ENGINE_EXECUTOR_H_
