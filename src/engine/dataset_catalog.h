// Dataset lifetime tracking for the Executor. Intermediate datasets (one
// stage's reduce output feeding other stages' maps) are materialized per
// reduce partition; the catalog hands each consuming map task a split over
// exactly one partition and refcounts outstanding consumer tasks so a
// dataset's memory is reclaimed the moment its last consumer finishes —
// long before the whole plan completes, which is what keeps an N-stage
// pipeline's footprint at O(live stages), not O(N).
#ifndef ANTIMR_ENGINE_DATASET_CATALOG_H_
#define ANTIMR_ENGINE_DATASET_CATALOG_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "mr/api.h"

namespace antimr {
namespace engine {

/// Post-run description of one dataset, for metrics and tests.
struct DatasetInfo {
  std::string name;
  bool external = false;
  int producer_stage = -1;  ///< -1 for external inputs
  int num_partitions = 0;   ///< reduce partitions (0 for external)
  uint64_t records = 0;     ///< published records (intermediate only)
  uint64_t bytes = 0;       ///< key+value bytes published
  bool retained = false;    ///< kept after the run (a plan output)
  bool released = false;    ///< reclaimed after the last consumer finished
};

/// \brief Registry of a plan's datasets and their materialized partitions.
///
/// Registration happens single-threaded during lowering; Publish /
/// PartitionSplit / ConsumerDone are called from pool threads and are
/// thread-safe. Ordering is provided by the TaskGraph: a partition is only
/// read by tasks that depend on the reduce task that published it.
class DatasetCatalog {
 public:
  /// Register an external dataset; the catalog borrows nothing (splits are
  /// copied in and handed out as-is).
  void RegisterExternal(const std::string& name,
                        const std::vector<InputSplit>* splits);

  /// Register a stage output with `num_partitions` reduce partitions.
  /// `retained` datasets survive their last consumer (plan outputs).
  void RegisterIntermediate(const std::string& name, int producer_stage,
                            int num_partitions, bool retained);

  /// Declare the total number of consuming map tasks for `name`. Must be
  /// called before lowering adds any task, so a fast consumer can never
  /// drop the count to zero while later stages still register interest.
  void SetPendingConsumers(const std::string& name, int count);

  /// Publish partition `partition` of `name` (called by its reduce task).
  void Publish(const std::string& name, int partition,
               std::vector<KV> records);

  /// A split reading partition `partition` of `name`. The split's open()
  /// must only run after the producing reduce task finished (the planner
  /// guarantees this with a graph edge).
  InputSplit PartitionSplit(const std::string& name, int partition);

  /// One consuming map task of `name` finished. When the last one is done
  /// a non-retained dataset's partitions are released.
  void ConsumerDone(const std::string& name);

  /// Force-release every non-external, non-retained dataset still held.
  /// Run-epilogue safety net: on a failure path, skipped consumer tasks
  /// never call ConsumerDone, so without this the data would stay resident
  /// for the catalog's remaining lifetime. Only call once all tasks that
  /// could read the catalog are terminal.
  void ReleaseAll();

  /// Move a retained dataset's partitions out (post-run).
  std::vector<std::vector<KV>> TakePartitions(const std::string& name);

  /// Post-run snapshot of every registered dataset.
  std::vector<DatasetInfo> Describe() const;

 private:
  struct Dataset {
    DatasetInfo info;
    const std::vector<InputSplit>* external_splits = nullptr;
    std::vector<std::shared_ptr<std::vector<KV>>> partitions;
    int pending_consumers = 0;
  };

  Dataset* Find(const std::string& name);

  mutable std::mutex mu_;
  std::map<std::string, Dataset> datasets_;
};

}  // namespace engine
}  // namespace antimr

#endif  // ANTIMR_ENGINE_DATASET_CATALOG_H_
