// One worker node of the distributed engine: dials the coordinator,
// registers (carrying the address of its own SegmentServer), heartbeats,
// and executes TaskAssign messages on a local TaskPool over its private Env
// — the shared-nothing "local disk" other workers can only reach through
// the shuffle service. Map tasks run the standard map pipeline and leave
// their segments on this worker's storage; reduce tasks pull their inputs
// from the owning workers' shuffle services over the transport.
//
// A Worker object runs in-process (tests simulate whole clusters over one
// loopback transport) or as the body of the `antimr_cli worker` process
// over TCP — same code either way.
#ifndef ANTIMR_ENGINE_WORKER_H_
#define ANTIMR_ENGINE_WORKER_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "io/env.h"
#include "mr/local_cluster.h"
#include "mr/task_control.h"
#include "net/shuffle_service.h"
#include "net/transport.h"
#include "net/wire.h"

namespace antimr {
namespace engine {

/// True when `id` (a task's job_id or a stored file name) belongs to job
/// `scope`. Attempt-scoped map ids are `<scope>_a<N>` and every job file is
/// `<scoped id>/<segment name>`, so the scope's footprint is exactly:
/// the id itself, anything under `<scope>/`, and anything starting
/// `<scope>_a` — the delimiters keep "job_1" from matching "job_10".
bool JobIdInScope(const std::string& id, const std::string& scope);

struct WorkerOptions {
  std::string name = "worker";
  /// Concurrent task executions (advertised to the coordinator's placer).
  int slots = 2;
  uint64_t heartbeat_period_nanos = 100ull * 1000 * 1000;
  /// Task storage; null = a private in-memory Env per worker.
  Env* env = nullptr;
  /// True when this Worker owns the whole process (`antimr_cli worker`).
  /// An exclusive worker answers Shutdown by draining *all* trace lanes
  /// into one final kTraceChunk — safe only because no other Worker (or a
  /// coordinator) shares the process's Tracer. In-process workers leave
  /// shutdown draining to the coordinator's own DrainAll.
  bool exclusive_process = false;
};

/// \brief A worker node: task executor + segment server + heartbeats.
class Worker {
 public:
  /// `transport` (and `options.env` when set) must outlive the worker.
  explicit Worker(net::Transport* transport,
                  const WorkerOptions& options = WorkerOptions());
  ~Worker();

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  /// Start the shuffle server on `shuffle_addr` ("" = auto), dial
  /// `coordinator_addr`, register, and start serving tasks.
  Status Start(const std::string& coordinator_addr,
               const std::string& shuffle_addr = "");

  /// Coordinator-assigned id (valid after Start).
  uint32_t id() const { return id_; }
  const std::string& shuffle_addr() const { return shuffle_server_.addr(); }

  /// Block until the coordinator sends Shutdown or the connection drops.
  void WaitDone();

  /// Graceful stop: close everything, join threads. Idempotent.
  void Stop();

  /// Simulate abrupt process death: stop heartbeating, close the control
  /// connection and the shuffle server, and suppress any in-flight task's
  /// result send. The coordinator sees exactly what a kill -9 produces —
  /// a dead conn and unreachable segments. Threads are joined later by
  /// Stop()/the destructor, since Crash is typically called from inside a
  /// task (via the test hooks below).
  void Crash();

  bool crashed() const { return crashed_.load(std::memory_order_acquire); }

  // Test hooks, called on the executing thread before the task body runs
  // (fault-injection tests use them to Crash this or another worker at the
  // worst moment). Set before Start; not synchronized afterwards.
  std::function<void(int task_index, uint32_t attempt)> on_map_start;
  std::function<void(int task_index, uint32_t attempt)> on_reduce_start;

 private:
  void ReceiveLoop();
  void HeartbeatLoop();
  /// Cancel every running attempt whose job_id is in `scope` (kCancelJob).
  void CancelJobTasks(const std::string& scope);
  /// Delete every stored file in `scope` from this worker's Env (kScrubJob).
  void ScrubJobFiles(const std::string& scope);
  void Execute(const net::TaskAssignMsg& assign);
  Status ExecuteTask(const net::TaskAssignMsg& assign, TaskControl* control,
                     net::TaskResultMsg* result);

  net::Transport* transport_;
  WorkerOptions options_;
  std::unique_ptr<Env> owned_env_;
  Env* env_ = nullptr;
  net::SegmentServer shuffle_server_;
  TaskPool pool_;
  std::unique_ptr<net::Conn> conn_;
  uint32_t id_ = 0;
  std::thread receiver_;
  std::thread heartbeat_;

  std::mutex write_mu_;  ///< serializes frame writes on conn_
  std::mutex trace_mu_;  ///< guards pending_trace_
  std::mutex tasks_mu_;  ///< guards running_tasks_
  struct RunningTask {
    std::shared_ptr<TaskControl> control;
    std::string job_id;  ///< assignment's (attempt-scoped) job id
  };
  /// Live tasks keyed by rpc_id: heartbeats read their progress, CancelTask
  /// frames flip their cancel flags, CancelJob sweeps them by job scope.
  /// Entries live exactly as long as Execute runs the task.
  std::map<uint64_t, RunningTask> running_tasks_;
  /// Trace chunks drained by shuffle handler threads (via the SegmentServer
  /// sink); piggybacked on the next TaskResult or the final Shutdown chunk.
  std::string pending_trace_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  bool stopped_ = false;
  std::atomic<bool> crashed_{false};
  std::atomic<int> inflight_tasks_{0};
};

}  // namespace engine
}  // namespace antimr

#endif  // ANTIMR_ENGINE_WORKER_H_
