// Name -> JobSpec builder registry, the serialization escape hatch of the
// distributed engine: a JobSpec holds std::function factories and cannot
// cross a process boundary, so the coordinator ships (job_name, params) and
// each worker rebuilds the spec locally from the same registered builder.
// Both sides must register the same builders (workloads/registry.h does the
// standard set); a deterministic builder guarantees coordinator and workers
// agree on partitioners, comparators, and codecs.
#ifndef ANTIMR_ENGINE_JOB_REGISTRY_H_
#define ANTIMR_ENGINE_JOB_REGISTRY_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "mr/job_spec.h"
#include "net/wire.h"

namespace antimr {
namespace engine {

/// Build a JobSpec from decoded string params. Unknown keys should be
/// ignored (forward compatibility); bad values return InvalidArgument.
using JobBuilder =
    std::function<Status(const std::map<std::string, std::string>& params,
                         JobSpec* spec)>;

/// Register `builder` under `name`, replacing any previous registration
/// (idempotent re-registration keeps tests simple). Thread-safe.
void RegisterJobBuilder(const std::string& name, JobBuilder builder);

/// Rebuild the spec for a registered job. NotFound when no builder exists.
Status BuildRegisteredJob(const std::string& name, const net::JobParams& params,
                          JobSpec* spec);

/// Names of all registered builders, sorted (for CLI help / diagnostics).
std::vector<std::string> RegisteredJobNames();

// --- param parsing helpers (shared by builders) --------------------------

/// params[key] as int, or `def` when absent. InvalidArgument on garbage.
Status ParamInt(const std::map<std::string, std::string>& params,
                const std::string& key, int def, int* out);

/// params[key] as uint64, or `def` when absent.
Status ParamUint64(const std::map<std::string, std::string>& params,
                   const std::string& key, uint64_t def, uint64_t* out);

/// params[key] as bool ("1"/"true"/"0"/"false"), or `def` when absent.
Status ParamBool(const std::map<std::string, std::string>& params,
                 const std::string& key, bool def, bool* out);

/// params[key] as a codec name (none|snappy|deflate|gzip|bzip2).
Status ParamCodec(const std::map<std::string, std::string>& params,
                  const std::string& key, CodecType def, CodecType* out);

}  // namespace engine
}  // namespace antimr

#endif  // ANTIMR_ENGINE_JOB_REGISTRY_H_
