// The multi-tenant job layer of the distributed engine: a persistent
// JobService that owns job admission, queueing, and fair-share dispatch on
// top of a borrowed Coordinator. Where RunDistributedJob used to mean "one
// job owns the cluster for one blocking call", the service keeps a job
// table (queued|admitted|running|succeeded|failed|aborted), admits jobs
// against per-pool quotas (concurrent jobs, cpu dispatch slots, map-buffer/
// Shared memory estimates), orders dispatch across named pools by stride
// (weighted fair-share) scheduling, and exposes the job lifecycle both
// in-process (Submit/Wait/Abort/ListJobs) and over the wire (kSubmitJob and
// friends on its own listener).
//
// Isolation model: every job runs under a unique job_id, and all of a job's
// worker-side footprint (shuffle segments, spills) is namespaced by that id
// (mr/shuffle.cc SegmentFileName), so concurrent jobs on shared workers
// cannot collide. On every terminal transition the service broadcasts
// kScrubJob so workers garbage-collect the job's files — the cleanup a
// long-lived daemon needs where a one-shot process relied on exit.
//
// Fairness model: each pool carries a weight and a stride accumulator
// (`pass`). Dispatching a job advances its pool's pass by cost/weight
// (cost = granted cpu slots); the scheduler always picks the eligible pool
// with the smallest pass, so over time pools receive dispatch cost in
// proportion to their weights — deterministically, which the tests pin.
// Within a pool, dispatch is strict FIFO: a head the quotas cannot admit
// blocks the pool until capacity frees up (no starvation of big jobs by
// small ones sneaking past).
#ifndef ANTIMR_ENGINE_JOB_SERVICE_H_
#define ANTIMR_ENGINE_JOB_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/coordinator.h"
#include "net/transport.h"
#include "net/wire.h"
#include "obs/metrics_registry.h"

namespace antimr {
namespace engine {

/// Order-insensitive multiset hash of a job output: summed per-record FNV
/// hashes (value hashed with the key's hash as seed). Two runs with equal
/// key/value multisets hash equal regardless of partition placement or
/// emission order — the byte-identity check used by the CLI, the cluster
/// script, and the service's JobStatus rows.
uint64_t OutputMultisetHash(const std::vector<KV>& records);

struct PoolConfig {
  std::string name = "default";
  /// Fair-share weight: a pool with twice the weight receives twice the
  /// dispatch cost over time under contention.
  double weight = 1.0;
  /// Concurrent running jobs (0 = unlimited).
  int max_running_jobs = 0;
  /// Sum of granted cpu dispatch slots across running jobs (0 = unlimited).
  int cpu_slots_quota = 0;
  /// Sum of declared map-buffer/Shared memory estimates (0 = unlimited).
  /// Admission accounting, not an allocator-enforced limit.
  uint64_t memory_quota_bytes = 0;
};

struct JobServiceOptions {
  /// Named pools; empty = one unlimited "default" pool. A submission naming
  /// an unknown pool is rejected (NotFound).
  std::vector<PoolConfig> pools;
  /// Running jobs across all pools (0 = unlimited).
  int max_concurrent_jobs = 8;
  /// Queued (not yet dispatched) jobs across all pools; a submission past
  /// this cap is rejected with ResourceExhausted — the backpressure signal.
  int max_queued_jobs = 64;
  /// Hold dispatch until this many workers are live (0 = dispatch blind and
  /// let the driver's transient-retry path handle an empty cluster).
  int min_workers = 1;
  /// Granted to submissions that don't ask for cpu slots. 0 = "auto": the
  /// legacy dispatch sizing (one slot per task, capped at 64) with zero
  /// quota cost — what the RunDistributedJob shim uses.
  int default_cpu_slots = 2;
  /// Charged to submissions that don't declare a memory estimate.
  uint64_t default_memory_bytes = 64ull << 20;
  /// Job-level defaults applied when a submission leaves them zero.
  int default_max_task_attempts = 3;
  uint64_t default_retry_backoff_nanos = 1000 * 1000;
  bool speculative_execution = false;
  double speculation_slowness_factor = 2.0;
  uint64_t speculation_min_elapsed_nanos = 200ull * 1000 * 1000;
  /// Broadcast kScrubJob on every terminal transition so workers GC the
  /// job's segments.
  bool scrub_on_terminal = true;
};

/// One job submission. Splits may arrive raw (`splits`, encoded once by
/// Submit) or pre-encoded (`encoded_splits`, the wire path) — exactly one
/// should be non-empty. Zero-valued knobs inherit the service defaults.
struct JobSubmission {
  std::string pool;  ///< "" = the service's first pool
  std::string job_name;
  net::JobParams params;
  std::vector<std::vector<KV>> splits;
  std::vector<std::string> encoded_splits;  ///< EncodeKVList per map task
  std::string job_id;  ///< "" = service assigns a unique id
  int cpu_slots = 0;
  uint64_t memory_bytes = 0;
  bool collect_outputs = true;
  int max_task_attempts = 0;
  uint64_t retry_backoff_nanos = 0;
  double network_mb_per_s = 0;
  uint32_t readahead_blocks = 0;
  /// Tri-state speculation override: -1 = service default, 0 = off, 1 = on.
  int speculation = -1;
  uint64_t speculation_force_after_nanos = 0;  ///< test knob passthrough
};

/// \brief Persistent job daemon: admission, fair-share queue, lifecycle.
///
/// Thread-safe. Jobs are never forgotten: terminal rows stay in the table
/// (status, hash, latency) so ListJobs is a trajectory, not a snapshot.
class JobService {
 public:
  /// `coord` is borrowed and must outlive the service; it must already be
  /// Start()ed. Registers a /jobs handler on the coordinator's status
  /// surface (effective if StartStatusServer runs after this constructor).
  JobService(Coordinator* coord,
             const JobServiceOptions& options = JobServiceOptions());
  ~JobService();

  JobService(const JobService&) = delete;
  JobService& operator=(const JobService&) = delete;

  /// Admission control. Rejects with ResourceExhausted when the queue is
  /// full or the job's declared resources exceed its pool's quota outright
  /// (it could never be admitted), NotFound for an unknown pool,
  /// InvalidArgument for malformed submissions. On OK the job is queued and
  /// *job_id names it.
  Status Submit(JobSubmission submission, std::string* job_id);

  /// Block until the job is terminal. Returns its final status; when
  /// `result` is non-null the collected outputs are *moved* into it (a
  /// second Wait sees empty outputs but the same status).
  Status Wait(const std::string& job_id, DistJobResult* result = nullptr);

  /// Abort a queued job (dequeued immediately) or a running one (abort flag
  /// plus a cluster-wide kCancelJob; the driver unwinds without retrying and
  /// attempt-scoped partial outputs are scrubbed by the PR-4 machinery).
  /// NotFound for unknown ids; InvalidArgument for already-terminal jobs.
  Status Abort(const std::string& job_id);

  Status GetJob(const std::string& job_id, net::JobStatusWire* row) const;
  std::vector<net::JobStatusWire> ListJobs() const;

  /// Start the lifecycle RPC listener (kSubmitJob/kJobStatusReq/kAbortJob/
  /// kListJobsReq) on `addr` ("" = auto) over the coordinator's transport.
  Status Serve(const std::string& addr);
  const std::string& serve_addr() const { return serve_addr_; }

  /// Register the /jobs endpoint on the coordinator's status surface. Call
  /// before Coordinator::StartStatusServer, and keep this service alive
  /// until the coordinator is stopped (the handler points back here). Not
  /// automatic: the ephemeral services behind the RunDistributedJob shim
  /// must not pile handlers onto a long-lived coordinator.
  void AttachStatusEndpoint();

  /// The /jobs JSON document (array of job rows, submit order).
  std::string JobsJson() const;

  /// Per-pool usage for fairness measurement: busy_slot_nanos integrates
  /// granted slots over job runtimes, so shares can be compared to weights.
  struct PoolUsage {
    std::string pool;
    double weight = 1.0;
    uint64_t busy_slot_nanos = 0;
    uint64_t jobs_completed = 0;
  };
  std::vector<PoolUsage> PoolUsageSnapshot() const;

  /// Abort queued jobs, cancel running ones, join every runner thread and
  /// the RPC listener. Idempotent; also run by the destructor.
  void Stop();

 private:
  struct Job;
  struct Pool;

  void SchedulerLoop();
  void RunJob(Pool* pool, Job* job);
  void AcceptLoop();
  void ServeConn(net::Conn* conn);
  /// Row snapshot; caller holds mu_.
  net::JobStatusWire RowOfLocked(const Job& job) const;
  Status SubmitLocked(JobSubmission&& submission, std::string* job_id,
                      std::unique_lock<std::mutex>& lock);

  Coordinator* coord_;
  JobServiceOptions options_;
  std::string serve_addr_;
  std::string first_pool_;  ///< target of submissions that name no pool

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  uint64_t next_dispatch_seq_ = 1;
  int queued_jobs_ = 0;
  int running_jobs_ = 0;
  /// Ordered by name: deterministic stride tie-break.
  std::map<std::string, std::unique_ptr<Pool>> pools_;
  std::map<std::string, std::unique_ptr<Job>> jobs_;
  std::vector<std::string> submit_order_;

  std::thread scheduler_;
  std::unique_ptr<net::Listener> listener_;
  std::thread accept_thread_;
  std::mutex conns_mu_;
  std::vector<std::unique_ptr<net::Conn>> conns_;
  std::vector<std::thread> conn_threads_;
};

/// \brief One-request-per-connection client for the service's RPC plane
/// (the CLI's submit/jobs/abort and the tests' wire-path coverage).
class JobServiceClient {
 public:
  /// `transport` is borrowed; `addr` is the service's serve_addr.
  JobServiceClient(net::Transport* transport, std::string addr);

  Status Submit(const net::SubmitJobMsg& msg, std::string* job_id);
  Status GetStatus(const std::string& job_id, net::JobStatusWire* row);
  Status Abort(const std::string& job_id);
  Status List(std::vector<net::JobStatusWire>* jobs);

 private:
  Status RoundTrip(uint8_t req_type, const std::string& req_payload,
                   uint8_t want_resp_type, std::string* resp_payload);

  net::Transport* transport_;
  std::string addr_;
};

}  // namespace engine
}  // namespace antimr

#endif  // ANTIMR_ENGINE_JOB_SERVICE_H_
