// The logical layer of the execution engine: a JobPlan is a DAG of stages,
// each a complete MapReduce JobSpec wired to named input/output datasets.
// Per-stage knobs — the shuffle scheduling model and the Anti-Combining
// options — live here because real pipelines tune them per stage: an
// aggregation stage with heavy value sharing wants EagerSH while a re-sort
// stage downstream wants LazySH or none at all (the per-job knobs of the
// paper's Section 6 become per-stage knobs of a pipeline).
//
// A JobPlan is purely declarative. The planner (engine/planner.h) lowers it
// into one dependency-aware TaskGraph, and the Executor (engine/executor.h)
// runs that graph over a persistent TaskPool.
#ifndef ANTIMR_ENGINE_JOB_PLAN_H_
#define ANTIMR_ENGINE_JOB_PLAN_H_

#include <map>
#include <string>
#include <vector>

#include "anticombine/options.h"
#include "mr/job_spec.h"
#include "mr/shuffle.h"

namespace antimr {
namespace engine {

/// Per-stage execution knobs.
struct StageOptions {
  /// How this stage's reduce-side shuffle is scheduled (mr/shuffle.h).
  ShuffleMode shuffle_mode = ShuffleMode::kPipelined;
  /// Apply the Anti-Combining transform to this stage's JobSpec.
  bool anti_combine = false;
  /// Options for the transform when anti_combine is set.
  anticombine::AntiCombineOptions anti_combine_options;
};

/// \brief One stage of a pipeline: a JobSpec plus dataset wiring.
struct Stage {
  std::string name;
  JobSpec spec;
  /// Dataset names this stage maps over. Each must be either an external
  /// input (JobPlan::AddInput) or the output of exactly one other stage.
  std::vector<std::string> inputs;
  /// Dataset name this stage's reduce output is published under.
  std::string output;
  StageOptions options;
};

/// \brief A DAG of stages over named datasets.
///
/// Build with AddInput/AddStage in any order; Validate checks the shape
/// (every input resolvable, one producer per dataset, acyclic). Stage
/// N+1's map tasks consume the *partitions* of stage N's output dataset,
/// which is what lets the planner pipeline across stages: a downstream map
/// task starts the moment the one partition it reads is published, not when
/// the whole upstream stage finishes.
class JobPlan {
 public:
  std::string name = "plan";

  /// Register an external input dataset backed by ready-made splits.
  /// Returns InvalidArgument if the dataset name is already taken.
  Status AddInput(const std::string& dataset, std::vector<InputSplit> splits);

  /// Append a stage; returns its index. Wiring errors surface in Validate.
  int AddStage(Stage stage);

  /// Check the whole plan: per-stage JobSpec validity, dataset wiring
  /// (unique producers, resolvable inputs), and acyclicity.
  Status Validate() const;

  /// Stage indexes in a dependency-respecting order. Returns
  /// InvalidArgument on a cycle.
  Status TopologicalOrder(std::vector<int>* order) const;

  /// Producing stage index for `dataset`, or -1 (external or unknown).
  int ProducerOf(const std::string& dataset) const;

  /// Number of stages that list `dataset` as an input.
  int ConsumerCount(const std::string& dataset) const;

  /// True when no stage consumes `stage`'s output (a plan output).
  bool IsSink(int stage) const;

  const std::vector<Stage>& stages() const { return stages_; }
  const std::map<std::string, std::vector<InputSplit>>& external_inputs()
      const {
    return external_inputs_;
  }

 private:
  std::vector<Stage> stages_;
  std::map<std::string, std::vector<InputSplit>> external_inputs_;
};

}  // namespace engine
}  // namespace antimr

#endif  // ANTIMR_ENGINE_JOB_PLAN_H_
