// The control plane of the distributed engine. A Coordinator accepts worker
// registrations over a transport, tracks liveness via heartbeats, and
// exposes a blocking task-RPC (Call) the distributed job driver schedules
// over. RunDistributedJob reuses the single-process scheduling machinery —
// TaskGraph + RetryPolicy — but its task bodies ship TaskAssign messages to
// workers instead of running locally, so retry semantics, backoff, and
// dependency ordering are identical in both modes.
//
// Worker-loss model: a worker is dead when its connection errors or its
// heartbeats stop for heartbeat_timeout_nanos. Death fails every in-flight
// Call on that worker with a *transient* IOError, which flows back through
// the TaskGraph retry path exactly like any flaky task; the reduce-side
// driver additionally "heals" map placements whose owning worker died (the
// map's segments died with the worker's storage) by re-running those maps
// on live workers before retrying the reduce — re-execution recovery, the
// MapReduce fault-tolerance contract.
#ifndef ANTIMR_ENGINE_COORDINATOR_H_
#define ANTIMR_ENGINE_COORDINATOR_H_

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "mr/api.h"
#include "mr/local_cluster.h"
#include "mr/metrics.h"
#include "net/http.h"
#include "net/transport.h"
#include "net/wire.h"
#include "obs/federation.h"
#include "obs/metrics_registry.h"
#include "obs/trace_merge.h"

namespace antimr {
namespace engine {

/// Point-in-time view of the job the driver is running (or last ran),
/// published by RunDistributedJob and served verbatim on /status.
struct JobStatusSnapshot {
  std::string job_id;
  std::string job_name;
  std::string state = "none";  ///< none | running | done | failed
  uint64_t maps_total = 0;
  uint64_t maps_done = 0;
  uint64_t reduces_total = 0;
  uint64_t reduces_done = 0;
  uint64_t map_reruns = 0;
};

struct CoordinatorOptions {
  /// A worker with no heartbeat or result for this long is declared lost.
  uint64_t heartbeat_timeout_nanos = 2ull * 1000 * 1000 * 1000;
  /// How often the monitor thread scans for lost workers.
  uint64_t monitor_period_nanos = 50ull * 1000 * 1000;
  /// Once WaitForWorkers first sees its quorum, it re-checks liveness after
  /// this settle window so a worker that registered and immediately died
  /// (connection reset before its first heartbeat) regresses the count
  /// instead of being handed to the driver as capacity.
  uint64_t quorum_settle_nanos = 20ull * 1000 * 1000;
};

/// \brief Accepts workers, tracks liveness, routes task RPCs.
///
/// Thread-safe. Workers are never forgotten: a dead worker's id keeps
/// resolving (WorkerAlive false) so the driver can detect stale placements.
class Coordinator {
 public:
  /// `transport` is borrowed and must outlive the coordinator.
  explicit Coordinator(net::Transport* transport,
                       const CoordinatorOptions& options = CoordinatorOptions());
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Listen for workers on `addr` ("" = auto / ephemeral).
  Status Start(const std::string& addr);

  /// The address workers dial.
  const std::string& addr() const { return addr_; }

  /// The transport this coordinator rides on (borrowed; embedders like the
  /// JobService open their own listeners on it).
  net::Transport* transport() const { return transport_; }

  /// Block until `n` workers are registered and alive, or `timeout_nanos`
  /// elapses. Returns whether the quorum held at the deadline: a worker
  /// that registers then immediately dies within the wait window is
  /// re-checked (quorum_settle_nanos) and not counted once it regresses.
  bool WaitForWorkers(int n, uint64_t timeout_nanos);

  int live_workers() const;

  /// Least-loaded live worker, or ResourceExhausted (transient — a retry
  /// may find a recovered cluster) when none is alive. `exclude_worker`
  /// (0 = none) skips one worker, so a speculative backup lands on
  /// different hardware than the primary it races. When `job_inflight`
  /// (worker id -> this job's in-flight task count) is supplied, placement
  /// balances the *job's own* load per slot first and breaks ties on global
  /// load — one tenant's flood cannot skew another tenant's spread.
  Status PickWorker(uint32_t* worker_id, uint32_t exclude_worker = 0,
                    const std::map<uint32_t, int>* job_inflight = nullptr);

  bool WorkerAlive(uint32_t worker_id) const;

  /// Shuffle-service address of a worker (live or dead; segments on a dead
  /// worker are gone, which is exactly why callers check WorkerAlive).
  std::string WorkerShuffleAddr(uint32_t worker_id) const;

  /// Execute one task on `worker_id`: send the assignment, block until the
  /// matching TaskResult arrives or the worker dies. Worker death surfaces
  /// as transient IOError("worker N lost"); a task failure on the worker
  /// surfaces as the task's own Status. `assign.rpc_id` is set here; when
  /// `rpc_id_out` is non-null it is published there *before* the frame is
  /// sent, so a concurrent monitor can cancel the call mid-flight.
  Status Call(uint32_t worker_id, net::TaskAssignMsg assign,
              net::TaskResultMsg* result,
              std::atomic<uint64_t>* rpc_id_out = nullptr);

  /// Best-effort kCancelTask to the worker running `rpc_id` (the loser of a
  /// speculative race). The task fails with a transient IOError on the
  /// worker and scrubs its attempt-scoped partial output; errors here are
  /// swallowed (a dead worker cancelled itself).
  void CancelTask(uint32_t worker_id, uint64_t rpc_id);

  /// Best-effort job-scoped frame (kCancelJob or kScrubJob, payload
  /// JobIdMsg) to every live worker. AbortJob cancels a job's running
  /// attempts everywhere at once; job teardown scrubs its segments.
  void BroadcastJobFrame(uint8_t type, const std::string& job_id);

  /// Latest heartbeat-reported progress (0..1000) for an in-flight rpc;
  /// 0 when the worker has not reported yet.
  uint32_t RpcProgressPermille(uint64_t rpc_id) const;

  /// Median duration of recently completed tasks of one kind (speculation's
  /// slowness baseline); 0 until a completion of that kind was observed.
  uint64_t TypicalTaskNanos(net::TaskKind kind) const;

  /// Best-effort Shutdown to every live worker, close everything, join all
  /// threads. When a trace is being captured, waits briefly for workers'
  /// final kTraceChunk frames before dropping connections. Idempotent; also
  /// run by the destructor.
  void Stop();

  // --- observability surface ---------------------------------------------

  /// Serve GET /metrics (Prometheus text) and GET /status (JSON) on `addr`
  /// ("" = auto) over the coordinator's transport. Call after Start.
  Status StartStatusServer(const std::string& addr);

  /// Register an extra status-surface path (e.g. the JobService's /jobs).
  /// Call before StartStatusServer; handlers run on HTTP conn threads and
  /// must be thread-safe.
  void AddStatusHandler(const std::string& path,
                        net::HttpServer::Handler handler);

  /// Resolved status-server address ("" if not started).
  std::string status_addr() const {
    return http_ == nullptr ? std::string() : http_->addr();
  }

  /// Cluster-wide Prometheus text: federated worker registries (latest
  /// heartbeat snapshots, dead workers retained) + this process's own.
  std::string ClusterMetricsText() const;

  /// The /status JSON document (workers, liveness, in-flight, job progress).
  std::string StatusJson() const;

  /// Federated metrics state — exposed for tests and embedders.
  obs::ClusterMetrics& cluster_metrics() { return cluster_metrics_; }

  void PublishJobStatus(const JobStatusSnapshot& snapshot);
  JobStatusSnapshot job_status() const;

  /// Merge this process's remaining trace buffers with every chunk workers
  /// shipped and render one Chrome-trace JSON document (coordinator = pid 1,
  /// worker N = pid 1+N). Callable after Stop — typically is, so workers'
  /// shutdown chunks are in.
  std::string ClusterTraceJson();
  Status WriteClusterTrace(const std::string& path);

 private:
  struct WorkerState {
    uint32_t id = 0;
    std::string name;
    std::string shuffle_addr;
    uint32_t slots = 1;
    std::unique_ptr<net::Conn> conn;
    std::thread receiver;
    std::mutex write_mu;  ///< serializes frame writes on `conn`
    bool alive = false;
    uint64_t last_activity_nanos = 0;
    int inflight = 0;  ///< Calls outstanding (load-balance key)
  };

  struct PendingCall {
    uint32_t worker_id = 0;
    net::TaskResultMsg* result = nullptr;
    Status status;
    bool done = false;
  };

  void AcceptLoop();
  void ReceiveLoop(WorkerState* worker);
  void MonitorLoop();
  /// Declare `worker` lost: fail its pending calls, close its conn.
  /// Caller must NOT hold mu_.
  void MarkDead(WorkerState* worker, const std::string& why);

  net::Transport* transport_;
  CoordinatorOptions options_;
  std::string addr_;
  std::unique_ptr<net::Listener> listener_;
  std::thread accept_thread_;
  std::thread monitor_thread_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  uint32_t next_worker_id_ = 1;
  std::map<uint32_t, std::unique_ptr<WorkerState>> workers_;
  std::atomic<uint64_t> next_rpc_id_{1};
  std::map<uint64_t, PendingCall*> pending_;
  /// Heartbeat-reported progress per in-flight rpc (erased on completion).
  std::map<uint64_t, uint32_t> rpc_progress_;
  /// Recent completed-task durations per kind (map, reduce), bounded, for
  /// the speculation slowness baseline.
  std::vector<uint64_t> recent_task_nanos_[2];

  obs::Gauge* workers_live_gauge_;
  obs::Counter* tasks_assigned_counter_;
  obs::Counter* workers_lost_counter_;
  obs::Histogram* rpc_latency_hist_;

  obs::ClusterMetrics cluster_metrics_;
  obs::ClusterTraceMerger trace_merger_;
  std::vector<std::pair<std::string, net::HttpServer::Handler>>
      extra_status_handlers_;
  std::unique_ptr<net::HttpServer> http_;

  mutable std::mutex status_mu_;
  JobStatusSnapshot job_status_;
};

// --- distributed job driver ----------------------------------------------

struct DistJobOptions {
  std::string job_name;     ///< registered builder name (engine/job_registry.h)
  net::JobParams params;    ///< builder params, shipped verbatim to workers
  /// Input records per map task; maps are placed one per TaskAssign.
  std::vector<std::vector<KV>> splits;
  bool collect_outputs = true;
  /// Retry budget per task (map heal re-runs count against the reduce's
  /// attempts only through its backoff, not this cap).
  int max_task_attempts = 3;
  uint64_t retry_backoff_nanos = 1000 * 1000;
  /// Simulated shuffle bandwidth the reduce workers apply per fetched chunk.
  double network_mb_per_s = 0;
  uint32_t readahead_blocks = 0;
  /// Scope for segment file names; "" derives one from job_name. Attempts
  /// get unique sub-scopes so re-executions never collide with stale files.
  std::string job_id;
  /// Dispatcher threads driving blocking Calls; 0 sizes to the task count
  /// (dispatchers spend their life blocked on worker RPCs, not CPU).
  int dispatch_threads = 0;

  // --- speculative execution ---------------------------------------------
  /// Launch a backup attempt for a task whose primary attempt looks like a
  /// straggler; first finisher wins, the loser is cancelled and its
  /// attempt-scoped partial output scrubbed (same machinery as a retried
  /// attempt). Output is unchanged: the winner's result is used verbatim.
  bool speculative_execution = false;
  /// A primary is a straggler once its elapsed time exceeds
  /// slowness_factor x the median completed duration of its task kind.
  double speculation_slowness_factor = 2.0;
  /// Never speculate before this much elapsed time (guards the cold start
  /// where no duration baseline exists yet).
  uint64_t speculation_min_elapsed_nanos = 200ull * 1000 * 1000;
  /// Test override: when > 0, a backup launches after exactly this elapsed
  /// time regardless of the adaptive baseline (deterministic races).
  uint64_t speculation_force_after_nanos = 0;
};

struct DistJobResult {
  /// Reduce output per partition (when collect_outputs).
  std::vector<std::vector<KV>> outputs;
  /// Summed task metrics (latest attempt of each map, so healed maps are
  /// not double-counted) plus driver wall time.
  JobMetrics metrics;
  /// Map task executions beyond the first num_maps (retries + heals).
  uint64_t map_reruns = 0;
  /// Per reduce partition: transport bytes fetched (shuffle load) and input
  /// records — the load-spread signal bench_e7_skew plots.
  std::vector<uint64_t> reduce_shuffle_bytes;
  std::vector<uint64_t> reduce_input_records;
  /// Speculation outcome counts for this job.
  uint64_t spec_backups = 0;       ///< backup attempts launched
  uint64_t spec_backup_wins = 0;   ///< races the backup won
  uint64_t spec_cancels = 0;       ///< losers sent kCancelTask

  /// Flatten outputs across partitions (partition order, then emission
  /// order) — comparable to PlanResult::FlatOutput / JobResult::FlatOutput.
  std::vector<KV> FlatOutput() const;
};

/// Run one registered job across `coord`'s workers. Blocks until done.
///
/// Since the JobService refactor this is a thin submit-and-wait shim over an
/// ephemeral single-pool JobService (engine/job_service.h) — the job passes
/// through the same admission/queue/dispatch path a daemon-submitted job
/// does, with an unlimited quota and legacy dispatch-width sizing so callers
/// observe identical behavior. Defined in job_service.cc.
Status RunDistributedJob(Coordinator* coord, const DistJobOptions& options,
                         DistJobResult* result);

}  // namespace engine
}  // namespace antimr

#endif  // ANTIMR_ENGINE_COORDINATOR_H_
