#include "engine/coordinator.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "net/frame.h"
#include "obs/trace.h"

namespace antimr {
namespace engine {

namespace {

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

}  // namespace

Coordinator::Coordinator(net::Transport* transport,
                         const CoordinatorOptions& options)
    : transport_(transport),
      options_(options),
      workers_live_gauge_(obs::MetricsRegistry::Global().GetGauge(
          "antimr_coord_workers_live", "registered workers currently alive")),
      tasks_assigned_counter_(obs::MetricsRegistry::Global().GetCounter(
          "antimr_coord_tasks_assigned_total", "task RPCs sent to workers")),
      workers_lost_counter_(obs::MetricsRegistry::Global().GetCounter(
          "antimr_coord_workers_lost_total",
          "workers declared dead (conn error or heartbeat timeout)")),
      rpc_latency_hist_(obs::MetricsRegistry::Global().GetHistogram(
          "antimr_coord_rpc_latency_nanos",
          "task RPC round-trip latency (dispatch to result)")) {
  trace_merger_.SetProcessName(1, "coord");
}

Coordinator::~Coordinator() { Stop(); }

Status Coordinator::Start(const std::string& addr) {
  ANTIMR_RETURN_NOT_OK(transport_->Listen(addr, &listener_));
  addr_ = listener_->addr();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  monitor_thread_ = std::thread([this] { MonitorLoop(); });
  ANTIMR_LOG(kInfo) << "coordinator listening on " << addr_;
  return Status::OK();
}

void Coordinator::AcceptLoop() {
  for (;;) {
    std::unique_ptr<net::Conn> conn;
    if (!transport_ || !listener_->Accept(&conn).ok()) return;

    // Handshake inline: workers send Register immediately after dialing, so
    // the accept loop stalls only for the one frame round-trip.
    uint8_t type = 0;
    std::string payload;
    net::RegisterMsg reg;
    if (!net::ReadFrame(conn.get(), &type, &payload).ok() ||
        type != net::kRegister ||
        !net::DecodeRegister(payload, &reg).ok()) {
      continue;  // not a worker; drop the conn
    }

    auto worker = std::make_unique<WorkerState>();
    WorkerState* w = worker.get();
    w->name = reg.worker_name;
    w->shuffle_addr = reg.shuffle_addr;
    w->slots = std::max(1u, reg.slots);
    w->conn = std::move(conn);
    w->alive = true;
    w->last_activity_nanos = NowNanos();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
      w->id = next_worker_id_++;
      workers_[w->id] = std::move(worker);
    }
    workers_live_gauge_->Add(1);

    net::RegisterAckMsg ack;
    ack.worker_id = w->id;
    std::string ack_payload;
    net::EncodeRegisterAck(ack, &ack_payload);
    Status st;
    {
      std::lock_guard<std::mutex> lock(w->write_mu);
      st = net::WriteFrame(w->conn.get(), net::kRegisterAck, ack_payload);
    }
    if (!st.ok()) {
      MarkDead(w, "register ack failed: " + st.message());
      continue;
    }
    ANTIMR_LOG(kInfo) << "worker " << w->id << " (" << w->name
                      << ") registered, shuffle at " << w->shuffle_addr;
    // pid lane for the merged cluster trace: coordinator is 1, workers 1+id.
    trace_merger_.SetProcessName(1 + static_cast<int>(w->id),
                                 "worker:" + w->name);
    w->receiver = std::thread([this, w] { ReceiveLoop(w); });
    cv_.notify_all();
  }
}

void Coordinator::ReceiveLoop(WorkerState* worker) {
  for (;;) {
    uint8_t type = 0;
    std::string payload;
    const Status st = net::ReadFrame(worker->conn.get(), &type, &payload);
    if (!st.ok()) {
      MarkDead(worker, st.message());
      return;
    }
    if (type == net::kHeartbeat) {
      net::HeartbeatMsg hb;
      if (net::DecodeHeartbeat(payload, &hb).ok()) {
        {
          std::lock_guard<std::mutex> lock(mu_);
          worker->last_activity_nanos = NowNanos();
          // Straggler signal: progress of this worker's in-flight rpcs.
          // Gated on pending_ so completed rpcs cannot re-insert entries.
          for (const net::TaskProgress& p : hb.task_progress) {
            if (pending_.count(p.rpc_id) > 0) {
              rpc_progress_[p.rpc_id] = p.permille;
            }
          }
        }
        // Federate the worker's registry snapshot. Absolute cumulative
        // values make the fold idempotent under retransmits, so no seq
        // tracking is needed here.
        if (!hb.metrics_snapshot.empty()) {
          obs::MetricsSnapshot snap;
          if (obs::DecodeMetricsSnapshot(hb.metrics_snapshot, &snap).ok()) {
            cluster_metrics_.Fold(worker->id, snap);
          }
        }
      }
    } else if (type == net::kTaskResult) {
      net::TaskResultMsg result;
      if (!net::DecodeTaskResult(payload, &result).ok()) {
        MarkDead(worker, "undecodable task result");
        return;
      }
      if (!result.trace_chunk.empty()) {
        const Status merge =
            trace_merger_.AddChunk(1 + static_cast<int>(worker->id),
                                   result.trace_chunk);
        if (!merge.ok()) {
          ANTIMR_LOG(kWarn) << "dropping trace chunk from worker "
                            << worker->id << ": " << merge.ToString();
        }
        result.trace_chunk.clear();  // callers only see task payloads
      }
      std::lock_guard<std::mutex> lock(mu_);
      worker->last_activity_nanos = NowNanos();
      auto it = pending_.find(result.rpc_id);
      if (it != pending_.end()) {
        PendingCall* call = it->second;
        *call->result = std::move(result);
        call->status = Status::OK();
        call->done = true;
        pending_.erase(it);
        cv_.notify_all();
      }
    } else if (type == net::kTraceChunk) {
      // Residual spans an exclusive worker process flushes on Shutdown
      // (handler threads, anything not drained at a task boundary).
      net::TraceChunkMsg msg;
      if (net::DecodeTraceChunk(payload, &msg).ok() && !msg.chunk.empty()) {
        const Status merge = trace_merger_.AddChunk(
            1 + static_cast<int>(worker->id), msg.chunk);
        if (!merge.ok()) {
          ANTIMR_LOG(kWarn) << "dropping trace chunk from worker "
                            << worker->id << ": " << merge.ToString();
        }
      }
      std::lock_guard<std::mutex> lock(mu_);
      worker->last_activity_nanos = NowNanos();
    }
    // Unknown frame types are skipped (forward compatibility).
  }
}

void Coordinator::MonitorLoop() {
  for (;;) {
    std::vector<WorkerState*> lost;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock,
                   std::chrono::nanoseconds(options_.monitor_period_nanos),
                   [this] { return stopping_; });
      if (stopping_) return;
      const uint64_t now = NowNanos();
      for (auto& [id, worker] : workers_) {
        if (worker->alive &&
            now - worker->last_activity_nanos >
                options_.heartbeat_timeout_nanos) {
          lost.push_back(worker.get());
        }
      }
    }
    for (WorkerState* w : lost) MarkDead(w, "heartbeat timeout");
  }
}

void Coordinator::MarkDead(WorkerState* worker, const std::string& why) {
  bool shutting_down;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!worker->alive) return;
    shutting_down = stopping_;
    worker->alive = false;
    // Update the metrics under mu_ so anyone observing live_workers() == 0
    // (which also takes mu_) already sees the loss counted.
    workers_live_gauge_->Sub(1);
    // A conn closed by our own Stop is a clean goodbye, not a lost worker.
    if (!shutting_down) workers_lost_counter_->Inc();
    // Fail every Call waiting on this worker with the transient class, so
    // the TaskGraph retry layer re-places the task like any flaky failure.
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (it->second->worker_id == worker->id) {
        it->second->status = Status::IOError(
            "worker " + std::to_string(worker->id) + " lost (" + why + ")");
        it->second->done = true;
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Retain the worker's last snapshot in the federation (its work happened)
  // but zero its gauges once no live worker backs them.
  cluster_metrics_.MarkWorkerDead(worker->id);
  worker->conn->Close();
  if (!shutting_down) {
    ANTIMR_LOG(kWarn) << "worker " << worker->id << " lost: " << why;
  }
  cv_.notify_all();
}

bool Coordinator::WaitForWorkers(int n, uint64_t timeout_nanos) {
  const uint64_t deadline = NowNanos() + timeout_nanos;
  std::unique_lock<std::mutex> lock(mu_);
  auto live_count = [this] {
    int live = 0;
    for (const auto& [id, worker] : workers_) live += worker->alive ? 1 : 0;
    return live;
  };
  for (;;) {
    uint64_t now = NowNanos();
    if (live_count() >= n) {
      // Quorum seen — but a worker that registered and died in the same
      // instant stays marked alive until its receiver observes the dead
      // connection. Hold for the settle window, waking on worker-state
      // changes, and only report success if the quorum survived it.
      const uint64_t settle_deadline = now + options_.quorum_settle_nanos;
      while ((now = NowNanos()) < settle_deadline && live_count() >= n) {
        cv_.wait_for(lock, std::chrono::nanoseconds(settle_deadline - now));
      }
      if (live_count() >= n) return true;
      if (NowNanos() >= deadline) return false;  // quorum regressed
      continue;  // keep waiting for a real quorum
    }
    if (now >= deadline) return false;
    cv_.wait_for(lock, std::chrono::nanoseconds(deadline - now));
  }
}

int Coordinator::live_workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  int live = 0;
  for (const auto& [id, worker] : workers_) live += worker->alive ? 1 : 0;
  return live;
}

Status Coordinator::PickWorker(uint32_t* worker_id, uint32_t exclude_worker,
                               const std::map<uint32_t, int>* job_inflight) {
  std::lock_guard<std::mutex> lock(mu_);
  const WorkerState* best = nullptr;
  int best_job_load = 0;
  auto job_load_of = [job_inflight](uint32_t id) {
    if (job_inflight == nullptr) return 0;
    auto it = job_inflight->find(id);
    return it == job_inflight->end() ? 0 : it->second;
  };
  for (const auto& [id, worker] : workers_) {
    if (!worker->alive || id == exclude_worker) continue;
    const int job_load = job_load_of(id);
    // Least inflight-per-slot keeps a big worker busier than a small one.
    // With a per-job load map the job's own per-slot load dominates and the
    // global count only breaks ties — placement stays spread per tenant
    // even when another job has one worker saturated.
    if (best == nullptr ||
        job_load * best->slots < best_job_load * worker->slots ||
        (job_load * best->slots == best_job_load * worker->slots &&
         worker->inflight * best->slots < best->inflight * worker->slots)) {
      best = worker.get();
      best_job_load = job_load;
    }
  }
  if (best == nullptr) {
    return Status::ResourceExhausted("no live workers");
  }
  *worker_id = best->id;
  return Status::OK();
}

bool Coordinator::WorkerAlive(uint32_t worker_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = workers_.find(worker_id);
  return it != workers_.end() && it->second->alive;
}

std::string Coordinator::WorkerShuffleAddr(uint32_t worker_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = workers_.find(worker_id);
  return it == workers_.end() ? std::string() : it->second->shuffle_addr;
}

Status Coordinator::Call(uint32_t worker_id, net::TaskAssignMsg assign,
                         net::TaskResultMsg* result,
                         std::atomic<uint64_t>* rpc_id_out) {
  ANTIMR_TRACE_SPAN_DYN(
      "rpc", std::string(assign.kind == net::TaskKind::kMap ? "map" : "reduce") +
                 ":" + assign.job_id + ":" +
                 std::to_string(assign.task_index) + "@w" +
                 std::to_string(worker_id));
  const uint64_t call_start = NowNanos();
  assign.rpc_id = next_rpc_id_.fetch_add(1, std::memory_order_relaxed);
  // Published before the frame goes out so a speculation monitor can cancel
  // this call while it is still in flight.
  if (rpc_id_out != nullptr) {
    rpc_id_out->store(assign.rpc_id, std::memory_order_release);
  }

  PendingCall call;
  call.worker_id = worker_id;
  call.result = result;
  WorkerState* worker = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = workers_.find(worker_id);
    if (it == workers_.end()) {
      return Status::InvalidArgument("unknown worker " +
                                     std::to_string(worker_id));
    }
    if (!it->second->alive) {
      return Status::IOError("worker " + std::to_string(worker_id) +
                             " lost (already dead)");
    }
    worker = it->second.get();
    worker->inflight++;
    pending_[assign.rpc_id] = &call;
  }

  std::string payload;
  net::EncodeTaskAssign(assign, &payload);
  Status write_status;
  {
    std::lock_guard<std::mutex> lock(worker->write_mu);
    write_status = net::WriteFrame(worker->conn.get(), net::kTaskAssign,
                                   payload);
  }
  tasks_assigned_counter_->Inc();
  if (write_status.ok() && obs::kTraceCompiled && obs::TraceEnabled()) {
    // Flow arrow out of this rpc span into the worker's task span; the
    // rpc_id doubles as the flow id and rides in the assignment the worker
    // already decodes, which records the matching FlowEnd.
    obs::Tracer::Global().FlowStart("dispatch", "task_dispatch",
                                    assign.rpc_id);
  }

  if (!write_status.ok()) {
    // The receiver (or we, below) will notice the dead conn; unregister our
    // pending entry first so MarkDead's sweep cannot touch a dead stack
    // frame, then report the loss ourselves in case the receiver is slow.
    {
      std::lock_guard<std::mutex> lock(mu_);
      pending_.erase(assign.rpc_id);
      worker->inflight--;
    }
    MarkDead(worker, "write failed: " + write_status.message());
    return Status::IOError("worker " + std::to_string(worker_id) + " lost (" +
                           write_status.message() + ")");
  }

  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return call.done; });
  worker->inflight--;
  rpc_progress_.erase(assign.rpc_id);
  const uint64_t duration = NowNanos() - call_start;
  rpc_latency_hist_->Observe(duration);
  if (call.status.ok() && result->status_code == 0) {
    // Successful completions feed the speculation slowness baseline.
    auto& recent = recent_task_nanos_[assign.kind == net::TaskKind::kMap ? 0 : 1];
    if (recent.size() >= 64) recent.erase(recent.begin());
    recent.push_back(duration);
  }
  if (!call.status.ok()) return call.status;
  if (result->status_code != 0) {
    return net::StatusFromWire(result->status_code, result->status_msg);
  }
  return Status::OK();
}

void Coordinator::CancelTask(uint32_t worker_id, uint64_t rpc_id) {
  if (rpc_id == 0) return;  // attempt not dispatched yet: nothing to cancel
  WorkerState* worker = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = workers_.find(worker_id);
    if (it == workers_.end() || !it->second->alive) return;
    worker = it->second.get();
  }
  net::CancelTaskMsg msg;
  msg.rpc_id = rpc_id;
  std::string payload;
  net::EncodeCancelTask(msg, &payload);
  std::lock_guard<std::mutex> lock(worker->write_mu);
  net::WriteFrame(worker->conn.get(), net::kCancelTask, payload);  // best effort
}

void Coordinator::BroadcastJobFrame(uint8_t type, const std::string& job_id) {
  net::JobIdMsg msg;
  msg.job_id = job_id;
  std::string payload;
  net::EncodeJobId(msg, &payload);
  std::vector<WorkerState*> targets;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, worker] : workers_) {
      if (worker->alive) targets.push_back(worker.get());
    }
  }
  for (WorkerState* w : targets) {
    std::lock_guard<std::mutex> lock(w->write_mu);
    net::WriteFrame(w->conn.get(), type, payload);  // best effort
  }
}

uint32_t Coordinator::RpcProgressPermille(uint64_t rpc_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = rpc_progress_.find(rpc_id);
  return it == rpc_progress_.end() ? 0 : it->second;
}

uint64_t Coordinator::TypicalTaskNanos(net::TaskKind kind) const {
  std::vector<uint64_t> recent;
  {
    std::lock_guard<std::mutex> lock(mu_);
    recent = recent_task_nanos_[kind == net::TaskKind::kMap ? 0 : 1];
  }
  if (recent.empty()) return 0;
  std::nth_element(recent.begin(), recent.begin() + recent.size() / 2,
                   recent.end());
  return recent[recent.size() / 2];
}

void Coordinator::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (listener_) listener_->Close();
  // Join the accept thread before touching the worker set: it is the only
  // spawner of receiver threads, so a registration racing with Stop could
  // otherwise start a receiver after the join pass below already ran.
  if (accept_thread_.joinable()) accept_thread_.join();
  if (monitor_thread_.joinable()) monitor_thread_.join();
  if (http_ != nullptr) http_->Stop();
  std::vector<WorkerState*> workers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, worker] : workers_) workers.push_back(worker.get());
  }
  for (WorkerState* w : workers) {
    bool alive;
    {
      std::lock_guard<std::mutex> lock(mu_);
      alive = w->alive;
    }
    if (alive) {
      std::lock_guard<std::mutex> lock(w->write_mu);
      net::WriteFrame(w->conn.get(), net::kShutdown, "");  // best effort
    }
  }
  if (obs::kTraceCompiled && obs::TraceEnabled()) {
    // Workers answer Shutdown with a final kTraceChunk and close their end;
    // wait (bounded) for the receivers to see those clean EOFs so the last
    // chunks land in the merger before we cut the connections ourselves.
    const uint64_t deadline = NowNanos() + 500ull * 1000 * 1000;
    for (;;) {
      bool any_alive = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        for (auto& [id, worker] : workers_) {
          if (worker->alive) any_alive = true;
        }
      }
      if (!any_alive || NowNanos() >= deadline) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  for (WorkerState* w : workers) w->conn->Close();
  for (WorkerState* w : workers) {
    if (w->receiver.joinable()) w->receiver.join();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, worker] : workers_) {
      if (worker->alive) {
        worker->alive = false;
        workers_live_gauge_->Sub(1);
      }
    }
  }
}

// --- observability surface ------------------------------------------------

void Coordinator::AddStatusHandler(const std::string& path,
                                   net::HttpServer::Handler handler) {
  extra_status_handlers_.emplace_back(path, std::move(handler));
}

Status Coordinator::StartStatusServer(const std::string& addr) {
  http_ = std::make_unique<net::HttpServer>(transport_);
  http_->Handle("/metrics", [this](std::string* content_type) {
    *content_type = "text/plain; version=0.0.4; charset=utf-8";
    return ClusterMetricsText();
  });
  http_->Handle("/status", [this](std::string* content_type) {
    *content_type = "application/json";
    return StatusJson();
  });
  for (auto& [path, handler] : extra_status_handlers_) {
    http_->Handle(path, handler);
  }
  ANTIMR_RETURN_NOT_OK(http_->Start(addr));
  ANTIMR_LOG(kInfo) << "status server listening on " << http_->addr();
  return Status::OK();
}

std::string Coordinator::ClusterMetricsText() const {
  return cluster_metrics_.ToPrometheusText(&obs::MetricsRegistry::Global(),
                                           obs::ProcessUid());
}

std::string Coordinator::StatusJson() const {
  std::string out;
  out.append("{\n");
  const uint64_t now = NowNanos();
  {
    std::lock_guard<std::mutex> lock(mu_);
    int live = 0;
    int inflight = 0;
    for (const auto& [id, worker] : workers_) {
      live += worker->alive ? 1 : 0;
      inflight += worker->inflight;
    }
    out.append("  \"live_workers\": ").append(std::to_string(live));
    out.append(",\n  \"inflight_tasks\": ").append(std::to_string(inflight));
    out.append(",\n  \"workers\": [");
    bool first = true;
    for (const auto& [id, worker] : workers_) {
      out.append(first ? "\n" : ",\n");
      first = false;
      out.append("    {\"id\": ").append(std::to_string(id));
      out.append(", \"name\": \"");
      AppendJsonEscaped(&out, worker->name);
      out.append("\", \"alive\": ").append(worker->alive ? "true" : "false");
      out.append(", \"slots\": ").append(std::to_string(worker->slots));
      out.append(", \"inflight\": ").append(std::to_string(worker->inflight));
      const uint64_t idle_nanos = now > worker->last_activity_nanos
                                      ? now - worker->last_activity_nanos
                                      : 0;
      out.append(", \"last_activity_ms\": ")
          .append(std::to_string(idle_nanos / 1000000));
      out.append(", \"shuffle_addr\": \"");
      AppendJsonEscaped(&out, worker->shuffle_addr);
      out.append("\"}");
    }
    out.append(first ? "]" : "\n  ]");
  }
  const JobStatusSnapshot job = job_status();
  out.append(",\n  \"job\": {\"job_id\": \"");
  AppendJsonEscaped(&out, job.job_id);
  out.append("\", \"name\": \"");
  AppendJsonEscaped(&out, job.job_name);
  out.append("\", \"state\": \"");
  AppendJsonEscaped(&out, job.state);
  out.append("\", \"maps_total\": ").append(std::to_string(job.maps_total));
  out.append(", \"maps_done\": ").append(std::to_string(job.maps_done));
  out.append(", \"reduces_total\": ")
      .append(std::to_string(job.reduces_total));
  out.append(", \"reduces_done\": ").append(std::to_string(job.reduces_done));
  out.append(", \"map_reruns\": ").append(std::to_string(job.map_reruns));
  out.append("}\n}\n");
  return out;
}

void Coordinator::PublishJobStatus(const JobStatusSnapshot& snapshot) {
  std::lock_guard<std::mutex> lock(status_mu_);
  job_status_ = snapshot;
}

JobStatusSnapshot Coordinator::job_status() const {
  std::lock_guard<std::mutex> lock(status_mu_);
  return job_status_;
}

std::string Coordinator::ClusterTraceJson() {
  if (obs::kTraceCompiled) {
    std::string local;
    obs::Tracer::Global().DrainAll(&local);
    if (!local.empty()) {
      const Status merge = trace_merger_.AddChunk(1, local);
      if (!merge.ok()) {
        ANTIMR_LOG(kWarn) << "dropping local trace buffers: "
                          << merge.ToString();
      }
    }
  }
  return trace_merger_.ToJson();
}

Status Coordinator::WriteClusterTrace(const std::string& path) {
  if (obs::kTraceCompiled) {
    std::string local;
    obs::Tracer::Global().DrainAll(&local);
    if (!local.empty()) {
      ANTIMR_RETURN_NOT_OK(trace_merger_.AddChunk(1, local));
    }
  }
  return trace_merger_.WriteJson(path);
}

}  // namespace engine
}  // namespace antimr
