#include "obs/metrics_registry.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

namespace antimr {
namespace obs {

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
}

}  // namespace

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* r = new MetricsRegistry();
  return *r;
}

MetricsRegistry::Entry* MetricsRegistry::GetEntry(const std::string& name,
                                                  const std::string& help,
                                                  Kind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry e;
    e.kind = kind;
    e.help = help;
    switch (kind) {
      case Kind::kCounter:
        e.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        e.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        e.histogram = std::make_unique<Histogram>();
        break;
    }
    it = metrics_.emplace(name, std::move(e)).first;
  } else if (it->second.kind != kind) {
    std::fprintf(stderr, "metric %s re-registered as a different kind\n",
                 name.c_str());
    std::abort();
  }
  return &it->second;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  return GetEntry(name, help, Kind::kCounter)->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  return GetEntry(name, help, Kind::kGauge)->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help) {
  return GetEntry(name, help, Kind::kHistogram)->histogram.get();
}

void MetricsRegistry::VisitEntries(
    const std::function<void(const std::string& name, const Counter* counter,
                             const Gauge* gauge, const Histogram* histogram)>&
        fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, e] : metrics_) {
    fn(name, e.counter.get(), e.gauge.get(), e.histogram.get());
  }
}

std::string MetricsRegistry::ToPrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(1 << 14);
  char buf[128];
  for (const auto& [name, e] : metrics_) {
    if (!e.help.empty()) {
      out.append("# HELP ").append(name).append(" ").append(e.help);
      out.push_back('\n');
    }
    out.append("# TYPE ").append(name);
    switch (e.kind) {
      case Kind::kCounter: {
        out.append(" counter\n").append(name);
        std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", e.counter->value());
        out.append(buf);
        break;
      }
      case Kind::kGauge: {
        out.append(" gauge\n").append(name);
        std::snprintf(buf, sizeof(buf), " %" PRId64 "\n", e.gauge->value());
        out.append(buf);
        break;
      }
      case Kind::kHistogram: {
        out.append(" histogram\n");
        const Histogram& h = *e.histogram;
        uint64_t cumulative = 0;
        for (int i = 0; i < Histogram::kNumBuckets - 1; ++i) {
          cumulative += h.bucket_count(i);
          // Keep the exposition readable: skip leading all-zero buckets but
          // always emit buckets once counts start (cumulative counts must
          // not restart from a gap), plus the first bucket so an empty
          // histogram still shows its shape.
          if (cumulative == 0 && i != 0) continue;
          out.append(name);
          std::snprintf(buf, sizeof(buf),
                        "_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n",
                        Histogram::BucketBound(i), cumulative);
          out.append(buf);
        }
        cumulative += h.bucket_count(Histogram::kNumBuckets - 1);
        out.append(name);
        std::snprintf(buf, sizeof(buf), "_bucket{le=\"+Inf\"} %" PRIu64 "\n",
                      cumulative);
        out.append(buf);
        out.append(name);
        std::snprintf(buf, sizeof(buf), "_sum %" PRIu64 "\n", h.sum());
        out.append(buf);
        out.append(name);
        std::snprintf(buf, sizeof(buf), "_count %" PRIu64 "\n", h.count());
        out.append(buf);
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(1 << 14);
  out.append("{\n");
  char buf[128];
  bool first = true;
  for (const auto& [name, e] : metrics_) {
    if (!first) out.append(",\n");
    first = false;
    out.append("  \"");
    AppendEscaped(&out, name);
    out.append("\": ");
    switch (e.kind) {
      case Kind::kCounter: {
        std::snprintf(buf, sizeof(buf),
                      "{\"type\": \"counter\", \"value\": %" PRIu64 "}",
                      e.counter->value());
        out.append(buf);
        break;
      }
      case Kind::kGauge: {
        std::snprintf(buf, sizeof(buf),
                      "{\"type\": \"gauge\", \"value\": %" PRId64 "}",
                      e.gauge->value());
        out.append(buf);
        break;
      }
      case Kind::kHistogram: {
        const Histogram& h = *e.histogram;
        std::snprintf(buf, sizeof(buf),
                      "{\"type\": \"histogram\", \"count\": %" PRIu64
                      ", \"sum\": %" PRIu64 ", \"buckets\": [",
                      h.count(), h.sum());
        out.append(buf);
        bool first_bucket = true;
        for (int i = 0; i < Histogram::kNumBuckets; ++i) {
          const uint64_t n = h.bucket_count(i);
          if (n == 0) continue;
          if (!first_bucket) out.append(", ");
          first_bucket = false;
          if (i == Histogram::kNumBuckets - 1) {
            std::snprintf(buf, sizeof(buf),
                          "{\"le\": \"+Inf\", \"count\": %" PRIu64 "}", n);
          } else {
            std::snprintf(buf, sizeof(buf),
                          "{\"le\": %" PRIu64 ", \"count\": %" PRIu64 "}",
                          Histogram::BucketBound(i), n);
          }
          out.append(buf);
        }
        out.append("]}");
        break;
      }
    }
  }
  out.append("\n}\n");
  return out;
}

}  // namespace obs
}  // namespace antimr
