#include "obs/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/coding.h"
#include "common/logging.h"
#include "common/stopwatch.h"

namespace antimr {
namespace obs {

namespace internal {
std::atomic<bool> g_trace_enabled{false};
}  // namespace internal

namespace {

// Minimal JSON string escaping; span/instant names are ASCII identifiers but
// CLI-provided strings (paths in args) can carry anything.
void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      case '\r':
        out->append("\\r");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

TraceArgs& TraceArgs::Add(const char* key, uint64_t value) {
  if (!body_.empty()) body_.append(", ");
  body_.push_back('"');
  body_.append(key);
  body_.append("\": ");
  body_.append(std::to_string(value));
  return *this;
}

TraceArgs& TraceArgs::Add(const char* key, int64_t value) {
  if (!body_.empty()) body_.append(", ");
  body_.push_back('"');
  body_.append(key);
  body_.append("\": ");
  body_.append(std::to_string(value));
  return *this;
}

TraceArgs& TraceArgs::Add(const char* key, const std::string& value) {
  if (!body_.empty()) body_.append(", ");
  body_.push_back('"');
  body_.append(key);
  body_.append("\": ");
  AppendJsonString(&body_, value);
  return *this;
}

struct TraceEvent {
  char ph;            // B E X i C b e s f
  const char* cat;    // static string; may be "" for C events
  std::string name;
  uint64_t ts_nanos;
  uint64_t dur_nanos;  // X only
  uint64_t id;         // b/e/s/f only
  int64_t value;       // C only
  std::string args;    // pre-rendered args body, no braces
};

struct Tracer::ThreadBuffer {
  std::mutex mu;
  int tid;
  std::string name;
  std::vector<TraceEvent> events;
};

Tracer& Tracer::Global() {
  static Tracer* t = new Tracer();  // leaked: worker threads may outlive main
  return *t;
}

Tracer::ThreadBuffer* Tracer::BufferForThisThread() {
  thread_local ThreadBuffer* buf = nullptr;
  if (buf == nullptr) {
    auto* b = new ThreadBuffer();
    b->tid = LogThreadId();
    std::lock_guard<std::mutex> lock(mu_);
    buffers_.push_back(b);
    buf = b;
  }
  return buf;
}

void Tracer::Start() {
  internal::g_trace_enabled.store(true, std::memory_order_relaxed);
}

void Tracer::Stop() {
  internal::g_trace_enabled.store(false, std::memory_order_relaxed);
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (ThreadBuffer* b : buffers_) {
    std::lock_guard<std::mutex> bl(b->mu);
    b->events.clear();
  }
}

void Tracer::Begin(const char* cat, std::string name) {
  ThreadBuffer* b = BufferForThisThread();
  const uint64_t now = NowNanos();
  std::lock_guard<std::mutex> lock(b->mu);
  b->events.push_back({'B', cat, std::move(name), now, 0, 0, 0, {}});
}

void Tracer::End() {
  ThreadBuffer* b = BufferForThisThread();
  const uint64_t now = NowNanos();
  std::lock_guard<std::mutex> lock(b->mu);
  b->events.push_back({'E', "", {}, now, 0, 0, 0, {}});
}

void Tracer::Complete(const char* cat, std::string name, uint64_t ts_nanos,
                      uint64_t dur_nanos, TraceArgs args) {
  ThreadBuffer* b = BufferForThisThread();
  std::lock_guard<std::mutex> lock(b->mu);
  b->events.push_back({'X', cat, std::move(name), ts_nanos, dur_nanos, 0, 0,
                       args.json_body()});
}

void Tracer::Instant(const char* cat, std::string name, TraceArgs args) {
  ThreadBuffer* b = BufferForThisThread();
  const uint64_t now = NowNanos();
  std::lock_guard<std::mutex> lock(b->mu);
  b->events.push_back(
      {'i', cat, std::move(name), now, 0, 0, 0, args.json_body()});
}

void Tracer::CounterValue(std::string name, int64_t value) {
  ThreadBuffer* b = BufferForThisThread();
  const uint64_t now = NowNanos();
  std::lock_guard<std::mutex> lock(b->mu);
  b->events.push_back({'C', "", std::move(name), now, 0, 0, value, {}});
}

void Tracer::AsyncBegin(const char* cat, std::string name, uint64_t id,
                        uint64_t ts_nanos) {
  ThreadBuffer* b = BufferForThisThread();
  std::lock_guard<std::mutex> lock(b->mu);
  b->events.push_back({'b', cat, std::move(name), ts_nanos, 0, id, 0, {}});
}

void Tracer::AsyncEnd(const char* cat, std::string name, uint64_t id,
                      uint64_t ts_nanos) {
  ThreadBuffer* b = BufferForThisThread();
  std::lock_guard<std::mutex> lock(b->mu);
  b->events.push_back({'e', cat, std::move(name), ts_nanos, 0, id, 0, {}});
}

void Tracer::FlowStart(const char* cat, std::string name, uint64_t id) {
  ThreadBuffer* b = BufferForThisThread();
  const uint64_t now = NowNanos();
  std::lock_guard<std::mutex> lock(b->mu);
  b->events.push_back({'s', cat, std::move(name), now, 0, id, 0, {}});
}

void Tracer::FlowEnd(const char* cat, std::string name, uint64_t id) {
  ThreadBuffer* b = BufferForThisThread();
  const uint64_t now = NowNanos();
  std::lock_guard<std::mutex> lock(b->mu);
  b->events.push_back({'f', cat, std::move(name), now, 0, id, 0, {}});
}

namespace {

// Chunk wire format (concatenable sequence of lane blocks):
//   varint32 tid | length-prefixed lane name | varint64 event count |
//   per event: u8 ph | LP cat | LP name | varint64 ts | varint64 dur |
//              varint64 id | varint64 zigzag(value) | LP args
void EncodeLaneBlock(int tid, const std::string& name,
                     const std::vector<TraceEvent>& events, std::string* out) {
  PutVarint32(out, static_cast<uint32_t>(tid));
  PutLengthPrefixed(out, name);
  PutVarint64(out, events.size());
  for (const TraceEvent& ev : events) {
    out->push_back(ev.ph);
    PutLengthPrefixed(out, Slice(ev.cat == nullptr ? "" : ev.cat));
    PutLengthPrefixed(out, ev.name);
    PutVarint64(out, ev.ts_nanos);
    PutVarint64(out, ev.dur_nanos);
    PutVarint64(out, ev.id);
    PutVarint64(out, ZigZagEncode(ev.value));
    PutLengthPrefixed(out, ev.args);
  }
}

}  // namespace

void Tracer::DrainThisThread(std::string* out) {
  ThreadBuffer* b = BufferForThisThread();
  std::vector<TraceEvent> events;
  std::string name;
  {
    std::lock_guard<std::mutex> lock(b->mu);
    if (b->events.empty()) return;
    events.swap(b->events);
    name = b->name;
  }
  EncodeLaneBlock(b->tid, name, events, out);
}

void Tracer::DrainAll(std::string* out) {
  std::lock_guard<std::mutex> lock(mu_);
  for (ThreadBuffer* b : buffers_) {
    std::vector<TraceEvent> events;
    std::string name;
    {
      std::lock_guard<std::mutex> bl(b->mu);
      if (b->events.empty()) continue;
      events.swap(b->events);
      name = b->name;
    }
    EncodeLaneBlock(b->tid, name, events, out);
  }
}

void Tracer::SetCurrentThreadName(std::string name) {
  ThreadBuffer* b = BufferForThisThread();
  std::lock_guard<std::mutex> lock(b->mu);
  b->name = std::move(name);
}

size_t Tracer::event_count() {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (ThreadBuffer* b : buffers_) {
    std::lock_guard<std::mutex> bl(b->mu);
    n += b->events.size();
  }
  return n;
}

void AppendTraceEventJson(std::string* out, int pid, int tid,
                          const TraceEventView& ev) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{\"ph\": \"%c\", \"pid\": %d, \"tid\": %d, \"ts\": %.3f",
                ev.ph, pid, tid, static_cast<double>(ev.ts_nanos) / 1000.0);
  out->append(buf);
  if (ev.ph == 'X') {
    std::snprintf(buf, sizeof(buf), ", \"dur\": %.3f",
                  static_cast<double>(ev.dur_nanos) / 1000.0);
    out->append(buf);
  }
  if (ev.ph != 'E') {
    out->append(", \"name\": ");
    AppendJsonString(out, ev.name);
  }
  if (!ev.cat.empty()) {
    out->append(", \"cat\": ");
    AppendJsonString(out, ev.cat);
  }
  if (ev.ph == 'i') {
    out->append(", \"s\": \"t\"");  // thread-scoped instant
  }
  if (ev.ph == 'b' || ev.ph == 'e' || ev.ph == 's' || ev.ph == 'f') {
    std::snprintf(buf, sizeof(buf), ", \"id\": \"0x%" PRIx64 "\"", ev.id);
    out->append(buf);
  }
  if (ev.ph == 'f') {
    // Bind the arrow head to the enclosing slice's end, the convention
    // chrome://tracing renders most reliably.
    out->append(", \"bp\": \"e\"");
  }
  if (ev.ph == 'C') {
    std::snprintf(buf, sizeof(buf), ", \"args\": {\"value\": %" PRId64 "}",
                  ev.value);
    out->append(buf);
  } else if (!ev.args.empty()) {
    out->append(", \"args\": {");
    out->append(ev.args);
    out->append("}");
  }
  out->append("}");
}

void AppendTraceMetaJson(std::string* out, int pid, int tid, const char* what,
                         const std::string& name) {
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "{\"ph\": \"M\", \"pid\": %d, \"tid\": %d, \"name\": "
                "\"%s\", \"args\": {\"name\": ",
                pid, tid, what);
  out->append(buf);
  AppendJsonString(out, name);
  out->append("}}");
}

std::string Tracer::ToJson() {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(1 << 16);
  out.append("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
  bool first = true;
  auto emit = [&out, &first](const std::string& line) {
    if (!first) out.append(",\n");
    first = false;
    out.append(line);
  };
  {
    std::string line;
    AppendTraceMetaJson(&line, 1, 0, "process_name", "antimr");
    emit(line);
  }
  for (ThreadBuffer* b : buffers_) {
    std::lock_guard<std::mutex> bl(b->mu);
    if (!b->name.empty()) {
      std::string line;
      AppendTraceMetaJson(&line, 1, b->tid, "thread_name", b->name);
      emit(line);
    }
    // Synthesized X events (per-task phase breakdowns) and async stage
    // events carry explicit, earlier timestamps; restore per-lane timestamp
    // order so validators and viewers see monotonic ts per tid. Stable:
    // B-before-E ordering at equal ts is preserved.
    std::vector<TraceEvent> sorted = b->events;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const TraceEvent& a, const TraceEvent& e) {
                       return a.ts_nanos < e.ts_nanos;
                     });
    for (const TraceEvent& ev : sorted) {
      TraceEventView view;
      view.ph = ev.ph;
      view.cat = ev.cat == nullptr ? "" : ev.cat;
      view.name = ev.name;
      view.ts_nanos = ev.ts_nanos;
      view.dur_nanos = ev.dur_nanos;
      view.id = ev.id;
      view.value = ev.value;
      view.args = ev.args;
      std::string line;
      AppendTraceEventJson(&line, 1, b->tid, view);
      emit(line);
    }
  }
  out.append("\n]}\n");
  return out;
}

Status Tracer::WriteJson(const std::string& path) {
  const std::string json = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open trace file: " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return Status::IOError("short write to trace file: " + path);
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace antimr
