#include "obs/federation.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <random>

#include "common/coding.h"
#include "common/slice.h"
#include "common/stopwatch.h"

namespace antimr {
namespace obs {

namespace {

Status Corrupt() { return Status::InvalidArgument("corrupt metrics snapshot"); }

bool GetString(Slice* in, std::string* out) {
  Slice s;
  if (!GetLengthPrefixed(in, &s)) return false;
  out->assign(s.data(), s.size());
  return true;
}

}  // namespace

uint64_t ProcessUid() {
  static const uint64_t uid = [] {
    std::random_device rd;
    uint64_t v = (static_cast<uint64_t>(rd()) << 32) ^ rd();
    v ^= static_cast<uint64_t>(::getpid()) << 16;
    v ^= NowNanos();
    return v != 0 ? v : 1;
  }();
  return uid;
}

uint64_t NextFlowId() {
  static std::atomic<uint64_t> seq{0};
  return (ProcessUid() << 32) |
         (seq.fetch_add(1, std::memory_order_relaxed) & 0xFFFFFFFFu);
}

void SnapshotRegistry(const MetricsRegistry& reg, uint64_t registry_uid,
                      MetricsSnapshot* out) {
  out->registry_uid = registry_uid;
  reg.VisitEntries([out](const std::string& name, const Counter* counter,
                         const Gauge* gauge, const Histogram* histogram) {
    if (counter != nullptr) {
      out->counters[name] = counter->value();
    } else if (gauge != nullptr) {
      out->gauges[name] = gauge->value();
    } else if (histogram != nullptr) {
      SnapshotHistogram& h = out->histograms[name];
      h.count = histogram->count();
      h.sum = histogram->sum();
      for (int i = 0; i < Histogram::kNumBuckets; ++i) {
        const uint64_t n = histogram->bucket_count(i);
        if (n != 0) h.buckets[i] = n;
      }
    }
  });
}

void EncodeMetricsSnapshot(const MetricsSnapshot& snap, std::string* out) {
  PutFixed64(out, snap.registry_uid);
  PutVarint32(out, static_cast<uint32_t>(snap.counters.size()));
  for (const auto& [name, v] : snap.counters) {
    PutLengthPrefixed(out, name);
    PutVarint64(out, v);
  }
  PutVarint32(out, static_cast<uint32_t>(snap.gauges.size()));
  for (const auto& [name, v] : snap.gauges) {
    PutLengthPrefixed(out, name);
    PutVarint64(out, ZigZagEncode(v));
  }
  PutVarint32(out, static_cast<uint32_t>(snap.histograms.size()));
  for (const auto& [name, h] : snap.histograms) {
    PutLengthPrefixed(out, name);
    PutVarint64(out, h.count);
    PutVarint64(out, h.sum);
    PutVarint32(out, static_cast<uint32_t>(h.buckets.size()));
    for (const auto& [idx, n] : h.buckets) {
      PutVarint32(out, static_cast<uint32_t>(idx));
      PutVarint64(out, n);
    }
  }
}

Status DecodeMetricsSnapshot(const std::string& payload, MetricsSnapshot* out) {
  *out = MetricsSnapshot();
  Slice in(payload);
  uint32_t n = 0;
  if (!GetFixed64(&in, &out->registry_uid) || !GetVarint32(&in, &n)) {
    return Corrupt();
  }
  for (uint32_t i = 0; i < n; ++i) {
    std::string name;
    uint64_t v = 0;
    if (!GetString(&in, &name) || !GetVarint64(&in, &v)) return Corrupt();
    out->counters[name] = v;
  }
  if (!GetVarint32(&in, &n)) return Corrupt();
  for (uint32_t i = 0; i < n; ++i) {
    std::string name;
    uint64_t zz = 0;
    if (!GetString(&in, &name) || !GetVarint64(&in, &zz)) return Corrupt();
    out->gauges[name] = ZigZagDecode(zz);
  }
  if (!GetVarint32(&in, &n)) return Corrupt();
  for (uint32_t i = 0; i < n; ++i) {
    std::string name;
    SnapshotHistogram h;
    uint32_t nbuckets = 0;
    if (!GetString(&in, &name) || !GetVarint64(&in, &h.count) ||
        !GetVarint64(&in, &h.sum) || !GetVarint32(&in, &nbuckets)) {
      return Corrupt();
    }
    for (uint32_t b = 0; b < nbuckets; ++b) {
      uint32_t idx = 0;
      uint64_t cnt = 0;
      if (!GetVarint32(&in, &idx) || !GetVarint64(&in, &cnt) ||
          idx >= static_cast<uint32_t>(Histogram::kNumBuckets)) {
        return Corrupt();
      }
      h.buckets[static_cast<int>(idx)] = cnt;
    }
    out->histograms[name] = std::move(h);
  }
  if (!in.empty()) return Corrupt();
  return Status::OK();
}

void ClusterMetrics::Fold(uint32_t worker_id, const MetricsSnapshot& snap) {
  if (snap.registry_uid == 0) return;  // beat carried no snapshot
  std::lock_guard<std::mutex> lock(mu_);
  worker_uid_[worker_id] = snap.registry_uid;
  Incarnation& inc = incarnations_[snap.registry_uid];
  inc.workers.insert(worker_id);
  // A late beat from a worker already declared dead must not resurrect its
  // liveness (gauges would never zero); its values still fold below.
  if (dead_workers_.find(worker_id) == dead_workers_.end()) {
    inc.live.insert(worker_id);
  }
  inc.latest.registry_uid = snap.registry_uid;
  for (const auto& [name, v] : snap.counters) {
    uint64_t& cur = inc.latest.counters[name];
    cur = std::max(cur, v);
  }
  for (const auto& [name, v] : snap.gauges) {
    inc.latest.gauges[name] = v;
  }
  for (const auto& [name, h] : snap.histograms) {
    SnapshotHistogram& cur = inc.latest.histograms[name];
    // Total count orders histogram states; a stale beat can't shrink one.
    if (h.count >= cur.count) cur = h;
  }
}

void ClusterMetrics::MarkWorkerDead(uint32_t worker_id) {
  std::lock_guard<std::mutex> lock(mu_);
  dead_workers_.insert(worker_id);
  auto it = worker_uid_.find(worker_id);
  if (it == worker_uid_.end()) return;  // died before its first snapshot
  Incarnation& inc = incarnations_[it->second];
  inc.live.erase(worker_id);
  if (inc.live.empty()) {
    for (auto& [name, g] : inc.latest.gauges) g = 0;
  }
}

void ClusterMetrics::MergeInto(const MetricsSnapshot& src,
                               MetricsSnapshot* dst) const {
  for (const auto& [name, v] : src.counters) dst->counters[name] += v;
  for (const auto& [name, v] : src.gauges) dst->gauges[name] += v;
  for (const auto& [name, h] : src.histograms) {
    SnapshotHistogram& cur = dst->histograms[name];
    cur.count += h.count;
    cur.sum += h.sum;
    for (const auto& [idx, n] : h.buckets) cur.buckets[idx] += n;
  }
}

MetricsSnapshot ClusterMetrics::TotalsLocked(const MetricsRegistry* local,
                                             uint64_t local_uid) const {
  MetricsSnapshot totals;
  if (local != nullptr) {
    MetricsSnapshot s;
    SnapshotRegistry(*local, local_uid, &s);
    MergeInto(s, &totals);
  }
  for (const auto& [uid, inc] : incarnations_) {
    // The coordinator's own registry is read live above; in-process workers
    // reporting the same incarnation must not double it.
    if (local != nullptr && uid == local_uid) continue;
    MergeInto(inc.latest, &totals);
  }
  return totals;
}

MetricsSnapshot ClusterMetrics::ClusterTotals(const MetricsRegistry* local,
                                              uint64_t local_uid) const {
  std::lock_guard<std::mutex> lock(mu_);
  return TotalsLocked(local, local_uid);
}

std::string ClusterMetrics::ToPrometheusText(const MetricsRegistry* local,
                                             uint64_t local_uid) const {
  std::lock_guard<std::mutex> lock(mu_);
  const MetricsSnapshot totals = TotalsLocked(local, local_uid);
  std::string out;
  out.reserve(1 << 14);
  char buf[160];
  auto worker_series = [&](const std::string& name, bool is_counter) {
    for (const auto& [worker_id, uid] : worker_uid_) {
      const auto inc = incarnations_.find(uid);
      if (inc == incarnations_.end()) continue;
      const MetricsSnapshot& s = inc->second.latest;
      if (is_counter) {
        const auto it = s.counters.find(name);
        if (it == s.counters.end()) continue;
        std::snprintf(buf, sizeof(buf), "{worker=\"%u\"} %" PRIu64 "\n",
                      worker_id, it->second);
      } else {
        const auto it = s.gauges.find(name);
        if (it == s.gauges.end()) continue;
        std::snprintf(buf, sizeof(buf), "{worker=\"%u\"} %" PRId64 "\n",
                      worker_id, it->second);
      }
      out.append(name).append(buf);
    }
  };
  for (const auto& [name, v] : totals.counters) {
    out.append("# TYPE ").append(name).append(" counter\n");
    std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", v);
    out.append(name).append(buf);
    worker_series(name, /*is_counter=*/true);
  }
  for (const auto& [name, v] : totals.gauges) {
    out.append("# TYPE ").append(name).append(" gauge\n");
    std::snprintf(buf, sizeof(buf), " %" PRId64 "\n", v);
    out.append(name).append(buf);
    worker_series(name, /*is_counter=*/false);
  }
  for (const auto& [name, h] : totals.histograms) {
    out.append("# TYPE ").append(name).append(" histogram\n");
    uint64_t cumulative = 0;
    for (int i = 0; i < Histogram::kNumBuckets - 1; ++i) {
      const auto it = h.buckets.find(i);
      if (it != h.buckets.end()) cumulative += it->second;
      // Same readability rule as MetricsRegistry::ToPrometheusText: skip
      // leading all-zero buckets, keep the first and everything after counts
      // start so cumulative counts never restart from a gap.
      if (cumulative == 0 && i != 0) continue;
      std::snprintf(buf, sizeof(buf),
                    "_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n",
                    Histogram::BucketBound(i), cumulative);
      out.append(name).append(buf);
    }
    const auto inf = h.buckets.find(Histogram::kNumBuckets - 1);
    if (inf != h.buckets.end()) cumulative += inf->second;
    std::snprintf(buf, sizeof(buf), "_bucket{le=\"+Inf\"} %" PRIu64 "\n",
                  cumulative);
    out.append(name).append(buf);
    std::snprintf(buf, sizeof(buf), "_sum %" PRIu64 "\n", h.sum);
    out.append(name).append(buf);
    std::snprintf(buf, sizeof(buf), "_count %" PRIu64 "\n", h.count);
    out.append(name).append(buf);
  }
  return out;
}

size_t ClusterMetrics::worker_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return worker_uid_.size();
}

}  // namespace obs
}  // namespace antimr
