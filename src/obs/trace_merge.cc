#include "obs/trace_merge.h"

#include <algorithm>
#include <cstdio>

#include "common/coding.h"
#include "common/slice.h"

namespace antimr {
namespace obs {

namespace {

Status Corrupt() { return Status::InvalidArgument("corrupt trace chunk"); }

bool GetString(Slice* in, std::string* out) {
  Slice s;
  if (!GetLengthPrefixed(in, &s)) return false;
  out->assign(s.data(), s.size());
  return true;
}

}  // namespace

Status DecodeTraceChunk(const std::string& chunk,
                        std::vector<TraceChunkLane>* lanes) {
  Slice in(chunk);
  while (!in.empty()) {
    TraceChunkLane lane;
    uint32_t tid = 0;
    uint64_t count = 0;
    if (!GetVarint32(&in, &tid) || !GetString(&in, &lane.name) ||
        !GetVarint64(&in, &count)) {
      return Corrupt();
    }
    lane.tid = static_cast<int>(tid);
    // An absurd count means corruption; don't reserve unbounded memory.
    if (count > chunk.size()) return Corrupt();
    lane.events.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      TraceEventView ev;
      uint64_t zz_value = 0;
      if (in.empty()) return Corrupt();
      ev.ph = in[0];
      in.RemovePrefix(1);
      if (!GetString(&in, &ev.cat) || !GetString(&in, &ev.name) ||
          !GetVarint64(&in, &ev.ts_nanos) || !GetVarint64(&in, &ev.dur_nanos) ||
          !GetVarint64(&in, &ev.id) || !GetVarint64(&in, &zz_value) ||
          !GetString(&in, &ev.args)) {
        return Corrupt();
      }
      ev.value = ZigZagDecode(zz_value);
      lane.events.push_back(std::move(ev));
    }
    lanes->push_back(std::move(lane));
  }
  return Status::OK();
}

void ClusterTraceMerger::SetProcessName(int pid, const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  process_names_[pid] = name;
}

Status ClusterTraceMerger::AddChunk(int pid, const std::string& chunk) {
  std::vector<TraceChunkLane> decoded;
  ANTIMR_RETURN_NOT_OK(DecodeTraceChunk(chunk, &decoded));
  std::lock_guard<std::mutex> lock(mu_);
  for (TraceChunkLane& in : decoded) {
    Lane& lane = lanes_[{pid, in.tid}];
    if (lane.name.empty()) lane.name = in.name;
    std::move(in.events.begin(), in.events.end(),
              std::back_inserter(lane.events));
  }
  return Status::OK();
}

size_t ClusterTraceMerger::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [key, lane] : lanes_) n += lane.events.size();
  return n;
}

std::string ClusterTraceMerger::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(1 << 16);
  out.append("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
  bool first = true;
  auto emit = [&out, &first](const std::string& line) {
    if (!first) out.append(",\n");
    first = false;
    out.append(line);
  };
  // A process that shipped chunks but was never labeled still gets a lane.
  std::map<int, std::string> names = process_names_;
  for (const auto& [key, lane] : lanes_) {
    const int pid = key.first;
    if (names.find(pid) == names.end()) {
      names[pid] = "pid" + std::to_string(pid);
    }
  }
  for (const auto& [pid, name] : names) {
    std::string line;
    AppendTraceMetaJson(&line, pid, 0, "process_name", name);
    emit(line);
  }
  for (const auto& [key, lane] : lanes_) {
    const auto [pid, tid] = key;
    if (!lane.name.empty()) {
      std::string line;
      AppendTraceMetaJson(&line, pid, tid, "thread_name", lane.name);
      emit(line);
    }
    // Same per-lane re-sort as Tracer::ToJson: synthesized X/async events
    // carry explicit earlier timestamps; stable keeps B-before-E at ties.
    std::vector<TraceEventView> sorted = lane.events;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const TraceEventView& a, const TraceEventView& e) {
                       return a.ts_nanos < e.ts_nanos;
                     });
    for (const TraceEventView& ev : sorted) {
      std::string line;
      AppendTraceEventJson(&line, pid, tid, ev);
      emit(line);
    }
  }
  out.append("\n]}\n");
  return out;
}

Status ClusterTraceMerger::WriteJson(const std::string& path) const {
  const std::string json = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open trace file: " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return Status::IOError("short write to trace file: " + path);
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace antimr
