// Low-overhead tracing to Chrome trace-event / Perfetto JSON. Each worker
// thread records into its own buffer (one trace lane per thread), so a
// multi-stage DAG run renders as a gantt in chrome://tracing or
// ui.perfetto.dev: task spans nest per thread, per-task phase breakdowns
// appear as synthesized sub-spans, stages get one async track each, and
// rare events (Shared spills, AdaptiveSH decisions, dataset GC, task
// failures) show up as instants.
//
// Cost model: with no sink attached (Tracer not started) every macro is one
// relaxed atomic load; with -DANTIMR_TRACE=OFF the macros compile away and
// `kTraceCompiled` lets instrumentation blocks fold to nothing. Recording
// is lock-per-event on an uncontended per-thread mutex, paid only while a
// trace is being captured.
//
// Event vocabulary (Chrome trace-event "ph" values):
//   B/E  span begin/end on the calling thread (task boundaries)
//   X    complete event with explicit ts+dur (synthesized phase breakdowns)
//   i    instant (spills, decisions, GC, failures)
//   C    counter sample (queue depth, busy workers)
//   b/e  async span on an id-keyed track (one per plan stage)
//   s/f  flow arrow start/finish on an id-keyed edge (coordinator→worker
//        task dispatch, reducer→remote shuffle fetch); both ends must sit
//        inside a duration event on their thread to render
//   M    metadata (thread/process names), emitted by the exporter
//
// Distributed runs: every process records into its own Tracer; workers
// drain buffered events into compact binary *chunks* (DrainThisThread at
// task boundaries, DrainAll at process shutdown) that travel back to the
// coordinator over the wire, where obs::ClusterTraceMerger renders one
// merged trace with a pid lane per process. Timestamps are CLOCK_MONOTONIC,
// which shares one epoch across processes on a single host, so lanes align
// without clock translation.
#ifndef ANTIMR_OBS_TRACE_H_
#define ANTIMR_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

// -DANTIMR_TRACE=OFF (CMake) defines ANTIMR_TRACE_ENABLED=0: the macros
// below become no-ops and guarded instrumentation blocks dead-code away.
#ifndef ANTIMR_TRACE_ENABLED
#define ANTIMR_TRACE_ENABLED 1
#endif

namespace antimr {
namespace obs {

/// True when the build compiles tracing in at all. Use together with
/// TraceEnabled() to guard instrumentation that builds argument strings:
///   if (obs::kTraceCompiled && obs::TraceEnabled()) { ... }
constexpr bool kTraceCompiled = ANTIMR_TRACE_ENABLED != 0;

namespace internal {
extern std::atomic<bool> g_trace_enabled;
}  // namespace internal

/// True while a trace is being captured (Tracer::Start .. Stop). One
/// relaxed load; safe and meaningful on any thread at any time.
inline bool TraceEnabled() {
  return internal::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Small key/value bag rendered into the event's "args" JSON object.
/// Numeric and string values only — that covers every instrumentation site.
class TraceArgs {
 public:
  TraceArgs() = default;
  TraceArgs& Add(const char* key, uint64_t value);
  TraceArgs& Add(const char* key, int64_t value);
  TraceArgs& Add(const char* key, int value) {
    return Add(key, static_cast<int64_t>(value));
  }
  TraceArgs& Add(const char* key, const std::string& value);

  const std::string& json_body() const { return body_; }
  bool empty() const { return body_.empty(); }

 private:
  std::string body_;  ///< comma-joined `"key": value` pairs, no braces
};

/// \brief Process-wide trace recorder. Threads register lazily on first
/// event; buffers live for the tracer's lifetime, so exporting after a job
/// sees every lane even if a recording thread has since exited.
class Tracer {
 public:
  static Tracer& Global();

  /// Begin capturing. Clears nothing: Start/Stop can bracket several jobs
  /// and export once.
  void Start();
  void Stop();
  /// Drop all recorded events (thread registrations are kept).
  void Clear();

  // --- recording (call-sites gate on TraceEnabled() for speed; End/Begin
  // themselves do not check, so a span that began keeps its pair even if
  // capture stops mid-span) -----------------------------------------------
  void Begin(const char* cat, std::string name);
  void End();
  void Complete(const char* cat, std::string name, uint64_t ts_nanos,
                uint64_t dur_nanos, TraceArgs args = TraceArgs());
  void Instant(const char* cat, std::string name,
               TraceArgs args = TraceArgs());
  void CounterValue(std::string name, int64_t value);
  void AsyncBegin(const char* cat, std::string name, uint64_t id,
                  uint64_t ts_nanos);
  void AsyncEnd(const char* cat, std::string name, uint64_t id,
                uint64_t ts_nanos);
  /// Flow arrow endpoints ('s'/'f'), paired across threads/processes by id.
  /// Record each inside an enclosing span or viewers will not anchor it.
  void FlowStart(const char* cat, std::string name, uint64_t id);
  void FlowEnd(const char* cat, std::string name, uint64_t id);

  /// Label the calling thread's lane ("workers-3", "fetch-0", ...).
  void SetCurrentThreadName(std::string name);

  // --- chunk shipping (distributed runs) ---------------------------------
  /// Serialize and remove the calling thread's buffered events, appending
  /// one lane block to *out (concatenable; see ClusterTraceMerger). Spans in
  /// the chunk are balanced only if called between tasks — i.e. with no
  /// B…E span open on this thread — which worker task boundaries guarantee.
  /// No-op (appends nothing) when the lane is empty.
  void DrainThisThread(std::string* out);
  /// Serialize and remove every lane's buffered events. Only safe when no
  /// other thread is mid-span: a worker process at shutdown, or the
  /// coordinator assembling the final merged trace.
  void DrainAll(std::string* out);

  /// Chrome trace-event JSON: {"displayTimeUnit":..., "traceEvents":[...]}.
  /// Per-lane events are sorted by timestamp, so ts is monotonic per tid.
  std::string ToJson();
  /// ToJson straight to a file.
  Status WriteJson(const std::string& path);

  /// Events currently buffered across all lanes (tests, sizing).
  size_t event_count();

 private:
  Tracer() = default;
  struct ThreadBuffer;
  ThreadBuffer* BufferForThisThread();

  std::mutex mu_;  ///< guards buffers_ registration and export
  std::vector<ThreadBuffer*> buffers_;
};

/// \brief RAII span on the calling thread. Default-constructed spans are
/// inactive; BeginDyn arms one with a runtime-built name.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(const char* cat, const char* name) {
    if (TraceEnabled()) BeginDyn(cat, name);
  }
  ~ScopedSpan() {
    if (active_) Tracer::Global().End();
  }

  /// Arm the span (used by call sites that build the name only when
  /// tracing). No-op if already active.
  void BeginDyn(const char* cat, std::string name) {
    if (active_) return;
    active_ = true;
    Tracer::Global().Begin(cat, std::move(name));
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  bool active_ = false;
};

/// \brief One trace event in owned form — the decode target for shipped
/// chunks and the shared input of the JSON renderer used by both
/// Tracer::ToJson and ClusterTraceMerger.
struct TraceEventView {
  char ph = 'i';
  std::string cat;
  std::string name;
  uint64_t ts_nanos = 0;
  uint64_t dur_nanos = 0;  // X only
  uint64_t id = 0;         // b/e/s/f only
  int64_t value = 0;       // C only
  std::string args;        // pre-rendered args body, no braces
};

/// Render one Chrome trace-event object (no trailing comma) into *out.
void AppendTraceEventJson(std::string* out, int pid, int tid,
                          const TraceEventView& ev);
/// Render a 'M' metadata event; `what` is "process_name" or "thread_name".
void AppendTraceMetaJson(std::string* out, int pid, int tid, const char* what,
                         const std::string& name);

}  // namespace obs
}  // namespace antimr

#define ANTIMR_TRACE_CONCAT_INNER_(a, b) a##b
#define ANTIMR_TRACE_CONCAT_(a, b) ANTIMR_TRACE_CONCAT_INNER_(a, b)

#if ANTIMR_TRACE_ENABLED
/// Span over the enclosing scope with a static name.
#define ANTIMR_TRACE_SPAN(cat, name) \
  ::antimr::obs::ScopedSpan ANTIMR_TRACE_CONCAT_(antimr_span_, \
                                                 __LINE__)(cat, name)
/// Span whose name expression is evaluated only while capturing.
#define ANTIMR_TRACE_SPAN_DYN(cat, name_expr)                            \
  ::antimr::obs::ScopedSpan ANTIMR_TRACE_CONCAT_(antimr_span_, __LINE__); \
  if (::antimr::obs::TraceEnabled())                                     \
  ANTIMR_TRACE_CONCAT_(antimr_span_, __LINE__).BeginDyn(cat, name_expr)
/// Instant event; the args expression is evaluated only while capturing.
#define ANTIMR_TRACE_INSTANT(cat, name, ...)                             \
  do {                                                                   \
    if (::antimr::obs::TraceEnabled()) {                                 \
      ::antimr::obs::Tracer::Global().Instant(cat, name __VA_OPT__(, )   \
                                                  __VA_ARGS__);          \
    }                                                                    \
  } while (0)
/// Counter sample (renders as a counter track).
#define ANTIMR_TRACE_COUNTER(name, value)                           \
  do {                                                              \
    if (::antimr::obs::TraceEnabled()) {                            \
      ::antimr::obs::Tracer::Global().CounterValue(name, value);    \
    }                                                               \
  } while (0)
#else
#define ANTIMR_TRACE_SPAN(cat, name) \
  do {                               \
  } while (0)
#define ANTIMR_TRACE_SPAN_DYN(cat, name_expr) \
  do {                                        \
  } while (0)
#define ANTIMR_TRACE_INSTANT(...) \
  do {                            \
  } while (0)
#define ANTIMR_TRACE_COUNTER(name, value) \
  do {                                    \
  } while (0)
#endif  // ANTIMR_TRACE_ENABLED

#endif  // ANTIMR_OBS_TRACE_H_
