// Metrics federation: shipping per-process MetricsRegistry state to the
// coordinator and folding it into one cluster-wide view.
//
// Protocol (piggybacked on worker heartbeats): each beat carries a full
// *absolute* snapshot of the worker's registry — cumulative counter values,
// current gauges, whole histograms — never increments. Retransmits and
// duplicate folds are therefore idempotent by construction, and a lost beat
// costs nothing (the next one carries the same cumulative state). The
// coordinator keeps the latest snapshot per *registry incarnation* and
// merges counters with max(), so a stale or reordered beat can never move a
// counter backwards.
//
// Incarnations, not workers, are the dedup unit: a snapshot is stamped with
// `registry_uid`, a random per-process id. In-process loopback clusters run
// every worker against the same process-global registry; folding each
// worker's beat as if it were independent would multiply counts by the
// worker count. Distinct uids (real multi-process clusters) sum; identical
// uids collapse to one. A reconnecting worker process gets a fresh uid, so
// its new counters sum on top of the dead incarnation's retained final
// snapshot — cluster totals stay monotonic across reconnects.
//
// Death: MarkWorkerDead keeps the incarnation's final snapshot (counters
// remain in cluster totals — work done is done) but zeroes its gauges once
// no live worker shares the incarnation (a dead process holds no queue
// depth).
#ifndef ANTIMR_OBS_FEDERATION_H_
#define ANTIMR_OBS_FEDERATION_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>

#include "common/status.h"
#include "obs/metrics_registry.h"

namespace antimr {
namespace obs {

/// Random 64-bit id of this process (stable for the process lifetime, never
/// zero). Stamps metrics snapshots so the coordinator can tell "N workers
/// sharing one registry" from "N independent registries".
uint64_t ProcessUid();

/// Process-unique id for trace flow arrows: high bits from ProcessUid, low
/// bits a process-local sequence, so ids never collide across the cluster.
uint64_t NextFlowId();

/// Sparse histogram state: only non-zero log2 buckets travel.
struct SnapshotHistogram {
  uint64_t count = 0;
  uint64_t sum = 0;
  std::map<int, uint64_t> buckets;  ///< bucket index → count
};

/// One registry's absolute state at a point in time.
struct MetricsSnapshot {
  uint64_t registry_uid = 0;
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, SnapshotHistogram> histograms;
};

/// Capture `reg`'s current state, stamped with `registry_uid`.
void SnapshotRegistry(const MetricsRegistry& reg, uint64_t registry_uid,
                      MetricsSnapshot* out);

void EncodeMetricsSnapshot(const MetricsSnapshot& snap, std::string* out);
Status DecodeMetricsSnapshot(const std::string& payload, MetricsSnapshot* out);

/// \brief The coordinator's cluster-wide metrics view: latest snapshot per
/// registry incarnation plus worker → incarnation attribution. Thread-safe.
class ClusterMetrics {
 public:
  /// Fold a snapshot reported by `worker_id`. Idempotent; per-counter max
  /// keeps totals monotonic under retransmit or reorder.
  void Fold(uint32_t worker_id, const MetricsSnapshot& snap);

  /// Worker declared lost. Its incarnation's final snapshot is retained;
  /// gauges zero once the incarnation has no live workers left.
  void MarkWorkerDead(uint32_t worker_id);

  /// Merged totals: `local` (the coordinator's own registry, incarnation
  /// `local_uid`, read live) plus every *other* incarnation's latest
  /// snapshot, counted once each. `local` may be null.
  MetricsSnapshot ClusterTotals(const MetricsRegistry* local,
                                uint64_t local_uid) const;

  /// Prometheus exposition of ClusterTotals: an unlabelled cluster-total
  /// series per metric, plus per-worker `{worker="N"}` series for counters
  /// and gauges (histograms merge into the total only).
  std::string ToPrometheusText(const MetricsRegistry* local,
                               uint64_t local_uid) const;

  /// Workers that have ever reported (dead ones included — retention).
  size_t worker_count() const;

 private:
  struct Incarnation {
    MetricsSnapshot latest;
    std::set<uint32_t> workers;  ///< every worker that ever reported it
    std::set<uint32_t> live;     ///< subset not yet marked dead
  };

  void MergeInto(const MetricsSnapshot& src, MetricsSnapshot* dst) const;
  MetricsSnapshot TotalsLocked(const MetricsRegistry* local,
                               uint64_t local_uid) const;

  mutable std::mutex mu_;
  std::map<uint64_t, Incarnation> incarnations_;  ///< registry_uid → state
  std::map<uint32_t, uint64_t> worker_uid_;       ///< worker → incarnation
  std::set<uint32_t> dead_workers_;               ///< never resurrected
};

}  // namespace obs
}  // namespace antimr

#endif  // ANTIMR_OBS_FEDERATION_H_
