// Merging worker trace chunks into one cluster-wide Chrome trace.
//
// Workers serialize their Tracer lanes into binary chunks (see
// Tracer::DrainThisThread / DrainAll in trace.h) that ride back to the
// coordinator piggybacked on TaskResult or in a kTraceChunk frame. The
// ClusterTraceMerger decodes them into per-(pid, tid) lanes — one *process*
// lane per worker, the coordinator conventionally pid 1 — and renders a
// single Perfetto/Chrome JSON where coordinator→worker dispatch and
// reducer→shuffle-server fetches appear as flow arrows ('s'/'f' pairs
// crossing pid lanes).
//
// Timestamps are CLOCK_MONOTONIC microseconds from a shared boot epoch
// (single-host clusters), so no clock translation happens here; lanes are
// re-sorted per (pid, tid) exactly as Tracer::ToJson does for one process.
#ifndef ANTIMR_OBS_TRACE_MERGE_H_
#define ANTIMR_OBS_TRACE_MERGE_H_

#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/trace.h"

namespace antimr {
namespace obs {

/// Decode a serialized trace chunk (a concatenation of lane blocks) into
/// owned events, appending to *lanes. Corruption → InvalidArgument.
struct TraceChunkLane {
  int tid = 0;
  std::string name;
  std::vector<TraceEventView> events;
};
Status DecodeTraceChunk(const std::string& chunk,
                        std::vector<TraceChunkLane>* lanes);

/// \brief Accumulates trace chunks from many processes and renders the
/// merged trace. Thread-safe: the coordinator's receive loops add chunks
/// concurrently while a status request renders.
class ClusterTraceMerger {
 public:
  /// Label a process lane ("coord", "worker:w1", ...). pid 1 is the
  /// coordinator by convention; workers use 1 + worker_id.
  void SetProcessName(int pid, const std::string& name);

  /// Decode `chunk` into process `pid`'s lanes. Chunks for the same
  /// (pid, tid) accumulate — a worker ships one chunk per task.
  Status AddChunk(int pid, const std::string& chunk);

  /// Events accumulated across all processes (tests, sizing).
  size_t event_count() const;

  /// Chrome trace-event JSON over every process lane added so far.
  std::string ToJson() const;
  Status WriteJson(const std::string& path) const;

 private:
  struct Lane {
    std::string name;
    std::vector<TraceEventView> events;
  };

  mutable std::mutex mu_;
  std::map<int, std::string> process_names_;
  std::map<std::pair<int, int>, Lane> lanes_;  ///< (pid, tid) → lane
};

}  // namespace obs
}  // namespace antimr

#endif  // ANTIMR_OBS_TRACE_MERGE_H_
