// Thread-safe process-wide metrics: monotonic counters, up/down gauges, and
// log2-bucketed histograms, exportable as Prometheus exposition text or
// JSON. Complements JobMetrics: JobMetrics is a per-job value aggregated
// through task results, while the registry holds process-level distributions
// that JobMetrics' sums flatten away — fetch-wait latency per reduce task,
// Shared spill sizes, per-reduce-partition input records (skew).
//
// Instruments are created once (GetCounter/GetGauge/GetHistogram return a
// stable pointer for the process lifetime) and updated lock-free with
// relaxed atomics; update sites cache the pointer, so steady-state cost is
// one fetch_add. Log2 buckets cover the full uint64 range in 65 buckets —
// coarse, but latencies and byte sizes spread over 6+ decades and only
// order-of-magnitude resolution is needed.
#ifndef ANTIMR_OBS_METRICS_REGISTRY_H_
#define ANTIMR_OBS_METRICS_REGISTRY_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace antimr {
namespace obs {

/// Monotonically increasing counter.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Gauge that can move both ways. Add/Sub-based so several sources (e.g. two
/// TaskPools updating queue depth) aggregate correctly; Set is for
/// single-writer gauges only.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(int64_t n) { value_.fetch_sub(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Histogram over uint64 samples with power-of-two bucket bounds:
/// le 2^0, 2^1, ..., 2^63, +Inf.
class Histogram {
 public:
  static constexpr int kNumBuckets = 65;  ///< 64 finite bounds + overflow

  void Observe(uint64_t v) {
    buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Index of the smallest bucket whose upper bound holds v: 0 for v<=1,
  /// ceil(log2(v)) up to 63, else the +Inf bucket.
  static int BucketIndex(uint64_t v) {
    if (v <= 1) return 0;
    const int ceil_log2 = std::bit_width(v - 1);
    return ceil_log2 <= 63 ? ceil_log2 : kNumBuckets - 1;
  }
  /// Upper bound of finite bucket i (i in [0, 63]).
  static uint64_t BucketBound(int i) { return uint64_t{1} << i; }

  uint64_t bucket_count(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> count_{0};
};

/// \brief Name → instrument directory. A name is bound to one instrument
/// kind forever; re-requesting it with the same kind returns the same
/// pointer, with a different kind aborts (programming error, caught by the
/// registry tests). Create standalone registries in tests; production code
/// uses Global().
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name, const std::string& help);
  Gauge* GetGauge(const std::string& name, const std::string& help);
  Histogram* GetHistogram(const std::string& name, const std::string& help);

  /// Prometheus exposition text: # HELP / # TYPE headers, cumulative
  /// le-labelled histogram buckets with _sum and _count.
  std::string ToPrometheusText() const;
  /// JSON object keyed by metric name; histograms carry count, sum, and the
  /// non-empty buckets with their upper bounds.
  std::string ToJson() const;

  /// Walk every instrument in name order. Exactly one of counter / gauge /
  /// histogram is non-null per call. Used by the federation layer to
  /// snapshot a registry for heartbeat shipping without widening this class.
  void VisitEntries(
      const std::function<void(const std::string& name, const Counter* counter,
                               const Gauge* gauge,
                               const Histogram* histogram)>& fn) const;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* GetEntry(const std::string& name, const std::string& help,
                  Kind kind);

  mutable std::mutex mu_;                ///< guards the map shape only
  std::map<std::string, Entry> metrics_;  ///< sorted → stable export order
};

}  // namespace obs
}  // namespace antimr

#endif  // ANTIMR_OBS_METRICS_REGISTRY_H_
