// Typed convenience layer over the byte-oriented core API: serializers for
// common key/value types plus TypedMapper / TypedReducer adapters, so user
// programs can work with uint64_t/double/string instead of raw slices.
//
// Key encodings are ORDER-PRESERVING: the framework sorts keys bytewise by
// default, so Serializer<uint64_t> uses big-endian fixed width and
// Serializer<double> the sign-flipped IEEE trick; bytewise order equals
// numeric order. Value encodings favour compactness (varint/zig-zag).
#ifndef ANTIMR_MR_TYPED_H_
#define ANTIMR_MR_TYPED_H_

#include <cstring>
#include <string>

#include "common/coding.h"
#include "mr/api.h"

namespace antimr {

/// \brief Byte (de)serialization for a type T. Specialize to extend.
template <typename T>
struct Serializer;

template <>
struct Serializer<std::string> {
  static void Encode(const std::string& v, std::string* out) { *out = v; }
  static bool Decode(const Slice& in, std::string* v) {
    v->assign(in.data(), in.size());
    return true;
  }
};

/// View pass-through for zero-copy typed programs: Decode hands back the raw
/// view (valid as long as the underlying record view), so reducers can
/// inspect values without materializing each one.
template <>
struct Serializer<Slice> {
  static void Encode(const Slice& v, std::string* out) {
    out->assign(v.data(), v.size());
  }
  static bool Decode(const Slice& in, Slice* v) {
    *v = in;
    return true;
  }
};

/// Big-endian fixed width: bytewise order == numeric order.
template <>
struct Serializer<uint64_t> {
  static void Encode(const uint64_t& v, std::string* out) {
    out->clear();
    for (int shift = 56; shift >= 0; shift -= 8) {
      out->push_back(static_cast<char>((v >> shift) & 0xff));
    }
  }
  static bool Decode(const Slice& in, uint64_t* v) {
    if (in.size() != 8) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v = (*v << 8) | static_cast<unsigned char>(in[i]);
    }
    return true;
  }
};

/// Offset big-endian: negative values sort before positive ones.
template <>
struct Serializer<int64_t> {
  static void Encode(const int64_t& v, std::string* out) {
    Serializer<uint64_t>::Encode(
        static_cast<uint64_t>(v) ^ (uint64_t{1} << 63), out);
  }
  static bool Decode(const Slice& in, int64_t* v) {
    uint64_t u;
    if (!Serializer<uint64_t>::Decode(in, &u)) return false;
    *v = static_cast<int64_t>(u ^ (uint64_t{1} << 63));
    return true;
  }
};

/// IEEE-754 total-order transform: flip all bits of negatives, flip the
/// sign bit of non-negatives; bytewise order == numeric order (NaNs sort
/// above +inf or below -inf depending on sign bit).
template <>
struct Serializer<double> {
  static void Encode(const double& v, std::string* out) {
    uint64_t bits;
    std::memcpy(&bits, &v, 8);
    bits = (bits & (uint64_t{1} << 63)) ? ~bits : bits | (uint64_t{1} << 63);
    Serializer<uint64_t>::Encode(bits, out);
  }
  static bool Decode(const Slice& in, double* v) {
    uint64_t bits;
    if (!Serializer<uint64_t>::Decode(in, &bits)) return false;
    bits = (bits & (uint64_t{1} << 63)) ? bits & ~(uint64_t{1} << 63) : ~bits;
    std::memcpy(v, &bits, 8);
    return true;
  }
};

/// \brief Mapper adapter: decode input, run TypedMap, encode output.
///
/// KI/VI are the input record types, KO/VO the intermediate types.
template <typename KI, typename VI, typename KO, typename VO>
class TypedMapper : public Mapper {
 public:
  /// Typed emission facade over the framework MapContext.
  class Context {
   public:
    explicit Context(MapContext* base) : base_(base) {}

    void Emit(const KO& key, const VO& value) {
      Serializer<KO>::Encode(key, &key_buf_);
      Serializer<VO>::Encode(value, &value_buf_);
      base_->Emit(key_buf_, value_buf_);
    }

   private:
    MapContext* base_;
    std::string key_buf_;
    std::string value_buf_;
  };

  virtual void TypedMap(const KI& key, const VI& value, Context* ctx) = 0;

  void Map(const Slice& key, const Slice& value, MapContext* ctx) final {
    KI k;
    VI v;
    if (!Serializer<KI>::Decode(key, &k) ||
        !Serializer<VI>::Decode(value, &v)) {
      return;  // skip malformed records, like Hadoop's record skipping
    }
    Context typed(ctx);
    TypedMap(k, v, &typed);
  }
};

/// \brief Iterator adapter decoding each value to VO.
template <typename VO>
class TypedValueIterator {
 public:
  explicit TypedValueIterator(ValueIterator* base) : base_(base) {}

  bool Next(VO* value) {
    Slice raw;
    while (base_->Next(&raw)) {
      if (Serializer<VO>::Decode(raw, value)) return true;
    }
    return false;
  }

 private:
  ValueIterator* base_;
};

/// \brief Reducer adapter: decode group key and values, encode output.
///
/// KI/VI are the intermediate types, KO/VO the output types. Also usable as
/// a typed Combiner (KO = KI, VO = VI).
template <typename KI, typename VI, typename KO, typename VO>
class TypedReducer : public Reducer {
 public:
  class Context {
   public:
    explicit Context(ReduceContext* base) : base_(base) {}

    void Emit(const KO& key, const VO& value) {
      Serializer<KO>::Encode(key, &key_buf_);
      Serializer<VO>::Encode(value, &value_buf_);
      base_->Emit(key_buf_, value_buf_);
    }

   private:
    ReduceContext* base_;
    std::string key_buf_;
    std::string value_buf_;
  };

  virtual void TypedReduce(const KI& key, TypedValueIterator<VI>* values,
                           Context* ctx) = 0;

  void Reduce(const Slice& key, ValueIterator* values,
              ReduceContext* ctx) final {
    KI k;
    if (!Serializer<KI>::Decode(key, &k)) return;
    TypedValueIterator<VI> typed_values(values);
    Context typed_ctx(ctx);
    TypedReduce(k, &typed_values, &typed_ctx);
  }
};

/// Build a typed KV record (for inputs).
template <typename K, typename V>
KV MakeTypedKV(const K& key, const V& value) {
  KV kv;
  Serializer<K>::Encode(key, &kv.key);
  Serializer<V>::Encode(value, &kv.value);
  return kv;
}

}  // namespace antimr

#endif  // ANTIMR_MR_TYPED_H_
