// The user-facing MapReduce programming model: Mapper, Reducer (a Combiner is
// a Reducer, as in Hadoop), Partitioner, and the contexts they emit into.
// Records are opaque byte strings; typed layers serialize through
// common/coding.h.
#ifndef ANTIMR_MR_API_H_
#define ANTIMR_MR_API_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/record_batch.h"
#include "common/slice.h"
#include "common/status.h"
#include "io/env.h"
#include "io/merger.h"

namespace antimr {

/// A materialized key/value record. The owning-string counterpart of
/// RecordRef (common/arena.h); the hot record path moves RecordRef views,
/// KV remains the user-facing type for inputs and collected outputs.
struct KV {
  std::string key;
  std::string value;

  KV() = default;
  KV(std::string k, std::string v) : key(std::move(k)), value(std::move(v)) {}
  /// Materialize a view-typed record (copies both byte ranges).
  explicit KV(const RecordRef& ref)
      : key(ref.key.data(), ref.key.size()),
        value(ref.value.data(), ref.value.size()) {}

  /// Borrow this record as views (valid while *this is alive, unmoved).
  RecordRef ref() const { return RecordRef(Slice(key), Slice(value)); }

  bool operator==(const KV& other) const = default;
};

/// \brief Assigns intermediate keys to reduce tasks.
///
/// Implementations must be stateless and thread-safe: one instance is shared
/// by all tasks, and Anti-Combining re-invokes it on reducers (LazySH decode).
class Partitioner {
 public:
  virtual ~Partitioner() = default;
  /// Return the reduce task in [0, num_partitions) for `key`. Callers must
  /// have validated num_partitions (ValidatePartitions) at plan time;
  /// Partition itself clamps a non-positive count to partition 0 rather
  /// than hitting modulo-by-zero UB.
  virtual int Partition(const Slice& key, int num_partitions) const = 0;

  /// Plan-time validation of the partition count this partitioner will be
  /// asked to cover. The base check rejects num_partitions <= 0 with a
  /// permanent InvalidArgument (never retried); subclasses may add checks
  /// but must call the base first.
  virtual Status ValidatePartitions(int num_partitions) const;
};

/// Default partitioner: hash(key) mod num_partitions.
class HashPartitioner : public Partitioner {
 public:
  int Partition(const Slice& key, int num_partitions) const override;
};

/// Range partitioner over sorted pivots built from an input sample
/// (mr/skew.h). pivots holds num_partitions - 1 bytewise-sorted boundary
/// keys (duplicates allowed); Partition(key) is the index of the first
/// pivot > key (upper_bound), clamped to num_partitions - 1, so partition p
/// receives keys in (pivot[p-1], pivot[p]]. An empty pivot list (empty
/// sample) falls back to hash partitioning. Stateless after construction,
/// so LazySH re-invocation on reducers sees identical placements.
class RangePartitioner : public Partitioner {
 public:
  explicit RangePartitioner(std::vector<std::string> pivots);

  int Partition(const Slice& key, int num_partitions) const override;
  Status ValidatePartitions(int num_partitions) const override;

  const std::vector<std::string>& pivots() const { return pivots_; }

 private:
  std::vector<std::string> pivots_;  ///< bytewise-sorted boundary keys
};

std::shared_ptr<const Partitioner> DefaultPartitioner();

class JobMetrics;  // defined in mr/metrics.h

/// \brief Per-task environment handed to Setup.
///
/// Mirrors the slice of Hadoop's task context that Anti-Combining needs: the
/// task's identity, the job's Partitioner and comparators, node-local
/// storage, and a metrics sink.
struct TaskInfo {
  int task_id = 0;             ///< map task index or reduce partition index
  int num_reduce_tasks = 1;
  /// The shuffle partition whose records this task/combiner instance sees:
  /// the reduce partition index in reduce tasks, and the partition being
  /// combined during map-side spill/merge combining. -1 in map tasks.
  int shuffle_partition = -1;
  const Partitioner* partitioner = nullptr;
  KeyComparator key_cmp;
  KeyComparator grouping_cmp;
  Env* env = nullptr;          ///< node-local disk for task-scoped files
  JobMetrics* metrics = nullptr;  ///< task-private; aggregated at job end
};

/// \brief Sink for Map output records.
class MapContext {
 public:
  virtual ~MapContext() = default;
  virtual void Emit(const Slice& key, const Slice& value) = 0;

  /// Emit several records at once. Identical to calling Emit per record;
  /// batch-aware sinks (MapOutputBuffer) override it to amortize partition
  /// dispatch and buffer bookkeeping.
  virtual void EmitBatch(const RecordBatch& batch) {
    for (const RecordRef& r : batch) Emit(r.key, r.value);
  }
};

/// \brief The Map primitive. One instance per map task (may hold state).
class Mapper {
 public:
  virtual ~Mapper() = default;
  virtual void Setup(const TaskInfo& info, MapContext* ctx) {
    (void)info;
    (void)ctx;
  }
  /// Called once per input record.
  virtual void Map(const Slice& key, const Slice& value, MapContext* ctx) = 0;
  virtual void Cleanup(MapContext* ctx) { (void)ctx; }
};

/// \brief Forward iteration over the values of one reduce group.
class ValueIterator {
 public:
  virtual ~ValueIterator() = default;
  /// Advance to the next value; returns false when the group is exhausted.
  /// *value stays valid until the next call.
  virtual bool Next(Slice* value) = 0;

  /// Key of the record whose value the last successful Next returned. With
  /// a grouping comparator (secondary sort) this can differ from the
  /// Reduce call's group key. Only valid after Next returned true;
  /// iterators over bare value lists return an empty slice.
  virtual Slice key() const { return Slice(); }
};

/// \brief ValueIterator over a plain vector of strings (one key's values).
class StringVectorIterator : public ValueIterator {
 public:
  explicit StringVectorIterator(const std::vector<std::string>* values)
      : values_(values) {}

  bool Next(Slice* value) override {
    if (pos_ >= values_->size()) return false;
    *value = (*values_)[pos_++];
    return true;
  }

 private:
  const std::vector<std::string>* values_;
  size_t pos_ = 0;
};

/// \brief ValueIterator over a vector of slices (one key's values, borrowed
/// from an arena or block frame — the zero-copy analog of
/// StringVectorIterator).
class SliceVectorIterator : public ValueIterator {
 public:
  explicit SliceVectorIterator(const std::vector<Slice>* values)
      : values_(values) {}

  bool Next(Slice* value) override {
    if (pos_ >= values_->size()) return false;
    *value = (*values_)[pos_++];
    return true;
  }

 private:
  const std::vector<Slice>* values_;
  size_t pos_ = 0;
};

/// \brief Sink for Reduce output records.
class ReduceContext {
 public:
  virtual ~ReduceContext() = default;
  virtual void Emit(const Slice& key, const Slice& value) = 0;
};

/// \brief The Reduce primitive. One instance per reduce task. Also the
/// interface for Combiners (Hadoop defines a Combiner as a reducer class).
class Reducer {
 public:
  virtual ~Reducer() = default;
  virtual void Setup(const TaskInfo& info, ReduceContext* ctx) {
    (void)info;
    (void)ctx;
  }
  /// Called once per key group, in key order.
  virtual void Reduce(const Slice& key, ValueIterator* values,
                      ReduceContext* ctx) = 0;
  virtual void Cleanup(ReduceContext* ctx) { (void)ctx; }
};

using MapperFactory = std::function<std::unique_ptr<Mapper>()>;
using ReducerFactory = std::function<std::unique_ptr<Reducer>()>;

/// \brief Streaming reader over one input split.
class RecordSource {
 public:
  virtual ~RecordSource() = default;
  /// Produce the next record; returns false at end of split.
  virtual bool Next(KV* record) = 0;

  /// View-based variant the map loop drives: *ref stays valid until the
  /// next NextRef/Next call. The default adapter materializes through
  /// Next(); sources that already own stable storage (VectorSource,
  /// dataset partitions) override it to hand out views copy-free.
  virtual bool NextRef(RecordRef* ref) {
    if (!Next(&scratch_)) return false;
    *ref = scratch_.ref();
    return true;
  }

  /// Fill `batch` (cleared first) with up to `max_records` records and
  /// return the count; 0 means end of split. Views obey the batch contract
  /// (common/record_batch.h): valid until the next call on this source. The
  /// default adapter returns one record per call through NextRef; sources
  /// with stable storage override it to return real batches.
  virtual size_t NextBatch(RecordBatch* batch,
                           size_t max_records = kDefaultBatchRecords) {
    batch->clear();
    RecordRef ref;
    if (max_records == 0 || !NextRef(&ref)) return 0;
    batch->push_back(ref);
    return 1;
  }

 private:
  KV scratch_;  ///< backing for the default NextRef adapter only
};

/// \brief An input split: a factory so each map task opens its own reader.
struct InputSplit {
  std::function<std::unique_ptr<RecordSource>()> open;
};

/// RecordSource over a materialized vector (shared ownership so splits can
/// be reopened cheaply).
class VectorSource : public RecordSource {
 public:
  explicit VectorSource(std::shared_ptr<const std::vector<KV>> records)
      : records_(std::move(records)) {}

  bool Next(KV* record) override {
    if (pos_ >= records_->size()) return false;
    *record = (*records_)[pos_++];
    return true;
  }

  /// Zero-copy: views into the shared vector, which outlives the source.
  bool NextRef(RecordRef* ref) override {
    if (pos_ >= records_->size()) return false;
    *ref = (*records_)[pos_++].ref();
    return true;
  }

  /// Eager batches: the shared vector outlives the source, so views survive
  /// any number of advances.
  size_t NextBatch(RecordBatch* batch,
                   size_t max_records = kDefaultBatchRecords) override {
    batch->clear();
    while (pos_ < records_->size() && batch->size() < max_records) {
      batch->push_back((*records_)[pos_++].ref());
    }
    return batch->size();
  }

 private:
  std::shared_ptr<const std::vector<KV>> records_;
  size_t pos_ = 0;
};

/// Wrap materialized records as an InputSplit.
InputSplit MakeSplit(std::vector<KV> records);

/// Split `records` into `num_splits` contiguous chunks.
std::vector<InputSplit> MakeSplits(std::vector<KV> records, int num_splits);

}  // namespace antimr

#endif  // ANTIMR_MR_API_H_
