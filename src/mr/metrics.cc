#include "mr/metrics.h"

#include <cinttypes>
#include <cstdio>

namespace antimr {

uint64_t PhaseCpu::Total() const {
  return map_fn + partition_fn + encode + sort + combine + compress +
         decompress + merge + decode + remap + shared + reduce_fn;
}

void PhaseCpu::Add(const PhaseCpu& other) {
  map_fn += other.map_fn;
  partition_fn += other.partition_fn;
  encode += other.encode;
  sort += other.sort;
  combine += other.combine;
  compress += other.compress;
  decompress += other.decompress;
  merge += other.merge;
  decode += other.decode;
  remap += other.remap;
  shared += other.shared;
  reduce_fn += other.reduce_fn;
}

void JobMetrics::Add(const JobMetrics& other) {
  input_records += other.input_records;
  input_bytes += other.input_bytes;
  map_output_records += other.map_output_records;
  map_output_bytes += other.map_output_bytes;
  emitted_records += other.emitted_records;
  emitted_bytes += other.emitted_bytes;
  combine_input_records += other.combine_input_records;
  combine_output_records += other.combine_output_records;
  map_spills += other.map_spills;
  shuffle_bytes += other.shuffle_bytes;
  shuffle_fetch_wait_nanos += other.shuffle_fetch_wait_nanos;
  shuffle_decode_nanos += other.shuffle_decode_nanos;
  shuffle_merge_nanos += other.shuffle_merge_nanos;
  shuffle_blocks += other.shuffle_blocks;
  if (other.shuffle_peak_buffered_bytes > shuffle_peak_buffered_bytes) {
    shuffle_peak_buffered_bytes = other.shuffle_peak_buffered_bytes;
  }
  shuffle_overlapped_fetches += other.shuffle_overlapped_fetches;
  reduce_input_records += other.reduce_input_records;
  reduce_groups += other.reduce_groups;
  output_records += other.output_records;
  output_bytes += other.output_bytes;
  eager_records += other.eager_records;
  lazy_records += other.lazy_records;
  plain_records += other.plain_records;
  shared_insertions += other.shared_insertions;
  shared_spills += other.shared_spills;
  shared_spill_bytes += other.shared_spill_bytes;
  shared_spill_merges += other.shared_spill_merges;
  remap_calls += other.remap_calls;
  disk_bytes_read += other.disk_bytes_read;
  disk_bytes_written += other.disk_bytes_written;
  cpu.Add(other.cpu);
  total_cpu_nanos += other.total_cpu_nanos;
}

std::string JobMetrics::ToJson() const {
  std::string out = "{";
  bool first = true;
  auto field = [&](const char* name, uint64_t value) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s\"%s\": %" PRIu64, first ? "" : ", ",
                  name, value);
    out += buf;
    first = false;
  };
  field("input_records", input_records);
  field("input_bytes", input_bytes);
  field("map_output_records", map_output_records);
  field("map_output_bytes", map_output_bytes);
  field("emitted_records", emitted_records);
  field("emitted_bytes", emitted_bytes);
  field("combine_input_records", combine_input_records);
  field("combine_output_records", combine_output_records);
  field("map_spills", map_spills);
  field("shuffle_bytes", shuffle_bytes);
  field("shuffle_fetch_wait_nanos", shuffle_fetch_wait_nanos);
  field("shuffle_decode_nanos", shuffle_decode_nanos);
  field("shuffle_merge_nanos", shuffle_merge_nanos);
  field("shuffle_blocks", shuffle_blocks);
  field("shuffle_peak_buffered_bytes", shuffle_peak_buffered_bytes);
  field("shuffle_overlapped_fetches", shuffle_overlapped_fetches);
  field("reduce_input_records", reduce_input_records);
  field("reduce_groups", reduce_groups);
  field("output_records", output_records);
  field("output_bytes", output_bytes);
  field("eager_records", eager_records);
  field("lazy_records", lazy_records);
  field("plain_records", plain_records);
  field("shared_insertions", shared_insertions);
  field("shared_spills", shared_spills);
  field("shared_spill_bytes", shared_spill_bytes);
  field("shared_spill_merges", shared_spill_merges);
  field("remap_calls", remap_calls);
  field("disk_bytes_read", disk_bytes_read);
  field("disk_bytes_written", disk_bytes_written);
  field("cpu_map_fn_nanos", cpu.map_fn);
  field("cpu_partition_fn_nanos", cpu.partition_fn);
  field("cpu_encode_nanos", cpu.encode);
  field("cpu_sort_nanos", cpu.sort);
  field("cpu_combine_nanos", cpu.combine);
  field("cpu_compress_nanos", cpu.compress);
  field("cpu_decompress_nanos", cpu.decompress);
  field("cpu_merge_nanos", cpu.merge);
  field("cpu_decode_nanos", cpu.decode);
  field("cpu_remap_nanos", cpu.remap);
  field("cpu_shared_nanos", cpu.shared);
  field("cpu_reduce_fn_nanos", cpu.reduce_fn);
  field("total_cpu_nanos", total_cpu_nanos);
  field("wall_nanos", wall_nanos);
  out += "}";
  return out;
}

std::string FormatBytes(uint64_t bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (bytes >= 1ULL << 30) {
    std::snprintf(buf, sizeof(buf), "%.2f GB", b / (1ULL << 30));
  } else if (bytes >= 1ULL << 20) {
    std::snprintf(buf, sizeof(buf), "%.2f MB", b / (1ULL << 20));
  } else if (bytes >= 1ULL << 10) {
    std::snprintf(buf, sizeof(buf), "%.2f KB", b / (1ULL << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRIu64 " B", bytes);
  }
  return buf;
}

std::string FormatNanos(uint64_t nanos) {
  char buf[64];
  const double n = static_cast<double>(nanos);
  if (nanos >= 1000000000ULL) {
    std::snprintf(buf, sizeof(buf), "%.3f s", n / 1e9);
  } else if (nanos >= 1000000ULL) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", n / 1e6);
  } else if (nanos >= 1000ULL) {
    std::snprintf(buf, sizeof(buf), "%.3f us", n / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRIu64 " ns", nanos);
  }
  return buf;
}

std::string JobMetrics::ToString() const {
  char buf[3072];
  std::snprintf(
      buf, sizeof(buf),
      "input:           %" PRIu64 " records, %s\n"
      "map output:      %" PRIu64 " records, %s\n"
      "emitted:         %" PRIu64 " records, %s"
      " (eager=%" PRIu64 " lazy=%" PRIu64 " plain=%" PRIu64 ")\n"
      "combine:         %" PRIu64 " -> %" PRIu64 " records\n"
      "map spills:      %" PRIu64 "\n"
      "shuffle:         %s (%" PRIu64
      " blocks, peak buffered %s, %" PRIu64 " overlapped fetches)\n"
      "shuffle phases:  fetch wait %s, decode %s, merge %s\n"
      "reduce input:    %" PRIu64 " records in %" PRIu64 " groups\n"
      "shared:          %" PRIu64 " inserts, %" PRIu64 " spills (%s), %" PRIu64
      " remap calls\n"
      "output:          %" PRIu64 " records, %s\n"
      "disk:            read %s, written %s\n"
      "cpu (phases):    %s   wall: %s\n",
      input_records, FormatBytes(input_bytes).c_str(), map_output_records,
      FormatBytes(map_output_bytes).c_str(), emitted_records,
      FormatBytes(emitted_bytes).c_str(), eager_records, lazy_records,
      plain_records, combine_input_records, combine_output_records, map_spills,
      FormatBytes(shuffle_bytes).c_str(), shuffle_blocks,
      FormatBytes(shuffle_peak_buffered_bytes).c_str(),
      shuffle_overlapped_fetches,
      FormatNanos(shuffle_fetch_wait_nanos).c_str(),
      FormatNanos(shuffle_decode_nanos).c_str(),
      FormatNanos(shuffle_merge_nanos).c_str(), reduce_input_records,
      reduce_groups,
      shared_insertions, shared_spills, FormatBytes(shared_spill_bytes).c_str(),
      remap_calls, output_records, FormatBytes(output_bytes).c_str(),
      FormatBytes(disk_bytes_read).c_str(),
      FormatBytes(disk_bytes_written).c_str(),
      FormatNanos(cpu.Total()).c_str(), FormatNanos(wall_nanos).c_str());
  return buf;
}

}  // namespace antimr
