#include "mr/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace antimr {

uint64_t PhaseCpu::Total() const {
  uint64_t total = 0;
#define ANTIMR_SUM_FIELD(name) total += name;
  ANTIMR_PHASE_CPU_FIELDS(ANTIMR_SUM_FIELD)
#undef ANTIMR_SUM_FIELD
  return total;
}

void PhaseCpu::Add(const PhaseCpu& other) {
#define ANTIMR_ADD_FIELD(name) name += other.name;
  ANTIMR_PHASE_CPU_FIELDS(ANTIMR_ADD_FIELD)
#undef ANTIMR_ADD_FIELD
}

void JobMetrics::Add(const JobMetrics& other) {
#define ANTIMR_ADD_FIELD(name) name += other.name;
  ANTIMR_JOB_SUM_FIELDS(ANTIMR_ADD_FIELD)
#undef ANTIMR_ADD_FIELD
#define ANTIMR_MAX_FIELD(name) name = std::max(name, other.name);
  ANTIMR_JOB_MAX_FIELDS(ANTIMR_MAX_FIELD)
#undef ANTIMR_MAX_FIELD
  cpu.Add(other.cpu);
  total_cpu_nanos += other.total_cpu_nanos;
}

std::string JobMetrics::ToJson() const {
  std::string out = "{";
  bool first = true;
  auto field = [&](const char* name, uint64_t value) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s\"%s\": %" PRIu64, first ? "" : ", ",
                  name, value);
    out += buf;
    first = false;
  };
#define ANTIMR_JSON_FIELD(name) field(#name, name);
  ANTIMR_JOB_SUM_FIELDS(ANTIMR_JSON_FIELD)
  ANTIMR_JOB_MAX_FIELDS(ANTIMR_JSON_FIELD)
#undef ANTIMR_JSON_FIELD
#define ANTIMR_JSON_FIELD(name) field("cpu_" #name "_nanos", cpu.name);
  ANTIMR_PHASE_CPU_FIELDS(ANTIMR_JSON_FIELD)
#undef ANTIMR_JSON_FIELD
  field("total_cpu_nanos", total_cpu_nanos);
  field("wall_nanos", wall_nanos);
  out += "}";
  return out;
}

std::string FormatBytes(uint64_t bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (bytes >= 1ULL << 30) {
    std::snprintf(buf, sizeof(buf), "%.2f GB", b / (1ULL << 30));
  } else if (bytes >= 1ULL << 20) {
    std::snprintf(buf, sizeof(buf), "%.2f MB", b / (1ULL << 20));
  } else if (bytes >= 1ULL << 10) {
    std::snprintf(buf, sizeof(buf), "%.2f KB", b / (1ULL << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRIu64 " B", bytes);
  }
  return buf;
}

std::string FormatNanos(uint64_t nanos) {
  char buf[64];
  const double n = static_cast<double>(nanos);
  if (nanos >= 1000000000ULL) {
    std::snprintf(buf, sizeof(buf), "%.3f s", n / 1e9);
  } else if (nanos >= 1000000ULL) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", n / 1e6);
  } else if (nanos >= 1000ULL) {
    std::snprintf(buf, sizeof(buf), "%.3f us", n / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRIu64 " ns", nanos);
  }
  return buf;
}

std::string JobMetrics::ToString() const {
  char buf[3072];
  std::snprintf(
      buf, sizeof(buf),
      "input:           %" PRIu64 " records, %s\n"
      "map output:      %" PRIu64 " records, %s\n"
      "emitted:         %" PRIu64 " records, %s"
      " (eager=%" PRIu64 " lazy=%" PRIu64 " plain=%" PRIu64 ")\n"
      "combine:         %" PRIu64 " -> %" PRIu64 " records\n"
      "map spills:      %" PRIu64 "\n"
      "shuffle:         %s (%" PRIu64
      " blocks, peak buffered %s, %" PRIu64 " overlapped fetches)\n"
      "shuffle phases:  fetch wait %s, decode %s, merge %s\n"
      "reduce input:    %" PRIu64 " records in %" PRIu64 " groups\n"
      "shared:          %" PRIu64 " inserts, %" PRIu64 " spills (%s), %" PRIu64
      " remap calls\n"
      "output:          %" PRIu64 " records, %s\n"
      "disk:            read %s, written %s\n"
      "cpu (phases):    %s   wall: %s\n",
      input_records, FormatBytes(input_bytes).c_str(), map_output_records,
      FormatBytes(map_output_bytes).c_str(), emitted_records,
      FormatBytes(emitted_bytes).c_str(), eager_records, lazy_records,
      plain_records, combine_input_records, combine_output_records, map_spills,
      FormatBytes(shuffle_bytes).c_str(), shuffle_blocks,
      FormatBytes(shuffle_peak_buffered_bytes).c_str(),
      shuffle_overlapped_fetches,
      FormatNanos(shuffle_fetch_wait_nanos).c_str(),
      FormatNanos(shuffle_decode_nanos).c_str(),
      FormatNanos(shuffle_merge_nanos).c_str(), reduce_input_records,
      reduce_groups,
      shared_insertions, shared_spills, FormatBytes(shared_spill_bytes).c_str(),
      remap_calls, output_records, FormatBytes(output_bytes).c_str(),
      FormatBytes(disk_bytes_read).c_str(),
      FormatBytes(disk_bytes_written).c_str(),
      FormatNanos(cpu.Total()).c_str(), FormatNanos(wall_nanos).c_str());
  return buf;
}

namespace {

// Name + value of the phase with the largest CPU share in `cpu`.
void DominantPhase(const PhaseCpu& cpu, const char** name, uint64_t* nanos) {
  *name = "-";
  *nanos = 0;
#define ANTIMR_PICK_FIELD(field)  \
  if (cpu.field > *nanos) {       \
    *nanos = cpu.field;           \
    *name = #field;               \
  }
  ANTIMR_PHASE_CPU_FIELDS(ANTIMR_PICK_FIELD)
#undef ANTIMR_PICK_FIELD
}

}  // namespace

std::string TopTasksReport(const std::vector<TaskMetrics>& tasks,
                           size_t top_n) {
  if (tasks.empty() || top_n == 0) return "";
  std::vector<const TaskMetrics*> sorted;
  sorted.reserve(tasks.size());
  for (const TaskMetrics& t : tasks) sorted.push_back(&t);
  std::sort(sorted.begin(), sorted.end(),
            [](const TaskMetrics* a, const TaskMetrics* b) {
              return a->cpu_nanos > b->cpu_nanos;
            });
  if (sorted.size() > top_n) sorted.resize(top_n);

  std::string out;
  char buf[192];
  std::snprintf(buf, sizeof(buf), "top %zu tasks by cpu (of %zu):\n",
                sorted.size(), tasks.size());
  out.append(buf);
  for (const TaskMetrics* t : sorted) {
    const char* phase_name = nullptr;
    uint64_t phase_nanos = 0;
    DominantPhase(t->metrics.cpu, &phase_name, &phase_nanos);
    const uint64_t phase_total = t->metrics.cpu.Total();
    const double share =
        phase_total == 0 ? 0.0
                         : 100.0 * static_cast<double>(phase_nanos) /
                               static_cast<double>(phase_total);
    std::snprintf(buf, sizeof(buf),
                  "  %-6s %4d  cpu %-12s dominant %-12s %-12s (%4.1f%%)\n",
                  t->is_map ? "map" : "reduce", t->task_id,
                  FormatNanos(t->cpu_nanos).c_str(), phase_name,
                  FormatNanos(phase_nanos).c_str(), share);
    out.append(buf);
  }
  return out;
}

}  // namespace antimr
