#include "mr/reduce_task.h"

#include "common/stopwatch.h"
#include "io/throttled_env.h"

namespace antimr {

namespace {

// Iterates the values of one group, advancing the underlying merge stream.
class GroupValueIterator : public ValueIterator {
 public:
  GroupValueIterator(KVStream* stream, const std::string* group_key,
                     const KeyComparator* grouping_cmp)
      : stream_(stream), group_key_(group_key), grouping_cmp_(grouping_cmp) {}

  bool Next(Slice* value) override {
    if (exhausted_) return false;
    if (!started_) {
      started_ = true;
      *value = stream_->value();
      ++consumed_;
      return true;
    }
    ANTIMR_CHECK_OK(stream_->Next());
    if (!stream_->Valid() ||
        (*grouping_cmp_)(stream_->key(), Slice(*group_key_)) != 0) {
      exhausted_ = true;
      return false;
    }
    *value = stream_->value();
    ++consumed_;
    return true;
  }

  Slice key() const override { return stream_->key(); }

  /// Advance past any unconsumed records of this group.
  void Drain() {
    Slice ignored;
    while (Next(&ignored)) {
    }
  }

  uint64_t consumed() const { return consumed_; }

 private:
  KVStream* stream_;
  const std::string* group_key_;
  const KeyComparator* grouping_cmp_;
  bool started_ = false;
  bool exhausted_ = false;
  uint64_t consumed_ = 0;
};

}  // namespace

Status RunGroups(KVStream* stream, const KeyComparator& grouping_cmp,
                 Reducer* reducer, ReduceContext* ctx, GroupRunStats* stats) {
  std::string group_key;
  while (stream->Valid()) {
    group_key.assign(stream->key().data(), stream->key().size());
    GroupValueIterator values(stream, &group_key, &grouping_cmp);
    {
      ScopedTimer t(&stats->fn_nanos);
      reducer->Reduce(group_key, &values, ctx);
    }
    values.Drain();
    stats->groups += 1;
    stats->records += values.consumed();
  }
  return Status::OK();
}

Status ApplyCombiner(const JobSpec& spec, const TaskInfo& info,
                     KVStream* stream, std::vector<KV>* out,
                     GroupRunStats* stats) {
  std::unique_ptr<Reducer> combiner = spec.combiner_factory();
  CollectingContext ctx(out);
  combiner->Setup(info, &ctx);
  ANTIMR_RETURN_NOT_OK(
      RunGroups(stream, spec.EffectiveGroupingCmp(), combiner.get(), &ctx,
                stats));
  {
    // AntiCombiner does its combining and re-encoding work in Cleanup.
    ScopedTimer t(&stats->fn_nanos);
    combiner->Cleanup(&ctx);
  }
  return Status::OK();
}

Status RunReduceTask(const JobSpec& spec, int partition,
                     const ReduceTaskInputs& inputs, Env* env,
                     bool collect_output, ReduceTaskResult* result) {
  JobMetrics& m = result->metrics;
  const Codec* codec = GetCodec(spec.map_output_codec);

  // Fetch every map task's segment for this partition ("network transfer").
  std::vector<std::unique_ptr<KVStream>> segments;
  segments.reserve(inputs.segment_files.size());
  for (const std::string& fname : inputs.segment_files) {
    std::unique_ptr<KVStream> stream;
    const uint64_t fetched_before = m.shuffle_bytes;
    ANTIMR_RETURN_NOT_OK(FetchSegment(env, fname, codec, &m.cpu.decompress,
                                      &m.shuffle_bytes, &stream));
    SleepForBytes(m.shuffle_bytes - fetched_before, inputs.network_mb_per_s);
    if (stream->Valid()) segments.push_back(std::move(stream));
  }

  MergingStream merged(std::move(segments), spec.key_cmp);

  TaskInfo info;
  info.task_id = partition;
  info.num_reduce_tasks = spec.num_reduce_tasks;
  info.shuffle_partition = partition;
  info.partitioner = spec.partitioner.get();
  info.key_cmp = spec.key_cmp;
  info.grouping_cmp = spec.EffectiveGroupingCmp();
  info.env = env;
  info.metrics = &m;

  std::unique_ptr<Reducer> reducer = spec.reducer_factory();
  std::vector<KV> sink;
  CollectingContext ctx(collect_output ? &result->output : &sink);
  reducer->Setup(info, &ctx);
  GroupRunStats stats;
  ANTIMR_RETURN_NOT_OK(
      RunGroups(&merged, info.grouping_cmp, reducer.get(), &ctx, &stats));
  {
    ScopedTimer t(&stats.fn_nanos);
    reducer->Cleanup(&ctx);
  }
  m.cpu.reduce_fn += stats.fn_nanos;
  m.reduce_groups += stats.groups;
  m.reduce_input_records += stats.records;
  m.output_records +=
      collect_output ? result->output.size() : sink.size();
  m.output_bytes += ctx.bytes();
  if (!collect_output) sink.clear();
  return Status::OK();
}

}  // namespace antimr
