#include "mr/reduce_task.h"

#include "common/stopwatch.h"
#include "mr/task_trace.h"
#include "obs/metrics_registry.h"

namespace antimr {

namespace {

// Iterates the values of one group, advancing the underlying merge stream.
class GroupValueIterator : public ValueIterator {
 public:
  GroupValueIterator(KVStream* stream, const std::string* group_key,
                     const KeyComparator* grouping_cmp)
      : stream_(stream), group_key_(group_key), grouping_cmp_(grouping_cmp) {}

  bool Next(Slice* value) override {
    if (exhausted_) return false;
    if (!started_) {
      started_ = true;
      *value = stream_->value();
      ++consumed_;
      return true;
    }
    // Stream errors (e.g. a corrupt segment block) end the iteration; the
    // status is surfaced to RunGroups so the task fails cleanly instead of
    // decoding garbage.
    status_ = stream_->Next();
    if (!status_.ok() || !stream_->Valid() ||
        (*grouping_cmp_)(stream_->key(), Slice(*group_key_)) != 0) {
      exhausted_ = true;
      return false;
    }
    *value = stream_->value();
    ++consumed_;
    return true;
  }

  Slice key() const override { return stream_->key(); }

  /// Advance past any unconsumed records of this group.
  void Drain() {
    Slice ignored;
    while (Next(&ignored)) {
    }
  }

  uint64_t consumed() const { return consumed_; }

  /// Error from the underlying stream, if iteration hit one.
  const Status& status() const { return status_; }

 private:
  KVStream* stream_;
  const std::string* group_key_;
  const KeyComparator* grouping_cmp_;
  bool started_ = false;
  bool exhausted_ = false;
  uint64_t consumed_ = 0;
  Status status_;
};

// Iterates a group's values over two contiguous RecordRef spans: the carried
// prefix (records interned from earlier batches) and the in-batch suffix.
// No stream calls happen during iteration, so the Reduce call cannot
// invalidate the views it is reading.
class TwoSpanValueIterator : public ValueIterator {
 public:
  TwoSpanValueIterator(const RecordRef* a, size_t na, const RecordRef* b,
                       size_t nb)
      : a_(a), na_(na), b_(b), nb_(nb) {}

  bool Next(Slice* value) override {
    const RecordRef* rec;
    if (i_ < na_) {
      rec = &a_[i_];
    } else if (i_ - na_ < nb_) {
      rec = &b_[i_ - na_];
    } else {
      return false;
    }
    ++i_;
    cur_key_ = rec->key;
    *value = rec->value;
    return true;
  }

  Slice key() const override { return cur_key_; }

 private:
  const RecordRef* a_;
  size_t na_;
  const RecordRef* b_;
  size_t nb_;
  size_t i_ = 0;
  Slice cur_key_;
};

}  // namespace

Status RunGroupsBatched(KVStream* stream, const KeyComparator& grouping_cmp,
                        Reducer* reducer, ReduceContext* ctx,
                        GroupRunStats* stats) {
  RecordBatch batch;
  const BatchOptions opts;
  Arena carry_arena;
  std::vector<RecordRef> carry;  // boundary-spanning group, interned
  std::string carry_key;         // its group key (first record's key)

  auto reduce_group = [&](const Slice& group_key, const RecordRef* a,
                          size_t na, const RecordRef* b, size_t nb) {
    TwoSpanValueIterator values(a, na, b, nb);
    {
      ScopedTimer t(&stats->fn_nanos);
      reducer->Reduce(group_key, &values, ctx);
    }
    stats->groups += 1;
    stats->records += na + nb;
  };

  ANTIMR_RETURN_NOT_OK(stream->NextBatch(&batch, opts));
  while (!batch.empty()) {
    // Eager streams are positioned past the batch, so one peek at the
    // stream head decides whether the batch's final group continues. When
    // it does not (next key differs, or the stream is done), every group in
    // this batch is complete and nothing needs interning — the common case
    // once batch boundaries land on group boundaries.
    const bool tail_open =
        stream->Valid() &&
        grouping_cmp(stream->key(), batch.back().key) == 0;
    size_t pos = 0;
    if (!carry.empty()) {
      // Continue the carried group while the batch head still matches.
      size_t j = 0;
      while (j < batch.size() &&
             grouping_cmp(batch[j].key, Slice(carry_key)) == 0) {
        ++j;
      }
      if (j == batch.size() && tail_open) {
        for (const RecordRef& r : batch) {
          carry.push_back(carry_arena.InternRecord(r.key, r.value));
        }
        ANTIMR_RETURN_NOT_OK(stream->NextBatch(&batch, opts));
        continue;
      }
      reduce_group(Slice(carry_key), carry.data(), carry.size(), batch.data(),
                   j);
      carry.clear();
      carry_arena.Clear();
      pos = j;
    }
    while (pos < batch.size()) {
      size_t j = pos + 1;
      while (j < batch.size() &&
             grouping_cmp(batch[j].key, batch[pos].key) == 0) {
        ++j;
      }
      if (j < batch.size() || !tail_open) {
        // Whole group inside this batch: reduce it zero-copy.
        reduce_group(batch[pos].key, batch.data() + pos, j - pos, nullptr, 0);
        pos = j;
        continue;
      }
      // The group continues into the next batch: carry it.
      carry_key.assign(batch[pos].key.data(), batch[pos].key.size());
      for (size_t i = pos; i < batch.size(); ++i) {
        carry.push_back(carry_arena.InternRecord(batch[i].key,
                                                 batch[i].value));
      }
      break;
    }
    ANTIMR_RETURN_NOT_OK(stream->NextBatch(&batch, opts));
  }
  if (!carry.empty()) {
    reduce_group(Slice(carry_key), carry.data(), carry.size(), nullptr, 0);
  }
  return Status::OK();
}

Status RunGroups(KVStream* stream, const KeyComparator& grouping_cmp,
                 Reducer* reducer, ReduceContext* ctx, GroupRunStats* stats) {
  std::string group_key;
  while (stream->Valid()) {
    group_key.assign(stream->key().data(), stream->key().size());
    GroupValueIterator values(stream, &group_key, &grouping_cmp);
    {
      ScopedTimer t(&stats->fn_nanos);
      reducer->Reduce(group_key, &values, ctx);
    }
    values.Drain();
    stats->groups += 1;
    stats->records += values.consumed();
    ANTIMR_RETURN_NOT_OK(values.status());
  }
  return Status::OK();
}

Status ApplyCombiner(const JobSpec& spec, const TaskInfo& info,
                     KVStream* stream, std::vector<KV>* out,
                     GroupRunStats* stats) {
  std::unique_ptr<Reducer> combiner = spec.combiner_factory();
  CollectingContext ctx(out);
  combiner->Setup(info, &ctx);
  ANTIMR_RETURN_NOT_OK(
      RunGroups(stream, spec.EffectiveGroupingCmp(), combiner.get(), &ctx,
                stats));
  {
    // AntiCombiner does its combining and re-encoding work in Cleanup.
    ScopedTimer t(&stats->fn_nanos);
    combiner->Cleanup(&ctx);
  }
  return Status::OK();
}

Status RunReduceTask(const JobSpec& spec, int partition,
                     const ReduceTaskInputs& inputs, Env* env,
                     bool collect_output, ReduceTaskResult* result) {
  JobMetrics& m = result->metrics;
  ANTIMR_TRACE_SPAN_DYN("task", "reduce:" + spec.name + " #" +
                                    std::to_string(partition));
  const uint64_t trace_start = NowNanos();
  const Codec* codec = GetCodec(spec.map_output_codec);

  // Open every map task's segment for this partition as a streaming block
  // reader: pre-fetched segments decode out of reducer memory, the rest
  // stream from storage and pay simulated network transfer per block.
  std::vector<std::unique_ptr<KVStream>> segments;
  std::vector<std::unique_ptr<SegmentStream>> empty_readers;
  // Raw stats pointers stay valid while `merged` / `empty_readers` own the
  // readers; stats are harvested after the merge completes. The flag marks
  // readers over in-memory fetched frames, whose transfer bytes were already
  // counted by the fetcher.
  std::vector<std::pair<const BlockReadStats*, bool>> reader_stats;
  auto adopt = [&](std::unique_ptr<SegmentStream> reader, bool from_memory) {
    reader_stats.emplace_back(&reader->stats(), from_memory);
    if (reader->Valid()) {
      segments.push_back(std::move(reader));
    } else {
      empty_readers.push_back(std::move(reader));
    }
  };
  // Remote segments are pulled through the transport now, before any reader
  // opens: their bytes (FetchedSegment::fetched_bytes = stored segment
  // size as it crossed the wire) are the task's shuffle transfer volume,
  // measured at the same boundary the pipelined fetchers use.
  std::vector<FetchedSegment> remote_storage;
  if (!inputs.remote.empty()) {
    if (inputs.shuffle == nullptr) {
      return Status::InvalidArgument(
          "ReduceTaskInputs.remote requires a ShuffleClient");
    }
    remote_storage.resize(inputs.remote.size());
    for (size_t i = 0; i < inputs.remote.size(); ++i) {
      if (inputs.control != nullptr) {
        if (inputs.control->cancelled()) {
          return Status::IOError("reduce task " + std::to_string(partition) +
                                 " cancelled");
        }
        // Fetch dominates reduce wall time at bench scale; report the
        // fetched fraction as this task's (coarse) progress.
        inputs.control->SetProgress(i, inputs.remote.size());
      }
      ANTIMR_RETURN_NOT_OK(inputs.shuffle->Fetch(
          inputs.remote[i].addr, inputs.remote[i].file, &remote_storage[i]));
    }
  }
  if (inputs.control != nullptr && inputs.control->cancelled()) {
    return Status::IOError("reduce task " + std::to_string(partition) +
                           " cancelled");
  }
  auto adopt_fetched = [&](const FetchedSegment& fs) -> Status {
    m.shuffle_bytes += fs.fetched_bytes;
    m.shuffle_fetch_wait_nanos += fs.fetch_nanos;
    std::unique_ptr<SegmentStream> reader;
    ANTIMR_RETURN_NOT_OK(
        OpenFetchedSegment(fs, codec, inputs.readahead_blocks, &reader));
    adopt(std::move(reader), /*from_memory=*/true);
    return Status::OK();
  };
  for (const FetchedSegment& fs : remote_storage) {
    ANTIMR_RETURN_NOT_OK(adopt_fetched(fs));
  }
  for (const FetchedSegment* fs : inputs.fetched) {
    ANTIMR_RETURN_NOT_OK(adopt_fetched(*fs));
  }
  for (const std::string& fname : inputs.segment_files) {
    SegmentReadOptions ropts;
    ropts.readahead_blocks = inputs.readahead_blocks;
    ropts.network_mb_per_s = inputs.network_mb_per_s;
    std::unique_ptr<SegmentStream> reader;
    ANTIMR_RETURN_NOT_OK(OpenSegmentReader(env, fname, codec, ropts, &reader));
    adopt(std::move(reader), /*from_memory=*/false);
  }

  MergingStream merged(std::move(segments), spec.key_cmp);

  TaskInfo info;
  info.task_id = partition;
  info.num_reduce_tasks = spec.num_reduce_tasks;
  info.shuffle_partition = partition;
  info.partitioner = spec.partitioner.get();
  info.key_cmp = spec.key_cmp;
  info.grouping_cmp = spec.EffectiveGroupingCmp();
  info.env = env;
  info.metrics = &m;

  std::unique_ptr<Reducer> reducer = spec.reducer_factory();
  std::vector<KV> sink;
  CollectingContext ctx(collect_output ? &result->output : &sink);
  reducer->Setup(info, &ctx);
  GroupRunStats stats;
  const uint64_t merge_start = NowNanos();
  // Columnar jobs drain the merge batch-wise: whole sorted runs per heap
  // fix-up, whole groups per Reduce call. Reduce input (and therefore
  // output) is byte-identical either way; the row path keeps the
  // record-wise loop.
  if (spec.record_format == RecordFormat::kColumnar &&
      merged.SupportsEagerBatches()) {
    ANTIMR_RETURN_NOT_OK(RunGroupsBatched(&merged, info.grouping_cmp,
                                          reducer.get(), &ctx, &stats));
  } else {
    ANTIMR_RETURN_NOT_OK(
        RunGroups(&merged, info.grouping_cmp, reducer.get(), &ctx, &stats));
  }
  const uint64_t merge_wall = NowNanos() - merge_start;
  const uint64_t fn_in_merge = stats.fn_nanos;
  {
    ScopedTimer t(&stats.fn_nanos);
    reducer->Cleanup(&ctx);
  }
  m.shuffle_merge_nanos +=
      merge_wall > fn_in_merge ? merge_wall - fn_in_merge : 0;
  uint64_t task_peak_buffered = 0;
  for (const auto& [rstats, from_memory] : reader_stats) {
    m.shuffle_decode_nanos += rstats->decode_nanos;
    m.cpu.decompress += rstats->decode_nanos;
    m.shuffle_blocks += rstats->blocks;
    m.shuffle_fetch_wait_nanos += rstats->read_nanos;
    task_peak_buffered += rstats->peak_buffered_bytes;
    if (!from_memory) m.shuffle_bytes += rstats->bytes_read;
  }
  if (task_peak_buffered > m.shuffle_peak_buffered_bytes) {
    m.shuffle_peak_buffered_bytes = task_peak_buffered;
  }
  m.cpu.reduce_fn += stats.fn_nanos;
  m.reduce_groups += stats.groups;
  m.reduce_input_records += stats.records;
  m.output_records +=
      collect_output ? result->output.size() : sink.size();
  m.output_bytes += ctx.bytes();
  if (!collect_output) sink.clear();

  // Skew / latency distributions the per-job sums flatten away. One observe
  // per reduce task — cheap enough to stay unconditional.
  static obs::Histogram* const input_records_hist =
      obs::MetricsRegistry::Global().GetHistogram(
          "antimr_reduce_partition_input_records",
          "Input records per reduce partition (skew)");
  static obs::Histogram* const fetch_wait_hist =
      obs::MetricsRegistry::Global().GetHistogram(
          "antimr_fetch_wait_nanos",
          "Per reduce task wall time blocked on segment transfer");
  input_records_hist->Observe(stats.records);
  fetch_wait_hist->Observe(m.shuffle_fetch_wait_nanos);

  EmitTaskPhaseSpans(trace_start, m.cpu);
  return Status::OK();
}

}  // namespace antimr
