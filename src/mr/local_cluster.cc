#include "mr/local_cluster.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/logging.h"
#include "common/random.h"
#include "engine/executor.h"
#include "obs/trace.h"

namespace antimr {

TaskPool::TaskPool(int num_workers, std::string name) : name_(std::move(name)) {
  if (num_workers <= 0) {
    num_workers = static_cast<int>(std::thread::hardware_concurrency());
    if (num_workers <= 0) num_workers = 4;
  }
  num_workers_ = num_workers;
  auto& registry = obs::MetricsRegistry::Global();
  queue_depth_gauge_ = registry.GetGauge(
      "antimr_pool_queue_depth", "Tasks queued and not yet claimed, all pools");
  active_workers_gauge_ = registry.GetGauge(
      "antimr_pool_active_workers", "Workers currently running a task");
  workers_total_gauge_ = registry.GetGauge(
      "antimr_pool_workers_total",
      "Worker threads across live pools (utilization denominator)");
  workers_total_gauge_->Add(num_workers_);
  threads_.reserve(static_cast<size_t>(num_workers_));
  for (int i = 0; i < num_workers_; ++i) {
    threads_.emplace_back([this, i]() { WorkerLoop(i); });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
  workers_total_gauge_->Sub(num_workers_);
}

void TaskPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
  }
  queue_depth_gauge_->Add(1);
  cv_.notify_one();
}

void TaskPool::WorkerLoop(int worker_index) {
  obs::Tracer::Global().SetCurrentThreadName(
      name_ + "-" + std::to_string(worker_index));
  while (true) {
    std::function<void()> fn;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return stopping_ || !queue_.empty(); });
      // Drain the queue even when stopping: submitted work always runs.
      if (queue_.empty()) return;
      fn = std::move(queue_.front());
      queue_.pop_front();
    }
    // Sample queue depth + utilization on task boundaries; the counter
    // tracks render next to the task lanes in a trace.
    queue_depth_gauge_->Sub(1);
    active_workers_gauge_->Add(1);
    ANTIMR_TRACE_COUNTER("queue_depth", queue_depth_gauge_->value());
    ANTIMR_TRACE_COUNTER("busy_workers", active_workers_gauge_->value());
    fn();
    active_workers_gauge_->Sub(1);
    ANTIMR_TRACE_COUNTER("busy_workers", active_workers_gauge_->value());
  }
}

Status TaskPool::RunWave(const std::vector<std::function<Status()>>& tasks) {
  if (tasks.empty()) return Status::OK();
  struct WaveState {
    std::mutex mu;
    std::condition_variable cv;
    size_t remaining;
    Status first_failure;
    size_t first_failure_index;
  };
  WaveState wave;
  wave.remaining = tasks.size();
  wave.first_failure_index = tasks.size();

  for (size_t i = 0; i < tasks.size(); ++i) {
    Submit([&wave, &tasks, i]() {
      Status st = tasks[i]();
      std::lock_guard<std::mutex> lock(wave.mu);
      if (!st.ok() && i < wave.first_failure_index) {
        wave.first_failure = std::move(st);
        wave.first_failure_index = i;
      }
      if (--wave.remaining == 0) wave.cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(wave.mu);
  wave.cv.wait(lock, [&wave]() { return wave.remaining == 0; });
  return wave.first_failure;
}

namespace {

/// Backoff before retry `next_attempt` (1-based) of task `id`: exponential
/// doubling capped at max_backoff_nanos, with deterministic jitter drawn
/// from {policy.seed, id, next_attempt} into [base/2, base]. Determinism
/// keeps fault-injection sweeps and the paper's repeated-measurement runs
/// exactly reproducible.
uint64_t RetryBackoffNanos(const RetryPolicy& policy, int id,
                           int next_attempt) {
  if (policy.backoff_nanos == 0) return 0;
  const int shift = std::min(next_attempt - 1, 20);
  uint64_t base = policy.backoff_nanos << shift;
  // Detect shift overflow as well as a plain over-cap value.
  if ((base >> shift) != policy.backoff_nanos ||
      base > policy.max_backoff_nanos) {
    base = policy.max_backoff_nanos;
  }
  Random rng(policy.seed ^ (static_cast<uint64_t>(id) << 32) ^
             static_cast<uint64_t>(next_attempt));
  return base / 2 + rng.Uniform(base / 2 + 1);
}

}  // namespace

TaskGraph::TaskGraph(TaskPool* pool, RetryPolicy retry)
    : default_pool_(pool), default_retry_(retry) {
  if (default_retry_.max_attempts < 1) default_retry_.max_attempts = 1;
}

int TaskGraph::AddTask(std::function<Status()> fn,
                       const std::vector<int>& deps,
                       TaskPool* pool_override) {
  TaskOptions options;
  options.pool = pool_override;
  return AddTask([fn = std::move(fn)](int) { return fn(); }, deps, options);
}

int TaskGraph::AddTask(TaskFn fn, const std::vector<int>& deps,
                       const TaskOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  const int id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  Node& node = nodes_.back();
  node.fn = std::move(fn);
  node.pool = options.pool != nullptr ? options.pool : default_pool_;
  node.retry = options.retry != nullptr ? *options.retry : default_retry_;
  if (node.retry.max_attempts < 1) node.retry.max_attempts = 1;
  node.always_run = options.always_run;
  for (int dep_id : deps) {
    Node& dep = nodes_[static_cast<size_t>(dep_id)];
    if (dep.done) {
      if (!dep.ok) node.dep_failed = true;
    } else {
      ++node.pending;
      dep.dependents.push_back(id);
    }
  }
  if (node.pending == 0) {
    if (node.dep_failed && !node.always_run) {
      FinishLocked(id, /*ran_ok=*/false);
      cv_.notify_all();
    } else {
      ScheduleLocked(id);
    }
  }
  return id;
}

void TaskGraph::ScheduleLocked(int id) {
  // Capture the node pointer (and current attempt) under the lock: deque
  // element addresses are stable, while operator[] during a concurrent
  // AddTask would race.
  Node* node = &nodes_[static_cast<size_t>(id)];
  const int attempt = node->attempt;
  node->pool->Submit([this, id, node, attempt]() {
    Status st = node->fn(attempt);
    OnDone(id, std::move(st));
  });
}

void TaskGraph::OnDone(int id, Status st) {
  if (!st.ok()) {
    // Transient failure with attempts left: re-submit after a backoff
    // instead of finishing the node. Dependents stay pending, so from the
    // graph's point of view a retried task is just a slow task.
    bool retrying = false;
    int next_attempt = 0;
    uint64_t backoff = 0;
    TaskPool* pool = nullptr;
    Node* node_ptr = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      Node& node = nodes_[static_cast<size_t>(id)];
      if (st.IsTransient() && node.attempt + 1 < node.retry.max_attempts) {
        next_attempt = ++node.attempt;
        backoff = RetryBackoffNanos(node.retry, id, next_attempt);
        pool = node.pool;
        node_ptr = &node;
        retrying = true;
      }
    }
    if (retrying) {
      static obs::Counter* const retries =
          obs::MetricsRegistry::Global().GetCounter(
              "antimr_task_retries_total",
              "Transient task failures answered with a re-execution");
      retries->Inc();
      ANTIMR_LOG(kWarn) << "task " << id << " attempt " << next_attempt - 1
                        << " failed transiently (" << st.ToString()
                        << "); retrying as attempt " << next_attempt
                        << " after " << backoff << "ns";
      ANTIMR_TRACE_INSTANT("engine", "task_retry",
                           obs::TraceArgs()
                               .Add("task", id)
                               .Add("attempt", next_attempt)
                               .Add("backoff_nanos", backoff)
                               .Add("status", st.ToString()));
      pool->Submit([this, id, node_ptr, next_attempt, backoff]() {
        if (backoff > 0) {
          std::this_thread::sleep_for(std::chrono::nanoseconds(backoff));
        }
        OnDone(id, node_ptr->fn(next_attempt));
      });
      return;
    }
    static obs::Counter* const failures =
        obs::MetricsRegistry::Global().GetCounter(
            "antimr_task_failures_total", "Graph tasks that returned an error");
    failures->Inc();
    ANTIMR_LOG(kWarn) << "task " << id << " failed: " << st.ToString();
    ANTIMR_TRACE_INSTANT("engine", "task_failed",
                         obs::TraceArgs()
                             .Add("task", id)
                             .Add("status", st.ToString()));
  }
  static obs::Histogram* const attempts_hist =
      obs::MetricsRegistry::Global().GetHistogram(
          "antimr_task_attempts", "Executions needed per finished graph task");
  // Notify under the lock: Wait may return and the graph be destroyed the
  // moment done_ reaches nodes_.size(), so the cv must not be touched after
  // mu_ is released.
  std::lock_guard<std::mutex> lock(mu_);
  attempts_hist->Observe(
      static_cast<uint64_t>(nodes_[static_cast<size_t>(id)].attempt + 1));
  if (!st.ok() &&
      (!have_failure_ || static_cast<size_t>(id) < first_failure_id_)) {
    first_failure_ = std::move(st);
    first_failure_id_ = static_cast<size_t>(id);
    have_failure_ = true;
  }
  FinishLocked(id, st.ok());
  cv_.notify_all();
}

void TaskGraph::FinishLocked(int id, bool ran_ok) {
  // Iterative cascade: finishing a node may skip a chain of dependents.
  std::vector<int> worklist = {id};
  std::vector<bool> outcomes = {ran_ok};
  while (!worklist.empty()) {
    const int cur = worklist.back();
    const bool cur_ok = outcomes.back();
    worklist.pop_back();
    outcomes.pop_back();
    Node& node = nodes_[static_cast<size_t>(cur)];
    node.done = true;
    node.ok = cur_ok;
    ++done_;
    for (int dep_id : node.dependents) {
      Node& dependent = nodes_[static_cast<size_t>(dep_id)];
      if (!cur_ok) dependent.dep_failed = true;
      if (--dependent.pending == 0) {
        if (dependent.dep_failed && !dependent.always_run) {
          // Skipped: never runs, counts as not-ok for its own dependents.
          worklist.push_back(dep_id);
          outcomes.push_back(false);
        } else {
          // always_run tasks (cleanup) execute even after a dependency
          // failure; by this point every dependency is terminal.
          ScheduleLocked(dep_id);
        }
      }
    }
  }
}

Status TaskGraph::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this]() { return done_ == nodes_.size(); });
  return first_failure_;
}

LocalCluster::LocalCluster(const Options& options)
    : num_workers_(options.num_workers),
      pool_(options.num_workers),
      env_(options.posix_root.empty() ? NewMemEnv()
                                      : NewPosixEnv(options.posix_root)) {}

LocalCluster::~LocalCluster() = default;

engine::Executor* LocalCluster::executor() {
  if (executor_ == nullptr) {
    engine::ExecutorOptions options;
    options.num_workers = num_workers_;
    options.env = env_.get();
    executor_ = std::make_unique<engine::Executor>(options);
  }
  return executor_.get();
}

}  // namespace antimr
