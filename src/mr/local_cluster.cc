#include "mr/local_cluster.h"

#include <atomic>
#include <mutex>
#include <thread>

namespace antimr {

TaskPool::TaskPool(int num_workers) {
  if (num_workers <= 0) {
    num_workers = static_cast<int>(std::thread::hardware_concurrency());
    if (num_workers <= 0) num_workers = 4;
  }
  num_workers_ = num_workers;
}

Status TaskPool::RunWave(const std::vector<std::function<Status()>>& tasks) {
  if (tasks.empty()) return Status::OK();
  std::atomic<size_t> next{0};
  std::mutex mu;
  Status first_failure;
  size_t first_failure_index = tasks.size();

  auto worker = [&]() {
    while (true) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= tasks.size()) return;
      Status st = tasks[i]();
      if (!st.ok()) {
        std::lock_guard<std::mutex> lock(mu);
        if (i < first_failure_index) {
          first_failure = std::move(st);
          first_failure_index = i;
        }
      }
    }
  };

  const int threads =
      static_cast<int>(std::min<size_t>(tasks.size(),
                                        static_cast<size_t>(num_workers_)));
  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(threads));
    for (int i = 0; i < threads; ++i) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }
  return first_failure;
}

LocalCluster::LocalCluster(const Options& options)
    : pool_(options.num_workers),
      env_(options.posix_root.empty() ? NewMemEnv()
                                      : NewPosixEnv(options.posix_root)) {}

}  // namespace antimr
