#include "mr/map_output_buffer.h"

#include <algorithm>
#include <cassert>

namespace antimr {

class MapOutputBuffer::BufferStream : public KVStream {
 public:
  BufferStream(const MapOutputBuffer* buffer, size_t begin, size_t end)
      : buffer_(buffer), pos_(begin), end_(end) {}

  bool Valid() const override { return pos_ < end_; }
  Slice key() const override { return buffer_->KeyOf(buffer_->entries_[pos_]); }
  Slice value() const override {
    return buffer_->ValueOf(buffer_->entries_[pos_]);
  }
  Status Next() override {
    ++pos_;
    return Status::OK();
  }

  /// Eager batches: entries view arena storage that outlives the stream.
  Status NextBatch(RecordBatch* batch, const BatchOptions& opts) override {
    batch->clear();
    while (pos_ < end_ && batch->size() < opts.max_records) {
      const Entry& e = buffer_->entries_[pos_];
      const Slice k = buffer_->KeyOf(e);
      if (!opts.Admits(k)) break;
      batch->emplace_back(k, buffer_->ValueOf(e));
      ++pos_;
    }
    return Status::OK();
  }
  bool SupportsEagerBatches() const override { return true; }

 private:
  const MapOutputBuffer* buffer_;
  size_t pos_;
  size_t end_;
};

MapOutputBuffer::MapOutputBuffer(int num_partitions, KeyComparator key_cmp)
    : num_partitions_(num_partitions), key_cmp_(std::move(key_cmp)) {
  assert(num_partitions_ > 0);
}

void MapOutputBuffer::Add(int partition, const Slice& key,
                          const Slice& value) {
  assert(partition >= 0 && partition < num_partitions_);
  const RecordRef rec = arena_.InternRecord(key, value);
  Entry e;
  e.base = rec.key.data();
  e.key_len = static_cast<uint32_t>(key.size());
  e.val_len = static_cast<uint32_t>(value.size());
  e.partition = partition;
  entries_.push_back(e);
  sorted_ = false;
}

void MapOutputBuffer::AddBatch(const RecordBatch& batch,
                               const std::vector<int>& partitions) {
  assert(batch.size() == partitions.size());
  entries_.reserve(entries_.size() + batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    Add(partitions[i], batch[i].key, batch[i].value);
  }
}

size_t MapOutputBuffer::memory_usage() const {
  return arena_.bytes_used() + entries_.size() * sizeof(Entry);
}

void MapOutputBuffer::Sort() {
  std::stable_sort(entries_.begin(), entries_.end(),
                   [this](const Entry& a, const Entry& b) {
                     if (a.partition != b.partition) {
                       return a.partition < b.partition;
                     }
                     return key_cmp_(KeyOf(a), KeyOf(b)) < 0;
                   });
  partition_begin_.assign(static_cast<size_t>(num_partitions_) + 1, 0);
  // entries_ sorted by partition: record the first index of each partition.
  size_t idx = 0;
  for (int p = 0; p <= num_partitions_; ++p) {
    while (idx < entries_.size() && entries_[idx].partition < p) ++idx;
    partition_begin_[static_cast<size_t>(p)] = idx;
  }
  partition_begin_[static_cast<size_t>(num_partitions_)] = entries_.size();
  sorted_ = true;
}

std::unique_ptr<KVStream> MapOutputBuffer::PartitionStream(
    int partition) const {
  assert(sorted_);
  return std::make_unique<BufferStream>(
      this, partition_begin_[static_cast<size_t>(partition)],
      partition_begin_[static_cast<size_t>(partition) + 1]);
}

uint64_t MapOutputBuffer::PartitionRecords(int partition) const {
  assert(sorted_);
  return partition_begin_[static_cast<size_t>(partition) + 1] -
         partition_begin_[static_cast<size_t>(partition)];
}

void MapOutputBuffer::Clear() {
  arena_.Clear();
  entries_.clear();
  partition_begin_.clear();
  sorted_ = false;
}

}  // namespace antimr
