#include "mr/skew.h"

#include <algorithm>
#include <utility>

#include "common/coding.h"
#include "common/hash.h"
#include "common/random.h"
#include "mr/metrics.h"

namespace antimr {

namespace {

constexpr char kSaltSeparator = '\0';

/// MapContext that records emitted keys (sampling pass only — values are
/// irrelevant to pivot/hot-key selection).
class KeyCapturingContext : public MapContext {
 public:
  explicit KeyCapturingContext(std::vector<std::string>* keys) : keys_(keys) {}
  void Emit(const Slice& key, const Slice& value) override {
    (void)value;
    keys_->push_back(key.ToString());
  }

 private:
  std::vector<std::string>* keys_;
};

/// Quantile pivots over a bytewise-sorted key sample: num_partitions - 1
/// boundaries at equal sample-rank spacing. Duplicates are kept — a key
/// spanning several quantiles yields repeated pivots, which upper_bound
/// collapses to the first occurrence (adjacent partitions stay empty rather
/// than wrong).
std::vector<std::string> QuantilePivots(const std::vector<std::string>& sorted,
                                        int num_partitions) {
  std::vector<std::string> pivots;
  if (sorted.empty() || num_partitions <= 1) return pivots;
  pivots.reserve(static_cast<size_t>(num_partitions) - 1);
  const size_t n = sorted.size();
  for (int p = 1; p < num_partitions; ++p) {
    size_t idx = n * static_cast<size_t>(p) / static_cast<size_t>(num_partitions);
    if (idx >= n) idx = n - 1;
    pivots.push_back(sorted[idx]);
  }
  return pivots;
}

/// MapContext wrapper rewriting hot-key emits to the salted variant chosen
/// for the current input record.
class SaltingContext : public MapContext {
 public:
  SaltingContext(MapContext* inner, const SkewModel* model)
      : inner_(inner), model_(model) {}

  void set_salt(uint32_t salt) { salt_ = salt; }

  void Emit(const Slice& key, const Slice& value) override {
    if (IsHotKey(*model_, key)) {
      inner_->Emit(Slice(SaltKey(key, salt_)), value);
    } else {
      inner_->Emit(key, value);
    }
  }

 private:
  MapContext* inner_;
  const SkewModel* model_;
  uint32_t salt_ = 0;
};

class SaltingMapper : public Mapper {
 public:
  SaltingMapper(std::unique_ptr<Mapper> base,
                std::shared_ptr<const SkewModel> model)
      : base_(std::move(base)), model_(std::move(model)) {}

  void Setup(const TaskInfo& info, MapContext* ctx) override {
    wrapped_ = std::make_unique<SaltingContext>(ctx, model_.get());
    base_->Setup(info, wrapped_.get());
  }

  void Map(const Slice& key, const Slice& value, MapContext* ctx) override {
    (void)ctx;  // Setup bound the wrapper to the task's real context
    wrapped_->set_salt(RecordSalt(key, value, model_->hot_fanout));
    base_->Map(key, value, wrapped_.get());
  }

  void Cleanup(MapContext* ctx) override {
    (void)ctx;
    base_->Cleanup(wrapped_.get());
  }

 private:
  std::unique_ptr<Mapper> base_;
  std::shared_ptr<const SkewModel> model_;
  std::unique_ptr<SaltingContext> wrapped_;
};

class IdentityMapper : public Mapper {
 public:
  void Map(const Slice& key, const Slice& value, MapContext* ctx) override {
    ctx->Emit(key, value);
  }
};

/// ReduceContext wrapper stripping the salt off emitted hot keys (stage-1
/// fix-up output must carry the user-visible key).
class StrippingContext : public ReduceContext {
 public:
  StrippingContext(ReduceContext* inner, const SkewModel* model)
      : inner_(inner), model_(model) {}

  void Emit(const Slice& key, const Slice& value) override {
    inner_->Emit(StripSalt(*model_, key), value);
  }

 private:
  ReduceContext* inner_;
  const SkewModel* model_;
};

class SaltStrippingReducer : public Reducer {
 public:
  SaltStrippingReducer(std::unique_ptr<Reducer> base,
                       std::shared_ptr<const SkewModel> model)
      : base_(std::move(base)), model_(std::move(model)) {}

  void Setup(const TaskInfo& info, ReduceContext* ctx) override {
    wrapped_ = std::make_unique<StrippingContext>(ctx, model_.get());
    base_->Setup(info, wrapped_.get());
  }

  void Reduce(const Slice& key, ValueIterator* values,
              ReduceContext* ctx) override {
    (void)ctx;
    base_->Reduce(key, values, wrapped_.get());
  }

  void Cleanup(ReduceContext* ctx) override {
    (void)ctx;
    base_->Cleanup(wrapped_.get());
  }

 private:
  std::unique_ptr<Reducer> base_;
  std::shared_ptr<const SkewModel> model_;
  std::unique_ptr<StrippingContext> wrapped_;
};

}  // namespace

std::string SaltKey(const Slice& key, uint32_t salt) {
  std::string salted;
  salted.reserve(key.size() + 2);
  salted.append(key.data(), key.size());
  salted.push_back(kSaltSeparator);
  salted.push_back(static_cast<char>('a' + (salt % 26)));
  return salted;
}

Slice StripSalt(const SkewModel& model, const Slice& key) {
  if (key.size() < 2 || key[key.size() - 2] != kSaltSeparator) return key;
  Slice stripped(key.data(), key.size() - 2);
  return IsHotKey(model, stripped) ? stripped : key;
}

bool IsHotKey(const SkewModel& model, const Slice& key) {
  return std::binary_search(
      model.hot_keys.begin(), model.hot_keys.end(), key,
      [](const auto& a, const auto& b) { return Slice(a).compare(Slice(b)) < 0; });
}

uint32_t RecordSalt(const Slice& input_key, const Slice& input_value,
                    int fanout) {
  if (fanout <= 1) return 0;
  const uint64_t h = Hash64(input_key, 0x9e3779b97f4a7c15ULL) ^
                     Hash64(input_value, 0xc2b2ae3d27d4eb4fULL);
  return static_cast<uint32_t>(h % static_cast<uint64_t>(fanout));
}

Status BuildSkewModel(const JobSpec& spec,
                      const std::vector<InputSplit>& splits,
                      const SkewSampleOptions& options, SkewModel* model) {
  *model = SkewModel();
  ANTIMR_RETURN_NOT_OK(spec.Validate());
  if (options.sample_per_split == 0) {
    return Status::InvalidArgument("SkewSampleOptions: sample_per_split == 0");
  }

  // Reservoir per split, so every split contributes proportionally and one
  // pass suffices regardless of split size.
  std::vector<KV> sample;
  for (size_t s = 0; s < splits.size(); ++s) {
    Random rng(options.seed + 0x9e37 * (s + 1));
    std::vector<KV> reservoir;
    reservoir.reserve(options.sample_per_split);
    std::unique_ptr<RecordSource> source = splits[s].open();
    KV record;
    uint64_t seen = 0;
    while (source->Next(&record)) {
      ++seen;
      if (reservoir.size() < options.sample_per_split) {
        reservoir.push_back(std::move(record));
      } else {
        const uint64_t slot = rng.Uniform(seen);
        if (slot < reservoir.size()) reservoir[slot] = std::move(record);
      }
    }
    for (KV& kv : reservoir) sample.push_back(std::move(kv));
  }
  if (sample.empty()) return Status::OK();  // empty pivots: hash fallback

  // Observe the intermediate key distribution by running the job's own
  // Mapper over the sample (one mapper instance, as in one synthetic task).
  std::vector<std::string> keys;
  {
    JobMetrics metrics;
    TaskInfo info;
    info.task_id = 0;
    info.num_reduce_tasks = spec.num_reduce_tasks;
    info.partitioner = spec.partitioner.get();
    info.key_cmp = spec.key_cmp;
    info.grouping_cmp = spec.EffectiveGroupingCmp();
    info.metrics = &metrics;
    KeyCapturingContext ctx(&keys);
    std::unique_ptr<Mapper> mapper = spec.mapper_factory();
    mapper->Setup(info, &ctx);
    for (const KV& kv : sample) mapper->Map(kv.key, kv.value, &ctx);
    mapper->Cleanup(&ctx);
  }
  if (keys.empty()) return Status::OK();

  std::sort(keys.begin(), keys.end());
  model->pivots = QuantilePivots(keys, spec.num_reduce_tasks);

  // Superfrequent keys: run-length over the sorted sample.
  const size_t hot_threshold = std::max<size_t>(
      2, static_cast<size_t>(static_cast<double>(keys.size()) *
                             options.hot_key_min_fraction));
  for (size_t i = 0; i < keys.size();) {
    size_t j = i + 1;
    while (j < keys.size() && keys[j] == keys[i]) ++j;
    if (j - i >= hot_threshold) model->hot_keys.push_back(keys[i]);
    i = j;
  }
  if (model->hot_keys.empty()) {
    model->salted_pivots = model->pivots;
    return Status::OK();
  }

  model->hot_fanout = options.hot_fanout > 0
                          ? options.hot_fanout
                          : std::max(2, spec.num_reduce_tasks);

  // Salted sample: spread each hot key's occurrences round-robin over its
  // variants, then re-derive quantiles — the stage-1 pivots see the salted
  // key space and balance the variants across ranges automatically.
  std::vector<std::string> salted;
  salted.reserve(keys.size());
  uint32_t rr = 0;
  for (const std::string& k : keys) {
    if (IsHotKey(*model, Slice(k))) {
      salted.push_back(SaltKey(Slice(k), rr++ % static_cast<uint32_t>(
                                             model->hot_fanout)));
    } else {
      salted.push_back(k);
    }
  }
  std::sort(salted.begin(), salted.end());
  model->salted_pivots = QuantilePivots(salted, spec.num_reduce_tasks);
  return Status::OK();
}

MapperFactory MakeSaltingMapperFactory(MapperFactory base,
                                       std::shared_ptr<const SkewModel> model) {
  return [base = std::move(base), model = std::move(model)]() {
    return std::make_unique<SaltingMapper>(base(), model);
  };
}

MapperFactory IdentityMapperFactory() {
  return []() { return std::make_unique<IdentityMapper>(); };
}

Status MakeSplitStage1Spec(const JobSpec& base,
                           std::shared_ptr<const SkewModel> model,
                           JobSpec* out) {
  if (model == nullptr || !model->HasHotKeys()) {
    return Status::InvalidArgument("hot-key split: model has no hot keys");
  }
  if (!base.partial_reducer_factory) {
    return Status::InvalidArgument(
        "hot-key split: JobSpec has no partial_reducer_factory (its reducer "
        "output cannot be merged in a fix-up stage)");
  }
  *out = base;
  out->name = base.name + "_split1";
  out->mapper_factory = MakeSaltingMapperFactory(base.mapper_factory, model);
  out->reducer_factory = [partial = base.partial_reducer_factory, model]() {
    return std::make_unique<SaltStrippingReducer>(partial(), model);
  };
  out->partitioner = std::make_shared<RangePartitioner>(model->salted_pivots);
  return Status::OK();
}

Status MakeSplitStage2Spec(const JobSpec& base,
                           std::shared_ptr<const SkewModel> model,
                           JobSpec* out) {
  if (model == nullptr) {
    return Status::InvalidArgument("hot-key split: no skew model");
  }
  *out = base;
  out->name = base.name + "_split2";
  out->mapper_factory = IdentityMapperFactory();
  // Stage-2 input values are stage-1 partials; the original reducer merges
  // them by the partial-reducer contract. No combiner: re-combining partials
  // buys nothing at fix-up scale and would add a format assumption.
  out->combiner_factory = nullptr;
  out->partitioner = std::make_shared<RangePartitioner>(model->pivots);
  return Status::OK();
}

std::string EncodeKeyList(const std::vector<std::string>& keys) {
  std::string out;
  PutVarint64(&out, keys.size());
  for (const std::string& k : keys) PutLengthPrefixed(&out, Slice(k));
  return out;
}

Status DecodeKeyList(const std::string& encoded,
                     std::vector<std::string>* keys) {
  keys->clear();
  Slice in(encoded);
  uint64_t n = 0;
  if (!GetVarint64(&in, &n)) {
    return Status::IOError("malformed key list: count");
  }
  keys->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Slice k;
    if (!GetLengthPrefixed(&in, &k)) {
      return Status::IOError("malformed key list: entry");
    }
    keys->push_back(k.ToString());
  }
  return Status::OK();
}

}  // namespace antimr
