#include "mr/map_task.h"

#include <vector>

#include "common/stopwatch.h"
#include "mr/map_output_buffer.h"
#include "mr/reduce_task.h"
#include "mr/task_trace.h"

namespace antimr {

namespace {

// MapContext that partitions each emitted record into the output buffer and
// triggers spills when the buffer exceeds its budget.
class MapTaskContext : public MapContext {
 public:
  MapTaskContext(const JobSpec& spec, const std::string& job_id, int task_id,
                 const TaskInfo& info, Env* env, JobMetrics* metrics)
      : spec_(spec),
        job_id_(job_id),
        task_id_(task_id),
        info_(info),
        env_(env),
        metrics_(metrics),
        buffer_(spec.num_reduce_tasks, spec.key_cmp),
        spill_files_per_partition_(
            static_cast<size_t>(spec.num_reduce_tasks)) {}

  void Emit(const Slice& key, const Slice& value) override {
    int partition;
    {
      ScopedTimer t(&metrics_->cpu.partition_fn);
      partition =
          spec_.partitioner->Partition(key, spec_.num_reduce_tasks);
    }
    buffer_.Add(partition, key, value);
    metrics_->emitted_records += 1;
    metrics_->emitted_bytes += key.size() + value.size();
  }

  /// Batched emit: one partition-timing scope and one buffer reservation
  /// for the whole batch instead of per record.
  void EmitBatch(const RecordBatch& batch) override {
    if (batch.empty()) return;
    partition_scratch_.resize(batch.size());
    {
      ScopedTimer t(&metrics_->cpu.partition_fn);
      for (size_t i = 0; i < batch.size(); ++i) {
        partition_scratch_[i] = spec_.partitioner->Partition(
            batch[i].key, spec_.num_reduce_tasks);
      }
    }
    buffer_.AddBatch(batch, partition_scratch_);
    metrics_->emitted_records += batch.size();
    for (const RecordRef& r : batch) metrics_->emitted_bytes += r.bytes();
  }

  /// Spill when over budget. Called between Map invocations (not from Emit)
  /// so sort/combine/compress cost is not attributed to map_fn.
  Status MaybeSpill() {
    if (buffer_.memory_usage() >= spec_.map_buffer_bytes) {
      return SpillBuffer();
    }
    return Status::OK();
  }

  /// Sort + (combine) + write the current buffer as spill files.
  Status SpillBuffer() {
    if (buffer_.empty()) return Status::OK();
    {
      ScopedTimer t(&metrics_->cpu.sort);
      buffer_.Sort();
    }
    const Codec* codec = GetCodec(spec_.map_output_codec);
    for (int p = 0; p < spec_.num_reduce_tasks; ++p) {
      if (buffer_.PartitionRecords(p) == 0) continue;
      std::unique_ptr<KVStream> stream = buffer_.PartitionStream(p);
      const std::string fname =
          SpillFileName(job_id_, task_id_, spill_count_, p);
      created_files_.push_back(fname);
      SegmentWriteResult res;
      ANTIMR_RETURN_NOT_OK(WritePossiblyCombined(
          stream.get(), p, fname, codec, /*final_segment=*/false, &res));
      spill_files_per_partition_[static_cast<size_t>(p)].push_back(fname);
    }
    ++spill_count_;
    metrics_->map_spills += 1;
    ANTIMR_TRACE_INSTANT("task", "map_spill",
                         obs::TraceArgs()
                             .Add("task", task_id_)
                             .Add("spill", spill_count_ - 1));
    buffer_.Clear();
    return Status::OK();
  }

  /// Finalize the task's output: one merged, compressed segment per
  /// partition. Fills result->segment_files.
  Status Finish(MapTaskResult* result) {
    result->segment_files.assign(
        static_cast<size_t>(spec_.num_reduce_tasks), "");
    const Codec* codec = GetCodec(spec_.map_output_codec);

    if (spill_count_ == 0) {
      // Everything fits in memory: sort and write final segments directly
      // (this is Hadoop's single final spill).
      {
        ScopedTimer t(&metrics_->cpu.sort);
        buffer_.Sort();
      }
      for (int p = 0; p < spec_.num_reduce_tasks; ++p) {
        if (buffer_.PartitionRecords(p) == 0) continue;
        std::unique_ptr<KVStream> stream = buffer_.PartitionStream(p);
        const std::string fname = SegmentFileName(job_id_, task_id_, p);
        created_files_.push_back(fname);
        SegmentWriteResult res;
        ANTIMR_RETURN_NOT_OK(WritePossiblyCombined(
            stream.get(), p, fname, codec, /*final_segment=*/true, &res));
        result->segment_files[static_cast<size_t>(p)] = fname;
      }
      buffer_.Clear();
      return Status::OK();
    }

    // Spill the tail of the buffer, then merge all spills per partition.
    ANTIMR_RETURN_NOT_OK(SpillBuffer());
    const bool combine_on_merge =
        spec_.combiner_factory != nullptr &&
        spill_count_ >= spec_.min_spills_for_combine;
    for (int p = 0; p < spec_.num_reduce_tasks; ++p) {
      const auto& spills = spill_files_per_partition_[static_cast<size_t>(p)];
      if (spills.empty()) continue;
      // Stream each spill through a block reader: the merge holds O(block)
      // memory per spill instead of inflating every spill up front.
      std::vector<std::unique_ptr<KVStream>> inputs;
      std::vector<std::unique_ptr<SegmentStream>> empty_spills;
      std::vector<const BlockReadStats*> spill_stats;
      inputs.reserve(spills.size());
      for (const std::string& fname : spills) {
        std::unique_ptr<SegmentStream> reader;
        ANTIMR_RETURN_NOT_OK(
            OpenSegmentReader(env_, fname, codec, {}, &reader));
        spill_stats.push_back(&reader->stats());
        if (reader->Valid()) {
          inputs.push_back(std::move(reader));
        } else {
          empty_spills.push_back(std::move(reader));
        }
      }
      uint64_t merge_start = NowNanos();
      MergingStream merged(std::move(inputs), spec_.key_cmp);
      metrics_->cpu.merge += NowNanos() - merge_start;
      const std::string fname = SegmentFileName(job_id_, task_id_, p);
      created_files_.push_back(fname);
      SegmentWriteResult res;
      if (combine_on_merge) {
        ANTIMR_RETURN_NOT_OK(WriteCombined(&merged, p, fname, codec,
                                           /*final_segment=*/true, &res));
      } else {
        ScopedTimer t(&metrics_->cpu.merge);
        // Merge-backed views die at each batch; the writer must copy.
        ANTIMR_RETURN_NOT_OK(
            WriteSegment(env_, fname, &merged,
                         SegmentOptions(/*final_segment=*/true,
                                        /*stable_input=*/false),
                         &metrics_->cpu.compress, &res));
      }
      for (const BlockReadStats* s : spill_stats) {
        metrics_->cpu.decompress += s->decode_nanos;
      }
      result->segment_files[static_cast<size_t>(p)] = fname;
      for (const std::string& sf : spills) {
        ANTIMR_RETURN_NOT_OK(env_->DeleteFile(sf));
      }
    }
    return Status::OK();
  }

  /// Best-effort removal of everything this task may have written: spill
  /// files and (possibly half-written) final segments. Run on the failure
  /// path so a retried attempt starts from clean storage and a failed task
  /// leaves nothing behind. Delete errors are swallowed — the task is
  /// already failing and its Status should name the original error.
  void RemovePartialOutput() {
    for (const std::string& fname : created_files_) {
      env_->DeleteFile(fname);
    }
    created_files_.clear();
    // Scrub the attempt's arena-backed buffer too: a retried attempt must
    // not see (or alias) records interned by the failed one.
    buffer_.Clear();
  }

 private:
  /// Segment layout for everything this task writes, derived from the spec.
  /// `final_segment` is true for the segments reducers fetch; intermediate
  /// spills skip the eager-payload dictionary rewrite — they are merged and
  /// deleted within this task, so rewriting them buys no shuffle bytes and
  /// would cost a rewrite + rematerialize round trip per spill generation.
  SegmentWriteOptions SegmentOptions(bool final_segment,
                                     bool stable_input) const {
    SegmentWriteOptions o;
    o.format = spec_.record_format;
    o.stable_input = stable_input;
    if (spec_.record_format == RecordFormat::kColumnar) {
      o.codec = GetCodec(spec_.EffectiveChunkCodec());
      o.block_bytes = spec_.EffectiveChunkBlockBytes();
      // Only anti-combined map output consists entirely of flagged EagerSH/
      // LazySH payloads; plain jobs' values must never be parsed as such.
      o.rewrite_eager_payloads =
          final_segment && spec_.mapper_reports_logical_output;
    } else {
      o.codec = GetCodec(spec_.map_output_codec);
      o.block_bytes = spec_.shuffle_block_bytes;
    }
    return o;
  }

  Status WritePossiblyCombined(KVStream* stream, int partition,
                               const std::string& fname, const Codec* codec,
                               bool final_segment, SegmentWriteResult* res) {
    if (spec_.combiner_factory != nullptr) {
      return WriteCombined(stream, partition, fname, codec, final_segment,
                           res);
    }
    // Both callers drain buffer_.PartitionStream: views into the map-output
    // arena, alive until buffer_.Clear() — after every write.
    return WriteSegment(env_, fname, stream,
                        SegmentOptions(final_segment, /*stable_input=*/true),
                        &metrics_->cpu.compress, res);
  }

  Status WriteCombined(KVStream* stream, int partition,
                       const std::string& fname, const Codec* codec,
                       bool final_segment, SegmentWriteResult* res) {
    (void)codec;
    TaskInfo info = info_;
    info.shuffle_partition = partition;
    std::vector<KV> combined;
    GroupRunStats stats;
    ANTIMR_RETURN_NOT_OK(
        ApplyCombiner(spec_, info, stream, &combined, &stats));
    metrics_->cpu.combine += stats.fn_nanos;
    metrics_->combine_input_records += stats.records;
    metrics_->combine_output_records += combined.size();
    KVVectorStream out(&combined);
    // `combined` owns its records and outlives the write.
    return WriteSegment(env_, fname, &out,
                        SegmentOptions(final_segment, /*stable_input=*/true),
                        &metrics_->cpu.compress, res);
  }

  const JobSpec& spec_;
  const std::string& job_id_;
  int task_id_;
  const TaskInfo& info_;
  Env* env_;
  JobMetrics* metrics_;
  MapOutputBuffer buffer_;
  std::vector<int> partition_scratch_;  // EmitBatch partition targets
  std::vector<std::vector<std::string>> spill_files_per_partition_;
  /// Every file name this task has started writing, for failure cleanup.
  std::vector<std::string> created_files_;
  int spill_count_ = 0;
};

}  // namespace

Status RunMapTask(const JobSpec& spec, const std::string& job_id, int task_id,
                  const InputSplit& split, Env* env, MapTaskResult* result,
                  TaskControl* control, uint64_t total_records) {
  JobMetrics& m = result->metrics;
  ANTIMR_TRACE_SPAN_DYN("task",
                        "map:" + spec.name + " #" + std::to_string(task_id));
  const uint64_t trace_start = NowNanos();

  TaskInfo info;
  info.task_id = task_id;
  info.num_reduce_tasks = spec.num_reduce_tasks;
  info.shuffle_partition = -1;
  info.partitioner = spec.partitioner.get();
  info.key_cmp = spec.key_cmp;
  info.grouping_cmp = spec.EffectiveGroupingCmp();
  info.env = env;
  info.metrics = &m;

  MapTaskContext ctx(spec, job_id, task_id, info, env, &m);
  std::unique_ptr<Mapper> mapper = spec.mapper_factory();
  mapper->Setup(info, &ctx);

  // Anti-Combining mappers attribute their own map_fn/encode/partition
  // phases; timing them again here would double-count inside PhaseCpu.
  const bool outer_times_map = !spec.mapper_reports_logical_output;

  const Status status = [&]() -> Status {
    std::unique_ptr<RecordSource> source = split.open();
    RecordBatch batch;
    // Batched input drive: sources with stable storage (dataset partitions,
    // vectors) hand out whole batches of views, so the input hop costs no
    // allocation and no per-record virtual dispatch; other sources fall
    // back to one record per NextBatch. Map and the spill check stay
    // per-record, so spill points (and therefore job output) are identical
    // to the record-wise loop.
    while (source->NextBatch(&batch) > 0) {
      if (control != nullptr) {
        if (control->cancelled()) {
          // Transient, so retry machinery treats the loser of a speculative
          // race like any other recoverable attempt failure.
          return Status::IOError("map task " + std::to_string(task_id) +
                                 " cancelled");
        }
        control->SetProgress(m.input_records, total_records);
      }
      for (const RecordRef& record : batch) {
        m.input_records += 1;
        m.input_bytes += record.bytes();
        if (outer_times_map) {
          ScopedTimer t(&m.cpu.map_fn);
          mapper->Map(record.key, record.value, &ctx);
        } else {
          mapper->Map(record.key, record.value, &ctx);
        }
        ANTIMR_RETURN_NOT_OK(ctx.MaybeSpill());
      }
    }
    if (outer_times_map) {
      ScopedTimer t(&m.cpu.map_fn);
      mapper->Cleanup(&ctx);
    } else {
      mapper->Cleanup(&ctx);
    }
    return ctx.Finish(result);
  }();
  if (!status.ok()) {
    // Leave no partials behind: a retry (or the plan epilogue) must find
    // clean storage and an empty result, never a half-written segment.
    ctx.RemovePartialOutput();
    result->segment_files.clear();
    return status;
  }

  if (!spec.mapper_reports_logical_output) {
    m.map_output_records = m.emitted_records;
    m.map_output_bytes = m.emitted_bytes;
  }
  EmitTaskPhaseSpans(trace_start, m.cpu);
  return Status::OK();
}

}  // namespace antimr
