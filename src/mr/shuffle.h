// Map-output segment format and the mapper->reducer transfer path. A segment
// is one partition's sorted records, serialized in run format and compressed
// with the job's map-output codec. Spill files and final map outputs share
// the format; reducers "fetch" final segments, which is where the paper's
// network-transfer bytes are counted.
#ifndef ANTIMR_MR_SHUFFLE_H_
#define ANTIMR_MR_SHUFFLE_H_

#include <memory>
#include <string>

#include "codec/codec.h"
#include "io/env.h"
#include "io/run_file.h"

namespace antimr {

/// File name for map task `map_task`'s final output segment for `partition`.
std::string SegmentFileName(const std::string& job_id, int map_task,
                            int partition);

/// File name for spill `spill` of map task `map_task`, partition `partition`.
std::string SpillFileName(const std::string& job_id, int map_task, int spill,
                          int partition);

struct SegmentWriteResult {
  uint64_t raw_bytes = 0;     ///< serialized run bytes before compression
  uint64_t stored_bytes = 0;  ///< bytes written to the file
  uint64_t records = 0;
};

/// Serialize `stream` (already key-sorted) into run format, compress with
/// `codec`, and write to `fname`. Compression CPU is added to *compress_nanos.
Status WriteSegment(Env* env, const std::string& fname, KVStream* stream,
                    const Codec* codec, uint64_t* compress_nanos,
                    SegmentWriteResult* out);

/// Read, decompress, and open a segment as a KVStream. *fetched_bytes gets
/// the on-disk (transferred) size; decompression CPU goes to
/// *decompress_nanos.
Status FetchSegment(Env* env, const std::string& fname, const Codec* codec,
                    uint64_t* decompress_nanos, uint64_t* fetched_bytes,
                    std::unique_ptr<KVStream>* stream);

}  // namespace antimr

#endif  // ANTIMR_MR_SHUFFLE_H_
