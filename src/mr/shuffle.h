// Map-output segment format and the mapper->reducer transfer path. A segment
// is one partition's sorted records, serialized in run format, cut into
// ~64 KiB blocks, and independently compressed + CRC-framed per block (see
// io/run_file.h). Spill files and final map outputs share the format.
//
// Reducers consume segments through streaming readers: either directly from
// the map side's storage (barrier model), or from an in-memory FetchedSegment
// that a concurrent fetcher copied while the map wave was still running
// (pipelined model, mirroring Hadoop's parallel-copy shuffle phase). Either
// way decompression is block-at-a-time with bounded readahead, so a reduce
// task's buffered bytes are O(blocks x readahead), not O(segment).
#ifndef ANTIMR_MR_SHUFFLE_H_
#define ANTIMR_MR_SHUFFLE_H_

#include <memory>
#include <string>

#include "codec/codec.h"
#include "io/env.h"
#include "io/run_file.h"
#include "table/format.h"

namespace antimr {

/// Default block size for shuffle segments.
constexpr size_t kShuffleBlockBytes = kDefaultBlockBytes;
/// Default per-segment readahead window (in blocks).
constexpr size_t kShuffleReadaheadBlocks = kDefaultReadaheadBlocks;

/// How reduce-side shuffle work is scheduled relative to the map wave.
enum class ShuffleMode {
  /// Concurrent fetchers copy each map output as soon as it is published;
  /// only the merge+reduce waits for all of a partition's inputs.
  kPipelined,
  /// Classic two-wave model: all maps finish, then reducers stream their
  /// segments inline. Kept for A/B benchmarking of the pipeline.
  kBarrier,
};

/// File name for map task `map_task`'s final output segment for `partition`.
std::string SegmentFileName(const std::string& job_id, int map_task,
                            int partition);

/// File name for spill `spill` of map task `map_task`, partition `partition`.
std::string SpillFileName(const std::string& job_id, int map_task, int spill,
                          int partition);

struct SegmentWriteResult {
  uint64_t raw_bytes = 0;     ///< serialized run bytes before compression
  uint64_t stored_bytes = 0;  ///< bytes written to the file
  uint64_t records = 0;
  uint64_t blocks = 0;
  uint64_t dict_blocks = 0;       ///< columnar only: dictionary-keyed blocks
  uint64_t payload_rewrites = 0;  ///< columnar only: EagerSH->dict rewrites
};

/// How WriteSegment lays a segment out on storage.
struct SegmentWriteOptions {
  RecordFormat format = RecordFormat::kRow;
  /// Codec for row blocks, and the per-column candidate for columnar ones.
  const Codec* codec = nullptr;  ///< null = kNone
  size_t block_bytes = kShuffleBlockBytes;
  /// Columnar only: rewrite EagerSH payloads against the block dictionary
  /// (safe only when every value is an anti-combining flagged payload).
  bool rewrite_eager_payloads = false;
  /// The stream's record views stay valid until WriteSegment returns (true
  /// for arena-backed buffer drains and owned vectors; false for merges,
  /// whose views die at each batch). Lets the columnar writer stage views
  /// instead of copying every record.
  bool stable_input = false;
};

/// Serialize `stream` (already key-sorted) into `options.format` — row
/// block-framed runs or columnar chunks — and write to `fname`. Streaming
/// and batched: records drain via NextBatch, memory use is O(block).
/// Compression CPU is added to *compress_nanos.
Status WriteSegment(Env* env, const std::string& fname, KVStream* stream,
                    const SegmentWriteOptions& options,
                    uint64_t* compress_nanos, SegmentWriteResult* out);

/// Row-format convenience overload (the pre-columnar signature).
Status WriteSegment(Env* env, const std::string& fname, KVStream* stream,
                    const Codec* codec, uint64_t* compress_nanos,
                    SegmentWriteResult* out,
                    size_t block_bytes = kShuffleBlockBytes);

struct SegmentReadOptions {
  size_t readahead_blocks = kShuffleReadaheadBlocks;
  /// Simulated mapper->reducer bandwidth paid per block read; 0 = none.
  /// Used when the reducer streams straight from the map side's storage.
  double network_mb_per_s = 0;
  /// Optional key-range prune (columnar segments only; borrowed, must
  /// outlive the reader). Blocks whose min/max stats miss the range are
  /// skipped without reading — their bytes pay no disk or network cost.
  const KeyRange* prune = nullptr;
  /// Comparator the segment was sorted with; required when prune is set.
  KeyComparator prune_cmp;
};

/// Open `fname` as a streaming segment reader positioned at its first
/// record. The storage format is detected from the file magic ("ABS1" row
/// runs vs "ACH1" columnar chunks), so readers never need to know how a
/// segment was written. Per-block CRC failures surface as
/// Status::Corruption with file and block context.
Status OpenSegmentReader(Env* env, const std::string& fname,
                         const Codec* codec, const SegmentReadOptions& options,
                         std::unique_ptr<SegmentStream>* reader);

/// \brief One segment copied to the reduce side by a concurrent fetcher.
///
/// Holds the segment's stored (compressed) frames; decompression still
/// happens block-at-a-time when the segment is merged. This is the analog of
/// Hadoop's in-memory shuffle buffer.
struct FetchedSegment {
  std::string file;      ///< origin file name (error context)
  std::string frames;    ///< raw stored bytes (magic + block frames)
  uint64_t fetched_bytes = 0;  ///< == frames.size(); shuffle transfer volume
  uint64_t fetch_nanos = 0;    ///< wall time of the copy, incl. simulated
                               ///< disk and network transfer time
};

/// Copy segment `fname` into memory, paying simulated network transfer time
/// chunk by chunk. The Env read pays simulated disk time as usual.
Status FetchSegmentFrames(Env* env, const std::string& fname,
                          double network_mb_per_s, FetchedSegment* out);

/// Open a previously fetched segment as a streaming reader, detecting the
/// format from the frames' magic like OpenSegmentReader. `segment` must
/// outlive the reader (its frames are borrowed, not copied). Pruning via
/// `prune`/`prune_cmp` (columnar only) skips decode CPU — the bytes were
/// already transferred by the fetch.
Status OpenFetchedSegment(const FetchedSegment& segment, const Codec* codec,
                          size_t readahead_blocks,
                          std::unique_ptr<SegmentStream>* reader,
                          const KeyRange* prune = nullptr,
                          KeyComparator prune_cmp = KeyComparator());

}  // namespace antimr

#endif  // ANTIMR_MR_SHUFFLE_H_
