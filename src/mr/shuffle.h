// Map-output segment format and the mapper->reducer transfer path. A segment
// is one partition's sorted records, serialized in run format, cut into
// ~64 KiB blocks, and independently compressed + CRC-framed per block (see
// io/run_file.h). Spill files and final map outputs share the format.
//
// Reducers consume segments through streaming readers: either directly from
// the map side's storage (barrier model), or from an in-memory FetchedSegment
// that a concurrent fetcher copied while the map wave was still running
// (pipelined model, mirroring Hadoop's parallel-copy shuffle phase). Either
// way decompression is block-at-a-time with bounded readahead, so a reduce
// task's buffered bytes are O(blocks x readahead), not O(segment).
#ifndef ANTIMR_MR_SHUFFLE_H_
#define ANTIMR_MR_SHUFFLE_H_

#include <memory>
#include <string>

#include "codec/codec.h"
#include "io/env.h"
#include "io/run_file.h"

namespace antimr {

/// Default block size for shuffle segments.
constexpr size_t kShuffleBlockBytes = kDefaultBlockBytes;
/// Default per-segment readahead window (in blocks).
constexpr size_t kShuffleReadaheadBlocks = kDefaultReadaheadBlocks;

/// How reduce-side shuffle work is scheduled relative to the map wave.
enum class ShuffleMode {
  /// Concurrent fetchers copy each map output as soon as it is published;
  /// only the merge+reduce waits for all of a partition's inputs.
  kPipelined,
  /// Classic two-wave model: all maps finish, then reducers stream their
  /// segments inline. Kept for A/B benchmarking of the pipeline.
  kBarrier,
};

/// File name for map task `map_task`'s final output segment for `partition`.
std::string SegmentFileName(const std::string& job_id, int map_task,
                            int partition);

/// File name for spill `spill` of map task `map_task`, partition `partition`.
std::string SpillFileName(const std::string& job_id, int map_task, int spill,
                          int partition);

struct SegmentWriteResult {
  uint64_t raw_bytes = 0;     ///< serialized run bytes before compression
  uint64_t stored_bytes = 0;  ///< bytes written to the file
  uint64_t records = 0;
  uint64_t blocks = 0;
};

/// Serialize `stream` (already key-sorted) into block-framed run format,
/// compressing each block with `codec`, and write to `fname`. Streaming:
/// memory use is O(block), not O(segment). Compression CPU is added to
/// *compress_nanos.
Status WriteSegment(Env* env, const std::string& fname, KVStream* stream,
                    const Codec* codec, uint64_t* compress_nanos,
                    SegmentWriteResult* out,
                    size_t block_bytes = kShuffleBlockBytes);

struct SegmentReadOptions {
  size_t readahead_blocks = kShuffleReadaheadBlocks;
  /// Simulated mapper->reducer bandwidth paid per block read; 0 = none.
  /// Used when the reducer streams straight from the map side's storage.
  double network_mb_per_s = 0;
};

/// Open `fname` as a streaming block reader positioned at its first record.
/// Per-block CRC failures surface as Status::Corruption with file and block
/// context from the reader's Open/Next calls.
Status OpenSegmentReader(Env* env, const std::string& fname,
                         const Codec* codec, const SegmentReadOptions& options,
                         std::unique_ptr<BlockRunReader>* reader);

/// \brief One segment copied to the reduce side by a concurrent fetcher.
///
/// Holds the segment's stored (compressed) frames; decompression still
/// happens block-at-a-time when the segment is merged. This is the analog of
/// Hadoop's in-memory shuffle buffer.
struct FetchedSegment {
  std::string file;      ///< origin file name (error context)
  std::string frames;    ///< raw stored bytes (magic + block frames)
  uint64_t fetched_bytes = 0;  ///< == frames.size(); shuffle transfer volume
  uint64_t fetch_nanos = 0;    ///< wall time of the copy, incl. simulated
                               ///< disk and network transfer time
};

/// Copy segment `fname` into memory, paying simulated network transfer time
/// chunk by chunk. The Env read pays simulated disk time as usual.
Status FetchSegmentFrames(Env* env, const std::string& fname,
                          double network_mb_per_s, FetchedSegment* out);

/// Open a previously fetched segment as a streaming block reader. `segment`
/// must outlive the reader (its frames are borrowed, not copied).
Status OpenFetchedSegment(const FetchedSegment& segment, const Codec* codec,
                          size_t readahead_blocks,
                          std::unique_ptr<BlockRunReader>* reader);

}  // namespace antimr

#endif  // ANTIMR_MR_SHUFFLE_H_
