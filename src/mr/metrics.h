// Per-job cost accounting. The benchmark harness reads these counters to
// reproduce the paper's reported columns: total map output size, shuffle
// (network) bytes, local disk read/write, per-phase CPU time, wall time, and
// the Anti-Combining-specific counters (encoding mix, Shared spills, Map
// re-executions on reducers).
//
// Counter fields are declared through X-macro lists so Add and ToJson
// iterate one authoritative field set — adding a counter means adding one
// line to a list, and it shows up everywhere (metrics_test asserts ToJson
// covers every field).
#ifndef ANTIMR_MR_METRICS_H_
#define ANTIMR_MR_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace antimr {

// CPU nanoseconds per pipeline phase, in pipeline order. These names are
// also the trace span names and the "dominant phase" vocabulary of
// TopTasksReport, mirroring the paper's Table 2 phase breakdown.
//   map_fn       user Map function
//   partition_fn Partitioner calls
//   encode       Anti-Combining encoding (mapper side)
//   sort         map-side buffer sorts
//   combine      Combiner calls (map or reduce phase)
//   compress     codec compression
//   decompress   codec decompression
//   merge        spill / segment merging
//   decode       Anti-Combining decoding (reducer side)
//   remap        LazySH Map re-execution on reducers
//   shared       Shared structure maintenance incl. spills
//   reduce_fn    user Reduce function
#define ANTIMR_PHASE_CPU_FIELDS(X) \
  X(map_fn)                        \
  X(partition_fn)                  \
  X(encode)                        \
  X(sort)                          \
  X(combine)                       \
  X(compress)                      \
  X(decompress)                    \
  X(merge)                         \
  X(decode)                        \
  X(remap)                         \
  X(shared)                        \
  X(reduce_fn)

// JobMetrics counters that aggregate by summation. Grouping and intent:
// --- volume ---
//   input_records/input_bytes      job input
//   map_output_records/bytes       output of the *original* Map function (in
//                                  an Anti-Combining job: the intercepted,
//                                  pre-encoding output)
//   emitted_records/bytes          records/bytes actually entering the
//                                  shuffle (encoded form for Anti-Combining
//                                  jobs; equals map_output_* for originals)
//   combine_input/output_records   Combiner compression ratio
//   map_spills                     map-side spill files written
//   shuffle_bytes                  bytes fetched by reducers from map output
//                                  files (post-compression): the paper's
//                                  mapper->reducer "data transfer"
// --- shuffle pipeline phases ---
//   shuffle_fetch_wait_nanos       reduce-side wall time blocked on segment
//                                  transfer (concurrent-fetch copies plus
//                                  block reads during the merge, including
//                                  simulated disk/network transfer time)
//   shuffle_decode_nanos           reduce-side CRC verify + decompression
//   shuffle_merge_nanos            reduce-side merge/consume wall time
//                                  (RunGroups minus the user Reduce fn)
//   shuffle_blocks                 segment blocks decoded by reduce tasks
//   shuffle_overlapped_fetches     fetch tasks started while the map wave
//                                  was still running (pipelined scheduler's
//                                  map/shuffle overlap; 0 under barrier)
//   reduce_input_records/groups    reduce-side volume
//   output_records/bytes           job output
// --- Anti-Combining ---
//   eager_records                  EagerSH-encoded records emitted
//   lazy_records                   LazySH-encoded records emitted
//   plain_records                  degenerate Eager (empty key set)
//   shared_insertions/spills/spill_bytes/spill_merges
//                                  Shared structure traffic
//   remap_calls                    Map re-executions during LazySH decode
// --- environment ---
//   disk_bytes_read/written        simulated local disk traffic
#define ANTIMR_JOB_SUM_FIELDS(X) \
  X(input_records)               \
  X(input_bytes)                 \
  X(map_output_records)          \
  X(map_output_bytes)            \
  X(emitted_records)             \
  X(emitted_bytes)               \
  X(combine_input_records)       \
  X(combine_output_records)      \
  X(map_spills)                  \
  X(shuffle_bytes)               \
  X(shuffle_fetch_wait_nanos)    \
  X(shuffle_decode_nanos)        \
  X(shuffle_merge_nanos)         \
  X(shuffle_blocks)              \
  X(shuffle_overlapped_fetches)  \
  X(reduce_input_records)        \
  X(reduce_groups)               \
  X(output_records)              \
  X(output_bytes)                \
  X(eager_records)               \
  X(lazy_records)                \
  X(plain_records)               \
  X(shared_insertions)           \
  X(shared_spills)               \
  X(shared_spill_bytes)          \
  X(shared_spill_merges)         \
  X(remap_calls)                 \
  X(disk_bytes_read)             \
  X(disk_bytes_written)

// Counters that aggregate by MAX across tasks:
//   shuffle_peak_buffered_bytes   peak bytes buffered by any single task's
//                                 segment readers (queued compressed frames
//                                 + current decompressed block, summed over
//                                 the task's merge inputs)
#define ANTIMR_JOB_MAX_FIELDS(X) X(shuffle_peak_buffered_bytes)

/// CPU nanoseconds attributed to each pipeline phase. Task sections are
/// single-threaded pure CPU, so scoped wall time is used as the CPU proxy,
/// matching the paper's "total CPU time" (summed across all tasks).
struct PhaseCpu {
#define ANTIMR_DECLARE_FIELD(name) uint64_t name = 0;
  ANTIMR_PHASE_CPU_FIELDS(ANTIMR_DECLARE_FIELD)
#undef ANTIMR_DECLARE_FIELD

  uint64_t Total() const;
  void Add(const PhaseCpu& other);
};

/// \brief Aggregated counters for one job execution. See the X-macro lists
/// above for the per-field documentation.
class JobMetrics {
 public:
#define ANTIMR_DECLARE_FIELD(name) uint64_t name = 0;
  ANTIMR_JOB_SUM_FIELDS(ANTIMR_DECLARE_FIELD)
  ANTIMR_JOB_MAX_FIELDS(ANTIMR_DECLARE_FIELD)
#undef ANTIMR_DECLARE_FIELD

  // --- time (aggregated specially, not in the X-lists) --------------------
  PhaseCpu cpu;
  uint64_t total_cpu_nanos = 0;  ///< thread CPU time summed over all tasks
  uint64_t wall_nanos = 0;       ///< job wall-clock time

  /// Merge `other` (a task's metrics) into this job aggregate: sum fields
  /// are summed, max fields maxed, wall_nanos left alone (the runner sets
  /// it directly).
  void Add(const JobMetrics& other);

  /// Multi-line human-readable dump for examples and debugging.
  std::string ToString() const;

  /// Flat JSON object (all counters in base units) for external tooling.
  /// Emits every X-list field, every phase as "cpu_<phase>_nanos", plus
  /// total_cpu_nanos and wall_nanos.
  std::string ToJson() const;
};

/// \brief Per-task cost record, for load-balance / skew analysis (the
/// paper's Section 6.2 discusses the reduce-side skew LazySH can induce).
struct TaskMetrics {
  bool is_map = false;
  int task_id = 0;
  uint64_t cpu_nanos = 0;  ///< thread CPU time of the task
  JobMetrics metrics;
};

/// Table of the `top_n` slowest tasks (by per-task CPU time) with each
/// task's dominant phase and that phase's share — the paper's Table 2
/// breakdown at per-task granularity. Returns "" for an empty task list.
std::string TopTasksReport(const std::vector<TaskMetrics>& tasks,
                           size_t top_n = 5);

/// "12.3 MB"-style formatting used by the bench tables.
std::string FormatBytes(uint64_t bytes);
/// "1.23 s"-style formatting.
std::string FormatNanos(uint64_t nanos);

}  // namespace antimr

#endif  // ANTIMR_MR_METRICS_H_
