// Per-job cost accounting. The benchmark harness reads these counters to
// reproduce the paper's reported columns: total map output size, shuffle
// (network) bytes, local disk read/write, per-phase CPU time, wall time, and
// the Anti-Combining-specific counters (encoding mix, Shared spills, Map
// re-executions on reducers).
#ifndef ANTIMR_MR_METRICS_H_
#define ANTIMR_MR_METRICS_H_

#include <cstdint>
#include <string>

namespace antimr {

/// CPU nanoseconds attributed to each pipeline phase. Task sections are
/// single-threaded pure CPU, so scoped wall time is used as the CPU proxy,
/// matching the paper's "total CPU time" (summed across all tasks).
struct PhaseCpu {
  uint64_t map_fn = 0;        ///< user Map function
  uint64_t partition_fn = 0;  ///< Partitioner calls
  uint64_t encode = 0;        ///< Anti-Combining encoding (mapper side)
  uint64_t sort = 0;          ///< map-side buffer sorts
  uint64_t combine = 0;       ///< Combiner calls (map or reduce phase)
  uint64_t compress = 0;      ///< codec compression
  uint64_t decompress = 0;    ///< codec decompression
  uint64_t merge = 0;         ///< spill / segment merging
  uint64_t decode = 0;        ///< Anti-Combining decoding (reducer side)
  uint64_t remap = 0;         ///< LazySH Map re-execution on reducers
  uint64_t shared = 0;        ///< Shared structure maintenance incl. spills
  uint64_t reduce_fn = 0;     ///< user Reduce function

  uint64_t Total() const;
  void Add(const PhaseCpu& other);
};

/// \brief Aggregated counters for one job execution.
class JobMetrics {
 public:
  // --- volume -------------------------------------------------------------
  uint64_t input_records = 0;
  uint64_t input_bytes = 0;
  /// Output of the *original* Map function (in an Anti-Combining job this is
  /// the intercepted, pre-encoding output).
  uint64_t map_output_records = 0;
  uint64_t map_output_bytes = 0;
  /// Records/bytes actually entering the shuffle pipeline (encoded form for
  /// Anti-Combining jobs; equals map_output_* for original jobs).
  uint64_t emitted_records = 0;
  uint64_t emitted_bytes = 0;
  uint64_t combine_input_records = 0;
  uint64_t combine_output_records = 0;
  uint64_t map_spills = 0;
  /// Bytes fetched by reducers from map output files (post-compression):
  /// the paper's mapper->reducer "data transfer".
  uint64_t shuffle_bytes = 0;

  // --- shuffle pipeline phases ---------------------------------------------
  /// Reduce-side wall time blocked on segment transfer: concurrent-fetch
  /// copies plus block reads during the merge (includes simulated disk and
  /// network transfer time).
  uint64_t shuffle_fetch_wait_nanos = 0;
  /// Reduce-side CRC verification + block decompression wall time.
  uint64_t shuffle_decode_nanos = 0;
  /// Reduce-side merge/consume wall time (RunGroups minus the user Reduce
  /// function; includes the decode and read stalls interleaved with it).
  uint64_t shuffle_merge_nanos = 0;
  /// Segment blocks decoded by reduce tasks.
  uint64_t shuffle_blocks = 0;
  /// Peak bytes buffered by any single task's segment readers (queued
  /// compressed frames + current decompressed block, summed over the task's
  /// merge inputs). Aggregated by MAX across tasks, not summed.
  uint64_t shuffle_peak_buffered_bytes = 0;
  /// Fetch tasks that started while the map wave was still running — the
  /// pipelined scheduler's map/shuffle overlap, 0 under the barrier model.
  uint64_t shuffle_overlapped_fetches = 0;
  uint64_t reduce_input_records = 0;
  uint64_t reduce_groups = 0;
  uint64_t output_records = 0;
  uint64_t output_bytes = 0;

  // --- Anti-Combining -----------------------------------------------------
  uint64_t eager_records = 0;  ///< EagerSH-encoded records emitted
  uint64_t lazy_records = 0;   ///< LazySH-encoded records emitted
  uint64_t plain_records = 0;  ///< degenerate Eager (empty key set)
  uint64_t shared_insertions = 0;
  uint64_t shared_spills = 0;
  uint64_t shared_spill_bytes = 0;
  uint64_t shared_spill_merges = 0;
  uint64_t remap_calls = 0;  ///< Map re-executions during LazySH decode

  // --- environment --------------------------------------------------------
  uint64_t disk_bytes_read = 0;
  uint64_t disk_bytes_written = 0;

  // --- time ---------------------------------------------------------------
  PhaseCpu cpu;
  uint64_t total_cpu_nanos = 0;  ///< thread CPU time summed over all tasks
  uint64_t wall_nanos = 0;       ///< job wall-clock time

  /// Merge `other` (a task's metrics) into this job aggregate. Time maxima
  /// are summed except wall_nanos, which the runner sets directly.
  void Add(const JobMetrics& other);

  /// Multi-line human-readable dump for examples and debugging.
  std::string ToString() const;

  /// Flat JSON object (all counters in base units) for external tooling.
  std::string ToJson() const;
};

/// \brief Per-task cost record, for load-balance / skew analysis (the
/// paper's Section 6.2 discusses the reduce-side skew LazySH can induce).
struct TaskMetrics {
  bool is_map = false;
  int task_id = 0;
  uint64_t cpu_nanos = 0;  ///< thread CPU time of the task
  JobMetrics metrics;
};

/// "12.3 MB"-style formatting used by the bench tables.
std::string FormatBytes(uint64_t bytes);
/// "1.23 s"-style formatting.
std::string FormatNanos(uint64_t nanos);

}  // namespace antimr

#endif  // ANTIMR_MR_METRICS_H_
