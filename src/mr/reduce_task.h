// Grouped execution machinery (shared by Reduce calls and Combiner
// application) and the reduce task driver: fetch shuffled segments, k-way
// merge, group by the grouping comparator, run Reduce per group in key order.
#ifndef ANTIMR_MR_REDUCE_TASK_H_
#define ANTIMR_MR_REDUCE_TASK_H_

#include <memory>
#include <vector>

#include "mr/job_spec.h"
#include "mr/metrics.h"
#include "mr/shuffle.h"
#include "mr/task_control.h"
#include "net/shuffle_service.h"
#include "net/wire.h"

namespace antimr {

/// Statistics from one grouped execution pass.
struct GroupRunStats {
  uint64_t groups = 0;
  uint64_t records = 0;
  uint64_t fn_nanos = 0;  ///< time inside the user function
};

/// Drive `reducer` over `stream`: one Reduce call per group of
/// grouping-comparator-equal keys, in stream order. Does not call
/// Setup/Cleanup (the caller owns lifecycle).
Status RunGroups(KVStream* stream, const KeyComparator& grouping_cmp,
                 Reducer* reducer, ReduceContext* ctx, GroupRunStats* stats);

/// Batched variant of RunGroups: drains `stream` via NextBatch and runs
/// whole in-batch groups zero-copy, with one stream call per batch instead
/// of per record. A group that crosses a batch boundary is carried in an
/// arena until its end arrives (O(group) memory for boundary-spanning
/// groups, O(1) otherwise). Reduce call order, group keys, and value order
/// are identical to RunGroups. Intended for eager-batch streams; falls back
/// to one-record batches (correct, slower) otherwise.
Status RunGroupsBatched(KVStream* stream, const KeyComparator& grouping_cmp,
                        Reducer* reducer, ReduceContext* ctx,
                        GroupRunStats* stats);

/// \brief ReduceContext that appends records to a vector.
class CollectingContext : public ReduceContext {
 public:
  explicit CollectingContext(std::vector<KV>* out) : out_(out) {}

  void Emit(const Slice& key, const Slice& value) override {
    out_->emplace_back(key.ToString(), value.ToString());
    bytes_ += key.size() + value.size();
  }

  uint64_t bytes() const { return bytes_; }

 private:
  std::vector<KV>* out_;
  uint64_t bytes_ = 0;
};

/// \brief KVStream over a borrowed vector of KV records.
class KVVectorStream : public KVStream {
 public:
  explicit KVVectorStream(const std::vector<KV>* records)
      : records_(records) {}

  bool Valid() const override { return pos_ < records_->size(); }
  Slice key() const override { return (*records_)[pos_].key; }
  Slice value() const override { return (*records_)[pos_].value; }
  Status Next() override {
    ++pos_;
    return Status::OK();
  }

  /// Eager batches: the borrowed vector outlives the stream.
  Status NextBatch(RecordBatch* batch, const BatchOptions& opts) override {
    batch->clear();
    while (pos_ < records_->size() && batch->size() < opts.max_records) {
      const KV& r = (*records_)[pos_];
      if (!opts.Admits(r.key)) break;
      batch->emplace_back(Slice(r.key), Slice(r.value));
      ++pos_;
    }
    return Status::OK();
  }
  bool SupportsEagerBatches() const override { return true; }

 private:
  const std::vector<KV>* records_;
  size_t pos_ = 0;
};

/// Run a Combiner (with full Setup/Cleanup lifecycle) over a sorted stream,
/// collecting its output. Used on map-side spills/merges and inside Shared.
Status ApplyCombiner(const JobSpec& spec, const TaskInfo& info,
                     KVStream* stream, std::vector<KV>* out,
                     GroupRunStats* stats);

/// Inputs to one reduce task: the segments produced for its partition by
/// every map task, either as file names to stream from the map side
/// (barrier model) or as segments already copied to the reduce side by the
/// pipelined scheduler's concurrent fetchers.
struct ReduceTaskInputs {
  /// Segments to fetch inline, streamed from storage during the merge.
  /// Legacy direct-storage path: the engine now ships segments through
  /// `remote` instead so every byte crosses the transport boundary.
  std::vector<std::string> segment_files;
  /// Segments pre-fetched by the concurrent shuffle phase, borrowed from
  /// the scheduler (which keeps ownership so a transiently-failed reduce
  /// can be retried against the same fetched bytes). Decompression is
  /// still block-at-a-time during the merge.
  std::vector<const FetchedSegment*> fetched;
  /// Segments this task pulls through `shuffle` at task start (barrier
  /// shuffle and distributed reduce tasks), in map-index order — merge
  /// order is part of the output contract. Their transfer volume is
  /// counted from FetchedSegment::fetched_bytes, the same boundary the
  /// pipelined fetchers use, so both shuffle modes account identically.
  std::vector<net::SegmentRef> remote;
  /// Fetcher for `remote`; required when `remote` is non-empty.
  net::ShuffleClient* shuffle = nullptr;
  /// Simulated shuffle bandwidth; 0 = unthrottled. Applies to inline
  /// fetches only (pre-fetched segments paid it at fetch time).
  double network_mb_per_s = 0;
  /// Per-segment streaming readahead window, in blocks.
  size_t readahead_blocks = kShuffleReadaheadBlocks;
  /// Optional cancellation/progress hook (mr/task_control.h), polled between
  /// remote segment fetches. A cancelled reduce aborts with a transient
  /// IOError before emitting output.
  TaskControl* control = nullptr;
};

struct ReduceTaskResult {
  std::vector<KV> output;
  JobMetrics metrics;
};

/// Execute reduce task `partition` end to end.
Status RunReduceTask(const JobSpec& spec, int partition,
                     const ReduceTaskInputs& inputs, Env* env,
                     bool collect_output, ReduceTaskResult* result);

}  // namespace antimr

#endif  // ANTIMR_MR_REDUCE_TASK_H_
