#include "mr/job_runner.h"

#include <atomic>

#include "common/stopwatch.h"
#include "io/throttled_env.h"
#include "mr/map_task.h"
#include "mr/reduce_task.h"

namespace antimr {

std::vector<KV> JobResult::FlatOutput() const {
  std::vector<KV> flat;
  for (const auto& task_output : outputs) {
    flat.insert(flat.end(), task_output.begin(), task_output.end());
  }
  return flat;
}

namespace {
std::string UniqueJobId(const std::string& name) {
  static std::atomic<uint64_t> counter{0};
  return "job_" + name + "_" +
         std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
}
}  // namespace

Status RunJob(const JobSpec& spec, const std::vector<InputSplit>& splits,
              const RunOptions& options, JobResult* result) {
  ANTIMR_RETURN_NOT_OK(spec.Validate());
  const uint64_t wall_start = NowNanos();

  std::unique_ptr<Env> owned_env;
  Env* env = options.env;
  IoStats io_before;
  if (env == nullptr) {
    owned_env = NewMemEnv();
    env = owned_env.get();
  } else {
    io_before = env->stats();
  }
  // Simulated local-disk bandwidth: tasks see the throttled wrapper; the
  // underlying env still owns the bytes and the counters.
  std::unique_ptr<Env> throttled_env;
  Env* task_env = env;
  if (options.hardware.disk_mb_per_s > 0) {
    throttled_env = NewThrottledEnv(env, options.hardware.disk_mb_per_s);
    task_env = throttled_env.get();
  }

  const std::string job_id =
      options.job_id.empty() ? UniqueJobId(spec.name) : options.job_id;
  const size_t num_maps = splits.size();
  const size_t num_reduce = static_cast<size_t>(spec.num_reduce_tasks);
  const size_t readahead = options.readahead_blocks > 0
                               ? options.readahead_blocks
                               : kShuffleReadaheadBlocks;

  TaskPool pool(options.num_workers);

  std::vector<MapTaskResult> map_results(num_maps);
  std::vector<uint64_t> map_cpu(num_maps, 0);
  std::vector<ReduceTaskResult> reduce_results(num_reduce);
  std::vector<uint64_t> reduce_cpu(num_reduce, 0);
  uint64_t overlapped_fetches = 0;

  if (options.shuffle_mode == ShuffleMode::kBarrier) {
    // ---- Barrier model: map wave, then reduce wave ------------------------
    {
      std::vector<std::function<Status()>> tasks;
      tasks.reserve(num_maps);
      for (size_t i = 0; i < num_maps; ++i) {
        tasks.push_back([&, i]() {
          const uint64_t cpu_start = ThreadCpuNanos();
          Status st = RunMapTask(spec, job_id, static_cast<int>(i), splits[i],
                                 task_env, &map_results[i]);
          map_cpu[i] = ThreadCpuNanos() - cpu_start;
          return st;
        });
      }
      ANTIMR_RETURN_NOT_OK(pool.RunWave(tasks));
    }
    {
      std::vector<std::function<Status()>> tasks;
      tasks.reserve(num_reduce);
      for (size_t p = 0; p < num_reduce; ++p) {
        tasks.push_back([&, p]() {
          ReduceTaskInputs inputs;
          inputs.network_mb_per_s = options.hardware.network_mb_per_s;
          inputs.readahead_blocks = readahead;
          for (const MapTaskResult& mr : map_results) {
            const std::string& fname = mr.segment_files[p];
            if (!fname.empty()) inputs.segment_files.push_back(fname);
          }
          const uint64_t cpu_start = ThreadCpuNanos();
          Status st =
              RunReduceTask(spec, static_cast<int>(p), inputs, task_env,
                            options.collect_output, &reduce_results[p]);
          reduce_cpu[p] = ThreadCpuNanos() - cpu_start;
          return st;
        });
      }
      ANTIMR_RETURN_NOT_OK(pool.RunWave(tasks));
    }
  } else {
    // ---- Pipelined model: dependency graph with overlapped shuffle --------
    //
    // Graph shape (per reduce partition p, map task i):
    //   map i  ->  fetch(p, i)  ->  reduce p
    // Fetches run on a dedicated pool so copying shuffle data never steals a
    // map/reduce worker slot, and each fetch is runnable the moment its map
    // task publishes segments — the shuffle overlaps the rest of the map
    // wave. Only the merge+reduce waits for all of p's inputs. Map tasks are
    // added first, so on failure the lowest-id (map) status is reported,
    // matching the barrier model.
    TaskPool fetch_pool(options.fetch_threads > 0 ? options.fetch_threads
                                                  : pool.num_workers());
    TaskGraph graph(&pool);

    std::atomic<size_t> maps_remaining{num_maps};
    std::atomic<uint64_t> overlapped{0};
    // fetched[p][i]: map i's segment for partition p, copied reduce-side.
    std::vector<std::vector<FetchedSegment>> fetched(num_reduce);
    for (auto& per_map : fetched) per_map.resize(num_maps);
    // Fetch CPU is billed to the destination reduce task.
    std::vector<std::atomic<uint64_t>> fetch_cpu(num_reduce);

    std::vector<int> map_ids(num_maps, -1);
    for (size_t i = 0; i < num_maps; ++i) {
      map_ids[i] = graph.AddTask([&, i]() {
        const uint64_t cpu_start = ThreadCpuNanos();
        Status st = RunMapTask(spec, job_id, static_cast<int>(i), splits[i],
                               task_env, &map_results[i]);
        map_cpu[i] = ThreadCpuNanos() - cpu_start;
        maps_remaining.fetch_sub(1, std::memory_order_relaxed);
        return st;
      });
    }

    for (size_t p = 0; p < num_reduce; ++p) {
      std::vector<int> fetch_ids;
      fetch_ids.reserve(num_maps);
      for (size_t i = 0; i < num_maps; ++i) {
        fetch_ids.push_back(graph.AddTask(
            [&, p, i]() {
              const std::string& fname = map_results[i].segment_files[p];
              if (fname.empty()) return Status::OK();
              if (maps_remaining.load(std::memory_order_relaxed) > 0) {
                overlapped.fetch_add(1, std::memory_order_relaxed);
              }
              const uint64_t cpu_start = ThreadCpuNanos();
              Status st = FetchSegmentFrames(task_env, fname,
                                             options.hardware.network_mb_per_s,
                                             &fetched[p][i]);
              fetch_cpu[p].fetch_add(ThreadCpuNanos() - cpu_start,
                                     std::memory_order_relaxed);
              return st;
            },
            {map_ids[i]}, &fetch_pool));
      }
      graph.AddTask(
          [&, p]() {
            ReduceTaskInputs inputs;
            inputs.readahead_blocks = readahead;
            for (FetchedSegment& fs : fetched[p]) {
              if (!fs.file.empty()) inputs.fetched.push_back(std::move(fs));
            }
            const uint64_t cpu_start = ThreadCpuNanos();
            Status st =
                RunReduceTask(spec, static_cast<int>(p), inputs, task_env,
                              options.collect_output, &reduce_results[p]);
            reduce_cpu[p] = ThreadCpuNanos() - cpu_start +
                            fetch_cpu[p].load(std::memory_order_relaxed);
            return st;
          },
          fetch_ids);
    }

    ANTIMR_RETURN_NOT_OK(graph.Wait());
    overlapped_fetches = overlapped.load(std::memory_order_relaxed);
  }

  // ---- Aggregate ------------------------------------------------------------
  result->metrics = JobMetrics();
  result->outputs.clear();
  result->task_metrics.clear();
  for (size_t i = 0; i < num_maps; ++i) {
    result->metrics.Add(map_results[i].metrics);
    result->metrics.total_cpu_nanos += map_cpu[i];
    if (options.collect_task_metrics) {
      result->task_metrics.push_back({/*is_map=*/true, static_cast<int>(i),
                                      map_cpu[i], map_results[i].metrics});
    }
  }
  for (size_t p = 0; p < num_reduce; ++p) {
    result->metrics.Add(reduce_results[p].metrics);
    result->metrics.total_cpu_nanos += reduce_cpu[p];
    if (options.collect_task_metrics) {
      result->task_metrics.push_back({/*is_map=*/false, static_cast<int>(p),
                                      reduce_cpu[p],
                                      reduce_results[p].metrics});
    }
    if (options.collect_output) {
      result->outputs.push_back(std::move(reduce_results[p].output));
    }
  }
  result->metrics.shuffle_overlapped_fetches = overlapped_fetches;

  if (options.cleanup_intermediates) {
    for (const MapTaskResult& mr : map_results) {
      for (const std::string& fname : mr.segment_files) {
        if (!fname.empty()) env->DeleteFile(fname);
      }
    }
  }

  const IoStats io_after = env->stats();
  result->metrics.disk_bytes_read = io_after.bytes_read - io_before.bytes_read;
  result->metrics.disk_bytes_written =
      io_after.bytes_written - io_before.bytes_written;
  result->metrics.wall_nanos = NowNanos() - wall_start;
  return Status::OK();
}

Status RunJob(const JobSpec& spec, const std::vector<InputSplit>& splits,
              JobResult* result) {
  return RunJob(spec, splits, RunOptions(), result);
}

}  // namespace antimr
