#include "mr/job_runner.h"

#include <atomic>

#include "common/stopwatch.h"
#include "io/throttled_env.h"
#include "mr/map_task.h"
#include "mr/reduce_task.h"

namespace antimr {

std::vector<KV> JobResult::FlatOutput() const {
  std::vector<KV> flat;
  for (const auto& task_output : outputs) {
    flat.insert(flat.end(), task_output.begin(), task_output.end());
  }
  return flat;
}

namespace {
std::string UniqueJobId(const std::string& name) {
  static std::atomic<uint64_t> counter{0};
  return "job_" + name + "_" +
         std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
}
}  // namespace

Status RunJob(const JobSpec& spec, const std::vector<InputSplit>& splits,
              const RunOptions& options, JobResult* result) {
  ANTIMR_RETURN_NOT_OK(spec.Validate());
  const uint64_t wall_start = NowNanos();

  std::unique_ptr<Env> owned_env;
  Env* env = options.env;
  IoStats io_before;
  if (env == nullptr) {
    owned_env = NewMemEnv();
    env = owned_env.get();
  } else {
    io_before = env->stats();
  }
  // Simulated local-disk bandwidth: tasks see the throttled wrapper; the
  // underlying env still owns the bytes and the counters.
  std::unique_ptr<Env> throttled_env;
  Env* task_env = env;
  if (options.hardware.disk_mb_per_s > 0) {
    throttled_env = NewThrottledEnv(env, options.hardware.disk_mb_per_s);
    task_env = throttled_env.get();
  }

  const std::string job_id =
      options.job_id.empty() ? UniqueJobId(spec.name) : options.job_id;

  TaskPool pool(options.num_workers);

  // ---- Map wave -----------------------------------------------------------
  std::vector<MapTaskResult> map_results(splits.size());
  std::vector<uint64_t> map_cpu(splits.size(), 0);
  {
    std::vector<std::function<Status()>> tasks;
    tasks.reserve(splits.size());
    for (size_t i = 0; i < splits.size(); ++i) {
      tasks.push_back([&, i]() {
        const uint64_t cpu_start = ThreadCpuNanos();
        Status st = RunMapTask(spec, job_id, static_cast<int>(i), splits[i],
                               task_env, &map_results[i]);
        map_cpu[i] = ThreadCpuNanos() - cpu_start;
        return st;
      });
    }
    ANTIMR_RETURN_NOT_OK(pool.RunWave(tasks));
  }

  // ---- Reduce wave ---------------------------------------------------------
  const size_t num_reduce = static_cast<size_t>(spec.num_reduce_tasks);
  std::vector<ReduceTaskResult> reduce_results(num_reduce);
  std::vector<uint64_t> reduce_cpu(num_reduce, 0);
  {
    std::vector<std::function<Status()>> tasks;
    tasks.reserve(num_reduce);
    for (size_t p = 0; p < num_reduce; ++p) {
      tasks.push_back([&, p]() {
        ReduceTaskInputs inputs;
        inputs.network_mb_per_s = options.hardware.network_mb_per_s;
        for (const MapTaskResult& mr : map_results) {
          const std::string& fname = mr.segment_files[p];
          if (!fname.empty()) inputs.segment_files.push_back(fname);
        }
        const uint64_t cpu_start = ThreadCpuNanos();
        Status st =
            RunReduceTask(spec, static_cast<int>(p), inputs, task_env,
                          options.collect_output, &reduce_results[p]);
        reduce_cpu[p] = ThreadCpuNanos() - cpu_start;
        return st;
      });
    }
    ANTIMR_RETURN_NOT_OK(pool.RunWave(tasks));
  }

  // ---- Aggregate ------------------------------------------------------------
  result->metrics = JobMetrics();
  result->outputs.clear();
  result->task_metrics.clear();
  for (size_t i = 0; i < map_results.size(); ++i) {
    result->metrics.Add(map_results[i].metrics);
    result->metrics.total_cpu_nanos += map_cpu[i];
    if (options.collect_task_metrics) {
      result->task_metrics.push_back({/*is_map=*/true, static_cast<int>(i),
                                      map_cpu[i], map_results[i].metrics});
    }
  }
  for (size_t p = 0; p < num_reduce; ++p) {
    result->metrics.Add(reduce_results[p].metrics);
    result->metrics.total_cpu_nanos += reduce_cpu[p];
    if (options.collect_task_metrics) {
      result->task_metrics.push_back({/*is_map=*/false, static_cast<int>(p),
                                      reduce_cpu[p],
                                      reduce_results[p].metrics});
    }
    if (options.collect_output) {
      result->outputs.push_back(std::move(reduce_results[p].output));
    }
  }

  if (options.cleanup_intermediates) {
    for (const MapTaskResult& mr : map_results) {
      for (const std::string& fname : mr.segment_files) {
        if (!fname.empty()) env->DeleteFile(fname);
      }
    }
  }

  const IoStats io_after = env->stats();
  result->metrics.disk_bytes_read = io_after.bytes_read - io_before.bytes_read;
  result->metrics.disk_bytes_written =
      io_after.bytes_written - io_before.bytes_written;
  result->metrics.wall_nanos = NowNanos() - wall_start;
  return Status::OK();
}

Status RunJob(const JobSpec& spec, const std::vector<InputSplit>& splits,
              JobResult* result) {
  return RunJob(spec, splits, RunOptions(), result);
}

}  // namespace antimr
