#include "mr/job_runner.h"

#include <utility>

#include "engine/executor.h"
#include "engine/job_plan.h"

namespace antimr {

std::vector<KV> JobResult::FlatOutput() const {
  std::vector<KV> flat;
  for (const auto& task_output : outputs) {
    flat.insert(flat.end(), task_output.begin(), task_output.end());
  }
  return flat;
}

Status RunJob(const JobSpec& spec, const std::vector<InputSplit>& splits,
              const RunOptions& options, JobResult* result) {
  // One-stage plan: "in" -> spec -> "out". The spec is taken as-is (callers
  // apply EnableAntiCombining themselves in this legacy API).
  engine::JobPlan plan;
  plan.name = spec.name;
  ANTIMR_RETURN_NOT_OK(plan.AddInput("in", splits));
  engine::Stage stage;
  stage.name = spec.name;
  stage.spec = spec;
  stage.inputs = {"in"};
  stage.output = "out";
  stage.options.shuffle_mode = options.shuffle_mode;
  plan.AddStage(std::move(stage));

  engine::ExecutorOptions exec_options;
  exec_options.num_workers = options.num_workers;
  exec_options.fetch_threads = options.fetch_threads;
  exec_options.readahead_blocks = options.readahead_blocks;
  exec_options.env = options.env;
  exec_options.collect_outputs = options.collect_output;
  exec_options.cleanup_intermediates = options.cleanup_intermediates;
  exec_options.hardware = options.hardware;
  exec_options.collect_task_metrics = options.collect_task_metrics;
  exec_options.run_id = options.job_id;
  exec_options.max_task_attempts = options.max_task_attempts;
  exec_options.retry_backoff_nanos = options.retry_backoff_nanos;
  exec_options.record_format = options.record_format;
  exec_options.chunk_block_bytes = options.chunk_block_bytes;
  exec_options.chunk_codec = options.chunk_codec;

  engine::Executor executor(exec_options);
  engine::PlanResult plan_result;
  const Status status = executor.Run(plan, &plan_result);

  result->metrics = plan_result.metrics;
  result->outputs.clear();
  result->task_metrics.clear();
  if (!plan_result.stages.empty()) {
    result->task_metrics = std::move(plan_result.stages[0].tasks);
  }
  auto it = plan_result.outputs.find("out");
  if (it != plan_result.outputs.end()) {
    result->outputs = std::move(it->second);
  }
  return status;
}

Status RunJob(const JobSpec& spec, const std::vector<InputSplit>& splits,
              JobResult* result) {
  return RunJob(spec, splits, RunOptions(), result);
}

}  // namespace antimr
