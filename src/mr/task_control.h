// Cooperative cancellation + coarse progress for one running task attempt.
// The worker registers a TaskControl per inflight rpc; the task loop bumps
// progress_permille between batches and polls cancel at the same points.
// Cancellation surfaces as a transient IOError from the task body, so the
// attempt-scoped scrub (map_task.cc RemovePartialOutput) runs exactly as it
// would for a crashed attempt — speculation's loser leaves no residue.
#ifndef ANTIMR_MR_TASK_CONTROL_H_
#define ANTIMR_MR_TASK_CONTROL_H_

#include <atomic>
#include <cstdint>

namespace antimr {

struct TaskControl {
  std::atomic<bool> cancel{false};
  /// 0..1000; coarse (per input batch for maps, per fetched segment for
  /// reduces). Monotone within one attempt.
  std::atomic<uint32_t> progress_permille{0};

  bool cancelled() const { return cancel.load(std::memory_order_relaxed); }
  void RequestCancel() { cancel.store(true, std::memory_order_relaxed); }
  void SetProgress(uint64_t done, uint64_t total) {
    if (total == 0) return;
    if (done > total) done = total;
    progress_permille.store(static_cast<uint32_t>(done * 1000 / total),
                            std::memory_order_relaxed);
  }
};

}  // namespace antimr

#endif  // ANTIMR_MR_TASK_CONTROL_H_
