#include "mr/in_mapper_combining.h"

#include <algorithm>

#include "mr/reduce_task.h"

namespace antimr {

class InMapperCombiningMapper::BufferingContext : public MapContext {
 public:
  explicit BufferingContext(InMapperCombiningMapper* owner) : owner_(owner) {}

  void Emit(const Slice& key, const Slice& value) override {
    owner_->Add(key, value);
  }

 private:
  InMapperCombiningMapper* owner_;
};

InMapperCombiningMapper::InMapperCombiningMapper(
    MapperFactory base_factory, ReducerFactory combiner_factory,
    size_t memory_budget)
    : base_factory_(std::move(base_factory)),
      combiner_factory_(std::move(combiner_factory)),
      memory_budget_(memory_budget) {}

void InMapperCombiningMapper::Setup(const TaskInfo& info, MapContext* ctx) {
  (void)ctx;
  info_ = info;
  base_ = base_factory_();
  combiner_ = combiner_factory_();
  buffer_ctx_ = std::make_unique<BufferingContext>(this);
  base_->Setup(info, buffer_ctx_.get());
}

void InMapperCombiningMapper::Add(const Slice& key, const Slice& value) {
  auto it = table_.find(std::string(key.view()));
  if (it == table_.end()) {
    it = table_.emplace(key.ToString(), std::vector<std::string>()).first;
    memory_bytes_ += key.size();
  }
  it->second.emplace_back(value.view());
  memory_bytes_ += value.size();
}

void InMapperCombiningMapper::Map(const Slice& key, const Slice& value,
                                  MapContext* ctx) {
  base_->Map(key, value, buffer_ctx_.get());
  if (memory_bytes_ > memory_budget_) Flush(ctx);
}

void InMapperCombiningMapper::Flush(MapContext* ctx) {
  // Deterministic flush order keeps runs reproducible.
  std::vector<const std::string*> keys;
  keys.reserve(table_.size());
  for (const auto& [key, values] : table_) keys.push_back(&key);
  std::sort(keys.begin(), keys.end(),
            [](const std::string* a, const std::string* b) {
              return *a < *b;
            });
  std::vector<KV> combined;
  CollectingContext collect(&combined);
  for (const std::string* key : keys) {
    combined.clear();
    StringVectorIterator it(&table_[*key]);
    combiner_->Reduce(*key, &it, &collect);
    for (const KV& kv : combined) ctx->Emit(kv.key, kv.value);
  }
  table_.clear();
  memory_bytes_ = 0;
}

void InMapperCombiningMapper::Cleanup(MapContext* ctx) {
  base_->Cleanup(buffer_ctx_.get());
  Flush(ctx);
}

JobSpec ApplyInMapperCombining(const JobSpec& spec, size_t memory_budget) {
  JobSpec rewritten = spec;
  const MapperFactory base = spec.mapper_factory;
  const ReducerFactory combiner = spec.combiner_factory;
  rewritten.mapper_factory = [base, combiner, memory_budget]() {
    return std::make_unique<InMapperCombiningMapper>(base, combiner,
                                                     memory_budget);
  };
  // The pattern replaces spill-time combining; keep the combiner out of the
  // spill path so work is not done twice.
  rewritten.combiner_factory = nullptr;
  rewritten.name = spec.name + "+in_mapper_combining";
  return rewritten;
}

}  // namespace antimr
