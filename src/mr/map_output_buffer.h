// In-memory map output collection: an arena plus a record index, sorted by
// (partition, key) before each spill — the scaled-down analog of Hadoop's
// io.sort.mb circular buffer.
#ifndef ANTIMR_MR_MAP_OUTPUT_BUFFER_H_
#define ANTIMR_MR_MAP_OUTPUT_BUFFER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "io/merger.h"
#include "io/run_file.h"

namespace antimr {

/// \brief Buffers map output records grouped by target partition.
class MapOutputBuffer {
 public:
  MapOutputBuffer(int num_partitions, KeyComparator key_cmp);

  /// Append one record destined for `partition`.
  void Add(int partition, const Slice& key, const Slice& value);

  /// Approximate bytes held (payload + per-record index overhead).
  size_t memory_usage() const;
  size_t record_count() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Sort records by (partition, key); stable so equal keys keep insertion
  /// order. Must be called before PartitionStream.
  void Sort();

  /// Stream over the sorted records of one partition. Valid until
  /// Clear()/Add()/Sort() is next called.
  std::unique_ptr<KVStream> PartitionStream(int partition) const;

  /// Number of records currently buffered for `partition` (post-Sort).
  uint64_t PartitionRecords(int partition) const;

  /// Drop all buffered data, retaining arena capacity.
  void Clear();

 private:
  struct Entry {
    int32_t partition;
    uint32_t key_off;
    uint32_t key_len;
    uint32_t val_off;
    uint32_t val_len;
  };

  class BufferStream;

  Slice KeyOf(const Entry& e) const {
    return Slice(arena_.data() + e.key_off, e.key_len);
  }
  Slice ValueOf(const Entry& e) const {
    return Slice(arena_.data() + e.val_off, e.val_len);
  }

  int num_partitions_;
  KeyComparator key_cmp_;
  std::string arena_;
  std::vector<Entry> entries_;
  std::vector<size_t> partition_begin_;  // boundaries after Sort
  bool sorted_ = false;
};

}  // namespace antimr

#endif  // ANTIMR_MR_MAP_OUTPUT_BUFFER_H_
