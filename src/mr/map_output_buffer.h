// In-memory map output collection: a chunked arena plus a record index,
// sorted by (partition, key) before each spill — the scaled-down analog of
// Hadoop's io.sort.mb circular buffer. Records are interned once at Emit
// time and flow out as RecordRef views; chunked storage means growth never
// re-copies already-buffered bytes (unlike the old std::string arena, whose
// doubling realloc moved every record).
#ifndef ANTIMR_MR_MAP_OUTPUT_BUFFER_H_
#define ANTIMR_MR_MAP_OUTPUT_BUFFER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/arena.h"
#include "io/merger.h"
#include "io/run_file.h"

namespace antimr {

/// \brief Buffers map output records grouped by target partition.
class MapOutputBuffer {
 public:
  MapOutputBuffer(int num_partitions, KeyComparator key_cmp);

  /// Append one record destined for `partition`.
  void Add(int partition, const Slice& key, const Slice& value);

  /// Append a whole batch, with `partitions[i]` the target of `batch[i]`.
  /// One index reservation for the lot; bytes are interned record by record
  /// as in Add.
  void AddBatch(const RecordBatch& batch, const std::vector<int>& partitions);

  /// Approximate bytes held (payload + per-record index overhead).
  size_t memory_usage() const;
  size_t record_count() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Sort records by (partition, key); stable so equal keys keep insertion
  /// order. Must be called before PartitionStream.
  void Sort();

  /// Stream over the sorted records of one partition. Valid until
  /// Clear()/Add()/Sort() is next called.
  std::unique_ptr<KVStream> PartitionStream(int partition) const;

  /// Number of records currently buffered for `partition` (post-Sort).
  uint64_t PartitionRecords(int partition) const;

  /// Drop all buffered data, retaining arena capacity. Also the map-attempt
  /// scrub point: a retried attempt starts from a cleared (but warm) arena.
  void Clear();

  /// Arena bytes interned since the last Clear (tests/metrics).
  size_t arena_bytes_used() const { return arena_.bytes_used(); }

 private:
  /// InternRecord lays the value directly after the key, so one base
  /// pointer plus two lengths indexes the whole record.
  struct Entry {
    const char* base;
    uint32_t key_len;
    uint32_t val_len;
    int32_t partition;
  };

  class BufferStream;

  Slice KeyOf(const Entry& e) const { return Slice(e.base, e.key_len); }
  Slice ValueOf(const Entry& e) const {
    return Slice(e.base + e.key_len, e.val_len);
  }

  int num_partitions_;
  KeyComparator key_cmp_;
  Arena arena_;
  std::vector<Entry> entries_;
  std::vector<size_t> partition_begin_;  // boundaries after Sort
  bool sorted_ = false;
};

}  // namespace antimr

#endif  // ANTIMR_MR_MAP_OUTPUT_BUFFER_H_
