#include "mr/api.h"

#include "common/hash.h"

namespace antimr {

int HashPartitioner::Partition(const Slice& key, int num_partitions) const {
  return static_cast<int>(Hash64(key) % static_cast<uint64_t>(num_partitions));
}

std::shared_ptr<const Partitioner> DefaultPartitioner() {
  static std::shared_ptr<const Partitioner> instance =
      std::make_shared<HashPartitioner>();
  return instance;
}

InputSplit MakeSplit(std::vector<KV> records) {
  auto shared = std::make_shared<const std::vector<KV>>(std::move(records));
  InputSplit split;
  split.open = [shared]() { return std::make_unique<VectorSource>(shared); };
  return split;
}

std::vector<InputSplit> MakeSplits(std::vector<KV> records, int num_splits) {
  std::vector<InputSplit> splits;
  if (num_splits <= 0) num_splits = 1;
  const size_t n = records.size();
  const size_t per = (n + num_splits - 1) / static_cast<size_t>(num_splits);
  size_t start = 0;
  while (start < n) {
    const size_t end = std::min(n, start + per);
    splits.push_back(MakeSplit(std::vector<KV>(
        std::make_move_iterator(records.begin() + static_cast<long>(start)),
        std::make_move_iterator(records.begin() + static_cast<long>(end)))));
    start = end;
  }
  if (splits.empty()) splits.push_back(MakeSplit({}));
  return splits;
}

}  // namespace antimr
