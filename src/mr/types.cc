#include "mr/api.h"

#include <algorithm>

#include "common/hash.h"

namespace antimr {

Status Partitioner::ValidatePartitions(int num_partitions) const {
  if (num_partitions <= 0) {
    return Status::InvalidArgument("Partitioner: num_partitions must be > 0, got " +
                                   std::to_string(num_partitions));
  }
  return Status::OK();
}

int HashPartitioner::Partition(const Slice& key, int num_partitions) const {
  if (num_partitions <= 0) return 0;  // rejected at plan time; avoid mod-by-zero
  return static_cast<int>(Hash64(key) % static_cast<uint64_t>(num_partitions));
}

RangePartitioner::RangePartitioner(std::vector<std::string> pivots)
    : pivots_(std::move(pivots)) {
  std::sort(pivots_.begin(), pivots_.end());
}

int RangePartitioner::Partition(const Slice& key, int num_partitions) const {
  if (num_partitions <= 0) return 0;  // rejected at plan time; avoid UB
  if (pivots_.empty()) {
    // Empty sample: no range information, degrade to hash placement.
    return static_cast<int>(Hash64(key) %
                            static_cast<uint64_t>(num_partitions));
  }
  // First pivot strictly greater than key; duplicates collapse to the first
  // occurrence, so repeated pivots simply leave partitions empty.
  const auto it = std::upper_bound(
      pivots_.begin(), pivots_.end(), key,
      [](const Slice& k, const std::string& pivot) {
        return k.compare(Slice(pivot)) < 0;
      });
  const auto idx = static_cast<int>(it - pivots_.begin());
  return std::min(idx, num_partitions - 1);
}

Status RangePartitioner::ValidatePartitions(int num_partitions) const {
  ANTIMR_RETURN_NOT_OK(Partitioner::ValidatePartitions(num_partitions));
  if (!pivots_.empty() &&
      pivots_.size() > static_cast<size_t>(num_partitions) - 1) {
    return Status::InvalidArgument(
        "RangePartitioner: " + std::to_string(pivots_.size()) +
        " pivots cover more than num_partitions=" +
        std::to_string(num_partitions) + " ranges");
  }
  return Status::OK();
}

std::shared_ptr<const Partitioner> DefaultPartitioner() {
  static std::shared_ptr<const Partitioner> instance =
      std::make_shared<HashPartitioner>();
  return instance;
}

InputSplit MakeSplit(std::vector<KV> records) {
  auto shared = std::make_shared<const std::vector<KV>>(std::move(records));
  InputSplit split;
  split.open = [shared]() { return std::make_unique<VectorSource>(shared); };
  return split;
}

std::vector<InputSplit> MakeSplits(std::vector<KV> records, int num_splits) {
  std::vector<InputSplit> splits;
  if (num_splits <= 0) num_splits = 1;
  const size_t n = records.size();
  const size_t per = (n + num_splits - 1) / static_cast<size_t>(num_splits);
  size_t start = 0;
  while (start < n) {
    const size_t end = std::min(n, start + per);
    splits.push_back(MakeSplit(std::vector<KV>(
        std::make_move_iterator(records.begin() + static_cast<long>(start)),
        std::make_move_iterator(records.begin() + static_cast<long>(end)))));
    start = end;
  }
  if (splits.empty()) splits.push_back(MakeSplit({}));
  return splits;
}

}  // namespace antimr
