// The simulated shared-nothing cluster: a pool of worker threads standing in
// for the paper's 44 worker cores, plus the storage Env standing in for the
// workers' local disks. Thread CPU time is sampled per task so the harness
// can report "total CPU time" summed over all tasks, like the paper does.
#ifndef ANTIMR_MR_LOCAL_CLUSTER_H_
#define ANTIMR_MR_LOCAL_CLUSTER_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "io/env.h"

namespace antimr {

/// \brief Fixed-size worker pool that runs task batches ("waves").
class TaskPool {
 public:
  /// \param num_workers worker threads; 0 means hardware concurrency.
  explicit TaskPool(int num_workers);

  /// Run all tasks to completion. Each task returns a Status; the first
  /// failure (by task index) is returned. Tasks are claimed in index order.
  Status RunWave(const std::vector<std::function<Status()>>& tasks);

  int num_workers() const { return num_workers_; }

 private:
  int num_workers_;
};

/// \brief Cluster facade: worker pool + local-disk Env factory.
class LocalCluster {
 public:
  struct Options {
    int num_workers = 0;  ///< 0 = hardware concurrency
    /// Create the cluster on a real directory instead of in-memory storage.
    std::string posix_root;  ///< empty = in-memory Env
  };

  explicit LocalCluster(const Options& options);

  TaskPool* pool() { return &pool_; }
  Env* env() { return env_.get(); }

 private:
  TaskPool pool_;
  std::unique_ptr<Env> env_;
};

}  // namespace antimr

#endif  // ANTIMR_MR_LOCAL_CLUSTER_H_
