// The simulated shared-nothing cluster: a pool of worker threads standing in
// for the paper's 44 worker cores, plus the storage Env standing in for the
// workers' local disks. Thread CPU time is sampled per task so the harness
// can report "total CPU time" summed over all tasks, like the paper does.
//
// TaskPool keeps its worker threads alive for the pool's whole lifetime;
// RunWave and TaskGraph both feed the same threads, so running several waves
// (or a full dependency graph) never re-spawns threads. TaskGraph adds
// dependency-aware scheduling on top: a task becomes runnable the moment its
// dependencies complete, which is what lets shuffle fetches start while the
// map wave is still in flight.
#ifndef ANTIMR_MR_LOCAL_CLUSTER_H_
#define ANTIMR_MR_LOCAL_CLUSTER_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "io/env.h"
#include "obs/metrics_registry.h"

namespace antimr {

namespace engine {
class Executor;
}  // namespace engine

/// \brief Simulated cluster hardware (paper Section 7's testbed analog).
///
/// Zero disables a component. When set, every byte through a node's local
/// disk and every shuffled byte pays simulated transfer time, so wall-clock
/// "runtime" reflects data volume the way it did on the paper's 7.2K SATA
/// disks and shared gigabit switch. CPU-time metrics are unaffected (the
/// throttle sleeps; it does not burn cycles).
struct SimulatedHardware {
  double disk_mb_per_s = 0;     ///< local-disk bandwidth per task
  double network_mb_per_s = 0;  ///< mapper->reducer transfer bandwidth
};

/// \brief Persistent fixed-size worker pool.
///
/// Threads are spawned once in the constructor and joined in the destructor;
/// work arrives through Submit (fire-and-forget) or RunWave (batch with
/// first-failure semantics). Waves reuse the same threads — there is no
/// per-wave spawn/join cost.
class TaskPool {
 public:
  /// \param num_workers worker threads; 0 means hardware concurrency.
  /// \param name labels the workers' trace lanes ("<name>-<i>") and is why
  ///        separate pools (workers vs fetch threads) stay tellable apart
  ///        in a trace. Pools also feed the shared queue-depth / worker
  ///        gauges in the global MetricsRegistry, sampled on task
  ///        boundaries (Add/Sub-based, so several pools aggregate).
  explicit TaskPool(int num_workers, std::string name = "worker");
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Enqueue one task for execution on a pool thread.
  void Submit(std::function<void()> fn);

  /// Run all tasks to completion. Each task returns a Status; the first
  /// failure (by task index) is returned. Tasks are claimed in index order.
  /// Must be called from outside the pool (a pool thread calling RunWave
  /// would block a worker slot).
  Status RunWave(const std::vector<std::function<Status()>>& tasks);

  int num_workers() const { return num_workers_; }

 private:
  void WorkerLoop(int worker_index);

  int num_workers_;
  std::string name_;
  obs::Gauge* queue_depth_gauge_;
  obs::Gauge* active_workers_gauge_;
  obs::Gauge* workers_total_gauge_;
  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
};

/// \brief Transient-failure retry policy for graph tasks.
///
/// A task whose Status::IsTransient() failure leaves attempts unspent is
/// re-executed after a capped exponential backoff with deterministic jitter
/// (common/random seeded from {seed, task id, attempt}), so a given run
/// retries on an exactly reproducible schedule. Permanent failures
/// (Corruption, InvalidArgument, ...) are never retried. Retried tasks MUST
/// be idempotent: re-execution has to converge to the same output as a
/// clean first run (attempt-scoped file names, re-publish-safe sinks).
struct RetryPolicy {
  /// Total executions allowed per task; 1 = fail on the first error.
  int max_attempts = 1;
  /// Backoff before the first retry; doubles per attempt.
  uint64_t backoff_nanos = 1000 * 1000;  ///< 1 ms
  /// Upper bound on the doubled backoff.
  uint64_t max_backoff_nanos = 256 * 1000 * 1000;  ///< 256 ms
  /// Jitter seed; the same seed replays the same backoff schedule.
  uint64_t seed = 0;
};

/// \brief Dependency-aware task scheduler over one or more TaskPools.
///
/// Tasks form a DAG: AddTask registers a task with edges to already-added
/// tasks, and a task is submitted to its pool the instant its last
/// dependency succeeds — there is no wave barrier. A transiently-failing
/// task is retried per the graph's (or its own) RetryPolicy; a terminally
/// failed task marks all transitive dependents as skipped (they never run)
/// except always-run tasks, which execute regardless so cleanup work still
/// happens on failure paths. Wait blocks until every task has finished or
/// been skipped and returns the first terminal failure by task id, so add
/// order decides which failure a job reports.
class TaskGraph {
 public:
  /// Per-task knobs for the attempt-aware AddTask overload.
  struct TaskOptions {
    TaskPool* pool = nullptr;          ///< null = the graph's default pool
    const RetryPolicy* retry = nullptr;  ///< null = the graph's default
    /// Run even when a dependency failed or was skipped (cleanup tasks).
    /// The task still waits for every dependency to finish or be skipped.
    bool always_run = false;
  };

  /// Attempt-aware task body: receives the 0-based attempt number, so a
  /// retried task can discard prior-attempt partials and scope its output
  /// names per attempt.
  using TaskFn = std::function<Status(int attempt)>;

  /// \param pool default pool for tasks added without a pool override.
  /// \param retry default retry policy (the default default: no retries).
  explicit TaskGraph(TaskPool* pool, RetryPolicy retry = RetryPolicy());

  /// Register `fn` depending on the tasks in `deps` (ids returned by earlier
  /// AddTask calls). Returns the new task's id. If every dependency already
  /// succeeded (or `deps` is empty) the task is submitted immediately, so
  /// the graph can be grown while it runs. `pool_override` routes this task
  /// to a different pool (e.g. dedicated fetch threads).
  int AddTask(std::function<Status()> fn, const std::vector<int>& deps = {},
              TaskPool* pool_override = nullptr);

  /// Attempt-aware overload with per-task options.
  int AddTask(TaskFn fn, const std::vector<int>& deps,
              const TaskOptions& options);

  /// Block until all tasks have completed or been skipped. Returns the
  /// lowest-id failure, or OK.
  Status Wait();

 private:
  struct Node {
    TaskFn fn;
    TaskPool* pool = nullptr;
    RetryPolicy retry;
    int attempt = 0;           ///< executions started so far - 1
    int pending = 0;           ///< unfinished dependencies
    bool dep_failed = false;   ///< a dependency failed or was skipped
    bool always_run = false;   ///< run even when dep_failed
    bool done = false;
    bool ok = false;
    std::vector<int> dependents;
  };

  /// Submit node `id` to its pool. Caller holds mu_.
  void ScheduleLocked(int id);
  /// Record completion of attempt `attempt` of `id`: retry a transient
  /// failure with remaining attempts, otherwise finish and release/skip
  /// dependents.
  void OnDone(int id, Status st);
  /// Mark `id` done (run or skipped) and cascade to dependents. Caller
  /// holds mu_; skipped dependents are finished iteratively, runnable ones
  /// are submitted.
  void FinishLocked(int id, bool ran_ok);

  TaskPool* default_pool_;
  RetryPolicy default_retry_;
  std::mutex mu_;
  std::condition_variable cv_;
  /// deque: element references stay valid as the graph grows.
  std::deque<Node> nodes_;
  size_t done_ = 0;
  Status first_failure_;
  size_t first_failure_id_ = 0;
  bool have_failure_ = false;
};

/// \brief Cluster facade: worker pool + local-disk Env factory.
class LocalCluster {
 public:
  struct Options {
    int num_workers = 0;  ///< 0 = hardware concurrency
    /// Create the cluster on a real directory instead of in-memory storage.
    std::string posix_root;  ///< empty = in-memory Env
  };

  explicit LocalCluster(const Options& options);
  ~LocalCluster();

  TaskPool* pool() { return &pool_; }
  Env* env() { return env_.get(); }

  /// A plan executor bound to this cluster's storage and worker count,
  /// created on first use. Lives as long as the cluster.
  engine::Executor* executor();

 private:
  int num_workers_;
  TaskPool pool_;
  std::unique_ptr<Env> env_;
  std::unique_ptr<engine::Executor> executor_;
};

}  // namespace antimr

#endif  // ANTIMR_MR_LOCAL_CLUSTER_H_
