#include "mr/shuffle.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/coding.h"
#include "common/stopwatch.h"
#include "io/buffered_io.h"
#include "io/throttled_env.h"
#include "table/chunk_reader.h"
#include "table/chunk_writer.h"

namespace antimr {

namespace {

/// Replays bytes already consumed for format detection, then hands off to
/// the underlying file. The magic bytes are charged to the Env exactly once
/// (at the peek); re-serving them from memory is free.
class PrefixedSequentialFile : public SequentialFile {
 public:
  PrefixedSequentialFile(std::string prefix,
                         std::unique_ptr<SequentialFile> rest)
      : prefix_(std::move(prefix)), rest_(std::move(rest)) {}

  Status Read(size_t n, Slice* result, char* scratch) override {
    if (pos_ < prefix_.size()) {
      n = std::min(n, prefix_.size() - pos_);
      *result = Slice(prefix_.data() + pos_, n);
      pos_ += n;
      return Status::OK();
    }
    return rest_->Read(n, result, scratch);
  }

  Status Skip(uint64_t n) override {
    if (pos_ < prefix_.size()) {
      const uint64_t from_prefix =
          std::min<uint64_t>(n, prefix_.size() - pos_);
      pos_ += static_cast<size_t>(from_prefix);
      n -= from_prefix;
      if (n == 0) return Status::OK();
    }
    return rest_->Skip(n);
  }

 private:
  std::string prefix_;
  size_t pos_ = 0;
  std::unique_ptr<SequentialFile> rest_;
};

/// Read up to 4 magic bytes from `file` (fewer only at EOF).
Status PeekMagic(SequentialFile* file, std::string* magic) {
  magic->clear();
  char scratch[4];
  while (magic->size() < 4) {
    Slice chunk;
    ANTIMR_RETURN_NOT_OK(file->Read(4 - magic->size(), &chunk, scratch));
    if (chunk.empty()) break;
    magic->append(chunk.data(), chunk.size());
  }
  return Status::OK();
}

bool IsChunkMagic(const Slice& bytes) {
  return bytes.size() >= sizeof(kChunkMagic) &&
         std::memcmp(bytes.data(), kChunkMagic, sizeof(kChunkMagic)) == 0;
}

Status DrainIntoRowWriter(KVStream* stream, BlockRunWriter* writer) {
  RecordBatch batch;
  const BatchOptions opts;
  while (true) {
    ANTIMR_RETURN_NOT_OK(stream->NextBatch(&batch, opts));
    if (batch.empty()) break;
    for (const RecordRef& r : batch) {
      ANTIMR_RETURN_NOT_OK(writer->Add(r.key, r.value));
    }
  }
  return Status::OK();
}

Status DrainIntoChunkWriter(KVStream* stream, ChunkWriter* writer) {
  RecordBatch batch;
  const BatchOptions opts;
  while (true) {
    ANTIMR_RETURN_NOT_OK(stream->NextBatch(&batch, opts));
    if (batch.empty()) break;
    ANTIMR_RETURN_NOT_OK(writer->AppendBatch(batch));
  }
  return Status::OK();
}

}  // namespace

std::string SegmentFileName(const std::string& job_id, int map_task,
                            int partition) {
  return job_id + "/map_" + std::to_string(map_task) + "_p" +
         std::to_string(partition);
}

std::string SpillFileName(const std::string& job_id, int map_task, int spill,
                          int partition) {
  return job_id + "/map_" + std::to_string(map_task) + "_spill_" +
         std::to_string(spill) + "_p" + std::to_string(partition);
}

Status WriteSegment(Env* env, const std::string& fname, KVStream* stream,
                    const SegmentWriteOptions& options,
                    uint64_t* compress_nanos, SegmentWriteResult* out) {
  const Codec* codec =
      options.codec != nullptr ? options.codec : GetCodec(CodecType::kNone);
  std::unique_ptr<WritableFile> file;
  ANTIMR_RETURN_NOT_OK(env->NewWritableFile(fname, &file));
  if (options.format == RecordFormat::kColumnar) {
    ChunkWriter::Options wopts;
    wopts.block_bytes = options.block_bytes;
    wopts.codec = codec->type();
    wopts.rewrite_eager_payloads = options.rewrite_eager_payloads;
    wopts.assume_stable_inputs = options.stable_input;
    ChunkWriter writer(std::move(file), wopts);
    ANTIMR_RETURN_NOT_OK(DrainIntoChunkWriter(stream, &writer));
    ANTIMR_RETURN_NOT_OK(writer.Finish());
    if (compress_nanos != nullptr) *compress_nanos += writer.compress_nanos();
    if (out != nullptr) {
      out->raw_bytes = writer.raw_bytes();
      out->stored_bytes = writer.stored_bytes();
      out->records = writer.record_count();
      out->blocks = writer.block_count();
      out->dict_blocks = writer.dict_blocks();
      out->payload_rewrites = writer.payload_rewrites();
    }
    return Status::OK();
  }
  BlockRunWriter writer(std::move(file), codec, {options.block_bytes});
  ANTIMR_RETURN_NOT_OK(DrainIntoRowWriter(stream, &writer));
  ANTIMR_RETURN_NOT_OK(writer.Finish());
  if (compress_nanos != nullptr) *compress_nanos += writer.compress_nanos();
  if (out != nullptr) {
    out->raw_bytes = writer.raw_bytes();
    out->stored_bytes = writer.stored_bytes();
    out->records = writer.record_count();
    out->blocks = writer.block_count();
  }
  return Status::OK();
}

Status WriteSegment(Env* env, const std::string& fname, KVStream* stream,
                    const Codec* codec, uint64_t* compress_nanos,
                    SegmentWriteResult* out, size_t block_bytes) {
  SegmentWriteOptions options;
  options.codec = codec;
  options.block_bytes = block_bytes;
  return WriteSegment(env, fname, stream, options, compress_nanos, out);
}

Status OpenSegmentReader(Env* env, const std::string& fname,
                         const Codec* codec, const SegmentReadOptions& options,
                         std::unique_ptr<SegmentStream>* reader) {
  std::unique_ptr<SequentialFile> file;
  ANTIMR_RETURN_NOT_OK(env->NewSequentialFile(fname, &file));
  std::string magic;
  ANTIMR_RETURN_NOT_OK(PeekMagic(file.get(), &magic));
  const bool columnar = IsChunkMagic(magic);
  auto replay = std::make_unique<PrefixedSequentialFile>(std::move(magic),
                                                         std::move(file));
  // Throttling note: the magic peek above went through the (possibly
  // throttled) Env read path already; readers re-consume it from memory.
  if (columnar) {
    ChunkReader::Options ropts;
    ropts.readahead_blocks = options.readahead_blocks;
    ropts.throttle_mb_per_s = options.network_mb_per_s;
    ropts.name = fname;
    ropts.prune = options.prune;
    ropts.prune_cmp = options.prune_cmp;
    auto r =
        std::make_unique<ChunkReader>(std::move(replay), std::move(ropts));
    ANTIMR_RETURN_NOT_OK(r->Open());
    *reader = std::move(r);
    return Status::OK();
  }
  BlockRunReader::Options ropts;
  ropts.readahead_blocks = options.readahead_blocks;
  ropts.throttle_mb_per_s = options.network_mb_per_s;
  ropts.name = fname;
  auto r = std::make_unique<BlockRunReader>(std::move(replay), codec,
                                            std::move(ropts));
  ANTIMR_RETURN_NOT_OK(r->Open());
  *reader = std::move(r);
  return Status::OK();
}

Status FetchSegmentFrames(Env* env, const std::string& fname,
                          double network_mb_per_s, FetchedSegment* out) {
  ScopedTimer t(&out->fetch_nanos);
  out->file = fname;
  std::unique_ptr<SequentialFile> file;
  ANTIMR_RETURN_NOT_OK(env->NewSequentialFile(fname, &file));
  out->frames.clear();
  uint64_t size = 0;
  if (env->GetFileSize(fname, &size).ok()) out->frames.reserve(size);
  char scratch[64 * 1024];
  while (true) {
    Slice chunk;
    ANTIMR_RETURN_NOT_OK(file->Read(sizeof(scratch), &chunk, scratch));
    if (chunk.empty()) break;
    out->frames.append(chunk.data(), chunk.size());
    SleepForBytes(chunk.size(), network_mb_per_s);
  }
  out->fetched_bytes = out->frames.size();
  return Status::OK();
}

Status OpenFetchedSegment(const FetchedSegment& segment, const Codec* codec,
                          size_t readahead_blocks,
                          std::unique_ptr<SegmentStream>* reader,
                          const KeyRange* prune, KeyComparator prune_cmp) {
  if (IsChunkMagic(segment.frames)) {
    ChunkReader::Options ropts;
    ropts.readahead_blocks = readahead_blocks;
    ropts.name = segment.file;
    ropts.prune = prune;
    ropts.prune_cmp = std::move(prune_cmp);
    auto r = std::make_unique<ChunkReader>(NewSliceSource(segment.frames),
                                           std::move(ropts));
    ANTIMR_RETURN_NOT_OK(r->Open());
    *reader = std::move(r);
    return Status::OK();
  }
  BlockRunReader::Options ropts;
  ropts.readahead_blocks = readahead_blocks;
  ropts.name = segment.file;
  auto r = std::make_unique<BlockRunReader>(NewSliceSource(segment.frames),
                                            codec, std::move(ropts));
  ANTIMR_RETURN_NOT_OK(r->Open());
  *reader = std::move(r);
  return Status::OK();
}

}  // namespace antimr
