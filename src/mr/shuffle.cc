#include "mr/shuffle.h"

#include "common/coding.h"
#include "common/stopwatch.h"
#include "io/buffered_io.h"
#include "io/throttled_env.h"

namespace antimr {

std::string SegmentFileName(const std::string& job_id, int map_task,
                            int partition) {
  return job_id + "/map_" + std::to_string(map_task) + "_p" +
         std::to_string(partition);
}

std::string SpillFileName(const std::string& job_id, int map_task, int spill,
                          int partition) {
  return job_id + "/map_" + std::to_string(map_task) + "_spill_" +
         std::to_string(spill) + "_p" + std::to_string(partition);
}

Status WriteSegment(Env* env, const std::string& fname, KVStream* stream,
                    const Codec* codec, uint64_t* compress_nanos,
                    SegmentWriteResult* out, size_t block_bytes) {
  std::unique_ptr<WritableFile> file;
  ANTIMR_RETURN_NOT_OK(env->NewWritableFile(fname, &file));
  BlockRunWriter writer(std::move(file), codec, {block_bytes});
  while (stream->Valid()) {
    ANTIMR_RETURN_NOT_OK(writer.Add(stream->key(), stream->value()));
    ANTIMR_RETURN_NOT_OK(stream->Next());
  }
  ANTIMR_RETURN_NOT_OK(writer.Finish());
  if (compress_nanos != nullptr) *compress_nanos += writer.compress_nanos();
  if (out != nullptr) {
    out->raw_bytes = writer.raw_bytes();
    out->stored_bytes = writer.stored_bytes();
    out->records = writer.record_count();
    out->blocks = writer.block_count();
  }
  return Status::OK();
}

Status OpenSegmentReader(Env* env, const std::string& fname,
                         const Codec* codec, const SegmentReadOptions& options,
                         std::unique_ptr<BlockRunReader>* reader) {
  std::unique_ptr<SequentialFile> file;
  ANTIMR_RETURN_NOT_OK(env->NewSequentialFile(fname, &file));
  BlockRunReader::Options ropts;
  ropts.readahead_blocks = options.readahead_blocks;
  ropts.throttle_mb_per_s = options.network_mb_per_s;
  ropts.name = fname;
  auto r = std::make_unique<BlockRunReader>(std::move(file), codec,
                                            std::move(ropts));
  ANTIMR_RETURN_NOT_OK(r->Open());
  *reader = std::move(r);
  return Status::OK();
}

Status FetchSegmentFrames(Env* env, const std::string& fname,
                          double network_mb_per_s, FetchedSegment* out) {
  ScopedTimer t(&out->fetch_nanos);
  out->file = fname;
  std::unique_ptr<SequentialFile> file;
  ANTIMR_RETURN_NOT_OK(env->NewSequentialFile(fname, &file));
  out->frames.clear();
  uint64_t size = 0;
  if (env->GetFileSize(fname, &size).ok()) out->frames.reserve(size);
  char scratch[64 * 1024];
  while (true) {
    Slice chunk;
    ANTIMR_RETURN_NOT_OK(file->Read(sizeof(scratch), &chunk, scratch));
    if (chunk.empty()) break;
    out->frames.append(chunk.data(), chunk.size());
    SleepForBytes(chunk.size(), network_mb_per_s);
  }
  out->fetched_bytes = out->frames.size();
  return Status::OK();
}

Status OpenFetchedSegment(const FetchedSegment& segment, const Codec* codec,
                          size_t readahead_blocks,
                          std::unique_ptr<BlockRunReader>* reader) {
  BlockRunReader::Options ropts;
  ropts.readahead_blocks = readahead_blocks;
  ropts.name = segment.file;
  auto r = std::make_unique<BlockRunReader>(NewSliceSource(segment.frames),
                                            codec, std::move(ropts));
  ANTIMR_RETURN_NOT_OK(r->Open());
  *reader = std::move(r);
  return Status::OK();
}

}  // namespace antimr
