#include "mr/shuffle.h"

#include "common/coding.h"
#include "common/stopwatch.h"
#include "io/buffered_io.h"

namespace antimr {

std::string SegmentFileName(const std::string& job_id, int map_task,
                            int partition) {
  return job_id + "/map_" + std::to_string(map_task) + "_p" +
         std::to_string(partition);
}

std::string SpillFileName(const std::string& job_id, int map_task, int spill,
                          int partition) {
  return job_id + "/map_" + std::to_string(map_task) + "_spill_" +
         std::to_string(spill) + "_p" + std::to_string(partition);
}

Status WriteSegment(Env* env, const std::string& fname, KVStream* stream,
                    const Codec* codec, uint64_t* compress_nanos,
                    SegmentWriteResult* out) {
  std::string raw;
  uint64_t records = 0;
  while (stream->Valid()) {
    PutLengthPrefixed(&raw, stream->key());
    PutLengthPrefixed(&raw, stream->value());
    ++records;
    ANTIMR_RETURN_NOT_OK(stream->Next());
  }
  std::string stored;
  {
    ScopedTimer t(compress_nanos);
    ANTIMR_RETURN_NOT_OK(codec->Compress(raw, &stored));
  }
  std::unique_ptr<WritableFile> file;
  ANTIMR_RETURN_NOT_OK(env->NewWritableFile(fname, &file));
  ANTIMR_RETURN_NOT_OK(file->Append(stored));
  ANTIMR_RETURN_NOT_OK(file->Close());
  if (out != nullptr) {
    out->raw_bytes = raw.size();
    out->stored_bytes = stored.size();
    out->records = records;
  }
  return Status::OK();
}

Status FetchSegment(Env* env, const std::string& fname, const Codec* codec,
                    uint64_t* decompress_nanos, uint64_t* fetched_bytes,
                    std::unique_ptr<KVStream>* stream) {
  std::string stored;
  ANTIMR_RETURN_NOT_OK(ReadFileToString(env, fname, &stored));
  if (fetched_bytes != nullptr) *fetched_bytes += stored.size();
  std::string raw;
  {
    ScopedTimer t(decompress_nanos);
    ANTIMR_RETURN_NOT_OK(codec->Decompress(stored, &raw));
  }
  auto run = std::make_unique<StringRunStream>(std::move(raw));
  ANTIMR_RETURN_NOT_OK(run->Open());
  *stream = std::move(run);
  return Status::OK();
}

}  // namespace antimr
