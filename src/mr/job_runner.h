// Job orchestration: map tasks, shuffle, and reduce tasks over a persistent
// worker pool. This is the entry point user code calls after building a
// JobSpec.
//
// Two shuffle models are supported. The default pipelined model schedules a
// dependency graph: each reduce task's fetch of map task i's segment becomes
// runnable the moment map i finishes, so the shuffle overlaps the remaining
// map wave (Hadoop's parallel-copy shuffle phase). The barrier model —
// classic two-wave execution where no reduce-side work starts until every
// map task is done — is kept for A/B comparison.
#ifndef ANTIMR_MR_JOB_RUNNER_H_
#define ANTIMR_MR_JOB_RUNNER_H_

#include <vector>

#include "mr/job_spec.h"
#include "mr/local_cluster.h"
#include "mr/metrics.h"

namespace antimr {

/// \brief Per-task cost record, for load-balance / skew analysis (the
/// paper's Section 6.2 discusses the reduce-side skew LazySH can induce).
struct TaskMetrics {
  bool is_map = false;
  int task_id = 0;
  uint64_t cpu_nanos = 0;  ///< thread CPU time of the task
  JobMetrics metrics;
};

/// \brief Completed-job artifacts.
struct JobResult {
  JobMetrics metrics;
  /// Reduce output per reduce task (empty when RunOptions::collect_output
  /// is false).
  std::vector<std::vector<KV>> outputs;
  /// Per-task breakdown (filled when RunOptions::collect_task_metrics).
  std::vector<TaskMetrics> task_metrics;

  /// Flatten outputs across reduce tasks (task order, then emission order).
  std::vector<KV> FlatOutput() const;
};

/// \brief Simulated cluster hardware (paper Section 7's testbed analog).
///
/// Zero disables a component. When set, every byte through a node's local
/// disk and every shuffled byte pays simulated transfer time, so wall-clock
/// "runtime" reflects data volume the way it did on the paper's 7.2K SATA
/// disks and shared gigabit switch. CPU-time metrics are unaffected (the
/// throttle sleeps; it does not burn cycles).
struct SimulatedHardware {
  double disk_mb_per_s = 0;     ///< local-disk bandwidth per task
  double network_mb_per_s = 0;  ///< mapper->reducer transfer bandwidth
};

/// How reduce-side shuffle work is scheduled relative to the map wave.
enum class ShuffleMode {
  /// Concurrent fetchers copy each map output as soon as it is published;
  /// only the merge+reduce waits for all of a partition's inputs.
  kPipelined,
  /// Classic two-wave model: all maps finish, then reducers stream their
  /// segments inline. Kept for A/B benchmarking of the pipeline.
  kBarrier,
};

struct RunOptions {
  /// Worker threads for map/reduce tasks; 0 = hardware concurrency.
  int num_workers = 0;
  /// Dedicated threads for pipelined shuffle fetches; 0 = num_workers.
  /// Ignored under ShuffleMode::kBarrier.
  int fetch_threads = 0;
  /// Per-segment streaming readahead window in blocks; 0 = default.
  size_t readahead_blocks = 0;
  /// Shuffle scheduling model.
  ShuffleMode shuffle_mode = ShuffleMode::kPipelined;
  /// Storage for intermediate data. When null the runner creates a private
  /// in-memory Env whose I/O counters become the job's disk metrics.
  Env* env = nullptr;
  /// Materialize reduce output in JobResult::outputs.
  bool collect_output = true;
  /// Name prefix for intermediate files (unique per job when empty).
  std::string job_id;
  /// Delete intermediate files after the job completes.
  bool cleanup_intermediates = true;
  /// Simulated disk/network bandwidth; default unthrottled.
  SimulatedHardware hardware;
  /// Fill JobResult::task_metrics with the per-task breakdown.
  bool collect_task_metrics = false;
};

/// Run `spec` over `splits` (one map task per split).
Status RunJob(const JobSpec& spec, const std::vector<InputSplit>& splits,
              const RunOptions& options, JobResult* result);

/// Convenience overload with default options.
Status RunJob(const JobSpec& spec, const std::vector<InputSplit>& splits,
              JobResult* result);

}  // namespace antimr

#endif  // ANTIMR_MR_JOB_RUNNER_H_
