// Single-job orchestration: the classic RunJob(spec, splits) entry point,
// now a thin shim over the engine — it wraps the spec in a one-stage
// engine::JobPlan and runs it on a private engine::Executor. Multi-stage
// work (job chains, DAGs, cross-stage pipelining) should build a JobPlan
// directly; see engine/job_plan.h and engine/executor.h.
//
// Two shuffle models are supported. The default pipelined model schedules a
// dependency graph: each reduce task's fetch of map task i's segment becomes
// runnable the moment map i finishes, so the shuffle overlaps the remaining
// map wave (Hadoop's parallel-copy shuffle phase). The barrier model —
// classic two-wave execution where no reduce-side work starts until every
// map task is done — is kept for A/B comparison.
#ifndef ANTIMR_MR_JOB_RUNNER_H_
#define ANTIMR_MR_JOB_RUNNER_H_

#include <optional>
#include <vector>

#include "mr/job_spec.h"
#include "mr/local_cluster.h"
#include "mr/metrics.h"
#include "mr/shuffle.h"

namespace antimr {

/// \brief Completed-job artifacts.
struct JobResult {
  JobMetrics metrics;
  /// Reduce output per reduce task (empty when RunOptions::collect_output
  /// is false).
  std::vector<std::vector<KV>> outputs;
  /// Per-task breakdown (filled when RunOptions::collect_task_metrics).
  std::vector<TaskMetrics> task_metrics;

  /// Flatten outputs across reduce tasks (task order, then emission order).
  std::vector<KV> FlatOutput() const;
};

struct RunOptions {
  /// Worker threads for map/reduce tasks; 0 = hardware concurrency.
  int num_workers = 0;
  /// Dedicated threads for pipelined shuffle fetches; 0 = num_workers.
  /// Ignored under ShuffleMode::kBarrier.
  int fetch_threads = 0;
  /// Per-segment streaming readahead window in blocks; 0 = default.
  size_t readahead_blocks = 0;
  /// Shuffle scheduling model.
  ShuffleMode shuffle_mode = ShuffleMode::kPipelined;
  /// Storage for intermediate data. When null the runner creates a private
  /// in-memory Env whose I/O counters become the job's disk metrics.
  Env* env = nullptr;
  /// Materialize reduce output in JobResult::outputs.
  bool collect_output = true;
  /// Name prefix for intermediate files (unique per job when empty).
  std::string job_id;
  /// Delete intermediate files after the job completes.
  bool cleanup_intermediates = true;
  /// Simulated disk/network bandwidth; default unthrottled.
  SimulatedHardware hardware;
  /// Fill JobResult::task_metrics with the per-task breakdown.
  bool collect_task_metrics = false;
  /// Total executions allowed per task; >1 retries transient failures.
  int max_task_attempts = 1;
  /// Backoff before a task's first retry; doubles per attempt (capped).
  uint64_t retry_backoff_nanos = 1000 * 1000;
  /// When set, override the spec's record_format (storage layout of spills
  /// and shuffle segments), chunk block size, and chunk codec.
  std::optional<RecordFormat> record_format;
  std::optional<size_t> chunk_block_bytes;
  std::optional<CodecType> chunk_codec;
};

/// Run `spec` over `splits` (one map task per split).
Status RunJob(const JobSpec& spec, const std::vector<InputSplit>& splits,
              const RunOptions& options, JobResult* result);

/// Convenience overload with default options.
Status RunJob(const JobSpec& spec, const std::vector<InputSplit>& splits,
              JobResult* result);

}  // namespace antimr

#endif  // ANTIMR_MR_JOB_RUNNER_H_
