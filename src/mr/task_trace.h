// Synthesized per-task phase spans. The per-record phases (map_fn, encode,
// decode, shared, ...) are far too hot to bracket with real trace events, so
// tasks time them into PhaseCpu as before and, at task end, the aggregate
// per-phase totals are laid out sequentially from the task's start as
// complete ("X") events. The result nests under the task's span in the
// viewer and reads like the paper's Table 2 breakdown for that one task;
// only the ordering within the task is synthetic.
#ifndef ANTIMR_MR_TASK_TRACE_H_
#define ANTIMR_MR_TASK_TRACE_H_

#include "mr/metrics.h"
#include "obs/trace.h"

namespace antimr {

inline void EmitTaskPhaseSpans(uint64_t task_start_nanos,
                               const PhaseCpu& cpu) {
  if (!obs::kTraceCompiled || !obs::TraceEnabled()) return;
  uint64_t t = task_start_nanos;
#define ANTIMR_EMIT_PHASE(name)                                \
  if (cpu.name > 0) {                                          \
    obs::Tracer::Global().Complete("phase", #name, t, cpu.name); \
    t += cpu.name;                                             \
  }
  ANTIMR_PHASE_CPU_FIELDS(ANTIMR_EMIT_PHASE)
#undef ANTIMR_EMIT_PHASE
}

}  // namespace antimr

#endif  // ANTIMR_MR_TASK_TRACE_H_
