// Declarative description of a MapReduce job: the user functions, the data
// movement knobs (partitions, codecs, buffer sizes), and the comparators.
// Anti-Combining's syntactic transformation (anticombine/transform.h) maps a
// JobSpec to another JobSpec.
#ifndef ANTIMR_MR_JOB_SPEC_H_
#define ANTIMR_MR_JOB_SPEC_H_

#include <memory>

#include "codec/codec.h"
#include "mr/api.h"
#include "table/format.h"

namespace antimr {

/// \brief Full specification of a MapReduce job.
struct JobSpec {
  std::string name = "job";

  MapperFactory mapper_factory;
  ReducerFactory reducer_factory;
  /// Optional Combiner (a Reducer). Applied on map-side spills and merges,
  /// and — in Anti-Combining jobs — inside the reduce-phase Shared structure.
  ReducerFactory combiner_factory;

  /// Optional partial-aggregation Reducer for multi-stage plans (hot-key
  /// splitting, mr/skew.h): unlike reducer_factory, its *output* records
  /// must be parseable as its own (and the final reducer's) *input* values,
  /// so stage-1 partial results can be re-reduced in a merge fix-up stage.
  /// A Combiner usually qualifies. Unset = the job cannot be key-split.
  ReducerFactory partial_reducer_factory;

  std::shared_ptr<const Partitioner> partitioner = DefaultPartitioner();

  /// Total order on intermediate keys (reduce calls happen in this order).
  KeyComparator key_cmp = BytewiseCompare;
  /// Key-equality grouping for Reduce calls (secondary sort); defaults to
  /// key_cmp when unset.
  KeyComparator grouping_cmp;

  int num_reduce_tasks = 4;

  /// Compression applied to map output segments (spills and shuffled data),
  /// as with Hadoop's mapred.compress.map.output.
  CodecType map_output_codec = CodecType::kNone;

  /// Map-side in-memory output buffer capacity; exceeding it triggers a
  /// partition/sort/spill cycle (scaled-down analog of Hadoop's io.sort.mb).
  size_t map_buffer_bytes = 4 * 1024 * 1024;

  /// Block size for shuffle segments: each segment is cut at record
  /// boundaries into ~this many raw bytes per independently compressed,
  /// CRC-framed block, so reducers can stream with O(block) memory.
  size_t shuffle_block_bytes = 64 * 1024;

  /// Storage layout of spill files and shuffle segments. Columnar chunks
  /// (table/format.h) store keys and values as separate columns with
  /// per-block min/max stats, dictionary key encoding, and per-column codec
  /// choice; readers auto-detect the format per file, and job output is
  /// byte-identical across formats.
  RecordFormat record_format = RecordFormat::kRow;

  /// Raw bytes per columnar chunk block; 0 = shuffle_block_bytes, so both
  /// formats cut blocks at the same record boundaries by default.
  size_t chunk_block_bytes = 0;

  /// Codec tried per column per columnar block; kNone falls back to
  /// map_output_codec, keeping compression knobs format-agnostic.
  CodecType chunk_codec = CodecType::kNone;

  /// Chunk block size after defaulting.
  size_t EffectiveChunkBlockBytes() const {
    return chunk_block_bytes == 0 ? shuffle_block_bytes : chunk_block_bytes;
  }

  /// Chunk codec after defaulting.
  CodecType EffectiveChunkCodec() const {
    return chunk_codec == CodecType::kNone ? map_output_codec : chunk_codec;
  }

  /// Apply the Combiner during the final spill merge when at least this many
  /// spill files exist (Hadoop's min.num.spills.for.combine).
  int min_spills_for_combine = 3;

  /// Whether Map and Partition are deterministic. LazySH re-executes both on
  /// reducers, so Anti-Combining refuses Lazy encoding when false (paper
  /// Section 6.2, "Non-determinism").
  bool deterministic = true;

  /// Set by the Anti-Combining transform: the wrapped mapper records the
  /// logical (pre-encoding) map output in map_output_* itself. When false,
  /// the map task driver mirrors emitted_* into map_output_*.
  bool mapper_reports_logical_output = false;

  /// Resolved grouping comparator (grouping_cmp if set, else key_cmp).
  KeyComparator EffectiveGroupingCmp() const {
    return grouping_cmp ? grouping_cmp : key_cmp;
  }

  /// Check that required fields are populated and knobs are sane.
  Status Validate() const;
};

}  // namespace antimr

#endif  // ANTIMR_MR_JOB_SPEC_H_
