// Skew defense for the shuffle (ISSUE 9 / ROADMAP "skew mastery"):
//
//  1. Sampling: reservoir-sample each input split, run the job's Mapper over
//     the sample, and derive quantile pivots over the observed intermediate
//     keys — the input of a RangePartitioner (mr/api.h).
//  2. Hot-key splitting: keys whose sample frequency exceeds a threshold are
//     *salted* — rewritten to `key '\0' salt` where the salt is a
//     deterministic hash of the input record — so one superfrequent key
//     spreads across several adjacent ranges. Determinism matters: LazySH
//     re-executes Map + Partition per record on reducers, so the salt must
//     be a pure function of the input record, never of emit order.
//  3. Merge fix-up: splitting is only correct with a second pass. Stage 1
//     reduces salted groups with the job's *partial* reducer
//     (JobSpec::partial_reducer_factory) and strips the salt on emit;
//     stage 2 re-partitions by the unsalted pivots and runs the original
//     reducer over the partial results, making the final output equal (as a
//     key/value multiset) to the unsplit run.
//
// MakeSplitStage1Spec/MakeSplitStage2Spec derive the per-stage JobSpecs;
// engine/skew_runner.h wires them through the DAG planner (local) and the
// coordinator (distributed). Applied *before* EnableAntiCombining, so the
// anti-combine wrappers see salted keys end to end.
#ifndef ANTIMR_MR_SKEW_H_
#define ANTIMR_MR_SKEW_H_

#include <memory>
#include <string>
#include <vector>

#include "mr/job_spec.h"

namespace antimr {

struct SkewSampleOptions {
  /// Reservoir size per input split.
  size_t sample_per_split = 256;
  /// A key is "superfrequent" when it holds at least this fraction of the
  /// sampled intermediate records (and appears more than once).
  double hot_key_min_fraction = 0.10;
  /// Salt variants per hot key; 0 = num_reduce_tasks (maximum spread).
  int hot_fanout = 0;
  /// PRNG seed for the reservoirs (per-split offset added internally).
  uint64_t seed = 0x5eed5eedULL;
};

/// What the sampling pass learned. Immutable after construction; shared by
/// the salting mapper, both stage partitioners, and the CLI/registry codecs.
struct SkewModel {
  /// num_reduce_tasks - 1 bytewise-sorted quantile pivots over the *unsalted*
  /// sampled keys. Empty when the sample was empty (hash fallback).
  std::vector<std::string> pivots;
  /// Pivots over the sample with hot keys salted round-robin: the stage-1
  /// partitioner, balancing salted variants across ranges.
  std::vector<std::string> salted_pivots;
  /// Bytewise-sorted superfrequent keys.
  std::vector<std::string> hot_keys;
  /// Salt variants per hot key (>= 2 when hot_keys is non-empty).
  int hot_fanout = 0;

  bool HasHotKeys() const { return !hot_keys.empty() && hot_fanout >= 2; }
};

/// Run the sampling pass: reservoir over each split, Mapper over the sample,
/// pivots + hot keys from the observed intermediate key distribution.
/// Deterministic for a fixed (spec, splits, options).
Status BuildSkewModel(const JobSpec& spec,
                      const std::vector<InputSplit>& splits,
                      const SkewSampleOptions& options, SkewModel* model);

/// `key '\0' ('a' + salt)`. Sorts adjacent to the unsalted key bytewise, so
/// quantile pivots can separate the variants.
std::string SaltKey(const Slice& key, uint32_t salt);

/// Inverse of SaltKey for keys whose unsalted form is in model.hot_keys;
/// returns `key` unchanged otherwise.
Slice StripSalt(const SkewModel& model, const Slice& key);

/// True when `key` is one of the model's superfrequent keys.
bool IsHotKey(const SkewModel& model, const Slice& key);

/// Deterministic salt for one input record (pure function of the record, so
/// LazySH re-execution reproduces it).
uint32_t RecordSalt(const Slice& input_key, const Slice& input_value,
                    int fanout);

/// Mapper factory wrapping `base`: every emit of a hot key is rewritten to
/// its salted variant for the current input record.
MapperFactory MakeSaltingMapperFactory(MapperFactory base,
                                       std::shared_ptr<const SkewModel> model);

/// Mapper that re-emits its input unchanged (stage-2 map phase).
MapperFactory IdentityMapperFactory();

/// Stage 1 of the fix-up plan: salting mapper, salt-stripping partial
/// reducer, salted-pivot range partitioner. Requires
/// base.partial_reducer_factory (InvalidArgument otherwise).
Status MakeSplitStage1Spec(const JobSpec& base,
                           std::shared_ptr<const SkewModel> model,
                           JobSpec* out);

/// Stage 2: identity mapper, the original reducer, unsalted-pivot range
/// partitioner — merges stage-1 partials into the final, unsplit-identical
/// output.
Status MakeSplitStage2Spec(const JobSpec& base,
                           std::shared_ptr<const SkewModel> model,
                           JobSpec* out);

/// Length-prefixed codec for pivot / hot-key lists, used to ship the model
/// through net::JobParams (binary-safe).
std::string EncodeKeyList(const std::vector<std::string>& keys);
Status DecodeKeyList(const std::string& encoded,
                     std::vector<std::string>* keys);

}  // namespace antimr

#endif  // ANTIMR_MR_SKEW_H_
