// Map task driver: run the Mapper over its split, buffer output, spill with
// partition/sort (+Combiner), merge spills, and produce one compressed
// segment per reduce partition — the Hadoop 1.x map-side pipeline the paper
// executes on (Section 2, Figure 2).
#ifndef ANTIMR_MR_MAP_TASK_H_
#define ANTIMR_MR_MAP_TASK_H_

#include <string>
#include <vector>

#include "mr/job_spec.h"
#include "mr/metrics.h"
#include "mr/shuffle.h"
#include "mr/task_control.h"

namespace antimr {

struct MapTaskResult {
  /// Segment file name per reduce partition ("" when the partition got no
  /// records from this task).
  std::vector<std::string> segment_files;
  JobMetrics metrics;
};

/// Execute map task `task_id` over `split`, writing output to `env` under
/// names scoped by `job_id`. `control` (optional) is polled between input
/// batches: a requested cancel aborts with a transient IOError after
/// scrubbing this attempt's partial output, and coarse progress is
/// published for straggler detection. `total_records` (0 = unknown) scales
/// the progress denominator.
Status RunMapTask(const JobSpec& spec, const std::string& job_id, int task_id,
                  const InputSplit& split, Env* env, MapTaskResult* result,
                  TaskControl* control = nullptr, uint64_t total_records = 0);

}  // namespace antimr

#endif  // ANTIMR_MR_MAP_TASK_H_
