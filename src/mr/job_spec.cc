#include "mr/job_spec.h"

namespace antimr {

Status JobSpec::Validate() const {
  if (!mapper_factory) {
    return Status::InvalidArgument("JobSpec: mapper_factory is required");
  }
  if (!reducer_factory) {
    return Status::InvalidArgument("JobSpec: reducer_factory is required");
  }
  if (partitioner == nullptr) {
    return Status::InvalidArgument("JobSpec: partitioner is required");
  }
  if (!key_cmp) {
    return Status::InvalidArgument("JobSpec: key_cmp is required");
  }
  if (num_reduce_tasks <= 0) {
    return Status::InvalidArgument("JobSpec: num_reduce_tasks must be > 0");
  }
  ANTIMR_RETURN_NOT_OK(partitioner->ValidatePartitions(num_reduce_tasks));
  if (map_buffer_bytes < 1024) {
    return Status::InvalidArgument("JobSpec: map_buffer_bytes too small");
  }
  if (shuffle_block_bytes < 512) {
    return Status::InvalidArgument("JobSpec: shuffle_block_bytes too small");
  }
  if (chunk_block_bytes != 0 && chunk_block_bytes < 512) {
    return Status::InvalidArgument("JobSpec: chunk_block_bytes too small");
  }
  if (min_spills_for_combine < 1) {
    return Status::InvalidArgument(
        "JobSpec: min_spills_for_combine must be >= 1");
  }
  return Status::OK();
}

}  // namespace antimr
