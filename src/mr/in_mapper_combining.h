// The in-mapper combining design pattern (Lin & Dyer, "Data-Intensive Text
// Processing with MapReduce" — the paper's reference [16] and Section 1):
// aggregate map output inside the mapper's own memory instead of relying on
// spill-time Combiner passes. Provided as a wrapper so any (mapper,
// combiner) pair gets the pattern without code changes — and so the bench
// suite can compare it against Combiners and Anti-Combining.
#ifndef ANTIMR_MR_IN_MAPPER_COMBINING_H_
#define ANTIMR_MR_IN_MAPPER_COMBINING_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "mr/api.h"
#include "mr/job_spec.h"

namespace antimr {

/// \brief Mapper wrapper that buffers and combines output in-mapper.
///
/// Output records accumulate in a hash table keyed by the intermediate key;
/// when the table exceeds `memory_budget` bytes (and at Cleanup) each key's
/// values are run through the combiner and the results emitted downstream.
class InMapperCombiningMapper : public Mapper {
 public:
  InMapperCombiningMapper(MapperFactory base_factory,
                          ReducerFactory combiner_factory,
                          size_t memory_budget = 4 * 1024 * 1024);

  void Setup(const TaskInfo& info, MapContext* ctx) override;
  void Map(const Slice& key, const Slice& value, MapContext* ctx) override;
  void Cleanup(MapContext* ctx) override;

 private:
  /// Collects the wrapped mapper's emissions into the table.
  class BufferingContext;

  void Add(const Slice& key, const Slice& value);
  void Flush(MapContext* ctx);

  MapperFactory base_factory_;
  ReducerFactory combiner_factory_;
  size_t memory_budget_;

  std::unique_ptr<Mapper> base_;
  std::unique_ptr<Reducer> combiner_;
  std::unique_ptr<BufferingContext> buffer_ctx_;
  TaskInfo info_;
  std::unordered_map<std::string, std::vector<std::string>> table_;
  size_t memory_bytes_ = 0;
};

/// Convenience: rewrite `spec` so its mapper applies in-mapper combining
/// with the job's own Combiner (which is removed from the spill path, as
/// the pattern prescribes).
JobSpec ApplyInMapperCombining(const JobSpec& spec,
                               size_t memory_budget = 4 * 1024 * 1024);

}  // namespace antimr

#endif  // ANTIMR_MR_IN_MAPPER_COMBINING_H_
