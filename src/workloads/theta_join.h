// 1-Bucket-Theta join (Okcan & Riedewald, SIGMOD 2011 [19]), the paper's
// Section 7.7.3 workload. The |S| x |T| join matrix is tiled into a
// rows x cols grid of regions; each record is assigned a deterministic
// pseudo-random matrix row (as S) and column (as T) and replicated to every
// region covering that row or column, so each candidate pair meets in
// exactly one region. Replication factor ~= rows + cols, the paper's 67x.
//
// The band-join query reproduced here (on the Cloud data):
//   SELECT ... FROM Cloud S, Cloud T
//   WHERE S.date = T.date AND S.longitude = T.longitude
//     AND ABS(S.latitude - T.latitude) <= 10
#ifndef ANTIMR_WORKLOADS_THETA_JOIN_H_
#define ANTIMR_WORKLOADS_THETA_JOIN_H_

#include "mr/job_spec.h"

namespace antimr {
namespace workloads {

struct ThetaJoinConfig {
  /// Join-matrix grid. rows + cols is the replication factor; the paper's
  /// memory-aware sizing picked ~34 x 34 (replication 67) on its cluster.
  int grid_rows = 8;
  int grid_cols = 8;
  int latitude_band = 10;  ///< |S.lat - T.lat| <= band
  int num_reduce_tasks = 8;
  CodecType codec = CodecType::kNone;
  size_t map_buffer_bytes = 2 * 1024 * 1024;
  uint64_t salt = 0x7e7a;  ///< seeds the deterministic row/column draw
};

/// Build the self-join job over CloudGenerator records. The mapper's random
/// row/column assignment is derived by hashing the record, so Map is
/// deterministic and LazySH-compatible (re-execution yields identical
/// assignments).
JobSpec MakeThetaJoinJob(const ThetaJoinConfig& config);

/// Pick a memory-aware square grid: the largest rows = cols such that the
/// expected records per region fit `region_memory_records` (the analog of
/// the paper's "data chunks just small enough to be joined in memory").
void SizeGridForMemory(uint64_t input_records, uint64_t region_memory_records,
                       int* rows, int* cols);

}  // namespace workloads
}  // namespace antimr

#endif  // ANTIMR_WORKLOADS_THETA_JOIN_H_
