// Registers the standard workloads with the engine's job registry so
// coordinator and worker processes can rebuild identical JobSpecs from
// (name, params) pairs shipped over the wire.
//
// Registered names and their params (all optional, all string-encoded):
//
//   "wordcount"   reduces, codec, combiner, map_buffer_bytes
//   "sort"        reduces, codec, map_buffer_bytes
//   "theta_join"  reduces, codec, grid_rows, grid_cols, latitude_band,
//                 salt, map_buffer_bytes
//
// Every job additionally honors the Anti-Combining params, applied as the
// final step of the builder so the transform sees the fully configured spec:
//
//   anti_combine = off | eager | lazy | adaptive | alpha   (default off)
//   lazy_threshold_nanos = <uint64>   (overrides the mode's threshold T)
#ifndef ANTIMR_WORKLOADS_REGISTRY_H_
#define ANTIMR_WORKLOADS_REGISTRY_H_

namespace antimr {
namespace workloads {

/// Register the standard job builders. Idempotent; call once per process
/// before running distributed jobs (both coordinator and worker side).
void RegisterStandardJobs();

}  // namespace workloads
}  // namespace antimr

#endif  // ANTIMR_WORKLOADS_REGISTRY_H_
