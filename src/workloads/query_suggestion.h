// The paper's running example (Section 2): for every prefix P of any logged
// query, compute the top-k most frequent queries starting with P. Map emits
// (P, query) for every prefix of the query; Reduce selects the top-k. The
// optional Combiner replaces m occurrences of (P, q) by (P, (q, m)), which
// is why map-output values carry a count: (count, query) with count = 1 from
// the mapper.
#ifndef ANTIMR_WORKLOADS_QUERY_SUGGESTION_H_
#define ANTIMR_WORKLOADS_QUERY_SUGGESTION_H_

#include <cstdint>
#include <string>

#include "mr/job_spec.h"

namespace antimr {
namespace workloads {

struct QuerySuggestionConfig {
  int top_k = 5;
  /// Extra CPU busy-work per Map call: the first 25000 * extra_work
  /// Fibonacci numbers, the paper's Figure 11 knob.
  int extra_work = 0;
  bool with_combiner = false;

  /// Partitioner choice from the paper's Section 7.2.
  enum class Scheme {
    kHash,     ///< standard hash partitioner
    kPrefix1,  ///< all keys sharing the first character co-partitioned
    kPrefix5,  ///< first five characters
  };
  Scheme scheme = Scheme::kHash;

  int num_reduce_tasks = 8;
  CodecType codec = CodecType::kNone;
  size_t map_buffer_bytes = 1 * 1024 * 1024;
};

/// Build the Query-Suggestion job (the "Original" program of Section 7).
JobSpec MakeQuerySuggestionJob(const QuerySuggestionConfig& config);

/// Map-output value format: varint(count) followed by the query bytes.
void EncodeCountedQuery(uint64_t count, const Slice& query, std::string* out);
bool DecodeCountedQuery(const Slice& value, uint64_t* count, Slice* query);

}  // namespace workloads
}  // namespace antimr

#endif  // ANTIMR_WORKLOADS_QUERY_SUGGESTION_H_
