#include "workloads/pagerank.h"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "anticombine/transform.h"

namespace antimr {
namespace workloads {

namespace {

// Value formats:
//   map input / reduce output:  "<rank> <nbr1> <nbr2> ..."
//   map output:                 "A <nbr1> ..." (adjacency carrier)
//                               "R <contribution>" (rank mass along an edge)

struct ParsedNode {
  double rank = 0.0;
  Slice adjacency;  // the raw "<nbr1> <nbr2> ..." tail (may be empty)
};

bool ParseNodeValue(const Slice& value, ParsedNode* node) {
  // rank is the first space-separated token.
  size_t i = 0;
  while (i < value.size() && value[i] != ' ') ++i;
  const std::string rank_text(value.data(), i);
  char* end = nullptr;
  node->rank = std::strtod(rank_text.c_str(), &end);
  if (end == rank_text.c_str()) return false;
  node->adjacency = i < value.size()
                        ? Slice(value.data() + i + 1, value.size() - i - 1)
                        : Slice();
  return true;
}

size_t CountNeighbors(const Slice& adjacency) {
  if (adjacency.empty()) return 0;
  size_t n = 1;
  for (size_t i = 0; i < adjacency.size(); ++i) {
    if (adjacency[i] == ' ') ++n;
  }
  return n;
}

std::string FormatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10e", v);
  return buf;
}

class PageRankMapper : public Mapper {
 public:
  void Map(const Slice& key, const Slice& value, MapContext* ctx) override {
    ParsedNode node;
    if (!ParseNodeValue(value, &node)) return;
    // Keep the graph structure flowing to the next iteration.
    std::string carrier = "A";
    if (!node.adjacency.empty()) {
      carrier.push_back(' ');
      carrier.append(node.adjacency.data(), node.adjacency.size());
    }
    ctx->Emit(key, carrier);

    const size_t degree = CountNeighbors(node.adjacency);
    if (degree == 0) return;
    // Every out-edge carries the same contribution value: exactly the
    // duplication EagerSH collapses.
    const std::string contribution =
        "R " + FormatDouble(node.rank / static_cast<double>(degree));
    size_t start = 0;
    const Slice adj = node.adjacency;
    for (size_t i = 0; i <= adj.size(); ++i) {
      if (i == adj.size() || adj[i] == ' ') {
        if (i > start) {
          ctx->Emit(Slice(adj.data() + start, i - start), contribution);
        }
        start = i + 1;
      }
    }
  }
};

class PageRankReducer : public Reducer {
 public:
  PageRankReducer(uint64_t num_nodes, double damping)
      : num_nodes_(num_nodes), damping_(damping) {}

  void Reduce(const Slice& key, ValueIterator* values,
              ReduceContext* ctx) override {
    double sum = 0.0;
    std::string adjacency;
    Slice value;
    while (values->Next(&value)) {
      if (value.empty()) continue;
      if (value[0] == 'A') {
        adjacency.assign(value.size() > 2 ? value.data() + 2 : "",
                         value.size() > 2 ? value.size() - 2 : 0);
      } else if (value[0] == 'R' && value.size() > 2) {
        const std::string text(value.data() + 2, value.size() - 2);
        sum += std::strtod(text.c_str(), nullptr);
      }
    }
    const double rank =
        (1.0 - damping_) / static_cast<double>(num_nodes_) + damping_ * sum;
    std::string out = FormatDouble(rank);
    if (!adjacency.empty()) {
      out.push_back(' ');
      out += adjacency;
    }
    ctx->Emit(key, out);
  }

 private:
  uint64_t num_nodes_;
  double damping_;
};

}  // namespace

JobSpec MakePageRankJob(const PageRankConfig& config) {
  JobSpec spec;
  spec.name = "pagerank";
  spec.mapper_factory = []() { return std::make_unique<PageRankMapper>(); };
  const uint64_t n = config.num_nodes;
  const double d = config.damping;
  spec.reducer_factory = [n, d]() {
    return std::make_unique<PageRankReducer>(n, d);
  };
  spec.num_reduce_tasks = config.num_reduce_tasks;
  spec.map_output_codec = config.codec;
  spec.map_buffer_bytes = config.map_buffer_bytes;
  return spec;
}

Status RunPageRank(const PageRankConfig& config,
                   const std::vector<KV>& graph, int iterations,
                   const anticombine::AntiCombineOptions* anti_combine,
                   int num_map_tasks, PageRankRunResult* result,
                   const RunOptions& run_options) {
  JobSpec spec = MakePageRankJob(config);
  if (anti_combine != nullptr) {
    spec = anticombine::EnableAntiCombining(spec, *anti_combine);
  }
  result->total = JobMetrics();
  std::vector<KV> current = graph;
  uint64_t wall = 0;
  for (int it = 0; it < iterations; ++it) {
    JobResult job;
    ANTIMR_RETURN_NOT_OK(RunJob(
        spec, MakeSplits(std::move(current), num_map_tasks), run_options,
        &job));
    current = job.FlatOutput();
    wall += job.metrics.wall_nanos;
    result->total.Add(job.metrics);
  }
  result->total.wall_nanos = wall;
  result->final_ranks = std::move(current);
  return Status::OK();
}

engine::JobPlan MakePageRankPlan(
    const PageRankConfig& config, std::vector<InputSplit> initial_splits,
    int iterations, const anticombine::AntiCombineOptions* anti_combine,
    ShuffleMode shuffle_mode) {
  engine::JobPlan plan;
  plan.name = "pagerank";
  // Cannot fail: the dataset name is non-empty and added exactly once.
  const Status added = plan.AddInput("ranks_0", std::move(initial_splits));
  (void)added;
  const JobSpec spec = MakePageRankJob(config);
  for (int it = 0; it < iterations; ++it) {
    engine::Stage stage;
    stage.name = "iter_" + std::to_string(it);
    stage.spec = spec;
    stage.inputs = {"ranks_" + std::to_string(it)};
    stage.output = "ranks_" + std::to_string(it + 1);
    stage.options.shuffle_mode = shuffle_mode;
    if (anti_combine != nullptr) {
      stage.options.anti_combine = true;
      stage.options.anti_combine_options = *anti_combine;
    }
    plan.AddStage(std::move(stage));
  }
  return plan;
}

Status RunPageRankDag(const PageRankConfig& config,
                      const std::vector<KV>& graph, int iterations,
                      const anticombine::AntiCombineOptions* anti_combine,
                      int num_map_tasks, engine::Executor* executor,
                      PageRankRunResult* result,
                      engine::PlanResult* plan_result,
                      ShuffleMode shuffle_mode) {
  engine::JobPlan plan =
      MakePageRankPlan(config, MakeSplits(graph, num_map_tasks), iterations,
                       anti_combine, shuffle_mode);
  std::unique_ptr<engine::Executor> owned;
  if (executor == nullptr) {
    owned = std::make_unique<engine::Executor>();
    executor = owned.get();
  }
  engine::PlanResult local_result;
  engine::PlanResult* pr = plan_result != nullptr ? plan_result : &local_result;
  ANTIMR_RETURN_NOT_OK(executor->Run(plan, pr));
  result->total = pr->metrics;
  result->final_ranks =
      pr->FlatOutput("ranks_" + std::to_string(iterations));
  return Status::OK();
}

}  // namespace workloads
}  // namespace antimr
