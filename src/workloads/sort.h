// Hadoop-style Sort: identity Map and Reduce; the framework's shuffle does
// the sorting. One Map output record per input record means Anti-Combining
// has nothing to share — the paper's Section 7.1 overhead workload.
#ifndef ANTIMR_WORKLOADS_SORT_H_
#define ANTIMR_WORKLOADS_SORT_H_

#include "mr/job_spec.h"

namespace antimr {
namespace workloads {

struct SortConfig {
  int num_reduce_tasks = 8;
  CodecType codec = CodecType::kNone;
  size_t map_buffer_bytes = 1 * 1024 * 1024;
};

JobSpec MakeSortJob(const SortConfig& config);

}  // namespace workloads
}  // namespace antimr

#endif  // ANTIMR_WORKLOADS_SORT_H_
