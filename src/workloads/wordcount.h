// WordCount (paper Section 7.7.1): Map emits (word, 1) per word, the
// Combiner sums partial counts inside each map task, Reduce sums the rest.
// Counts travel as varint-encoded values.
#ifndef ANTIMR_WORKLOADS_WORDCOUNT_H_
#define ANTIMR_WORKLOADS_WORDCOUNT_H_

#include "mr/job_spec.h"

namespace antimr {
namespace workloads {

struct WordCountConfig {
  bool with_combiner = true;
  int num_reduce_tasks = 8;
  CodecType codec = CodecType::kNone;
  size_t map_buffer_bytes = 1 * 1024 * 1024;
};

JobSpec MakeWordCountJob(const WordCountConfig& config);

}  // namespace workloads
}  // namespace antimr

#endif  // ANTIMR_WORKLOADS_WORDCOUNT_H_
