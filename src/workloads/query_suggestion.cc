#include "workloads/query_suggestion.h"

#include <algorithm>
#include <map>
#include <vector>

#include "common/coding.h"
#include "common/hash.h"

namespace antimr {
namespace workloads {

void EncodeCountedQuery(uint64_t count, const Slice& query,
                        std::string* out) {
  out->clear();
  PutVarint64(out, count);
  out->append(query.data(), query.size());
}

bool DecodeCountedQuery(const Slice& value, uint64_t* count, Slice* query) {
  Slice in = value;
  if (!GetVarint64(&in, count)) return false;
  *query = in;
  return true;
}

namespace {

// Busy-work for the paper's Figure 11: fold the first n Fibonacci numbers
// (mod 2^64) into a checksum the optimizer cannot discard.
uint64_t Fibonacci(uint64_t n) {
  uint64_t a = 0, b = 1, acc = 0;
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t c = a + b;
    a = b;
    b = c;
    acc ^= c;
  }
  return acc;
}

class QuerySuggestionMapper : public Mapper {
 public:
  explicit QuerySuggestionMapper(int extra_work) : extra_work_(extra_work) {}

  void Map(const Slice& key, const Slice& value, MapContext* ctx) override {
    (void)key;  // user id is not needed for suggestion counts
    if (extra_work_ > 0) {
      busywork_sink_ ^= Fibonacci(25000ULL * static_cast<uint64_t>(extra_work_));
    }
    // The query is the first tab-separated field (features may follow).
    size_t qlen = value.size();
    for (size_t i = 0; i < value.size(); ++i) {
      if (value[i] == '\t') {
        qlen = i;
        break;
      }
    }
    const Slice query(value.data(), qlen);
    EncodeCountedQuery(1, query, &scratch_);
    for (size_t plen = 1; plen <= query.size(); ++plen) {
      ctx->Emit(Slice(query.data(), plen), scratch_);
    }
  }

 private:
  int extra_work_;
  std::string scratch_;
  uint64_t busywork_sink_ = 0;
};

// Sums counts per distinct query within one key group. Shared by the
// Combiner (emitting every aggregate) and the Reducer (emitting top-k).
void AggregateGroup(ValueIterator* values,
                    std::map<std::string, uint64_t>* counts) {
  Slice value;
  while (values->Next(&value)) {
    uint64_t count;
    Slice query;
    if (!DecodeCountedQuery(value, &count, &query)) continue;
    (*counts)[std::string(query.view())] += count;
  }
}

class QuerySuggestionCombiner : public Reducer {
 public:
  void Reduce(const Slice& key, ValueIterator* values,
              ReduceContext* ctx) override {
    std::map<std::string, uint64_t> counts;
    AggregateGroup(values, &counts);
    std::string encoded;
    for (const auto& [query, count] : counts) {
      EncodeCountedQuery(count, query, &encoded);
      ctx->Emit(key, encoded);
    }
  }
};

class QuerySuggestionReducer : public Reducer {
 public:
  explicit QuerySuggestionReducer(int top_k) : top_k_(top_k) {}

  void Reduce(const Slice& key, ValueIterator* values,
              ReduceContext* ctx) override {
    std::map<std::string, uint64_t> counts;
    AggregateGroup(values, &counts);
    // Rank by descending frequency, ties by query text for determinism.
    std::vector<std::pair<std::string, uint64_t>> ranked(counts.begin(),
                                                         counts.end());
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    std::string suggestions;
    const size_t k = std::min<size_t>(ranked.size(),
                                      static_cast<size_t>(top_k_));
    for (size_t i = 0; i < k; ++i) {
      if (i > 0) suggestions.push_back(',');
      suggestions += ranked[i].first;
    }
    ctx->Emit(key, suggestions);
  }

 private:
  int top_k_;
};

class PrefixPartitioner : public Partitioner {
 public:
  explicit PrefixPartitioner(size_t prefix_len) : prefix_len_(prefix_len) {}

  int Partition(const Slice& key, int num_partitions) const override {
    const size_t len = std::min(prefix_len_, key.size());
    return static_cast<int>(Hash64(key.data(), len) %
                            static_cast<uint64_t>(num_partitions));
  }

 private:
  size_t prefix_len_;
};

}  // namespace

JobSpec MakeQuerySuggestionJob(const QuerySuggestionConfig& config) {
  JobSpec spec;
  spec.name = "query_suggestion";
  const int extra_work = config.extra_work;
  spec.mapper_factory = [extra_work]() {
    return std::make_unique<QuerySuggestionMapper>(extra_work);
  };
  const int top_k = config.top_k;
  spec.reducer_factory = [top_k]() {
    return std::make_unique<QuerySuggestionReducer>(top_k);
  };
  if (config.with_combiner) {
    spec.combiner_factory = []() {
      return std::make_unique<QuerySuggestionCombiner>();
    };
  }
  switch (config.scheme) {
    case QuerySuggestionConfig::Scheme::kHash:
      spec.partitioner = DefaultPartitioner();
      break;
    case QuerySuggestionConfig::Scheme::kPrefix1:
      spec.partitioner = std::make_shared<PrefixPartitioner>(1);
      break;
    case QuerySuggestionConfig::Scheme::kPrefix5:
      spec.partitioner = std::make_shared<PrefixPartitioner>(5);
      break;
  }
  spec.num_reduce_tasks = config.num_reduce_tasks;
  spec.map_output_codec = config.codec;
  spec.map_buffer_bytes = config.map_buffer_bytes;
  return spec;
}

}  // namespace workloads
}  // namespace antimr
