#include "workloads/sort.h"

namespace antimr {
namespace workloads {

namespace {

class IdentityMapper : public Mapper {
 public:
  void Map(const Slice& key, const Slice& value, MapContext* ctx) override {
    ctx->Emit(key, value);
  }
};

class IdentityReducer : public Reducer {
 public:
  void Reduce(const Slice& key, ValueIterator* values,
              ReduceContext* ctx) override {
    Slice value;
    while (values->Next(&value)) ctx->Emit(key, value);
  }
};

}  // namespace

JobSpec MakeSortJob(const SortConfig& config) {
  JobSpec spec;
  spec.name = "sort";
  spec.mapper_factory = []() { return std::make_unique<IdentityMapper>(); };
  spec.reducer_factory = []() { return std::make_unique<IdentityReducer>(); };
  spec.num_reduce_tasks = config.num_reduce_tasks;
  spec.map_output_codec = config.codec;
  spec.map_buffer_bytes = config.map_buffer_bytes;
  return spec;
}

}  // namespace workloads
}  // namespace antimr
