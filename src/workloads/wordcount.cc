#include "workloads/wordcount.h"

#include "common/coding.h"

namespace antimr {
namespace workloads {

namespace {

class WordCountMapper : public Mapper {
 public:
  void Map(const Slice& key, const Slice& value, MapContext* ctx) override {
    (void)key;
    std::string one;
    PutVarint64(&one, 1);
    size_t start = 0;
    for (size_t i = 0; i <= value.size(); ++i) {
      if (i == value.size() || value[i] == ' ') {
        if (i > start) {
          ctx->Emit(Slice(value.data() + start, i - start), one);
        }
        start = i + 1;
      }
    }
  }
};

uint64_t SumCounts(ValueIterator* values) {
  uint64_t total = 0;
  Slice value;
  while (values->Next(&value)) {
    Slice in = value;
    uint64_t count = 0;
    if (GetVarint64(&in, &count)) total += count;
  }
  return total;
}

class WordCountCombiner : public Reducer {
 public:
  void Reduce(const Slice& key, ValueIterator* values,
              ReduceContext* ctx) override {
    std::string encoded;
    PutVarint64(&encoded, SumCounts(values));
    ctx->Emit(key, encoded);
  }
};

class WordCountReducer : public Reducer {
 public:
  void Reduce(const Slice& key, ValueIterator* values,
              ReduceContext* ctx) override {
    ctx->Emit(key, std::to_string(SumCounts(values)));
  }
};

}  // namespace

JobSpec MakeWordCountJob(const WordCountConfig& config) {
  JobSpec spec;
  spec.name = "wordcount";
  spec.mapper_factory = []() { return std::make_unique<WordCountMapper>(); };
  spec.reducer_factory = []() { return std::make_unique<WordCountReducer>(); };
  if (config.with_combiner) {
    spec.combiner_factory = []() {
      return std::make_unique<WordCountCombiner>();
    };
  }
  // Always splittable: the combiner's varint output re-parses as both its
  // own and the final reducer's input, so hot-key splitting can use it as
  // the stage-1 partial reducer even when the combiner itself is off.
  spec.partial_reducer_factory = []() {
    return std::make_unique<WordCountCombiner>();
  };
  spec.num_reduce_tasks = config.num_reduce_tasks;
  spec.map_output_codec = config.codec;
  spec.map_buffer_bytes = config.map_buffer_bytes;
  return spec;
}

}  // namespace workloads
}  // namespace antimr
