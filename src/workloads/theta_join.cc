#include "workloads/theta_join.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "datagen/cloud.h"

namespace antimr {
namespace workloads {

namespace {

std::string RegionKey(int region) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "g%06d", region);
  return buf;
}

class ThetaJoinMapper : public Mapper {
 public:
  explicit ThetaJoinMapper(const ThetaJoinConfig& config) : config_(config) {}

  void Map(const Slice& key, const Slice& value, MapContext* ctx) override {
    // Deterministic "random" matrix position: hash of the record. LazySH can
    // re-execute this Map on the reducer and obtain identical assignments.
    const uint64_t h1 = Hash64(key, config_.salt);
    const uint64_t h2 = Hash64(value, h1);
    const int row = static_cast<int>(h2 % static_cast<uint64_t>(config_.grid_rows));
    const int col = static_cast<int>((h2 >> 32) %
                                     static_cast<uint64_t>(config_.grid_cols));

    std::string s_value = "S,";
    s_value.append(value.data(), value.size());
    std::string t_value = "T,";
    t_value.append(value.data(), value.size());

    // S-side: every region in this row; T-side: every region in this column.
    for (int c = 0; c < config_.grid_cols; ++c) {
      ctx->Emit(RegionKey(row * config_.grid_cols + c), s_value);
    }
    for (int r = 0; r < config_.grid_rows; ++r) {
      ctx->Emit(RegionKey(r * config_.grid_cols + col), t_value);
    }
  }

 private:
  ThetaJoinConfig config_;
};

class ThetaJoinReducer : public Reducer {
 public:
  explicit ThetaJoinReducer(int latitude_band) : band_(latitude_band) {}

  void Reduce(const Slice& key, ValueIterator* values,
              ReduceContext* ctx) override {
    (void)key;
    // In-memory join of one region (the memory-aware guarantee of
    // 1-Bucket-Theta): hash S on the equality columns, probe with T, then
    // apply the latitude band predicate.
    std::unordered_map<uint64_t, std::vector<CloudReport>> s_by_eq;
    std::vector<CloudReport> t_records;
    Slice value;
    while (values->Next(&value)) {
      if (value.size() < 2) continue;
      CloudReport report;
      if (!CloudGenerator::ParseReport(
              Slice(value.data() + 2, value.size() - 2), &report)) {
        continue;
      }
      if (value[0] == 'S') {
        s_by_eq[EqKey(report)].push_back(report);
      } else {
        t_records.push_back(report);
      }
    }
    std::string out;
    for (const CloudReport& t : t_records) {
      auto it = s_by_eq.find(EqKey(t));
      if (it == s_by_eq.end()) continue;
      for (const CloudReport& s : it->second) {
        if (std::abs(s.latitude - t.latitude) > band_) continue;
        out = std::to_string(s.longitude) + "," +
              std::to_string(s.latitude) + "," + std::to_string(t.latitude);
        ctx->Emit(std::to_string(s.date), out);
      }
    }
  }

 private:
  static uint64_t EqKey(const CloudReport& r) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(r.date)) << 32) |
           static_cast<uint32_t>(r.longitude + 360);
  }

  int band_;
};

}  // namespace

JobSpec MakeThetaJoinJob(const ThetaJoinConfig& config) {
  JobSpec spec;
  spec.name = "theta_join";
  spec.mapper_factory = [config]() {
    return std::make_unique<ThetaJoinMapper>(config);
  };
  const int band = config.latitude_band;
  spec.reducer_factory = [band]() {
    return std::make_unique<ThetaJoinReducer>(band);
  };
  // No Combiner: the join does not admit one (paper Section 7.7.3).
  spec.num_reduce_tasks = config.num_reduce_tasks;
  spec.map_output_codec = config.codec;
  spec.map_buffer_bytes = config.map_buffer_bytes;
  return spec;
}

void SizeGridForMemory(uint64_t input_records, uint64_t region_memory_records,
                       int* rows, int* cols) {
  // A square g x g grid receives ~2n/g records per region (n/g as S plus
  // n/g as T); solve for the smallest g that fits the budget.
  uint64_t g = 1;
  if (region_memory_records > 0) {
    g = (2 * input_records + region_memory_records - 1) /
        region_memory_records;
  }
  if (g < 1) g = 1;
  *rows = static_cast<int>(g);
  *cols = static_cast<int>(g);
}

}  // namespace workloads
}  // namespace antimr
