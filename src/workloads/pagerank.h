// PageRank (paper Section 7.7.2): each iteration's Map divides a node's rank
// over its out-edges and emits one contribution per edge (plus the adjacency
// structure so it survives the iteration); Reduce sums contributions and
// applies the damping factor. Anti-Combining collapses the per-edge
// duplication of the contribution value.
#ifndef ANTIMR_WORKLOADS_PAGERANK_H_
#define ANTIMR_WORKLOADS_PAGERANK_H_

#include <vector>

#include "anticombine/options.h"
#include "engine/executor.h"
#include "engine/job_plan.h"
#include "mr/job_runner.h"
#include "mr/job_spec.h"

namespace antimr {
namespace workloads {

struct PageRankConfig {
  uint64_t num_nodes = 0;  ///< required: damping uses (1-d)/N
  double damping = 0.85;
  int num_reduce_tasks = 8;
  CodecType codec = CodecType::kNone;
  size_t map_buffer_bytes = 1 * 1024 * 1024;
};

/// One PageRank iteration as a MapReduce job. Input and output records use
/// the GraphGenerator format: key = node id, value = "<rank> <nbr>...".
JobSpec MakePageRankJob(const PageRankConfig& config);

/// Aggregate metrics across `iterations` runs, feeding each iteration's
/// output into the next. When `anti_combine` is non-null every iteration is
/// run through the Anti-Combining transform with those options.
struct PageRankRunResult {
  JobMetrics total;              ///< summed over iterations
  std::vector<KV> final_ranks;   ///< output of the last iteration
};

Status RunPageRank(const PageRankConfig& config,
                   const std::vector<KV>& graph, int iterations,
                   const anticombine::AntiCombineOptions* anti_combine,
                   int num_map_tasks, PageRankRunResult* result,
                   const RunOptions& run_options = RunOptions());

/// The same N-iteration computation as ONE JobPlan: stage i maps dataset
/// "ranks_<i>" to "ranks_<i+1>", with "ranks_0" the external graph input and
/// "ranks_<iterations>" the plan's sink. Each stage's map tasks consume the
/// previous stage's reduce partitions directly, so iteration i+1 starts on
/// partition p the moment iteration i's reduce task p publishes — no
/// per-iteration driver barrier (cross-stage pipelining).
engine::JobPlan MakePageRankPlan(
    const PageRankConfig& config, std::vector<InputSplit> initial_splits,
    int iterations, const anticombine::AntiCombineOptions* anti_combine,
    ShuffleMode shuffle_mode = ShuffleMode::kPipelined);

/// Run the DAG form on `executor` (a default local Executor when null).
/// Produces byte-identical final_ranks to RunPageRank: both paths feed each
/// reduce the same per-key value order (contiguous chunks of the same
/// flattened sequence through stable sorts and merges), so the float
/// summation order — and thus the formatted ranks — match exactly.
/// `plan_result`, when non-null, receives the full per-stage breakdown.
Status RunPageRankDag(const PageRankConfig& config,
                      const std::vector<KV>& graph, int iterations,
                      const anticombine::AntiCombineOptions* anti_combine,
                      int num_map_tasks, engine::Executor* executor,
                      PageRankRunResult* result,
                      engine::PlanResult* plan_result = nullptr,
                      ShuffleMode shuffle_mode = ShuffleMode::kPipelined);

}  // namespace workloads
}  // namespace antimr

#endif  // ANTIMR_WORKLOADS_PAGERANK_H_
