#include "workloads/registry.h"

#include <map>
#include <string>

#include "anticombine/transform.h"
#include "engine/job_registry.h"
#include "mr/skew.h"
#include "workloads/sort.h"
#include "workloads/theta_join.h"
#include "workloads/wordcount.h"

namespace antimr {
namespace workloads {

namespace {

using engine::ParamBool;
using engine::ParamCodec;
using engine::ParamInt;
using engine::ParamUint64;
using Params = std::map<std::string, std::string>;

// Apply the anti_combine/lazy_threshold_nanos params as the builder's last
// step, so the transform wraps the fully configured original job.
Status ApplyAntiCombine(const Params& params, JobSpec* spec) {
  auto it = params.find("anti_combine");
  const std::string mode = it == params.end() ? "off" : it->second;
  if (mode == "off") return Status::OK();
  anticombine::AntiCombineOptions options;
  if (mode == "eager") {
    options = anticombine::AntiCombineOptions::EagerOnly();
  } else if (mode == "lazy") {
    options = anticombine::AntiCombineOptions::LazyOnly();
  } else if (mode == "adaptive") {
    options = anticombine::AntiCombineOptions::Unrestricted();
  } else if (mode == "alpha") {
    options = anticombine::AntiCombineOptions::Alpha();
  } else {
    return Status::InvalidArgument("bad anti_combine mode: " + mode);
  }
  uint64_t threshold = 0;
  ANTIMR_RETURN_NOT_OK(ParamUint64(params, "lazy_threshold_nanos",
                                   options.lazy_threshold_nanos, &threshold));
  options.lazy_threshold_nanos = threshold;
  *spec = anticombine::EnableAntiCombining(*spec, options);
  return Status::OK();
}

// Apply skew-defense params *before* ApplyAntiCombine, so the anti-combine
// wrappers (and LazySH's per-record re-execution on reducers) see the salted
// keys and range pivots exactly as the map side produced them.
//   range_pivots       EncodeKeyList'd pivots -> RangePartitioner
//   skew_stage=split1  salting mapper + salt-stripping partial reducer; needs
//                      hot_keys + hot_fanout, range_pivots = salted pivots
//   skew_stage=merge   identity mapper + original reducer over stage-1
//                      partials; range_pivots = unsalted pivots
Status ApplySkewParams(const Params& params, JobSpec* spec) {
  auto pivots_it = params.find("range_pivots");
  auto stage_it = params.find("skew_stage");
  if (pivots_it == params.end() && stage_it == params.end()) {
    return Status::OK();
  }
  std::vector<std::string> pivots;
  if (pivots_it != params.end()) {
    ANTIMR_RETURN_NOT_OK(DecodeKeyList(pivots_it->second, &pivots));
  }
  if (stage_it == params.end()) {
    spec->partitioner = std::make_shared<RangePartitioner>(std::move(pivots));
    return Status::OK();
  }
  auto model = std::make_shared<SkewModel>();
  JobSpec staged;
  if (stage_it->second == "split1") {
    auto hot_it = params.find("hot_keys");
    if (hot_it == params.end()) {
      return Status::InvalidArgument("skew_stage=split1 requires hot_keys");
    }
    ANTIMR_RETURN_NOT_OK(DecodeKeyList(hot_it->second, &model->hot_keys));
    ANTIMR_RETURN_NOT_OK(
        ParamInt(params, "hot_fanout", 2, &model->hot_fanout));
    model->salted_pivots = std::move(pivots);
    ANTIMR_RETURN_NOT_OK(MakeSplitStage1Spec(*spec, model, &staged));
  } else if (stage_it->second == "merge") {
    model->pivots = std::move(pivots);
    ANTIMR_RETURN_NOT_OK(MakeSplitStage2Spec(*spec, model, &staged));
  } else {
    return Status::InvalidArgument("bad skew_stage: " + stage_it->second);
  }
  *spec = std::move(staged);
  return Status::OK();
}

Status BuildWordCount(const Params& params, JobSpec* spec) {
  WordCountConfig config;
  ANTIMR_RETURN_NOT_OK(ParamInt(params, "reduces", config.num_reduce_tasks,
                                &config.num_reduce_tasks));
  ANTIMR_RETURN_NOT_OK(
      ParamCodec(params, "codec", config.codec, &config.codec));
  ANTIMR_RETURN_NOT_OK(ParamBool(params, "combiner", config.with_combiner,
                                 &config.with_combiner));
  uint64_t buffer = config.map_buffer_bytes;
  ANTIMR_RETURN_NOT_OK(
      ParamUint64(params, "map_buffer_bytes", buffer, &buffer));
  config.map_buffer_bytes = static_cast<size_t>(buffer);
  *spec = MakeWordCountJob(config);
  ANTIMR_RETURN_NOT_OK(ApplySkewParams(params, spec));
  return ApplyAntiCombine(params, spec);
}

Status BuildSort(const Params& params, JobSpec* spec) {
  SortConfig config;
  ANTIMR_RETURN_NOT_OK(ParamInt(params, "reduces", config.num_reduce_tasks,
                                &config.num_reduce_tasks));
  ANTIMR_RETURN_NOT_OK(
      ParamCodec(params, "codec", config.codec, &config.codec));
  uint64_t buffer = config.map_buffer_bytes;
  ANTIMR_RETURN_NOT_OK(
      ParamUint64(params, "map_buffer_bytes", buffer, &buffer));
  config.map_buffer_bytes = static_cast<size_t>(buffer);
  *spec = MakeSortJob(config);
  ANTIMR_RETURN_NOT_OK(ApplySkewParams(params, spec));
  return ApplyAntiCombine(params, spec);
}

Status BuildThetaJoin(const Params& params, JobSpec* spec) {
  ThetaJoinConfig config;
  ANTIMR_RETURN_NOT_OK(ParamInt(params, "reduces", config.num_reduce_tasks,
                                &config.num_reduce_tasks));
  ANTIMR_RETURN_NOT_OK(
      ParamCodec(params, "codec", config.codec, &config.codec));
  ANTIMR_RETURN_NOT_OK(
      ParamInt(params, "grid_rows", config.grid_rows, &config.grid_rows));
  ANTIMR_RETURN_NOT_OK(
      ParamInt(params, "grid_cols", config.grid_cols, &config.grid_cols));
  ANTIMR_RETURN_NOT_OK(ParamInt(params, "latitude_band", config.latitude_band,
                                &config.latitude_band));
  ANTIMR_RETURN_NOT_OK(ParamUint64(params, "salt", config.salt, &config.salt));
  uint64_t buffer = config.map_buffer_bytes;
  ANTIMR_RETURN_NOT_OK(
      ParamUint64(params, "map_buffer_bytes", buffer, &buffer));
  config.map_buffer_bytes = static_cast<size_t>(buffer);
  *spec = MakeThetaJoinJob(config);
  ANTIMR_RETURN_NOT_OK(ApplySkewParams(params, spec));
  return ApplyAntiCombine(params, spec);
}

}  // namespace

void RegisterStandardJobs() {
  engine::RegisterJobBuilder("wordcount", BuildWordCount);
  engine::RegisterJobBuilder("sort", BuildSort);
  engine::RegisterJobBuilder("theta_join", BuildThetaJoin);
}

}  // namespace workloads
}  // namespace antimr
