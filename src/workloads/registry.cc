#include "workloads/registry.h"

#include <map>
#include <string>

#include "anticombine/transform.h"
#include "engine/job_registry.h"
#include "workloads/sort.h"
#include "workloads/theta_join.h"
#include "workloads/wordcount.h"

namespace antimr {
namespace workloads {

namespace {

using engine::ParamBool;
using engine::ParamCodec;
using engine::ParamInt;
using engine::ParamUint64;
using Params = std::map<std::string, std::string>;

// Apply the anti_combine/lazy_threshold_nanos params as the builder's last
// step, so the transform wraps the fully configured original job.
Status ApplyAntiCombine(const Params& params, JobSpec* spec) {
  auto it = params.find("anti_combine");
  const std::string mode = it == params.end() ? "off" : it->second;
  if (mode == "off") return Status::OK();
  anticombine::AntiCombineOptions options;
  if (mode == "eager") {
    options = anticombine::AntiCombineOptions::EagerOnly();
  } else if (mode == "lazy") {
    options = anticombine::AntiCombineOptions::LazyOnly();
  } else if (mode == "adaptive") {
    options = anticombine::AntiCombineOptions::Unrestricted();
  } else if (mode == "alpha") {
    options = anticombine::AntiCombineOptions::Alpha();
  } else {
    return Status::InvalidArgument("bad anti_combine mode: " + mode);
  }
  uint64_t threshold = 0;
  ANTIMR_RETURN_NOT_OK(ParamUint64(params, "lazy_threshold_nanos",
                                   options.lazy_threshold_nanos, &threshold));
  options.lazy_threshold_nanos = threshold;
  *spec = anticombine::EnableAntiCombining(*spec, options);
  return Status::OK();
}

Status BuildWordCount(const Params& params, JobSpec* spec) {
  WordCountConfig config;
  ANTIMR_RETURN_NOT_OK(ParamInt(params, "reduces", config.num_reduce_tasks,
                                &config.num_reduce_tasks));
  ANTIMR_RETURN_NOT_OK(
      ParamCodec(params, "codec", config.codec, &config.codec));
  ANTIMR_RETURN_NOT_OK(ParamBool(params, "combiner", config.with_combiner,
                                 &config.with_combiner));
  uint64_t buffer = config.map_buffer_bytes;
  ANTIMR_RETURN_NOT_OK(
      ParamUint64(params, "map_buffer_bytes", buffer, &buffer));
  config.map_buffer_bytes = static_cast<size_t>(buffer);
  *spec = MakeWordCountJob(config);
  return ApplyAntiCombine(params, spec);
}

Status BuildSort(const Params& params, JobSpec* spec) {
  SortConfig config;
  ANTIMR_RETURN_NOT_OK(ParamInt(params, "reduces", config.num_reduce_tasks,
                                &config.num_reduce_tasks));
  ANTIMR_RETURN_NOT_OK(
      ParamCodec(params, "codec", config.codec, &config.codec));
  uint64_t buffer = config.map_buffer_bytes;
  ANTIMR_RETURN_NOT_OK(
      ParamUint64(params, "map_buffer_bytes", buffer, &buffer));
  config.map_buffer_bytes = static_cast<size_t>(buffer);
  *spec = MakeSortJob(config);
  return ApplyAntiCombine(params, spec);
}

Status BuildThetaJoin(const Params& params, JobSpec* spec) {
  ThetaJoinConfig config;
  ANTIMR_RETURN_NOT_OK(ParamInt(params, "reduces", config.num_reduce_tasks,
                                &config.num_reduce_tasks));
  ANTIMR_RETURN_NOT_OK(
      ParamCodec(params, "codec", config.codec, &config.codec));
  ANTIMR_RETURN_NOT_OK(
      ParamInt(params, "grid_rows", config.grid_rows, &config.grid_rows));
  ANTIMR_RETURN_NOT_OK(
      ParamInt(params, "grid_cols", config.grid_cols, &config.grid_cols));
  ANTIMR_RETURN_NOT_OK(ParamInt(params, "latitude_band", config.latitude_band,
                                &config.latitude_band));
  ANTIMR_RETURN_NOT_OK(ParamUint64(params, "salt", config.salt, &config.salt));
  uint64_t buffer = config.map_buffer_bytes;
  ANTIMR_RETURN_NOT_OK(
      ParamUint64(params, "map_buffer_bytes", buffer, &buffer));
  config.map_buffer_bytes = static_cast<size_t>(buffer);
  *spec = MakeThetaJoinJob(config);
  return ApplyAntiCombine(params, spec);
}

}  // namespace

void RegisterStandardJobs() {
  engine::RegisterJobBuilder("wordcount", BuildWordCount);
  engine::RegisterJobBuilder("sort", BuildSort);
  engine::RegisterJobBuilder("theta_join", BuildThetaJoin);
}

}  // namespace workloads
}  // namespace antimr
