#include <algorithm>
#include <array>
#include <cstdint>
#include <numeric>
#include <queue>
#include <vector>

#include "codec/codec.h"
#include "common/coding.h"

namespace antimr {
namespace {

// Block-sorting codec in the bzip2 tradition: per 64 KiB block we apply a
// Burrows-Wheeler transform (rotation sort via prefix doubling), move-to-front
// coding, run-length coding, and a canonical Huffman entropy stage. The point
// is the *cost profile* — best ratio on text, highest CPU — matching bzip2's
// role in the paper's Table 1.

constexpr size_t kBlockSize = 64 * 1024;

// ---------------------------------------------------------------------------
// BWT of a block's rotations. Returns the last column and the index of the
// original string among the sorted rotations (needed to invert).
void BwtEncode(const unsigned char* s, size_t n, std::string* last_column,
               uint32_t* primary_index) {
  std::vector<int32_t> sa(n);
  std::iota(sa.begin(), sa.end(), 0);
  std::vector<int32_t> rank(n), tmp(n);
  for (size_t i = 0; i < n; ++i) rank[i] = s[i];

  for (size_t k = 1;; k <<= 1) {
    auto cmp = [&](int32_t a, int32_t b) {
      if (rank[a] != rank[b]) return rank[a] < rank[b];
      const int32_t ra = rank[(a + k) % n];
      const int32_t rb = rank[(b + k) % n];
      return ra < rb;
    };
    std::sort(sa.begin(), sa.end(), cmp);
    tmp[sa[0]] = 0;
    for (size_t i = 1; i < n; ++i) {
      tmp[sa[i]] = tmp[sa[i - 1]] + (cmp(sa[i - 1], sa[i]) ? 1 : 0);
    }
    rank = tmp;
    if (static_cast<size_t>(rank[sa[n - 1]]) == n - 1) break;
    if (k >= n) break;  // all rotations compared full-length; ties are equal
  }

  last_column->clear();
  last_column->reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t j = (static_cast<size_t>(sa[i]) + n - 1) % n;
    last_column->push_back(static_cast<char>(s[j]));
    if (sa[i] == 0) *primary_index = static_cast<uint32_t>(i);
  }
}

void BwtDecode(const unsigned char* last, size_t n, uint32_t primary_index,
               std::string* out) {
  // LF-mapping inversion.
  std::array<uint32_t, 256> counts{};
  for (size_t i = 0; i < n; ++i) counts[last[i]]++;
  std::array<uint32_t, 256> starts{};
  uint32_t sum = 0;
  for (int c = 0; c < 256; ++c) {
    starts[c] = sum;
    sum += counts[c];
  }
  std::vector<uint32_t> lf(n);
  std::array<uint32_t, 256> seen{};
  for (size_t i = 0; i < n; ++i) {
    const unsigned char c = last[i];
    lf[i] = starts[c] + seen[c]++;
  }
  out->resize(n);
  uint32_t p = primary_index;
  for (size_t i = n; i-- > 0;) {
    (*out)[i] = static_cast<char>(last[p]);
    p = lf[p];
  }
}

// ---------------------------------------------------------------------------
// Move-to-front.
void MtfEncode(const std::string& in, std::string* out) {
  std::array<unsigned char, 256> order;
  for (int i = 0; i < 256; ++i) order[i] = static_cast<unsigned char>(i);
  out->clear();
  out->reserve(in.size());
  for (char ch : in) {
    const unsigned char c = static_cast<unsigned char>(ch);
    int idx = 0;
    while (order[idx] != c) ++idx;
    out->push_back(static_cast<char>(idx));
    for (int i = idx; i > 0; --i) order[i] = order[i - 1];
    order[0] = c;
  }
}

void MtfDecode(const std::string& in, std::string* out) {
  std::array<unsigned char, 256> order;
  for (int i = 0; i < 256; ++i) order[i] = static_cast<unsigned char>(i);
  out->clear();
  out->reserve(in.size());
  for (char ch : in) {
    const int idx = static_cast<unsigned char>(ch);
    const unsigned char c = order[idx];
    out->push_back(static_cast<char>(c));
    for (int i = idx; i > 0; --i) order[i] = order[i - 1];
    order[0] = c;
  }
}

// ---------------------------------------------------------------------------
// Run-length layer: a run of L >= 4 identical bytes is written as the byte
// four times followed by a varint of (L - 4).
void RleEncode(const std::string& in, std::string* out) {
  out->clear();
  size_t i = 0;
  while (i < in.size()) {
    size_t j = i;
    while (j < in.size() && in[j] == in[i]) ++j;
    const size_t run = j - i;
    if (run < 4) {
      out->append(run, in[i]);
    } else {
      out->append(4, in[i]);
      PutVarint64(out, run - 4);
    }
    i = j;
  }
}

Status RleDecode(const Slice& in_slice, std::string* out) {
  Slice in = in_slice;
  out->clear();
  while (!in.empty()) {
    const char b = in[0];
    size_t run = 1;
    in.RemovePrefix(1);
    while (run < 4 && !in.empty() && in[0] == b) {
      ++run;
      in.RemovePrefix(1);
    }
    if (run == 4) {
      uint64_t extra;
      if (!GetVarint64(&in, &extra)) {
        return Status::Corruption("bzip2-like: truncated RLE run");
      }
      run += static_cast<size_t>(extra);
    }
    out->append(run, b);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Canonical Huffman over bytes.

struct HuffCode {
  uint32_t bits = 0;
  uint8_t len = 0;
};

// Compute code lengths from frequencies (package-free heap construction).
void BuildCodeLengths(const std::array<uint64_t, 256>& freq,
                      std::array<uint8_t, 256>* lengths) {
  lengths->fill(0);
  struct Node {
    uint64_t weight;
    int index;  // < 256: leaf symbol; >= 256: internal node
  };
  auto cmp = [](const Node& a, const Node& b) {
    if (a.weight != b.weight) return a.weight > b.weight;
    return a.index > b.index;  // deterministic ties
  };
  std::priority_queue<Node, std::vector<Node>, decltype(cmp)> heap(cmp);
  std::vector<std::pair<int, int>> children;  // internal node -> (left, right)
  int present = 0;
  for (int s = 0; s < 256; ++s) {
    if (freq[s] > 0) {
      heap.push({freq[s], s});
      ++present;
    }
  }
  if (present == 0) return;
  if (present == 1) {
    for (int s = 0; s < 256; ++s) {
      if (freq[s] > 0) (*lengths)[s] = 1;
    }
    return;
  }
  while (heap.size() > 1) {
    Node a = heap.top();
    heap.pop();
    Node b = heap.top();
    heap.pop();
    const int id = 256 + static_cast<int>(children.size());
    children.emplace_back(a.index, b.index);
    heap.push({a.weight + b.weight, id});
  }
  // Depth-first traversal to assign depths.
  const int root = heap.top().index;
  std::vector<std::pair<int, int>> stack{{root, 0}};
  while (!stack.empty()) {
    auto [node, depth] = stack.back();
    stack.pop_back();
    if (node < 256) {
      (*lengths)[node] = static_cast<uint8_t>(depth);
    } else {
      const auto& [l, r] = children[node - 256];
      stack.push_back({l, depth + 1});
      stack.push_back({r, depth + 1});
    }
  }
}

// Assign canonical codes from lengths.
void AssignCanonical(const std::array<uint8_t, 256>& lengths,
                     std::array<HuffCode, 256>* codes) {
  std::vector<int> order;
  for (int s = 0; s < 256; ++s) {
    if (lengths[s] > 0) order.push_back(s);
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (lengths[a] != lengths[b]) return lengths[a] < lengths[b];
    return a < b;
  });
  uint32_t code = 0;
  uint8_t prev_len = 0;
  for (int s : order) {
    code <<= (lengths[s] - prev_len);
    (*codes)[s] = {code, lengths[s]};
    prev_len = lengths[s];
    ++code;
  }
}

class BitWriter {
 public:
  explicit BitWriter(std::string* out) : out_(out) {}

  void Write(uint32_t bits, int nbits) {
    for (int i = nbits - 1; i >= 0; --i) {
      acc_ = (acc_ << 1) | ((bits >> i) & 1);
      if (++nacc_ == 8) {
        out_->push_back(static_cast<char>(acc_));
        acc_ = 0;
        nacc_ = 0;
      }
    }
  }

  void Finish() {
    if (nacc_ > 0) {
      acc_ <<= (8 - nacc_);
      out_->push_back(static_cast<char>(acc_));
      nacc_ = 0;
      acc_ = 0;
    }
  }

 private:
  std::string* out_;
  uint32_t acc_ = 0;
  int nacc_ = 0;
};

class BitReader {
 public:
  explicit BitReader(const Slice& data) : data_(data) {}

  bool ReadBit(int* bit) {
    if (pos_ >= data_.size() * 8) return false;
    const unsigned char byte = static_cast<unsigned char>(data_[pos_ >> 3]);
    *bit = (byte >> (7 - (pos_ & 7))) & 1;
    ++pos_;
    return true;
  }

 private:
  Slice data_;
  size_t pos_ = 0;
};

Status HuffmanEncode(const std::string& in, std::string* out) {
  std::array<uint64_t, 256> freq{};
  for (char c : in) freq[static_cast<unsigned char>(c)]++;
  std::array<uint8_t, 256> lengths;
  BuildCodeLengths(freq, &lengths);
  std::array<HuffCode, 256> codes{};
  AssignCanonical(lengths, &codes);

  // Symbol table: varint(n_syms) then (symbol, length) byte pairs.
  uint32_t n_syms = 0;
  for (int s = 0; s < 256; ++s) {
    if (lengths[s] > 0) ++n_syms;
  }
  PutVarint32(out, n_syms);
  for (int s = 0; s < 256; ++s) {
    if (lengths[s] > 0) {
      out->push_back(static_cast<char>(s));
      out->push_back(static_cast<char>(lengths[s]));
    }
  }
  PutVarint64(out, in.size());
  BitWriter bw(out);
  for (char c : in) {
    const HuffCode& hc = codes[static_cast<unsigned char>(c)];
    bw.Write(hc.bits, hc.len);
  }
  bw.Finish();
  return Status::OK();
}

Status HuffmanDecode(Slice* in, std::string* out) {
  uint32_t n_syms;
  if (!GetVarint32(in, &n_syms) || n_syms > 256) {
    return Status::Corruption("bzip2-like: bad symbol table");
  }
  std::array<uint8_t, 256> lengths{};
  if (in->size() < 2 * n_syms) {
    return Status::Corruption("bzip2-like: truncated symbol table");
  }
  for (uint32_t i = 0; i < n_syms; ++i) {
    const unsigned char sym = static_cast<unsigned char>((*in)[2 * i]);
    const unsigned char len = static_cast<unsigned char>((*in)[2 * i + 1]);
    if (len == 0 || len > 63) {
      return Status::Corruption("bzip2-like: bad code length");
    }
    lengths[sym] = len;
  }
  in->RemovePrefix(2 * n_syms);
  uint64_t n_coded;
  if (!GetVarint64(in, &n_coded)) {
    return Status::Corruption("bzip2-like: missing coded count");
  }
  std::array<HuffCode, 256> codes{};
  AssignCanonical(lengths, &codes);

  // Canonical decode tables indexed by code length.
  constexpr int kMaxLen = 64;
  std::array<uint32_t, kMaxLen> first_code{};
  std::array<uint32_t, kMaxLen> first_index{};
  std::array<uint32_t, kMaxLen> count{};
  std::vector<int> order;
  for (int s = 0; s < 256; ++s) {
    if (lengths[s] > 0) order.push_back(s);
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (lengths[a] != lengths[b]) return lengths[a] < lengths[b];
    return a < b;
  });
  for (size_t i = 0; i < order.size(); ++i) {
    const int s = order[i];
    const int len = lengths[s];
    if (count[len] == 0) {
      first_code[len] = codes[s].bits;
      first_index[len] = static_cast<uint32_t>(i);
    }
    count[len]++;
  }

  BitReader br(*in);
  out->clear();
  out->reserve(static_cast<size_t>(n_coded));
  for (uint64_t k = 0; k < n_coded; ++k) {
    uint32_t code = 0;
    int len = 0;
    while (true) {
      int bit;
      if (!br.ReadBit(&bit)) {
        return Status::Corruption("bzip2-like: bitstream underflow");
      }
      code = (code << 1) | static_cast<uint32_t>(bit);
      ++len;
      if (len >= kMaxLen) {
        return Status::Corruption("bzip2-like: code too long");
      }
      if (count[len] > 0 && code >= first_code[len] &&
          code < first_code[len] + count[len]) {
        const uint32_t idx = first_index[len] + (code - first_code[len]);
        out->push_back(static_cast<char>(order[idx]));
        break;
      }
    }
  }
  // The remaining bytes of *in belong to this payload; the caller tracks
  // block boundaries via explicit payload lengths, so consume everything.
  in->RemovePrefix(in->size());
  return Status::OK();
}

// ---------------------------------------------------------------------------

class Bzip2LikeCodec : public Codec {
 public:
  const char* name() const override { return "bzip2-like"; }
  CodecType type() const override { return CodecType::kBzip2Like; }

  Status Compress(const Slice& input, std::string* output) const override {
    output->clear();
    PutVarint64(output, input.size());
    size_t off = 0;
    while (off < input.size()) {
      const size_t block_len = std::min(kBlockSize, input.size() - off);
      std::string last_column;
      uint32_t primary = 0;
      BwtEncode(reinterpret_cast<const unsigned char*>(input.data() + off),
                block_len, &last_column, &primary);
      std::string mtf, rle, payload;
      MtfEncode(last_column, &mtf);
      RleEncode(mtf, &rle);
      ANTIMR_RETURN_NOT_OK(HuffmanEncode(rle, &payload));
      PutVarint64(output, block_len);
      PutVarint32(output, primary);
      PutVarint64(output, payload.size());
      output->append(payload);
      off += block_len;
    }
    return Status::OK();
  }

  Status Decompress(const Slice& input, std::string* output) const override {
    Slice in = input;
    uint64_t raw_size;
    if (!GetVarint64(&in, &raw_size)) {
      return Status::Corruption("bzip2-like: missing size");
    }
    output->clear();
    output->reserve(static_cast<size_t>(raw_size));
    while (output->size() < raw_size) {
      uint64_t block_len, payload_len;
      uint32_t primary;
      if (!GetVarint64(&in, &block_len) || !GetVarint32(&in, &primary) ||
          !GetVarint64(&in, &payload_len) || in.size() < payload_len) {
        return Status::Corruption("bzip2-like: bad block header");
      }
      Slice payload(in.data(), static_cast<size_t>(payload_len));
      in.RemovePrefix(static_cast<size_t>(payload_len));
      std::string rle, mtf, last_column, block;
      ANTIMR_RETURN_NOT_OK(HuffmanDecode(&payload, &rle));
      ANTIMR_RETURN_NOT_OK(RleDecode(rle, &mtf));
      MtfDecode(mtf, &last_column);
      if (last_column.size() != block_len ||
          primary >= last_column.size()) {
        return Status::Corruption("bzip2-like: block size mismatch");
      }
      BwtDecode(reinterpret_cast<const unsigned char*>(last_column.data()),
                last_column.size(), primary, &block);
      output->append(block);
    }
    if (output->size() != raw_size) {
      return Status::Corruption("bzip2-like: total size mismatch");
    }
    return Status::OK();
  }
};

}  // namespace

const Codec* GetBzip2LikeCodec() {
  static Bzip2LikeCodec codec;
  return &codec;
}

}  // namespace antimr
