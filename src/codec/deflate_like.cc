#include <vector>

#include "codec/codec.h"
#include "codec/lz_internal.h"

namespace antimr {
namespace {

// Chained-hash LZ with bounded candidate search and lazy matching, spending
// more CPU than SnappyLikeCodec for a better ratio — the Deflate trade-off.
class DeflateLikeCodec : public Codec {
 public:
  const char* name() const override { return "deflate-like"; }
  CodecType type() const override { return CodecType::kDeflateLike; }

  Status Compress(const Slice& input, std::string* output) const override {
    output->clear();
    PutVarint64(output, input.size());
    const char* base = input.data();
    const char* end = base + input.size();
    const size_t n = input.size();
    if (n < lz::kMinMatch + 4) {
      if (n > 0) lz::EmitLiterals(base, n, output);
      return Status::OK();
    }

    constexpr size_t kHashBits = 15;
    constexpr size_t kWindow = 32 * 1024;
    constexpr int kMaxChain = 8;
    std::vector<int32_t> head(size_t{1} << kHashBits, -1);
    std::vector<int32_t> prev(n, -1);

    auto hash_at = [&](size_t p) {
      return (lz::Load32(base + p) * 0x9e3779b1U) >> (32 - kHashBits);
    };
    auto insert = [&](size_t p) {
      const uint32_t h = hash_at(p);
      prev[p] = head[h];
      head[h] = static_cast<int32_t>(p);
    };
    auto best_match = [&](size_t p, size_t* best_len, size_t* best_dist) {
      *best_len = 0;
      *best_dist = 0;
      int32_t cand = head[hash_at(p)];
      int chain = 0;
      while (cand >= 0 && chain++ < kMaxChain) {
        const size_t dist = p - static_cast<size_t>(cand);
        if (dist > kWindow) break;
        const size_t len = lz::MatchLength(base + cand, base + p, end);
        if (len > *best_len) {
          *best_len = len;
          *best_dist = dist;
          if (len >= lz::kMaxMatch) break;
        }
        cand = prev[cand];
      }
    };

    size_t pos = 0;
    size_t literal_start = 0;
    const size_t limit = n - lz::kMinMatch;
    while (pos <= limit) {
      size_t len, dist;
      best_match(pos, &len, &dist);
      if (len >= lz::kMinMatch) {
        // Lazy matching: prefer a strictly longer match starting one byte
        // later, as deflate does. Skipped for long matches (zlib's
        // good_length heuristic) to keep compression fast.
        if (len < 32 && pos + 1 <= limit) {
          insert(pos);
          size_t len2, dist2;
          best_match(pos + 1, &len2, &dist2);
          if (len2 > len + 1) {
            ++pos;
            continue;  // emit current byte as pending literal
          }
        }
        if (pos > literal_start) {
          lz::EmitLiterals(base + literal_start, pos - literal_start, output);
        }
        lz::EmitMatch(len, dist, output);
        const size_t match_end = pos + len;
        // Index positions inside the match (bounded to keep O(n)).
        if (pos + 1 <= limit) {
          const size_t idx_end = match_end <= limit ? match_end : limit + 1;
          for (size_t p = pos + 1; p < idx_end; ++p) insert(p);
        }
        pos = match_end;
        literal_start = pos;
      } else {
        insert(pos);
        ++pos;
      }
    }
    if (n > literal_start) {
      lz::EmitLiterals(base + literal_start, n - literal_start, output);
    }
    return Status::OK();
  }

  Status Decompress(const Slice& input, std::string* output) const override {
    return lz::LzDecompress(input, output);
  }
};

}  // namespace

const Codec* GetDeflateLikeCodec() {
  static DeflateLikeCodec codec;
  return &codec;
}

}  // namespace antimr
