#include "codec/crc32.h"

#include <array>
#include <cstring>

namespace antimr {

namespace {

// Slicing-by-8 tables: table[0] is the classic byte-at-a-time CRC-32
// (polynomial 0xedb88320) table; table[k][b] advances byte b through k
// additional zero bytes. Eight table lookups then retire eight input bytes
// per iteration, which matters because every block payload on the chunk
// and run-file read paths is CRC'd before use.
std::array<std::array<uint32_t, 256>, 8> MakeTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320U ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (int k = 1; k < 8; ++k) {
    for (uint32_t i = 0; i < 256; ++i) {
      tables[k][i] = (tables[k - 1][i] >> 8) ^
                     tables[0][tables[k - 1][i] & 0xff];
    }
  }
  return tables;
}

}  // namespace

uint32_t Crc32(uint32_t crc, const Slice& data) {
  static const std::array<std::array<uint32_t, 256>, 8> t = MakeTables();
  uint32_t c = crc ^ 0xffffffffU;
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(data.data());
  size_t n = data.size();
  while (n >= 8) {
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, p, 4);  // little-endian hosts only (x86/arm64)
    std::memcpy(&hi, p + 4, 4);
    c ^= lo;
    c = t[7][c & 0xff] ^ t[6][(c >> 8) & 0xff] ^ t[5][(c >> 16) & 0xff] ^
        t[4][c >> 24] ^ t[3][hi & 0xff] ^ t[2][(hi >> 8) & 0xff] ^
        t[1][(hi >> 16) & 0xff] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    c = t[0][(c ^ *p++) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffU;
}

}  // namespace antimr
