#include "codec/crc32.h"

#include <array>

namespace antimr {

namespace {
std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320U ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}
}  // namespace

uint32_t Crc32(uint32_t crc, const Slice& data) {
  static const std::array<uint32_t, 256> table = MakeTable();
  uint32_t c = crc ^ 0xffffffffU;
  for (size_t i = 0; i < data.size(); ++i) {
    c = table[(c ^ static_cast<unsigned char>(data[i])) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffU;
}

}  // namespace antimr
