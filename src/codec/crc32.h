// CRC-32 (IEEE 802.3 polynomial), used by GzipCodec's trailer.
#ifndef ANTIMR_CODEC_CRC32_H_
#define ANTIMR_CODEC_CRC32_H_

#include <cstdint>

#include "common/slice.h"

namespace antimr {

/// Compute crc32 of `data`, continuing from `crc` (pass 0 to start).
uint32_t Crc32(uint32_t crc, const Slice& data);

}  // namespace antimr

#endif  // ANTIMR_CODEC_CRC32_H_
