#include <cstring>

#include "codec/codec.h"
#include "codec/crc32.h"
#include "common/coding.h"

namespace antimr {

const Codec* GetDeflateLikeCodec();

namespace {

// Deflate payload wrapped in a gzip-style container: a 10-byte header plus an
// 8-byte CRC32/size trailer. Reproduces the real-world property that gzip is
// deflate plus fixed framing overhead and an integrity check.
class GzipCodec : public Codec {
 public:
  const char* name() const override { return "gzip"; }
  CodecType type() const override { return CodecType::kGzip; }

  Status Compress(const Slice& input, std::string* output) const override {
    output->clear();
    // Header: magic, method, flags, mtime(4), xfl, os — all fixed.
    static const char kHeader[10] = {'\x1f', '\x8b', 8, 0, 0, 0, 0, 0, 0, 3};
    output->append(kHeader, sizeof(kHeader));
    std::string payload;
    ANTIMR_RETURN_NOT_OK(
        GetDeflateLikeCodec()->Compress(input, &payload));
    output->append(payload);
    PutFixed32(output, Crc32(0, input));
    PutFixed32(output, static_cast<uint32_t>(input.size()));
    return Status::OK();
  }

  Status Decompress(const Slice& input, std::string* output) const override {
    if (input.size() < 18) return Status::Corruption("gzip: too short");
    if (input[0] != '\x1f' || input[1] != '\x8b') {
      return Status::Corruption("gzip: bad magic");
    }
    Slice payload(input.data() + 10, input.size() - 18);
    ANTIMR_RETURN_NOT_OK(GetDeflateLikeCodec()->Decompress(payload, output));
    const char* trailer = input.data() + input.size() - 8;
    const uint32_t expected_crc = DecodeFixed32(trailer);
    const uint32_t expected_size = DecodeFixed32(trailer + 4);
    if (expected_size != static_cast<uint32_t>(output->size())) {
      return Status::Corruption("gzip: size mismatch");
    }
    if (expected_crc != Crc32(0, *output)) {
      return Status::Corruption("gzip: crc mismatch");
    }
    return Status::OK();
  }
};

}  // namespace

const Codec* GetGzipCodec() {
  static GzipCodec codec;
  return &codec;
}

}  // namespace antimr
