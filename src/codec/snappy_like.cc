#include <cstring>
#include <vector>

#include "codec/codec.h"
#include "codec/lz_internal.h"

namespace antimr {

namespace lz {

Status LzDecompress(const Slice& input, std::string* output) {
  Slice in = input;
  uint64_t raw_size;
  if (!GetVarint64(&in, &raw_size)) {
    return Status::Corruption("lz: missing size header");
  }
  output->clear();
  output->reserve(static_cast<size_t>(raw_size));
  while (output->size() < raw_size) {
    if (in.empty()) return Status::Corruption("lz: truncated stream");
    const unsigned char c = static_cast<unsigned char>(in[0]);
    in.RemovePrefix(1);
    if (c < 0x80) {
      const size_t len = static_cast<size_t>(c) + 1;
      if (in.size() < len) return Status::Corruption("lz: truncated literal");
      output->append(in.data(), len);
      in.RemovePrefix(len);
    } else {
      const size_t len = (c & 0x7f) + kMinMatch;
      uint32_t dist;
      if (!GetVarint32(&in, &dist) || dist == 0 || dist > output->size()) {
        return Status::Corruption("lz: bad match distance");
      }
      // Byte-by-byte copy: overlapping matches (dist < len) are legal and
      // reproduce run-length behaviour.
      size_t src = output->size() - dist;
      for (size_t i = 0; i < len; ++i) output->push_back((*output)[src + i]);
    }
  }
  if (output->size() != raw_size) return Status::Corruption("lz: size mismatch");
  return Status::OK();
}

}  // namespace lz

namespace {

// Fast single-probe hash-table LZ: one candidate position per 4-byte hash,
// greedy emission, 64 KiB window. Prioritizes speed over ratio like Snappy.
class SnappyLikeCodec : public Codec {
 public:
  const char* name() const override { return "snappy-like"; }
  CodecType type() const override { return CodecType::kSnappyLike; }

  Status Compress(const Slice& input, std::string* output) const override {
    output->clear();
    PutVarint64(output, input.size());
    const char* base = input.data();
    const char* end = base + input.size();
    const size_t n = input.size();

    if (n < lz::kMinMatch + 4) {
      if (n > 0) lz::EmitLiterals(base, n, output);
      return Status::OK();
    }

    constexpr size_t kHashBits = 14;
    constexpr size_t kWindow = 64 * 1024;
    std::vector<int32_t> table(size_t{1} << kHashBits, -1);

    size_t pos = 0;
    size_t literal_start = 0;
    const size_t limit = n - lz::kMinMatch;
    while (pos <= limit) {
      const uint32_t h =
          (lz::Load32(base + pos) * 0x9e3779b1U) >> (32 - kHashBits);
      const int32_t cand = table[h];
      table[h] = static_cast<int32_t>(pos);
      if (cand >= 0 && pos - static_cast<size_t>(cand) <= kWindow &&
          lz::Load32(base + cand) == lz::Load32(base + pos)) {
        const size_t len = lz::MatchLength(base + cand, base + pos, end);
        if (len >= lz::kMinMatch) {
          if (pos > literal_start) {
            lz::EmitLiterals(base + literal_start, pos - literal_start, output);
          }
          lz::EmitMatch(len, pos - static_cast<size_t>(cand), output);
          pos += len;
          literal_start = pos;
          continue;
        }
      }
      ++pos;
    }
    if (n > literal_start) {
      lz::EmitLiterals(base + literal_start, n - literal_start, output);
    }
    return Status::OK();
  }

  Status Decompress(const Slice& input, std::string* output) const override {
    return lz::LzDecompress(input, output);
  }
};

}  // namespace

const Codec* GetSnappyLikeCodec() {
  static SnappyLikeCodec codec;
  return &codec;
}

}  // namespace antimr
