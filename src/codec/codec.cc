#include "codec/codec.h"

namespace antimr {

const Codec* GetSnappyLikeCodec();
const Codec* GetDeflateLikeCodec();
const Codec* GetGzipCodec();
const Codec* GetBzip2LikeCodec();

namespace {

class NullCodec : public Codec {
 public:
  const char* name() const override { return "none"; }
  CodecType type() const override { return CodecType::kNone; }

  Status Compress(const Slice& input, std::string* output) const override {
    output->assign(input.data(), input.size());
    return Status::OK();
  }

  Status Decompress(const Slice& input, std::string* output) const override {
    output->assign(input.data(), input.size());
    return Status::OK();
  }
};

}  // namespace

const Codec* GetCodec(CodecType type) {
  static NullCodec null_codec;
  switch (type) {
    case CodecType::kNone:
      return &null_codec;
    case CodecType::kSnappyLike:
      return GetSnappyLikeCodec();
    case CodecType::kDeflateLike:
      return GetDeflateLikeCodec();
    case CodecType::kGzip:
      return GetGzipCodec();
    case CodecType::kBzip2Like:
      return GetBzip2LikeCodec();
  }
  return &null_codec;
}

Result<CodecType> CodecTypeFromName(const std::string& name) {
  if (name == "none") return CodecType::kNone;
  if (name == "snappy") return CodecType::kSnappyLike;
  if (name == "deflate") return CodecType::kDeflateLike;
  if (name == "gzip") return CodecType::kGzip;
  if (name == "bzip2") return CodecType::kBzip2Like;
  return Status::InvalidArgument("unknown codec: " + name);
}

const char* CodecTypeName(CodecType type) { return GetCodec(type)->name(); }

}  // namespace antimr
