// General-purpose compression codecs applied to shuffled map output, standing
// in for Hadoop's codec suite (paper Sections 1, 7.4, Table 1). Each codec is
// implemented from scratch so the library has no external dependencies:
//
//   kNone        pass-through
//   kSnappyLike  fast greedy hash-table LZ (low CPU, modest ratio)  ~ Snappy
//   kDeflateLike chained-hash LZ with longer searches               ~ Deflate
//   kGzip        kDeflateLike payload + header/CRC32/size trailer   ~ Gzip
//   kBzip2Like   block BWT + MTF + RLE + canonical Huffman          ~ Bzip2
//
// The relative CPU-cost/ratio ordering mirrors the real codecs, which is the
// property Table 1's reproduction depends on.
#ifndef ANTIMR_CODEC_CODEC_H_
#define ANTIMR_CODEC_CODEC_H_

#include <string>

#include "common/slice.h"
#include "common/status.h"

namespace antimr {

enum class CodecType : int {
  kNone = 0,
  kSnappyLike = 1,
  kDeflateLike = 2,
  kGzip = 3,
  kBzip2Like = 4,
};

/// \brief Block compressor/decompressor.
///
/// Implementations are stateless and thread-safe; GetCodec returns shared
/// singletons.
class Codec {
 public:
  virtual ~Codec() = default;

  virtual const char* name() const = 0;
  virtual CodecType type() const = 0;

  /// Compress `input`, replacing *output.
  virtual Status Compress(const Slice& input, std::string* output) const = 0;

  /// Decompress `input` (which must be a full Compress result), replacing
  /// *output. Returns Corruption on malformed input.
  virtual Status Decompress(const Slice& input, std::string* output) const = 0;
};

/// Singleton lookup. Never returns null.
const Codec* GetCodec(CodecType type);

/// Parse "none"/"snappy"/"deflate"/"gzip"/"bzip2" (paper-style aliases).
Result<CodecType> CodecTypeFromName(const std::string& name);

const char* CodecTypeName(CodecType type);

}  // namespace antimr

#endif  // ANTIMR_CODEC_CODEC_H_
