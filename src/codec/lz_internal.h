// Shared LZ token format for SnappyLikeCodec and DeflateLikeCodec.
//
// Stream layout: varint64(raw_size) followed by ops until raw_size bytes are
// reconstructed. Each op starts with a control byte c:
//   c < 0x80 : literal run of (c + 1) bytes follows (1..128)
//   c >= 0x80: back-reference; length = (c & 0x7f) + kMinMatch (4..131),
//              followed by varint32 distance (1..window size)
#ifndef ANTIMR_CODEC_LZ_INTERNAL_H_
#define ANTIMR_CODEC_LZ_INTERNAL_H_

#include <cstdint>
#include <string>

#include "common/coding.h"
#include "common/slice.h"
#include "common/status.h"

namespace antimr {
namespace lz {

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxMatch = kMinMatch + 0x7f;  // 131
constexpr size_t kMaxLiteralRun = 128;

inline void EmitLiterals(const char* data, size_t n, std::string* out) {
  while (n > 0) {
    const size_t take = n < kMaxLiteralRun ? n : kMaxLiteralRun;
    out->push_back(static_cast<char>(take - 1));
    out->append(data, take);
    data += take;
    n -= take;
  }
}

inline void EmitMatch(size_t length, size_t distance, std::string* out) {
  out->push_back(static_cast<char>(0x80 | (length - kMinMatch)));
  PutVarint32(out, static_cast<uint32_t>(distance));
}

inline uint32_t Load32(const char* p) {
  uint32_t v;
  __builtin_memcpy(&v, p, 4);
  return v;
}

/// Length of the common prefix of [a, a_end) and [b, a_end)-bounded range,
/// capped at kMaxMatch.
inline size_t MatchLength(const char* a, const char* b, const char* end) {
  size_t n = 0;
  const size_t limit =
      static_cast<size_t>(end - b) < kMaxMatch ? static_cast<size_t>(end - b)
                                               : kMaxMatch;
  while (n < limit && a[n] == b[n]) ++n;
  return n;
}

/// Shared decoder for the token stream.
Status LzDecompress(const Slice& input, std::string* output);

}  // namespace lz
}  // namespace antimr

#endif  // ANTIMR_CODEC_LZ_INTERNAL_H_
