#include "datagen/graph.h"

#include <algorithm>
#include <cstdio>

#include "common/random.h"

namespace antimr {

void GraphGenerator::AppendNodeId(std::string* out, uint64_t node) {
  char buf[24];
  const int n = std::snprintf(buf, sizeof(buf), "n%010llu",
                              static_cast<unsigned long long>(node));
  out->append(buf, static_cast<size_t>(n));
}

std::string GraphGenerator::NodeId(uint64_t node) {
  std::string id;
  AppendNodeId(&id, node);
  return id;
}

std::vector<KV> GraphGenerator::Generate() const {
  Random rng(config_.seed);
  // Degree sampler: Zipf over [1, max_out_degree], rescaled so the empirical
  // mean lands near mean_out_degree.
  const size_t degree_range =
      std::max<uint64_t>(2, config_.max_out_degree);
  ZipfSampler degree_sampler(degree_range, config_.degree_skew);
  // First pass to find the sampler's natural mean.
  Random probe(config_.seed ^ 0x5eed);
  double natural_mean = 0;
  const int kProbes = 2000;
  for (int i = 0; i < kProbes; ++i) {
    natural_mean += static_cast<double>(degree_sampler.Sample(&probe) + 1);
  }
  natural_mean /= kProbes;
  const double scale = config_.mean_out_degree / natural_mean;

  std::vector<KV> records;
  records.reserve(config_.num_nodes);
  const double init_rank = 1.0 / static_cast<double>(config_.num_nodes);
  char rank_buf[40];
  std::snprintf(rank_buf, sizeof(rank_buf), "%.10e", init_rank);
  std::string key;
  std::string value;
  for (uint64_t node = 0; node < config_.num_nodes; ++node) {
    uint64_t degree = static_cast<uint64_t>(
        static_cast<double>(degree_sampler.Sample(&rng) + 1) * scale);
    degree = std::min<uint64_t>(std::max<uint64_t>(degree, 1),
                                config_.max_out_degree);
    value.assign(rank_buf);
    for (uint64_t e = 0; e < degree; ++e) {
      value.push_back(' ');
      AppendNodeId(&value, rng.Uniform(config_.num_nodes));
    }
    key.clear();
    AppendNodeId(&key, node);
    records.emplace_back(key, value);
  }
  return records;
}

std::vector<InputSplit> GraphGenerator::MakeSplits(int num_splits) const {
  return ::antimr::MakeSplits(Generate(), num_splits);
}

}  // namespace antimr
