// Synthetic stand-in for the Cloud data set [11]: extended cloud reports
// from ships and land stations, 382M records x 28 attributes in the paper.
// The theta-join's behaviour depends on the join attributes (date, longitude,
// latitude) and record width, both reproduced here.
#ifndef ANTIMR_DATAGEN_CLOUD_H_
#define ANTIMR_DATAGEN_CLOUD_H_

#include <cstdint>
#include <vector>

#include "mr/api.h"

namespace antimr {

struct CloudConfig {
  uint64_t num_records = 20000;
  int num_days = 30;         ///< distinct report dates
  int num_longitudes = 36;   ///< longitude grid cells (10-degree bins)
  uint64_t seed = 42;
};

/// A parsed cloud report's join attributes.
struct CloudReport {
  int date = 0;       ///< days since epoch start
  int longitude = 0;  ///< degrees, [-180, 180)
  int latitude = 0;   ///< degrees, [-90, 90]
};

/// \brief Deterministic cloud-report generator.
///
/// Records: key = report id, value = 28 comma-separated attributes with
/// date, longitude, latitude in fixed positions (0, 1, 2).
class CloudGenerator {
 public:
  explicit CloudGenerator(const CloudConfig& config) : config_(config) {}

  std::vector<KV> Generate() const;
  std::vector<InputSplit> MakeSplits(int num_splits) const;

  /// Parse the join attributes out of a record value. Returns false on
  /// malformed input.
  static bool ParseReport(const Slice& value, CloudReport* report);

 private:
  CloudConfig config_;
};

}  // namespace antimr

#endif  // ANTIMR_DATAGEN_CLOUD_H_
