#include "datagen/qlog.h"

#include <array>

#include "common/random.h"
#include "datagen/format.h"

namespace antimr {

namespace {

// First-letter frequency roughly matching English word-initial letters, so
// the Prefix-1 partitioner sees a realistic skew (as it would on real logs).
constexpr const char* kInitialLetters = "taiso" "wcbph" "fmdre" "lngyu" "vjkqz";

std::string MakeWord(Random* rng, bool initial_skew) {
  static const char* vowels = "aeiou";
  static const char* consonants = "bcdfghjklmnpqrstvwxyz";
  std::string word;
  if (initial_skew) {
    // Favour common initial letters: rank-skewed pick from kInitialLetters.
    const size_t rank = static_cast<size_t>(rng->Skewed(4)) % 25;
    word.push_back(kInitialLetters[rank]);
  } else {
    word.push_back(static_cast<char>('a' + rng->Uniform(26)));
  }
  const size_t len = 2 + rng->Uniform(7);  // total word length 3..9
  for (size_t i = 0; i < len; ++i) {
    const bool vowel = (i + word.size()) % 2 == 1;
    if (vowel) {
      word.push_back(vowels[rng->Uniform(5)]);
    } else {
      word.push_back(consonants[rng->Uniform(21)]);
    }
  }
  return word;
}

}  // namespace

QLogGenerator::QLogGenerator(const QLogConfig& config) : config_(config) {
  Random rng(config_.seed);
  std::vector<std::string> vocabulary;
  vocabulary.reserve(config_.vocabulary_words);
  for (uint64_t i = 0; i < config_.vocabulary_words; ++i) {
    vocabulary.push_back(MakeWord(&rng, /*initial_skew=*/true));
  }
  // Word popularity inside queries is itself skewed, so prefixes collide the
  // way they do in real logs.
  ZipfSampler word_sampler(vocabulary.size(), 0.8);
  queries_.reserve(config_.num_distinct);
  for (uint64_t i = 0; i < config_.num_distinct; ++i) {
    const uint64_t words = 2 + rng.Uniform(3);  // 2..4 words, ~19 chars mean
    std::string query;
    for (uint64_t w = 0; w < words; ++w) {
      if (w > 0) query.push_back(' ');
      query += vocabulary[word_sampler.Sample(&rng)];
    }
    queries_.push_back(std::move(query));
  }
}

std::vector<KV> QLogGenerator::Generate() const {
  std::vector<KV> records;
  records.reserve(config_.num_records);
  Random rng(config_.seed + 1);
  ZipfSampler query_sampler(queries_.size(), config_.popularity_skew);
  // Reused field buffers: the only strings built per record are the two the
  // KV must own.
  std::string key;
  std::string value;
  for (uint64_t i = 0; i < config_.num_records; ++i) {
    const std::string& query = queries_[query_sampler.Sample(&rng)];
    value.assign(query);
    if (config_.include_features) {
      value.push_back('\t');
      AppendDecimal(&value, uint64_t{1} + rng.Uniform(1000));
      value.push_back('\t');
      AppendDecimal(&value, uint64_t{rng.Uniform(50)});
    }
    key.assign("u");
    AppendDecimal(&key, uint64_t{rng.Uniform(100000)});
    records.emplace_back(key, value);
  }
  return records;
}

std::vector<InputSplit> QLogGenerator::MakeSplits(int num_splits) const {
  return ::antimr::MakeSplits(Generate(), num_splits);
}

double QLogGenerator::MeanQueryLength() const {
  if (queries_.empty()) return 0.0;
  // Weighted by Zipf popularity would be exact; the unweighted mean is close
  // enough for the sanity check.
  uint64_t total = 0;
  for (const std::string& q : queries_) total += q.size();
  return static_cast<double>(total) / static_cast<double>(queries_.size());
}

}  // namespace antimr
