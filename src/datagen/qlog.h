// Synthetic stand-in for the paper's QLog data set (140M real search-engine
// queries, avg 19.07 chars). Reproduces the properties Query-Suggestion's
// behaviour depends on: Zipf-skewed query popularity over a large distinct
// set, multi-word queries with an English-like first-letter distribution,
// and an average length near 19 characters.
#ifndef ANTIMR_DATAGEN_QLOG_H_
#define ANTIMR_DATAGEN_QLOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mr/api.h"

namespace antimr {

struct QLogConfig {
  uint64_t num_records = 100000;   ///< query-log entries to generate
  uint64_t num_distinct = 20000;   ///< distinct query strings
  double popularity_skew = 1.0;    ///< Zipf exponent over distinct queries
  uint64_t vocabulary_words = 4000;
  uint64_t seed = 42;
  /// Append the paper's two per-query features (occurrence count, browsed
  /// links) to the value as tab-separated fields.
  bool include_features = false;
};

/// \brief Deterministic query-log generator.
///
/// Records are (user-id, query[\t feature1 \t feature2]).
class QLogGenerator {
 public:
  explicit QLogGenerator(const QLogConfig& config);

  /// Materialize all records.
  std::vector<KV> Generate() const;

  /// Input splits generating lazily, `num_splits` map tasks.
  std::vector<InputSplit> MakeSplits(int num_splits) const;

  /// Mean query length in characters (for sanity checks against 19.07).
  double MeanQueryLength() const;

  const std::vector<std::string>& distinct_queries() const {
    return queries_;
  }

 private:
  QLogConfig config_;
  std::vector<std::string> queries_;
};

}  // namespace antimr

#endif  // ANTIMR_DATAGEN_QLOG_H_
