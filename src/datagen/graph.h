// Synthetic stand-in for ClueWeb09 (50M pages, 1.4B links): a directed graph
// with power-law out-degrees (mean ~28 in the paper; configurable here).
// PageRank's map fan-out equals a node's out-degree, which is the property
// Anti-Combining exploits, so degree skew is what matters.
#ifndef ANTIMR_DATAGEN_GRAPH_H_
#define ANTIMR_DATAGEN_GRAPH_H_

#include <cstdint>
#include <vector>

#include "mr/api.h"

namespace antimr {

struct GraphConfig {
  uint64_t num_nodes = 10000;
  double mean_out_degree = 28.0;
  double degree_skew = 1.2;  ///< Zipf exponent of the degree distribution
  uint64_t max_out_degree = 2000;
  uint64_t seed = 42;
};

/// \brief Deterministic power-law digraph generator.
///
/// Records are PageRank-ready: key = node id (zero-padded decimal), value =
/// "<rank> <nbr1> <nbr2> ..." with rank initialized to 1/num_nodes.
class GraphGenerator {
 public:
  explicit GraphGenerator(const GraphConfig& config) : config_(config) {}

  std::vector<KV> Generate() const;
  std::vector<InputSplit> MakeSplits(int num_splits) const;

  /// Zero-padded node id, the graph's key format.
  static std::string NodeId(uint64_t node);

  /// Append NodeId(node) to *out without building a temporary string; the
  /// adjacency-list loop calls this once per edge.
  static void AppendNodeId(std::string* out, uint64_t node);

 private:
  GraphConfig config_;
};

}  // namespace antimr

#endif  // ANTIMR_DATAGEN_GRAPH_H_
