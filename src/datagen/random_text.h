// Synthetic stand-in for the paper's RandomText data set: lines of randomly
// generated words, used by the Sort overhead experiment (Section 7.1) and
// WordCount (Section 7.7.1).
#ifndef ANTIMR_DATAGEN_RANDOM_TEXT_H_
#define ANTIMR_DATAGEN_RANDOM_TEXT_H_

#include <cstdint>
#include <vector>

#include "mr/api.h"

namespace antimr {

struct RandomTextConfig {
  uint64_t num_lines = 20000;
  int words_per_line = 10;
  /// Distinct words; WordCount's combiner effectiveness depends on this
  /// being small relative to the corpus (the paper's combiner shrinks 360 GB
  /// to 92 MB, i.e., a modest vocabulary).
  uint64_t vocabulary_words = 5000;
  double word_skew = 1.0;  ///< Zipf exponent of word popularity
  uint64_t seed = 42;
};

/// \brief Deterministic random-text generator.
///
/// Records: key = line number (zero-padded), value = space-separated words.
class RandomTextGenerator {
 public:
  explicit RandomTextGenerator(const RandomTextConfig& config);

  std::vector<KV> Generate() const;
  std::vector<InputSplit> MakeSplits(int num_splits) const;

 private:
  RandomTextConfig config_;
  std::vector<std::string> vocabulary_;
};

}  // namespace antimr

#endif  // ANTIMR_DATAGEN_RANDOM_TEXT_H_
