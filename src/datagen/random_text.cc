#include "datagen/random_text.h"

#include <cstdio>

#include "common/random.h"

namespace antimr {

RandomTextGenerator::RandomTextGenerator(const RandomTextConfig& config)
    : config_(config) {
  Random rng(config_.seed);
  vocabulary_.reserve(config_.vocabulary_words);
  for (uint64_t i = 0; i < config_.vocabulary_words; ++i) {
    const size_t len = 3 + rng.Uniform(8);
    std::string word;
    for (size_t c = 0; c < len; ++c) {
      word.push_back(static_cast<char>('a' + rng.Uniform(26)));
    }
    vocabulary_.push_back(std::move(word));
  }
}

std::vector<KV> RandomTextGenerator::Generate() const {
  Random rng(config_.seed + 1);
  ZipfSampler word_sampler(vocabulary_.size(), config_.word_skew);
  std::vector<KV> records;
  records.reserve(config_.num_lines);
  char key_buf[24];
  for (uint64_t line = 0; line < config_.num_lines; ++line) {
    std::snprintf(key_buf, sizeof(key_buf), "l%010llu",
                  static_cast<unsigned long long>(line));
    std::string text;
    for (int w = 0; w < config_.words_per_line; ++w) {
      if (w > 0) text.push_back(' ');
      text += vocabulary_[word_sampler.Sample(&rng)];
    }
    records.emplace_back(key_buf, std::move(text));
  }
  return records;
}

std::vector<InputSplit> RandomTextGenerator::MakeSplits(int num_splits) const {
  return ::antimr::MakeSplits(Generate(), num_splits);
}

}  // namespace antimr
