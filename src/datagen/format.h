// Allocation-free number formatting for the record generators. The
// generators build millions of records; formatting fields with
// std::to_string / operator+ created several string temporaries per record,
// which dominated generation time in heap profiles. These helpers append
// digits straight into a caller-reused buffer instead.
#ifndef ANTIMR_DATAGEN_FORMAT_H_
#define ANTIMR_DATAGEN_FORMAT_H_

#include <cstdint>
#include <string>

namespace antimr {

/// Append the decimal form of `v` to *out (same digits as std::to_string).
inline void AppendDecimal(std::string* out, uint64_t v) {
  char buf[20];
  char* p = buf + sizeof(buf);
  do {
    *--p = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  out->append(p, static_cast<size_t>(buf + sizeof(buf) - p));
}

/// Signed variant (for longitudes/latitudes).
inline void AppendDecimal(std::string* out, int64_t v) {
  if (v < 0) {
    out->push_back('-');
    AppendDecimal(out, static_cast<uint64_t>(-(v + 1)) + 1);
    return;
  }
  AppendDecimal(out, static_cast<uint64_t>(v));
}

}  // namespace antimr

#endif  // ANTIMR_DATAGEN_FORMAT_H_
