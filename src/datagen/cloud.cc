#include "datagen/cloud.h"

#include <cstdio>
#include <cstdlib>

#include "common/random.h"
#include "datagen/format.h"

namespace antimr {

std::vector<KV> CloudGenerator::Generate() const {
  Random rng(config_.seed);
  std::vector<KV> records;
  records.reserve(config_.num_records);
  // Reused field buffers: formatting 28 columns with operator+ made several
  // temporaries per record.
  std::string key;
  std::string value;
  for (uint64_t i = 0; i < config_.num_records; ++i) {
    const int date = static_cast<int>(rng.Uniform(config_.num_days));
    const int longitude =
        static_cast<int>(rng.Uniform(config_.num_longitudes)) * 10 - 180;
    const int latitude = static_cast<int>(rng.Uniform(181)) - 90;
    value.clear();
    AppendDecimal(&value, int64_t{date});
    value.push_back(',');
    AppendDecimal(&value, int64_t{longitude});
    value.push_back(',');
    AppendDecimal(&value, int64_t{latitude});
    // 25 filler attributes to match the data set's 28-column width.
    for (int a = 0; a < 25; ++a) {
      value.push_back(',');
      AppendDecimal(&value, uint64_t{rng.Uniform(1000)});
    }
    key.assign("r");
    AppendDecimal(&key, i);
    records.emplace_back(key, value);
  }
  return records;
}

std::vector<InputSplit> CloudGenerator::MakeSplits(int num_splits) const {
  return ::antimr::MakeSplits(Generate(), num_splits);
}

bool CloudGenerator::ParseReport(const Slice& value, CloudReport* report) {
  // The three join attributes are the first three comma-separated fields.
  // Manual parse: the slice may view into a larger, non-NUL-terminated
  // buffer, so strtol-style parsing is off limits.
  int fields[3];
  const char* p = value.data();
  const char* end = p + value.size();
  for (int f = 0; f < 3; ++f) {
    bool negative = false;
    if (p < end && *p == '-') {
      negative = true;
      ++p;
    }
    if (p >= end || *p < '0' || *p > '9') return false;
    long v = 0;
    while (p < end && *p >= '0' && *p <= '9') {
      v = v * 10 + (*p - '0');
      ++p;
    }
    fields[f] = static_cast<int>(negative ? -v : v);
    if (f < 2) {
      if (p >= end || *p != ',') return false;
      ++p;
    }
  }
  report->date = fields[0];
  report->longitude = fields[1];
  report->latitude = fields[2];
  return true;
}

}  // namespace antimr
