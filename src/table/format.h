// Chunked columnar table format (modeled on YTsaurus table_client chunks):
// a chunk is a sequence of self-describing blocks, each holding a key column
// and a value column serialized separately so the two compress on their own
// terms. Per block the writer records min/max keys (for pruning), chooses
// dictionary vs raw key encoding and a per-column codec by measured size,
// and CRC-protects the header and the column payloads independently.
//
//   chunk  := magic "ACH1" block*
//   block  := fixed32(header_len) header key_payload value_payload
//   header := varint64(record_count)
//             byte(flags)            bit0: eager-dict payload rewrite on
//             byte(key_encoding)     0 = raw len-prefixed, 1 = dictionary
//             byte(key_codec)        CodecType (kNone = stored raw)
//             byte(value_codec)      CodecType (kNone = stored raw)
//             varint32(key_raw_len)  varint32(key_stored_len)
//             varint32(val_raw_len)  varint32(val_stored_len)
//             len-prefixed(min_key)  len-prefixed(max_key)
//             fixed32(payload_crc)   crc32 of key_payload||value_payload
//             fixed32(header_crc)    crc32 of all header bytes before it
//
//   key_payload (raw):  {len-prefixed key}*record_count
//   key_payload (dict): varint32(dict_size) {len-prefixed entry}*dict_size
//                       {varint32(id)}*record_count
//   value_payload:      {len-prefixed value}*record_count
//
// The dictionary covers every distinct key byte-string the block references:
// row keys, plus — in anti-combined segments — the {other keys} embedded in
// EagerSH payloads, which the writer can rewrite to dictionary ids
// (anticombine::Encoding::kEagerDict) when that is smaller.
#ifndef ANTIMR_TABLE_FORMAT_H_
#define ANTIMR_TABLE_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/record_batch.h"
#include "common/slice.h"
#include "common/status.h"

namespace antimr {

/// On-storage layout of spill and shuffle segment files.
enum class RecordFormat : uint8_t {
  kRow = 0,       ///< block-framed row runs (io/run_file.h, magic "ABS1")
  kColumnar = 1,  ///< columnar chunks (this header, magic "ACH1")
};

/// First bytes of every columnar chunk: "AntiMR CHunk v1".
constexpr char kChunkMagic[4] = {'A', 'C', 'H', '1'};

/// Key-column encodings a block header may carry.
enum class KeyEncoding : uint8_t {
  kRaw = 0,
  kDictionary = 1,
};

/// Block header flag bits.
constexpr uint8_t kBlockFlagEagerDictRewrite = 0x1;

inline const char* RecordFormatName(RecordFormat format) {
  return format == RecordFormat::kColumnar ? "columnar" : "row";
}

inline Status RecordFormatFromName(const std::string& name,
                                   RecordFormat* format) {
  if (name == "row") {
    *format = RecordFormat::kRow;
    return Status::OK();
  }
  if (name == "columnar") {
    *format = RecordFormat::kColumnar;
    return Status::OK();
  }
  return Status::InvalidArgument("unknown record format: " + name +
                                 " (expected row|columnar)");
}

/// \brief Inclusive key interval for block pruning.
///
/// A block whose [min_key, max_key] stats fall entirely outside the range is
/// skipped without reading (or transferring) its payload. Unset bounds are
/// open ends.
struct KeyRange {
  Slice lo;
  Slice hi;
  bool has_lo = false;
  bool has_hi = false;

  /// True when a block with the given stats may contain keys in the range.
  bool Overlaps(const Slice& min_key, const Slice& max_key,
                const KeyComparator& cmp) const {
    if (has_lo && cmp(max_key, lo) < 0) return false;
    if (has_hi && cmp(min_key, hi) > 0) return false;
    return true;
  }

  /// True when `key` itself is inside the range.
  bool Contains(const Slice& key, const KeyComparator& cmp) const {
    if (has_lo && cmp(key, lo) < 0) return false;
    if (has_hi && cmp(key, hi) > 0) return false;
    return true;
  }
};

}  // namespace antimr

#endif  // ANTIMR_TABLE_FORMAT_H_
