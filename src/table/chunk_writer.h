// Writer half of the columnar chunk format (table/format.h): stages records
// in an arena, cuts blocks at the same raw-byte threshold the row writer
// uses, and serializes each block as separately encoded key and value
// columns with min/max stats and per-column codec choice.
#ifndef ANTIMR_TABLE_CHUNK_WRITER_H_
#define ANTIMR_TABLE_CHUNK_WRITER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "codec/codec.h"
#include "common/arena.h"
#include "common/record_batch.h"
#include "common/status.h"
#include "io/buffered_io.h"
#include "table/format.h"

namespace antimr {

/// \brief Open-addressing key→id index over a dictionary entry vector.
///
/// The payload rewrite probes this once per eager-payload key — the hottest
/// loop in the writer — so it is a flat pow2 table of (hash32, id) slots
/// with linear probing: one hash, a masked index, and inline verification
/// against the entry vector, instead of std::unordered_map's modulo and
/// bucket chain. Entries must be unique (the block dictionary dedups on
/// build) and must outlive the index, which stores only ids into them.
class DictKeyIndex {
 public:
  static constexpr uint32_t kNotFound = 0xffffffffu;

  /// Drop all slots and re-seed from `entries[0..n)`.
  void Rebuild(const std::vector<Slice>& entries) {
    size_t want = 16;
    while (want < entries.size() * 2) want <<= 1;
    slots_.assign(want, kEmpty);
    mask_ = want - 1;
    size_ = 0;
    for (uint32_t id = 0; id < entries.size(); ++id) Insert(entries, id);
  }

  uint32_t Find(const std::vector<Slice>& entries, const Slice& key) const {
    const uint64_t h = Hash(key);
    for (size_t idx = h & mask_;; idx = (idx + 1) & mask_) {
      const uint64_t slot = slots_[idx];
      if (slot == kEmpty) return kNotFound;
      if (static_cast<uint32_t>(slot >> 32) == static_cast<uint32_t>(h) &&
          entries[static_cast<uint32_t>(slot)] == key) {
        return static_cast<uint32_t>(slot);
      }
    }
  }

  /// Index `entries[id]`, which the caller just appended.
  void Insert(const std::vector<Slice>& entries, uint32_t id) {
    if ((size_ + 1) * 4 > (mask_ + 1) * 3) Grow(entries);
    const uint64_t h = Hash(entries[id]);
    size_t idx = h & mask_;
    while (slots_[idx] != kEmpty) idx = (idx + 1) & mask_;
    slots_[idx] = (h << 32) | id;
    ++size_;
  }

 private:
  static uint64_t Hash(const Slice& key) {
    return static_cast<uint32_t>(std::hash<std::string_view>{}(key.view()));
  }

  void Grow(const std::vector<Slice>& entries) {
    std::vector<uint64_t> old;
    old.swap(slots_);
    slots_.assign((mask_ + 1) * 2, kEmpty);
    mask_ = slots_.size() - 1;
    for (uint64_t slot : old) {
      if (slot == kEmpty) continue;
      const uint64_t h = Hash(entries[static_cast<uint32_t>(slot)]);
      size_t idx = h & mask_;
      while (slots_[idx] != kEmpty) idx = (idx + 1) & mask_;
      slots_[idx] = slot;
    }
  }

  // Each slot packs (hash32 << 32) | entry id; ids stay far below 2^32-1,
  // so an all-ones slot can only mean empty.
  static constexpr uint64_t kEmpty = ~uint64_t{0};
  std::vector<uint64_t> slots_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

/// \brief Writes a key-sorted record stream as a columnar chunk.
///
/// Input must be sorted by the key order the eventual reader prunes with:
/// each block's min/max stats are its first/last record keys. Appended
/// bytes are copied into a staging arena immediately, so callers may reuse
/// their buffers (and batches) freely between calls — unless the caller
/// opts into assume_stable_inputs, which skips that copy.
class ChunkWriter {
 public:
  struct Options {
    /// Raw (row-serialized) bytes per block before a cut — the same
    /// threshold BlockRunWriter applies, so the two formats cut blocks at
    /// identical record boundaries.
    size_t block_bytes = 64 * 1024;
    /// Codec tried per column per block; a column keeps raw storage when
    /// compression does not shrink it (per-block codec choice).
    CodecType codec = CodecType::kNone;
    /// Rewrite EagerSH payloads (anticombine/encoding.h) whose {other keys}
    /// appear in the block dictionary to kEagerDict id lists when smaller.
    /// Only safe on anti-combined segments, where every value is a flagged
    /// payload.
    bool rewrite_eager_payloads = false;
    /// Caller guarantees every appended slice stays valid until Finish()
    /// returns (e.g. records interned in a map-output arena, or a vector
    /// the caller owns). The writer then stages views instead of copying
    /// each record into its arena — the dominant per-record write cost.
    /// Unsafe for merge-backed streams, whose views die at the next batch.
    bool assume_stable_inputs = false;
  };

  ChunkWriter(std::unique_ptr<WritableFile> file, Options options);

  Status Append(const Slice& key, const Slice& value);
  Status AppendBatch(const RecordBatch& batch);
  /// Flush the final partial block and close the file. Must be called.
  Status Finish();

  /// Row-serialized bytes represented (varint-framed key+value), the same
  /// measure BlockRunWriter::raw_bytes reports — shuffle volume metrics
  /// stay comparable across formats.
  uint64_t raw_bytes() const { return raw_bytes_; }
  /// Total file bytes (magic + headers + column payloads).
  uint64_t stored_bytes() const { return writer_.bytes_written(); }
  uint64_t record_count() const { return record_count_; }
  uint64_t block_count() const { return block_count_; }
  uint64_t compress_nanos() const { return compress_nanos_; }
  /// Blocks that chose dictionary key encoding.
  uint64_t dict_blocks() const { return dict_blocks_; }
  /// Values rewritten from EagerSH to EagerSH/dict.
  uint64_t payload_rewrites() const { return payload_rewrites_; }

 private:
  Status EnsureMagic();
  Status FlushBlock();
  /// Rewrite eligible staged values to kEagerDict, extending the block
  /// dictionary with payload keys it adopts. Fills final_values_.
  void RewriteValues();

  BufferedWriter writer_;
  Options opts_;

  // Staged records for the current block.
  Arena stage_arena_;
  std::vector<RecordRef> rows_;
  uint64_t staged_raw_bytes_ = 0;
  bool wrote_magic_ = false;

  // Flush-time scratch, reused across blocks so steady-state flushes do not
  // allocate.
  std::vector<Slice> dict_;
  DictKeyIndex dict_index_;
  std::vector<uint32_t> key_ids_;
  std::vector<Slice> final_values_;
  Arena rewrite_arena_;
  std::vector<uint32_t> parsed_ids_;
  std::vector<Slice> pending_dict_keys_;
  std::string key_buf_;
  std::string val_buf_;
  std::string key_compressed_;
  std::string compressed_;
  std::string header_;

  uint64_t raw_bytes_ = 0;
  uint64_t record_count_ = 0;
  uint64_t block_count_ = 0;
  uint64_t compress_nanos_ = 0;
  uint64_t dict_blocks_ = 0;
  uint64_t payload_rewrites_ = 0;
};

}  // namespace antimr

#endif  // ANTIMR_TABLE_CHUNK_WRITER_H_
