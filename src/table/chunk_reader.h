// Reader half of the columnar chunk format (table/format.h): a streaming
// SegmentStream with bounded readahead, per-block header/payload CRC
// verification, min/max-key block pruning, and native RecordBatch output.
//
// Pruning happens at read time, before the payload leaves storage: a block
// whose stats miss the key range is Skip()ed, so its bytes are neither
// transferred (no simulated-bandwidth sleep) nor decoded. Decoded blocks
// are double-buffered exactly like BlockRunReader's, so NextBatch views
// survive the advance onto the next block.
#ifndef ANTIMR_TABLE_CHUNK_READER_H_
#define ANTIMR_TABLE_CHUNK_READER_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "codec/codec.h"
#include "common/arena.h"
#include "common/record_batch.h"
#include "common/status.h"
#include "io/env.h"
#include "io/run_file.h"
#include "table/format.h"

namespace antimr {

/// \brief Streaming reader over a columnar chunk.
class ChunkReader : public SegmentStream {
 public:
  struct Options {
    size_t readahead_blocks = kDefaultReadaheadBlocks;
    /// Simulated transfer bandwidth paid per block actually read (pruned
    /// blocks pay nothing); 0 = unthrottled.
    double throttle_mb_per_s = 0;
    /// Name used in error messages ("chunk <name> block <n>: ...").
    std::string name;
    /// Optional pruning range (borrowed; must outlive the reader). Blocks
    /// whose [min,max] stats miss it are skipped wholesale; records of
    /// surviving blocks are NOT re-filtered — stats-based pruning only ever
    /// drops blocks that contain no range keys at all.
    const KeyRange* prune = nullptr;
    /// Comparator the chunk was sorted with; required when prune is set.
    KeyComparator prune_cmp;
  };

  ChunkReader(std::unique_ptr<SequentialFile> file, Options options);

  /// Check the magic, fill the readahead window, and position at the first
  /// record. Must be called once before use.
  Status Open();

  bool Valid() const override { return valid_; }
  Slice key() const override { return key_; }
  Slice value() const override { return value_; }
  Status Next() override;

  /// Eager batches capped at the current block's tail (one buffer
  /// generation per batch, like BlockRunReader::NextBatch).
  Status NextBatch(RecordBatch* batch, const BatchOptions& opts) override;
  bool SupportsEagerBatches() const override { return true; }

  const BlockReadStats& stats() const override { return stats_; }

 private:
  /// One block's parsed header plus its stored column payloads.
  struct Frame {
    uint64_t record_count = 0;
    uint8_t flags = 0;
    KeyEncoding key_encoding = KeyEncoding::kRaw;
    CodecType key_codec = CodecType::kNone;
    CodecType value_codec = CodecType::kNone;
    uint32_t key_raw_len = 0;
    uint32_t key_stored_len = 0;
    uint32_t val_raw_len = 0;
    uint32_t val_stored_len = 0;
    uint32_t payload_crc = 0;
    std::string payload;  ///< key_payload || value_payload, stored bytes
  };

  /// One decoded block. Two instances alternate (double buffer): views
  /// into a block stay valid until the decode after the next one.
  struct DecodedBlock {
    std::string payload;    ///< owned stored bytes (moved from the frame)
    std::string key_plain;  ///< decompressed key column (when compressed)
    std::string val_plain;  ///< decompressed value column (when compressed)
    std::vector<Slice> dict;
    std::vector<RecordRef> rows;
    Arena rematerialized;  ///< standard-eager bytes rebuilt from kEagerDict

    void Reset() {
      payload.clear();
      key_plain.clear();
      val_plain.clear();
      dict.clear();
      rows.clear();
      rematerialized.Clear();
    }
  };

  DecodedBlock& current() { return blocks_[cur_]; }
  const DecodedBlock& current() const { return blocks_[cur_]; }

  Status ReadExactDirect(size_t n, std::string* out, bool* at_eof);
  Status FillReadahead();
  Status DecodeNextBlock();
  /// Decode blocks until row_pos_ lands on a record (or the chunk ends) and
  /// publish it via key_/value_/valid_.
  Status PositionAtRow();
  Status CorruptionAt(const std::string& detail) const;
  void NotePeak();

  std::unique_ptr<SequentialFile> file_;
  Options opts_;
  std::deque<Frame> readahead_;
  uint64_t readahead_bytes_ = 0;
  bool source_eof_ = false;

  DecodedBlock blocks_[2];
  /// Decode scratch: wire-form (varint(len) || bytes) views of the current
  /// block's dictionary entries, rebuilt per rewrite-flagged block and
  /// consumed entirely inside that block's rematerialize pass.
  std::vector<Slice> dict_wire_;
  int cur_ = 0;
  size_t row_pos_ = 0;
  Slice key_;
  Slice value_;
  bool valid_ = false;
  uint64_t block_index_ = 0;  ///< blocks read (1-based once past the magic)

  BlockReadStats stats_;
};

/// Convenience: open chunk `fname` on `env` and return a positioned reader.
Status OpenChunk(Env* env, const std::string& fname,
                 ChunkReader::Options options,
                 std::unique_ptr<ChunkReader>* reader);

}  // namespace antimr

#endif  // ANTIMR_TABLE_CHUNK_READER_H_
