#include "table/chunk_reader.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "anticombine/encoding.h"
#include "codec/crc32.h"
#include "common/coding.h"
#include "common/stopwatch.h"
#include "io/throttled_env.h"

namespace antimr {

namespace {

/// Largest header we are willing to allocate for before calling the length
/// field corrupt. Headers are ~40 bytes + two keys.
constexpr uint32_t kMaxHeaderBytes = 1 << 20;

constexpr uint8_t kMaxCodecByte = static_cast<uint8_t>(CodecType::kBzip2Like);

}  // namespace

ChunkReader::ChunkReader(std::unique_ptr<SequentialFile> file, Options options)
    : file_(std::move(file)), opts_(std::move(options)) {}

Status ChunkReader::CorruptionAt(const std::string& detail) const {
  return Status::Corruption("chunk " +
                            (opts_.name.empty() ? "<unnamed>" : opts_.name) +
                            " block " + std::to_string(block_index_) + ": " +
                            detail);
}

void ChunkReader::NotePeak() {
  const uint64_t buffered = readahead_bytes_ + current().key_plain.size() +
                            current().val_plain.size() +
                            current().payload.size();
  if (buffered > stats_.peak_buffered_bytes) {
    stats_.peak_buffered_bytes = buffered;
  }
}

Status ChunkReader::ReadExactDirect(size_t n, std::string* out, bool* at_eof) {
  out->resize(n);
  size_t got = 0;
  while (got < n) {
    Slice chunk;
    ANTIMR_RETURN_NOT_OK(file_->Read(n - got, &chunk, out->data() + got));
    if (chunk.empty()) {
      if (at_eof != nullptr && got == 0) {
        *at_eof = true;
        out->clear();
        return Status::OK();
      }
      return CorruptionAt("truncated block (unexpected end of chunk)");
    }
    // Sources that serve views out of their own storage (SliceSource)
    // ignore the scratch buffer; copy into place then.
    if (chunk.data() != out->data() + got) {
      std::memcpy(out->data() + got, chunk.data(), chunk.size());
    }
    got += chunk.size();
  }
  if (at_eof != nullptr) *at_eof = false;
  return Status::OK();
}

Status ChunkReader::Open() {
  std::string magic;
  {
    ScopedTimer t(&stats_.read_nanos);
    bool at_eof = false;
    Status st = ReadExactDirect(sizeof(kChunkMagic), &magic, &at_eof);
    if (!st.ok() || at_eof) {
      return Status::Corruption(
          "chunk " + (opts_.name.empty() ? "<unnamed>" : opts_.name) +
          ": missing chunk magic");
    }
  }
  stats_.bytes_read += sizeof(kChunkMagic);
  if (Slice(magic) != Slice(kChunkMagic, sizeof(kChunkMagic))) {
    return CorruptionAt("bad magic: not a columnar chunk");
  }
  ANTIMR_RETURN_NOT_OK(FillReadahead());
  return PositionAtRow();
}

Status ChunkReader::FillReadahead() {
  const size_t window = std::max<size_t>(1, opts_.readahead_blocks);
  while (!source_eof_ && readahead_.size() < window) {
    uint64_t frame_read_bytes = 0;
    Frame frame;
    std::string header;
    {
      ScopedTimer t(&stats_.read_nanos);
      std::string len_bytes;
      bool at_eof = false;
      ANTIMR_RETURN_NOT_OK(ReadExactDirect(4, &len_bytes, &at_eof));
      if (at_eof) {
        source_eof_ = true;
        break;
      }
      ++block_index_;
      const uint32_t header_len = DecodeFixed32(len_bytes.data());
      if (header_len < 8 || header_len > kMaxHeaderBytes) {
        return CorruptionAt("implausible header length " +
                            std::to_string(header_len));
      }
      ANTIMR_RETURN_NOT_OK(ReadExactDirect(header_len, &header, nullptr));
      frame_read_bytes += 4 + header_len;
    }

    // The header CRC is the trailing fixed32; verify before trusting any
    // other field.
    {
      ScopedTimer t(&stats_.decode_nanos);
      const uint32_t stored_crc = DecodeFixed32(
          header.data() + header.size() - 4);
      const uint32_t actual_crc =
          Crc32(0, Slice(header.data(), header.size() - 4));
      if (stored_crc != actual_crc) {
        return CorruptionAt("header crc mismatch (stored " +
                            std::to_string(stored_crc) + ", computed " +
                            std::to_string(actual_crc) + ")");
      }
    }
    Slice in(header.data(), header.size() - 4);
    uint8_t key_encoding_byte = 0;
    Slice min_key, max_key;
    auto get_byte = [&in](uint8_t* b) {
      if (in.empty()) return false;
      *b = static_cast<uint8_t>(in[0]);
      in.RemovePrefix(1);
      return true;
    };
    uint8_t key_codec_byte = 0;
    uint8_t value_codec_byte = 0;
    if (!GetVarint64(&in, &frame.record_count) || !get_byte(&frame.flags) ||
        !get_byte(&key_encoding_byte) || !get_byte(&key_codec_byte) ||
        !get_byte(&value_codec_byte) ||
        !GetVarint32(&in, &frame.key_raw_len) ||
        !GetVarint32(&in, &frame.key_stored_len) ||
        !GetVarint32(&in, &frame.val_raw_len) ||
        !GetVarint32(&in, &frame.val_stored_len) ||
        !GetLengthPrefixed(&in, &min_key) ||
        !GetLengthPrefixed(&in, &max_key) ||
        !GetFixed32(&in, &frame.payload_crc) || !in.empty()) {
      return CorruptionAt("malformed block header");
    }
    if (frame.record_count == 0) {
      return CorruptionAt("empty block");
    }
    if (key_encoding_byte >
            static_cast<uint8_t>(KeyEncoding::kDictionary) ||
        key_codec_byte > kMaxCodecByte || value_codec_byte > kMaxCodecByte) {
      return CorruptionAt("bad key encoding or codec id");
    }
    frame.key_encoding = static_cast<KeyEncoding>(key_encoding_byte);
    frame.key_codec = static_cast<CodecType>(key_codec_byte);
    frame.value_codec = static_cast<CodecType>(value_codec_byte);

    const uint64_t payload_len =
        static_cast<uint64_t>(frame.key_stored_len) + frame.val_stored_len;
    if (opts_.prune != nullptr &&
        !opts_.prune->Overlaps(min_key, max_key, opts_.prune_cmp)) {
      // Stats miss the range: skip the payload without transferring it.
      // Env Skip() counts no read bytes and pays no simulated bandwidth —
      // that is the pruning win.
      {
        ScopedTimer t(&stats_.read_nanos);
        ANTIMR_RETURN_NOT_OK(file_->Skip(payload_len));
      }
      stats_.bytes_read += frame_read_bytes;
      stats_.blocks_pruned += 1;
      stats_.pruned_bytes += payload_len;
      SleepForBytes(frame_read_bytes, opts_.throttle_mb_per_s);
      continue;
    }

    {
      ScopedTimer t(&stats_.read_nanos);
      ANTIMR_RETURN_NOT_OK(ReadExactDirect(static_cast<size_t>(payload_len),
                                           &frame.payload, nullptr));
    }
    frame_read_bytes += payload_len;
    stats_.bytes_read += frame_read_bytes;
    SleepForBytes(frame_read_bytes, opts_.throttle_mb_per_s);
    readahead_bytes_ += frame.payload.size();
    readahead_.push_back(std::move(frame));
    NotePeak();
  }
  return Status::OK();
}

Status ChunkReader::DecodeNextBlock() {
  namespace ac = anticombine;
  Frame frame = std::move(readahead_.front());
  readahead_.pop_front();
  readahead_bytes_ -= frame.payload.size();

  // Decode into the slot holding the generation-before-last block, so views
  // into the just-finished block survive this advance (batch contract).
  DecodedBlock& block = blocks_[cur_ ^ 1];
  block.Reset();
  block.payload = std::move(frame.payload);

  ScopedTimer t(&stats_.decode_nanos);
  const uint32_t actual_crc = Crc32(0, block.payload);
  if (actual_crc != frame.payload_crc) {
    valid_ = false;
    return CorruptionAt("payload crc mismatch (stored " +
                        std::to_string(frame.payload_crc) + ", computed " +
                        std::to_string(actual_crc) + ")");
  }
  if (static_cast<uint64_t>(frame.key_stored_len) + frame.val_stored_len !=
      block.payload.size()) {
    valid_ = false;
    return CorruptionAt("column lengths disagree with payload size");
  }
  const Slice key_stored(block.payload.data(), frame.key_stored_len);
  const Slice val_stored(block.payload.data() + frame.key_stored_len,
                         frame.val_stored_len);

  // Per-column decompression (or raw pass-through).
  Slice key_bytes = key_stored;
  if (frame.key_codec != CodecType::kNone) {
    Status st = GetCodec(frame.key_codec)->Decompress(key_stored,
                                                      &block.key_plain);
    if (!st.ok()) {
      valid_ = false;
      return CorruptionAt("key column decompress failed: " + st.message());
    }
    key_bytes = Slice(block.key_plain);
  }
  if (key_bytes.size() != frame.key_raw_len) {
    valid_ = false;
    return CorruptionAt("key column length mismatch (header " +
                        std::to_string(frame.key_raw_len) + ", decoded " +
                        std::to_string(key_bytes.size()) + ")");
  }
  Slice val_bytes = val_stored;
  if (frame.value_codec != CodecType::kNone) {
    Status st = GetCodec(frame.value_codec)->Decompress(val_stored,
                                                        &block.val_plain);
    if (!st.ok()) {
      valid_ = false;
      return CorruptionAt("value column decompress failed: " + st.message());
    }
    val_bytes = Slice(block.val_plain);
  }
  if (val_bytes.size() != frame.val_raw_len) {
    valid_ = false;
    return CorruptionAt("value column length mismatch (header " +
                        std::to_string(frame.val_raw_len) + ", decoded " +
                        std::to_string(val_bytes.size()) + ")");
  }

  // Key column: materialize per-row key views.
  const size_t record_count = static_cast<size_t>(frame.record_count);
  block.rows.resize(record_count);
  if (frame.key_encoding == KeyEncoding::kDictionary) {
    uint32_t dict_size = 0;
    if (!GetVarint32(&key_bytes, &dict_size)) {
      valid_ = false;
      return CorruptionAt("truncated dictionary size");
    }
    block.dict.reserve(dict_size);
    for (uint32_t i = 0; i < dict_size; ++i) {
      Slice entry;
      if (!GetLengthPrefixed(&key_bytes, &entry)) {
        valid_ = false;
        return CorruptionAt("truncated dictionary entry");
      }
      block.dict.push_back(entry);
    }
    const char* p = key_bytes.data();
    const char* const end = p + key_bytes.size();
    const Slice* dict_data = block.dict.data();
    const uint32_t bound = static_cast<uint32_t>(block.dict.size());
    RecordRef* rows = block.rows.data();
    for (size_t i = 0; i < record_count; ++i) {
      uint32_t id = 0;
      p = GetVarint32Ptr(p, end, &id);
      if (p == nullptr) {
        valid_ = false;
        return CorruptionAt("truncated key id");
      }
      if (id >= bound) {
        valid_ = false;
        return CorruptionAt("bad dictionary id " + std::to_string(id) +
                            " (dictionary has " +
                            std::to_string(block.dict.size()) + " entries)");
      }
      rows[i].key = dict_data[id];
    }
    if (p != end) {
      valid_ = false;
      return CorruptionAt("trailing bytes after key column");
    }
  } else {
    const char* p = key_bytes.data();
    const char* const end = p + key_bytes.size();
    RecordRef* rows = block.rows.data();
    for (size_t i = 0; i < record_count; ++i) {
      uint32_t len = 0;
      p = GetVarint32Ptr(p, end, &len);
      if (p == nullptr || static_cast<size_t>(end - p) < len) {
        valid_ = false;
        return CorruptionAt("truncated key");
      }
      rows[i].key = Slice(p, len);
      p += len;
    }
    if (p != end) {
      valid_ = false;
      return CorruptionAt("trailing bytes after key column");
    }
  }

  // Value column.
  {
    const char* p = val_bytes.data();
    const char* const end = p + val_bytes.size();
    RecordRef* rows = block.rows.data();
    for (size_t i = 0; i < record_count; ++i) {
      uint32_t len = 0;
      p = GetVarint32Ptr(p, end, &len);
      if (p == nullptr || static_cast<size_t>(end - p) < len) {
        valid_ = false;
        return CorruptionAt("truncated value");
      }
      rows[i].value = Slice(p, len);
      p += len;
    }
    if (p != end) {
      valid_ = false;
      return CorruptionAt("trailing bytes after value column");
    }
  }

  // Rematerialize dictionary-rewritten EagerSH payloads into the standard
  // [flag=0] byte form, so downstream consumers (the AntiReducer above all)
  // see input byte-identical to the row format's.
  if ((frame.flags & kBlockFlagEagerDictRewrite) != 0) {
    if (frame.key_encoding != KeyEncoding::kDictionary) {
      valid_ = false;
      return CorruptionAt("eager-dict rewrite flagged without a dictionary");
    }
    // Dictionary entries sit length-prefixed and contiguous in the key
    // column (parsed just above), so each entry's key-wire form —
    // varint(len) || bytes, exactly what a rematerialized payload carries
    // per key — is the prefix-adjacent byte range. Collect those ranges
    // once so remat copies them verbatim instead of re-encoding per key.
    dict_wire_.clear();
    dict_wire_.reserve(block.dict.size());
    for (const Slice& entry : block.dict) {
      const size_t len = static_cast<size_t>(VarintLength(entry.size()));
      dict_wire_.emplace_back(entry.data() - len, entry.size() + len);
    }
    for (RecordRef& row : block.rows) {
      ac::Encoding enc;
      Slice rest;
      Status st = ac::GetEncoding(row.value, &enc, &rest);
      if (!st.ok()) {
        valid_ = false;
        return CorruptionAt("bad flagged payload: " + st.message());
      }
      if (enc != ac::Encoding::kEagerDict) continue;
      st = ac::RematerializeEagerDictPayload(rest, dict_wire_,
                                             &block.rematerialized,
                                             &row.value);
      if (!st.ok()) {
        valid_ = false;
        return CorruptionAt(st.message());
      }
    }
  }

  cur_ ^= 1;
  row_pos_ = 0;
  ++stats_.blocks;
  NotePeak();
  // Refill the window so the next source read overlaps with decoding.
  return FillReadahead();
}

Status ChunkReader::PositionAtRow() {
  while (row_pos_ >= current().rows.size()) {
    if (readahead_.empty()) {
      valid_ = false;
      return Status::OK();
    }
    ANTIMR_RETURN_NOT_OK(DecodeNextBlock());
  }
  const RecordRef& row = current().rows[row_pos_];
  key_ = row.key;
  value_ = row.value;
  valid_ = true;
  ++stats_.records;
  return Status::OK();
}

Status ChunkReader::Next() {
  ++row_pos_;
  return PositionAtRow();
}

Status ChunkReader::NextBatch(RecordBatch* batch, const BatchOptions& opts) {
  batch->clear();
  if (!valid_) return Status::OK();
  // The decoded block already holds the RecordRef views in order, so a
  // batch is one vector splice — no per-record re-positioning. Rows within
  // a block are sorted (the writer's contract) by the same order any
  // caller-supplied cmp imposes, so a stop_key bound is a search for the
  // first excluded row rather than a per-record check: gallop forward from
  // the cursor, then binary-search the last bracket, costing O(log run)
  // comparisons instead of O(log block) — merged runs are often a handful
  // of records (anti-combined inputs hold each key at most once per
  // stream). The batch never crosses a block boundary, keeping every view
  // in one buffer generation (valid until the decode a later call
  // triggers).
  const std::vector<RecordRef>& rows = current().rows;
  const auto begin = rows.begin() + static_cast<ptrdiff_t>(row_pos_);
  auto end = rows.end();
  if (opts.stop_key != nullptr) {
    const size_t n = static_cast<size_t>(end - begin);
    if (n == 0 || !opts.Admits(begin[0].key)) {
      return Status::OK();  // bound excludes the current row
    }
    size_t last_ok = 0;
    size_t probe = 1;
    while (probe < n && opts.Admits(begin[static_cast<ptrdiff_t>(probe)].key)) {
      last_ok = probe;
      probe <<= 1;
    }
    end = std::partition_point(
        begin + static_cast<ptrdiff_t>(last_ok + 1),
        begin + static_cast<ptrdiff_t>(std::min(probe, n)),
        [&opts](const RecordRef& row) { return opts.Admits(row.key); });
  }
  const size_t take =
      std::min(opts.max_records, static_cast<size_t>(end - begin));
  if (take == 0) return Status::OK();  // bound excludes the current row
  batch->insert(batch->end(), begin, begin + static_cast<ptrdiff_t>(take));
  stats_.records += take - 1;  // positioning already counted the first
  row_pos_ += take;
  return PositionAtRow();
}

Status OpenChunk(Env* env, const std::string& fname,
                 ChunkReader::Options options,
                 std::unique_ptr<ChunkReader>* reader) {
  std::unique_ptr<SequentialFile> file;
  ANTIMR_RETURN_NOT_OK(env->NewSequentialFile(fname, &file));
  if (options.name.empty()) options.name = fname;
  auto r = std::make_unique<ChunkReader>(std::move(file), std::move(options));
  ANTIMR_RETURN_NOT_OK(r->Open());
  *reader = std::move(r);
  return Status::OK();
}

}  // namespace antimr
