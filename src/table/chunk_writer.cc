#include "table/chunk_writer.h"

#include "anticombine/encoding.h"
#include "codec/crc32.h"
#include "common/coding.h"
#include "common/stopwatch.h"

namespace antimr {

ChunkWriter::ChunkWriter(std::unique_ptr<WritableFile> file, Options options)
    : writer_(std::move(file)), opts_(options) {
  if (opts_.block_bytes == 0) opts_.block_bytes = 64 * 1024;
}

Status ChunkWriter::EnsureMagic() {
  if (wrote_magic_) return Status::OK();
  wrote_magic_ = true;
  return writer_.Append(Slice(kChunkMagic, sizeof(kChunkMagic)));
}

Status ChunkWriter::Append(const Slice& key, const Slice& value) {
  rows_.push_back(opts_.assume_stable_inputs
                      ? RecordRef{key, value}
                      : stage_arena_.InternRecord(key, value));
  staged_raw_bytes_ += static_cast<uint64_t>(VarintLength(key.size())) +
                       key.size() +
                       static_cast<uint64_t>(VarintLength(value.size())) +
                       value.size();
  ++record_count_;
  if (staged_raw_bytes_ >= opts_.block_bytes) {
    return FlushBlock();
  }
  return Status::OK();
}

Status ChunkWriter::AppendBatch(const RecordBatch& batch) {
  for (const RecordRef& record : batch) {
    ANTIMR_RETURN_NOT_OK(Append(record.key, record.value));
  }
  return Status::OK();
}

void ChunkWriter::RewriteValues() {
  namespace ac = anticombine;
  // This loop runs once per staged record and probes the index once per
  // payload key, so the payload is costed in a single pointer walk — no
  // DecodeEagerPayload staging vector, no second encode-time parse of the
  // keys. The value and the one-byte flag + count header are common to
  // both forms, so the dict version wins iff its key bytes (ids, plus the
  // wire form of each unseen key the dictionary would adopt) end strictly
  // below the raw key bytes.
  for (size_t i = 0; i < rows_.size(); ++i) {
    const Slice original = rows_[i].value;
    const char* p = original.data();
    const char* const end = p + original.size();
    if (p == end || *p != static_cast<char>(ac::Encoding::kEager)) {
      continue;  // lazy / already-plain payloads pass through untouched
    }
    uint32_t n = 0;
    p = GetVarint32Ptr(p + 1, end, &n);
    if (p == nullptr || n == 0) continue;  // n = 0 gains nothing from ids
    parsed_ids_.clear();
    pending_dict_keys_.clear();
    size_t raw_key_bytes = 0;   // wire bytes the keys occupy today
    size_t id_bytes = 0;        // varint ids the rewrite would emit
    size_t entry_bytes = 0;     // wire bytes unseen keys add to the dict
    bool malformed = false;
    for (uint32_t k = 0; k < n; ++k) {
      uint32_t klen = 0;
      p = GetVarint32Ptr(p, end, &klen);
      if (p == nullptr || static_cast<size_t>(end - p) < klen) {
        malformed = true;  // pass through; the reader will report it
        break;
      }
      const Slice key(p, klen);
      const size_t wire = static_cast<size_t>(VarintLength(klen)) + klen;
      p += klen;
      raw_key_bytes += wire;
      uint32_t id = dict_index_.Find(dict_, key);
      if (id == DictKeyIndex::kNotFound) {
        // Check this record's own pending adoptions before minting another
        // id — a payload can repeat a key.
        for (uint32_t j = 0; j < pending_dict_keys_.size(); ++j) {
          if (pending_dict_keys_[j] == key) {
            id = static_cast<uint32_t>(dict_.size()) + j;
            break;
          }
        }
      }
      if (id == DictKeyIndex::kNotFound) {
        id = static_cast<uint32_t>(dict_.size() + pending_dict_keys_.size());
        pending_dict_keys_.push_back(key);
        entry_bytes += wire;
      }
      parsed_ids_.push_back(id);
      id_bytes += static_cast<size_t>(VarintLength(id));
      // Each remaining key costs the dict side at least one id byte; once
      // even zero further raw bytes cannot be beaten, stop probing.
      if (id_bytes + entry_bytes + (n - k - 1) >=
          raw_key_bytes + static_cast<size_t>(end - p)) {
        malformed = true;  // reuse the pass-through exit; not adopted
        break;
      }
    }
    if (malformed || id_bytes + entry_bytes >= raw_key_bytes) continue;
    for (const Slice& key : pending_dict_keys_) {
      dict_.push_back(key);
      dict_index_.Insert(dict_, static_cast<uint32_t>(dict_.size() - 1));
    }
    const Slice shared_value(p, static_cast<size_t>(end - p));
    const size_t payload_bytes = 1 +
                                 static_cast<size_t>(VarintLength(n)) +
                                 id_bytes + shared_value.size();
    char* dst = rewrite_arena_.Allocate(payload_bytes);
    ac::EncodeEagerDictPayloadTo(dst, parsed_ids_, shared_value);
    final_values_[i] = Slice(dst, payload_bytes);
    ++payload_rewrites_;
  }
}

Status ChunkWriter::FlushBlock() {
  if (rows_.empty()) return Status::OK();
  ANTIMR_RETURN_NOT_OK(EnsureMagic());
  const Slice min_key = rows_.front().key;
  const Slice max_key = rows_.back().key;

  // Dictionary over row keys, with the ids assigned in the same pass. Runs
  // are sorted, so equal keys are adjacent and one compare against the last
  // entry dedups them. (Unsorted input only costs duplicate entries; ids
  // still resolve to the right bytes.)
  dict_.clear();
  key_ids_.clear();
  key_ids_.reserve(rows_.size());
  size_t id_column_bytes = 0;
  size_t raw_column_bytes = 0;
  for (const RecordRef& row : rows_) {
    if (dict_.empty() || row.key != dict_.back()) dict_.push_back(row.key);
    const uint32_t id = static_cast<uint32_t>(dict_.size() - 1);
    key_ids_.push_back(id);
    id_column_bytes += static_cast<size_t>(VarintLength(id));
    raw_column_bytes +=
        static_cast<size_t>(VarintLength(row.key.size())) + row.key.size();
  }

  final_values_.clear();
  rewrite_arena_.Clear();
  for (const RecordRef& row : rows_) final_values_.push_back(row.value);
  const uint64_t rewrites_before = payload_rewrites_;
  if (opts_.rewrite_eager_payloads) {
    // Only the payload rewrite needs random-access key lookup; build the
    // hash index over the (deduped) entries, not over every row.
    dict_index_.Rebuild(dict_);
    RewriteValues();
  }
  const bool any_rewrite = payload_rewrites_ != rewrites_before;

  // Encoding choice: measured dictionary-column size (entries, now
  // including any the rewrite appended, plus ids) vs raw, except payload
  // rewrites force the dictionary (their ids resolve through it).
  size_t dict_column_bytes =
      static_cast<size_t>(VarintLength(dict_.size())) + id_column_bytes;
  for (const Slice& entry : dict_) {
    dict_column_bytes +=
        static_cast<size_t>(VarintLength(entry.size())) + entry.size();
  }
  const KeyEncoding key_encoding =
      any_rewrite || dict_column_bytes < raw_column_bytes
          ? KeyEncoding::kDictionary
          : KeyEncoding::kRaw;

  // Serialize the columns.
  key_buf_.clear();
  if (key_encoding == KeyEncoding::kDictionary) {
    PutVarint32(&key_buf_, static_cast<uint32_t>(dict_.size()));
    for (const Slice& entry : dict_) PutLengthPrefixed(&key_buf_, entry);
    for (uint32_t id : key_ids_) PutVarint32(&key_buf_, id);
    ++dict_blocks_;
  } else {
    for (const RecordRef& row : rows_) PutLengthPrefixed(&key_buf_, row.key);
  }
  val_buf_.clear();
  for (const Slice& value : final_values_) {
    PutLengthPrefixed(&val_buf_, value);
  }

  // Per-column, per-block codec choice: compress, keep only if smaller.
  CodecType key_codec = CodecType::kNone;
  CodecType value_codec = CodecType::kNone;
  const std::string* key_stored = &key_buf_;
  const std::string* val_stored = &val_buf_;
  if (opts_.codec != CodecType::kNone) {
    ScopedTimer t(&compress_nanos_);
    const Codec* codec = GetCodec(opts_.codec);
    ANTIMR_RETURN_NOT_OK(codec->Compress(key_buf_, &key_compressed_));
    if (key_compressed_.size() < key_buf_.size()) {
      key_codec = opts_.codec;
      key_stored = &key_compressed_;
    }
    ANTIMR_RETURN_NOT_OK(codec->Compress(val_buf_, &compressed_));
    if (compressed_.size() < val_buf_.size()) {
      value_codec = opts_.codec;
      val_stored = &compressed_;
    }
  }

  // Header, CRC-protected separately from the payload so header corruption
  // is caught before any length field is trusted.
  header_.clear();
  PutVarint64(&header_, rows_.size());
  header_.push_back(
      static_cast<char>(any_rewrite ? kBlockFlagEagerDictRewrite : 0));
  header_.push_back(static_cast<char>(key_encoding));
  header_.push_back(static_cast<char>(key_codec));
  header_.push_back(static_cast<char>(value_codec));
  PutVarint32(&header_, static_cast<uint32_t>(key_buf_.size()));
  PutVarint32(&header_, static_cast<uint32_t>(key_stored->size()));
  PutVarint32(&header_, static_cast<uint32_t>(val_buf_.size()));
  PutVarint32(&header_, static_cast<uint32_t>(val_stored->size()));
  PutLengthPrefixed(&header_, min_key);
  PutLengthPrefixed(&header_, max_key);
  uint32_t payload_crc = Crc32(0, *key_stored);
  payload_crc = Crc32(payload_crc, *val_stored);
  PutFixed32(&header_, payload_crc);
  PutFixed32(&header_, Crc32(0, header_));

  std::string len_prefix;
  PutFixed32(&len_prefix, static_cast<uint32_t>(header_.size()));
  ANTIMR_RETURN_NOT_OK(writer_.Append(len_prefix));
  ANTIMR_RETURN_NOT_OK(writer_.Append(header_));
  ANTIMR_RETURN_NOT_OK(writer_.Append(*key_stored));
  ANTIMR_RETURN_NOT_OK(writer_.Append(*val_stored));

  raw_bytes_ += staged_raw_bytes_;
  ++block_count_;
  rows_.clear();
  stage_arena_.Clear();
  staged_raw_bytes_ = 0;
  return Status::OK();
}

Status ChunkWriter::Finish() {
  ANTIMR_RETURN_NOT_OK(EnsureMagic());
  ANTIMR_RETURN_NOT_OK(FlushBlock());
  return writer_.Close();
}

}  // namespace antimr
