#include <cstring>
#include <map>
#include <mutex>

#include "io/env.h"

namespace antimr {
namespace {

struct FileState {
  std::string contents;
};

class MemEnv;

class MemWritableFile : public WritableFile {
 public:
  MemWritableFile(std::shared_ptr<FileState> state,
                  std::atomic<uint64_t>* bytes_written)
      : state_(std::move(state)), bytes_written_(bytes_written) {}

  Status Append(const Slice& data) override {
    state_->contents.append(data.data(), data.size());
    bytes_written_->fetch_add(data.size(), std::memory_order_relaxed);
    return Status::OK();
  }

  Status Close() override { return Status::OK(); }

 private:
  std::shared_ptr<FileState> state_;
  std::atomic<uint64_t>* bytes_written_;
};

class MemSequentialFile : public SequentialFile {
 public:
  MemSequentialFile(std::shared_ptr<FileState> state,
                    std::atomic<uint64_t>* bytes_read)
      : state_(std::move(state)), bytes_read_(bytes_read) {}

  Status Read(size_t n, Slice* result, char* scratch) override {
    const std::string& c = state_->contents;
    if (pos_ >= c.size()) {
      *result = Slice();
      return Status::OK();
    }
    const size_t avail = c.size() - pos_;
    const size_t take = n < avail ? n : avail;
    std::memcpy(scratch, c.data() + pos_, take);
    pos_ += take;
    bytes_read_->fetch_add(take, std::memory_order_relaxed);
    *result = Slice(scratch, take);
    return Status::OK();
  }

  Status Skip(uint64_t n) override {
    const size_t avail = state_->contents.size() - pos_;
    pos_ += n < avail ? static_cast<size_t>(n) : avail;
    return Status::OK();
  }

 private:
  std::shared_ptr<FileState> state_;
  std::atomic<uint64_t>* bytes_read_;
  size_t pos_ = 0;
};

class MemRandomAccessFile : public RandomAccessFile {
 public:
  MemRandomAccessFile(std::shared_ptr<FileState> state,
                      std::atomic<uint64_t>* bytes_read)
      : state_(std::move(state)), bytes_read_(bytes_read) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    const std::string& c = state_->contents;
    if (offset >= c.size()) {
      *result = Slice();
      return Status::OK();
    }
    const size_t avail = c.size() - static_cast<size_t>(offset);
    const size_t take = n < avail ? n : avail;
    std::memcpy(scratch, c.data() + offset, take);
    bytes_read_->fetch_add(take, std::memory_order_relaxed);
    *result = Slice(scratch, take);
    return Status::OK();
  }

 private:
  std::shared_ptr<FileState> state_;
  std::atomic<uint64_t>* bytes_read_;
};

class MemEnv : public Env {
 public:
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* file) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto state = std::make_shared<FileState>();
    files_[fname] = state;
    files_created_.fetch_add(1, std::memory_order_relaxed);
    *file = std::make_unique<MemWritableFile>(std::move(state), &bytes_written_);
    return Status::OK();
  }

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* file) override {
    auto state = Find(fname);
    if (!state) return Status::NotFound(fname);
    *file = std::make_unique<MemSequentialFile>(std::move(state), &bytes_read_);
    return Status::OK();
  }

  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* file) override {
    auto state = Find(fname);
    if (!state) return Status::NotFound(fname);
    *file =
        std::make_unique<MemRandomAccessFile>(std::move(state), &bytes_read_);
    return Status::OK();
  }

  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    auto state = Find(fname);
    if (!state) return Status::NotFound(fname);
    *size = state->contents.size();
    return Status::OK();
  }

  Status DeleteFile(const std::string& fname) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(fname);
    if (it == files_.end()) return Status::NotFound(fname);
    files_.erase(it);
    files_deleted_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }

  bool FileExists(const std::string& fname) override {
    std::lock_guard<std::mutex> lock(mu_);
    return files_.count(fname) > 0;
  }

  Status ListFiles(std::vector<std::string>* names) override {
    std::lock_guard<std::mutex> lock(mu_);
    names->clear();
    for (const auto& [name, state] : files_) names->push_back(name);
    return Status::OK();
  }

  IoStats stats() const override {
    IoStats s;
    s.bytes_written = bytes_written_.load(std::memory_order_relaxed);
    s.bytes_read = bytes_read_.load(std::memory_order_relaxed);
    s.files_created = files_created_.load(std::memory_order_relaxed);
    s.files_deleted = files_deleted_.load(std::memory_order_relaxed);
    return s;
  }

  void ResetStats() override {
    bytes_written_.store(0, std::memory_order_relaxed);
    bytes_read_.store(0, std::memory_order_relaxed);
    files_created_.store(0, std::memory_order_relaxed);
    files_deleted_.store(0, std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<FileState> Find(const std::string& fname) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(fname);
    return it == files_.end() ? nullptr : it->second;
  }

  std::mutex mu_;
  std::map<std::string, std::shared_ptr<FileState>> files_;
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> files_created_{0};
  std::atomic<uint64_t> files_deleted_{0};
};

}  // namespace

std::unique_ptr<Env> NewMemEnv() { return std::make_unique<MemEnv>(); }

}  // namespace antimr
