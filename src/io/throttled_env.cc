#include "io/throttled_env.h"

#include <chrono>
#include <thread>

namespace antimr {

void SleepForBytes(uint64_t bytes, double mb_per_s) {
  if (mb_per_s <= 0 || bytes == 0) return;
  const double seconds =
      static_cast<double>(bytes) / (mb_per_s * 1024.0 * 1024.0);
  std::this_thread::sleep_for(
      std::chrono::nanoseconds(static_cast<int64_t>(seconds * 1e9)));
}

namespace {

// Accumulates charged bytes and sleeps once per ~64 KiB quantum instead of
// once per operation. A real disk's cost is proportional to bytes moved, but
// sleep_for() has a scheduler-granularity floor (tens of microseconds), so
// sleeping per op overcharges fine-grained access patterns — e.g. the
// columnar reader's 4-byte frame headers, or record-at-a-time probes — by
// orders of magnitude. Batching the sleep keeps the simulated time
// proportional to bytes regardless of op size. Call Flush() at a natural
// stream boundary (Close, EOF) to charge the sub-quantum tail.
class ByteThrottle {
 public:
  explicit ByteThrottle(double mb_per_s) : mb_per_s_(mb_per_s) {}

  void Charge(uint64_t bytes) {
    if (mb_per_s_ <= 0) return;
    pending_ += bytes;
    if (pending_ >= kQuantumBytes) {
      SleepForBytes(pending_, mb_per_s_);
      pending_ = 0;
    }
  }

  void Flush() {
    if (mb_per_s_ <= 0 || pending_ == 0) return;
    SleepForBytes(pending_, mb_per_s_);
    pending_ = 0;
  }

 private:
  static constexpr uint64_t kQuantumBytes = 64 * 1024;
  uint64_t pending_ = 0;
  double mb_per_s_;
};

class ThrottledWritableFile : public WritableFile {
 public:
  ThrottledWritableFile(std::unique_ptr<WritableFile> base, double mb_per_s)
      : base_(std::move(base)), throttle_(mb_per_s) {}

  Status Append(const Slice& data) override {
    throttle_.Charge(data.size());
    return base_->Append(data);
  }
  Status Close() override {
    throttle_.Flush();
    return base_->Close();
  }

 private:
  std::unique_ptr<WritableFile> base_;
  ByteThrottle throttle_;
};

class ThrottledSequentialFile : public SequentialFile {
 public:
  ThrottledSequentialFile(std::unique_ptr<SequentialFile> base,
                          double mb_per_s)
      : base_(std::move(base)), throttle_(mb_per_s) {}

  Status Read(size_t n, Slice* result, char* scratch) override {
    Status st = base_->Read(n, result, scratch);
    if (st.ok()) {
      if (result->empty()) {
        throttle_.Flush();  // EOF: charge the sub-quantum tail
      } else {
        throttle_.Charge(result->size());
      }
    }
    return st;
  }
  Status Skip(uint64_t n) override { return base_->Skip(n); }

 private:
  std::unique_ptr<SequentialFile> base_;
  ByteThrottle throttle_;
};

class ThrottledRandomAccessFile : public RandomAccessFile {
 public:
  ThrottledRandomAccessFile(std::unique_ptr<RandomAccessFile> base,
                            double mb_per_s)
      : base_(std::move(base)), throttle_(mb_per_s) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    Status st = base_->Read(offset, n, result, scratch);
    // Random-access handles have no close/EOF boundary; a sub-quantum tail
    // held at destruction goes uncharged (bounded simulation error <64 KiB).
    if (st.ok()) throttle_.Charge(result->size());
    return st;
  }

 private:
  std::unique_ptr<RandomAccessFile> base_;
  mutable ByteThrottle throttle_;
};

class ThrottledEnv : public Env {
 public:
  ThrottledEnv(Env* base, double mb_per_s)
      : base_(base), mb_per_s_(mb_per_s) {}

  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* file) override {
    std::unique_ptr<WritableFile> inner;
    ANTIMR_RETURN_NOT_OK(base_->NewWritableFile(fname, &inner));
    *file = std::make_unique<ThrottledWritableFile>(std::move(inner),
                                                    mb_per_s_);
    return Status::OK();
  }

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* file) override {
    std::unique_ptr<SequentialFile> inner;
    ANTIMR_RETURN_NOT_OK(base_->NewSequentialFile(fname, &inner));
    *file = std::make_unique<ThrottledSequentialFile>(std::move(inner),
                                                      mb_per_s_);
    return Status::OK();
  }

  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* file) override {
    std::unique_ptr<RandomAccessFile> inner;
    ANTIMR_RETURN_NOT_OK(base_->NewRandomAccessFile(fname, &inner));
    *file = std::make_unique<ThrottledRandomAccessFile>(std::move(inner),
                                                        mb_per_s_);
    return Status::OK();
  }

  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    return base_->GetFileSize(fname, size);
  }
  Status DeleteFile(const std::string& fname) override {
    // Untouched passthrough: the base Env's errno-derived Status code
    // (NotFound vs transient IOError) must reach the retry classifier.
    return base_->DeleteFile(fname);
  }
  bool FileExists(const std::string& fname) override {
    return base_->FileExists(fname);
  }
  Status ListFiles(std::vector<std::string>* names) override {
    return base_->ListFiles(names);
  }
  IoStats stats() const override { return base_->stats(); }
  void ResetStats() override { base_->ResetStats(); }

 private:
  Env* base_;
  double mb_per_s_;
};

}  // namespace

std::unique_ptr<Env> NewThrottledEnv(Env* base, double disk_mb_per_s) {
  return std::make_unique<ThrottledEnv>(base, disk_mb_per_s);
}

}  // namespace antimr
