#include "io/throttled_env.h"

#include <chrono>
#include <thread>

namespace antimr {

void SleepForBytes(uint64_t bytes, double mb_per_s) {
  if (mb_per_s <= 0 || bytes == 0) return;
  const double seconds =
      static_cast<double>(bytes) / (mb_per_s * 1024.0 * 1024.0);
  std::this_thread::sleep_for(
      std::chrono::nanoseconds(static_cast<int64_t>(seconds * 1e9)));
}

namespace {

class ThrottledWritableFile : public WritableFile {
 public:
  ThrottledWritableFile(std::unique_ptr<WritableFile> base, double mb_per_s)
      : base_(std::move(base)), mb_per_s_(mb_per_s) {}

  Status Append(const Slice& data) override {
    SleepForBytes(data.size(), mb_per_s_);
    return base_->Append(data);
  }
  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<WritableFile> base_;
  double mb_per_s_;
};

class ThrottledSequentialFile : public SequentialFile {
 public:
  ThrottledSequentialFile(std::unique_ptr<SequentialFile> base,
                          double mb_per_s)
      : base_(std::move(base)), mb_per_s_(mb_per_s) {}

  Status Read(size_t n, Slice* result, char* scratch) override {
    Status st = base_->Read(n, result, scratch);
    if (st.ok()) SleepForBytes(result->size(), mb_per_s_);
    return st;
  }
  Status Skip(uint64_t n) override { return base_->Skip(n); }

 private:
  std::unique_ptr<SequentialFile> base_;
  double mb_per_s_;
};

class ThrottledRandomAccessFile : public RandomAccessFile {
 public:
  ThrottledRandomAccessFile(std::unique_ptr<RandomAccessFile> base,
                            double mb_per_s)
      : base_(std::move(base)), mb_per_s_(mb_per_s) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    Status st = base_->Read(offset, n, result, scratch);
    if (st.ok()) SleepForBytes(result->size(), mb_per_s_);
    return st;
  }

 private:
  std::unique_ptr<RandomAccessFile> base_;
  double mb_per_s_;
};

class ThrottledEnv : public Env {
 public:
  ThrottledEnv(Env* base, double mb_per_s)
      : base_(base), mb_per_s_(mb_per_s) {}

  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* file) override {
    std::unique_ptr<WritableFile> inner;
    ANTIMR_RETURN_NOT_OK(base_->NewWritableFile(fname, &inner));
    *file = std::make_unique<ThrottledWritableFile>(std::move(inner),
                                                    mb_per_s_);
    return Status::OK();
  }

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* file) override {
    std::unique_ptr<SequentialFile> inner;
    ANTIMR_RETURN_NOT_OK(base_->NewSequentialFile(fname, &inner));
    *file = std::make_unique<ThrottledSequentialFile>(std::move(inner),
                                                      mb_per_s_);
    return Status::OK();
  }

  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* file) override {
    std::unique_ptr<RandomAccessFile> inner;
    ANTIMR_RETURN_NOT_OK(base_->NewRandomAccessFile(fname, &inner));
    *file = std::make_unique<ThrottledRandomAccessFile>(std::move(inner),
                                                        mb_per_s_);
    return Status::OK();
  }

  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    return base_->GetFileSize(fname, size);
  }
  Status DeleteFile(const std::string& fname) override {
    // Untouched passthrough: the base Env's errno-derived Status code
    // (NotFound vs transient IOError) must reach the retry classifier.
    return base_->DeleteFile(fname);
  }
  bool FileExists(const std::string& fname) override {
    return base_->FileExists(fname);
  }
  Status ListFiles(std::vector<std::string>* names) override {
    return base_->ListFiles(names);
  }
  IoStats stats() const override { return base_->stats(); }
  void ResetStats() override { base_->ResetStats(); }

 private:
  Env* base_;
  double mb_per_s_;
};

}  // namespace

std::unique_ptr<Env> NewThrottledEnv(Env* base, double disk_mb_per_s) {
  return std::make_unique<ThrottledEnv>(base, disk_mb_per_s);
}

}  // namespace antimr
