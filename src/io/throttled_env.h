// Bandwidth-throttled Env wrapper: the simulated cluster's "hardware".
// The paper ran on 7.2K-RPM SATA disks and a shared gigabit switch, where
// moving bytes — not CPU — dominated job runtime. Wrapping a node's Env (and
// sleeping on shuffle transfers) reproduces that regime so runtime-shaped
// claims (e.g., Figure 12's "runtime tracks map output size") can be
// observed at laptop scale.
#ifndef ANTIMR_IO_THROTTLED_ENV_H_
#define ANTIMR_IO_THROTTLED_ENV_H_

#include <memory>

#include "io/env.h"

namespace antimr {

/// Block the calling thread for the time `bytes` would take at
/// `mb_per_s` megabytes/second. No-op when mb_per_s <= 0.
void SleepForBytes(uint64_t bytes, double mb_per_s);

/// Wrap `base` (not owned) so every file read/write pays simulated disk
/// time at the given bandwidth. Charges accumulate and sleep once per
/// ~64 KiB quantum (flushed at Close/EOF), so many small operations cost
/// the same simulated time as one batched operation over the same bytes.
std::unique_ptr<Env> NewThrottledEnv(Env* base, double disk_mb_per_s);

}  // namespace antimr

#endif  // ANTIMR_IO_THROTTLED_ENV_H_
