#include "io/merger.h"

namespace antimr {

int BytewiseCompare(const Slice& a, const Slice& b) { return a.compare(b); }

MergingStream::MergingStream(std::vector<std::unique_ptr<KVStream>> inputs,
                             KeyComparator cmp)
    : inputs_(std::move(inputs)), cmp_(std::move(cmp)) {
  InitHeap();
}

void MergingStream::InitHeap() {
  heap_.clear();
  for (size_t i = 0; i < inputs_.size(); ++i) {
    if (inputs_[i]->Valid()) heap_.push_back(static_cast<int>(i));
  }
  if (heap_.empty()) {
    current_ = -1;
    return;
  }
  for (size_t i = heap_.size(); i-- > 0;) SiftDown(i);
  current_ = heap_[0];
}

bool MergingStream::HeapLess(int a, int b) const {
  const int c = cmp_(inputs_[a]->key(), inputs_[b]->key());
  if (c != 0) return c < 0;
  return a < b;  // stability tie-break
}

void MergingStream::SiftDown(size_t i) {
  const size_t n = heap_.size();
  while (true) {
    const size_t l = 2 * i + 1;
    const size_t r = 2 * i + 2;
    size_t smallest = i;
    if (l < n && HeapLess(heap_[l], heap_[smallest])) smallest = l;
    if (r < n && HeapLess(heap_[r], heap_[smallest])) smallest = r;
    if (smallest == i) break;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

Status MergingStream::Next() {
  if (current_ < 0) return Status::OK();
  KVStream* top = inputs_[heap_[0]].get();
  ANTIMR_RETURN_NOT_OK(top->Next());
  if (!top->Valid()) {
    heap_[0] = heap_.back();
    heap_.pop_back();
  }
  if (heap_.empty()) {
    current_ = -1;
    return Status::OK();
  }
  SiftDown(0);
  current_ = heap_[0];
  return Status::OK();
}

}  // namespace antimr
