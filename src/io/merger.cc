#include "io/merger.h"

namespace antimr {

int BytewiseCompare(const Slice& a, const Slice& b) { return a.compare(b); }

MergingStream::MergingStream(std::vector<std::unique_ptr<KVStream>> inputs,
                             KeyComparator cmp)
    : inputs_(std::move(inputs)), cmp_(std::move(cmp)) {
  // Most jobs merge with a plain-function comparator (byte order above
  // all); skipping the std::function dispatch for that case matters in
  // HeapLess and in producers' Admits checks, which run several times per
  // record.
  if (const auto* target =
          cmp_.target<int (*)(const Slice&, const Slice&)>()) {
    raw_cmp_ = *target;
    bytewise_ = raw_cmp_ == &BytewiseCompare;
  }
  eager_inputs_ = true;
  for (const auto& input : inputs_) {
    if (!input->SupportsEagerBatches()) {
      eager_inputs_ = false;
      break;
    }
  }
  InitHeap();
}

void MergingStream::InitHeap() {
  drained_in_.assign(inputs_.size(), 0);
  if (eager_inputs_) run_.reserve(kDefaultBatchRecords);
  heap_.clear();
  for (size_t i = 0; i < inputs_.size(); ++i) {
    if (inputs_[i]->Valid()) heap_.push_back(static_cast<int>(i));
  }
  if (heap_.empty()) {
    current_ = -1;
    return;
  }
  for (size_t i = heap_.size(); i-- > 0;) SiftDown(i);
  current_ = heap_[0];
}

bool MergingStream::HeapLess(int a, int b) const {
  const Slice ka = inputs_[a]->key();
  const Slice kb = inputs_[b]->key();
  const int c = bytewise_ ? ka.compare(kb) : cmp_(ka, kb);
  if (c != 0) return c < 0;
  return a < b;  // stability tie-break
}

void MergingStream::SiftDown(size_t i) {
  const size_t n = heap_.size();
  while (true) {
    const size_t l = 2 * i + 1;
    const size_t r = 2 * i + 2;
    size_t smallest = i;
    if (l < n && HeapLess(heap_[l], heap_[smallest])) smallest = l;
    if (r < n && HeapLess(heap_[r], heap_[smallest])) smallest = r;
    if (smallest == i) break;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

Status MergingStream::Next() {
  if (current_ < 0) return Status::OK();
  KVStream* top = inputs_[heap_[0]].get();
  ANTIMR_RETURN_NOT_OK(top->Next());
  if (!top->Valid()) {
    heap_[0] = heap_.back();
    heap_.pop_back();
  }
  if (heap_.empty()) {
    current_ = -1;
    return Status::OK();
  }
  SiftDown(0);
  current_ = heap_[0];
  return Status::OK();
}

Status MergingStream::NextBatch(RecordBatch* batch, const BatchOptions& opts) {
  if (!eager_inputs_) return KVStream::NextBatch(batch, opts);
  batch->clear();
  if (current_ < 0 || opts.max_records == 0 || !opts.Admits(key())) {
    return Status::OK();
  }

  // Multi-run batch: keep draining the current winner until a stream would
  // have to produce twice. Views from a stream die at its next call
  // (record_batch.h), so each input contributes at most one run per merged
  // batch; that run is bounded by the second-best head exactly as the
  // record-wise merge would bound it, so concatenated runs reproduce the
  // record-wise output byte for byte. When runs are short (anti-combined
  // segments hold each key once per input), this still packs one record per
  // input into the batch instead of degrading to one record per call.
  ++drain_gen_;
  while (current_ >= 0 && batch->size() < opts.max_records &&
         opts.Admits(key())) {
    const int winner = heap_[0];
    if (drained_in_[winner] == drain_gen_) break;  // earlier views must live
    drained_in_[winner] = drain_gen_;

    // The winner may emit every record strictly below the second-best head
    // (including equals when the winner is the lower-indexed input — the
    // same tie-break HeapLess applies) without changing merge order.
    BatchOptions inner;
    inner.max_records = opts.max_records - batch->size();
    inner.cmp = &cmp_;
    inner.raw_cmp = raw_cmp_;
    Slice second_key;
    if (heap_.size() >= 2) {
      int second = heap_[1];
      if (heap_.size() >= 3 && HeapLess(heap_[2], second)) second = heap_[2];
      second_key = inputs_[second]->key();
      inner.stop_key = &second_key;
      inner.take_equal = winner < second;
    }
    // Tighten by the caller's bound, if any.
    if (opts.stop_key != nullptr) {
      if (inner.stop_key == nullptr) {
        inner.stop_key = opts.stop_key;
        inner.take_equal = opts.take_equal;
      } else {
        const int c = cmp_(*opts.stop_key, *inner.stop_key);
        if (c < 0 || (c == 0 && !opts.take_equal)) {
          inner.stop_key = opts.stop_key;
          inner.take_equal = opts.take_equal;
        }
      }
    }

    KVStream* win = inputs_[winner].get();
    ANTIMR_RETURN_NOT_OK(win->NextBatch(&run_, inner));
    batch->insert(batch->end(), run_.begin(), run_.end());
    // Fix the heap exactly as Next() would after advancing the top stream.
    if (!win->Valid()) {
      heap_[0] = heap_.back();
      heap_.pop_back();
    }
    if (heap_.empty()) {
      current_ = -1;
      break;
    }
    SiftDown(0);
    current_ = heap_[0];
    if (run_.empty()) break;  // defensive: a valid winner always yields
  }
  return Status::OK();
}

}  // namespace antimr
