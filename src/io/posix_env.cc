#include <cerrno>
#include <cstdio>
#include <cstring>
#include <mutex>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include "io/env.h"

namespace antimr {
namespace {

Status PosixError(const std::string& context, int err) {
  return Status::IOError(context + ": " + std::strerror(err));
}

/// Map a failed path-taking syscall to the right Status code: only a
/// genuinely missing file is NotFound; everything else (EIO, EACCES, ...)
/// is an IOError. Collapsing all errno values to NotFound would misreport
/// real I/O faults and starve the retry layer, which treats NotFound as
/// permanent but IOError as transient.
Status PosixPathError(const std::string& context, const std::string& fname,
                      int err) {
  if (err == ENOENT) return Status::NotFound(fname);
  return PosixError(context + " " + fname, err);
}

// File names may contain '/'; they are flattened to a single path component
// under the root so the Env does not need recursive directory management.
std::string Mangle(const std::string& fname) {
  std::string out = fname;
  for (char& c : out) {
    if (c == '/') c = '_';
  }
  return out;
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(FILE* f, std::atomic<uint64_t>* bytes_written)
      : f_(f), bytes_written_(bytes_written) {}
  ~PosixWritableFile() override {
    if (f_ != nullptr) std::fclose(f_);
  }

  Status Append(const Slice& data) override {
    if (std::fwrite(data.data(), 1, data.size(), f_) != data.size()) {
      return PosixError("fwrite", errno);
    }
    bytes_written_->fetch_add(data.size(), std::memory_order_relaxed);
    return Status::OK();
  }

  Status Close() override {
    if (f_ != nullptr && std::fclose(f_) != 0) {
      f_ = nullptr;
      return PosixError("fclose", errno);
    }
    f_ = nullptr;
    return Status::OK();
  }

 private:
  FILE* f_;
  std::atomic<uint64_t>* bytes_written_;
};

class PosixSequentialFile : public SequentialFile {
 public:
  PosixSequentialFile(FILE* f, std::atomic<uint64_t>* bytes_read)
      : f_(f), bytes_read_(bytes_read) {}
  ~PosixSequentialFile() override { std::fclose(f_); }

  Status Read(size_t n, Slice* result, char* scratch) override {
    const size_t got = std::fread(scratch, 1, n, f_);
    if (got < n && std::ferror(f_)) return PosixError("fread", errno);
    bytes_read_->fetch_add(got, std::memory_order_relaxed);
    *result = Slice(scratch, got);
    return Status::OK();
  }

  Status Skip(uint64_t n) override {
    if (std::fseek(f_, static_cast<long>(n), SEEK_CUR) != 0) {
      return PosixError("fseek", errno);
    }
    return Status::OK();
  }

 private:
  FILE* f_;
  std::atomic<uint64_t>* bytes_read_;
};

class PosixRandomAccessFile : public RandomAccessFile {
 public:
  PosixRandomAccessFile(int fd, std::atomic<uint64_t>* bytes_read)
      : fd_(fd), bytes_read_(bytes_read) {}
  ~PosixRandomAccessFile() override { ::close(fd_); }

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    const ssize_t got = ::pread(fd_, scratch, n, static_cast<off_t>(offset));
    if (got < 0) return PosixError("pread", errno);
    bytes_read_->fetch_add(static_cast<uint64_t>(got),
                           std::memory_order_relaxed);
    *result = Slice(scratch, static_cast<size_t>(got));
    return Status::OK();
  }

 private:
  int fd_;
  std::atomic<uint64_t>* bytes_read_;
};

class PosixEnv : public Env {
 public:
  explicit PosixEnv(std::string root) : root_(std::move(root)) {
    ::mkdir(root_.c_str(), 0755);
  }

  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* file) override {
    FILE* f = std::fopen(Path(fname).c_str(), "wb");
    if (f == nullptr) return PosixError("fopen " + fname, errno);
    files_created_.fetch_add(1, std::memory_order_relaxed);
    *file = std::make_unique<PosixWritableFile>(f, &bytes_written_);
    return Status::OK();
  }

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* file) override {
    FILE* f = std::fopen(Path(fname).c_str(), "rb");
    if (f == nullptr) return PosixPathError("fopen", fname, errno);
    *file = std::make_unique<PosixSequentialFile>(f, &bytes_read_);
    return Status::OK();
  }

  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* file) override {
    int fd = ::open(Path(fname).c_str(), O_RDONLY);
    if (fd < 0) return PosixPathError("open", fname, errno);
    *file = std::make_unique<PosixRandomAccessFile>(fd, &bytes_read_);
    return Status::OK();
  }

  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    struct stat st;
    if (::stat(Path(fname).c_str(), &st) != 0) {
      return PosixPathError("stat", fname, errno);
    }
    *size = static_cast<uint64_t>(st.st_size);
    return Status::OK();
  }

  Status DeleteFile(const std::string& fname) override {
    if (::unlink(Path(fname).c_str()) != 0) {
      return PosixPathError("unlink", fname, errno);
    }
    files_deleted_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }

  bool FileExists(const std::string& fname) override {
    struct stat st;
    return ::stat(Path(fname).c_str(), &st) == 0;
  }

  Status ListFiles(std::vector<std::string>* names) override {
    names->clear();
    DIR* dir = ::opendir(root_.c_str());
    if (dir == nullptr) return PosixError("opendir " + root_, errno);
    while (dirent* ent = ::readdir(dir)) {
      const std::string name = ent->d_name;
      if (name != "." && name != "..") names->push_back(name);
    }
    ::closedir(dir);
    return Status::OK();
  }

  IoStats stats() const override {
    IoStats s;
    s.bytes_written = bytes_written_.load(std::memory_order_relaxed);
    s.bytes_read = bytes_read_.load(std::memory_order_relaxed);
    s.files_created = files_created_.load(std::memory_order_relaxed);
    s.files_deleted = files_deleted_.load(std::memory_order_relaxed);
    return s;
  }

  void ResetStats() override {
    bytes_written_.store(0, std::memory_order_relaxed);
    bytes_read_.store(0, std::memory_order_relaxed);
    files_created_.store(0, std::memory_order_relaxed);
    files_deleted_.store(0, std::memory_order_relaxed);
  }

 private:
  std::string Path(const std::string& fname) const {
    return root_ + "/" + Mangle(fname);
  }

  std::string root_;
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> files_created_{0};
  std::atomic<uint64_t> files_deleted_{0};
};

}  // namespace

std::unique_ptr<Env> NewPosixEnv(const std::string& root_dir) {
  return std::make_unique<PosixEnv>(root_dir);
}

}  // namespace antimr
