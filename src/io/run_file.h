// Sorted-run file format and streams. A "run" is a sequence of key/value
// records sorted by key: varint(klen) key varint(vlen) value, repeated. Map
// spills, merged map output partitions, and Shared spills all use this
// format, mirroring Hadoop's IFile.
#ifndef ANTIMR_IO_RUN_FILE_H_
#define ANTIMR_IO_RUN_FILE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "io/buffered_io.h"
#include "io/env.h"

namespace antimr {

/// \brief Forward iteration over a sorted key/value sequence.
///
/// A freshly constructed stream is positioned at its first record; Valid()
/// is false when exhausted. key()/value() views are valid until the next
/// call to Next().
class KVStream {
 public:
  virtual ~KVStream() = default;
  virtual bool Valid() const = 0;
  virtual Slice key() const = 0;
  virtual Slice value() const = 0;
  virtual Status Next() = 0;
};

/// \brief Appends key/value records to a run file.
class RunWriter {
 public:
  explicit RunWriter(std::unique_ptr<WritableFile> file);

  Status Add(const Slice& key, const Slice& value);
  Status Close();

  uint64_t bytes_written() const { return writer_.bytes_written(); }
  uint64_t record_count() const { return record_count_; }

 private:
  BufferedWriter writer_;
  uint64_t record_count_ = 0;
};

/// \brief KVStream over a run file.
class RunReader : public KVStream {
 public:
  explicit RunReader(std::unique_ptr<SequentialFile> file);

  /// Position at the first record. Must be called once before use.
  Status Open();

  bool Valid() const override { return valid_; }
  Slice key() const override { return key_; }
  Slice value() const override { return value_; }
  Status Next() override;

 private:
  BufferedReader reader_;
  std::string key_;
  std::string value_;
  bool valid_ = false;
};

/// \brief KVStream over an in-memory vector of records (borrowed).
class VectorStream : public KVStream {
 public:
  explicit VectorStream(const std::vector<std::pair<std::string, std::string>>* records)
      : records_(records) {}

  bool Valid() const override { return pos_ < records_->size(); }
  Slice key() const override { return (*records_)[pos_].first; }
  Slice value() const override { return (*records_)[pos_].second; }
  Status Next() override {
    ++pos_;
    return Status::OK();
  }

 private:
  const std::vector<std::pair<std::string, std::string>>* records_;
  size_t pos_ = 0;
};

/// \brief KVStream over an owned buffer of run-format bytes.
///
/// Used for decompressed spill segments: the segment is inflated into a
/// string and parsed in place without further copies.
class StringRunStream : public KVStream {
 public:
  /// Takes ownership of `data`; call Open() before use.
  explicit StringRunStream(std::string data) : data_(std::move(data)) {}

  Status Open() { return Next(); }

  bool Valid() const override { return valid_; }
  Slice key() const override { return key_; }
  Slice value() const override { return value_; }
  Status Next() override;

 private:
  std::string data_;
  size_t pos_ = 0;
  Slice key_;
  Slice value_;
  bool valid_ = false;
};

/// Convenience: open a run file on `env` and return a positioned reader.
Status OpenRun(Env* env, const std::string& fname,
               std::unique_ptr<KVStream>* stream);

/// Read an entire file into *out (counted as disk read by the Env).
Status ReadFileToString(Env* env, const std::string& fname, std::string* out);

}  // namespace antimr

#endif  // ANTIMR_IO_RUN_FILE_H_
