// Sorted-run file format and streams. A "run" is a sequence of key/value
// records sorted by key: varint(klen) key varint(vlen) value, repeated. Map
// spills, merged map output partitions, and Shared spills all use this
// format, mirroring Hadoop's IFile.
//
// Shuffle segments add a block layer on top (BlockRunWriter/BlockRunReader):
// the run is cut into ~block_bytes chunks at record boundaries, and each
// chunk is independently compressed and framed as
//
//   varint(raw_len) varint(stored_len) fixed32(crc32 of stored bytes) payload
//
// after a 4-byte magic. Readers decompress one block at a time with a bounded
// readahead window, so segment consumption needs O(block) memory instead of
// O(segment), and corruption is caught per block by the CRC before any bytes
// are decoded.
#ifndef ANTIMR_IO_RUN_FILE_H_
#define ANTIMR_IO_RUN_FILE_H_

#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "codec/codec.h"
#include "common/record_batch.h"
#include "common/slice.h"
#include "common/status.h"
#include "io/buffered_io.h"
#include "io/env.h"

namespace antimr {

/// \brief Forward iteration over a sorted key/value sequence.
///
/// A freshly constructed stream is positioned at its first record; Valid()
/// is false when exhausted. key()/value() views are valid until the next
/// call to Next().
///
/// Batch consumption: NextBatch drains up to opts.max_records (within the
/// optional key bound) into `batch`; every view in the batch is valid until
/// the NEXT call on this stream, and an empty batch means exhaustion (or a
/// bound that excludes the head). A stream is consumed either record-wise
/// or batch-wise — interleaving the two is undefined, because the default
/// adapter defers the underlying Next() to the start of the following call
/// so the single record it returned stays alive for the caller.
class KVStream {
 public:
  virtual ~KVStream() = default;
  virtual bool Valid() const = 0;
  virtual Slice key() const = 0;
  virtual Slice value() const = 0;
  virtual Status Next() = 0;

  /// Fill `batch` (cleared first) with the next records. The base
  /// implementation returns one record per call via the deferred-advance
  /// adapter; stable-storage streams override it to return real batches.
  virtual Status NextBatch(RecordBatch* batch, const BatchOptions& opts);

  /// True when NextBatch advances the stream eagerly: after the call,
  /// Valid()/key() describe the first record NOT in the batch, and batch
  /// views survive that advance. The k-way merge requires this of its
  /// inputs to vectorize; deferred-advance streams (the base adapter)
  /// return false and merge record-wise.
  virtual bool SupportsEagerBatches() const { return false; }

 private:
  bool batch_advance_pending_ = false;  ///< base NextBatch adapter state
};

/// \brief Appends key/value records to a run file.
class RunWriter {
 public:
  explicit RunWriter(std::unique_ptr<WritableFile> file);

  Status Add(const Slice& key, const Slice& value);
  Status Close();

  uint64_t bytes_written() const { return writer_.bytes_written(); }
  uint64_t record_count() const { return record_count_; }

 private:
  BufferedWriter writer_;
  uint64_t record_count_ = 0;
};

/// \brief KVStream over a run file.
///
/// Zero-copy: key()/value() view the reader's buffer (per the KVStream
/// contract, valid until the next Next()); records are never materialized
/// into owning strings on the read path.
class RunReader : public KVStream {
 public:
  explicit RunReader(std::unique_ptr<SequentialFile> file);

  /// Position at the first record. Must be called once before use.
  Status Open();

  bool Valid() const override { return valid_; }
  Slice key() const override { return key_; }
  Slice value() const override { return value_; }
  Status Next() override;

 private:
  BufferedReader reader_;
  Slice key_;
  Slice value_;
  bool valid_ = false;
};

/// \brief KVStream over an in-memory vector of records (borrowed).
class VectorStream : public KVStream {
 public:
  explicit VectorStream(const std::vector<std::pair<std::string, std::string>>* records)
      : records_(records) {}

  bool Valid() const override { return pos_ < records_->size(); }
  Slice key() const override { return (*records_)[pos_].first; }
  Slice value() const override { return (*records_)[pos_].second; }
  Status Next() override {
    ++pos_;
    return Status::OK();
  }

  /// Eager batches: the borrowed vector outlives the stream, so views
  /// survive any number of advances.
  Status NextBatch(RecordBatch* batch, const BatchOptions& opts) override {
    batch->clear();
    while (Valid() && batch->size() < opts.max_records &&
           opts.Admits(key())) {
      batch->emplace_back(key(), value());
      ++pos_;
    }
    return Status::OK();
  }
  bool SupportsEagerBatches() const override { return true; }

 private:
  const std::vector<std::pair<std::string, std::string>>* records_;
  size_t pos_ = 0;
};

/// \brief KVStream over an owned buffer of run-format bytes.
///
/// Used for decompressed spill segments: the segment is inflated into a
/// string and parsed in place without further copies.
class StringRunStream : public KVStream {
 public:
  /// Takes ownership of `data`; call Open() before use.
  explicit StringRunStream(std::string data) : data_(std::move(data)) {}

  Status Open() { return Next(); }

  bool Valid() const override { return valid_; }
  Slice key() const override { return key_; }
  Slice value() const override { return value_; }
  Status Next() override;

  /// Eager batches: views parse in place out of the owned buffer, which is
  /// never touched after construction.
  Status NextBatch(RecordBatch* batch, const BatchOptions& opts) override;
  bool SupportsEagerBatches() const override { return true; }

 private:
  std::string data_;
  size_t pos_ = 0;
  Slice key_;
  Slice value_;
  bool valid_ = false;
};

// ---------------------------------------------------------------------------
// Block-framed compressed runs (shuffle segment format)
// ---------------------------------------------------------------------------

/// Default cut point for block-framed runs.
constexpr size_t kDefaultBlockBytes = 64 * 1024;
/// Default number of compressed frames a reader keeps buffered ahead.
constexpr size_t kDefaultReadaheadBlocks = 4;

/// \brief Writes a run as independently compressed, CRC-protected blocks.
///
/// Records are appended to an in-memory raw block; once it reaches
/// block_bytes the block is compressed and framed out. Records never span
/// blocks, so a reader can decode any prefix of frames independently.
class BlockRunWriter {
 public:
  struct Options {
    size_t block_bytes = kDefaultBlockBytes;
  };

  BlockRunWriter(std::unique_ptr<WritableFile> file, const Codec* codec,
                 Options options);

  Status Add(const Slice& key, const Slice& value);
  /// Flush the final partial block and close the file. Must be called.
  Status Finish();

  uint64_t raw_bytes() const { return raw_bytes_; }
  /// Total file bytes (magic + frame headers + compressed payloads).
  uint64_t stored_bytes() const { return writer_.bytes_written(); }
  uint64_t record_count() const { return record_count_; }
  uint64_t block_count() const { return block_count_; }
  uint64_t compress_nanos() const { return compress_nanos_; }

 private:
  Status EnsureMagic();
  Status FlushBlock();

  BufferedWriter writer_;
  const Codec* codec_;
  size_t block_bytes_;
  std::string block_;       // raw records accumulating toward the cut point
  std::string compressed_;  // scratch for the framed payload
  bool wrote_magic_ = false;
  uint64_t raw_bytes_ = 0;
  uint64_t record_count_ = 0;
  uint64_t block_count_ = 0;
  uint64_t compress_nanos_ = 0;
};

/// Cost/volume counters for one BlockRunReader, split the way the shuffle
/// metrics report them.
struct BlockReadStats {
  uint64_t read_nanos = 0;    ///< wall time blocked on source reads (incl.
                              ///< simulated disk/network transfer sleeps)
  uint64_t decode_nanos = 0;  ///< CRC verification + decompression
  uint64_t bytes_read = 0;    ///< stored bytes consumed from the source
  uint64_t blocks = 0;        ///< frames decoded
  uint64_t records = 0;       ///< records served
  /// High-water mark of buffered bytes: queued compressed frames plus the
  /// current decompressed block. Bounded by (readahead + 1) frames + one raw
  /// block, independent of segment size.
  uint64_t peak_buffered_bytes = 0;
  /// Blocks skipped by min/max-key stats (columnar chunks only): their
  /// payloads were neither read, transferred, nor decoded.
  uint64_t blocks_pruned = 0;
  /// Stored payload bytes those pruned blocks would have cost.
  uint64_t pruned_bytes = 0;
};

/// \brief A KVStream over one shuffle segment, whatever its storage format.
///
/// BlockRunReader (row runs) and ChunkReader (columnar chunks) both
/// implement it; segment consumers hold SegmentStream so the format is a
/// per-file property detected from the magic, not a compile-time choice.
class SegmentStream : public KVStream {
 public:
  virtual const BlockReadStats& stats() const = 0;
};

/// \brief Streaming KVStream over a block-framed run with bounded readahead.
///
/// Frames are pulled from the source into a small queue (readahead_blocks
/// deep) and decompressed one at a time, so memory stays O(block) while the
/// source — a throttled disk file or an in-memory fetched segment — is
/// consumed sequentially.
///
/// Block storage is double-buffered: decoding block N+1 reuses the buffer
/// block N-1 occupied, never block N's, so a NextBatch result (whose views
/// live in one block) survives the advance onto the next block and dies
/// only at the following call, per the batch contract.
class BlockRunReader : public SegmentStream {
 public:
  struct Options {
    size_t readahead_blocks = kDefaultReadaheadBlocks;
    /// Simulated transfer bandwidth paid per frame read; 0 = unthrottled.
    double throttle_mb_per_s = 0;
    /// Name used in error messages ("segment <name> block <n>: ...").
    std::string name;
  };

  BlockRunReader(std::unique_ptr<SequentialFile> file, const Codec* codec,
                 Options options);

  /// Check the magic, fill the readahead window, and position at the first
  /// record. Must be called once before use.
  Status Open();

  bool Valid() const override { return valid_; }
  Slice key() const override { return key_; }
  Slice value() const override { return value_; }
  Status Next() override;

  /// Eager batches, capped at the current block's tail: the batch stops
  /// after the first block-boundary crossing so all its views share one
  /// buffer generation (see the double-buffering note above).
  Status NextBatch(RecordBatch* batch, const BatchOptions& opts) override;
  bool SupportsEagerBatches() const override { return true; }

  const BlockReadStats& stats() const override { return stats_; }

 private:
  struct Frame {
    uint32_t raw_len = 0;
    uint32_t crc = 0;
    std::string payload;
  };

  Status FillReadahead();
  Status DecodeNextBlock();
  Status CorruptionAt(const std::string& detail) const;
  void NotePeak();

  BufferedReader reader_;
  const Codec* codec_;
  Options opts_;
  std::deque<Frame> readahead_;
  uint64_t readahead_bytes_ = 0;
  std::string block_;  // current decompressed block
  std::string prev_block_;  // previous generation, kept for batch views
  size_t pos_ = 0;     // parse position within block_
  Slice key_;
  Slice value_;
  bool valid_ = false;
  bool source_eof_ = false;
  uint64_t block_index_ = 0;  // index of the current block (1-based once read)
  BlockReadStats stats_;
};

/// Borrowing SequentialFile over a byte buffer; `data` must outlive the
/// returned file. Used to re-read fetched (in-memory) segment frames.
std::unique_ptr<SequentialFile> NewSliceSource(const Slice& data);

/// Convenience: open a run file on `env` and return a positioned reader.
Status OpenRun(Env* env, const std::string& fname,
               std::unique_ptr<KVStream>* stream);

/// Read an entire file into *out (counted as disk read by the Env).
Status ReadFileToString(Env* env, const std::string& fname, std::string* out);

}  // namespace antimr

#endif  // ANTIMR_IO_RUN_FILE_H_
