#include "io/run_file.h"

#include <algorithm>

#include "codec/crc32.h"
#include "common/coding.h"
#include "common/stopwatch.h"
#include "io/throttled_env.h"

namespace antimr {

namespace {

/// First bytes of every block-framed run: "AntiMR Block Segment v1".
constexpr char kBlockMagic[4] = {'A', 'B', 'S', '1'};

class SliceSource : public SequentialFile {
 public:
  explicit SliceSource(const Slice& data) : data_(data) {}

  Status Read(size_t n, Slice* result, char* scratch) override {
    (void)scratch;  // served directly out of the borrowed buffer
    n = std::min(n, data_.size() - pos_);
    *result = Slice(data_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  Status Skip(uint64_t n) override {
    pos_ = std::min(data_.size(), pos_ + static_cast<size_t>(n));
    return Status::OK();
  }

 private:
  Slice data_;
  size_t pos_ = 0;
};

}  // namespace

std::unique_ptr<SequentialFile> NewSliceSource(const Slice& data) {
  return std::make_unique<SliceSource>(data);
}

Status KVStream::NextBatch(RecordBatch* batch, const BatchOptions& opts) {
  batch->clear();
  // Deferred-advance adapter: the record handed out by the previous call
  // had to stay alive for its consumer, so its Next() happens here.
  if (batch_advance_pending_) {
    batch_advance_pending_ = false;
    ANTIMR_RETURN_NOT_OK(Next());
  }
  if (!Valid() || opts.max_records == 0 || !opts.Admits(key())) {
    return Status::OK();
  }
  batch->emplace_back(key(), value());
  batch_advance_pending_ = true;
  return Status::OK();
}

Status ReadFileToString(Env* env, const std::string& fname, std::string* out) {
  std::unique_ptr<SequentialFile> file;
  ANTIMR_RETURN_NOT_OK(env->NewSequentialFile(fname, &file));
  out->clear();
  uint64_t size = 0;
  if (env->GetFileSize(fname, &size).ok()) out->reserve(size);
  char scratch[64 * 1024];
  while (true) {
    Slice chunk;
    ANTIMR_RETURN_NOT_OK(file->Read(sizeof(scratch), &chunk, scratch));
    if (chunk.empty()) break;
    out->append(chunk.data(), chunk.size());
  }
  return Status::OK();
}

RunWriter::RunWriter(std::unique_ptr<WritableFile> file)
    : writer_(std::move(file)) {}

Status RunWriter::Add(const Slice& key, const Slice& value) {
  ANTIMR_RETURN_NOT_OK(writer_.AppendLengthPrefixed(key));
  ANTIMR_RETURN_NOT_OK(writer_.AppendLengthPrefixed(value));
  ++record_count_;
  return Status::OK();
}

Status RunWriter::Close() { return writer_.Close(); }

RunReader::RunReader(std::unique_ptr<SequentialFile> file)
    : reader_(std::move(file)) {}

Status RunReader::Open() { return Next(); }

Status RunReader::Next() {
  if (reader_.AtEof()) {
    valid_ = false;
    return Status::OK();
  }
  ANTIMR_RETURN_NOT_OK(reader_.ReadRecordViews(&key_, &value_));
  valid_ = true;
  return Status::OK();
}

Status StringRunStream::Next() {
  Slice in(data_.data() + pos_, data_.size() - pos_);
  if (in.empty()) {
    valid_ = false;
    return Status::OK();
  }
  Slice k, v;
  if (!GetLengthPrefixed(&in, &k) || !GetLengthPrefixed(&in, &v)) {
    valid_ = false;
    return Status::Corruption("StringRunStream: truncated record");
  }
  key_ = k;
  value_ = v;
  pos_ = data_.size() - in.size();
  valid_ = true;
  return Status::OK();
}

Status StringRunStream::NextBatch(RecordBatch* batch,
                                  const BatchOptions& opts) {
  batch->clear();
  while (valid_ && batch->size() < opts.max_records && opts.Admits(key_)) {
    batch->emplace_back(key_, value_);
    ANTIMR_RETURN_NOT_OK(Next());
  }
  return Status::OK();
}

BlockRunWriter::BlockRunWriter(std::unique_ptr<WritableFile> file,
                               const Codec* codec, Options options)
    : writer_(std::move(file)),
      codec_(codec),
      block_bytes_(options.block_bytes == 0 ? kDefaultBlockBytes
                                            : options.block_bytes) {
  block_.reserve(block_bytes_);
}

Status BlockRunWriter::EnsureMagic() {
  if (wrote_magic_) return Status::OK();
  wrote_magic_ = true;
  return writer_.Append(Slice(kBlockMagic, sizeof(kBlockMagic)));
}

Status BlockRunWriter::Add(const Slice& key, const Slice& value) {
  PutLengthPrefixed(&block_, key);
  PutLengthPrefixed(&block_, value);
  ++record_count_;
  if (block_.size() >= block_bytes_) {
    ANTIMR_RETURN_NOT_OK(FlushBlock());
  }
  return Status::OK();
}

Status BlockRunWriter::FlushBlock() {
  if (block_.empty()) return Status::OK();
  ANTIMR_RETURN_NOT_OK(EnsureMagic());
  {
    ScopedTimer t(&compress_nanos_);
    ANTIMR_RETURN_NOT_OK(codec_->Compress(block_, &compressed_));
  }
  const uint32_t crc = Crc32(0, compressed_);
  ANTIMR_RETURN_NOT_OK(
      writer_.AppendVarint32(static_cast<uint32_t>(block_.size())));
  ANTIMR_RETURN_NOT_OK(
      writer_.AppendVarint32(static_cast<uint32_t>(compressed_.size())));
  std::string crc_buf;
  PutFixed32(&crc_buf, crc);
  ANTIMR_RETURN_NOT_OK(writer_.Append(crc_buf));
  ANTIMR_RETURN_NOT_OK(writer_.Append(compressed_));
  raw_bytes_ += block_.size();
  ++block_count_;
  block_.clear();
  return Status::OK();
}

Status BlockRunWriter::Finish() {
  ANTIMR_RETURN_NOT_OK(EnsureMagic());
  ANTIMR_RETURN_NOT_OK(FlushBlock());
  return writer_.Close();
}

BlockRunReader::BlockRunReader(std::unique_ptr<SequentialFile> file,
                               const Codec* codec, Options options)
    : reader_(std::move(file)), codec_(codec), opts_(std::move(options)) {}

Status BlockRunReader::CorruptionAt(const std::string& detail) const {
  return Status::Corruption("segment " +
                            (opts_.name.empty() ? "<unnamed>" : opts_.name) +
                            " block " + std::to_string(block_index_) + ": " +
                            detail);
}

void BlockRunReader::NotePeak() {
  const uint64_t buffered = readahead_bytes_ + block_.size();
  if (buffered > stats_.peak_buffered_bytes) {
    stats_.peak_buffered_bytes = buffered;
  }
}

Status BlockRunReader::Open() {
  const uint64_t before = reader_.bytes_consumed();
  std::string magic;
  Status st;
  {
    ScopedTimer t(&stats_.read_nanos);
    st = reader_.ReadExact(sizeof(kBlockMagic), &magic);
  }
  if (!st.ok()) {
    return Status::Corruption("segment " +
                              (opts_.name.empty() ? "<unnamed>" : opts_.name) +
                              ": missing block-segment magic (" +
                              st.message() + ")");
  }
  stats_.bytes_read += reader_.bytes_consumed() - before;
  if (Slice(magic) != Slice(kBlockMagic, sizeof(kBlockMagic))) {
    return CorruptionAt("bad magic: not a block segment");
  }
  ANTIMR_RETURN_NOT_OK(FillReadahead());
  return Next();
}

Status BlockRunReader::FillReadahead() {
  while (!source_eof_ && readahead_.size() < std::max<size_t>(1, opts_.readahead_blocks)) {
    const uint64_t before = reader_.bytes_consumed();
    Frame frame;
    uint32_t stored_len = 0;
    {
      ScopedTimer t(&stats_.read_nanos);
      if (reader_.AtEof()) {
        source_eof_ = true;
        break;
      }
      ANTIMR_RETURN_NOT_OK(reader_.ReadVarint32(&frame.raw_len));
      ANTIMR_RETURN_NOT_OK(reader_.ReadVarint32(&stored_len));
      std::string crc_bytes;
      ANTIMR_RETURN_NOT_OK(reader_.ReadExact(4, &crc_bytes));
      frame.crc = DecodeFixed32(crc_bytes.data());
      ANTIMR_RETURN_NOT_OK(reader_.ReadExact(stored_len, &frame.payload));
    }
    const uint64_t frame_bytes = reader_.bytes_consumed() - before;
    stats_.bytes_read += frame_bytes;
    SleepForBytes(frame_bytes, opts_.throttle_mb_per_s);
    readahead_bytes_ += frame.payload.size();
    readahead_.push_back(std::move(frame));
    NotePeak();
  }
  return Status::OK();
}

Status BlockRunReader::DecodeNextBlock() {
  Frame frame = std::move(readahead_.front());
  readahead_.pop_front();
  readahead_bytes_ -= frame.payload.size();
  ++block_index_;
  {
    ScopedTimer t(&stats_.decode_nanos);
    const uint32_t actual = Crc32(0, frame.payload);
    if (actual != frame.crc) {
      valid_ = false;
      return CorruptionAt("crc mismatch (stored " + std::to_string(frame.crc) +
                          ", computed " + std::to_string(actual) + ")");
    }
    // Decode into the generation-before-last's buffer: the just-finished
    // block (block_ before the swap) must survive this decode so a batch
    // returned up to its tail stays valid across the advance.
    std::swap(block_, prev_block_);
    Status st = codec_->Decompress(frame.payload, &block_);
    if (!st.ok()) {
      valid_ = false;
      return CorruptionAt("decompress failed: " + st.message());
    }
    if (block_.size() != frame.raw_len) {
      valid_ = false;
      return CorruptionAt("raw length mismatch (header " +
                          std::to_string(frame.raw_len) + ", decoded " +
                          std::to_string(block_.size()) + ")");
    }
  }
  pos_ = 0;
  ++stats_.blocks;
  NotePeak();
  // Refill the window so the next source read overlaps with decoding.
  return FillReadahead();
}

Status BlockRunReader::Next() {
  while (pos_ >= block_.size()) {
    if (readahead_.empty()) {
      valid_ = false;
      return Status::OK();
    }
    ANTIMR_RETURN_NOT_OK(DecodeNextBlock());
  }
  Slice in(block_.data() + pos_, block_.size() - pos_);
  Slice k, v;
  if (!GetLengthPrefixed(&in, &k) || !GetLengthPrefixed(&in, &v)) {
    valid_ = false;
    return CorruptionAt("truncated record");
  }
  key_ = k;
  value_ = v;
  pos_ = block_.size() - in.size();
  ++stats_.records;
  valid_ = true;
  return Status::OK();
}

Status BlockRunReader::NextBatch(RecordBatch* batch,
                                 const BatchOptions& opts) {
  batch->clear();
  while (valid_ && batch->size() < opts.max_records && opts.Admits(key_)) {
    batch->emplace_back(key_, value_);
    const bool at_block_end = pos_ >= block_.size();
    ANTIMR_RETURN_NOT_OK(Next());
    // Crossing a block boundary decoded a fresh block. The batch's views
    // (all in the block just finished) survive exactly one decode, so stop
    // here; the next call starts inside the new block.
    if (at_block_end) break;
  }
  return Status::OK();
}

Status OpenRun(Env* env, const std::string& fname,
               std::unique_ptr<KVStream>* stream) {
  std::unique_ptr<SequentialFile> file;
  ANTIMR_RETURN_NOT_OK(env->NewSequentialFile(fname, &file));
  auto reader = std::make_unique<RunReader>(std::move(file));
  ANTIMR_RETURN_NOT_OK(reader->Open());
  *stream = std::move(reader);
  return Status::OK();
}

}  // namespace antimr
