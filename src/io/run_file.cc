#include "io/run_file.h"

#include "common/coding.h"

namespace antimr {

Status ReadFileToString(Env* env, const std::string& fname, std::string* out) {
  std::unique_ptr<SequentialFile> file;
  ANTIMR_RETURN_NOT_OK(env->NewSequentialFile(fname, &file));
  out->clear();
  uint64_t size = 0;
  if (env->GetFileSize(fname, &size).ok()) out->reserve(size);
  char scratch[64 * 1024];
  while (true) {
    Slice chunk;
    ANTIMR_RETURN_NOT_OK(file->Read(sizeof(scratch), &chunk, scratch));
    if (chunk.empty()) break;
    out->append(chunk.data(), chunk.size());
  }
  return Status::OK();
}

RunWriter::RunWriter(std::unique_ptr<WritableFile> file)
    : writer_(std::move(file)) {}

Status RunWriter::Add(const Slice& key, const Slice& value) {
  ANTIMR_RETURN_NOT_OK(writer_.AppendLengthPrefixed(key));
  ANTIMR_RETURN_NOT_OK(writer_.AppendLengthPrefixed(value));
  ++record_count_;
  return Status::OK();
}

Status RunWriter::Close() { return writer_.Close(); }

RunReader::RunReader(std::unique_ptr<SequentialFile> file)
    : reader_(std::move(file)) {}

Status RunReader::Open() { return Next(); }

Status RunReader::Next() {
  if (reader_.AtEof()) {
    valid_ = false;
    return Status::OK();
  }
  ANTIMR_RETURN_NOT_OK(reader_.ReadLengthPrefixed(&key_));
  ANTIMR_RETURN_NOT_OK(reader_.ReadLengthPrefixed(&value_));
  valid_ = true;
  return Status::OK();
}

Status StringRunStream::Next() {
  Slice in(data_.data() + pos_, data_.size() - pos_);
  if (in.empty()) {
    valid_ = false;
    return Status::OK();
  }
  Slice k, v;
  if (!GetLengthPrefixed(&in, &k) || !GetLengthPrefixed(&in, &v)) {
    valid_ = false;
    return Status::Corruption("StringRunStream: truncated record");
  }
  key_ = k;
  value_ = v;
  pos_ = data_.size() - in.size();
  valid_ = true;
  return Status::OK();
}

Status OpenRun(Env* env, const std::string& fname,
               std::unique_ptr<KVStream>* stream) {
  std::unique_ptr<SequentialFile> file;
  ANTIMR_RETURN_NOT_OK(env->NewSequentialFile(fname, &file));
  auto reader = std::make_unique<RunReader>(std::move(file));
  ANTIMR_RETURN_NOT_OK(reader->Open());
  *stream = std::move(reader);
  return Status::OK();
}

}  // namespace antimr
