#include "io/env.h"

namespace antimr {

// env.h is interface-only; concrete implementations live in mem_env.cc and
// posix_env.cc. This translation unit anchors the vtables.

}  // namespace antimr
