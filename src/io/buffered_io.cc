#include "io/buffered_io.h"

#include <cstring>

namespace antimr {

BufferedWriter::BufferedWriter(std::unique_ptr<WritableFile> file,
                               size_t buffer_size)
    : file_(std::move(file)), buffer_size_(buffer_size) {
  buffer_.reserve(buffer_size_);
}

BufferedWriter::~BufferedWriter() {
  if (!closed_) Close();
}

Status BufferedWriter::Append(const Slice& data) {
  bytes_written_ += data.size();
  if (buffer_.size() + data.size() < buffer_size_) {
    buffer_.append(data.data(), data.size());
    return Status::OK();
  }
  ANTIMR_RETURN_NOT_OK(FlushBuffer());
  if (data.size() >= buffer_size_) {
    return file_->Append(data);
  }
  buffer_.append(data.data(), data.size());
  return Status::OK();
}

Status BufferedWriter::AppendVarint32(uint32_t v) {
  std::string tmp;
  PutVarint32(&tmp, v);
  return Append(tmp);
}

Status BufferedWriter::AppendVarint64(uint64_t v) {
  std::string tmp;
  PutVarint64(&tmp, v);
  return Append(tmp);
}

Status BufferedWriter::AppendLengthPrefixed(const Slice& data) {
  ANTIMR_RETURN_NOT_OK(AppendVarint64(data.size()));
  return Append(data);
}

Status BufferedWriter::Close() {
  if (closed_) return Status::OK();
  closed_ = true;
  ANTIMR_RETURN_NOT_OK(FlushBuffer());
  return file_->Close();
}

Status BufferedWriter::FlushBuffer() {
  if (buffer_.empty()) return Status::OK();
  Status st = file_->Append(buffer_);
  buffer_.clear();
  return st;
}

BufferedReader::BufferedReader(std::unique_ptr<SequentialFile> file,
                               size_t buffer_size)
    : file_(std::move(file)) {
  scratch_.resize(buffer_size);
}

bool BufferedReader::Fill() {
  if (!avail_.empty()) return true;
  if (eof_) return false;
  Slice result;
  Status st = file_->Read(scratch_.size(), &result, scratch_.data());
  if (!st.ok() || result.empty()) {
    eof_ = true;
    return false;
  }
  avail_ = result;
  return true;
}

bool BufferedReader::AtEof() { return !Fill(); }

Status BufferedReader::ReadByte(unsigned char* b) {
  if (!Fill()) return Status::Corruption("unexpected EOF");
  *b = static_cast<unsigned char>(avail_[0]);
  avail_.RemovePrefix(1);
  ++bytes_consumed_;
  return Status::OK();
}

Status BufferedReader::ReadVarint32(uint32_t* v) {
  uint64_t v64;
  ANTIMR_RETURN_NOT_OK(ReadVarint64(&v64));
  if (v64 > UINT32_MAX) return Status::Corruption("varint32 overflow");
  *v = static_cast<uint32_t>(v64);
  return Status::OK();
}

Status BufferedReader::ReadVarint64(uint64_t* v) {
  uint64_t result = 0;
  for (uint32_t shift = 0; shift <= 63; shift += 7) {
    unsigned char byte;
    ANTIMR_RETURN_NOT_OK(ReadByte(&byte));
    if (byte & 0x80) {
      result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    } else {
      result |= static_cast<uint64_t>(byte) << shift;
      *v = result;
      return Status::OK();
    }
  }
  return Status::Corruption("varint64 too long");
}

Status BufferedReader::ReadExact(size_t n, std::string* out) {
  out->clear();
  out->reserve(n);
  while (out->size() < n) {
    if (!Fill()) return Status::Corruption("unexpected EOF in ReadExact");
    const size_t want = n - out->size();
    const size_t take = want < avail_.size() ? want : avail_.size();
    out->append(avail_.data(), take);
    avail_.RemovePrefix(take);
    bytes_consumed_ += take;
  }
  return Status::OK();
}

Status BufferedReader::ReadLengthPrefixed(std::string* out) {
  uint64_t len;
  ANTIMR_RETURN_NOT_OK(ReadVarint64(&len));
  return ReadExact(static_cast<size_t>(len), out);
}

Status BufferedReader::ReadRecordViews(Slice* key, Slice* value) {
  // Fast path: the whole record is already buffered. The views point at the
  // buffered bytes directly — no copy, no allocation.
  {
    Slice in = avail_;
    Slice k, v;
    if (GetLengthPrefixed(&in, &k) && GetLengthPrefixed(&in, &v)) {
      bytes_consumed_ += avail_.size() - in.size();
      avail_ = in;
      *key = k;
      *value = v;
      return Status::OK();
    }
  }

  // Slow path: the record straddles the end of the buffered bytes. Compact
  // the unconsumed tail to the front of scratch_ and append more from the
  // file until the record parses from one contiguous range. memmove because
  // avail_ usually aliases scratch_ (it can also view an external buffer,
  // e.g. a SliceSource, which memmove handles the same way).
  size_t have = avail_.size();
  if (have > 0 && avail_.data() != scratch_.data()) {
    std::memmove(scratch_.data(), avail_.data(), have);
  }
  avail_ = Slice();
  while (true) {
    Slice in(scratch_.data(), have);
    Slice k, v;
    if (GetLengthPrefixed(&in, &k) && GetLengthPrefixed(&in, &v)) {
      bytes_consumed_ += have - in.size();
      avail_ = in;
      *key = k;
      *value = v;
      return Status::OK();
    }
    if (eof_) {
      return Status::Corruption(have == 0 ? "unexpected EOF"
                                          : "truncated record");
    }
    if (have == scratch_.size()) {
      // One record larger than the buffer: grow (views are only promised
      // until the next read call, so relocation here is fine).
      scratch_.resize(scratch_.size() * 2);
    }
    Slice chunk;
    Status st =
        file_->Read(scratch_.size() - have, &chunk, scratch_.data() + have);
    if (!st.ok() || chunk.empty()) {
      eof_ = true;
      continue;  // fall through to the truncation/EOF check above
    }
    // Sources that serve out of their own memory (SliceSource) return a view
    // elsewhere instead of filling our scratch; bring the bytes in so the
    // record is contiguous.
    if (chunk.data() != scratch_.data() + have) {
      std::memcpy(scratch_.data() + have, chunk.data(), chunk.size());
    }
    have += chunk.size();
  }
}

}  // namespace antimr
