#include "io/buffered_io.h"

#include <cstring>

namespace antimr {

BufferedWriter::BufferedWriter(std::unique_ptr<WritableFile> file,
                               size_t buffer_size)
    : file_(std::move(file)), buffer_size_(buffer_size) {
  buffer_.reserve(buffer_size_);
}

BufferedWriter::~BufferedWriter() {
  if (!closed_) Close();
}

Status BufferedWriter::Append(const Slice& data) {
  bytes_written_ += data.size();
  if (buffer_.size() + data.size() < buffer_size_) {
    buffer_.append(data.data(), data.size());
    return Status::OK();
  }
  ANTIMR_RETURN_NOT_OK(FlushBuffer());
  if (data.size() >= buffer_size_) {
    return file_->Append(data);
  }
  buffer_.append(data.data(), data.size());
  return Status::OK();
}

Status BufferedWriter::AppendVarint32(uint32_t v) {
  std::string tmp;
  PutVarint32(&tmp, v);
  return Append(tmp);
}

Status BufferedWriter::AppendVarint64(uint64_t v) {
  std::string tmp;
  PutVarint64(&tmp, v);
  return Append(tmp);
}

Status BufferedWriter::AppendLengthPrefixed(const Slice& data) {
  ANTIMR_RETURN_NOT_OK(AppendVarint64(data.size()));
  return Append(data);
}

Status BufferedWriter::Close() {
  if (closed_) return Status::OK();
  closed_ = true;
  ANTIMR_RETURN_NOT_OK(FlushBuffer());
  return file_->Close();
}

Status BufferedWriter::FlushBuffer() {
  if (buffer_.empty()) return Status::OK();
  Status st = file_->Append(buffer_);
  buffer_.clear();
  return st;
}

BufferedReader::BufferedReader(std::unique_ptr<SequentialFile> file,
                               size_t buffer_size)
    : file_(std::move(file)) {
  scratch_.resize(buffer_size);
}

bool BufferedReader::Fill() {
  if (!avail_.empty()) return true;
  if (eof_) return false;
  Slice result;
  Status st = file_->Read(scratch_.size(), &result, scratch_.data());
  if (!st.ok() || result.empty()) {
    eof_ = true;
    return false;
  }
  avail_ = result;
  return true;
}

bool BufferedReader::AtEof() { return !Fill(); }

Status BufferedReader::ReadByte(unsigned char* b) {
  if (!Fill()) return Status::Corruption("unexpected EOF");
  *b = static_cast<unsigned char>(avail_[0]);
  avail_.RemovePrefix(1);
  ++bytes_consumed_;
  return Status::OK();
}

Status BufferedReader::ReadVarint32(uint32_t* v) {
  uint64_t v64;
  ANTIMR_RETURN_NOT_OK(ReadVarint64(&v64));
  if (v64 > UINT32_MAX) return Status::Corruption("varint32 overflow");
  *v = static_cast<uint32_t>(v64);
  return Status::OK();
}

Status BufferedReader::ReadVarint64(uint64_t* v) {
  uint64_t result = 0;
  for (uint32_t shift = 0; shift <= 63; shift += 7) {
    unsigned char byte;
    ANTIMR_RETURN_NOT_OK(ReadByte(&byte));
    if (byte & 0x80) {
      result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    } else {
      result |= static_cast<uint64_t>(byte) << shift;
      *v = result;
      return Status::OK();
    }
  }
  return Status::Corruption("varint64 too long");
}

Status BufferedReader::ReadExact(size_t n, std::string* out) {
  out->clear();
  out->reserve(n);
  while (out->size() < n) {
    if (!Fill()) return Status::Corruption("unexpected EOF in ReadExact");
    const size_t want = n - out->size();
    const size_t take = want < avail_.size() ? want : avail_.size();
    out->append(avail_.data(), take);
    avail_.RemovePrefix(take);
    bytes_consumed_ += take;
  }
  return Status::OK();
}

Status BufferedReader::ReadLengthPrefixed(std::string* out) {
  uint64_t len;
  ANTIMR_RETURN_NOT_OK(ReadVarint64(&len));
  return ReadExact(static_cast<size_t>(len), out);
}

}  // namespace antimr
