// Buffered adapters over the Env file handles, plus varint-aware record
// reading. All spill/merge code paths go through these so reads and writes
// are batched the way a real MapReduce runtime batches them.
#ifndef ANTIMR_IO_BUFFERED_IO_H_
#define ANTIMR_IO_BUFFERED_IO_H_

#include <memory>
#include <string>

#include "common/coding.h"
#include "common/slice.h"
#include "common/status.h"
#include "io/env.h"

namespace antimr {

/// \brief Buffers Appends to a WritableFile.
class BufferedWriter {
 public:
  explicit BufferedWriter(std::unique_ptr<WritableFile> file,
                          size_t buffer_size = 64 * 1024);
  ~BufferedWriter();

  Status Append(const Slice& data);
  Status AppendVarint32(uint32_t v);
  Status AppendVarint64(uint64_t v);
  /// varint(length) + bytes.
  Status AppendLengthPrefixed(const Slice& data);

  /// Flush the internal buffer and close the underlying file.
  Status Close();

  /// Total bytes accepted so far (buffered + flushed).
  uint64_t bytes_written() const { return bytes_written_; }

 private:
  Status FlushBuffer();

  std::unique_ptr<WritableFile> file_;
  std::string buffer_;
  size_t buffer_size_;
  uint64_t bytes_written_ = 0;
  bool closed_ = false;
};

/// \brief Buffers Reads from a SequentialFile and decodes primitives.
class BufferedReader {
 public:
  explicit BufferedReader(std::unique_ptr<SequentialFile> file,
                          size_t buffer_size = 64 * 1024);

  /// True when no more bytes are available.
  bool AtEof();

  Status ReadVarint32(uint32_t* v);
  Status ReadVarint64(uint64_t* v);
  /// Read exactly n bytes into *out (replacing its contents). Fails with
  /// Corruption on short read.
  Status ReadExact(size_t n, std::string* out);
  /// Read varint(length)+bytes into *out.
  Status ReadLengthPrefixed(std::string* out);

  /// Read one record — varint(klen) key varint(vlen) value — as views,
  /// without materializing either field. *key and *value stay valid until
  /// the next read call on this reader. Both fields are parsed from a single
  /// buffer generation: a record straddling the buffer boundary is compacted
  /// to the buffer front (growing the buffer when one record exceeds it), so
  /// reading the value can never invalidate the key's view.
  Status ReadRecordViews(Slice* key, Slice* value);

  uint64_t bytes_consumed() const { return bytes_consumed_; }

 private:
  /// Ensure at least one unconsumed byte is buffered; returns false at EOF.
  bool Fill();
  Status ReadByte(unsigned char* b);

  std::unique_ptr<SequentialFile> file_;
  std::string scratch_;
  Slice avail_;
  uint64_t bytes_consumed_ = 0;
  bool eof_ = false;
};

}  // namespace antimr

#endif  // ANTIMR_IO_BUFFERED_IO_H_
