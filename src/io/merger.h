// K-way merge of sorted KVStreams with a pluggable comparator. Used on the
// map side (merging spill files per partition), the reduce side (merging
// shuffled segments), and inside Shared (merging its spills).
#ifndef ANTIMR_IO_MERGER_H_
#define ANTIMR_IO_MERGER_H_

#include <functional>
#include <memory>
#include <vector>

#include "io/run_file.h"

namespace antimr {

/// Three-way key comparator; negative/zero/positive like memcmp.
using KeyComparator = std::function<int(const Slice&, const Slice&)>;

/// Bytewise comparison; the default key order.
int BytewiseCompare(const Slice& a, const Slice& b);

/// \brief Heap-based k-way merging stream.
///
/// Stable across inputs: on equal keys, records from lower-indexed input
/// streams are produced first, so merge output is deterministic.
class MergingStream : public KVStream {
 public:
  MergingStream(std::vector<std::unique_ptr<KVStream>> inputs,
                KeyComparator cmp);

  bool Valid() const override { return current_ >= 0; }
  Slice key() const override { return inputs_[current_]->key(); }
  Slice value() const override { return inputs_[current_]->value(); }
  Status Next() override;

  /// Vectorized merge, when every input supports eager batches: each
  /// winning stream drains a whole run bounded by the second-best head key
  /// in one NextBatch call, with one heap fix-up per run instead of per
  /// record, and runs accumulate into the batch until an input would have
  /// to produce a second run (which would invalidate its first run's
  /// views). Ties drain to the lower-indexed input first, so batch output
  /// is byte-identical to the record-wise merge. Falls back to the
  /// one-record adapter when any input is deferred-advance.
  Status NextBatch(RecordBatch* batch, const BatchOptions& opts) override;
  bool SupportsEagerBatches() const override { return eager_inputs_; }

 private:
  void SiftDown(size_t i);
  bool HeapLess(int a, int b) const;
  void InitHeap();

  std::vector<std::unique_ptr<KVStream>> inputs_;
  KeyComparator cmp_;
  std::vector<int> heap_;  // indexes into inputs_
  int current_ = -1;       // stream whose head is the current record
  bool eager_inputs_ = false;
  // Plain-function form of cmp_ (null when cmp_ wraps a closure), handed to
  // producers via BatchOptions::raw_cmp; bytewise_ additionally marks the
  // default byte order so HeapLess can compare inline.
  int (*raw_cmp_)(const Slice&, const Slice&) = nullptr;
  bool bytewise_ = false;
  // NextBatch scratch: the current winner's run, and per-input marks of the
  // merged-batch generation that last drained it.
  RecordBatch run_;
  std::vector<uint64_t> drained_in_;
  uint64_t drain_gen_ = 0;
};

}  // namespace antimr

#endif  // ANTIMR_IO_MERGER_H_
