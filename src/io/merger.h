// K-way merge of sorted KVStreams with a pluggable comparator. Used on the
// map side (merging spill files per partition), the reduce side (merging
// shuffled segments), and inside Shared (merging its spills).
#ifndef ANTIMR_IO_MERGER_H_
#define ANTIMR_IO_MERGER_H_

#include <functional>
#include <memory>
#include <vector>

#include "io/run_file.h"

namespace antimr {

/// Three-way key comparator; negative/zero/positive like memcmp.
using KeyComparator = std::function<int(const Slice&, const Slice&)>;

/// Bytewise comparison; the default key order.
int BytewiseCompare(const Slice& a, const Slice& b);

/// \brief Heap-based k-way merging stream.
///
/// Stable across inputs: on equal keys, records from lower-indexed input
/// streams are produced first, so merge output is deterministic.
class MergingStream : public KVStream {
 public:
  MergingStream(std::vector<std::unique_ptr<KVStream>> inputs,
                KeyComparator cmp);

  bool Valid() const override { return current_ >= 0; }
  Slice key() const override { return inputs_[current_]->key(); }
  Slice value() const override { return inputs_[current_]->value(); }
  Status Next() override;

 private:
  void SiftDown(size_t i);
  bool HeapLess(int a, int b) const;
  void InitHeap();

  std::vector<std::unique_ptr<KVStream>> inputs_;
  KeyComparator cmp_;
  std::vector<int> heap_;  // indexes into inputs_
  int current_ = -1;       // stream whose head is the current record
};

}  // namespace antimr

#endif  // ANTIMR_IO_MERGER_H_
