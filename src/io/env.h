// Storage abstraction in the RocksDB style. Each simulated cluster node gets
// its own Env instance (its "local disks"); every byte that flows through an
// Env is counted, which is how the benchmark harness reproduces the paper's
// "total disk read/write" columns without real hardware.
#ifndef ANTIMR_IO_ENV_H_
#define ANTIMR_IO_ENV_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace antimr {

/// \brief Append-only file handle.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(const Slice& data) = 0;
  virtual Status Close() = 0;
};

/// \brief Sequential read handle.
class SequentialFile {
 public:
  virtual ~SequentialFile() = default;
  /// Read up to n bytes. On success *result holds the bytes actually read
  /// (empty at EOF). `scratch` must stay alive while *result is used.
  virtual Status Read(size_t n, Slice* result, char* scratch) = 0;
  /// Skip n bytes forward (clamped at EOF).
  virtual Status Skip(uint64_t n) = 0;
};

/// \brief Positional read handle.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;
  virtual Status Read(uint64_t offset, size_t n, Slice* result,
                      char* scratch) const = 0;
};

/// \brief Byte-level I/O counters, aggregated per Env.
struct IoStats {
  uint64_t bytes_written = 0;
  uint64_t bytes_read = 0;
  uint64_t files_created = 0;
  uint64_t files_deleted = 0;
};

/// \brief Filesystem-like storage for one simulated node.
///
/// All methods are thread-safe. Read/write byte counts are tracked by the
/// concrete implementations and surfaced through stats().
class Env {
 public:
  virtual ~Env() = default;

  virtual Status NewWritableFile(const std::string& fname,
                                 std::unique_ptr<WritableFile>* file) = 0;
  virtual Status NewSequentialFile(const std::string& fname,
                                   std::unique_ptr<SequentialFile>* file) = 0;
  virtual Status NewRandomAccessFile(
      const std::string& fname, std::unique_ptr<RandomAccessFile>* file) = 0;

  virtual Status GetFileSize(const std::string& fname, uint64_t* size) = 0;
  virtual Status DeleteFile(const std::string& fname) = 0;
  virtual bool FileExists(const std::string& fname) = 0;
  virtual Status ListFiles(std::vector<std::string>* names) = 0;

  /// Snapshot of cumulative I/O counters.
  virtual IoStats stats() const = 0;
  virtual void ResetStats() = 0;
};

/// In-process filesystem; the default substrate for simulated local disks.
std::unique_ptr<Env> NewMemEnv();

/// Real-filesystem Env rooted at `root_dir` (created if absent). File names
/// must be relative and slash-free components are created under the root.
std::unique_ptr<Env> NewPosixEnv(const std::string& root_dir);

}  // namespace antimr

#endif  // ANTIMR_IO_ENV_H_
