// Umbrella header: the public API of the antimr library.
//
// A downstream user typically needs three things:
//   1. write a MapReduce program:     mr/api.h, mr/job_spec.h
//   2. run it:                        mr/job_runner.h for one job, or
//      engine/job_plan.h + engine/executor.h for a multi-stage pipeline
//   3. enable Anti-Combining:         anticombine/transform.h (per job) or
//      StageOptions::anti_combine (per stage of a plan)
//
// Everything else (codecs, data generators, reference workloads) is optional.
#ifndef ANTIMR_ANTIMR_H_
#define ANTIMR_ANTIMR_H_

#include "anticombine/options.h"
#include "anticombine/transform.h"
#include "codec/codec.h"
#include "common/status.h"
#include "engine/executor.h"
#include "engine/job_plan.h"
#include "mr/api.h"
#include "mr/job_runner.h"
#include "mr/job_spec.h"
#include "mr/metrics.h"

#endif  // ANTIMR_ANTIMR_H_
