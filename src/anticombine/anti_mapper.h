// AntiMapper: the mapper-side half of the syntactic transformation (paper
// Figure 7). Wraps the original Mapper as a black box, intercepts each Map
// call's output through a capturing context, measures the call's Map +
// Partition cost, and — independently per target partition — emits the
// cheaper of the EagerSH and LazySH encodings, constrained by threshold T.
#ifndef ANTIMR_ANTICOMBINE_ANTI_MAPPER_H_
#define ANTIMR_ANTICOMBINE_ANTI_MAPPER_H_

#include <memory>
#include <string>
#include <vector>

#include "anticombine/options.h"
#include "common/arena.h"
#include "mr/api.h"

namespace antimr {
namespace anticombine {

/// \brief MapContext that records emissions instead of forwarding them.
///
/// Arena-backed: one Map call's output lands in a single reused buffer, so
/// interception costs no per-record allocations after warm-up.
class CaptureContext : public MapContext {
 public:
  void Emit(const Slice& key, const Slice& value) override {
    entries_.push_back(arena_.InternRecord(key, value));
  }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Views are stable until Clear(): the chunked arena never relocates
  /// interned bytes, so captured slices can be held across further Emits
  /// (the cross-call window relies on this).
  Slice key(size_t i) const { return entries_[i].key; }
  Slice value(size_t i) const { return entries_[i].value; }

  void Clear() {
    arena_.Clear();
    entries_.clear();
  }

 private:
  Arena arena_;
  std::vector<RecordRef> entries_;
};

/// \brief Adaptive encoding mapper.
///
/// `allow_lazy` must be false when the original Map or Partition function is
/// non-deterministic (paper Section 6.2); the transform derives it from
/// JobSpec::deterministic.
class AntiMapper : public Mapper {
 public:
  AntiMapper(MapperFactory o_mapper_factory, AntiCombineOptions options,
             bool allow_lazy);

  void Setup(const TaskInfo& info, MapContext* ctx) override;
  void Map(const Slice& key, const Slice& value, MapContext* ctx) override;
  void Cleanup(MapContext* ctx) override;

 private:
  /// Encode and emit the captured batch. `have_input` is false for batches
  /// captured outside a Map call (Setup/Cleanup emissions), which cannot be
  /// Lazy-encoded because there is no input record to resend.
  void EncodeAndEmit(const Slice& input_key, const Slice& input_value,
                     bool have_input, uint64_t map_cost_nanos,
                     MapContext* ctx);

  /// Cross-call mode (options_.cross_call_window > 1): stash one Map
  /// call's capture into the window buffers, flushing when full.
  void BufferCall(const Slice& input_key, const Slice& input_value,
                  uint64_t map_cost_nanos, MapContext* ctx);

  /// Encode and emit the whole buffered window: EagerSH value groups span
  /// calls; LazySH records still resend individual inputs.
  void FlushWindow(MapContext* ctx);

  /// Record one AdaptiveSH Eager/Lazy choice as a trace instant. Decisions
  /// happen per partition per Map call — far too many to record all — so
  /// only the first few per mapper instance are emitted, enough to see in a
  /// trace which way each stage's mappers lean. `partition` is -1 when the
  /// fan-out-1 fast path decides without partitioning.
  void TraceDecision(bool lazy, int partition, size_t lazy_bytes,
                     size_t eager_bytes);

  MapperFactory o_mapper_factory_;
  AntiCombineOptions options_;
  bool allow_lazy_;
  int trace_decisions_left_ = 32;  ///< sampling budget for TraceDecision

  std::unique_ptr<Mapper> o_mapper_;
  CaptureContext capture_;
  TaskInfo info_;
  std::string payload_;         // scratch reused across emissions
  std::vector<int> partitions_;  // scratch per-record partition assignment
  std::vector<size_t> order_;    // scratch index sort for grouping

  // Cross-call window state (only used when cross_call_window > 1).
  CaptureContext window_capture_;     // records of all buffered calls
  std::vector<size_t> window_call_of_;  // record index -> buffered call
  Arena window_input_arena_;            // backs window_inputs_'s views
  std::vector<RecordRef> window_inputs_;  // buffered calls' input records
  uint64_t window_cost_nanos_ = 0;    // summed Map cost of buffered calls
};

}  // namespace anticombine
}  // namespace antimr

#endif  // ANTIMR_ANTICOMBINE_ANTI_MAPPER_H_
