#include "anticombine/anti_mapper.h"

#include <algorithm>
#include <map>

#include "anticombine/encoding.h"
#include "common/stopwatch.h"
#include "mr/metrics.h"
#include "obs/trace.h"

namespace antimr {
namespace anticombine {

AntiMapper::AntiMapper(MapperFactory o_mapper_factory,
                       AntiCombineOptions options, bool allow_lazy)
    : o_mapper_factory_(std::move(o_mapper_factory)),
      options_(options),
      allow_lazy_(allow_lazy) {}

void AntiMapper::TraceDecision(bool lazy, int partition, size_t lazy_bytes,
                               size_t eager_bytes) {
  if (!obs::kTraceCompiled || trace_decisions_left_ <= 0 ||
      !obs::TraceEnabled()) {
    return;
  }
  --trace_decisions_left_;
  obs::Tracer::Global().Instant(
      "anticombine", "adaptive_decision",
      obs::TraceArgs()
          .Add("choice", lazy ? std::string("lazy") : std::string("eager"))
          .Add("partition", partition)
          .Add("lazy_bytes", static_cast<uint64_t>(lazy_bytes))
          .Add("eager_bytes", static_cast<uint64_t>(eager_bytes)));
}

void AntiMapper::Setup(const TaskInfo& info, MapContext* ctx) {
  info_ = info;
  o_mapper_ = o_mapper_factory_();
  capture_.Clear();
  const uint64_t t0 = NowNanos();
  o_mapper_->Setup(info, &capture_);
  const uint64_t cost = NowNanos() - t0;
  if (!capture_.empty()) {
    EncodeAndEmit(Slice(), Slice(), /*have_input=*/false, cost, ctx);
  }
}

void AntiMapper::Cleanup(MapContext* ctx) {
  if (options_.cross_call_window > 1) FlushWindow(ctx);
  capture_.Clear();
  const uint64_t t0 = NowNanos();
  o_mapper_->Cleanup(&capture_);
  const uint64_t cost = NowNanos() - t0;
  if (!capture_.empty()) {
    EncodeAndEmit(Slice(), Slice(), /*have_input=*/false, cost, ctx);
  }
}

void AntiMapper::Map(const Slice& key, const Slice& value, MapContext* ctx) {
  capture_.Clear();
  // Run the original Map, measuring its exact cost (Figure 7: "Call
  // original map, measure cost").
  const uint64_t t0 = NowNanos();
  o_mapper_->Map(key, value, &capture_);
  const uint64_t map_cost = NowNanos() - t0;
  if (info_.metrics != nullptr) info_.metrics->cpu.map_fn += map_cost;
  if (options_.cross_call_window > 1) {
    BufferCall(key, value, map_cost, ctx);
    return;
  }
  EncodeAndEmit(key, value, /*have_input=*/true, map_cost, ctx);
}

void AntiMapper::BufferCall(const Slice& input_key, const Slice& input_value,
                            uint64_t map_cost_nanos, MapContext* ctx) {
  JobMetrics* m = info_.metrics;
  const size_t call = window_inputs_.size();
  for (size_t i = 0; i < capture_.size(); ++i) {
    window_capture_.Emit(capture_.key(i), capture_.value(i));
    window_call_of_.push_back(call);
    if (m != nullptr) {
      m->map_output_records += 1;
      m->map_output_bytes += capture_.key(i).size() + capture_.value(i).size();
    }
  }
  window_inputs_.push_back(
      window_input_arena_.InternRecord(input_key, input_value));
  window_cost_nanos_ += map_cost_nanos;
  if (window_inputs_.size() >=
      static_cast<size_t>(options_.cross_call_window)) {
    FlushWindow(ctx);
  }
}

void AntiMapper::FlushWindow(MapContext* ctx) {
  JobMetrics* m = info_.metrics;
  const size_t n = window_capture_.size();
  if (n == 0) {
    window_inputs_.clear();
    window_input_arena_.Clear();
    window_cost_nanos_ = 0;
    return;
  }

  partitions_.resize(n);
  const uint64_t p0 = NowNanos();
  for (size_t i = 0; i < n; ++i) {
    partitions_[i] = info_.partitioner->Partition(window_capture_.key(i),
                                                  info_.num_reduce_tasks);
  }
  const uint64_t partition_cost = NowNanos() - p0;
  if (m != nullptr) m->cpu.partition_fn += partition_cost;

  const uint64_t encode_start = NowNanos();
  order_.resize(n);
  for (size_t i = 0; i < n; ++i) order_[i] = i;
  std::sort(order_.begin(), order_.end(), [&](size_t a, size_t b) {
    if (partitions_[a] != partitions_[b]) {
      return partitions_[a] < partitions_[b];
    }
    const int vc = window_capture_.value(a).compare(window_capture_.value(b));
    if (vc != 0) return vc < 0;
    return info_.key_cmp(window_capture_.key(a), window_capture_.key(b)) < 0;
  });

  // Per (partition, call) minimal key: the representative a LazySH record
  // for that call would use in that partition.
  std::map<std::pair<int, size_t>, Slice> call_min_key;
  for (size_t i = 0; i < n; ++i) {
    const auto pc = std::make_pair(partitions_[i], window_call_of_[i]);
    auto [it, inserted] = call_min_key.emplace(pc, window_capture_.key(i));
    if (!inserted &&
        info_.key_cmp(window_capture_.key(i), it->second) < 0) {
      it->second = window_capture_.key(i);
    }
  }

  // Count partitions touched for the threshold test (coarse batch form of
  // Figure 7: the whole window's Map cost would be re-paid per task).
  int partitions_touched = 0;
  {
    int prev = -1;
    for (size_t i = 0; i < n; ++i) {
      const int p = partitions_[order_[i]];
      if (p != prev) {
        ++partitions_touched;
        prev = p;
      }
    }
  }
  const uint64_t re_exec_cost =
      (window_cost_nanos_ + partition_cost) *
      static_cast<uint64_t>(partitions_touched);
  const bool lazy_allowed = allow_lazy_ &&
                            options_.lazy_threshold_nanos > 0 &&
                            re_exec_cost <= options_.lazy_threshold_nanos;

  // Walk partition ranges; inside each, value-group runs give the
  // cross-call EagerSH encoding.
  struct EagerGroup {
    Slice rep_key;
    std::vector<Slice> other_keys;
    Slice value;
  };
  size_t pos = 0;
  std::vector<EagerGroup> groups;
  while (pos < n) {
    const int partition = partitions_[order_[pos]];
    groups.clear();
    size_t eager_bytes = 0;
    while (pos < n && partitions_[order_[pos]] == partition) {
      EagerGroup g;
      g.value = window_capture_.value(order_[pos]);
      g.rep_key = window_capture_.key(order_[pos]);
      ++pos;
      while (pos < n && partitions_[order_[pos]] == partition &&
             window_capture_.value(order_[pos]) == g.value) {
        g.other_keys.push_back(window_capture_.key(order_[pos]));
        ++pos;
      }
      eager_bytes += g.rep_key.size() + EagerPayloadSize(g.other_keys, g.value);
      groups.push_back(std::move(g));
    }

    // LazySH alternative: resend every buffered input that contributed to
    // this partition.
    size_t lazy_bytes = 0;
    size_t lazy_count = 0;
    for (size_t c = 0; c < window_inputs_.size(); ++c) {
      auto it = call_min_key.find({partition, c});
      if (it == call_min_key.end()) continue;
      lazy_bytes += it->second.size() +
                    LazyPayloadSize(window_inputs_[c].key,
                                    window_inputs_[c].value);
      ++lazy_count;
    }

    const bool use_lazy = lazy_allowed && lazy_count > 0 &&
                          (options_.force_lazy || lazy_bytes < eager_bytes);
    TraceDecision(use_lazy, partition, lazy_bytes, eager_bytes);
    if (use_lazy) {
      for (size_t c = 0; c < window_inputs_.size(); ++c) {
        auto it = call_min_key.find({partition, c});
        if (it == call_min_key.end()) continue;
        EncodeLazyPayload(window_inputs_[c].key, window_inputs_[c].value,
                          &payload_);
        ctx->Emit(it->second, payload_);
        if (m != nullptr) m->lazy_records += 1;
      }
      continue;
    }
    std::sort(groups.begin(), groups.end(),
              [this](const EagerGroup& a, const EagerGroup& b) {
                return info_.key_cmp(a.rep_key, b.rep_key) < 0;
              });
    for (const EagerGroup& g : groups) {
      EncodeEagerPayload(g.other_keys, g.value, &payload_);
      ctx->Emit(g.rep_key, payload_);
      if (m != nullptr) {
        if (g.other_keys.empty()) {
          m->plain_records += 1;
        } else {
          m->eager_records += 1;
        }
      }
    }
  }
  if (m != nullptr) m->cpu.encode += NowNanos() - encode_start;

  window_capture_.Clear();
  window_call_of_.clear();
  window_inputs_.clear();
  window_input_arena_.Clear();
  window_cost_nanos_ = 0;
}

void AntiMapper::EncodeAndEmit(const Slice& input_key,
                               const Slice& input_value, bool have_input,
                               uint64_t map_cost_nanos, MapContext* ctx) {
  JobMetrics* m = info_.metrics;
  const size_t n = capture_.size();
  if (m != nullptr) {
    m->map_output_records += n;
    for (size_t i = 0; i < n; ++i) {
      m->map_output_bytes += capture_.key(i).size() + capture_.value(i).size();
    }
  }
  if (n == 0) return;

  // Fast path for fan-out 1 (e.g. Sort): no sharing is possible, so skip
  // the grouping machinery and emit one record — flagged-plain, or Lazy
  // when resending the input is strictly smaller (Figure 7's size test
  // degenerates to a single comparison). Keeps the Section 7.1 overhead to
  // the flag bytes plus one size comparison.
  if (n == 1) {
    const Slice only_key = capture_.key(0);
    const Slice only_value = capture_.value(0);
    static const std::vector<Slice> kNoKeys;
    const size_t eager_bytes =
        only_key.size() + EagerPayloadSize(kNoKeys, only_value);
    const bool lazy_ok = allow_lazy_ && have_input &&
                         options_.lazy_threshold_nanos > 0 &&
                         map_cost_nanos <= options_.lazy_threshold_nanos;
    const size_t lazy_bytes =
        only_key.size() + LazyPayloadSize(input_key, input_value);
    const bool use_lazy =
        lazy_ok && (options_.force_lazy || lazy_bytes < eager_bytes);
    TraceDecision(use_lazy, /*partition=*/-1, lazy_bytes, eager_bytes);
    if (use_lazy) {
      EncodeLazyPayload(input_key, input_value, &payload_);
      ctx->Emit(only_key, payload_);
      if (m != nullptr) m->lazy_records += 1;
    } else {
      EncodeEagerPayload(kNoKeys, only_value, &payload_);
      ctx->Emit(only_key, payload_);
      if (m != nullptr) m->plain_records += 1;
    }
    return;
  }

  // Partition every output record, measuring the Partitioner's cost
  // (Figure 7: "Call Partitioner, measure cost").
  partitions_.resize(n);
  const uint64_t p0 = NowNanos();
  for (size_t i = 0; i < n; ++i) {
    partitions_[i] =
        info_.partitioner->Partition(capture_.key(i), info_.num_reduce_tasks);
  }
  const uint64_t partition_cost = NowNanos() - p0;
  if (m != nullptr) m->cpu.partition_fn += partition_cost;

  const uint64_t encode_start = NowNanos();

  // One sort by (partition, value, key) replaces the per-call hash maps:
  // after it, each partition is a contiguous range, each value group a
  // contiguous run inside it, and the run's first record carries the
  // minimal (representative) key.
  order_.resize(n);
  for (size_t i = 0; i < n; ++i) order_[i] = i;
  std::sort(order_.begin(), order_.end(), [&](size_t a, size_t b) {
    if (partitions_[a] != partitions_[b]) return partitions_[a] < partitions_[b];
    const int vc = capture_.value(a).compare(capture_.value(b));
    if (vc != 0) return vc < 0;
    return info_.key_cmp(capture_.key(a), capture_.key(b)) < 0;
  });

  struct EagerGroup {
    Slice rep_key;
    std::vector<Slice> other_keys;
    Slice value;
  };
  struct PartitionPlan {
    int partition = 0;
    std::vector<EagerGroup> groups;
    size_t eager_bytes = 0;
    Slice min_key;
    size_t lazy_bytes = 0;
  };

  // Phase 1: build each partition's EagerSH encoding and size both options.
  std::vector<PartitionPlan> plans;
  size_t pos = 0;
  while (pos < order_.size()) {
    const int partition = partitions_[order_[pos]];
    PartitionPlan plan;
    plan.partition = partition;
    while (pos < order_.size() && partitions_[order_[pos]] == partition) {
      // One value group: a run of equal values, keys ascending.
      EagerGroup g;
      g.value = capture_.value(order_[pos]);
      g.rep_key = capture_.key(order_[pos]);
      ++pos;
      while (pos < order_.size() && partitions_[order_[pos]] == partition &&
             capture_.value(order_[pos]) == g.value) {
        g.other_keys.push_back(capture_.key(order_[pos]));
        ++pos;
      }
      if (plan.groups.empty() ||
          info_.key_cmp(g.rep_key, plan.min_key) < 0) {
        plan.min_key = g.rep_key;
      }
      plan.eager_bytes +=
          g.rep_key.size() + EagerPayloadSize(g.other_keys, g.value);
      plan.groups.push_back(std::move(g));
    }
    // LazySH resends the input record keyed by this partition's minimal key.
    plan.lazy_bytes =
        plan.min_key.size() + LazyPayloadSize(input_key, input_value);
    plans.push_back(std::move(plan));
  }

  // Figure 7's threshold test: if re-executing this Map call (plus its
  // Partition calls) on every receiving reduce task would exceed T, fall
  // back to EagerSH for all partitions.
  const uint64_t re_exec_cost =
      (map_cost_nanos + partition_cost) * static_cast<uint64_t>(plans.size());
  const bool lazy_allowed = allow_lazy_ && have_input &&
                            options_.lazy_threshold_nanos > 0 &&
                            re_exec_cost <= options_.lazy_threshold_nanos;

  // Phase 2: choose the encoding. Normally per partition (Figure 7); the
  // global mode (an ablation) makes one choice for the whole Map call.
  bool global_lazy = false;
  if (!options_.per_partition_choice && lazy_allowed) {
    size_t eager_total = 0, lazy_total = 0;
    for (const PartitionPlan& plan : plans) {
      eager_total += plan.eager_bytes;
      lazy_total += plan.lazy_bytes;
    }
    global_lazy = options_.force_lazy || lazy_total < eager_total;
  }

  for (PartitionPlan& plan : plans) {
    bool use_lazy = false;
    if (lazy_allowed) {
      use_lazy = options_.per_partition_choice
                     ? (options_.force_lazy ||
                        plan.lazy_bytes < plan.eager_bytes)
                     : global_lazy;
    }
    TraceDecision(use_lazy, plan.partition, plan.lazy_bytes, plan.eager_bytes);
    if (use_lazy) {
      EncodeLazyPayload(input_key, input_value, &payload_);
      ctx->Emit(plan.min_key, payload_);
      if (m != nullptr) m->lazy_records += 1;
      continue;
    }
    // Deterministic emission order: sort groups by representative key.
    std::sort(plan.groups.begin(), plan.groups.end(),
              [this](const EagerGroup& a, const EagerGroup& b) {
                return info_.key_cmp(a.rep_key, b.rep_key) < 0;
              });
    for (const EagerGroup& g : plan.groups) {
      EncodeEagerPayload(g.other_keys, g.value, &payload_);
      ctx->Emit(g.rep_key, payload_);
      if (m != nullptr) {
        if (g.other_keys.empty()) {
          m->plain_records += 1;
        } else {
          m->eager_records += 1;
        }
      }
    }
  }

  if (m != nullptr) m->cpu.encode += NowNanos() - encode_start;
}

}  // namespace anticombine
}  // namespace antimr
