// The syntactic program transformation (paper Section 6.1, Figures 7-8):
// rewrite a JobSpec so its mapper, reducer, and combiner classes are replaced
// by the Anti-Combining wrappers. The original classes are treated as black
// boxes — no semantic analysis, exactly as in the paper.
#ifndef ANTIMR_ANTICOMBINE_TRANSFORM_H_
#define ANTIMR_ANTICOMBINE_TRANSFORM_H_

#include "anticombine/options.h"
#include "mr/job_spec.h"

namespace antimr {
namespace anticombine {

/// Return the Anti-Combining-enabled version of `original`.
///
/// Mirrors the paper's rewrite:
///  * mapper class  -> AntiMapper(original mapper)
///  * reducer class -> AntiReducer(original reducer, original mapper,
///                                 original combiner)
///  * combiner class-> AntiCombiner(original combiner, original mapper)
///                     when options.map_phase_combiner (flag C) is set;
///                     removed from the map phase otherwise
///
/// When `original.deterministic` is false, LazySH is disabled regardless of
/// the threshold (equivalent to forcing T = 0 for the lazy choice while
/// keeping EagerSH adaptivity).
JobSpec EnableAntiCombining(const JobSpec& original,
                            const AntiCombineOptions& options);

}  // namespace anticombine
}  // namespace antimr

#endif  // ANTIMR_ANTICOMBINE_TRANSFORM_H_
