// Wire format for Anti-Combining records (paper Sections 3-4, 6.1).
//
// An encoded record's key is the representative key: the minimal key (by the
// job's key comparator) among the original records it stands for. Using the
// minimum guarantees every encoded-away key is >= the representative, so it
// can be decoded into Shared before its own Reduce call runs.
//
// The record's value is a flagged payload:
//
//   EagerSH:  [flag=0] varint(n) {len-prefixed other_key}*n shared_value...
//             Stands for the n+1 records (rep, v), (k_1, v), ..., (k_n, v)
//             that share value v and reduce task. n = 0 is the degenerate
//             "plain" case: the original record plus flag overhead (the
//             paper's Section 7.1 overhead experiment).
//
//   LazySH:   [flag=1] len-prefixed(map_input_key) map_input_value...
//             Stands for *all* original records of one Map call assigned to
//             this reduce task; the reducer re-executes Map + Partition to
//             regenerate them.
#ifndef ANTIMR_ANTICOMBINE_ENCODING_H_
#define ANTIMR_ANTICOMBINE_ENCODING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/coding.h"
#include "common/slice.h"
#include "common/status.h"

namespace antimr {
namespace anticombine {

enum class Encoding : uint8_t {
  kEager = 0,  ///< EagerSH (n = 0 degenerates to flagged-plain)
  kLazy = 1,   ///< LazySH
};

/// Build an EagerSH payload. `other_keys` excludes the representative.
void EncodeEagerPayload(const std::vector<Slice>& other_keys,
                        const Slice& value, std::string* out);

/// Bytes EncodeEagerPayload would produce, without building it.
size_t EagerPayloadSize(const std::vector<Slice>& other_keys,
                        const Slice& value);

/// Build a LazySH payload from the original Map *input* record.
void EncodeLazyPayload(const Slice& input_key, const Slice& input_value,
                       std::string* out);

/// Bytes EncodeLazyPayload would produce.
size_t LazyPayloadSize(const Slice& input_key, const Slice& input_value);

/// Read the flag byte; *rest gets the flag-stripped payload.
Status GetEncoding(const Slice& payload, Encoding* encoding, Slice* rest);

/// Parse a flag-stripped EagerSH payload. Slices view into `rest`.
Status DecodeEagerPayload(const Slice& rest, std::vector<Slice>* other_keys,
                          Slice* value);

/// Parse a flag-stripped LazySH payload. Slices view into `rest`.
Status DecodeLazyPayload(const Slice& rest, Slice* input_key,
                         Slice* input_value);

}  // namespace anticombine
}  // namespace antimr

#endif  // ANTIMR_ANTICOMBINE_ENCODING_H_
