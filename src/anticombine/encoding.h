// Wire format for Anti-Combining records (paper Sections 3-4, 6.1).
//
// An encoded record's key is the representative key: the minimal key (by the
// job's key comparator) among the original records it stands for. Using the
// minimum guarantees every encoded-away key is >= the representative, so it
// can be decoded into Shared before its own Reduce call runs.
//
// The record's value is a flagged payload:
//
//   EagerSH:  [flag=0] varint(n) {len-prefixed other_key}*n shared_value...
//             Stands for the n+1 records (rep, v), (k_1, v), ..., (k_n, v)
//             that share value v and reduce task. n = 0 is the degenerate
//             "plain" case: the original record plus flag overhead (the
//             paper's Section 7.1 overhead experiment).
//
//   LazySH:   [flag=1] len-prefixed(map_input_key) map_input_value...
//             Stands for *all* original records of one Map call assigned to
//             this reduce task; the reducer re-executes Map + Partition to
//             regenerate them.
//
//   EagerSH/dict: [flag=2] varint(n) {varint(dict_id)}*n shared_value...
//             A storage-level rewrite of an EagerSH payload inside a
//             columnar chunk block (table/chunk_writer.h): each other_key is
//             replaced by its id in the block's key dictionary. Chunk
//             readers rematerialize the standard [flag=0] bytes before the
//             record leaves the block, so the AntiReducer never sees this
//             flag and reduce input stays byte-identical to the row format.
#ifndef ANTIMR_ANTICOMBINE_ENCODING_H_
#define ANTIMR_ANTICOMBINE_ENCODING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/coding.h"
#include "common/slice.h"
#include "common/status.h"

namespace antimr {
namespace anticombine {

enum class Encoding : uint8_t {
  kEager = 0,      ///< EagerSH (n = 0 degenerates to flagged-plain)
  kLazy = 1,       ///< LazySH
  kEagerDict = 2,  ///< EagerSH with other_keys as block-dictionary ids
};

/// Build an EagerSH payload. `other_keys` excludes the representative.
void EncodeEagerPayload(const std::vector<Slice>& other_keys,
                        const Slice& value, std::string* out);

/// Bytes EncodeEagerPayload would produce, without building it.
size_t EagerPayloadSize(const std::vector<Slice>& other_keys,
                        const Slice& value);

/// Serialize an EagerSH payload straight into `dst` (which must hold at
/// least EagerPayloadSize bytes); returns one past the last byte written.
/// Lets the chunk reader rematerialize into arena storage without an
/// intermediate string.
char* EncodeEagerPayloadTo(char* dst, const std::vector<Slice>& other_keys,
                           const Slice& value);

/// Build a LazySH payload from the original Map *input* record.
void EncodeLazyPayload(const Slice& input_key, const Slice& input_value,
                       std::string* out);

/// Bytes EncodeLazyPayload would produce.
size_t LazyPayloadSize(const Slice& input_key, const Slice& input_value);

/// Read the flag byte; *rest gets the flag-stripped payload.
Status GetEncoding(const Slice& payload, Encoding* encoding, Slice* rest);

/// Parse a flag-stripped EagerSH payload. Slices view into `rest`.
Status DecodeEagerPayload(const Slice& rest, std::vector<Slice>* other_keys,
                          Slice* value);

/// Parse a flag-stripped LazySH payload. Slices view into `rest`.
Status DecodeLazyPayload(const Slice& rest, Slice* input_key,
                         Slice* input_value);

/// Build an EagerSH/dict payload: other_keys as block-dictionary ids.
void EncodeEagerDictPayload(const std::vector<uint32_t>& dict_ids,
                            const Slice& value, std::string* out);

/// Bytes EncodeEagerDictPayload would produce, without building it.
size_t EagerDictPayloadSize(const std::vector<uint32_t>& dict_ids,
                            const Slice& value);

/// Serialize an EagerSH/dict payload straight into `dst` (at least
/// EagerDictPayloadSize bytes); returns one past the last byte written.
char* EncodeEagerDictPayloadTo(char* dst,
                               const std::vector<uint32_t>& dict_ids,
                               const Slice& value);

/// Parse a flag-stripped EagerSH/dict payload, resolving ids through
/// `dictionary`. Key slices view into the dictionary's backing storage;
/// *value views into `rest`. An id outside the dictionary is Corruption.
Status DecodeEagerDictPayload(const Slice& rest,
                              const std::vector<Slice>& dictionary,
                              std::vector<Slice>* other_keys, Slice* value);

/// Rematerialize a flag-stripped EagerSH/dict payload back into the
/// standard kEager byte form, encoded straight into `arena`.
/// `dict_wire[id]` must hold the dictionary entry in key-wire form —
/// varint(len) || bytes, the exact bytes an EagerSH payload carries per
/// key — so each id resolves to one verbatim copy with no per-key
/// re-encoding (chunk blocks store their dictionary in this form already).
/// Byte-identical to DecodeEagerDictPayload + EncodeEagerPayloadTo, and
/// allocation-free beyond the arena bump.
Status RematerializeEagerDictPayload(const Slice& rest,
                                     const std::vector<Slice>& dict_wire,
                                     Arena* arena, Slice* out);

}  // namespace anticombine
}  // namespace antimr

#endif  // ANTIMR_ANTICOMBINE_ENCODING_H_
