#include "anticombine/shared.h"

#include <algorithm>
#include <cassert>

#include "common/stopwatch.h"
#include "io/run_file.h"
#include "mr/reduce_task.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace antimr {
namespace anticombine {

namespace {

// Exposes the prefix of `inner` whose keys are grouping-equal to `bound`,
// leaving `inner` positioned at the first record beyond the group.
class GroupBoundedStream : public KVStream {
 public:
  GroupBoundedStream(KVStream* inner, const std::string* bound,
                     const KeyComparator* grouping_cmp)
      : inner_(inner), bound_(bound), grouping_cmp_(grouping_cmp) {}

  bool Valid() const override {
    return inner_->Valid() &&
           (*grouping_cmp_)(inner_->key(), Slice(*bound_)) == 0;
  }
  Slice key() const override { return inner_->key(); }
  Slice value() const override { return inner_->value(); }
  Status Next() override { return inner_->Next(); }

 private:
  KVStream* inner_;
  const std::string* bound_;
  const KeyComparator* grouping_cmp_;
};

// Fetched here (not only at the spill site) so the histogram shows up in a
// metrics scrape even for runs that never spilled.
obs::Histogram* SpillBytesHistogram() {
  static obs::Histogram* const hist =
      obs::MetricsRegistry::Global().GetHistogram(
          "antimr_shared_spill_bytes", "Bytes written per Shared spill");
  return hist;
}

}  // namespace

Shared::Shared(Options options)
    : options_(std::move(options)),
      heap_(HeapCmp{&options_.key_cmp}) {
  assert(options_.key_cmp);
  assert(options_.grouping_cmp);
  assert(options_.env != nullptr);
  SpillBytesHistogram();
}

Shared::~Shared() {
  for (const SpillRun& run : spills_) {
    options_.env->DeleteFile(run.fname);
  }
}

void Shared::Add(const Slice& key, const Slice& value) {
  uint64_t* shared_nanos =
      options_.metrics ? &options_.metrics->cpu.shared : nullptr;
  uint64_t local = 0;
  {
    ScopedTimer t(shared_nanos ? shared_nanos : &local);
    AddInternal(key, value, /*allow_combine=*/true);
    if (options_.metrics) options_.metrics->shared_insertions += 1;
    if (memory_bytes_ > options_.memory_limit_bytes) {
      SpillToDisk();
      MaybeMergeSpills();
    }
  }
}

void Shared::AddInternal(const Slice& key, const Slice& value,
                         bool allow_combine) {
  auto it = table_.find(key);
  if (it == table_.end()) {
    // First sighting of this key in memory: intern its bytes once, then
    // register that single copy in the min-heap (the paper's "inserting the
    // key into the min-heap requires logarithmic time") and the table.
    const Slice interned = key_arena_.Intern(key);
    heap_.push(interned);
    it = table_.emplace(interned, ValueList()).first;
    memory_bytes_ += key.size();
  }
  it->second.values.emplace_back(value.view());
  memory_bytes_ += value.size();
  if (allow_combine && options_.combiner != nullptr &&
      it->second.values.size() >= it->second.next_combine) {
    CombineKey(it->first, &it->second.values);
    it->second.next_combine =
        std::max<size_t>(2, 2 * it->second.values.size());
  }
}

void Shared::CombineKey(const Slice& key, std::vector<std::string>* values) {
  uint64_t combine_nanos = 0;
  std::vector<KV> combined;
  {
    ScopedTimer t(&combine_nanos);
    VectorValueIterator it(values);
    CollectingContext ctx(&combined);
    options_.combiner->Reduce(key, &it, &ctx);
  }
  if (options_.metrics) {
    options_.metrics->cpu.combine += combine_nanos;
    options_.metrics->combine_input_records += values->size();
    options_.metrics->combine_output_records += combined.size();
  }
  for (const std::string& v : *values) memory_bytes_ -= v.size();
  values->clear();
  for (KV& kv : combined) {
    if (Slice(kv.key) == key) {
      memory_bytes_ += kv.value.size();
      values->push_back(std::move(kv.value));
    } else {
      // A combiner emitting a different key is unusual but legal; store it
      // without re-combining to guarantee termination.
      AddInternal(kv.key, kv.value, /*allow_combine=*/false);
    }
  }
}

void Shared::SpillToDisk() {
  if (table_.empty()) return;
  const std::string fname = options_.file_prefix + "_shared_spill_" +
                            std::to_string(spill_counter_++);
  std::unique_ptr<WritableFile> file;
  ANTIMR_CHECK_OK(options_.env->NewWritableFile(fname, &file));
  RunWriter writer(std::move(file));
  // Drain the heap to emit keys in sorted order, mirroring the map phase's
  // sorted spills (paper Section 5). heap_.top() is a view of the interned
  // key, which outlives both the pop and the table erase (the arena is only
  // reclaimed below, once the drain finishes).
  while (!heap_.empty()) {
    const Slice key = heap_.top();
    heap_.pop();
    auto it = table_.find(key);
    if (it == table_.end()) continue;  // stale heap entry
    for (const std::string& value : it->second.values) {
      ANTIMR_CHECK_OK(writer.Add(key, value));
    }
    table_.erase(it);
  }
  ANTIMR_CHECK_OK(writer.Close());
  memory_bytes_ = 0;
  MaybeReclaimKeys();

  SpillRun run;
  run.fname = fname;
  std::unique_ptr<KVStream> stream;
  ANTIMR_CHECK_OK(OpenRun(options_.env, fname, &stream));
  run.stream = std::move(stream);
  spills_.push_back(std::move(run));
  if (options_.metrics) {
    options_.metrics->shared_spills += 1;
    options_.metrics->shared_spill_bytes += writer.bytes_written();
  }
  // Spills are rare (one per memory_limit_bytes of Shared growth), so the
  // instant + histogram stay unconditional.
  SpillBytesHistogram()->Observe(writer.bytes_written());
  ANTIMR_TRACE_INSTANT("anticombine", "shared_spill",
                       obs::TraceArgs()
                           .Add("bytes", writer.bytes_written())
                           .Add("spill", spill_counter_ - 1));
}

void Shared::MaybeMergeSpills() {
  if (spills_.size() <= static_cast<size_t>(options_.spill_merge_threshold)) {
    return;
  }
  const std::string fname = options_.file_prefix + "_shared_spill_" +
                            std::to_string(spill_counter_++);
  {
    std::vector<std::unique_ptr<KVStream>> inputs;
    inputs.reserve(spills_.size());
    for (SpillRun& run : spills_) inputs.push_back(std::move(run.stream));
    MergingStream merged(std::move(inputs), options_.key_cmp);
    std::unique_ptr<WritableFile> file;
    ANTIMR_CHECK_OK(options_.env->NewWritableFile(fname, &file));
    RunWriter writer(std::move(file));
    while (merged.Valid()) {
      ANTIMR_CHECK_OK(writer.Add(merged.key(), merged.value()));
      ANTIMR_CHECK_OK(merged.Next());
    }
    ANTIMR_CHECK_OK(writer.Close());
  }
  for (const SpillRun& run : spills_) {
    ANTIMR_CHECK_OK(options_.env->DeleteFile(run.fname));
  }
  spills_.clear();
  SpillRun run;
  run.fname = fname;
  std::unique_ptr<KVStream> stream;
  ANTIMR_CHECK_OK(OpenRun(options_.env, fname, &stream));
  run.stream = std::move(stream);
  spills_.push_back(std::move(run));
  if (options_.metrics) options_.metrics->shared_spill_merges += 1;
  ANTIMR_TRACE_INSTANT("anticombine", "shared_spill_merge");
}

bool Shared::FindMinKey(Slice* out) {
  bool found = false;
  // Drop stale heap entries (keys whose table entry was spilled away).
  while (!heap_.empty() && table_.find(heap_.top()) == table_.end()) {
    heap_.pop();
  }
  if (!heap_.empty()) {
    *out = heap_.top();
    found = true;
  }
  for (const SpillRun& run : spills_) {
    if (!run.stream->Valid()) continue;
    if (!found || options_.key_cmp(run.stream->key(), *out) < 0) {
      *out = run.stream->key();
      found = true;
    }
  }
  return found;
}

void Shared::MaybeReclaimKeys() {
  if (table_.empty() && heap_.empty()) key_arena_.Clear();
}

bool Shared::Empty() {
  Slice ignored;
  return !FindMinKey(&ignored);
}

bool Shared::PeekMinKey(Slice* key) { return FindMinKey(key); }

bool Shared::PeekMinKey(std::string* key) {
  Slice min;
  if (!FindMinKey(&min)) return false;
  key->assign(min.data(), min.size());
  return true;
}

bool Shared::PopMinKeyValues(std::string* group_key,
                             std::vector<std::string>* values) {
  uint64_t* shared_nanos =
      options_.metrics ? &options_.metrics->cpu.shared : nullptr;
  uint64_t local = 0;
  ScopedTimer t(shared_nanos ? shared_nanos : &local);

  Slice min_key;
  if (!FindMinKey(&min_key)) return false;
  // Materialize the group key once: the merge below advances spill streams,
  // which would invalidate a stream-head view mid-drain.
  group_key->assign(min_key.data(), min_key.size());

  // Fast path: no spill stream is positioned on this group, so it lives
  // entirely in the table — heap pops already ascend in key order, and each
  // key's values move straight into *values without an intermediate copy.
  bool spilled_group = false;
  for (SpillRun& run : spills_) {
    if (run.stream->Valid() &&
        options_.grouping_cmp(run.stream->key(), Slice(*group_key)) == 0) {
      spilled_group = true;
      break;
    }
  }
  if (!spilled_group) {
    while (!heap_.empty() &&
           options_.grouping_cmp(heap_.top(), Slice(*group_key)) == 0) {
      const Slice key = heap_.top();  // interned view; survives the pop
      heap_.pop();
      auto it = table_.find(key);
      if (it == table_.end()) continue;  // stale
      std::vector<std::string>& group = it->second.values;
      values->reserve(values->size() + group.size());
      for (std::string& value : group) {
        memory_bytes_ -= value.size();
        values->push_back(std::move(value));
      }
      memory_bytes_ -= key.size();
      table_.erase(it);
    }
    MaybeReclaimKeys();
    return true;
  }

  // Collect the group's in-memory records in key order (heap pops ascend).
  std::vector<KV> mem_records;
  while (!heap_.empty() &&
         options_.grouping_cmp(heap_.top(), Slice(*group_key)) == 0) {
    const Slice key = heap_.top();  // interned view; survives the pop
    heap_.pop();
    auto it = table_.find(key);
    if (it == table_.end()) continue;  // stale
    mem_records.reserve(mem_records.size() + it->second.values.size());
    for (std::string& value : it->second.values) {
      memory_bytes_ -= value.size();
      mem_records.emplace_back(key.ToString(), std::move(value));
    }
    memory_bytes_ -= key.size();
    table_.erase(it);
  }
  MaybeReclaimKeys();

  // Merge memory records with the group prefix of each spill stream.
  values->reserve(values->size() + mem_records.size());
  std::vector<std::unique_ptr<KVStream>> inputs;
  inputs.push_back(std::make_unique<KVVectorStream>(&mem_records));
  for (SpillRun& run : spills_) {
    inputs.push_back(std::make_unique<GroupBoundedStream>(
        run.stream.get(), group_key, &options_.grouping_cmp));
  }
  MergingStream merged(std::move(inputs), options_.key_cmp);
  while (merged.Valid()) {
    values->emplace_back(merged.value().view());
    ANTIMR_CHECK_OK(merged.Next());
  }
  return true;
}

}  // namespace anticombine
}  // namespace antimr
