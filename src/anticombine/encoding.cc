#include "anticombine/encoding.h"

#include <cstring>

namespace antimr {
namespace anticombine {

void EncodeEagerPayload(const std::vector<Slice>& other_keys,
                        const Slice& value, std::string* out) {
  out->clear();
  out->push_back(static_cast<char>(Encoding::kEager));
  PutVarint32(out, static_cast<uint32_t>(other_keys.size()));
  for (const Slice& key : other_keys) PutLengthPrefixed(out, key);
  out->append(value.data(), value.size());
}

size_t EagerPayloadSize(const std::vector<Slice>& other_keys,
                        const Slice& value) {
  size_t size = 1 + static_cast<size_t>(VarintLength(other_keys.size()));
  for (const Slice& key : other_keys) {
    size += static_cast<size_t>(VarintLength(key.size())) + key.size();
  }
  return size + value.size();
}

char* EncodeEagerPayloadTo(char* dst, const std::vector<Slice>& other_keys,
                           const Slice& value) {
  *dst++ = static_cast<char>(Encoding::kEager);
  dst = EncodeVarint32(dst, static_cast<uint32_t>(other_keys.size()));
  for (const Slice& key : other_keys) {
    dst = EncodeVarint32(dst, static_cast<uint32_t>(key.size()));
    std::memcpy(dst, key.data(), key.size());
    dst += key.size();
  }
  std::memcpy(dst, value.data(), value.size());
  return dst + value.size();
}

void EncodeLazyPayload(const Slice& input_key, const Slice& input_value,
                       std::string* out) {
  out->clear();
  out->push_back(static_cast<char>(Encoding::kLazy));
  PutLengthPrefixed(out, input_key);
  out->append(input_value.data(), input_value.size());
}

size_t LazyPayloadSize(const Slice& input_key, const Slice& input_value) {
  return 1 + static_cast<size_t>(VarintLength(input_key.size())) +
         input_key.size() + input_value.size();
}

Status GetEncoding(const Slice& payload, Encoding* encoding, Slice* rest) {
  if (payload.empty()) {
    return Status::Corruption("anti-combining: empty payload");
  }
  const uint8_t flag = static_cast<uint8_t>(payload[0]);
  if (flag > static_cast<uint8_t>(Encoding::kEagerDict)) {
    return Status::Corruption("anti-combining: bad encoding flag");
  }
  *encoding = static_cast<Encoding>(flag);
  *rest = Slice(payload.data() + 1, payload.size() - 1);
  return Status::OK();
}

Status DecodeEagerPayload(const Slice& rest, std::vector<Slice>* other_keys,
                          Slice* value) {
  Slice in = rest;
  uint32_t n;
  if (!GetVarint32(&in, &n)) {
    return Status::Corruption("anti-combining: bad eager key count");
  }
  other_keys->clear();
  other_keys->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Slice key;
    if (!GetLengthPrefixed(&in, &key)) {
      return Status::Corruption("anti-combining: truncated eager key");
    }
    other_keys->push_back(key);
  }
  *value = in;
  return Status::OK();
}

Status DecodeLazyPayload(const Slice& rest, Slice* input_key,
                         Slice* input_value) {
  Slice in = rest;
  if (!GetLengthPrefixed(&in, input_key)) {
    return Status::Corruption("anti-combining: truncated lazy key");
  }
  *input_value = in;
  return Status::OK();
}

void EncodeEagerDictPayload(const std::vector<uint32_t>& dict_ids,
                            const Slice& value, std::string* out) {
  out->clear();
  out->push_back(static_cast<char>(Encoding::kEagerDict));
  PutVarint32(out, static_cast<uint32_t>(dict_ids.size()));
  for (uint32_t id : dict_ids) PutVarint32(out, id);
  out->append(value.data(), value.size());
}

size_t EagerDictPayloadSize(const std::vector<uint32_t>& dict_ids,
                            const Slice& value) {
  size_t size = 1 + static_cast<size_t>(VarintLength(dict_ids.size()));
  for (uint32_t id : dict_ids) {
    size += static_cast<size_t>(VarintLength(id));
  }
  return size + value.size();
}

char* EncodeEagerDictPayloadTo(char* dst,
                               const std::vector<uint32_t>& dict_ids,
                               const Slice& value) {
  *dst++ = static_cast<char>(Encoding::kEagerDict);
  dst = EncodeVarint32(dst, static_cast<uint32_t>(dict_ids.size()));
  for (uint32_t id : dict_ids) dst = EncodeVarint32(dst, id);
  std::memcpy(dst, value.data(), value.size());
  return dst + value.size();
}

Status RematerializeEagerDictPayload(const Slice& rest,
                                     const std::vector<Slice>& dict_wire,
                                     Arena* arena, Slice* out) {
  // Two pointer walks over the id list: one to validate and size, one to
  // encode. Re-parsing the (almost always 1-byte) ids is cheaper than
  // staging them in a scratch vector, and each id resolves to a verbatim
  // copy of its wire-form entry — the length prefix is part of the entry,
  // so nothing is re-encoded per key.
  const char* p = rest.data();
  const char* const end = p + rest.size();
  uint32_t n = 0;
  p = GetVarint32Ptr(p, end, &n);
  if (p == nullptr) {
    return Status::Corruption("anti-combining: bad eager-dict key count");
  }
  const char* const ids_begin = p;
  const uint32_t dict_size = static_cast<uint32_t>(dict_wire.size());
  const Slice* wire = dict_wire.data();
  size_t keys_bytes = 0;
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t id;
    p = GetVarint32Ptr(p, end, &id);
    if (p == nullptr) {
      return Status::Corruption("anti-combining: truncated eager-dict id");
    }
    if (id >= dict_size) {
      return Status::Corruption(
          "anti-combining: bad dictionary id " + std::to_string(id) +
          " (dictionary has " + std::to_string(dict_wire.size()) +
          " entries)");
    }
    keys_bytes += wire[id].size();
  }
  const size_t value_size = static_cast<size_t>(end - p);
  const size_t size = 1 + static_cast<size_t>(VarintLength(n)) + keys_bytes +
                      value_size;
  char* dst = arena->Allocate(size);
  char* q = dst;
  *q++ = static_cast<char>(Encoding::kEager);
  q = EncodeVarint32(q, n);
  for (const char* r = ids_begin; r != p;) {
    uint32_t id = 0;
    r = GetVarint32Ptr(r, end, &id);  // validated by the sizing pass
    const Slice& w = wire[id];
    const size_t ws = w.size();
    if (ws <= 16) {
      // Short keys (words, ids) dominate; a byte loop beats the memcpy
      // call for these sizes.
      for (size_t b = 0; b < ws; ++b) q[b] = w.data()[b];
    } else {
      std::memcpy(q, w.data(), ws);
    }
    q += ws;
  }
  std::memcpy(q, p, value_size);
  *out = Slice(dst, size);
  return Status::OK();
}

Status DecodeEagerDictPayload(const Slice& rest,
                              const std::vector<Slice>& dictionary,
                              std::vector<Slice>* other_keys, Slice* value) {
  Slice in = rest;
  uint32_t n;
  if (!GetVarint32(&in, &n)) {
    return Status::Corruption("anti-combining: bad eager-dict key count");
  }
  other_keys->clear();
  other_keys->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t id;
    if (!GetVarint32(&in, &id)) {
      return Status::Corruption("anti-combining: truncated eager-dict id");
    }
    if (id >= dictionary.size()) {
      return Status::Corruption(
          "anti-combining: bad dictionary id " + std::to_string(id) +
          " (dictionary has " + std::to_string(dictionary.size()) +
          " entries)");
    }
    other_keys->push_back(dictionary[id]);
  }
  *value = in;
  return Status::OK();
}

}  // namespace anticombine
}  // namespace antimr
